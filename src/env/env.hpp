// Gym-style multi-agent traffic-signal-control environment over the
// link-queue simulator.
//
// One agent per signalized intersection. Every `action_duration` seconds
// each agent picks a phase index; the simulator then advances (inserting a
// yellow clearance when the phase changes) and each agent receives the
// paper's reward (Eq. 6):
//     r = -( sum_l halting[l] + max_l wait[l] )
// evaluated after the action executes.
//
// Observations follow Eq. 5 plus signal context: per incoming-link slot
// (zero-padded to `max_in_links`) the sensor-view link pressure and the
// head-vehicle waiting time, then the active phase one-hot (padded to
// `max_phases`) and the normalized green-elapsed time. The phase fields are
// an implementation necessity (the action is a phase index); the paper's
// traffic-state fields are exactly pressure + head wait.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/simulator.hpp"

namespace tsc::env {

struct EnvConfig {
  double action_duration = 5.0;    ///< seconds per decision (paper: 5 s phases)
  double episode_seconds = 3600.0;
  std::size_t max_in_links = 4;    ///< observation padding slots
  std::size_t max_phases = 8;      ///< phase one-hot padding
  double reward_scale = 0.05;      ///< multiplies Eq. 6 (training stability)
  double pressure_norm = 10.0;     ///< obs normalizers
  double wait_norm = 60.0;

  // Sensor-failure injection (robustness experiments; 0 = clean sensors).
  // Faults perturb only what agents OBSERVE, never the simulator state or
  // the reward bookkeeping, mirroring real detector faults.
  double sensor_noise_std = 0.0;  ///< additive Gaussian noise on normalized obs
  double sensor_dropout = 0.0;    ///< P(per link per step the sensor reads 0)

  // Simulator tuning carried by the environment so clone() and
  // construct-from-scratch build identical simulators. (Historically the
  // constructor hardcoded sim::SimConfig{} while set_flows preserved the
  // live simulator's config, so the two paths could disagree.)
  sim::SimConfig sim;

  // Normalizer for sensor noise on queue-count observables
  // (observed_queue / observed_lane_queue). 0 (the default) preserves the
  // historical behavior of scaling queue noise by pressure_norm —
  // bit-identical goldens; set > 0 to give queue readings their own scale.
  double queue_norm = 0.0;

  // Route neighbor features through the same detector-capped, fault-aware
  // observables as local observations. Default false preserves the legacy
  // (bit-exact) behavior where neighbors read raw uncapped link counts
  // with no dropout/noise applied — the sensor-model bypass.
  bool sensor_consistent_obs = false;
};

/// Static description of one agent (intersection).
struct AgentSpec {
  sim::NodeId node = sim::kInvalidId;
  std::size_t num_phases = 0;
  std::vector<std::size_t> hop1;  ///< agent indices of 1-hop signalized neighbors
  std::vector<std::size_t> hop2;  ///< 2-hop (excluding self and hop1)
  std::vector<std::size_t> upstream;  ///< agent indices with a link into this node
};

class TscEnv {
 public:
  /// `net` must outlive the environment.
  TscEnv(const sim::RoadNetwork* net, std::vector<sim::FlowSpec> flows,
         EnvConfig config, std::uint64_t seed);

  std::size_t num_agents() const { return agents_.size(); }
  const AgentSpec& agent(std::size_t i) const { return agents_.at(i); }
  const EnvConfig& config() const { return config_; }

  /// Width of local_obs vectors (fixed across agents).
  std::size_t obs_dim() const;
  /// Width of neighbor_feat vectors (compact per-intersection summary).
  static constexpr std::size_t kNeighborFeatDim = 2;

  void reset(std::uint64_t seed);

  /// Independent replica of this environment (same network, flows, and
  /// config), reset with `seed` - for parallel rollout workers. The replica
  /// shares only the immutable RoadNetwork with the original; stepping one
  /// never affects the other. The network must outlive the replica.
  std::unique_ptr<TscEnv> clone(std::uint64_t seed) const;

  /// Seed of the current episode (set by reset/set_flows). Controllers use
  /// it to derive deterministic per-episode sampling streams.
  std::uint64_t episode_seed() const { return episode_seed_; }

  /// Replaces the traffic demand while keeping the network and agent roster
  /// (used to evaluate a policy trained on one flow pattern against the
  /// others, paper section VI-C). Implies reset(seed). Routes are validated
  /// against the network.
  void set_flows(std::vector<sim::FlowSpec> flows, std::uint64_t seed);

  bool done() const;
  double now() const { return sim_.now(); }
  std::size_t steps_taken() const { return steps_; }

  /// Applies one phase action per agent, advances the simulator by
  /// action_duration, and returns the per-agent rewards.
  /// actions[i] must be < agent(i).num_phases.
  std::vector<double> step(const std::vector<std::size_t>& actions);

  /// Local observation of agent i (Eq. 5 + phase context), normalized.
  std::vector<double> local_obs(std::size_t i) const;
  /// local_obs written straight into `out[0..obs_dim())` — the row-packing
  /// seam of the fleet-batched inference path, which fills shared batch
  /// matrices without a per-agent vector allocation. Same values as
  /// local_obs (that overload delegates here).
  void local_obs_into(std::size_t i, double* out) const;

  // Sensor-view link readings with this step's faults applied (dropout ->
  // zero reading, Gaussian noise added). ALL controllers - learned or
  // classic - must read traffic through these, never through the raw
  // simulator, so fault injection affects every method consistently.
  double observed_pressure(sim::LinkId link) const;
  double observed_queue(sim::LinkId link) const;
  double observed_lane_queue(sim::LinkId link, std::uint32_t lane) const;
  double observed_head_wait(sim::LinkId link) const;
  /// Detector-capped link count with this step's faults applied (the
  /// sensor-consistent replacement for raw sim link_count reads).
  double observed_count(sim::LinkId link) const;
  /// Fault-aware intersection pressure / halting (sums of observed_count /
  /// observed_queue over the node's links) — what neighbor features report
  /// under `sensor_consistent_obs`.
  double observed_intersection_pressure(sim::NodeId node) const;
  double observed_intersection_halting(sim::NodeId node) const;
  /// Compact features of agent i's intersection for consumption by other
  /// agents' critics / attention: {pressure, halting}, normalized.
  std::vector<double> neighbor_feat(std::size_t i) const;
  /// neighbor_feat written into `out[0..kNeighborFeatDim)` (row-packing
  /// seam; see local_obs_into).
  void neighbor_feat_into(std::size_t i, double* out) const;

  /// Zero-copy row seam for the batched inference engines: writes agent i's
  /// local observation into `actor_row[0..obs_dim())`, and — when
  /// `critic_row` is non-null — the critic input row (local obs prefix, then
  /// hop1_slots + hop2_slots neighbor-feature slots, zero-padded past the
  /// agent's actual neighbor lists). One call packs both batch matrices
  /// straight from the cached observation snapshot.
  void obs_into_row(std::size_t i, double* actor_row, double* critic_row,
                    std::size_t hop1_slots, std::size_t hop2_slots) const;

  /// Congestion score used for upstream pairing (halted vehicles on the
  /// intersection's incoming links).
  double congestion_score(std::size_t i) const;
  /// Index of the most congested upstream agent, or i itself when no
  /// upstream neighbor is more congested (paper section V-B).
  std::size_t most_congested_upstream(std::size_t i) const;

  sim::Simulator& simulator() { return sim_; }
  const sim::Simulator& simulator() const { return sim_; }

  // ---- episode metrics ----
  /// Mean over steps of the network average waiting time (Fig. 7/8 metric).
  double episode_avg_wait() const;
  /// Paper's travel-time metric over vehicles that entered the network
  /// (in-network unfinished vehicles charged to now(); spawn backlog
  /// excluded — see sim::Simulator::average_travel_time).
  double average_travel_time() const { return sim_.average_travel_time(); }
  /// Mean delay over every spawned vehicle, spawn backlog included.
  double average_delay() const { return sim_.average_delay(); }
  const std::vector<double>& wait_history() const { return wait_history_; }

 private:
  /// Resamples this step's per-link sensor faults (no-op with clean config).
  void resample_sensor_faults();

  /// Brings the per-link / per-agent observation snapshot up to date with
  /// the simulator, recomputing only rows for links the simulator stamped
  /// (or that hold a standing queue, whose head wait advances every tick).
  /// Lazy: triggered by the first observation read after the sim moved, so
  /// callers that step the simulator directly stay correct.
  void ensure_observations() const;
  void compute_neighbor_feat(std::size_t i, double* out) const;
  /// Scale applied to queue-count sensor noise (queue_norm, falling back to
  /// the legacy pressure_norm scaling when unset).
  double queue_noise_scale() const {
    return config_.queue_norm > 0.0 ? config_.queue_norm : config_.pressure_norm;
  }

  const sim::RoadNetwork* net_;
  EnvConfig config_;
  sim::Simulator sim_;
  std::vector<AgentSpec> agents_;
  std::vector<std::int32_t> agent_of_node_;  // node id -> agent index or -1
  std::size_t steps_ = 0;
  std::vector<double> wait_history_;
  std::uint64_t episode_seed_ = 0;
  Rng fault_rng_{0};
  std::vector<bool> sensor_failed_;   // per link, this step
  std::vector<double> sensor_noise_;  // per link, this step

  // ---- observation snapshot (lazily synced to the simulator) ----
  std::vector<sim::LinkId> obs_links_;      // in-links of signalized nodes
  mutable std::vector<double> link_obs_;    // 2/link: {pressure, head wait}, normalized
  mutable std::vector<double> feat_obs_;    // kNeighborFeatDim per agent
  mutable std::int64_t obs_synced_step_ = -1;  // sim step at last sync; -1 = full
};

}  // namespace tsc::env
