// Uniform controller interface so fixed-time, single-agent RL, MARL
// baselines, and PairUpLight can all be evaluated by the same harness.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/env/env.hpp"

namespace tsc::env {

/// Per-episode summary used by training curves and evaluation tables.
struct EpisodeStats {
  double avg_wait = 0.0;       ///< mean over steps of network avg waiting time
  double travel_time = 0.0;    ///< avg travel time of entered vehicles
  double delay = 0.0;          ///< avg delay of all spawned (incl. backlog)
  double mean_reward = 0.0;    ///< mean per-agent per-step reward
  std::size_t vehicles_finished = 0;
  std::size_t vehicles_spawned = 0;
};

/// Salt mixed into env.episode_seed() to derive the deterministic sampling
/// stream stochastic policies use during evaluation. Shared by the trainers
/// and their controllers so `trainer.eval_episode(s)` and
/// `run_episode(env, *trainer.make_controller(), s)` take identical actions.
inline constexpr std::uint64_t kEvalSampleSalt = 0x5EED5A17ULL;

/// A (possibly stateful) signal-control policy in inference mode.
class Controller {
 public:
  virtual ~Controller() = default;
  /// Called after env.reset(); clear recurrent state here.
  virtual void begin_episode(const TscEnv& env) { (void)env; }
  /// One phase index per agent for the current state.
  virtual std::vector<std::size_t> act(const TscEnv& env) = 0;
  virtual std::string name() const = 0;
};

/// Runs one full episode of `controller` on `env` (resetting with `seed`)
/// and returns the episode statistics.
EpisodeStats run_episode(TscEnv& env, Controller& controller, std::uint64_t seed);

/// Mean and sample standard deviation of episode stats over several seeds -
/// for statistically meaningful comparisons between controllers.
struct AggregateStats {
  EpisodeStats mean;
  EpisodeStats stddev;  ///< 0 when fewer than two seeds
  std::size_t runs = 0;
};

/// Runs one episode per seed and aggregates. Requires at least one seed.
AggregateStats run_episodes(TscEnv& env, Controller& controller,
                            const std::vector<std::uint64_t>& seeds);

}  // namespace tsc::env
