#include "src/env/controller.hpp"

#include <cmath>
#include <stdexcept>

namespace tsc::env {

EpisodeStats run_episode(TscEnv& env, Controller& controller, std::uint64_t seed) {
  env.reset(seed);
  controller.begin_episode(env);
  double reward_sum = 0.0;
  std::size_t reward_count = 0;
  while (!env.done()) {
    const auto actions = controller.act(env);
    const auto rewards = env.step(actions);
    for (double r : rewards) reward_sum += r;
    reward_count += rewards.size();
  }
  EpisodeStats stats;
  stats.avg_wait = env.episode_avg_wait();
  stats.travel_time = env.average_travel_time();
  stats.delay = env.average_delay();
  stats.mean_reward = reward_count ? reward_sum / static_cast<double>(reward_count) : 0.0;
  stats.vehicles_finished = env.simulator().vehicles_finished();
  stats.vehicles_spawned = env.simulator().vehicles_spawned();
  return stats;
}

AggregateStats run_episodes(TscEnv& env, Controller& controller,
                            const std::vector<std::uint64_t>& seeds) {
  if (seeds.empty()) throw std::invalid_argument("run_episodes: no seeds");
  std::vector<EpisodeStats> all;
  all.reserve(seeds.size());
  for (std::uint64_t seed : seeds) all.push_back(run_episode(env, controller, seed));

  AggregateStats agg;
  agg.runs = all.size();
  const double n = static_cast<double>(all.size());
  for (const EpisodeStats& s : all) {
    agg.mean.avg_wait += s.avg_wait / n;
    agg.mean.travel_time += s.travel_time / n;
    agg.mean.delay += s.delay / n;
    agg.mean.mean_reward += s.mean_reward / n;
    agg.mean.vehicles_finished += s.vehicles_finished;
    agg.mean.vehicles_spawned += s.vehicles_spawned;
  }
  agg.mean.vehicles_finished /= all.size();
  agg.mean.vehicles_spawned /= all.size();
  if (all.size() > 1) {
    // Sample variance (n-1), the convention shared with util/stats.
    double wait_var = 0.0, tt_var = 0.0, delay_var = 0.0, reward_var = 0.0;
    for (const EpisodeStats& s : all) {
      wait_var += (s.avg_wait - agg.mean.avg_wait) * (s.avg_wait - agg.mean.avg_wait);
      tt_var += (s.travel_time - agg.mean.travel_time) *
                (s.travel_time - agg.mean.travel_time);
      delay_var += (s.delay - agg.mean.delay) * (s.delay - agg.mean.delay);
      reward_var += (s.mean_reward - agg.mean.mean_reward) *
                    (s.mean_reward - agg.mean.mean_reward);
    }
    const double denom = n - 1.0;
    agg.stddev.avg_wait = std::sqrt(wait_var / denom);
    agg.stddev.travel_time = std::sqrt(tt_var / denom);
    agg.stddev.delay = std::sqrt(delay_var / denom);
    agg.stddev.mean_reward = std::sqrt(reward_var / denom);
  }
  return agg;
}

}  // namespace tsc::env
