#include "src/env/env.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

namespace tsc::env {

TscEnv::TscEnv(const sim::RoadNetwork* net, std::vector<sim::FlowSpec> flows,
               EnvConfig config, std::uint64_t seed)
    : net_(net), config_(config), sim_(net, std::move(flows), config.sim, seed) {
  const auto nodes = net_->signalized_nodes();
  agent_of_node_.assign(net_->num_nodes(), -1);
  agents_.reserve(nodes.size());
  for (sim::NodeId node : nodes) {
    AgentSpec spec;
    spec.node = node;
    spec.num_phases = net_->node(node).phases.size();
    if (spec.num_phases > config_.max_phases)
      throw std::invalid_argument("TscEnv: node exceeds max_phases");
    if (net_->node(node).in_links.size() > config_.max_in_links)
      throw std::invalid_argument("TscEnv: node exceeds max_in_links");
    agent_of_node_[node] = static_cast<std::int32_t>(agents_.size());
    agents_.push_back(std::move(spec));
  }
  // Neighbor graphs (indices into agents_).
  for (AgentSpec& spec : agents_) {
    for (sim::NodeId nb : net_->neighbor_signalized(spec.node))
      spec.hop1.push_back(static_cast<std::size_t>(agent_of_node_[nb]));
    for (sim::NodeId nb : net_->upstream_signalized(spec.node))
      spec.upstream.push_back(static_cast<std::size_t>(agent_of_node_[nb]));
    std::set<std::size_t> two_hop;
    for (std::size_t nb : spec.hop1)
      for (sim::NodeId nb2 : net_->neighbor_signalized(agents_[nb].node))
        two_hop.insert(static_cast<std::size_t>(agent_of_node_[nb2]));
    const std::size_t self = static_cast<std::size_t>(agent_of_node_[spec.node]);
    two_hop.erase(self);
    for (std::size_t nb : spec.hop1) two_hop.erase(nb);
    spec.hop2.assign(two_hop.begin(), two_hop.end());
  }
  // Observation snapshot covers exactly the links local observations read.
  std::set<sim::LinkId> in_links;
  for (const AgentSpec& spec : agents_)
    for (sim::LinkId l : net_->node(spec.node).in_links) in_links.insert(l);
  obs_links_.assign(in_links.begin(), in_links.end());
  link_obs_.assign(2 * net_->num_links(), 0.0);
  feat_obs_.assign(kNeighborFeatDim * agents_.size(), 0.0);
}

std::size_t TscEnv::obs_dim() const {
  return 2 * config_.max_in_links + config_.max_phases + 1;
}

std::unique_ptr<TscEnv> TscEnv::clone(std::uint64_t seed) const {
  return std::make_unique<TscEnv>(net_, sim_.flows(), config_, seed);
}

void TscEnv::reset(std::uint64_t seed) {
  sim_.reset(seed);
  episode_seed_ = seed;
  steps_ = 0;
  wait_history_.clear();
  fault_rng_ = Rng(seed ^ 0xFA417ULL);
  resample_sensor_faults();
  obs_synced_step_ = -1;  // fresh episode: full snapshot rebuild
}

void TscEnv::set_flows(std::vector<sim::FlowSpec> flows, std::uint64_t seed) {
  sim_ = sim::Simulator(net_, std::move(flows), config_.sim, seed);
  episode_seed_ = seed;
  steps_ = 0;
  wait_history_.clear();
  fault_rng_ = Rng(seed ^ 0xFA417ULL);
  resample_sensor_faults();
  obs_synced_step_ = -1;
}

void TscEnv::resample_sensor_faults() {
  const bool clean = config_.sensor_noise_std == 0.0 && config_.sensor_dropout == 0.0;
  if (clean) {
    sensor_failed_.assign(net_->num_links(), false);
    sensor_noise_.assign(net_->num_links(), 0.0);
    return;
  }
  sensor_failed_.resize(net_->num_links());
  sensor_noise_.resize(net_->num_links());
  for (std::size_t l = 0; l < net_->num_links(); ++l) {
    sensor_failed_[l] = fault_rng_.bernoulli(config_.sensor_dropout);
    sensor_noise_[l] = config_.sensor_noise_std > 0.0
                           ? fault_rng_.normal(0.0, config_.sensor_noise_std)
                           : 0.0;
  }
}

bool TscEnv::done() const { return sim_.now() >= config_.episode_seconds - 1e-9; }

std::vector<double> TscEnv::step(const std::vector<std::size_t>& actions) {
  if (actions.size() != agents_.size())
    throw std::invalid_argument("TscEnv::step: wrong action count");
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    if (actions[i] >= agents_[i].num_phases)
      throw std::out_of_range("TscEnv::step: phase index out of range");
    sim_.set_phase(agents_[i].node, actions[i]);
  }
  sim_.step_seconds(config_.action_duration);
  ++steps_;
  wait_history_.push_back(sim_.network_avg_wait());
  resample_sensor_faults();

  std::vector<double> rewards(agents_.size());
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    const sim::NodeId node = agents_[i].node;
    const double halting = sim_.intersection_halting(node);
    const double max_wait = sim_.intersection_max_head_wait(node);
    rewards[i] = -config_.reward_scale * (halting + max_wait);
  }
  return rewards;
}

std::vector<double> TscEnv::local_obs(std::size_t i) const {
  std::vector<double> obs(obs_dim());
  local_obs_into(i, obs.data());
  return obs;
}

void TscEnv::ensure_observations() const {
  const std::int64_t step = sim_.step_count();
  if (obs_synced_step_ == step) return;
  const bool faults =
      config_.sensor_noise_std != 0.0 || config_.sensor_dropout != 0.0;
  // With faults active every link's reading changes each decision step (the
  // fault draws are resampled), so the dirty-set only pays off on the clean
  // path — which is also the hot one (training and throughput benches).
  const bool full = faults || obs_synced_step_ < 0;
  const auto& stamps = sim_.obs_event_steps();
  for (sim::LinkId l : obs_links_) {
    // A link is dirty when the simulator stamped it since the last sync, or
    // when it holds a standing queue (head wait advances every tick without
    // any push/pop event).
    if (!full && stamps[l] < obs_synced_step_ && sim_.link_queue(l) == 0)
      continue;
    link_obs_[2 * l] = observed_pressure(l) / config_.pressure_norm;
    link_obs_[2 * l + 1] = observed_head_wait(l) / config_.wait_norm;
  }
  // Per-agent summary feats are O(node degree) over O(1) cached reads:
  // recomputing all of them is cheaper than tracking node-level dirtiness.
  for (std::size_t i = 0; i < agents_.size(); ++i)
    compute_neighbor_feat(i, &feat_obs_[kNeighborFeatDim * i]);
  obs_synced_step_ = step;
}

void TscEnv::local_obs_into(std::size_t i, double* out) const {
  ensure_observations();
  const AgentSpec& spec = agents_.at(i);
  const sim::Node& node = net_->node(spec.node);
  for (std::size_t slot = 0; slot < config_.max_in_links; ++slot) {
    if (slot < node.in_links.size()) {
      const sim::LinkId link = node.in_links[slot];
      *out++ = link_obs_[2 * link];
      *out++ = link_obs_[2 * link + 1];
    } else {
      *out++ = 0.0;
      *out++ = 0.0;
    }
  }
  const sim::SignalController& sig = sim_.signal(spec.node);
  for (std::size_t p = 0; p < config_.max_phases; ++p)
    *out++ = p == sig.phase() ? 1.0 : 0.0;
  *out++ = std::min(sig.green_elapsed() / 60.0, 2.0);
}

double TscEnv::observed_pressure(sim::LinkId link) const {
  if (!sensor_failed_.empty() && sensor_failed_[link]) return 0.0;
  const double noise = sensor_noise_.empty() ? 0.0 : sensor_noise_[link];
  return sim_.link_pressure(link) + noise * config_.pressure_norm;
}

double TscEnv::observed_queue(sim::LinkId link) const {
  if (!sensor_failed_.empty() && sensor_failed_[link]) return 0.0;
  const double noise = sensor_noise_.empty() ? 0.0 : sensor_noise_[link];
  return std::max(0.0, static_cast<double>(sim_.detector_queue(link)) +
                           noise * queue_noise_scale());
}

double TscEnv::observed_lane_queue(sim::LinkId link, std::uint32_t lane) const {
  if (!sensor_failed_.empty() && sensor_failed_[link]) return 0.0;
  const double noise = sensor_noise_.empty() ? 0.0 : sensor_noise_[link];
  return std::max(0.0, static_cast<double>(sim_.lane_queue(link, lane)) +
                           noise * queue_noise_scale());
}

double TscEnv::observed_count(sim::LinkId link) const {
  if (!sensor_failed_.empty() && sensor_failed_[link]) return 0.0;
  const double noise = sensor_noise_.empty() ? 0.0 : sensor_noise_[link];
  return std::max(0.0, static_cast<double>(sim_.detector_count(link)) +
                           noise * queue_noise_scale());
}

double TscEnv::observed_intersection_pressure(sim::NodeId node) const {
  const sim::Node& n = net_->node(node);
  double p = 0.0;
  for (sim::LinkId l : n.in_links) p += observed_count(l);
  for (sim::LinkId l : n.out_links) p -= observed_count(l);
  return p;
}

double TscEnv::observed_intersection_halting(sim::NodeId node) const {
  double h = 0.0;
  for (sim::LinkId l : net_->node(node).in_links) h += observed_queue(l);
  return h;
}

double TscEnv::observed_head_wait(sim::LinkId link) const {
  if (!sensor_failed_.empty() && sensor_failed_[link]) return 0.0;
  const double noise = sensor_noise_.empty() ? 0.0 : sensor_noise_[link];
  return std::max(0.0, sim_.detector_head_wait(link) + noise * config_.wait_norm);
}

std::vector<double> TscEnv::neighbor_feat(std::size_t i) const {
  std::vector<double> feat(kNeighborFeatDim);
  neighbor_feat_into(i, feat.data());
  return feat;
}

void TscEnv::compute_neighbor_feat(std::size_t i, double* out) const {
  const sim::NodeId node = agents_[i].node;
  if (config_.sensor_consistent_obs) {
    out[0] = observed_intersection_pressure(node) / config_.pressure_norm;
    out[1] = observed_intersection_halting(node) / config_.pressure_norm;
  } else {
    // Legacy bypass: raw uncapped link counts, no dropout/noise.
    out[0] = sim_.intersection_pressure(node) / config_.pressure_norm;
    out[1] = static_cast<double>(sim_.intersection_halting(node)) /
             config_.pressure_norm;
  }
}

void TscEnv::neighbor_feat_into(std::size_t i, double* out) const {
  ensure_observations();
  const double* src = &feat_obs_.at(kNeighborFeatDim * i);
  out[0] = src[0];
  out[1] = src[1];
}

void TscEnv::obs_into_row(std::size_t i, double* actor_row, double* critic_row,
                          std::size_t hop1_slots, std::size_t hop2_slots) const {
  local_obs_into(i, actor_row);
  if (critic_row == nullptr) return;
  const std::size_t prefix = obs_dim();
  std::copy(actor_row, actor_row + prefix, critic_row);
  double* p = critic_row + prefix;
  const AgentSpec& spec = agents_.at(i);
  for (std::size_t slot = 0; slot < hop1_slots; ++slot, p += kNeighborFeatDim) {
    if (slot < spec.hop1.size()) {
      const double* src = feat_obs_.data() + kNeighborFeatDim * spec.hop1[slot];
      p[0] = src[0];
      p[1] = src[1];
    } else {
      p[0] = 0.0;
      p[1] = 0.0;
    }
  }
  for (std::size_t slot = 0; slot < hop2_slots; ++slot, p += kNeighborFeatDim) {
    if (slot < spec.hop2.size()) {
      const double* src = feat_obs_.data() + kNeighborFeatDim * spec.hop2[slot];
      p[0] = src[0];
      p[1] = src[1];
    } else {
      p[0] = 0.0;
      p[1] = 0.0;
    }
  }
}

double TscEnv::congestion_score(std::size_t i) const {
  return static_cast<double>(sim_.intersection_halting(agents_.at(i).node));
}

std::size_t TscEnv::most_congested_upstream(std::size_t i) const {
  const AgentSpec& spec = agents_.at(i);
  std::size_t best = i;
  double best_score = congestion_score(i);
  for (std::size_t up : spec.upstream) {
    const double score = congestion_score(up);
    if (score > best_score) {
      best_score = score;
      best = up;
    }
  }
  return best;
}

double TscEnv::episode_avg_wait() const {
  if (wait_history_.empty()) return 0.0;
  double total = 0.0;
  for (double w : wait_history_) total += w;
  return total / static_cast<double>(wait_history_.size());
}

}  // namespace tsc::env
