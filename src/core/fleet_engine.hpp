// Fleet-batched rollout collection: all environment replicas stepped in
// lockstep on ONE thread, with every layer forward running as a single
// (num_envs * num_agents)-row GEMM per model bucket.
//
// The per-agent path (core/rollout_engine.hpp) runs each replica's episode
// independently: per env step it packs at most num_agents rows per forward,
// and with num_envs > 1 it buys throughput only from thread overlap — which
// on few hardware threads is nearly nothing. The fleet engine instead holds
// ONE decision batch for the whole fleet: observation rows from every
// replica are packed into shared SoA batch matrices (reused
// InferenceWorkspace slots, one persistent row-block layout per fleet), the
// actor/critic forwards run once per model bucket at fleet batch size
// through the multi-row blocked GEMM kernel (nn::matmul_into_batched), and
// LSTM h/c plus outgoing messages stay resident in fleet-ordered slab
// tensors (row = env * num_agents + agent) instead of per-agent vectors.
//
// Heterogeneous networks bucket agents by model exactly like
// decide_step's groups: under parameter sharing one bucket holds all
// agents (homogeneous obs/phase shape by construction); without sharing
// (Monaco) each agent's model is its own bucket and the fleet batches that
// agent's rows across replicas. Per-agent phase masks are applied at the
// logits inside the bucket's batched forward, so phase-count heterogeneity
// never splits a bucket.
//
// BIT-IDENTITY CONTRACT: for the same slots (env seeds, exploration
// streams, weights) the fleet engine reproduces the per-agent engine's
// trajectories bit-for-bit — actions, log-probs, values, messages, buffer
// contents, stats. Three properties carry the proof:
//  1. Every kernel is row-independent and the batched GEMM is bit-identical
//     to the reference kernel (nn/tensor.hpp), so packing more rows into a
//     batch never changes any row's result.
//  2. Gather order: ALL buckets' input rows are packed (and partners
//     picked, env-ascending then agent-ascending) before any bucket's
//     forward/scatter runs, so every agent sees the PREVIOUS step's
//     messages — decide_step's synchronous sweep.
//  3. Scatter order: buckets are processed in model order and each bucket's
//     rows env-major (members ascending within an env), so each env's RNG
//     stream is consumed in exactly decide_step's per-agent order. Streams
//     are per-env, so interleaving across envs is unobservable.
// tests/test_inference_path.cpp pins the contract for num_envs in {1,2,4},
// heterogeneous Monaco buckets, and multi-episode LSTM carry.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/core/rollout_engine.hpp"

namespace tsc::core {

/// One replica's bindings for a lockstep fleet run. All pointers are
/// non-owning and must outlive the run; `rng` is the slot's exploration
/// stream (required in train mode, and whenever the pairing strategy
/// draws); `buffer` is required in train mode.
struct FleetSlot {
  env::TscEnv* env = nullptr;
  std::uint64_t seed = 0;
  Rng* rng = nullptr;
  rl::RolloutBuffer* buffer = nullptr;
};

class FleetRolloutEngine {
 public:
  /// Captures the live models (read-only during runs; single-threaded, so
  /// no copies or weight sync needed). Layout parameters mirror
  /// RolloutContext.
  FleetRolloutEngine(const PairUpConfig* config,
                     std::vector<CoordinatedActor*> actors,
                     std::vector<CentralizedCritic*> critics,
                     std::size_t hop1_slots, std::size_t hop2_slots,
                     std::size_t critic_input_dim);

  /// Runs one full episode on every slot in lockstep (each env reset with
  /// its slot seed). Train mode records into each slot's buffer, bootstraps
  /// the terminal value, and runs GAE per agent — the fleet equivalent of
  /// run_rollout_episode(train_mode=true) per slot. Eval mode follows
  /// config.greedy_eval (stochastic eval streams derive from each slot's
  /// seed, like the serial path). Returns per-slot stats in slot order.
  /// The slot count may differ between calls; buffers reaching their peak
  /// fleet shape stop allocating (alloc_events()).
  std::vector<env::EpisodeStats> run_episodes(std::vector<FleetSlot>& slots,
                                              bool train_mode, double epsilon);

  /// Workspace + state-slab allocation events: warmup (first episodes at a
  /// new peak fleet size) allocates, steady state is exactly zero — the
  /// fleet extension of the InferenceWorkspace::alloc_events() contract.
  std::size_t alloc_events() const { return ws_.alloc_events() + slab_events_; }
  const nn::InferenceWorkspace& workspace() const { return ws_; }

  /// Protocol-inspection views of a slot's episode, recorded at its final
  /// decision (matching RolloutContext.last_messages / last_partners).
  const std::vector<std::vector<double>>& last_messages(std::size_t slot) const {
    return last_messages_.at(slot);
  }
  const std::vector<std::size_t>& last_partners(std::size_t slot) const {
    return last_partners_.at(slot);
  }

 private:
  /// One lockstep decision for the envs listed in `active` (indices into
  /// `slots`). Fills actions_/values_ for those envs; `record` adds buffer
  /// samples, `sample_rngs` (per slot, nullable) drives stochastic eval.
  void decide_fleet(std::vector<FleetSlot>& slots,
                    const std::vector<std::size_t>& active, bool explore,
                    bool record, std::vector<Rng>* sample_rngs);

  /// Slab reshape that counts backing-storage growth like
  /// InferenceWorkspace::acquire (slabs never shrink capacity).
  void reshape_slab(nn::Tensor& slab, std::size_t rows, std::size_t cols);

  const PairUpConfig* config_;
  std::vector<CoordinatedActor*> actors_;
  std::vector<CentralizedCritic*> critics_;
  std::size_t hop1_slots_ = 0, hop2_slots_ = 0;
  std::size_t critic_input_dim_ = 0;

  nn::InferenceWorkspace ws_;
  std::size_t slab_events_ = 0;
  /// Fleet-ordered recurrent/message state; row = slot * num_agents + agent.
  nn::Tensor h_a_, c_a_, h_v_, c_v_, msg_;

  double epsilon_ = 0.0;  ///< exploration epsilon of the current run

  // Per-run scratch (capacities persist across runs).
  std::vector<std::vector<std::size_t>> groups_;   ///< model -> member agents
  std::vector<std::size_t> pos_in_bucket_;         ///< agent -> index in its bucket
  /// Per-bucket batch tensors of the current decision pass, in acquisition
  /// order: actor input, h_a, c_a, critic input, h_v, c_v.
  std::vector<std::array<nn::Tensor*, 6>> bucket_slots_;
  std::vector<std::size_t> active_;                ///< live slot indices
  std::vector<std::size_t> newly_done_;
  std::vector<double> reward_sum_;                 ///< [slot]
  std::vector<std::size_t> reward_count_;          ///< [slot]
  std::vector<std::vector<std::size_t>> actions_;  ///< [slot][agent]
  std::vector<std::vector<double>> values_;        ///< [slot][agent]
  std::vector<std::vector<std::size_t>> partners_; ///< [slot][agent]
  std::vector<std::size_t> phase_counts_;          ///< per-bucket batch scratch
  std::vector<double> cat_weights_;                ///< categorical scratch
  std::vector<std::vector<std::vector<double>>> last_messages_;
  std::vector<std::vector<std::size_t>> last_partners_;
};

}  // namespace tsc::core
