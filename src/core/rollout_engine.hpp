// Episode-rollout engine shared by the serial trainer path and the parallel
// rollout workers.
//
// Everything one episode touches is passed through RolloutContext, so the
// identical code drives both (a) the trainer's own environment and networks
// (the num_envs = 1 serial path, bit-identical to the historical trainer)
// and (b) a worker's environment replica plus frozen network copies on a
// thread-pool thread. Nothing in here uses global or trainer state.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/actor.hpp"
#include "src/core/critic.hpp"
#include "src/env/controller.hpp"
#include "src/env/env.hpp"
#include "src/nn/inference.hpp"
#include "src/nn/tape.hpp"
#include "src/rl/ppo.hpp"
#include "src/rl/rollout.hpp"
#include "src/util/rng.hpp"

namespace tsc::core {

/// Who an agent listens to (ablation of the paper's section V-B design;
/// the paper's choice is kMostCongestedUpstream).
enum class PairingStrategy {
  kMostCongestedUpstream,  ///< paper: congestion-first upstream neighbor
  kSelf,                   ///< listen to own previous message only
  kRandomNeighbor,         ///< uniformly random upstream neighbor per step
  kFixedUpstream,          ///< first upstream neighbor, never re-paired
};

/// How each PPO minibatch's forward/backward work is laid out across the
/// update shards (core/update_engine.hpp has the full determinism argument).
enum class UpdateMode {
  /// Single batched pass on the calling thread, regardless of
  /// num_update_shards: the historical golden-tested update.
  kSerial,
  /// One single-row tape per sample, sharded across workers; per-sample
  /// gradient slots are folded in global sample order, so weights are
  /// BIT-IDENTICAL to kSerial for every shard count.
  kPerSampleShards,
  /// One batched forward/backward per worker over its contiguous minibatch
  /// slice; per-shard gradient slots are folded in shard order. Each weight
  /// gradient's row fold is re-associated at shard boundaries, so weights
  /// are tolerance-bounded against kSerial, not bit-identical — but every
  /// Linear/LSTM op runs at rows = shard size instead of rows = 1.
  kBatchedShards,
};

/// Which backward implementation the PPO update runs. Orthogonal to
/// UpdateMode: every shard layout supports both paths, and the two produce
/// BIT-IDENTICAL losses, gradients, and weight trajectories (the fused
/// kernels replay the tape's FP accumulation orders — nn/backward.hpp has
/// the contract, tests/test_backward_path.cpp the pins).
enum class UpdatePath {
  /// Autodiff tape (nn/tape.hpp): per-minibatch graph construction, node
  /// allocation, and closure dispatch. The oracle the fused path is pinned
  /// against.
  kTape,
  /// Tape-free fused forward/backward (nn/backward.hpp): preallocated
  /// workspace slots, hand-written analytic kernels, gradients accumulated
  /// straight into the per-slot sinks. Same numbers, ~2x+ update
  /// throughput.
  kFused,
};

struct PairUpConfig {
  rl::PpoConfig ppo;
  std::size_t hidden = 64;
  std::size_t msg_dim = 1;      ///< communication bandwidth (Fig. 11: 1 vs 2)
  double msg_sigma = 0.1;       ///< regularizer noise std during training
  bool comm_enabled = true;     ///< false = no-communication ablation (Fig. 8)
  PairingStrategy pairing = PairingStrategy::kMostCongestedUpstream;
  /// Evaluation action rule. PPO learns a stochastic policy, so by default
  /// evaluation SAMPLES from it (with a deterministic per-episode stream);
  /// a barely-trained policy's argmax can freeze a phase and gridlock.
  /// Set true to evaluate the argmax policy instead.
  bool greedy_eval = false;
  /// Neighbor rings fed to the centralized critic: 0 = local only,
  /// 1 = +one-hop, 2 = +two-hop (the paper's design).
  std::size_t critic_hops = 2;
  /// One shared actor/critic for all agents (homogeneous grids) or one per
  /// agent (heterogeneous networks, paper section VI-D).
  bool parameter_sharing = true;
  /// Parallel rollout collection: number of environment replicas collecting
  /// episodes concurrently per training step. 1 = the exact historical
  /// serial path (no threads, bit-identical trajectories); K > 1 collects K
  /// full episodes per PPO update on K worker threads. Results are
  /// deterministic for a fixed K but differ across K (different episode
  /// seeds and batch composition).
  std::size_t num_envs = 1;
  /// Worker-count-invariant seeding: derive each collected episode's env
  /// seed from the GLOBAL episode index (seed + round * num_envs + slot)
  /// instead of the round's seeder stream, so the sequence of env seeds —
  /// and hence the traffic each policy update sees — is identical for every
  /// num_envs (training curves stay comparable when scaling workers).
  /// Exploration streams for parallel workers derive from the env seed.
  /// false = the historical slot-dependent seeder (bit-identical legacy).
  /// With num_envs = 1 both modes use seed + round, so the serial golden
  /// path is unchanged either way.
  bool invariant_seeding = false;
  /// Parallel PPO update: number of shards each minibatch's
  /// forward/backward is split across. 1 = the exact historical serial
  /// update (single batched pass, no threads); K > 1 splits the work over K
  /// worker threads on the frozen weights and reduces the gradient slots in
  /// a fixed order before the single clip + Adam step. Under
  /// kPerSampleShards gradients are bit-identical for every value,
  /// including 1, so — unlike num_envs — training curves can be compared
  /// across shard counts (see core/update_engine.hpp for the argument and
  /// its golden tests).
  std::size_t num_update_shards = 1;
  /// Work layout of the sharded update (only consulted when
  /// num_update_shards > 1; a single shard always runs kSerial).
  /// kPerSampleShards keeps the bit-identical guarantee above;
  /// kBatchedShards (the default) runs one batched matmul per worker —
  /// weights then track the serial run within a pinned tolerance instead of
  /// exactly (tests/test_update_modes.cpp); select kPerSampleShards to keep
  /// the bit-identical guarantee at the cost of rows = 1 matmuls.
  UpdateMode update_mode = UpdateMode::kBatchedShards;
  /// Backward implementation of the PPO update (env: PAIRUP_UPDATE_PATH =
  /// tape|fused). kFused (default) runs the tape-free analytic backward —
  /// bit-identical to the tape for every update_mode and shard count, so
  /// all goldens exercise it; kTape keeps the autodiff tape (the oracle,
  /// for A-B comparison and the bitwise pins).
  UpdatePath update_path = UpdatePath::kFused;
  /// Rollout/evaluation forwards run on the tape-free inference path
  /// (nn/inference.hpp): preallocated workspace buffers, no autodiff
  /// bookkeeping, bit-identical actions/logits/messages/values
  /// (tests/test_inference_path.cpp). Set false to force every forward
  /// through the tape (debug / A-B comparison).
  bool inference_path = true;
  /// Fleet-batched rollout collection (core/fleet_engine.hpp): step all
  /// num_envs replicas in lockstep on the calling thread and run every
  /// layer forward as one (num_envs * num_agents)-row GEMM per model
  /// bucket, with LSTM h/c state resident in fleet-ordered slabs.
  /// Trajectories, merged buffers, stats, and trained weights are
  /// BIT-IDENTICAL to the per-agent path at the same num_envs (fleet
  /// consumes each env's RNG streams in the per-agent order; the batched
  /// GEMM kernel is bit-identical — tests/test_inference_path.cpp pins
  /// both). false (default) keeps the per-agent path as the oracle; the
  /// fleet path wins on few hardware threads, where env replicas cannot
  /// overlap anyway. Requires inference_path (the fleet engine has no tape
  /// fallback).
  bool fleet_batched = false;
  /// Math-kernel tier for the tape-free inference path (nn/kernels.hpp).
  /// kReference (default) keeps the bit-exact legacy kernels everywhere.
  /// kFast runs rollout collection and evaluation forwards through the
  /// SIMD/FMA kernels — tolerance-bounded against reference (documented
  /// error budgets in nn/kernels.hpp; divergence contract in the README
  /// determinism matrix), NOT bit-identical, so training trajectories
  /// diverge the way the `batched` update mode does. The PPO update itself
  /// (tape forward/backward) always runs reference-tier kernels regardless
  /// of this knob, as does the tape fallback when inference_path = false.
  nn::KernelTier kernel_tier = nn::KernelTier::kReference;
  std::uint64_t seed = 1;
};

/// Per-agent recurrent + message runtime state.
struct AgentState {
  std::vector<double> h_a, c_a;      ///< actor LSTM state
  std::vector<double> h_v, c_v;      ///< critic LSTM state
  std::vector<double> msg_out;       ///< last regularized outgoing message
};

/// One decision for every agent.
struct StepDecision {
  std::vector<std::size_t> actions;
  std::vector<double> log_probs;
  std::vector<double> values;
};

/// The mutable collaborators of one episode. All pointers are non-owning;
/// none of them may be shared with a concurrently running context (the Rng
/// in particular - see util/rng.hpp).
struct RolloutContext {
  env::TscEnv* env = nullptr;
  const PairUpConfig* config = nullptr;
  std::vector<CoordinatedActor*> actors;      ///< one, or one per agent
  std::vector<CentralizedCritic*> critics;
  std::size_t hop1_slots = 0;
  std::size_t hop2_slots = 0;
  std::size_t critic_input_dim = 0;
  Rng* rng = nullptr;           ///< exploration stream (training noise)
  double epsilon = 0.0;         ///< epsilon-greedy value for this episode
  nn::Tape* tape = nullptr;     ///< reusable scratch tape (reset per forward)
  /// Tape-free inference workspace; when non-null (and the config enables
  /// it) decide_step runs forward_inference instead of the tape forward.
  /// Must not be shared with a concurrently running context.
  nn::InferenceWorkspace* workspace = nullptr;
  /// Outputs recorded at the last decision (protocol inspection).
  std::vector<std::vector<double>>* last_messages = nullptr;
  std::vector<std::size_t>* last_partners = nullptr;

  std::size_t model_of(std::size_t agent) const {
    return config->parameter_sharing ? 0 : agent;
  }
};

/// Zero-initializes one AgentState per environment agent.
void reset_agent_states(const RolloutContext& ctx, std::vector<AgentState>& states);

/// Communication partner of `agent` under the configured strategy.
std::size_t pick_partner(RolloutContext& ctx, std::size_t agent);

/// Context-free overload shared with the fleet engine: same branches and the
/// same `rng` consumption (one uniform_int draw exactly when the strategy is
/// kRandomNeighbor and the agent has upstream neighbors).
std::size_t pick_partner(const env::TscEnv& env, const PairUpConfig& config,
                         Rng* rng, std::size_t agent);

/// One decision for every agent; fills per-agent outputs. When `explore` is
/// set, actions follow the configured exploration rule and messages get
/// regularizer noise; otherwise greedy + noiseless. `sample_rng`: when
/// non-null and not exploring, actions are sampled from the policy with
/// this stream (stochastic evaluation); when null, non-exploring decisions
/// take the argmax.
StepDecision decide_step(RolloutContext& ctx, std::vector<AgentState>& states,
                         bool explore, rl::RolloutBuffer* buffer,
                         Rng* sample_rng = nullptr);

/// One full episode on ctx.env (reset with `seed`). In train mode the
/// rollout is recorded into `buffer` (required non-null), the terminal
/// value is bootstrapped, and GAE is run per agent; in eval mode `buffer`
/// is ignored and actions are greedy/sampled per config.greedy_eval.
env::EpisodeStats run_rollout_episode(RolloutContext& ctx, std::uint64_t seed,
                                      bool train_mode, rl::RolloutBuffer* buffer);

namespace detail {
/// Packs per-agent vectors into a [rows.size(), width] tensor.
nn::Tensor pack_rows(const std::vector<std::vector<double>>& rows, std::size_t width);
std::vector<double> extract_row(const nn::Tensor& t, std::size_t r);
}  // namespace detail

}  // namespace tsc::core
