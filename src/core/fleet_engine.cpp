#include "src/core/fleet_engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tsc::core {

using tsc::nn::Tensor;

FleetRolloutEngine::FleetRolloutEngine(const PairUpConfig* config,
                                       std::vector<CoordinatedActor*> actors,
                                       std::vector<CentralizedCritic*> critics,
                                       std::size_t hop1_slots,
                                       std::size_t hop2_slots,
                                       std::size_t critic_input_dim)
    : config_(config),
      actors_(std::move(actors)),
      critics_(std::move(critics)),
      hop1_slots_(hop1_slots),
      hop2_slots_(hop2_slots),
      critic_input_dim_(critic_input_dim) {
  assert(config_->inference_path && "fleet engine has no tape fallback");
  // All layer forwards through this workspace take the multi-row blocked
  // GEMM (bit-identical to the reference kernel; see nn/tensor.hpp) — or,
  // in the fast tier, the FMA GEMM plus the vectorized gate nonlinearities
  // (tolerance-bounded; nn/kernels.hpp).
  ws_.set_batched_gemm(true);
  ws_.set_kernel_tier(config_->kernel_tier);
}

void FleetRolloutEngine::reshape_slab(Tensor& slab, std::size_t rows,
                                      std::size_t cols) {
  const std::size_t cap_before = slab.values().capacity();
  slab.reshape(rows, cols);
  if (slab.values().capacity() != cap_before) ++slab_events_;
}

void FleetRolloutEngine::decide_fleet(std::vector<FleetSlot>& slots,
                                      const std::vector<std::size_t>& active,
                                      bool explore, bool record,
                                      std::vector<Rng>* sample_rngs) {
  const std::size_t num_active = active.size();
  const std::size_t n = slots[active.front()].env->num_agents();
  const std::size_t hidden = config_->hidden;
  const std::size_t msg_dim = config_->msg_dim;
  const std::size_t obs_dim = slots[active.front()].env->obs_dim();
  const std::size_t actor_in_dim = obs_dim + msg_dim;

  // Phase 1 — partner picks, env-ascending then agent-ascending: each env's
  // exploration stream is consumed in exactly decide_step's gather order.
  for (std::size_t a = 0; a < num_active; ++a) {
    const std::size_t w = active[a];
    FleetSlot& slot = slots[w];
    for (std::size_t i = 0; i < n; ++i)
      partners_[w][i] = pick_partner(*slot.env, *config_, slot.rng, i);
  }

  // Phase 2 — acquire every bucket's batch tensors, then pack ALL input
  // rows before any forward runs: everyone reads the PREVIOUS step's
  // messages (decide_step's synchronous sweep; matters when agents span
  // multiple buckets, since a bucket's scatter updates its message rows).
  ws_.begin_pass();
  for (std::size_t m = 0; m < groups_.size(); ++m) {
    if (groups_[m].empty()) continue;
    const std::size_t rows = num_active * groups_[m].size();
    auto& bs = bucket_slots_[m];
    bs[0] = &ws_.acquire(rows, actor_in_dim);
    bs[1] = &ws_.acquire(rows, hidden);
    bs[2] = &ws_.acquire(rows, hidden);
    bs[3] = &ws_.acquire(rows, critic_input_dim_);
    bs[4] = &ws_.acquire(rows, hidden);
    bs[5] = &ws_.acquire(rows, hidden);
  }
  for (std::size_t a = 0; a < num_active; ++a) {
    const std::size_t w = active[a];
    env::TscEnv& env = *slots[w].env;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t m = config_->parameter_sharing ? 0 : i;
      const std::size_t row = a * groups_[m].size() + pos_in_bucket_[i];
      auto& bs = bucket_slots_[m];

      // Actor + critic rows in one zero-copy call: local obs straight into
      // the actor batch row, obs prefix + padded 1-hop/2-hop neighbor
      // features (paper section V-B) into the critic row, all from the
      // env's cached observation snapshot.
      double* in_row = bs[0]->data() + row * actor_in_dim;
      double* v_row = bs[3]->data() + row * critic_input_dim_;
      env.obs_into_row(i, in_row, v_row, hop1_slots_, hop2_slots_);
      // Then the partner's previous regularized message (or zeros when comm
      // is off).
      if (config_->comm_enabled) {
        const double* msg_src = msg_.data() + (w * n + partners_[w][i]) * msg_dim;
        std::copy(msg_src, msg_src + msg_dim, in_row + obs_dim);
      } else {
        std::fill(in_row + obs_dim, in_row + obs_dim + msg_dim, 0.0);
      }

      // Recurrent state rows come straight from the resident slabs.
      const std::size_t srow = (w * n + i) * hidden;
      std::copy(h_a_.data() + srow, h_a_.data() + srow + hidden,
                bs[1]->data() + row * hidden);
      std::copy(c_a_.data() + srow, c_a_.data() + srow + hidden,
                bs[2]->data() + row * hidden);
      std::copy(h_v_.data() + srow, h_v_.data() + srow + hidden,
                bs[4]->data() + row * hidden);
      std::copy(c_v_.data() + srow, c_v_.data() + srow + hidden,
                bs[5]->data() + row * hidden);
    }
  }

  // Phase 3 — per bucket (model order): one fleet-sized batched forward,
  // then the scatter. Rows are env-major with members ascending inside an
  // env, so each env's RNG draws happen in decide_step's per-agent order.
  for (std::size_t m = 0; m < groups_.size(); ++m) {
    const auto& members = groups_[m];
    if (members.empty()) continue;
    const std::size_t bucket = members.size();
    const std::size_t rows = num_active * bucket;
    CoordinatedActor& actor = *actors_[m];
    CentralizedCritic& critic = *critics_[m];
    auto& bs = bucket_slots_[m];
    env::TscEnv& env0 = *slots[active.front()].env;

    phase_counts_.resize(rows);
    for (std::size_t a = 0; a < num_active; ++a)
      for (std::size_t b = 0; b < bucket; ++b)
        phase_counts_[a * bucket + b] = env0.agent(members[b]).num_phases;

    auto actor_out =
        actor.forward_inference(ws_, *bs[0], *bs[1], *bs[2], phase_counts_);
    Tensor& probs = ws_.acquire(rows, actor.max_phases());
    nn::softmax_rows_into(probs, *actor_out.logits, ws_.kernel_tier());
    Tensor& logp = ws_.acquire(rows, actor.max_phases());
    nn::log_softmax_rows_into(logp, *actor_out.logits, ws_.kernel_tier());
    auto critic_out = critic.forward_inference(ws_, *bs[3], *bs[4], *bs[5]);

    const Tensor& msg_t = *actor_out.message;
    const Tensor& ha_t = *actor_out.h;
    const Tensor& ca_t = *actor_out.c;
    const Tensor& hv_t = *critic_out.h;
    const Tensor& cv_t = *critic_out.c;
    const Tensor& val_t = *critic_out.value;

    for (std::size_t a = 0; a < num_active; ++a) {
      const std::size_t w = active[a];
      FleetSlot& slot = slots[w];
      for (std::size_t b = 0; b < bucket; ++b) {
        const std::size_t i = members[b];
        const std::size_t row = a * bucket + b;
        const std::size_t num_phases = phase_counts_[row];

        // Action selection: decide_step's branches verbatim, on this slot's
        // streams.
        std::size_t action;
        Rng* srng = sample_rngs != nullptr ? &(*sample_rngs)[w] : nullptr;
        if (!explore) {
          if (srng != nullptr) {
            cat_weights_.resize(num_phases);
            for (std::size_t p = 0; p < num_phases; ++p)
              cat_weights_[p] = probs.at(row, p);
            action = srng->categorical(cat_weights_);
          } else {
            action = 0;
            for (std::size_t p = 1; p < num_phases; ++p)
              if (probs.at(row, p) > probs.at(row, action)) action = p;
          }
        } else if (config_->ppo.sample_actions) {
          cat_weights_.resize(num_phases);
          for (std::size_t p = 0; p < num_phases; ++p)
            cat_weights_[p] = probs.at(row, p);
          action = slot.rng->categorical(cat_weights_);
        } else {
          if (slot.rng->bernoulli(epsilon_)) {
            action = slot.rng->uniform_int(num_phases);
          } else {
            action = 0;
            for (std::size_t p = 1; p < num_phases; ++p)
              if (probs.at(row, p) > probs.at(row, action)) action = p;
          }
        }

        actions_[w][i] = action;
        values_[w][i] = val_t.at(row, 0);

        const std::size_t srow = (w * n + i) * hidden;
        if (record) {
          rl::Sample sample;
          const double* in_row = bs[0]->data() + row * actor_in_dim;
          const double* v_row = bs[3]->data() + row * critic_input_dim_;
          sample.obs.assign(in_row, in_row + actor_in_dim);
          sample.critic_obs.assign(v_row, v_row + critic_input_dim_);
          sample.h_actor.assign(h_a_.data() + srow, h_a_.data() + srow + hidden);
          sample.c_actor.assign(c_a_.data() + srow, c_a_.data() + srow + hidden);
          sample.h_critic.assign(h_v_.data() + srow, h_v_.data() + srow + hidden);
          sample.c_critic.assign(c_v_.data() + srow, c_v_.data() + srow + hidden);
          sample.action = action;
          sample.phase_count = num_phases;
          sample.log_prob = logp.at(row, action);
          sample.value = values_[w][i];
          slot.buffer->add(i, std::move(sample));
        }

        // Advance recurrent state (slab rows were read above, so samples
        // hold the pre-step state, like decide_step) and regularize the
        // outgoing message: m_hat = Logistic(N(m, sigma)), noiseless when
        // not exploring.
        std::copy(ha_t.data() + row * hidden, ha_t.data() + (row + 1) * hidden,
                  h_a_.data() + srow);
        std::copy(ca_t.data() + row * hidden, ca_t.data() + (row + 1) * hidden,
                  c_a_.data() + srow);
        std::copy(hv_t.data() + row * hidden, hv_t.data() + (row + 1) * hidden,
                  h_v_.data() + srow);
        std::copy(cv_t.data() + row * hidden, cv_t.data() + (row + 1) * hidden,
                  c_v_.data() + srow);
        double* msg_row = msg_.data() + (w * n + i) * msg_dim;
        for (std::size_t k = 0; k < msg_dim; ++k) {
          const double raw = msg_t.at(row, k);
          const double noisy =
              explore ? slot.rng->normal(raw, config_->msg_sigma) : raw;
          msg_row[k] = nn::logistic(noisy, ws_.kernel_tier());
        }
      }
    }
  }
}

std::vector<env::EpisodeStats> FleetRolloutEngine::run_episodes(
    std::vector<FleetSlot>& slots, bool train_mode, double epsilon) {
  assert(!slots.empty());
  const std::size_t k = slots.size();
  const std::size_t n = slots.front().env->num_agents();
  const std::size_t hidden = config_->hidden;
  epsilon_ = epsilon;

  // Buckets: one per model — all agents under parameter sharing, one agent
  // per bucket on heterogeneous networks (each agent's own model).
  groups_.resize(actors_.size());
  for (auto& g : groups_) g.clear();
  pos_in_bucket_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t m = config_->parameter_sharing ? 0 : i;
    pos_in_bucket_[i] = groups_[m].size();
    groups_[m].push_back(i);
  }
  bucket_slots_.resize(actors_.size());

  // Fleet-ordered state slabs, zeroed like reset_agent_states.
  reshape_slab(h_a_, k * n, hidden);
  reshape_slab(c_a_, k * n, hidden);
  reshape_slab(h_v_, k * n, hidden);
  reshape_slab(c_v_, k * n, hidden);
  reshape_slab(msg_, k * n, config_->msg_dim);
  h_a_.fill(0.0);
  c_a_.fill(0.0);
  h_v_.fill(0.0);
  c_v_.fill(0.0);
  msg_.fill(0.0);

  actions_.resize(k);
  values_.resize(k);
  partners_.resize(k);
  reward_sum_.assign(k, 0.0);
  reward_count_.assign(k, 0);
  last_messages_.resize(k);
  last_partners_.resize(k);
  for (std::size_t w = 0; w < k; ++w) {
    actions_[w].resize(n);
    values_[w].resize(n);
    partners_[w].resize(n);
    assert(slots[w].env != nullptr);
    assert(slots[w].env->num_agents() == n);
    assert(!train_mode || slots[w].buffer != nullptr);
    slots[w].env->reset(slots[w].seed);
  }

  // Stochastic-eval streams derive from each slot's episode seed, exactly
  // like run_rollout_episode's eval_rng.
  std::vector<Rng> sample_rngs;
  const bool use_sample_rng = !train_mode && !config_->greedy_eval;
  if (use_sample_rng) {
    sample_rngs.reserve(k);
    for (const FleetSlot& slot : slots)
      sample_rngs.emplace_back(slot.seed ^ env::kEvalSampleSalt);
  }

  active_.resize(k);
  for (std::size_t w = 0; w < k; ++w) active_[w] = w;

  std::vector<env::EpisodeStats> stats(k);
  while (!active_.empty()) {
    decide_fleet(slots, active_, /*explore=*/train_mode,
                 /*record=*/train_mode,
                 use_sample_rng ? &sample_rngs : nullptr);
    newly_done_.clear();
    for (std::size_t w : active_) {
      FleetSlot& slot = slots[w];
      const std::vector<double> rewards = slot.env->step(actions_[w]);
      for (double r : rewards) {
        reward_sum_[w] += r;
        ++reward_count_[w];
      }
      if (train_mode)
        for (std::size_t i = 0; i < rewards.size(); ++i)
          slot.buffer->last(i).reward = rewards[i];
      if (slot.env->done()) newly_done_.push_back(w);
    }
    if (newly_done_.empty()) continue;

    if (train_mode) {
      // Bootstrap V(s_T) for the finished envs in one batched decision
      // (Algorithm 1 line 24; consumes each env's streams exactly like the
      // per-env bootstrap decide_step).
      decide_fleet(slots, newly_done_, /*explore=*/false, /*record=*/false,
                   nullptr);
      for (std::size_t w : newly_done_)
        for (std::size_t i = 0; i < n; ++i)
          slots[w].buffer->finish_agent(i, values_[w][i], config_->ppo.gamma,
                                        config_->ppo.lambda);
    }

    for (std::size_t w : newly_done_) {
      env::TscEnv& env = *slots[w].env;
      stats[w].avg_wait = env.episode_avg_wait();
      stats[w].travel_time = env.average_travel_time();
      stats[w].delay = env.average_delay();
      stats[w].mean_reward =
          reward_count_[w]
              ? reward_sum_[w] / static_cast<double>(reward_count_[w])
              : 0.0;
      stats[w].vehicles_finished = env.simulator().vehicles_finished();
      stats[w].vehicles_spawned = env.simulator().vehicles_spawned();

      // Protocol-inspection views at the slot's final decision.
      last_partners_[w] = partners_[w];
      last_messages_[w].resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        const double* msg_row = msg_.data() + (w * n + i) * config_->msg_dim;
        last_messages_[w][i].assign(msg_row, msg_row + config_->msg_dim);
      }
    }
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [&](std::size_t w) {
                                   return std::find(newly_done_.begin(),
                                                    newly_done_.end(),
                                                    w) != newly_done_.end();
                                 }),
                  active_.end());
  }
  return stats;
}

}  // namespace tsc::core
