// Reusable training orchestration over any of this repo's trainers
// (PairUpLightTrainer, SingleAgentPpoTrainer, Ma2cTrainer, CoLightTrainer -
// anything with train_episode()/eval_episode()). Handles periodic greedy
// evaluation, CSV logging, and best-checkpoint tracking (for trainers that
// support save_checkpoint).
#pragma once

#include <chrono>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "src/env/controller.hpp"
#include "src/util/csv.hpp"
#include "src/util/log.hpp"

namespace tsc::core {

struct TrainingLoopConfig {
  std::size_t episodes = 100;
  /// Greedy evaluation every N training episodes (0 = never).
  std::size_t eval_every = 10;
  std::uint64_t eval_seed = 424242;
  /// CSV path for the per-episode log ("" = no log).
  std::string log_csv;
  /// Checkpoint prefix for the best-eval model ("" = no checkpointing;
  /// ignored for trainers without save_checkpoint()).
  std::string best_checkpoint_prefix;
};

struct TrainingLoopResult {
  std::vector<env::EpisodeStats> train_history;
  /// (episode index, stats) for each evaluation run.
  std::vector<std::pair<std::size_t, env::EpisodeStats>> eval_history;
  double best_eval_wait = std::numeric_limits<double>::infinity();
  std::size_t best_episode = 0;
  /// Wall-clock seconds spent inside train_episode() calls (rollout
  /// collection + PPO updates) - throughput accounting for the parallel
  /// rollout benchmarks.
  double train_seconds = 0.0;
};

template <typename Trainer>
TrainingLoopResult run_training_loop(Trainer& trainer,
                                     const TrainingLoopConfig& config) {
  TrainingLoopResult result;
  std::unique_ptr<CsvWriter> log;
  if (!config.log_csv.empty()) {
    log = std::make_unique<CsvWriter>(config.log_csv);
    log->write_header({"episode", "kind", "avg_wait", "travel_time", "mean_reward"});
  }

  for (std::size_t e = 0; e < config.episodes; ++e) {
    const auto train_begin = std::chrono::steady_clock::now();
    const env::EpisodeStats train_stats = trainer.train_episode();
    result.train_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      train_begin)
            .count();
    result.train_history.push_back(train_stats);
    if (log)
      log->write_row(e, "train", train_stats.avg_wait, train_stats.travel_time,
                     train_stats.mean_reward);

    const bool eval_due =
        config.eval_every != 0 &&
        ((e + 1) % config.eval_every == 0 || e + 1 == config.episodes);
    if (!eval_due) continue;

    const env::EpisodeStats eval_stats = trainer.eval_episode(config.eval_seed);
    result.eval_history.push_back({e, eval_stats});
    if (log)
      log->write_row(e, "eval", eval_stats.avg_wait, eval_stats.travel_time,
                     eval_stats.mean_reward);
    log_info("training loop: episode ", e, " eval avg wait ", eval_stats.avg_wait,
             " s (", result.train_seconds / static_cast<double>(e + 1),
             " s/train episode)");

    if (eval_stats.avg_wait < result.best_eval_wait) {
      result.best_eval_wait = eval_stats.avg_wait;
      result.best_episode = e;
      if constexpr (requires { trainer.save_checkpoint(std::string{}); }) {
        if (!config.best_checkpoint_prefix.empty())
          trainer.save_checkpoint(config.best_checkpoint_prefix);
      }
    }
  }
  if (log) log->flush();
  return result;
}

}  // namespace tsc::core
