// Experiment fleet orchestrator: multi-process sweeps with a crash-safe,
// append-only run store (ROADMAP item 4, DESIGN.md §9).
//
// A sweep spec (scenario x controller x seed x key hyperparams) expands
// into jobs. The orchestrator runs each job as a CHILD OS PROCESS
// (`tsc_fleet worker --run <dir> --job <id>`) with up to max_parallel
// children alive at once, and journals every state transition into
// <run>/journal.jsonl — one flat JSON object per line, appended and
// flushed before the transition takes effect anywhere else. Nothing in the
// store is ever rewritten in place:
//
//   <run>/journal.jsonl        append-only event log (the index)
//   <run>/jobs/<id>/ckpt_*     trainer checkpoints (TSCW/TSCO/TSCT formats,
//                              written via util::atomic_write_file)
//   <run>/jobs/<id>/metrics.json  final per-job metrics record (atomic)
//   <run>/jobs/<id>/log.txt    child stdout+stderr
//
// Crash safety falls out of three pieces composed:
//   * every checkpoint/metrics write is temp-file + rename (util/fs.hpp),
//     so a SIGKILL'd worker leaves its last completed save intact;
//   * trainer resume == uninterrupted is pinned at the trainer level
//     (tests/test_parallel_update.cpp TrainerResume), so re-running a
//     half-trained job from its checkpoint reproduces the uninterrupted
//     run bit for bit;
//   * the journal is append-only and replay tolerates a torn final line,
//     so an orchestrator killed mid-write loses at most one event — and
//     the worst that costs is re-running a job whose metrics record
//     already made it to disk (workers are idempotent: a job whose
//     metrics.json exists exits immediately).
//
// Workers that die (non-zero exit or signal) are retried with bounded
// linear backoff up to max_attempts; `tsc_fleet resume <run>` reopens the
// journal and continues a half-finished sweep the same way.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/util/proc.hpp"

namespace tsc::core {

// ---------------------------------------------------------------------------
// Sweep expansion.

/// One schedulable unit of work: train (when the controller learns) and
/// evaluate one controller on one scenario with one seed/hyperparam combo.
struct FleetJob {
  std::size_t id = 0;
  std::string scenario;        ///< path to a .scenario file
  std::string controller;      ///< fixedtime|actuated|maxpressure|pairuplight
  std::uint64_t seed = 1;
  std::size_t hidden = 64;     ///< pairuplight network width (hyperparam axis)
  std::size_t train_episodes = 0;  ///< 0 for non-learning controllers
  double episode_seconds = 600.0;
};

struct SweepSpec {
  std::vector<std::string> scenarios;
  std::vector<std::string> controllers;
  std::vector<std::uint64_t> seeds{1};
  std::vector<std::size_t> hiddens{64};  ///< swept for learning controllers only
  std::size_t train_episodes = 5;
  double episode_seconds = 600.0;
};

/// True for controllers that train (and therefore checkpoint + sweep the
/// hyperparam axes); false for the closed-form classics.
bool controller_learns(const std::string& name);

/// Deterministic job expansion: scenario-major, then controller, seed,
/// hidden (the hidden axis collapses to one job for non-learning
/// controllers). Throws std::invalid_argument on an unknown controller or
/// an empty axis.
std::vector<FleetJob> expand_sweep(const SweepSpec& spec);

// ---------------------------------------------------------------------------
// Flat single-line JSON (the journal / metrics wire format).

/// Escapes `"` `\` and control characters for embedding in a JSON string.
std::string json_escape(const std::string& s);

/// Parses ONE flat JSON object ({"key": value, ...}, strings or bare
/// number/bool tokens, no nesting) into raw key -> unquoted-value text.
/// Returns std::nullopt on malformed input — notably a torn line from a
/// crashed writer, which journal replay treats as end-of-log.
std::optional<std::map<std::string, std::string>> parse_flat_json(
    const std::string& line);

// ---------------------------------------------------------------------------
// Run store.

enum class JobPhase { kPending, kRunning, kDone, kFailed };
const char* job_phase_name(JobPhase phase);

/// Journal-replayed view of one job.
struct JobState {
  FleetJob job;
  JobPhase phase = JobPhase::kPending;
  std::size_t attempts = 0;       ///< start events seen so far
  int last_exit_code = 0;
  int last_signal = 0;
  double wall_seconds = 0.0;      ///< successful attempt's wall clock
};

/// Aggregate of the journal's sweep-summary events (one per orchestrator
/// session over this run — `run` plus every `resume`).
struct SweepTotals {
  std::size_t sessions = 0;
  double wall_seconds = 0.0;      ///< summed orchestrator wall clock
  std::size_t max_parallel = 0;   ///< largest cap any session ran with
};

class RunStore {
 public:
  /// Creates `dir` (which must not already contain a journal), journals
  /// the expanded job definitions, and returns the open store.
  static RunStore create(const std::string& dir,
                         const std::vector<FleetJob>& jobs);
  /// Replays `dir`'s journal. Jobs left kRunning by a dead orchestrator
  /// are demoted to kPending (their next start event re-counts the
  /// attempt). Tolerates a torn trailing line.
  static RunStore open(const std::string& dir);

  const std::string& dir() const { return dir_; }
  std::string journal_path() const { return dir_ + "/journal.jsonl"; }
  std::string job_dir(std::size_t id) const;
  std::string metrics_path(std::size_t id) const;
  std::string log_path(std::size_t id) const;
  /// Prefix handed to PairUpLightTrainer::save_checkpoint/load_checkpoint.
  std::string checkpoint_prefix(std::size_t id) const;

  std::vector<JobState>& jobs() { return jobs_; }
  const std::vector<JobState>& jobs() const { return jobs_; }
  const SweepTotals& totals() const { return totals_; }

  // Journaled state transitions (append one line, flushed, then mutate the
  // in-memory view).
  void record_start(std::size_t id, int pid);
  void record_done(std::size_t id, double wall_seconds);
  void record_fail(std::size_t id, const util::ExitStatus& status);
  /// End-of-session summary (run_fleet writes one per orchestration).
  void record_sweep(std::size_t max_parallel, std::size_t done,
                    std::size_t failed, std::size_t retries,
                    double wall_seconds);

 private:
  explicit RunStore(std::string dir) : dir_(std::move(dir)) {}
  void append_line(const std::string& line);
  void replay();

  std::string dir_;
  std::vector<JobState> jobs_;
  SweepTotals totals_;
};

// ---------------------------------------------------------------------------
// Orchestration.

struct OrchestratorConfig {
  std::size_t max_parallel = 2;   ///< concurrent worker processes
  std::size_t max_attempts = 3;   ///< 1 initial try + up to 2 retries
  double backoff_seconds = 0.25;  ///< retry delay, linear in attempt count
  /// Worker executable (spawned as `<exe> worker --run <dir> --job <id>`).
  /// Empty = this process's own binary (tsc_fleet re-execs itself).
  std::string worker_exe;
  bool verbose = true;            ///< per-transition progress lines to stdout
};

struct OrchestratorResult {
  std::size_t done = 0;     ///< jobs with a durable metrics record
  std::size_t failed = 0;   ///< jobs exhausted max_attempts
  std::size_t retries = 0;  ///< crash/fail -> re-spawn transitions
  double wall_seconds = 0.0;
};

/// Schedules every non-done job in the store across child processes.
/// Returns once all jobs are done or permanently failed. Safe to call on a
/// reopened store (that IS `tsc_fleet resume`).
OrchestratorResult run_fleet(RunStore& store, const OrchestratorConfig& config);

/// Worker entry point (the child side of run_fleet): executes one job,
/// checkpointing after every training episode and resuming from the last
/// durable checkpoint if one exists; writes the job's metrics record
/// atomically on success. Returns a process exit code. Honors the
/// TSC_FLEET_CRASH_AFTER_EPISODE test hook (see the .cpp).
int run_fleet_worker(const std::string& run_dir, std::size_t job_id);

// ---------------------------------------------------------------------------
// Reporting.

struct FleetReport {
  struct Row {
    JobState state;
    /// Raw metrics.json fields (absent until the job is done).
    std::map<std::string, std::string> metrics;
  };
  std::vector<Row> rows;
  std::size_t jobs_done = 0;
  std::size_t jobs_failed = 0;
  std::size_t total_attempts = 0;
  SweepTotals totals;                    ///< orchestrator sessions/wall
  double serialized_wall_seconds = 0.0;  ///< sum of per-job wall (the
                                         ///< 1-process baseline)
  std::uint64_t total_env_steps = 0;     ///< env steps with a durable record
};

/// Reads the journal + every per-job metrics record.
FleetReport build_report(RunStore& store);

/// Pretty-prints the per-job table plus the aggregate throughput summary.
void print_report(const FleetReport& report);

/// Appends the BENCH_fleet.json row: sweep wall clock, jobs/hour, and
/// aggregate env steps/s vs the serialized 1-process baseline, with
/// hardware_threads recorded honestly (multi-process speedup on a
/// thread-limited box is reported as what it is).
void write_bench_fleet_json(const FleetReport& report, const std::string& path);

}  // namespace tsc::core
