#include "src/core/update_engine.hpp"

#include <algorithm>
#include <cassert>
#include <future>

#include "src/rl/ppo.hpp"

namespace tsc::core {

using tsc::nn::Tape;
using tsc::nn::Tensor;
using tsc::nn::Var;

namespace {

// Packs minibatch sample fields straight into recycled alloc_constant()
// nodes: no per-row vector intermediates and — after the first minibatch —
// no allocation at all, since reset() returns each node's backing storage
// to the tape's recycle pool (the pack_rows copies dominated the sharded
// update's profile). Values are identical to the pack_rows path, so the
// bitwise/tolerance pins in tests/test_update_modes.cpp are unaffected.
struct PackedInputs {
  Var input, h_a, c_a;
};
struct PackedCriticInputs {
  Var v_input, h_v, c_v;
};

PackedInputs pack_actor_inputs(Tape& tape, const CoordinatedActor& actor,
                               const std::vector<const rl::Sample*>& samples,
                               const std::vector<std::size_t>& order,
                               std::size_t begin, std::size_t rows,
                               std::size_t hidden) {
  PackedInputs p;
  p.input = tape.alloc_constant(rows, actor.input_dim());
  p.h_a = tape.alloc_constant(rows, hidden);
  p.c_a = tape.alloc_constant(rows, hidden);
  Tensor& in_t = tape.mutable_value(p.input);
  Tensor& ha_t = tape.mutable_value(p.h_a);
  Tensor& ca_t = tape.mutable_value(p.c_a);
  for (std::size_t r = 0; r < rows; ++r) {
    const rl::Sample& s = *samples[order[begin + r]];
    assert(s.obs.size() == actor.input_dim());
    std::copy(s.obs.begin(), s.obs.end(), in_t.data() + r * actor.input_dim());
    std::copy(s.h_actor.begin(), s.h_actor.end(), ha_t.data() + r * hidden);
    std::copy(s.c_actor.begin(), s.c_actor.end(), ca_t.data() + r * hidden);
  }
  return p;
}

PackedCriticInputs pack_critic_inputs(Tape& tape, const CentralizedCritic& critic,
                                      const std::vector<const rl::Sample*>& samples,
                                      const std::vector<std::size_t>& order,
                                      std::size_t begin, std::size_t rows,
                                      std::size_t hidden) {
  PackedCriticInputs p;
  p.v_input = tape.alloc_constant(rows, critic.input_dim());
  p.h_v = tape.alloc_constant(rows, hidden);
  p.c_v = tape.alloc_constant(rows, hidden);
  Tensor& vi_t = tape.mutable_value(p.v_input);
  Tensor& hv_t = tape.mutable_value(p.h_v);
  Tensor& cv_t = tape.mutable_value(p.c_v);
  for (std::size_t r = 0; r < rows; ++r) {
    const rl::Sample& s = *samples[order[begin + r]];
    assert(s.critic_obs.size() == critic.input_dim());
    std::copy(s.critic_obs.begin(), s.critic_obs.end(),
              vi_t.data() + r * critic.input_dim());
    std::copy(s.h_critic.begin(), s.h_critic.end(), hv_t.data() + r * hidden);
    std::copy(s.c_critic.begin(), s.c_critic.end(), cv_t.data() + r * hidden);
  }
  return p;
}

PackedInputs pack_actor_inputs(Tape& tape, const PackedSampleBlock& block,
                               const std::vector<std::size_t>& order,
                               std::size_t begin, std::size_t rows) {
  PackedInputs p;
  p.input = tape.alloc_constant(rows, block.obs_dim());
  p.h_a = tape.alloc_constant(rows, block.hidden());
  p.c_a = tape.alloc_constant(rows, block.hidden());
  Tensor& in_t = tape.mutable_value(p.input);
  Tensor& ha_t = tape.mutable_value(p.h_a);
  Tensor& ca_t = tape.mutable_value(p.c_a);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t src = order[begin + r];
    std::copy(block.obs_row(src), block.obs_row(src) + block.obs_dim(),
              in_t.data() + r * block.obs_dim());
    std::copy(block.h_actor_row(src), block.h_actor_row(src) + block.hidden(),
              ha_t.data() + r * block.hidden());
    std::copy(block.c_actor_row(src), block.c_actor_row(src) + block.hidden(),
              ca_t.data() + r * block.hidden());
  }
  return p;
}

PackedCriticInputs pack_critic_inputs(Tape& tape, const PackedSampleBlock& block,
                                      const std::vector<std::size_t>& order,
                                      std::size_t begin, std::size_t rows) {
  PackedCriticInputs p;
  p.v_input = tape.alloc_constant(rows, block.critic_dim());
  p.h_v = tape.alloc_constant(rows, block.hidden());
  p.c_v = tape.alloc_constant(rows, block.hidden());
  Tensor& vi_t = tape.mutable_value(p.v_input);
  Tensor& hv_t = tape.mutable_value(p.h_v);
  Tensor& cv_t = tape.mutable_value(p.c_v);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t src = order[begin + r];
    std::copy(block.critic_obs_row(src),
              block.critic_obs_row(src) + block.critic_dim(),
              vi_t.data() + r * block.critic_dim());
    std::copy(block.h_critic_row(src), block.h_critic_row(src) + block.hidden(),
              hv_t.data() + r * block.hidden());
    std::copy(block.c_critic_row(src), block.c_critic_row(src) + block.hidden(),
              cv_t.data() + r * block.hidden());
  }
  return p;
}

/// Minibatch PPO scalars gathered from either source (values identical).
void gather_scalars(const std::vector<const rl::Sample*>& samples,
                    const PackedSampleBlock* block,
                    const std::vector<std::size_t>& order, std::size_t begin,
                    std::size_t rows, std::vector<std::size_t>& actions,
                    std::vector<std::size_t>& phase_counts,
                    std::vector<double>& old_logp,
                    std::vector<double>& advantages,
                    std::vector<double>& returns) {
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t src = order[begin + r];
    if (block != nullptr) {
      actions[r] = block->action(src);
      old_logp[r] = block->log_prob(src);
      advantages[r] = block->advantage(src);
      returns[r] = block->ret(src);
      phase_counts[r] = block->phase_count(src);
    } else {
      const rl::Sample& s = *samples[src];
      actions[r] = s.action;
      old_logp[r] = s.log_prob;
      advantages[r] = s.advantage;
      returns[r] = s.ret;
      phase_counts[r] = s.phase_count;
    }
  }
}

}  // namespace

void PackedSampleBlock::build(const std::vector<const rl::Sample*>& samples,
                              std::size_t obs_dim, std::size_t critic_dim,
                              std::size_t hidden) {
  rows_ = samples.size();
  obs_dim_ = obs_dim;
  critic_dim_ = critic_dim;
  hidden_ = hidden;
  obs_.resize(rows_ * obs_dim_);
  h_a_.resize(rows_ * hidden_);
  c_a_.resize(rows_ * hidden_);
  critic_obs_.resize(rows_ * critic_dim_);
  h_v_.resize(rows_ * hidden_);
  c_v_.resize(rows_ * hidden_);
  actions_.resize(rows_);
  phase_counts_.resize(rows_);
  log_probs_.resize(rows_);
  advantages_.resize(rows_);
  returns_.resize(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const rl::Sample& s = *samples[r];
    assert(s.obs.size() == obs_dim_);
    assert(s.critic_obs.size() == critic_dim_);
    assert(s.h_actor.size() == hidden_);
    std::copy(s.obs.begin(), s.obs.end(), obs_.data() + r * obs_dim_);
    std::copy(s.h_actor.begin(), s.h_actor.end(), h_a_.data() + r * hidden_);
    std::copy(s.c_actor.begin(), s.c_actor.end(), c_a_.data() + r * hidden_);
    std::copy(s.critic_obs.begin(), s.critic_obs.end(),
              critic_obs_.data() + r * critic_dim_);
    std::copy(s.h_critic.begin(), s.h_critic.end(), h_v_.data() + r * hidden_);
    std::copy(s.c_critic.begin(), s.c_critic.end(), c_v_.data() + r * hidden_);
    actions_[r] = s.action;
    phase_counts_[r] = s.phase_count;
    log_probs_[r] = s.log_prob;
    advantages_[r] = s.advantage;
    returns_[r] = s.ret;
  }
}

double serial_minibatch_update(UpdateContext& ctx,
                               const std::vector<const rl::Sample*>& samples,
                               const std::vector<std::size_t>& order,
                               std::size_t begin, std::size_t end) {
  assert(begin < end && end <= order.size());
  CoordinatedActor& actor = *ctx.actor;
  CentralizedCritic& critic = *ctx.critic;
  const PairUpConfig& config = *ctx.config;
  const std::size_t batch = end - begin;

  if (config.update_path == UpdatePath::kFused) {
    assert(ctx.backward != nullptr);
    // zero_grad seeds every sink with exact +0.0, as the fused matmul_tn
    // accumulation requires; clip + step are the tape path's own calls.
    actor.zero_grad();
    critic.zero_grad();
    std::vector<Tensor*> sinks;
    sinks.reserve(ctx.params.size());
    for (nn::Parameter* p : ctx.params) sinks.push_back(&p->grad);
    const std::size_t actor_count = actor.parameters().size();
    const double loss = fused_shard_loss_and_grads(
        *ctx.backward, actor, critic, samples, order, begin, end, batch,
        config, ctx.block, sinks.data(), sinks.data() + actor_count);
    nn::clip_grad_norm(ctx.params, config.ppo.max_grad_norm);
    ctx.optim->step();
    return loss;
  }

  Tape& tape = *ctx.tape;

  std::vector<std::size_t> actions(batch), phase_counts(batch);
  std::vector<double> old_logp(batch), advantages(batch), returns(batch);
  gather_scalars(samples, ctx.block, order, begin, batch, actions, phase_counts,
                 old_logp, advantages, returns);

  tape.reset();
  PackedInputs a_in =
      ctx.block != nullptr
          ? pack_actor_inputs(tape, *ctx.block, order, begin, batch)
          : pack_actor_inputs(tape, actor, samples, order, begin, batch,
                              config.hidden);
  auto actor_out =
      actor.forward(tape, a_in.input, a_in.h_a, a_in.c_a, phase_counts);
  Var logp_all = tape.log_softmax_rows(actor_out.logits);
  Var new_logp = tape.gather_cols(logp_all, actions);
  Var entropy = rl::policy_entropy(tape, actor_out.logits);

  PackedCriticInputs c_in =
      ctx.block != nullptr
          ? pack_critic_inputs(tape, *ctx.block, order, begin, batch)
          : pack_critic_inputs(tape, critic, samples, order, begin, batch,
                               config.hidden);
  auto critic_out = critic.forward(tape, c_in.v_input, c_in.h_v, c_in.c_v);

  Var loss = rl::ppo_total_loss(tape, new_logp, entropy, critic_out.value,
                                old_logp, advantages, returns, config.ppo);
  actor.zero_grad();
  critic.zero_grad();
  tape.backward(loss);
  nn::clip_grad_norm(ctx.params, config.ppo.max_grad_norm);
  ctx.optim->step();
  return tape.value(loss)[0];
}

double sample_loss_and_grads(nn::Tape& tape, CoordinatedActor& actor,
                             CentralizedCritic& critic, const rl::Sample& sample,
                             std::size_t batch, const rl::PpoConfig& ppo) {
  tape.reset();
  // Node creation order mirrors serial_minibatch_update exactly so grads of
  // multi-consumer nodes accumulate their terms in the same sequence.
  auto one_row = [&tape](const std::vector<double>& row) {
    Var v = tape.alloc_constant(1, row.size());
    std::copy(row.begin(), row.end(), tape.mutable_value(v).data());
    return v;
  };
  Var input = one_row(sample.obs);
  Var h_a = one_row(sample.h_actor);
  Var c_a = one_row(sample.c_actor);
  auto actor_out = actor.forward(tape, input, h_a, c_a, {sample.phase_count});
  Var logp_all = tape.log_softmax_rows(actor_out.logits);
  Var new_logp = tape.gather_cols(logp_all, {sample.action});
  Var entropy = rl::policy_entropy_scaled(tape, actor_out.logits, batch);

  Var v_input = one_row(sample.critic_obs);
  Var h_v = one_row(sample.h_critic);
  Var c_v = one_row(sample.c_critic);
  auto critic_out = critic.forward(tape, v_input, h_v, c_v);

  Var loss = rl::ppo_shard_loss(tape, new_logp, entropy, critic_out.value,
                                {sample.log_prob}, {sample.advantage},
                                {sample.ret}, batch, ppo);
  tape.backward(loss);
  return tape.value(loss)[0];
}

double shard_loss_and_grads(nn::Tape& tape, CoordinatedActor& actor,
                            CentralizedCritic& critic,
                            const std::vector<const rl::Sample*>& samples,
                            const std::vector<std::size_t>& order,
                            std::size_t begin, std::size_t end,
                            std::size_t batch, const PairUpConfig& config,
                            const PackedSampleBlock* block) {
  assert(begin < end && end <= order.size());
  const std::size_t rows = end - begin;

  std::vector<std::size_t> actions(rows), phase_counts(rows);
  std::vector<double> old_logp(rows), advantages(rows), returns(rows);
  gather_scalars(samples, block, order, begin, rows, actions, phase_counts,
                 old_logp, advantages, returns);

  tape.reset();
  // Same node layout as serial_minibatch_update but at `rows` rows and with
  // the GLOBAL batch divisor: the shard contributes its rows/batch share of
  // the minibatch loss and gradients.
  PackedInputs a_in =
      block != nullptr
          ? pack_actor_inputs(tape, *block, order, begin, rows)
          : pack_actor_inputs(tape, actor, samples, order, begin, rows,
                              actor.hidden_size());
  auto actor_out =
      actor.forward(tape, a_in.input, a_in.h_a, a_in.c_a, phase_counts);
  Var logp_all = tape.log_softmax_rows(actor_out.logits);
  Var new_logp = tape.gather_cols(logp_all, actions);
  Var entropy = rl::policy_entropy_scaled(tape, actor_out.logits, batch);

  PackedCriticInputs c_in =
      block != nullptr
          ? pack_critic_inputs(tape, *block, order, begin, rows)
          : pack_critic_inputs(tape, critic, samples, order, begin, rows,
                               critic.hidden_size());
  auto critic_out = critic.forward(tape, c_in.v_input, c_in.h_v, c_in.c_v);

  Var loss = rl::ppo_shard_loss(tape, new_logp, entropy, critic_out.value,
                                old_logp, advantages, returns, batch,
                                config.ppo);
  tape.backward(loss);
  return tape.value(loss)[0];
}

double fused_shard_loss_and_grads(nn::BackwardWorkspace& ws,
                                  CoordinatedActor& actor,
                                  CentralizedCritic& critic,
                                  const std::vector<const rl::Sample*>& samples,
                                  const std::vector<std::size_t>& order,
                                  std::size_t begin, std::size_t end,
                                  std::size_t batch, const PairUpConfig& config,
                                  const PackedSampleBlock* block,
                                  nn::Tensor* const* actor_sinks,
                                  nn::Tensor* const* critic_sinks) {
  assert(begin < end && end <= order.size());
  const std::size_t rows = end - begin;
  const std::size_t hidden = actor.hidden_size();

  std::vector<std::size_t> actions(rows), phase_counts(rows);
  std::vector<double> old_logp(rows), advantages(rows), returns(rows);
  gather_scalars(samples, block, order, begin, rows, actions, phase_counts,
                 old_logp, advantages, returns);

  // Fixed acquisition sequence per pass — after the first minibatch of a
  // shape, the workspace recycles every slot (alloc_events() flatlines).
  ws.begin_pass();
  Tensor& input = ws.acquire(rows, actor.input_dim());
  Tensor& h_a = ws.acquire(rows, hidden);
  Tensor& c_a = ws.acquire(rows, hidden);
  Tensor& v_input = ws.acquire(rows, critic.input_dim());
  Tensor& h_v = ws.acquire(rows, hidden);
  Tensor& c_v = ws.acquire(rows, hidden);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t src = order[begin + r];
    if (block != nullptr) {
      std::copy(block->obs_row(src), block->obs_row(src) + block->obs_dim(),
                input.data() + r * block->obs_dim());
      std::copy(block->h_actor_row(src),
                block->h_actor_row(src) + block->hidden(),
                h_a.data() + r * hidden);
      std::copy(block->c_actor_row(src),
                block->c_actor_row(src) + block->hidden(),
                c_a.data() + r * hidden);
      std::copy(block->critic_obs_row(src),
                block->critic_obs_row(src) + block->critic_dim(),
                v_input.data() + r * block->critic_dim());
      std::copy(block->h_critic_row(src),
                block->h_critic_row(src) + block->hidden(),
                h_v.data() + r * hidden);
      std::copy(block->c_critic_row(src),
                block->c_critic_row(src) + block->hidden(),
                c_v.data() + r * hidden);
    } else {
      const rl::Sample& s = *samples[src];
      assert(s.obs.size() == actor.input_dim());
      assert(s.critic_obs.size() == critic.input_dim());
      std::copy(s.obs.begin(), s.obs.end(),
                input.data() + r * actor.input_dim());
      std::copy(s.h_actor.begin(), s.h_actor.end(), h_a.data() + r * hidden);
      std::copy(s.c_actor.begin(), s.c_actor.end(), c_a.data() + r * hidden);
      std::copy(s.critic_obs.begin(), s.critic_obs.end(),
                v_input.data() + r * critic.input_dim());
      std::copy(s.h_critic.begin(), s.h_critic.end(), h_v.data() + r * hidden);
      std::copy(s.c_critic.begin(), s.c_critic.end(), c_v.data() + r * hidden);
    }
  }

  CoordinatedActor::TrainActivations a_acts;
  const Tensor& logits =
      actor.forward_train(ws, input, h_a, c_a, phase_counts, a_acts);
  CentralizedCritic::TrainActivations c_acts;
  const Tensor& values = critic.forward_train(ws, v_input, h_v, c_v, c_acts);

  Tensor& p = ws.acquire(rows, actor.max_phases());
  Tensor& logp = ws.acquire(rows, actor.max_phases());
  Tensor& dlogits = ws.acquire(rows, actor.max_phases());
  Tensor& dvalues = ws.acquire(rows, 1);
  const double loss =
      rl::fused_ppo_loss_grad(logits, values, actions, old_logp, advantages,
                              returns, batch, config.ppo, p, logp, dlogits,
                              dvalues);

  actor.backward_train(ws, a_acts, dlogits, actor_sinks);
  critic.backward_train(ws, c_acts, dvalues, critic_sinks);
  return loss;
}

ParallelUpdateEngine::ParallelUpdateEngine(std::size_t num_shards,
                                           UpdateMode mode)
    : num_shards_(std::max<std::size_t>(2, num_shards)),
      mode_(mode),
      pool_(num_shards_) {
  assert(mode_ != UpdateMode::kSerial);
  shard_tapes_.reserve(num_shards_);
  shard_ws_.reserve(num_shards_);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    shard_tapes_.push_back(std::make_unique<Tape>());
    shard_ws_.push_back(std::make_unique<nn::BackwardWorkspace>());
  }
}

std::size_t ParallelUpdateEngine::backward_alloc_events() const {
  std::size_t total = 0;
  for (const auto& ws : shard_ws_) total += ws->alloc_events();
  return total;
}

void ParallelUpdateEngine::ensure_buffers(
    const std::vector<nn::Parameter*>& params, std::size_t num_slots) {
  bool rebuild = reduced_grads_.size() != params.size();
  for (std::size_t k = 0; !rebuild && k < params.size(); ++k)
    rebuild = !reduced_grads_[k].same_shape(params[k]->value);
  if (rebuild) {
    reduced_grads_.clear();
    reduced_grads_.reserve(params.size());
    for (const nn::Parameter* p : params)
      reduced_grads_.push_back(Tensor::zeros_like(p->value));
    slot_grads_.clear();
  }
  while (slot_grads_.size() < num_slots) {
    std::vector<Tensor> slots;
    slots.reserve(params.size());
    for (const nn::Parameter* p : params)
      slots.push_back(Tensor::zeros_like(p->value));
    slot_grads_.push_back(std::move(slots));
  }
  if (slot_losses_.size() < num_slots) slot_losses_.resize(num_slots);
}

double ParallelUpdateEngine::run_minibatch(
    UpdateContext& ctx, const std::vector<const rl::Sample*>& samples,
    const std::vector<std::size_t>& order, std::size_t begin, std::size_t end) {
  assert(begin < end && end <= order.size());
  const std::size_t batch = end - begin;
  const bool per_sample = mode_ == UpdateMode::kPerSampleShards;
  const std::size_t num_slots = per_sample ? batch : num_shards_;
  ensure_buffers(ctx.params, num_slots);
  const bool fused = ctx.config->update_path == UpdatePath::kFused;
  const std::size_t actor_sink_count =
      fused ? ctx.actor->parameters().size() : 0;

  // Contiguous shard ranges; each gradient slot is touched by exactly one
  // worker, and the weights are only read until every future resolves.
  std::vector<std::future<void>> futures;
  futures.reserve(num_shards_);
  for (std::size_t shard = 0; shard < num_shards_; ++shard) {
    const std::size_t lo = batch * shard / num_shards_;
    const std::size_t hi = batch * (shard + 1) / num_shards_;
    if (lo == hi) {
      if (!per_sample) slot_losses_[shard] = 0.0;
      continue;
    }
    futures.push_back(pool_.submit([this, &ctx, &samples, &order, begin, batch,
                                    shard, lo, hi, per_sample, fused,
                                    actor_sink_count]() {
      // Fused path: gradients flow straight into the slot tensors as sinks
      // (same slots the tape path redirects into), so the ordered fold —
      // and hence the per-mode determinism contract — is unchanged.
      std::vector<Tensor*> sinks(fused ? ctx.params.size() : 0);
      auto point_sinks_at = [&](std::vector<Tensor>& slots) {
        for (std::size_t k = 0; k < ctx.params.size(); ++k) {
          slots[k].fill(0.0);
          sinks[k] = &slots[k];
        }
      };
      if (fused) {
        nn::BackwardWorkspace& ws = *shard_ws_[shard];
        if (per_sample) {
          for (std::size_t b = lo; b < hi; ++b) {
            point_sinks_at(slot_grads_[b]);
            slot_losses_[b] = fused_shard_loss_and_grads(
                ws, *ctx.actor, *ctx.critic, samples, order, begin + b,
                begin + b + 1, batch, *ctx.config, ctx.block, sinks.data(),
                sinks.data() + actor_sink_count);
          }
        } else {
          point_sinks_at(slot_grads_[shard]);
          slot_losses_[shard] = fused_shard_loss_and_grads(
              ws, *ctx.actor, *ctx.critic, samples, order, begin + lo,
              begin + hi, batch, *ctx.config, ctx.block, sinks.data(),
              sinks.data() + actor_sink_count);
        }
        return;
      }
      Tape& tape = *shard_tapes_[shard];
      nn::Tape::GradRedirects redirects;
      redirects.reserve(ctx.params.size());
      if (per_sample) {
        for (std::size_t b = lo; b < hi; ++b) {
          std::vector<Tensor>& slots = slot_grads_[b];
          redirects.clear();
          for (std::size_t k = 0; k < ctx.params.size(); ++k) {
            slots[k].fill(0.0);
            redirects.emplace_back(ctx.params[k], &slots[k]);
          }
          tape.set_grad_redirects(&redirects);
          const rl::Sample& s = *samples[order[begin + b]];
          slot_losses_[b] =
              sample_loss_and_grads(tape, *ctx.actor, *ctx.critic, s, batch,
                                    ctx.config->ppo);
        }
      } else {
        std::vector<Tensor>& slots = slot_grads_[shard];
        for (std::size_t k = 0; k < ctx.params.size(); ++k) {
          slots[k].fill(0.0);
          redirects.emplace_back(ctx.params[k], &slots[k]);
        }
        tape.set_grad_redirects(&redirects);
        slot_losses_[shard] =
            shard_loss_and_grads(tape, *ctx.actor, *ctx.critic, samples, order,
                                 begin + lo, begin + hi, batch, *ctx.config,
                                 ctx.block);
      }
      tape.set_grad_redirects(nullptr);
    }));
  }
  for (auto& f : futures) f.get();  // rethrows worker exceptions

  // Ordered reduce on the calling thread. Per-sample mode folds sample slots
  // in global order 0..batch-1 — the batched update's exact accumulation
  // sequence; batched mode folds shard slots in shard order, which fixes the
  // result for a given shard count but re-associates the serial row fold at
  // shard boundaries (see file comment in the header).
  for (Tensor& g : reduced_grads_) g.fill(0.0);
  const std::size_t fold_slots = per_sample ? batch : num_shards_;
  for (std::size_t i = 0; i < fold_slots; ++i) {
    if (!per_sample) {
      const std::size_t lo = batch * i / num_shards_;
      const std::size_t hi = batch * (i + 1) / num_shards_;
      if (lo == hi) continue;
    }
    for (std::size_t k = 0; k < ctx.params.size(); ++k)
      reduced_grads_[k] += slot_grads_[i][k];
  }

  nn::clip_grad_norm(reduced_grads_, ctx.config->ppo.max_grad_norm);
  ctx.optim->step_with_grads(reduced_grads_);

  double loss = 0.0;
  for (std::size_t i = 0; i < fold_slots; ++i) loss += slot_losses_[i];
  return loss;
}

}  // namespace tsc::core
