#include "src/core/update_engine.hpp"

#include <algorithm>
#include <cassert>
#include <future>

#include "src/rl/ppo.hpp"

namespace tsc::core {

using tsc::nn::Tape;
using tsc::nn::Tensor;
using tsc::nn::Var;

using detail::pack_rows;

double serial_minibatch_update(UpdateContext& ctx,
                               const std::vector<const rl::Sample*>& samples,
                               const std::vector<std::size_t>& order,
                               std::size_t begin, std::size_t end) {
  assert(begin < end && end <= order.size());
  CoordinatedActor& actor = *ctx.actor;
  CentralizedCritic& critic = *ctx.critic;
  const PairUpConfig& config = *ctx.config;
  Tape& tape = *ctx.tape;
  const std::size_t batch = end - begin;

  std::vector<std::vector<double>> in_rows(batch), ha_rows(batch), ca_rows(batch),
      vi_rows(batch), hv_rows(batch), cv_rows(batch);
  std::vector<std::size_t> actions(batch), phase_counts(batch);
  std::vector<double> old_logp(batch), advantages(batch), returns(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const rl::Sample& s = *samples[order[begin + b]];
    in_rows[b] = s.obs;
    ha_rows[b] = s.h_actor;
    ca_rows[b] = s.c_actor;
    vi_rows[b] = s.critic_obs;
    hv_rows[b] = s.h_critic;
    cv_rows[b] = s.c_critic;
    actions[b] = s.action;
    old_logp[b] = s.log_prob;
    advantages[b] = s.advantage;
    returns[b] = s.ret;
    phase_counts[b] = s.phase_count;
  }

  tape.reset();
  Var input = tape.constant(pack_rows(in_rows, actor.input_dim()));
  Var h_a = tape.constant(pack_rows(ha_rows, config.hidden));
  Var c_a = tape.constant(pack_rows(ca_rows, config.hidden));
  auto actor_out = actor.forward(tape, input, h_a, c_a, phase_counts);
  Var logp_all = tape.log_softmax_rows(actor_out.logits);
  Var new_logp = tape.gather_cols(logp_all, actions);
  Var entropy = rl::policy_entropy(tape, actor_out.logits);

  Var v_input = tape.constant(pack_rows(vi_rows, critic.input_dim()));
  Var h_v = tape.constant(pack_rows(hv_rows, config.hidden));
  Var c_v = tape.constant(pack_rows(cv_rows, config.hidden));
  auto critic_out = critic.forward(tape, v_input, h_v, c_v);

  Var loss = rl::ppo_total_loss(tape, new_logp, entropy, critic_out.value,
                                old_logp, advantages, returns, config.ppo);
  actor.zero_grad();
  critic.zero_grad();
  tape.backward(loss);
  nn::clip_grad_norm(ctx.params, config.ppo.max_grad_norm);
  ctx.optim->step();
  return tape.value(loss)[0];
}

double sample_loss_and_grads(nn::Tape& tape, CoordinatedActor& actor,
                             CentralizedCritic& critic, const rl::Sample& sample,
                             std::size_t batch, const rl::PpoConfig& ppo) {
  tape.reset();
  // Node creation order mirrors serial_minibatch_update exactly so grads of
  // multi-consumer nodes accumulate their terms in the same sequence.
  Var input = tape.constant(Tensor::matrix(1, actor.input_dim(), sample.obs));
  Var h_a = tape.constant(Tensor::matrix(1, actor.hidden_size(), sample.h_actor));
  Var c_a = tape.constant(Tensor::matrix(1, actor.hidden_size(), sample.c_actor));
  auto actor_out = actor.forward(tape, input, h_a, c_a, {sample.phase_count});
  Var logp_all = tape.log_softmax_rows(actor_out.logits);
  Var new_logp = tape.gather_cols(logp_all, {sample.action});
  Var entropy = rl::policy_entropy_scaled(tape, actor_out.logits, batch);

  Var v_input =
      tape.constant(Tensor::matrix(1, critic.input_dim(), sample.critic_obs));
  Var h_v = tape.constant(Tensor::matrix(1, critic.hidden_size(), sample.h_critic));
  Var c_v = tape.constant(Tensor::matrix(1, critic.hidden_size(), sample.c_critic));
  auto critic_out = critic.forward(tape, v_input, h_v, c_v);

  Var loss = rl::ppo_shard_loss(tape, new_logp, entropy, critic_out.value,
                                {sample.log_prob}, {sample.advantage},
                                {sample.ret}, batch, ppo);
  tape.backward(loss);
  return tape.value(loss)[0];
}

double shard_loss_and_grads(nn::Tape& tape, CoordinatedActor& actor,
                            CentralizedCritic& critic,
                            const std::vector<const rl::Sample*>& samples,
                            const std::vector<std::size_t>& order,
                            std::size_t begin, std::size_t end,
                            std::size_t batch, const PairUpConfig& config) {
  assert(begin < end && end <= order.size());
  const std::size_t rows = end - begin;

  std::vector<std::vector<double>> in_rows(rows), ha_rows(rows), ca_rows(rows),
      vi_rows(rows), hv_rows(rows), cv_rows(rows);
  std::vector<std::size_t> actions(rows), phase_counts(rows);
  std::vector<double> old_logp(rows), advantages(rows), returns(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const rl::Sample& s = *samples[order[begin + r]];
    in_rows[r] = s.obs;
    ha_rows[r] = s.h_actor;
    ca_rows[r] = s.c_actor;
    vi_rows[r] = s.critic_obs;
    hv_rows[r] = s.h_critic;
    cv_rows[r] = s.c_critic;
    actions[r] = s.action;
    old_logp[r] = s.log_prob;
    advantages[r] = s.advantage;
    returns[r] = s.ret;
    phase_counts[r] = s.phase_count;
  }

  tape.reset();
  // Same node layout as serial_minibatch_update but at `rows` rows and with
  // the GLOBAL batch divisor: the shard contributes its rows/batch share of
  // the minibatch loss and gradients.
  Var input = tape.constant(pack_rows(in_rows, actor.input_dim()));
  Var h_a = tape.constant(pack_rows(ha_rows, actor.hidden_size()));
  Var c_a = tape.constant(pack_rows(ca_rows, actor.hidden_size()));
  auto actor_out = actor.forward(tape, input, h_a, c_a, phase_counts);
  Var logp_all = tape.log_softmax_rows(actor_out.logits);
  Var new_logp = tape.gather_cols(logp_all, actions);
  Var entropy = rl::policy_entropy_scaled(tape, actor_out.logits, batch);

  Var v_input = tape.constant(pack_rows(vi_rows, critic.input_dim()));
  Var h_v = tape.constant(pack_rows(hv_rows, critic.hidden_size()));
  Var c_v = tape.constant(pack_rows(cv_rows, critic.hidden_size()));
  auto critic_out = critic.forward(tape, v_input, h_v, c_v);

  Var loss = rl::ppo_shard_loss(tape, new_logp, entropy, critic_out.value,
                                old_logp, advantages, returns, batch,
                                config.ppo);
  tape.backward(loss);
  return tape.value(loss)[0];
}

ParallelUpdateEngine::ParallelUpdateEngine(std::size_t num_shards,
                                           UpdateMode mode)
    : num_shards_(std::max<std::size_t>(2, num_shards)),
      mode_(mode),
      pool_(num_shards_) {
  assert(mode_ != UpdateMode::kSerial);
  shard_tapes_.reserve(num_shards_);
  for (std::size_t s = 0; s < num_shards_; ++s)
    shard_tapes_.push_back(std::make_unique<Tape>());
}

void ParallelUpdateEngine::ensure_buffers(
    const std::vector<nn::Parameter*>& params, std::size_t num_slots) {
  bool rebuild = reduced_grads_.size() != params.size();
  for (std::size_t k = 0; !rebuild && k < params.size(); ++k)
    rebuild = !reduced_grads_[k].same_shape(params[k]->value);
  if (rebuild) {
    reduced_grads_.clear();
    reduced_grads_.reserve(params.size());
    for (const nn::Parameter* p : params)
      reduced_grads_.push_back(Tensor::zeros_like(p->value));
    slot_grads_.clear();
  }
  while (slot_grads_.size() < num_slots) {
    std::vector<Tensor> slots;
    slots.reserve(params.size());
    for (const nn::Parameter* p : params)
      slots.push_back(Tensor::zeros_like(p->value));
    slot_grads_.push_back(std::move(slots));
  }
  if (slot_losses_.size() < num_slots) slot_losses_.resize(num_slots);
}

double ParallelUpdateEngine::run_minibatch(
    UpdateContext& ctx, const std::vector<const rl::Sample*>& samples,
    const std::vector<std::size_t>& order, std::size_t begin, std::size_t end) {
  assert(begin < end && end <= order.size());
  const std::size_t batch = end - begin;
  const bool per_sample = mode_ == UpdateMode::kPerSampleShards;
  const std::size_t num_slots = per_sample ? batch : num_shards_;
  ensure_buffers(ctx.params, num_slots);

  // Contiguous shard ranges; each gradient slot is touched by exactly one
  // worker, and the weights are only read until every future resolves.
  std::vector<std::future<void>> futures;
  futures.reserve(num_shards_);
  for (std::size_t shard = 0; shard < num_shards_; ++shard) {
    const std::size_t lo = batch * shard / num_shards_;
    const std::size_t hi = batch * (shard + 1) / num_shards_;
    if (lo == hi) {
      if (!per_sample) slot_losses_[shard] = 0.0;
      continue;
    }
    futures.push_back(pool_.submit([this, &ctx, &samples, &order, begin, batch,
                                    shard, lo, hi, per_sample]() {
      Tape& tape = *shard_tapes_[shard];
      nn::Tape::GradRedirects redirects;
      redirects.reserve(ctx.params.size());
      if (per_sample) {
        for (std::size_t b = lo; b < hi; ++b) {
          std::vector<Tensor>& slots = slot_grads_[b];
          redirects.clear();
          for (std::size_t k = 0; k < ctx.params.size(); ++k) {
            slots[k].fill(0.0);
            redirects.emplace_back(ctx.params[k], &slots[k]);
          }
          tape.set_grad_redirects(&redirects);
          const rl::Sample& s = *samples[order[begin + b]];
          slot_losses_[b] =
              sample_loss_and_grads(tape, *ctx.actor, *ctx.critic, s, batch,
                                    ctx.config->ppo);
        }
      } else {
        std::vector<Tensor>& slots = slot_grads_[shard];
        for (std::size_t k = 0; k < ctx.params.size(); ++k) {
          slots[k].fill(0.0);
          redirects.emplace_back(ctx.params[k], &slots[k]);
        }
        tape.set_grad_redirects(&redirects);
        slot_losses_[shard] =
            shard_loss_and_grads(tape, *ctx.actor, *ctx.critic, samples, order,
                                 begin + lo, begin + hi, batch, *ctx.config);
      }
      tape.set_grad_redirects(nullptr);
    }));
  }
  for (auto& f : futures) f.get();  // rethrows worker exceptions

  // Ordered reduce on the calling thread. Per-sample mode folds sample slots
  // in global order 0..batch-1 — the batched update's exact accumulation
  // sequence; batched mode folds shard slots in shard order, which fixes the
  // result for a given shard count but re-associates the serial row fold at
  // shard boundaries (see file comment in the header).
  for (Tensor& g : reduced_grads_) g.fill(0.0);
  const std::size_t fold_slots = per_sample ? batch : num_shards_;
  for (std::size_t i = 0; i < fold_slots; ++i) {
    if (!per_sample) {
      const std::size_t lo = batch * i / num_shards_;
      const std::size_t hi = batch * (i + 1) / num_shards_;
      if (lo == hi) continue;
    }
    for (std::size_t k = 0; k < ctx.params.size(); ++k)
      reduced_grads_[k] += slot_grads_[i][k];
  }

  nn::clip_grad_norm(reduced_grads_, ctx.config->ppo.max_grad_norm);
  ctx.optim->step_with_grads(reduced_grads_);

  double loss = 0.0;
  for (std::size_t i = 0; i < fold_slots; ++i) loss += slot_losses_[i];
  return loss;
}

}  // namespace tsc::core
