#include "src/core/critic.hpp"

#include <cassert>

#include "src/nn/inference.hpp"

namespace tsc::core {

using tsc::nn::Linear;
using tsc::nn::LstmCell;
using tsc::nn::Tape;
using tsc::nn::Var;

CentralizedCritic::CentralizedCritic(std::size_t input_dim, std::size_t hidden,
                                     tsc::Rng& rng)
    : input_dim_(input_dim), hidden_(hidden) {
  embed_ = std::make_unique<Linear>(input_dim, hidden, rng);
  lstm_ = std::make_unique<LstmCell>(hidden, hidden, rng);
  value_head_ = std::make_unique<Linear>(hidden, 1, rng, 1.0);
  register_module(embed_.get());
  register_module(lstm_.get());
  register_module(value_head_.get());
}

CentralizedCritic::Output CentralizedCritic::forward(Tape& tape, Var input, Var h,
                                                     Var c) {
  assert(tape.value(input).cols() == input_dim_);
  Var x = tape.tanh(embed_->forward(tape, input));
  LstmCell::State state = lstm_->forward(tape, x, h, c);
  Var value = value_head_->forward(tape, state.h);
  return {value, state};
}

CentralizedCritic::InferenceOutput CentralizedCritic::forward_inference(
    nn::InferenceWorkspace& ws, const nn::Tensor& input, const nn::Tensor& h,
    const nn::Tensor& c) const {
  assert(input.cols() == input_dim_);
  nn::Tensor& x = const_cast<nn::Tensor&>(embed_->forward_inference(ws, input));
  nn::tanh_inplace(x, ws.kernel_tier());
  const LstmCell::InferenceState state = lstm_->forward_inference(ws, x, h, c);
  const nn::Tensor& value = value_head_->forward_inference(ws, *state.h);
  return {&value, state.h, state.c};
}

}  // namespace tsc::core
