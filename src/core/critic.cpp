#include "src/core/critic.hpp"

#include <cassert>

#include "src/nn/backward.hpp"
#include "src/nn/inference.hpp"

namespace tsc::core {

using tsc::nn::Linear;
using tsc::nn::LstmCell;
using tsc::nn::Tape;
using tsc::nn::Var;

CentralizedCritic::CentralizedCritic(std::size_t input_dim, std::size_t hidden,
                                     tsc::Rng& rng)
    : input_dim_(input_dim), hidden_(hidden) {
  embed_ = std::make_unique<Linear>(input_dim, hidden, rng);
  lstm_ = std::make_unique<LstmCell>(hidden, hidden, rng);
  value_head_ = std::make_unique<Linear>(hidden, 1, rng, 1.0);
  register_module(embed_.get());
  register_module(lstm_.get());
  register_module(value_head_.get());
}

CentralizedCritic::Output CentralizedCritic::forward(Tape& tape, Var input, Var h,
                                                     Var c) {
  assert(tape.value(input).cols() == input_dim_);
  Var x = tape.tanh(embed_->forward(tape, input));
  LstmCell::State state = lstm_->forward(tape, x, h, c);
  Var value = value_head_->forward(tape, state.h);
  return {value, state};
}

CentralizedCritic::InferenceOutput CentralizedCritic::forward_inference(
    nn::InferenceWorkspace& ws, const nn::Tensor& input, const nn::Tensor& h,
    const nn::Tensor& c) const {
  assert(input.cols() == input_dim_);
  nn::Tensor& x = const_cast<nn::Tensor&>(embed_->forward_inference(ws, input));
  nn::tanh_inplace(x, ws.kernel_tier());
  const LstmCell::InferenceState state = lstm_->forward_inference(ws, x, h, c);
  const nn::Tensor& value = value_head_->forward_inference(ws, *state.h);
  return {&value, state.h, state.c};
}

const nn::Tensor& CentralizedCritic::forward_train(nn::BackwardWorkspace& ws,
                                                   const nn::Tensor& input,
                                                   const nn::Tensor& h,
                                                   const nn::Tensor& c,
                                                   TrainActivations& acts) const {
  assert(input.cols() == input_dim_);
  nn::Tensor& x = const_cast<nn::Tensor&>(embed_->forward_inference(ws.fwd(), input));
  nn::tanh_inplace(x);
  const LstmCell::TrainState st = lstm_->forward_train(ws, x, h, c);
  const nn::Tensor& value = value_head_->forward_inference(ws.fwd(), *st.h);
  acts = {&input, &h, &c, &x, st, &value};
  return value;
}

void CentralizedCritic::backward_train(nn::BackwardWorkspace& ws,
                                       const TrainActivations& acts,
                                       const nn::Tensor& dvalues,
                                       nn::Tensor* const* sinks) const {
  const std::size_t rows = dvalues.rows();
  nn::Tensor& dh = ws.acquire_zeroed(rows, hidden_);
  value_head_->backward_train(*acts.lstm.h, dvalues, *sinks[5], *sinks[6], &dh);
  nn::Tensor& dx = ws.acquire_zeroed(rows, hidden_);
  lstm_->backward_train(ws, *acts.x, *acts.h_in, *acts.c_in, acts.lstm, dh,
                        *sinks[2], *sinks[3], *sinks[4], &dx);
  nn::Tensor& dembed = ws.acquire_zeroed(rows, hidden_);
  nn::tanh_backward_acc(dembed, dx, *acts.x);
  embed_->backward_train(*acts.input, dembed, *sinks[0], *sinks[1], nullptr);
}

}  // namespace tsc::core
