// PairUpLight training loop (paper Algorithm 1).
//
// Centralized Training, Decentralized Execution: a (by default shared)
// coordinated actor and centralized critic are trained with PPO + GAE over
// multi-agent rollouts. At every step each agent pairs up with its most
// congested upstream neighbor (falling back to itself) and receives that
// partner's previous outgoing message, regularized as
//     m_hat = Logistic(N(m, sigma))        (Algorithm 1 line 16)
// During evaluation the noise is dropped (m_hat = logistic(m)) and actions
// are greedy.
//
// Recurrent PPO uses stored hidden states: the h/c recorded during the
// rollout are replayed as fixed inputs in the update, so minibatch samples
// stay independent (see rl/rollout.hpp).
#pragma once

#include <memory>
#include <vector>

#include "src/core/actor.hpp"
#include "src/core/critic.hpp"
#include "src/env/controller.hpp"
#include "src/env/env.hpp"
#include "src/nn/optim.hpp"
#include "src/rl/ppo.hpp"
#include "src/rl/rollout.hpp"

namespace tsc::core {

/// Who an agent listens to (ablation of the paper's section V-B design;
/// the paper's choice is kMostCongestedUpstream).
enum class PairingStrategy {
  kMostCongestedUpstream,  ///< paper: congestion-first upstream neighbor
  kSelf,                   ///< listen to own previous message only
  kRandomNeighbor,         ///< uniformly random upstream neighbor per step
  kFixedUpstream,          ///< first upstream neighbor, never re-paired
};

struct PairUpConfig {
  rl::PpoConfig ppo;
  std::size_t hidden = 64;
  std::size_t msg_dim = 1;      ///< communication bandwidth (Fig. 11: 1 vs 2)
  double msg_sigma = 0.1;       ///< regularizer noise std during training
  bool comm_enabled = true;     ///< false = no-communication ablation (Fig. 8)
  PairingStrategy pairing = PairingStrategy::kMostCongestedUpstream;
  /// Evaluation action rule. PPO learns a stochastic policy, so by default
  /// evaluation SAMPLES from it (with a deterministic per-episode stream);
  /// a barely-trained policy's argmax can freeze a phase and gridlock.
  /// Set true to evaluate the argmax policy instead.
  bool greedy_eval = false;
  /// Neighbor rings fed to the centralized critic: 0 = local only,
  /// 1 = +one-hop, 2 = +two-hop (the paper's design).
  std::size_t critic_hops = 2;
  /// One shared actor/critic for all agents (homogeneous grids) or one per
  /// agent (heterogeneous networks, paper section VI-D).
  bool parameter_sharing = true;
  std::uint64_t seed = 1;
};

class PairUpLightTrainer {
 public:
  /// `env` must outlive the trainer.
  PairUpLightTrainer(env::TscEnv* env, PairUpConfig config);

  /// One training episode: rollout (with exploration + message noise),
  /// then a PPO update. Episode seeds advance deterministically.
  env::EpisodeStats train_episode();

  /// One greedy episode without learning or exploration noise.
  env::EpisodeStats eval_episode(std::uint64_t seed);

  /// Stateful greedy controller over the trained policy (for the shared
  /// evaluation harness). The controller references this trainer's
  /// networks; the trainer must outlive it.
  std::unique_ptr<env::Controller> make_controller();

  std::size_t episodes_trained() const { return episode_; }
  const PairUpConfig& config() const { return config_; }
  std::size_t critic_input_dim() const { return critic_input_dim_; }
  std::size_t num_models() const { return actors_.size(); }
  CoordinatedActor& actor(std::size_t model = 0) { return *actors_.at(model); }
  CentralizedCritic& critic(std::size_t model = 0) { return *critics_.at(model); }

  /// Bits each agent receives from other intersections per decision step
  /// (Table IV): msg_dim 32-bit values from exactly one neighbor.
  std::size_t comm_bits_per_step() const { return config_.msg_dim * 32; }

  /// Regularized outgoing messages (one per agent) recorded at the last
  /// decision of train_episode()/eval_episode() - for protocol inspection.
  const std::vector<std::vector<double>>& last_messages() const {
    return last_messages_;
  }
  /// Pairing partner chosen for each agent at the last decision.
  const std::vector<std::size_t>& last_partners() const { return last_partners_; }

  /// Checkpoints every model to `<prefix>_actor<k>.bin` /
  /// `<prefix>_critic<k>.bin`. load_checkpoint restores them (the trainer
  /// must have been constructed with an identical config/environment).
  void save_checkpoint(const std::string& prefix);
  void load_checkpoint(const std::string& prefix);

 private:
  friend class PairUpController;

  /// Per-agent recurrent + message runtime state.
  struct AgentState {
    std::vector<double> h_a, c_a;      ///< actor LSTM state
    std::vector<double> h_v, c_v;      ///< critic LSTM state
    std::vector<double> msg_out;       ///< last regularized outgoing message
  };

  std::size_t model_of(std::size_t agent) const {
    return config_.parameter_sharing ? 0 : agent;
  }
  void reset_states(std::vector<AgentState>& states) const;
  /// Communication partner of `agent` under the configured strategy.
  std::size_t pick_partner(std::size_t agent);
  std::vector<double> actor_input(std::size_t agent, std::size_t partner,
                                  const std::vector<AgentState>& states) const;
  std::vector<double> critic_input(std::size_t agent) const;

  /// One decision for every agent; fills per-agent outputs. When `explore`
  /// is set, actions follow the configured exploration rule and messages
  /// get regularizer noise; otherwise greedy + noiseless.
  struct StepDecision {
    std::vector<std::size_t> actions;
    std::vector<double> log_probs;
    std::vector<double> values;
  };
  /// `sample_rng`: when non-null and not exploring, actions are sampled
  /// from the policy with this stream (stochastic evaluation); when null,
  /// non-exploring decisions take the argmax.
  StepDecision decide(std::vector<AgentState>& states, bool explore,
                      rl::RolloutBuffer* buffer, Rng* sample_rng = nullptr);

  env::EpisodeStats run(bool train_mode, std::uint64_t seed);
  void update(rl::RolloutBuffer& buffer);
  void update_model(std::size_t model, const std::vector<const rl::Sample*>& samples);
  double current_epsilon() const;

  env::TscEnv* env_;
  PairUpConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<CoordinatedActor>> actors_;
  std::vector<std::unique_ptr<CentralizedCritic>> critics_;
  std::vector<std::unique_ptr<nn::Adam>> optims_;
  std::size_t hop1_slots_ = 0, hop2_slots_ = 0;
  std::size_t critic_input_dim_ = 0;
  std::size_t episode_ = 0;
  std::uint64_t episode_seed_ = 0;
  std::vector<std::vector<double>> last_messages_;
  std::vector<std::size_t> last_partners_;
};

}  // namespace tsc::core
