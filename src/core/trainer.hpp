// PairUpLight training loop (paper Algorithm 1).
//
// Centralized Training, Decentralized Execution: a (by default shared)
// coordinated actor and centralized critic are trained with PPO + GAE over
// multi-agent rollouts. At every step each agent pairs up with its most
// congested upstream neighbor (falling back to itself) and receives that
// partner's previous outgoing message, regularized as
//     m_hat = Logistic(N(m, sigma))        (Algorithm 1 line 16)
// During evaluation the noise is dropped (m_hat = logistic(m)) and actions
// are greedy.
//
// Recurrent PPO uses stored hidden states: the h/c recorded during the
// rollout are replayed as fixed inputs in the update, so minibatch samples
// stay independent (see rl/rollout.hpp).
//
// Rollout collection is delegated to core/rollout_engine.hpp. With
// config.num_envs == 1 the trainer runs the engine serially on its own
// environment and networks (bit-identical to the historical single-env
// trainer); with num_envs = K > 1 it owns K environment replicas plus
// frozen network copies and collects K full episodes concurrently on a
// thread pool before every PPO update (rl/parallel_rollout.hpp).
//
// The PPO update is delegated to core/update_engine.hpp the same way:
// num_update_shards == 1 (or update_mode == kSerial) runs the historical
// batched minibatch update on the scratch tape; K > 1 shards each minibatch
// across K worker threads. The layout is config.update_mode:
// kPerSampleShards reduces per-sample gradients in sample order and keeps
// weights bit-identical to the serial update at every step;
// kBatchedShards runs one batched pass per shard and tracks the serial
// weights within a pinned tolerance instead (tests/test_update_modes.cpp).
#pragma once

#include <memory>
#include <vector>

#include "src/core/actor.hpp"
#include "src/core/critic.hpp"
#include "src/core/fleet_engine.hpp"
#include "src/core/rollout_engine.hpp"
#include "src/core/update_engine.hpp"
#include "src/env/controller.hpp"
#include "src/env/env.hpp"
#include "src/nn/optim.hpp"
#include "src/nn/tape.hpp"
#include "src/rl/parallel_rollout.hpp"
#include "src/rl/ppo.hpp"
#include "src/rl/rollout.hpp"

namespace tsc::core {

class PairUpLightTrainer {
 public:
  /// `env` must outlive the trainer.
  PairUpLightTrainer(env::TscEnv* env, PairUpConfig config);

  /// The rollout phase of one training step: config.num_envs full episodes
  /// (serial when 1, concurrent otherwise) collected with the CURRENT
  /// policy weights and this step's exploration epsilon, merged into one
  /// PPO batch. `stats` averages the per-episode quality metrics and sums
  /// the vehicle counts; `env_steps` is the total environment steps taken
  /// (throughput accounting for the benchmarks). Does NOT update weights
  /// or advance the episode counter.
  struct CollectResult {
    rl::RolloutBuffer buffer{0};
    env::EpisodeStats stats;
    std::size_t env_steps = 0;
  };
  CollectResult collect_rollouts(std::uint64_t base_seed);

  /// The update phase of one training step: PPO epochs/minibatches over a
  /// collected (GAE-finished) buffer. Exposed separately so benchmarks and
  /// tests can time or drive it without re-collecting rollouts; normalizes
  /// advantages in place when configured. Does not advance the episode
  /// counter.
  void update(rl::RolloutBuffer& buffer);

  /// One training episode: rollout (with exploration + message noise),
  /// then a PPO update. Episode seeds advance deterministically. With
  /// num_envs = K this consumes K episodes' worth of experience per call.
  env::EpisodeStats train_episode();

  /// One greedy episode without learning or exploration noise (always on
  /// the trainer's own environment, regardless of num_envs).
  env::EpisodeStats eval_episode(std::uint64_t seed);

  /// Stateful greedy controller over the trained policy (for the shared
  /// evaluation harness). The controller references this trainer's
  /// networks; the trainer must outlive it.
  std::unique_ptr<env::Controller> make_controller();

  std::size_t episodes_trained() const { return episode_; }
  const PairUpConfig& config() const { return config_; }
  std::size_t critic_input_dim() const { return critic_input_dim_; }
  std::size_t num_models() const { return actors_.size(); }
  CoordinatedActor& actor(std::size_t model = 0) { return *actors_.at(model); }
  CentralizedCritic& critic(std::size_t model = 0) { return *critics_.at(model); }
  /// Environment replicas collecting per training step (config.num_envs).
  std::size_t num_envs() const { return config_.num_envs; }
  /// Env seeds of the most recent collect_rollouts round, in episode order
  /// (one entry per env worker; one on the serial path). Under
  /// config.invariant_seeding these depend only on the global episode
  /// index, never on num_envs.
  const std::vector<std::uint64_t>& last_episode_seeds() const {
    return last_episode_seeds_;
  }

  /// Bits each agent receives from other intersections per decision step
  /// (Table IV): msg_dim 32-bit values from exactly one neighbor.
  std::size_t comm_bits_per_step() const { return config_.msg_dim * 32; }

  /// Workspace backing the serial-context inference path (rollouts,
  /// evaluation, controller). Exposed so tests can assert the zero
  /// steady-state-allocation property via alloc_events().
  const nn::InferenceWorkspace& inference_workspace() const { return workspace_; }

  /// Allocation events across every backward workspace of the fused update
  /// path (the serial workspace plus all shard workspaces). Like
  /// inference_workspace().alloc_events(), flat once minibatch shapes
  /// stabilize; exactly 0 grows when update_path == kTape.
  std::size_t update_alloc_events() const {
    return update_workspace_.alloc_events() +
           (updater_ ? updater_->backward_alloc_events() : 0);
  }

  /// Effective shard count of the PPO update: the constructor clamps
  /// kPerSampleShards requests beyond the hardware thread count (the
  /// per-sample layout is bit-identical across shard counts, so clamping
  /// only removes oversubscription). 1 on the serial path.
  std::size_t update_shards() const {
    return updater_ ? updater_->num_shards() : 1;
  }

  /// Engine backing the fleet-batched collection path, or null unless
  /// config.fleet_batched. Exposed so tests can assert the fleet extension
  /// of the allocation contract via FleetRolloutEngine::alloc_events().
  const FleetRolloutEngine* fleet_engine() const { return fleet_.get(); }

  /// Critic neighbor-ring padding widths (the fleet engine and tests need
  /// the same layout parameters the trainer derived from the env graph).
  std::size_t hop1_slots() const { return hop1_slots_; }
  std::size_t hop2_slots() const { return hop2_slots_; }

  /// Regularized outgoing messages (one per agent) recorded at the last
  /// decision of train_episode()/eval_episode() - for protocol inspection.
  /// With num_envs > 1 these come from worker 0's episode.
  const std::vector<std::vector<double>>& last_messages() const {
    return last_messages_;
  }
  /// Pairing partner chosen for each agent at the last decision.
  const std::vector<std::size_t>& last_partners() const { return last_partners_; }

  /// Checkpoints the full training state: every model's weights
  /// (`<prefix>_actor<k>.bin` / `<prefix>_critic<k>.bin`), every
  /// optimizer's Adam moments and step count (`<prefix>_optim<k>.bin`),
  /// and the trainer's episode counter + RNG stream (`<prefix>_trainer.bin`).
  /// load_checkpoint restores all of it (the trainer must have been
  /// constructed with an identical config/environment), so a resumed run
  /// continues the uninterrupted run step-for-step — weights alone are not
  /// enough, since Adam's moments/bias correction, the epsilon schedule,
  /// and the shuffle stream all carry state.
  void save_checkpoint(const std::string& prefix);
  void load_checkpoint(const std::string& prefix);

 private:
  friend class PairUpController;

  /// One parallel collection worker: an environment replica plus frozen
  /// copies of every model, all touched only by the thread running its
  /// episode (plus the weight sync on the calling thread in between).
  struct RolloutWorker {
    std::unique_ptr<env::TscEnv> env;
    std::vector<std::unique_ptr<CoordinatedActor>> actors;
    std::vector<std::unique_ptr<CentralizedCritic>> critics;
    nn::Tape tape;
    nn::InferenceWorkspace workspace;  ///< one per worker thread (never shared)
    std::vector<std::vector<double>> last_messages;
    std::vector<std::size_t> last_partners;
  };

  /// Context running the engine on the trainer's own env/networks/rng.
  RolloutContext serial_context();

  /// collect_rollouts body of the fleet-batched path (config.fleet_batched):
  /// same seed/stream derivations and the same fold order as the threaded
  /// collector, but all episodes run in lockstep through fleet_.
  CollectResult collect_rollouts_fleet(std::uint64_t base_seed);

  void reset_states(std::vector<AgentState>& states);
  /// Thin wrapper over decide_step on the serial context (PairUpController).
  StepDecision decide(std::vector<AgentState>& states, bool explore,
                      rl::RolloutBuffer* buffer, Rng* sample_rng = nullptr);

  void update_model(std::size_t model, const std::vector<const rl::Sample*>& samples);
  double current_epsilon() const;

  env::TscEnv* env_;
  PairUpConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<CoordinatedActor>> actors_;
  std::vector<std::unique_ptr<CentralizedCritic>> critics_;
  std::vector<std::unique_ptr<nn::Adam>> optims_;
  std::size_t hop1_slots_ = 0, hop2_slots_ = 0;
  std::size_t critic_input_dim_ = 0;
  std::size_t episode_ = 0;
  std::uint64_t episode_seed_ = 0;
  std::vector<std::vector<double>> last_messages_;
  std::vector<std::size_t> last_partners_;
  std::vector<std::uint64_t> last_episode_seeds_;
  /// Reusable autodiff tape for serial rollouts and PPO minibatches (reset
  /// before every forward; reuse keeps node storage warm, see nn/tape.hpp).
  nn::Tape scratch_tape_;
  /// Preallocated buffers for the tape-free inference path on the serial
  /// context (rollouts, evaluation, controller). Workers carry their own.
  nn::InferenceWorkspace workspace_;
  /// Per-update packed sample rows (built once per update_model call and
  /// shared by every epoch's minibatches; capacity pinned across updates).
  PackedSampleBlock sample_block_;
  /// Activation/gradient buffers for the serial fused update path
  /// (update_path == kFused, num_update_shards == 1). Shard workspaces live
  /// inside updater_.
  nn::BackwardWorkspace update_workspace_;
  /// Built only when config.num_envs > 1 and not fleet_batched.
  std::unique_ptr<rl::ParallelRolloutCollector<RolloutWorker>> collector_;
  /// Fleet-batched collection (config.fleet_batched): the engine runs the
  /// LIVE models single-threaded, so no frozen copies or weight sync; with
  /// num_envs = K > 1 the K - 1 extra replicas live here (slot 0 beyond the
  /// serial case) — with K = 1 the fleet runs the trainer's own env_/rng_
  /// and stays bit-identical to the serial path including the exploration
  /// stream advancement.
  std::vector<std::unique_ptr<env::TscEnv>> fleet_envs_;
  std::unique_ptr<FleetRolloutEngine> fleet_;
  /// Built only when config.num_update_shards > 1 and update_mode is not
  /// kSerial.
  std::unique_ptr<ParallelUpdateEngine> updater_;
};

}  // namespace tsc::core
