// PairUpLight centralized Critic network (paper Fig. 5, Eq. 9).
//
// The critic sees a broader view than the actor: the agent's local
// observation plus compact traffic features of its one-hop and two-hop
// neighbors, zero-padded to fixed slot counts so edge intersections are
// handled uniformly (the paper's padding technique). Body mirrors the
// actor: FC -> tanh -> LSTM -> scalar value head.
#pragma once

#include <memory>

#include "src/nn/layers.hpp"
#include "src/nn/module.hpp"

namespace tsc::core {

class CentralizedCritic : public tsc::nn::Module {
 public:
  /// `input_dim` = local obs + hop1_slots*feat + hop2_slots*feat (the
  /// trainer computes this from the environment's neighbor graph).
  CentralizedCritic(std::size_t input_dim, std::size_t hidden, tsc::Rng& rng);

  struct Output {
    tsc::nn::Var value;  ///< [B, 1]
    tsc::nn::LstmCell::State state;
  };

  Output forward(tsc::nn::Tape& tape, tsc::nn::Var input, tsc::nn::Var h,
                 tsc::nn::Var c);

  /// Tape-free forward results; tensors live in the workspace and stay
  /// valid until its next begin_pass().
  struct InferenceOutput {
    const tsc::nn::Tensor* value = nullptr;  ///< [B, 1]
    const tsc::nn::Tensor* h = nullptr;      ///< [B, hidden]
    const tsc::nn::Tensor* c = nullptr;      ///< [B, hidden]
  };

  /// Tape-free forward; bit-identical to forward().
  InferenceOutput forward_inference(tsc::nn::InferenceWorkspace& ws,
                                    const tsc::nn::Tensor& input,
                                    const tsc::nn::Tensor& h,
                                    const tsc::nn::Tensor& c) const;

  /// Activations retained by forward_train() for backward_train().
  struct TrainActivations {
    const tsc::nn::Tensor* input = nullptr;
    const tsc::nn::Tensor* h_in = nullptr;
    const tsc::nn::Tensor* c_in = nullptr;
    const tsc::nn::Tensor* x = nullptr;  ///< tanh(embed) [B, hidden]
    tsc::nn::LstmCell::TrainState lstm;
    const tsc::nn::Tensor* value = nullptr;  ///< [B, 1]
  };

  /// Tape-free training forward; value bit-identical to forward().
  const tsc::nn::Tensor& forward_train(tsc::nn::BackwardWorkspace& ws,
                                       const tsc::nn::Tensor& input,
                                       const tsc::nn::Tensor& h,
                                       const tsc::nn::Tensor& c,
                                       TrainActivations& acts) const;

  /// Analytic backward of forward_train(): `dvalues` [B, 1] is the loss
  /// gradient w.r.t. the value; parameter gradients accumulate into `sinks`
  /// in parameters() order: [embed.w, embed.b, lstm.w_x, lstm.w_h,
  /// lstm.bias, value.w, value.b]. Matmul weight sinks must hold exactly
  /// +0.0. Bit-identical to Tape::backward over forward()'s graph.
  void backward_train(tsc::nn::BackwardWorkspace& ws, const TrainActivations& acts,
                      const tsc::nn::Tensor& dvalues,
                      tsc::nn::Tensor* const* sinks) const;

  std::size_t input_dim() const { return input_dim_; }
  std::size_t hidden_size() const { return hidden_; }

 private:
  std::size_t input_dim_, hidden_;
  std::unique_ptr<tsc::nn::Linear> embed_;
  std::unique_ptr<tsc::nn::LstmCell> lstm_;
  std::unique_ptr<tsc::nn::Linear> value_head_;
};

}  // namespace tsc::core
