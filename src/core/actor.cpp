#include "src/core/actor.hpp"

#include <cassert>

#include "src/nn/backward.hpp"
#include "src/nn/inference.hpp"

namespace tsc::core {

using tsc::nn::Linear;
using tsc::nn::LstmCell;
using tsc::nn::Tape;
using tsc::nn::Tensor;
using tsc::nn::Var;

CoordinatedActor::CoordinatedActor(std::size_t obs_dim, std::size_t msg_dim,
                                   std::size_t hidden, std::size_t max_phases,
                                   tsc::Rng& rng)
    : obs_dim_(obs_dim), msg_dim_(msg_dim), hidden_(hidden), max_phases_(max_phases) {
  embed_ = std::make_unique<Linear>(obs_dim + msg_dim, hidden, rng);
  lstm_ = std::make_unique<LstmCell>(hidden, hidden, rng);
  policy_head_ = std::make_unique<Linear>(hidden, max_phases, rng, 0.01);
  message_head_ = std::make_unique<Linear>(hidden, msg_dim, rng, 0.01);
  register_module(embed_.get());
  register_module(lstm_.get());
  register_module(policy_head_.get());
  register_module(message_head_.get());
}

CoordinatedActor::Output CoordinatedActor::forward(
    Tape& tape, Var input, Var h, Var c, const std::vector<std::size_t>& phase_counts) {
  const std::size_t batch = tape.value(input).rows();
  assert(tape.value(input).cols() == input_dim());
  assert(phase_counts.size() == batch);

  Var x = tape.tanh(embed_->forward(tape, input));
  LstmCell::State state = lstm_->forward(tape, x, h, c);
  Var logits = policy_head_->forward(tape, state.h);

  // Mask invalid phases (heterogeneous intersections have fewer phases).
  bool needs_mask = false;
  for (std::size_t pc : phase_counts)
    if (pc < max_phases_) needs_mask = true;
  if (needs_mask) {
    Tensor mask = Tensor::zeros(batch, max_phases_);
    for (std::size_t b = 0; b < batch; ++b)
      for (std::size_t p = phase_counts[b]; p < max_phases_; ++p)
        mask.at(b, p) = -1e9;
    logits = tape.add(logits, tape.constant(std::move(mask)));
  }

  Var message = message_head_->forward(tape, state.h);
  return {logits, message, state};
}

CoordinatedActor::InferenceOutput CoordinatedActor::forward_inference(
    nn::InferenceWorkspace& ws, const Tensor& input, const Tensor& h,
    const Tensor& c, const std::vector<std::size_t>& phase_counts) const {
  const std::size_t batch = input.rows();
  assert(input.cols() == input_dim());
  assert(phase_counts.size() == batch);

  Tensor& x = const_cast<Tensor&>(embed_->forward_inference(ws, input));
  nn::tanh_inplace(x, ws.kernel_tier());
  const LstmCell::InferenceState state = lstm_->forward_inference(ws, x, h, c);
  Tensor& logits = const_cast<Tensor&>(policy_head_->forward_inference(ws, *state.h));

  // Mask invalid phases exactly like the tape path: an element-wise add of
  // 0.0 (valid) or -1e9 (invalid), applied only when some row needs it.
  bool needs_mask = false;
  for (std::size_t pc : phase_counts)
    if (pc < max_phases_) needs_mask = true;
  if (needs_mask) {
    for (std::size_t b = 0; b < batch; ++b)
      for (std::size_t p = 0; p < max_phases_; ++p)
        logits.at(b, p) += p < phase_counts[b] ? 0.0 : -1e9;
  }

  const Tensor& message = message_head_->forward_inference(ws, *state.h);
  return {&logits, &message, state.h, state.c};
}

const Tensor& CoordinatedActor::forward_train(
    nn::BackwardWorkspace& ws, const Tensor& input, const Tensor& h,
    const Tensor& c, const std::vector<std::size_t>& phase_counts,
    TrainActivations& acts) const {
  const std::size_t batch = input.rows();
  assert(input.cols() == input_dim());
  assert(phase_counts.size() == batch);

  Tensor& x = const_cast<Tensor&>(embed_->forward_inference(ws.fwd(), input));
  nn::tanh_inplace(x);
  const LstmCell::TrainState st = lstm_->forward_train(ws, x, h, c);
  Tensor& logits = const_cast<Tensor&>(policy_head_->forward_inference(ws.fwd(), *st.h));

  // Mask invalid phases exactly like the tape path (add of 0.0 / -1e9).
  bool needs_mask = false;
  for (std::size_t pc : phase_counts)
    if (pc < max_phases_) needs_mask = true;
  if (needs_mask) {
    for (std::size_t b = 0; b < batch; ++b)
      for (std::size_t p = 0; p < max_phases_; ++p)
        logits.at(b, p) += p < phase_counts[b] ? 0.0 : -1e9;
  }

  acts = {&input, &h, &c, &x, st, &logits};
  return logits;
}

void CoordinatedActor::backward_train(nn::BackwardWorkspace& ws,
                                      const TrainActivations& acts,
                                      const Tensor& dlogits,
                                      Tensor* const* sinks) const {
  const std::size_t rows = dlogits.rows();
  // The mask add is a constant node: dlogits passes through unchanged. The
  // message head contributes exact zeros everywhere (see forward_train), so
  // the LSTM state gradient is the policy head's alone.
  Tensor& dh = ws.acquire_zeroed(rows, hidden_);
  policy_head_->backward_train(*acts.lstm.h, dlogits, *sinks[5], *sinks[6], &dh);
  Tensor& dx = ws.acquire_zeroed(rows, hidden_);
  lstm_->backward_train(ws, *acts.x, *acts.h_in, *acts.c_in, acts.lstm, dh,
                        *sinks[2], *sinks[3], *sinks[4], &dx);
  Tensor& dembed = ws.acquire_zeroed(rows, hidden_);
  nn::tanh_backward_acc(dembed, dx, *acts.x);
  embed_->backward_train(*acts.input, dembed, *sinks[0], *sinks[1], nullptr);
}

}  // namespace tsc::core
