#include "src/core/fleet_orchestrator.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <thread>

#include "src/baselines/actuated.hpp"
#include "src/baselines/fixed_time.hpp"
#include "src/baselines/max_pressure.hpp"
#include "src/core/trainer.hpp"
#include "src/env/controller.hpp"
#include "src/env/env.hpp"
#include "src/sim/scenario_io.hpp"
#include "src/util/fs.hpp"
#include "src/util/parse.hpp"

namespace tsc::core {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Sweep expansion.

bool controller_learns(const std::string& name) {
  return name == "pairuplight";
}

namespace {

bool controller_known(const std::string& name) {
  return name == "fixedtime" || name == "actuated" || name == "maxpressure" ||
         controller_learns(name);
}

}  // namespace

std::vector<FleetJob> expand_sweep(const SweepSpec& spec) {
  if (spec.scenarios.empty())
    throw std::invalid_argument("expand_sweep: no scenarios");
  if (spec.controllers.empty())
    throw std::invalid_argument("expand_sweep: no controllers");
  if (spec.seeds.empty()) throw std::invalid_argument("expand_sweep: no seeds");
  if (spec.hiddens.empty())
    throw std::invalid_argument("expand_sweep: no hidden widths");
  for (const std::string& c : spec.controllers)
    if (!controller_known(c))
      throw std::invalid_argument("expand_sweep: unknown controller '" + c + "'");

  std::vector<FleetJob> jobs;
  for (const std::string& scenario : spec.scenarios) {
    for (const std::string& controller : spec.controllers) {
      const bool learns = controller_learns(controller);
      // The hyperparam axis only multiplies jobs that consume it.
      const std::size_t num_hiddens = learns ? spec.hiddens.size() : 1;
      for (std::uint64_t seed : spec.seeds) {
        for (std::size_t h = 0; h < num_hiddens; ++h) {
          FleetJob job;
          job.id = jobs.size();
          job.scenario = scenario;
          job.controller = controller;
          job.seed = seed;
          job.hidden = spec.hiddens[h];
          job.train_episodes = learns ? spec.train_episodes : 0;
          job.episode_seconds = spec.episode_seconds;
          jobs.push_back(std::move(job));
        }
      }
    }
  }
  return jobs;
}

// ---------------------------------------------------------------------------
// Flat single-line JSON.

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        // The journal never emits other control characters; map any that
        // sneak in (e.g. via a hostile path) to space rather than emitting
        // invalid JSON.
        out += static_cast<unsigned char>(c) < 0x20 ? ' ' : c;
    }
  }
  return out;
}

std::optional<std::map<std::string, std::string>> parse_flat_json(
    const std::string& line) {
  std::map<std::string, std::string> out;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  const auto parse_string = [&](std::string& value) -> bool {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    value.clear();
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\') {
        if (i + 1 >= line.size()) return false;
        const char esc = line[i + 1];
        switch (esc) {
          case '"': value += '"'; break;
          case '\\': value += '\\'; break;
          case '/': value += '/'; break;
          case 'n': value += '\n'; break;
          case 't': value += '\t'; break;
          case 'r': value += '\r'; break;
          default: return false;
        }
        i += 2;
      } else {
        value += line[i++];
      }
    }
    if (i >= line.size()) return false;  // unterminated string (torn line)
    ++i;
    return true;
  };

  skip_ws();
  if (i >= line.size() || line[i] != '{') return std::nullopt;
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      skip_ws();
      std::string key, value;
      if (!parse_string(key)) return std::nullopt;
      skip_ws();
      if (i >= line.size() || line[i] != ':') return std::nullopt;
      ++i;
      skip_ws();
      if (i < line.size() && line[i] == '"') {
        if (!parse_string(value)) return std::nullopt;
      } else {
        const std::size_t start = i;
        while (i < line.size() && line[i] != ',' && line[i] != '}' &&
               line[i] != ' ' && line[i] != '\t')
          ++i;
        if (i == start) return std::nullopt;
        value = line.substr(start, i - start);
      }
      out[key] = value;
      skip_ws();
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      return std::nullopt;  // torn mid-object
    }
  }
  skip_ws();
  if (i != line.size()) return std::nullopt;
  return out;
}

namespace {

/// Builder for one flat journal/metrics line.
class JsonLine {
 public:
  JsonLine& str(const std::string& key, const std::string& value) {
    field(key);
    line_ += '"';
    line_ += json_escape(value);
    line_ += '"';
    return *this;
  }
  JsonLine& num(const std::string& key, std::uint64_t value) {
    field(key);
    line_ += std::to_string(value);
    return *this;
  }
  JsonLine& snum(const std::string& key, std::int64_t value) {
    field(key);
    line_ += std::to_string(value);
    return *this;
  }
  JsonLine& dbl(const std::string& key, double value) {
    field(key);
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    line_ += buffer;
    return *this;
  }
  std::string finish() { return line_ + "}"; }

 private:
  void field(const std::string& key) {
    line_ += first_ ? "{\"" : ",\"";
    first_ = false;
    line_ += json_escape(key);
    line_ += "\":";
  }
  std::string line_;
  bool first_ = true;
};

using FlatJson = std::map<std::string, std::string>;

const std::string& get_field(const FlatJson& json, const std::string& key,
                             const std::string& where) {
  const auto it = json.find(key);
  if (it == json.end())
    throw std::runtime_error(where + ": missing field '" + key + "'");
  return it->second;
}

std::uint64_t get_u64(const FlatJson& json, const std::string& key,
                      const std::string& where) {
  const auto value = util::parse_u64(get_field(json, key, where));
  if (!value)
    throw std::runtime_error(where + ": field '" + key + "' is not an integer");
  return *value;
}

std::int64_t get_i64(const FlatJson& json, const std::string& key,
                     const std::string& where) {
  const auto value = util::parse_i64(get_field(json, key, where));
  if (!value)
    throw std::runtime_error(where + ": field '" + key + "' is not an integer");
  return *value;
}

double get_double(const FlatJson& json, const std::string& key,
                  const std::string& where) {
  const auto value = util::parse_double(get_field(json, key, where));
  if (!value)
    throw std::runtime_error(where + ": field '" + key + "' is not a number");
  return *value;
}

}  // namespace

// ---------------------------------------------------------------------------
// Run store.

const char* job_phase_name(JobPhase phase) {
  switch (phase) {
    case JobPhase::kPending: return "pending";
    case JobPhase::kRunning: return "running";
    case JobPhase::kDone: return "done";
    case JobPhase::kFailed: return "failed";
  }
  return "?";
}

std::string RunStore::job_dir(std::size_t id) const {
  return dir_ + "/jobs/" + std::to_string(id);
}
std::string RunStore::metrics_path(std::size_t id) const {
  return job_dir(id) + "/metrics.json";
}
std::string RunStore::log_path(std::size_t id) const {
  return job_dir(id) + "/log.txt";
}
std::string RunStore::checkpoint_prefix(std::size_t id) const {
  return job_dir(id) + "/ckpt";
}

RunStore RunStore::create(const std::string& dir,
                          const std::vector<FleetJob>& jobs) {
  if (jobs.empty()) throw std::invalid_argument("RunStore::create: no jobs");
  RunStore store(dir);
  if (fs::exists(store.journal_path()))
    throw std::runtime_error("RunStore::create: " + store.journal_path() +
                             " already exists (use open/resume)");
  fs::create_directories(dir);
  store.append_line(
      JsonLine().str("event", "create").num("version", 1).num("jobs", jobs.size()).finish());
  for (const FleetJob& job : jobs) {
    if (job.id != store.jobs_.size())
      throw std::invalid_argument("RunStore::create: job ids must be dense");
    fs::create_directories(store.job_dir(job.id));
    store.append_line(JsonLine()
                          .str("event", "job")
                          .num("id", job.id)
                          .str("scenario", job.scenario)
                          .str("controller", job.controller)
                          .num("seed", job.seed)
                          .num("hidden", job.hidden)
                          .num("train_episodes", job.train_episodes)
                          .dbl("episode_seconds", job.episode_seconds)
                          .finish());
    JobState state;
    state.job = job;
    store.jobs_.push_back(std::move(state));
  }
  return store;
}

RunStore RunStore::open(const std::string& dir) {
  RunStore store(dir);
  if (!fs::exists(store.journal_path()))
    throw std::runtime_error("RunStore::open: no journal at " +
                             store.journal_path());
  store.replay();
  return store;
}

void RunStore::replay() {
  std::ifstream in(journal_path());
  if (!in)
    throw std::runtime_error("RunStore: cannot read " + journal_path());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto json = parse_flat_json(line);
    // A line that does not parse is a torn tail from a writer killed
    // mid-append: stop replaying. Everything after it (there should be
    // nothing) is unreachable state we must not guess at.
    if (!json) break;
    const std::string& event = get_field(*json, "event", "journal");
    if (event == "create") continue;
    if (event == "sweep") {
      ++totals_.sessions;
      totals_.wall_seconds += get_double(*json, "wall_seconds", "journal");
      totals_.max_parallel = std::max(
          totals_.max_parallel,
          static_cast<std::size_t>(get_u64(*json, "max_parallel", "journal")));
      continue;
    }
    const std::size_t id =
        static_cast<std::size_t>(get_u64(*json, "id", "journal"));
    if (event == "job") {
      if (id != jobs_.size())
        throw std::runtime_error("journal: job ids out of order in " +
                                 journal_path());
      JobState state;
      state.job.id = id;
      state.job.scenario = get_field(*json, "scenario", "journal");
      state.job.controller = get_field(*json, "controller", "journal");
      state.job.seed = get_u64(*json, "seed", "journal");
      state.job.hidden =
          static_cast<std::size_t>(get_u64(*json, "hidden", "journal"));
      state.job.train_episodes = static_cast<std::size_t>(
          get_u64(*json, "train_episodes", "journal"));
      state.job.episode_seconds = get_double(*json, "episode_seconds", "journal");
      jobs_.push_back(std::move(state));
      continue;
    }
    if (id >= jobs_.size())
      throw std::runtime_error("journal: event for unknown job in " +
                               journal_path());
    JobState& state = jobs_[id];
    if (event == "start") {
      state.attempts =
          static_cast<std::size_t>(get_u64(*json, "attempt", "journal"));
      state.phase = JobPhase::kRunning;
    } else if (event == "done") {
      state.phase = JobPhase::kDone;
      state.wall_seconds = get_double(*json, "wall_seconds", "journal");
    } else if (event == "fail") {
      state.phase = JobPhase::kFailed;
      state.last_exit_code =
          static_cast<int>(get_i64(*json, "exit_code", "journal"));
      state.last_signal = static_cast<int>(get_i64(*json, "signal", "journal"));
    } else {
      throw std::runtime_error("journal: unknown event '" + event + "' in " +
                               journal_path());
    }
  }
  // Jobs still marked running belonged to a dead orchestrator: schedulable
  // again (their checkpoints and the idempotent worker make that safe).
  for (JobState& state : jobs_)
    if (state.phase == JobPhase::kRunning) state.phase = JobPhase::kPending;
}

void RunStore::append_line(const std::string& line) {
  std::ofstream out(journal_path(), std::ios::app);
  if (!out)
    throw std::runtime_error("RunStore: cannot append to " + journal_path());
  out << line << '\n';
  out.flush();
  if (!out)
    throw std::runtime_error("RunStore: append failed for " + journal_path());
}

void RunStore::record_start(std::size_t id, int pid) {
  JobState& state = jobs_.at(id);
  ++state.attempts;
  append_line(JsonLine()
                  .str("event", "start")
                  .num("id", id)
                  .num("attempt", state.attempts)
                  .snum("pid", pid)
                  .finish());
  state.phase = JobPhase::kRunning;
}

void RunStore::record_done(std::size_t id, double wall_seconds) {
  append_line(JsonLine()
                  .str("event", "done")
                  .num("id", id)
                  .dbl("wall_seconds", wall_seconds)
                  .finish());
  JobState& state = jobs_.at(id);
  state.phase = JobPhase::kDone;
  state.wall_seconds = wall_seconds;
}

void RunStore::record_fail(std::size_t id, const util::ExitStatus& status) {
  const int exit_code = status.exited ? status.exit_code : -1;
  const int signal = status.signaled ? status.term_signal : 0;
  append_line(JsonLine()
                  .str("event", "fail")
                  .num("id", id)
                  .snum("exit_code", exit_code)
                  .snum("signal", signal)
                  .finish());
  JobState& state = jobs_.at(id);
  state.phase = JobPhase::kFailed;
  state.last_exit_code = exit_code;
  state.last_signal = signal;
}

void RunStore::record_sweep(std::size_t max_parallel, std::size_t done,
                            std::size_t failed, std::size_t retries,
                            double wall_seconds) {
  append_line(JsonLine()
                  .str("event", "sweep")
                  .num("max_parallel", max_parallel)
                  .num("done", done)
                  .num("failed", failed)
                  .num("retries", retries)
                  .dbl("wall_seconds", wall_seconds)
                  .finish());
  ++totals_.sessions;
  totals_.wall_seconds += wall_seconds;
  totals_.max_parallel = std::max(totals_.max_parallel, max_parallel);
}

// ---------------------------------------------------------------------------
// Orchestration.

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

OrchestratorResult run_fleet(RunStore& store, const OrchestratorConfig& config) {
  if (config.max_parallel == 0)
    throw std::invalid_argument("run_fleet: max_parallel must be >= 1");
  if (config.max_attempts == 0)
    throw std::invalid_argument("run_fleet: max_attempts must be >= 1");
  const std::string worker_exe =
      config.worker_exe.empty() ? util::self_exe_path("") : config.worker_exe;
  if (worker_exe.empty())
    throw std::runtime_error("run_fleet: cannot determine worker executable");

  struct Pending {
    std::size_t id;
    std::size_t session_attempts = 0;
    Clock::time_point not_before = Clock::time_point::min();
  };
  struct Running {
    std::size_t id;
    std::size_t session_attempts;
    Clock::time_point started;
  };

  std::deque<Pending> pending;
  for (JobState& state : store.jobs())
    if (state.phase != JobPhase::kDone) pending.push_back(Pending{state.job.id});

  OrchestratorResult result;
  const Clock::time_point sweep_start = Clock::now();
  std::map<int, Running> running;

  while (!pending.empty() || !running.empty()) {
    // Launch every ready pending job while worker slots are free.
    for (std::size_t scanned = 0;
         running.size() < config.max_parallel && !pending.empty() &&
         scanned < pending.size();) {
      Pending next = pending.front();
      pending.pop_front();
      if (next.not_before > Clock::now()) {
        pending.push_back(next);  // still backing off; rotate past it
        ++scanned;
        continue;
      }
      const std::vector<std::string> argv = {
          worker_exe, "worker", "--run", store.dir(), "--job",
          std::to_string(next.id)};
      const int pid = util::spawn_process(argv, store.log_path(next.id));
      store.record_start(next.id, pid);
      if (config.verbose)
        std::printf("[fleet] job %zu start (attempt %zu, pid %d)\n", next.id,
                    store.jobs()[next.id].attempts, pid);
      running[pid] = Running{next.id, next.session_attempts + 1, Clock::now()};
      scanned = 0;  // a slot changed; rescan the rotation from the top
    }

    const auto reaped = util::try_wait_any();
    if (!reaped) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    const auto it = running.find(reaped->first);
    if (it == running.end()) continue;  // not one of ours
    const Running job = it->second;
    running.erase(it);
    const util::ExitStatus& status = reaped->second;

    if (status.success()) {
      const double wall = seconds_since(job.started);
      store.record_done(job.id, wall);
      ++result.done;
      if (config.verbose)
        std::printf("[fleet] job %zu done (%.2f s)\n", job.id, wall);
      continue;
    }

    store.record_fail(job.id, status);
    if (config.verbose) {
      if (status.signaled)
        std::printf("[fleet] job %zu killed by signal %d (attempt %zu)\n",
                    job.id, status.term_signal, job.session_attempts);
      else
        std::printf("[fleet] job %zu exited %d (attempt %zu)\n", job.id,
                    status.exit_code, job.session_attempts);
    }
    if (job.session_attempts < config.max_attempts) {
      // Bounded linear backoff before the retry; the job resumes from its
      // last durable checkpoint, not from scratch.
      Pending retry;
      retry.id = job.id;
      retry.session_attempts = job.session_attempts;
      retry.not_before =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 config.backoff_seconds *
                                 static_cast<double>(job.session_attempts)));
      pending.push_back(retry);
      ++result.retries;
    } else {
      ++result.failed;
      if (config.verbose)
        std::printf("[fleet] job %zu failed permanently after %zu attempts\n",
                    job.id, job.session_attempts);
    }
  }

  result.wall_seconds = seconds_since(sweep_start);
  store.record_sweep(config.max_parallel, result.done, result.failed,
                     result.retries, result.wall_seconds);
  return result;
}

// ---------------------------------------------------------------------------
// Worker.

namespace {

std::unique_ptr<env::Controller> make_classic_controller(
    const std::string& name) {
  if (name == "fixedtime") return std::make_unique<baselines::FixedTimeController>();
  if (name == "actuated") return std::make_unique<baselines::ActuatedController>();
  if (name == "maxpressure")
    return std::make_unique<baselines::MaxPressureController>();
  return nullptr;
}

/// One greedy evaluation episode, tsc_run-style.
void run_eval_episode(env::TscEnv& environment, env::Controller& controller,
                      std::uint64_t seed) {
  environment.reset(seed);
  controller.begin_episode(environment);
  while (!environment.done()) environment.step(controller.act(environment));
}

}  // namespace

int run_fleet_worker(const std::string& run_dir, std::size_t job_id) {
  RunStore store = RunStore::open(run_dir);
  if (job_id >= store.jobs().size()) {
    std::fprintf(stderr, "worker: no job %zu in %s\n", job_id, run_dir.c_str());
    return 2;
  }
  const FleetJob job = store.jobs()[job_id].job;

  // Idempotent: a durable metrics record means this job already finished
  // (the orchestrator may have died before journaling the done event).
  if (fs::exists(store.metrics_path(job_id))) {
    std::printf("worker: job %zu already has %s, nothing to do\n", job_id,
                store.metrics_path(job_id).c_str());
    return 0;
  }

  const Clock::time_point start = Clock::now();
  sim::Scenario scenario = sim::load_scenario(job.scenario);
  env::EnvConfig env_config;
  env_config.episode_seconds = job.episode_seconds;
  env::TscEnv environment(&scenario.net, scenario.flows, env_config, job.seed);

  std::uint64_t env_steps = 0;
  std::unique_ptr<env::Controller> controller;
  std::unique_ptr<PairUpLightTrainer> trainer;

  if (controller_learns(job.controller)) {
    PairUpConfig config;
    config.hidden = job.hidden;
    config.seed = job.seed;
    // Heterogeneous scenario files may have differing phase sets.
    const std::size_t first = environment.agent(0).num_phases;
    for (std::size_t i = 1; i < environment.num_agents(); ++i)
      if (environment.agent(i).num_phases != first)
        config.parameter_sharing = false;
    trainer = std::make_unique<PairUpLightTrainer>(&environment, config);

    const std::string prefix = store.checkpoint_prefix(job_id);
    if (fs::exists(prefix + "_trainer.bin")) {
      trainer->load_checkpoint(prefix);
      std::printf("worker: job %zu resuming from checkpoint at episode %zu\n",
                  job_id, trainer->episodes_trained());
    }

    // TEST HOOK: TSC_FLEET_CRASH_AFTER_EPISODE=K makes a FRESH worker (one
    // that started from episode 0) SIGKILL itself after training episode K
    // but BEFORE saving its checkpoint — simulating a worker dying
    // mid-episode with episode K-1 as the last durable state. A resumed
    // worker ignores the hook, so the retry runs to completion.
    std::size_t crash_after = 0;
    if (const char* hook = std::getenv("TSC_FLEET_CRASH_AFTER_EPISODE")) {
      const auto parsed = util::parse_u64(hook);
      if (parsed && trainer->episodes_trained() == 0)
        crash_after = static_cast<std::size_t>(*parsed);
    }

    while (trainer->episodes_trained() < job.train_episodes) {
      const auto stats = trainer->train_episode();
      env_steps += environment.steps_taken();
      std::printf("worker: job %zu episode %zu avg wait %.2f s\n", job_id,
                  trainer->episodes_trained(), stats.avg_wait);
      if (crash_after != 0 && trainer->episodes_trained() >= crash_after)
        ::raise(SIGKILL);
      trainer->save_checkpoint(store.checkpoint_prefix(job_id));
    }
    controller = trainer->make_controller();
  } else {
    controller = make_classic_controller(job.controller);
    if (!controller) {
      std::fprintf(stderr, "worker: unknown controller '%s'\n",
                   job.controller.c_str());
      return 2;
    }
  }

  run_eval_episode(environment, *controller, job.seed);
  env_steps += environment.steps_taken();

  const double wall = seconds_since(start);
  const std::string metrics =
      JsonLine()
          .num("job", job_id)
          .str("scenario", job.scenario)
          .str("controller", job.controller)
          .num("seed", job.seed)
          .num("hidden", job.hidden)
          .num("train_episodes", job.train_episodes)
          .dbl("episode_seconds", job.episode_seconds)
          .dbl("travel_time", environment.average_travel_time())
          .dbl("delay", environment.average_delay())
          .dbl("avg_wait", environment.episode_avg_wait())
          .num("finished", environment.simulator().vehicles_finished())
          .num("spawned", environment.simulator().vehicles_spawned())
          .num("env_steps", env_steps)
          .dbl("wall_seconds", wall)
          .num("hardware_threads", std::thread::hardware_concurrency())
          .finish();
  // The metrics record is the job's commit point: atomic, so the
  // orchestrator (and report) either see the whole record or none of it.
  util::atomic_write_file(store.metrics_path(job_id), metrics + "\n");
  std::printf("worker: job %zu finished in %.2f s (%llu env steps)\n", job_id,
              wall, static_cast<unsigned long long>(env_steps));
  return 0;
}

// ---------------------------------------------------------------------------
// Reporting.

FleetReport build_report(RunStore& store) {
  FleetReport report;
  report.totals = store.totals();
  for (const JobState& state : store.jobs()) {
    FleetReport::Row row;
    row.state = state;
    report.total_attempts += state.attempts;
    if (state.phase == JobPhase::kFailed) ++report.jobs_failed;
    if (fs::exists(store.metrics_path(state.job.id))) {
      std::ifstream in(store.metrics_path(state.job.id));
      std::string line;
      std::getline(in, line);
      const auto json = parse_flat_json(line);
      if (json) {
        row.metrics = *json;
        ++report.jobs_done;
        report.serialized_wall_seconds +=
            get_double(*json, "wall_seconds", "metrics");
        report.total_env_steps += get_u64(*json, "env_steps", "metrics");
      }
    }
    report.rows.push_back(std::move(row));
  }
  return report;
}

namespace {

std::string basename_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

double metric_or(const FleetReport::Row& row, const std::string& key,
                 double fallback) {
  const auto it = row.metrics.find(key);
  if (it == row.metrics.end()) return fallback;
  const auto value = util::parse_double(it->second);
  return value ? *value : fallback;
}

}  // namespace

void print_report(const FleetReport& report) {
  std::printf(
      "%4s  %-12s %-24s %6s %6s %4s  %-7s %3s  %10s %10s %8s %8s\n", "job",
      "controller", "scenario", "seed", "hidden", "eps", "status", "try",
      "travel(s)", "delay(s)", "wait(s)", "wall(s)");
  for (const FleetReport::Row& row : report.rows) {
    const FleetJob& job = row.state.job;
    std::printf("%4zu  %-12s %-24s %6llu %6zu %4zu  %-7s %3zu  %10.1f %10.1f "
                "%8.2f %8.2f\n",
                job.id, job.controller.c_str(),
                basename_of(job.scenario).c_str(),
                static_cast<unsigned long long>(job.seed), job.hidden,
                job.train_episodes, job_phase_name(row.state.phase),
                row.state.attempts, metric_or(row, "travel_time", 0.0),
                metric_or(row, "delay", 0.0), metric_or(row, "avg_wait", 0.0),
                metric_or(row, "wall_seconds", 0.0));
  }
  const double wall = report.totals.wall_seconds;
  const double serialized = report.serialized_wall_seconds;
  std::printf("\n%zu/%zu jobs done (%zu failed, %zu attempts) across %zu "
              "orchestrator session(s)\n",
              report.jobs_done, report.rows.size(), report.jobs_failed,
              report.total_attempts, report.totals.sessions);
  if (wall > 0.0) {
    std::printf("sweep wall %.2f s | jobs/hour %.1f | aggregate %.0f env "
                "steps/s\n",
                wall, static_cast<double>(report.jobs_done) * 3600.0 / wall,
                static_cast<double>(report.total_env_steps) / wall);
    if (serialized > 0.0) {
      const unsigned hw = std::thread::hardware_concurrency();
      std::printf("1-process baseline (serialized job wall) %.2f s -> "
                  "speedup %.2fx on %u hardware thread(s)%s\n",
                  serialized, serialized / wall, hw,
                  report.totals.max_parallel > hw
                      ? " [per-job walls contended: baseline inflated]"
                      : "");
    }
  }
}

void write_bench_fleet_json(const FleetReport& report, const std::string& path) {
  const double wall = report.totals.wall_seconds;
  const double serialized = report.serialized_wall_seconds;
  const unsigned hw = std::thread::hardware_concurrency();
  std::ofstream out(path, std::ios::trunc);
  if (!out)
    throw std::runtime_error("write_bench_fleet_json: cannot open " + path);
  out << "{\n  \"bench\": \"fleet\",\n";
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "  \"hardware_concurrency\": %u,\n  \"hardware_threads\": %u,\n",
                hw, hw);
  out << buffer;
  std::snprintf(buffer, sizeof(buffer),
                "  \"jobs\": %zu, \"done\": %zu, \"failed\": %zu, "
                "\"attempts\": %zu,\n",
                report.rows.size(), report.jobs_done, report.jobs_failed,
                report.total_attempts);
  out << buffer;
  std::snprintf(buffer, sizeof(buffer),
                "  \"max_parallel\": %zu, \"orchestrator_sessions\": %zu, "
                "\"thread_limited\": %s,\n",
                report.totals.max_parallel, report.totals.sessions,
                report.totals.max_parallel > hw ? "true" : "false");
  out << buffer;
  std::snprintf(buffer, sizeof(buffer),
                "  \"wall_seconds\": %.6f, \"jobs_per_hour\": %.2f,\n", wall,
                wall > 0.0 ? static_cast<double>(report.jobs_done) * 3600.0 / wall
                           : 0.0);
  out << buffer;
  std::snprintf(buffer, sizeof(buffer),
                "  \"total_env_steps\": %llu, \"agg_env_steps_per_sec\": %.2f,\n",
                static_cast<unsigned long long>(report.total_env_steps),
                wall > 0.0 ? static_cast<double>(report.total_env_steps) / wall
                           : 0.0);
  out << buffer;
  // The serialized baseline sums per-job walls AS MEASURED DURING THE
  // SWEEP. When worker processes oversubscribe the hardware
  // (max_parallel > hardware threads), those walls are inflated by CPU
  // contention and the derived speedup overstates reality — flag it so the
  // row stays honest on thread-limited boxes.
  std::snprintf(
      buffer, sizeof(buffer),
      "  \"serialized_wall_seconds\": %.6f, "
      "\"serialized_env_steps_per_sec\": %.2f, \"speedup_vs_one_process\": "
      "%.3f, \"serialized_baseline_contended\": %s,\n",
      serialized,
      serialized > 0.0 ? static_cast<double>(report.total_env_steps) / serialized
                       : 0.0,
      wall > 0.0 && serialized > 0.0 ? serialized / wall : 0.0,
      report.totals.max_parallel > hw ? "true" : "false");
  out << buffer;
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const FleetReport::Row& row = report.rows[i];
    const FleetJob& job = row.state.job;
    JsonLine line;
    line.num("job", job.id)
        .str("controller", job.controller)
        .str("scenario", basename_of(job.scenario))
        .num("seed", job.seed)
        .num("hidden", job.hidden)
        .num("train_episodes", job.train_episodes)
        .str("status", job_phase_name(row.state.phase))
        .num("attempts", row.state.attempts)
        .dbl("travel_time", metric_or(row, "travel_time", 0.0))
        .dbl("delay", metric_or(row, "delay", 0.0))
        .dbl("avg_wait", metric_or(row, "avg_wait", 0.0))
        .dbl("env_steps", metric_or(row, "env_steps", 0.0))
        .dbl("wall_seconds", metric_or(row, "wall_seconds", 0.0));
    out << "    " << line.finish() << (i + 1 < report.rows.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
  if (!out)
    throw std::runtime_error("write_bench_fleet_json: write failed for " + path);
}

}  // namespace tsc::core
