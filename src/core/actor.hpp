// PairUpLight coordinated Actor network (paper Fig. 5, Eq. 8).
//
// Input:  local observation concatenated with the incoming regularized
//         message m_hat from the paired (most congested upstream) agent.
// Body:   FC -> tanh -> LSTM.
// Heads:  action logits over phases (masked per agent) and the raw outgoing
//         message m (regularized to m_hat = Logistic(N(m, sigma)) outside
//         the network, Algorithm 1 line 16).
#pragma once

#include <memory>
#include <vector>

#include "src/nn/layers.hpp"
#include "src/nn/module.hpp"

namespace tsc::core {

class CoordinatedActor : public tsc::nn::Module {
 public:
  /// `obs_dim` excludes the message; the network input is obs_dim+msg_dim.
  CoordinatedActor(std::size_t obs_dim, std::size_t msg_dim, std::size_t hidden,
                   std::size_t max_phases, tsc::Rng& rng);

  struct Output {
    tsc::nn::Var logits;   ///< [B, max_phases] (masked: invalid = -1e9)
    tsc::nn::Var message;  ///< [B, msg_dim], raw (pre-regularizer)
    tsc::nn::LstmCell::State state;
  };

  /// `input` is [B, obs_dim+msg_dim]; `phase_counts[b]` masks logits beyond
  /// each row's phase count.
  Output forward(tsc::nn::Tape& tape, tsc::nn::Var input, tsc::nn::Var h,
                 tsc::nn::Var c, const std::vector<std::size_t>& phase_counts);

  /// Tape-free forward results; tensors live in the workspace and stay
  /// valid until its next begin_pass().
  struct InferenceOutput {
    const tsc::nn::Tensor* logits = nullptr;   ///< [B, max_phases]
    const tsc::nn::Tensor* message = nullptr;  ///< [B, msg_dim], raw
    const tsc::nn::Tensor* h = nullptr;        ///< [B, hidden]
    const tsc::nn::Tensor* c = nullptr;        ///< [B, hidden]
  };

  /// Tape-free forward; bit-identical to forward() (including the masked
  /// -1e9 logits at heterogeneous phase counts). `input`/`h`/`c` must not
  /// alias buffers acquired by this call.
  InferenceOutput forward_inference(tsc::nn::InferenceWorkspace& ws,
                                    const tsc::nn::Tensor& input,
                                    const tsc::nn::Tensor& h,
                                    const tsc::nn::Tensor& c,
                                    const std::vector<std::size_t>& phase_counts) const;

  /// Activations retained by forward_train() for backward_train(). The
  /// input/h/c pointers refer to the caller's tensors; the rest live in the
  /// workspace (valid until its next begin_pass()).
  struct TrainActivations {
    const tsc::nn::Tensor* input = nullptr;
    const tsc::nn::Tensor* h_in = nullptr;
    const tsc::nn::Tensor* c_in = nullptr;
    const tsc::nn::Tensor* x = nullptr;  ///< tanh(embed) [B, hidden]
    tsc::nn::LstmCell::TrainState lstm;
    const tsc::nn::Tensor* logits = nullptr;  ///< masked [B, max_phases]
  };

  /// Tape-free training forward: logits bit-identical to forward() /
  /// forward_inference(). The message head is not evaluated — the PPO loss
  /// never consumes it, so on the tape its output gradient is exactly zero
  /// and its parameter gradients stay exactly +0.0, which skipping
  /// reproduces bit-for-bit.
  const tsc::nn::Tensor& forward_train(tsc::nn::BackwardWorkspace& ws,
                                       const tsc::nn::Tensor& input,
                                       const tsc::nn::Tensor& h,
                                       const tsc::nn::Tensor& c,
                                       const std::vector<std::size_t>& phase_counts,
                                       TrainActivations& acts) const;

  /// Analytic backward of forward_train(): `dlogits` is the loss gradient
  /// w.r.t. the (masked) logits; parameter gradients accumulate into
  /// `sinks`, ordered exactly like parameters(): [embed.w, embed.b,
  /// lstm.w_x, lstm.w_h, lstm.bias, policy.w, policy.b, msg.w, msg.b]
  /// (the last two are left untouched — see forward_train). Matmul weight
  /// sinks must hold exactly +0.0. Bit-identical to Tape::backward over
  /// forward()'s graph.
  void backward_train(tsc::nn::BackwardWorkspace& ws, const TrainActivations& acts,
                      const tsc::nn::Tensor& dlogits,
                      tsc::nn::Tensor* const* sinks) const;

  std::size_t obs_dim() const { return obs_dim_; }
  std::size_t msg_dim() const { return msg_dim_; }
  std::size_t hidden_size() const { return hidden_; }
  std::size_t max_phases() const { return max_phases_; }
  std::size_t input_dim() const { return obs_dim_ + msg_dim_; }

 private:
  std::size_t obs_dim_, msg_dim_, hidden_, max_phases_;
  std::unique_ptr<tsc::nn::Linear> embed_;
  std::unique_ptr<tsc::nn::LstmCell> lstm_;
  std::unique_ptr<tsc::nn::Linear> policy_head_;
  std::unique_ptr<tsc::nn::Linear> message_head_;
};

}  // namespace tsc::core
