// PPO minibatch-update engine shared by the serial trainer path and the
// sharded parallel update (mirrors core/rollout_engine.hpp for the rollout
// phase).
//
// Everything one minibatch update touches is passed through UpdateContext,
// so the identical code drives both (a) the trainer's own networks on its
// scratch tape (the num_update_shards = 1 serial path, bit-identical to the
// historical trainer) and (b) the ParallelUpdateEngine, which splits the
// minibatch across thread-pool workers.
//
// Determinism of the sharded path. Every cross-row reduction in this stack
// folds sequentially over batch rows in increasing row order: the weight
// gradient matmul_tn accumulates over rows p = 0..B-1 per output element,
// the broadcast-bias backward sums rows r = 0..B-1, and the batch means
// divide a row-ordered sum. All remaining ops are strictly row-wise, every
// Parameter is consumed exactly once per forward, and rl::ppo_shard_loss
// expresses each batch mean as sum()/B with division in the backward pass
// (Tape::div_scalar). A single sample's graph therefore produces exactly
// the terms the batched graph adds for that row, so computing per-sample
// gradients on any shard layout and folding the per-sample slots in global
// sample order 0..B-1 replays the batched fold's exact left-to-right
// binary-add sequence: gradients — and hence weight trajectories — are
// bit-identical for every shard count, including the batched serial path.
//
// Workers share the live (frozen-by-barrier) weights read-only: clip + step
// happen on the calling thread only after every shard completes, and each
// sample's gradients land in dedicated slot tensors via the tape's
// grad-redirect list, never in Parameter::grad.
//
// The batched-shard mode (UpdateMode::kBatchedShards) trades the exactness
// of the per-sample layout for throughput: each worker runs ONE batched
// forward/backward over its contiguous minibatch slice (every Linear/LSTM
// matmul at rows = shard size instead of rows = 1), still scaled as its
// 1/batch share of the minibatch via rl::ppo_shard_loss, and the calling
// thread folds per-shard gradient slots in shard order. Within a shard the
// weight-gradient matmul_tn folds rows in increasing row order — exactly
// the serial sequence restricted to the slice — but the fold ACROSS shards
// re-associates that row sum at shard boundaries: (g0+g1)+(g2+g3) instead
// of ((g0+g1)+g2)+g3. The result is deterministic for a fixed shard count
// (shards are folded in index order on one thread) but only
// tolerance-bounded against the serial fold, which is why this mode has a
// pinned numerical-equivalence test (tests/test_update_modes.cpp) rather
// than a bitwise golden.
//
// The backward implementation is orthogonal to the layout
// (UpdatePath, default kFused): the fused path computes the same gradients
// with hand-written analytic kernels into preallocated BackwardWorkspace
// slots instead of building a tape graph, replaying the tape's
// floating-point accumulation orders exactly, so every determinism
// statement above carries over bit-for-bit (nn/backward.hpp states the
// per-kernel replay contracts; tests/test_backward_path.cpp pins
// tape-vs-fused equality per layout and over whole training runs). The
// fused workers write into the same per-sample / per-shard slot tensors
// the tape path grad-redirects into, so the ordered fold on the calling
// thread is literally shared code.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "src/core/actor.hpp"
#include "src/core/critic.hpp"
#include "src/core/rollout_engine.hpp"
#include "src/nn/backward.hpp"
#include "src/nn/optim.hpp"
#include "src/nn/tape.hpp"
#include "src/rl/rollout.hpp"
#include "src/util/thread_pool.hpp"

namespace tsc::core {

/// Network inputs and PPO scalars of an update's samples packed into
/// contiguous row blocks ONCE per update_model call, so every epoch's
/// minibatch packing gathers rows from one pinned block instead of
/// re-walking the scattered per-sample vectors. Buffers keep their capacity
/// across build() calls (pinned after the first update). Row r holds the
/// same values as samples[r], so packing from the block is value-identical
/// to packing from the samples.
class PackedSampleBlock {
 public:
  void build(const std::vector<const rl::Sample*>& samples,
             std::size_t obs_dim, std::size_t critic_dim, std::size_t hidden);

  std::size_t rows() const { return rows_; }
  std::size_t obs_dim() const { return obs_dim_; }
  std::size_t critic_dim() const { return critic_dim_; }
  std::size_t hidden() const { return hidden_; }

  const double* obs_row(std::size_t r) const { return obs_.data() + r * obs_dim_; }
  const double* h_actor_row(std::size_t r) const { return h_a_.data() + r * hidden_; }
  const double* c_actor_row(std::size_t r) const { return c_a_.data() + r * hidden_; }
  const double* critic_obs_row(std::size_t r) const {
    return critic_obs_.data() + r * critic_dim_;
  }
  const double* h_critic_row(std::size_t r) const { return h_v_.data() + r * hidden_; }
  const double* c_critic_row(std::size_t r) const { return c_v_.data() + r * hidden_; }

  std::size_t action(std::size_t r) const { return actions_[r]; }
  std::size_t phase_count(std::size_t r) const { return phase_counts_[r]; }
  double log_prob(std::size_t r) const { return log_probs_[r]; }
  double advantage(std::size_t r) const { return advantages_[r]; }
  double ret(std::size_t r) const { return returns_[r]; }

 private:
  std::size_t rows_ = 0, obs_dim_ = 0, critic_dim_ = 0, hidden_ = 0;
  std::vector<double> obs_, h_a_, c_a_, critic_obs_, h_v_, c_v_;
  std::vector<std::size_t> actions_, phase_counts_;
  std::vector<double> log_probs_, advantages_, returns_;
};

/// The mutable collaborators of one model's PPO update. All pointers are
/// non-owning and must outlive the call.
struct UpdateContext {
  const PairUpConfig* config = nullptr;
  CoordinatedActor* actor = nullptr;
  CentralizedCritic* critic = nullptr;
  /// actor->parameters() followed by critic->parameters(): the historical
  /// clip_grad_norm / Adam order, which the sharded reduce reproduces.
  std::vector<nn::Parameter*> params;
  nn::Tape* tape = nullptr;  ///< scratch tape for the serial path
  nn::Adam* optim = nullptr;
  /// Optional pre-packed inputs (built once per update). When set, minibatch
  /// packing reads rows from here instead of the samples.
  const PackedSampleBlock* block = nullptr;
  /// Workspace for the serial fused (tape-free) path; required when
  /// config->update_path == UpdatePath::kFused and num_update_shards == 1.
  nn::BackwardWorkspace* backward = nullptr;
};

/// One minibatch of the historical batched PPO update: a single batched
/// forward/backward over samples[order[begin..end)], clip_grad_norm over
/// ctx.params, one Adam step. This is the pre-refactor trainer loop body
/// moved verbatim; the num_update_shards = 1 golden regression pins it.
/// Returns the minibatch loss.
double serial_minibatch_update(UpdateContext& ctx,
                               const std::vector<const rl::Sample*>& samples,
                               const std::vector<std::size_t>& order,
                               std::size_t begin, std::size_t end);

/// Forward/backward for ONE sample as its 1/`batch` share of a minibatch.
/// Parameter gradients accumulate into the tape's installed grad-redirect
/// targets (the caller's per-sample slot tensors). Returns the scaled
/// per-sample loss, so the sum over a minibatch's samples equals that
/// minibatch's loss up to summation order.
double sample_loss_and_grads(nn::Tape& tape, CoordinatedActor& actor,
                             CentralizedCritic& critic, const rl::Sample& sample,
                             std::size_t batch, const rl::PpoConfig& ppo);

/// One batched forward/backward over the contiguous minibatch slice
/// samples[order[begin..end)], scaled as its (end-begin)/`batch` share of
/// the minibatch (rl::ppo_shard_loss with the GLOBAL batch divisor).
/// Parameter gradients accumulate into the tape's installed grad-redirect
/// targets (the caller's per-shard slot tensors). Returns the scaled shard
/// loss, so the sum over a minibatch's shards equals that minibatch's loss
/// up to summation order.
/// `block`, when non-null, supplies the minibatch rows (value-identical to
/// gathering from `samples`).
double shard_loss_and_grads(nn::Tape& tape, CoordinatedActor& actor,
                            CentralizedCritic& critic,
                            const std::vector<const rl::Sample*>& samples,
                            const std::vector<std::size_t>& order,
                            std::size_t begin, std::size_t end,
                            std::size_t batch, const PairUpConfig& config,
                            const PackedSampleBlock* block = nullptr);

/// Tape-free equivalent of shard_loss_and_grads (rows == 1 also covers
/// sample_loss_and_grads): one fused forward + analytic backward over
/// samples[order[begin..end)] as its (end-begin)/`batch` minibatch share,
/// with NO tape — activations live in `ws` slots (zero steady-state
/// allocations) and parameter gradients accumulate directly into
/// `actor_sinks` / `critic_sinks` (one tensor per parameter in each
/// module's parameters() order; matmul weight sinks must be zeroed by the
/// caller). Loss and gradients are bit-identical to the tape functions
/// above — every kernel replays the tape's FP accumulation order (see
/// nn/backward.hpp; pinned by tests/test_backward_path.cpp).
double fused_shard_loss_and_grads(nn::BackwardWorkspace& ws,
                                  CoordinatedActor& actor,
                                  CentralizedCritic& critic,
                                  const std::vector<const rl::Sample*>& samples,
                                  const std::vector<std::size_t>& order,
                                  std::size_t begin, std::size_t end,
                                  std::size_t batch, const PairUpConfig& config,
                                  const PackedSampleBlock* block,
                                  nn::Tensor* const* actor_sinks,
                                  nn::Tensor* const* critic_sinks);

/// Shards each minibatch's forward/backward work across a reusable thread
/// pool (contiguous sample ranges, one scratch tape per shard), then
/// reduces the gradient slots in a fixed order on the calling thread before
/// the single clip_grad_norm + Adam step. Two layouts (see file comment):
/// kPerSampleShards — one single-row tape per sample, per-sample slots
/// folded in global sample order, bit-identical to the serial update;
/// kBatchedShards — one batched tape per shard, per-shard slots folded in
/// shard order, tolerance-bounded against the serial update.
class ParallelUpdateEngine {
 public:
  /// `num_shards` >= 2 (use serial_minibatch_update directly for 1).
  /// `mode` must not be UpdateMode::kSerial.
  explicit ParallelUpdateEngine(std::size_t num_shards,
                                UpdateMode mode = UpdateMode::kPerSampleShards);

  std::size_t num_shards() const { return num_shards_; }
  UpdateMode mode() const { return mode_; }

  /// Sharded equivalent of serial_minibatch_update (ctx.tape is unused).
  /// Returns the sum of the per-sample scaled losses — the same quantity as
  /// the serial minibatch loss up to FP summation order.
  double run_minibatch(UpdateContext& ctx,
                       const std::vector<const rl::Sample*>& samples,
                       const std::vector<std::size_t>& order,
                       std::size_t begin, std::size_t end);

  /// Total allocation events across the per-shard backward workspaces
  /// (fused path only; 0 when running the tape path). Stops increasing
  /// once minibatch shapes stabilize — the zero-steady-state-allocation
  /// contract asserted by tests and bench_ppo_update --smoke.
  std::size_t backward_alloc_events() const;

 private:
  void ensure_buffers(const std::vector<nn::Parameter*>& params,
                      std::size_t num_slots);

  std::size_t num_shards_;
  UpdateMode mode_;
  util::ThreadPool pool_;
  std::vector<std::unique_ptr<nn::Tape>> shard_tapes_;
  /// One backward workspace per shard (fused path); created lazily-never —
  /// eagerly in the ctor, like the shard tapes.
  std::vector<std::unique_ptr<nn::BackwardWorkspace>> shard_ws_;
  /// slot_grads_[i][k]: gradient slot i's tensor for params[k]. One slot per
  /// sample (kPerSampleShards) or per shard (kBatchedShards).
  std::vector<std::vector<nn::Tensor>> slot_grads_;
  std::vector<double> slot_losses_;
  /// Per-parameter reduction target for the ordered fold.
  std::vector<nn::Tensor> reduced_grads_;
};

}  // namespace tsc::core
