#include "src/core/trainer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "src/nn/serialize.hpp"
#include "src/util/fs.hpp"
#include "src/util/log.hpp"

namespace tsc::core {

using tsc::nn::Tape;
using tsc::nn::Tensor;
using tsc::nn::Var;

namespace {

// Trainer-state checkpoint (episode counter + RNG stream): magic "TSCT",
// u64 version, u64 episode, the Rng::State words. Weights/optimizer state
// live in their own files (nn/serialize.hpp).
constexpr char kTrainerMagic[4] = {'T', 'S', 'C', 'T'};
constexpr std::uint64_t kTrainerVersion = 1;

// Written atomically (util::atomic_write_file: temp + rename), so a worker
// killed mid-save leaves the previous trainer-state file intact — the fleet
// orchestrator resumes crashed jobs from exactly that file.
void save_trainer_state(const std::string& path, std::size_t episode,
                        const Rng::State& rng) {
  util::atomic_write_file(path, [&](std::ostream& out) {
    auto write_u64 = [&out](std::uint64_t v) {
      out.write(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    out.write(kTrainerMagic, sizeof(kTrainerMagic));
    write_u64(kTrainerVersion);
    write_u64(episode);
    for (std::uint64_t word : rng.s) write_u64(word);
    out.write(reinterpret_cast<const char*>(&rng.cached_normal),
              sizeof(rng.cached_normal));
    write_u64(rng.has_cached_normal ? 1 : 0);
    if (!out)
      throw std::runtime_error("save_checkpoint: write failed for " + path);
  });
}

void load_trainer_state(const std::string& path, std::size_t& episode,
                        Rng::State& rng) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);
  auto read_u64 = [&in]() {
    std::uint64_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::string(magic, 4) != std::string(kTrainerMagic, 4))
    throw std::runtime_error("load_checkpoint: bad magic in " + path);
  if (read_u64() != kTrainerVersion)
    throw std::runtime_error("load_checkpoint: unsupported version in " + path);
  episode = static_cast<std::size_t>(read_u64());
  for (std::uint64_t& word : rng.s) word = read_u64();
  in.read(reinterpret_cast<char*>(&rng.cached_normal), sizeof(rng.cached_normal));
  rng.has_cached_normal = read_u64() != 0;
  if (!in) throw std::runtime_error("load_checkpoint: truncated file " + path);
}

}  // namespace

using detail::pack_rows;

PairUpLightTrainer::PairUpLightTrainer(env::TscEnv* env, PairUpConfig config)
    : env_(env), config_(config), rng_(config.seed), episode_seed_(config.seed * 7919) {
  const std::size_t n = env_->num_agents();
  for (std::size_t i = 0; i < n; ++i) {
    hop1_slots_ = std::max(hop1_slots_, env_->agent(i).hop1.size());
    hop2_slots_ = std::max(hop2_slots_, env_->agent(i).hop2.size());
  }
  if (config_.critic_hops < 1) hop1_slots_ = 0;
  if (config_.critic_hops < 2) hop2_slots_ = 0;
  critic_input_dim_ = env_->obs_dim() +
                      (hop1_slots_ + hop2_slots_) * env::TscEnv::kNeighborFeatDim;

  const std::size_t num_models = config_.parameter_sharing ? 1 : n;
  const std::size_t max_phases = env_->config().max_phases;
  for (std::size_t m = 0; m < num_models; ++m) {
    actors_.push_back(std::make_unique<CoordinatedActor>(
        env_->obs_dim(), config_.msg_dim, config_.hidden, max_phases, rng_));
    critics_.push_back(
        std::make_unique<CentralizedCritic>(critic_input_dim_, config_.hidden, rng_));
    auto params = actors_.back()->parameters();
    auto critic_params = critics_.back()->parameters();
    params.insert(params.end(), critic_params.begin(), critic_params.end());
    nn::Adam::Config adam_config;
    adam_config.lr = config_.ppo.lr;
    optims_.push_back(std::make_unique<nn::Adam>(std::move(params), adam_config));
  }

  if (config_.fleet_batched) {
    if (!config_.inference_path)
      throw std::invalid_argument(
          "PairUpConfig: fleet_batched requires inference_path (the fleet "
          "engine has no tape fallback)");
    // The fleet engine steps every replica on the calling thread against
    // the LIVE models, so it needs neither frozen copies nor weight sync;
    // replicas beyond the trainer's own environment are cloned with the
    // same seeds the threaded collector's workers would get.
    for (std::size_t w = 0; config_.num_envs > 1 && w < config_.num_envs; ++w)
      fleet_envs_.push_back(env_->clone(config_.seed + w));
    std::vector<CoordinatedActor*> fleet_actors;
    std::vector<CentralizedCritic*> fleet_critics;
    for (auto& a : actors_) fleet_actors.push_back(a.get());
    for (auto& c : critics_) fleet_critics.push_back(c.get());
    fleet_ = std::make_unique<FleetRolloutEngine>(
        &config_, std::move(fleet_actors), std::move(fleet_critics),
        hop1_slots_, hop2_slots_, critic_input_dim_);
  }

  if (config_.num_envs > 1 && !config_.fleet_batched) {
    // Worker networks exist only as copy targets: their weights are synced
    // from the live models before every collection round, so the init
    // stream here is a throwaway and must NOT touch rng_ (num_envs must
    // not perturb the serial training stream).
    Rng init_rng(config_.seed ^ 0x9E3779B97F4A7C15ULL);
    std::vector<std::unique_ptr<RolloutWorker>> workers;
    workers.reserve(config_.num_envs);
    for (std::size_t w = 0; w < config_.num_envs; ++w) {
      auto worker = std::make_unique<RolloutWorker>();
      worker->env = env_->clone(config_.seed + w);
      for (std::size_t m = 0; m < num_models; ++m) {
        worker->actors.push_back(std::make_unique<CoordinatedActor>(
            env_->obs_dim(), config_.msg_dim, config_.hidden, max_phases, init_rng));
        worker->critics.push_back(std::make_unique<CentralizedCritic>(
            critic_input_dim_, config_.hidden, init_rng));
      }
      workers.push_back(std::move(worker));
    }
    collector_ = std::make_unique<rl::ParallelRolloutCollector<RolloutWorker>>(
        std::move(workers));
  }

  if (config_.num_update_shards > 1 && config_.update_mode != UpdateMode::kSerial) {
    // Oversubscription guard: shards beyond the hardware thread count only
    // add contention (measured 0.23-0.27x serial throughput for per-sample
    // layouts). kPerSampleShards is bit-identical for EVERY shard count, so
    // clamping it is result-invariant; kBatchedShards results depend on the
    // shard count, so it gets a warning but keeps the requested value.
    std::size_t effective_shards = config_.num_update_shards;
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    if (effective_shards > hw) {
      if (config_.update_mode == UpdateMode::kPerSampleShards) {
        const std::size_t clamped = std::max<std::size_t>(2, hw);
        log_warn("num_update_shards=", config_.num_update_shards,
                 " exceeds hardware_concurrency=", hw, "; clamping to ",
                 clamped, " (per-sample gradients are bit-identical for "
                 "every shard count, so results are unchanged)");
        effective_shards = clamped;
      } else {
        log_warn("num_update_shards=", config_.num_update_shards,
                 " exceeds hardware_concurrency=", hw, "; batched-shard "
                 "results depend on the shard count, so it is not clamped — "
                 "expect oversubscribed, slower updates");
      }
    }
    updater_ = std::make_unique<ParallelUpdateEngine>(effective_shards,
                                                      config_.update_mode);
  }
  if (config_.num_update_shards > 1 &&
      config_.update_mode == UpdateMode::kPerSampleShards &&
      std::thread::hardware_concurrency() == 1) {
    log_warn("update_mode=kPerSampleShards with a single hardware thread: "
             "the per-sample layout pays rows=1 matmuls without any thread "
             "overlap; prefer kBatchedShards (the default) or num_update_shards=1");
  }
}

RolloutContext PairUpLightTrainer::serial_context() {
  RolloutContext ctx;
  ctx.env = env_;
  ctx.config = &config_;
  for (auto& a : actors_) ctx.actors.push_back(a.get());
  for (auto& c : critics_) ctx.critics.push_back(c.get());
  ctx.hop1_slots = hop1_slots_;
  ctx.hop2_slots = hop2_slots_;
  ctx.critic_input_dim = critic_input_dim_;
  ctx.rng = &rng_;
  ctx.epsilon = current_epsilon();
  ctx.tape = &scratch_tape_;
  ctx.workspace = &workspace_;
  ctx.last_messages = &last_messages_;
  ctx.last_partners = &last_partners_;
  return ctx;
}

void PairUpLightTrainer::reset_states(std::vector<AgentState>& states) {
  RolloutContext ctx = serial_context();
  reset_agent_states(ctx, states);
}

StepDecision PairUpLightTrainer::decide(std::vector<AgentState>& states,
                                        bool explore, rl::RolloutBuffer* buffer,
                                        Rng* sample_rng) {
  RolloutContext ctx = serial_context();
  return decide_step(ctx, states, explore, buffer, sample_rng);
}

double PairUpLightTrainer::current_epsilon() const {
  return rl::epsilon_at(episode_, config_.ppo);
}

void PairUpLightTrainer::save_checkpoint(const std::string& prefix) {
  for (std::size_t m = 0; m < actors_.size(); ++m) {
    nn::save_weights(*actors_[m], prefix + "_actor" + std::to_string(m) + ".bin");
    nn::save_weights(*critics_[m], prefix + "_critic" + std::to_string(m) + ".bin");
    nn::save_optimizer_state(*optims_[m],
                             prefix + "_optim" + std::to_string(m) + ".bin");
  }
  save_trainer_state(prefix + "_trainer.bin", episode_, rng_.state());
}

void PairUpLightTrainer::load_checkpoint(const std::string& prefix) {
  for (std::size_t m = 0; m < actors_.size(); ++m) {
    nn::load_weights(*actors_[m], prefix + "_actor" + std::to_string(m) + ".bin");
    nn::load_weights(*critics_[m], prefix + "_critic" + std::to_string(m) + ".bin");
    nn::load_optimizer_state(*optims_[m],
                             prefix + "_optim" + std::to_string(m) + ".bin");
  }
  Rng::State rng_state;
  load_trainer_state(prefix + "_trainer.bin", episode_, rng_state);
  rng_.set_state(rng_state);
}

PairUpLightTrainer::CollectResult PairUpLightTrainer::collect_rollouts(
    std::uint64_t base_seed) {
  CollectResult result;

  if (config_.fleet_batched) return collect_rollouts_fleet(base_seed);

  if (config_.num_envs <= 1) {
    // Serial path: the engine on the trainer's own env/networks/rng.
    // Identical RNG consumption order to the historical single-env trainer.
    // (base_seed = seed + round, which is also what invariant_seeding
    // prescribes for one worker, so the flag is a no-op here.)
    last_episode_seeds_.assign(1, base_seed);
    result.buffer = rl::RolloutBuffer(env_->num_agents());
    RolloutContext ctx = serial_context();
    result.stats = run_rollout_episode(ctx, base_seed, /*train_mode=*/true,
                                       &result.buffer);
    result.env_steps = env_->steps_taken();
    return result;
  }

  // Parallel path: freeze the current policy into every worker, then run
  // one full episode per worker on the pool. Weight sync happens on this
  // thread, so workers only ever read their own copies.
  const std::size_t k = collector_->num_workers();
  for (std::size_t w = 0; w < k; ++w) {
    RolloutWorker& worker = collector_->worker(w);
    for (std::size_t m = 0; m < actors_.size(); ++m) {
      worker.actors[m]->copy_weights_from(*actors_[m]);
      worker.critics[m]->copy_weights_from(*critics_[m]);
    }
  }

  struct WorkerResult {
    rl::RolloutBuffer buffer{0};
    env::EpisodeStats stats;
    std::size_t env_steps = 0;
  };
  const double epsilon = current_epsilon();
  const auto run_worker =
      [this, epsilon](RolloutWorker& worker, std::uint64_t env_seed, Rng rng) {
        RolloutContext ctx;
        ctx.env = worker.env.get();
        ctx.config = &config_;
        for (auto& a : worker.actors) ctx.actors.push_back(a.get());
        for (auto& c : worker.critics) ctx.critics.push_back(c.get());
        ctx.hop1_slots = hop1_slots_;
        ctx.hop2_slots = hop2_slots_;
        ctx.critic_input_dim = critic_input_dim_;
        ctx.rng = &rng;
        ctx.epsilon = epsilon;
        ctx.tape = &worker.tape;
        ctx.workspace = &worker.workspace;
        ctx.last_messages = &worker.last_messages;
        ctx.last_partners = &worker.last_partners;

        WorkerResult r;
        r.buffer = rl::RolloutBuffer(worker.env->num_agents());
        r.stats = run_rollout_episode(ctx, env_seed, /*train_mode=*/true,
                                      &r.buffer);
        r.env_steps = worker.env->steps_taken();
        return r;
      };

  std::vector<WorkerResult> results;
  if (config_.invariant_seeding) {
    // Episode seeds from the GLOBAL episode index: round r, slot w runs
    // episode r*k + w with env seed episode_seed_ + r*k + w — the same
    // sequence any other num_envs (including 1) walks through.
    last_episode_seeds_.resize(k);
    for (std::size_t w = 0; w < k; ++w)
      last_episode_seeds_[w] = episode_seed_ + episode_ * k + w;
    results = collector_->collect_seeded(last_episode_seeds_, run_worker);
  } else {
    results = collector_->collect(base_seed, run_worker, &last_episode_seeds_);
  }

  std::vector<rl::RolloutBuffer> parts;
  parts.reserve(results.size());
  env::EpisodeStats& stats = result.stats;
  for (WorkerResult& r : results) {
    parts.push_back(std::move(r.buffer));
    stats.avg_wait += r.stats.avg_wait;
    stats.travel_time += r.stats.travel_time;
    stats.delay += r.stats.delay;
    stats.mean_reward += r.stats.mean_reward;
    stats.vehicles_finished += r.stats.vehicles_finished;
    stats.vehicles_spawned += r.stats.vehicles_spawned;
    result.env_steps += r.env_steps;
  }
  const double inv_k = 1.0 / static_cast<double>(results.size());
  stats.avg_wait *= inv_k;
  stats.travel_time *= inv_k;
  stats.delay *= inv_k;
  stats.mean_reward *= inv_k;
  result.buffer = rl::merge_rollouts(std::move(parts));

  // Protocol-inspection views follow worker 0's episode.
  last_messages_ = collector_->worker(0).last_messages;
  last_partners_ = collector_->worker(0).last_partners;
  return result;
}

PairUpLightTrainer::CollectResult PairUpLightTrainer::collect_rollouts_fleet(
    std::uint64_t base_seed) {
  CollectResult result;
  const double epsilon = current_epsilon();

  if (config_.num_envs <= 1) {
    // Fleet of one: the trainer's own environment and exploration stream,
    // so trajectories AND the post-episode state of rng_ are bit-identical
    // to the serial per-agent path.
    last_episode_seeds_.assign(1, base_seed);
    result.buffer = rl::RolloutBuffer(env_->num_agents());
    std::vector<FleetSlot> slots(1);
    slots[0] = FleetSlot{env_, base_seed, &rng_, &result.buffer};
    result.stats = fleet_->run_episodes(slots, /*train_mode=*/true, epsilon)[0];
    result.env_steps = env_->steps_taken();
    last_messages_ = fleet_->last_messages(0);
    last_partners_ = fleet_->last_partners(0);
    return result;
  }

  // Same seed/stream derivations as the threaded collector, so fleet and
  // threaded collection see identical episodes for the same round.
  const std::size_t k = config_.num_envs;
  std::vector<Rng> rngs;
  if (config_.invariant_seeding) {
    last_episode_seeds_.resize(k);
    for (std::size_t w = 0; w < k; ++w)
      last_episode_seeds_[w] = episode_seed_ + episode_ * k + w;
    rl::derive_seeded_streams(last_episode_seeds_, rngs);
  } else {
    rl::derive_round_streams(base_seed, k, last_episode_seeds_, rngs);
  }

  std::vector<rl::RolloutBuffer> parts;
  parts.reserve(k);
  std::vector<FleetSlot> slots(k);
  for (std::size_t w = 0; w < k; ++w)
    parts.push_back(rl::RolloutBuffer(env_->num_agents()));
  for (std::size_t w = 0; w < k; ++w)
    slots[w] = FleetSlot{fleet_envs_[w].get(), last_episode_seeds_[w], &rngs[w],
                         &parts[w]};
  const std::vector<env::EpisodeStats> episode_stats =
      fleet_->run_episodes(slots, /*train_mode=*/true, epsilon);

  // Fold in slot order, exactly like the threaded path's worker-order fold.
  env::EpisodeStats& stats = result.stats;
  for (std::size_t w = 0; w < k; ++w) {
    const env::EpisodeStats& s = episode_stats[w];
    stats.avg_wait += s.avg_wait;
    stats.travel_time += s.travel_time;
    stats.delay += s.delay;
    stats.mean_reward += s.mean_reward;
    stats.vehicles_finished += s.vehicles_finished;
    stats.vehicles_spawned += s.vehicles_spawned;
    result.env_steps += fleet_envs_[w]->steps_taken();
  }
  const double inv_k = 1.0 / static_cast<double>(k);
  stats.avg_wait *= inv_k;
  stats.travel_time *= inv_k;
  stats.delay *= inv_k;
  stats.mean_reward *= inv_k;
  result.buffer = rl::merge_rollouts(std::move(parts));

  last_messages_ = fleet_->last_messages(0);
  last_partners_ = fleet_->last_partners(0);
  return result;
}

env::EpisodeStats PairUpLightTrainer::train_episode() {
  CollectResult collected = collect_rollouts(episode_seed_ + episode_);
  update(collected.buffer);
  ++episode_;
  return collected.stats;
}

env::EpisodeStats PairUpLightTrainer::eval_episode(std::uint64_t seed) {
  RolloutContext ctx = serial_context();
  return run_rollout_episode(ctx, seed, /*train_mode=*/false, nullptr);
}

void PairUpLightTrainer::update(rl::RolloutBuffer& buffer) {
  auto all = buffer.flatten(config_.ppo.normalize_advantages);
  if (config_.parameter_sharing) {
    update_model(0, all);
  } else {
    for (std::size_t i = 0; i < env_->num_agents(); ++i) {
      std::vector<const rl::Sample*> mine;
      for (const rl::Sample& s : buffer.agent_samples(i)) mine.push_back(&s);
      update_model(i, mine);
    }
  }
}

void PairUpLightTrainer::update_model(std::size_t model,
                                      const std::vector<const rl::Sample*>& samples) {
  if (samples.empty()) return;
  UpdateContext ctx;
  ctx.config = &config_;
  ctx.actor = actors_[model].get();
  ctx.critic = critics_[model].get();
  ctx.params = ctx.actor->parameters();
  auto critic_params = ctx.critic->parameters();
  ctx.params.insert(ctx.params.end(), critic_params.begin(), critic_params.end());
  // One tape for the whole update: reset() keeps node storage reserved, so
  // only the first minibatch of a training run pays the allocation.
  ctx.tape = &scratch_tape_;
  // One backward workspace likewise (fused serial path; slots recycled
  // across minibatches, epochs, and updates).
  ctx.backward = &update_workspace_;
  ctx.optim = optims_[model].get();
  // Pack the samples' rows once; every epoch's minibatches gather from this
  // pinned block instead of re-walking the per-sample vectors.
  sample_block_.build(samples, ctx.actor->input_dim(), ctx.critic->input_dim(),
                      config_.hidden);
  ctx.block = &sample_block_;

  std::vector<std::size_t> order(samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  const std::size_t minibatch = std::max<std::size_t>(1, config_.ppo.minibatch);
  for (std::size_t epoch = 0; epoch < config_.ppo.epochs; ++epoch) {
    // Fisher-Yates shuffle with the trainer's deterministic stream.
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng_.uniform_int(i)]);

    for (std::size_t start = 0; start < order.size(); start += minibatch) {
      const std::size_t end = std::min(order.size(), start + minibatch);
      if (updater_) {
        updater_->run_minibatch(ctx, samples, order, start, end);
      } else {
        serial_minibatch_update(ctx, samples, order, start, end);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Greedy inference controller.

class PairUpController : public env::Controller {
 public:
  explicit PairUpController(PairUpLightTrainer* trainer) : trainer_(trainer) {}

  void begin_episode(const env::TscEnv& env) override {
    trainer_->reset_states(states_);
    rng_ = Rng(env.episode_seed() ^ env::kEvalSampleSalt);
  }

  std::vector<std::size_t> act(const env::TscEnv& env) override {
    (void)env;  // the trainer references the same environment
    Rng* sample_rng = trainer_->config().greedy_eval ? nullptr : &rng_;
    return trainer_->decide(states_, /*explore=*/false, nullptr, sample_rng)
        .actions;
  }

  std::string name() const override {
    return trainer_->config().comm_enabled ? "PairUpLight" : "PairUpLight-NoComm";
  }

 private:
  PairUpLightTrainer* trainer_;
  std::vector<AgentState> states_;
  Rng rng_{0};
};

std::unique_ptr<env::Controller> PairUpLightTrainer::make_controller() {
  return std::make_unique<PairUpController>(this);
}

}  // namespace tsc::core
