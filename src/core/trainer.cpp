#include "src/core/trainer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/nn/serialize.hpp"

namespace tsc::core {

using tsc::nn::Tape;
using tsc::nn::Tensor;
using tsc::nn::Var;

namespace {

/// Packs per-agent vectors into a [rows.size(), width] tensor.
Tensor pack_rows(const std::vector<std::vector<double>>& rows, std::size_t width) {
  Tensor t = Tensor::zeros(rows.size(), width);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == width);
    for (std::size_t c = 0; c < width; ++c) t.at(r, c) = rows[r][c];
  }
  return t;
}

std::vector<double> extract_row(const Tensor& t, std::size_t r) {
  std::vector<double> out(t.cols());
  for (std::size_t c = 0; c < t.cols(); ++c) out[c] = t.at(r, c);
  return out;
}

}  // namespace

PairUpLightTrainer::PairUpLightTrainer(env::TscEnv* env, PairUpConfig config)
    : env_(env), config_(config), rng_(config.seed), episode_seed_(config.seed * 7919) {
  const std::size_t n = env_->num_agents();
  for (std::size_t i = 0; i < n; ++i) {
    hop1_slots_ = std::max(hop1_slots_, env_->agent(i).hop1.size());
    hop2_slots_ = std::max(hop2_slots_, env_->agent(i).hop2.size());
  }
  if (config_.critic_hops < 1) hop1_slots_ = 0;
  if (config_.critic_hops < 2) hop2_slots_ = 0;
  critic_input_dim_ = env_->obs_dim() +
                      (hop1_slots_ + hop2_slots_) * env::TscEnv::kNeighborFeatDim;

  const std::size_t num_models = config_.parameter_sharing ? 1 : n;
  const std::size_t max_phases = env_->config().max_phases;
  for (std::size_t m = 0; m < num_models; ++m) {
    actors_.push_back(std::make_unique<CoordinatedActor>(
        env_->obs_dim(), config_.msg_dim, config_.hidden, max_phases, rng_));
    critics_.push_back(
        std::make_unique<CentralizedCritic>(critic_input_dim_, config_.hidden, rng_));
    auto params = actors_.back()->parameters();
    auto critic_params = critics_.back()->parameters();
    params.insert(params.end(), critic_params.begin(), critic_params.end());
    nn::Adam::Config adam_config;
    adam_config.lr = config_.ppo.lr;
    optims_.push_back(std::make_unique<nn::Adam>(std::move(params), adam_config));
  }
}

void PairUpLightTrainer::reset_states(std::vector<AgentState>& states) const {
  states.assign(env_->num_agents(), AgentState{});
  for (AgentState& s : states) {
    s.h_a.assign(config_.hidden, 0.0);
    s.c_a.assign(config_.hidden, 0.0);
    s.h_v.assign(config_.hidden, 0.0);
    s.c_v.assign(config_.hidden, 0.0);
    s.msg_out.assign(config_.msg_dim, 0.0);
  }
}

std::size_t PairUpLightTrainer::pick_partner(std::size_t agent) {
  const auto& upstream = env_->agent(agent).upstream;
  switch (config_.pairing) {
    case PairingStrategy::kMostCongestedUpstream:
      return env_->most_congested_upstream(agent);
    case PairingStrategy::kSelf:
      return agent;
    case PairingStrategy::kRandomNeighbor:
      if (upstream.empty()) return agent;
      return upstream[rng_.uniform_int(upstream.size())];
    case PairingStrategy::kFixedUpstream:
      return upstream.empty() ? agent : upstream.front();
  }
  return agent;
}

std::vector<double> PairUpLightTrainer::actor_input(
    std::size_t agent, std::size_t partner,
    const std::vector<AgentState>& states) const {
  std::vector<double> input = env_->local_obs(agent);
  if (config_.comm_enabled) {
    const auto& msg = states[partner].msg_out;
    input.insert(input.end(), msg.begin(), msg.end());
  } else {
    input.insert(input.end(), config_.msg_dim, 0.0);
  }
  return input;
}

std::vector<double> PairUpLightTrainer::critic_input(std::size_t agent) const {
  std::vector<double> input = env_->local_obs(agent);
  const env::AgentSpec& spec = env_->agent(agent);
  const std::size_t feat = env::TscEnv::kNeighborFeatDim;
  for (std::size_t slot = 0; slot < hop1_slots_; ++slot) {
    if (slot < spec.hop1.size()) {
      const auto f = env_->neighbor_feat(spec.hop1[slot]);
      input.insert(input.end(), f.begin(), f.end());
    } else {
      input.insert(input.end(), feat, 0.0);  // padding (paper section V-B)
    }
  }
  for (std::size_t slot = 0; slot < hop2_slots_; ++slot) {
    if (slot < spec.hop2.size()) {
      const auto f = env_->neighbor_feat(spec.hop2[slot]);
      input.insert(input.end(), f.begin(), f.end());
    } else {
      input.insert(input.end(), feat, 0.0);
    }
  }
  assert(input.size() == critic_input_dim_);
  return input;
}

double PairUpLightTrainer::current_epsilon() const {
  return rl::epsilon_at(episode_, config_.ppo);
}

PairUpLightTrainer::StepDecision PairUpLightTrainer::decide(
    std::vector<AgentState>& states, bool explore, rl::RolloutBuffer* buffer,
    Rng* sample_rng) {
  const std::size_t n = env_->num_agents();
  StepDecision decision;
  decision.actions.resize(n);
  decision.log_probs.resize(n);
  decision.values.resize(n);

  // Gather inputs before any state mutation (messages are the previous
  // step's outputs for everyone, matching Algorithm 1's synchronous sweep).
  std::vector<std::vector<double>> a_inputs(n), v_inputs(n);
  last_partners_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    last_partners_[i] = pick_partner(i);
    a_inputs[i] = actor_input(i, last_partners_[i], states);
    v_inputs[i] = critic_input(i);
  }

  // Group agents by model so shared mode runs one batched forward.
  std::vector<std::vector<std::size_t>> groups(actors_.size());
  for (std::size_t i = 0; i < n; ++i) groups[model_of(i)].push_back(i);

  for (std::size_t m = 0; m < groups.size(); ++m) {
    const auto& members = groups[m];
    if (members.empty()) continue;
    const std::size_t batch = members.size();

    Tape tape;
    std::vector<std::vector<double>> in_rows(batch), ha_rows(batch), ca_rows(batch),
        vi_rows(batch), hv_rows(batch), cv_rows(batch);
    std::vector<std::size_t> phase_counts(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      const std::size_t i = members[b];
      in_rows[b] = a_inputs[i];
      ha_rows[b] = states[i].h_a;
      ca_rows[b] = states[i].c_a;
      vi_rows[b] = v_inputs[i];
      hv_rows[b] = states[i].h_v;
      cv_rows[b] = states[i].c_v;
      phase_counts[b] = env_->agent(i).num_phases;
    }
    CoordinatedActor& actor = *actors_[m];
    CentralizedCritic& critic = *critics_[m];

    Var input = tape.constant(pack_rows(in_rows, actor.input_dim()));
    Var h_a = tape.constant(pack_rows(ha_rows, config_.hidden));
    Var c_a = tape.constant(pack_rows(ca_rows, config_.hidden));
    auto actor_out = actor.forward(tape, input, h_a, c_a, phase_counts);
    Var probs = tape.softmax_rows(actor_out.logits);
    Var logp = tape.log_softmax_rows(actor_out.logits);

    Var v_input = tape.constant(pack_rows(vi_rows, critic_input_dim_));
    Var h_v = tape.constant(pack_rows(hv_rows, config_.hidden));
    Var c_v = tape.constant(pack_rows(cv_rows, config_.hidden));
    auto critic_out = critic.forward(tape, v_input, h_v, c_v);

    const Tensor& probs_t = tape.value(probs);
    const Tensor& logp_t = tape.value(logp);
    const Tensor& msg_t = tape.value(actor_out.message);
    const Tensor& ha_t = tape.value(actor_out.state.h);
    const Tensor& ca_t = tape.value(actor_out.state.c);
    const Tensor& hv_t = tape.value(critic_out.state.h);
    const Tensor& cv_t = tape.value(critic_out.state.c);
    const Tensor& val_t = tape.value(critic_out.value);

    for (std::size_t b = 0; b < batch; ++b) {
      const std::size_t i = members[b];
      const std::size_t num_phases = phase_counts[b];

      // Action selection.
      std::size_t action;
      if (!explore) {
        if (sample_rng != nullptr) {
          // Stochastic evaluation: draw from the learned policy with the
          // caller's deterministic stream.
          std::vector<double> w(num_phases);
          for (std::size_t p = 0; p < num_phases; ++p) w[p] = probs_t.at(b, p);
          action = sample_rng->categorical(w);
        } else {
          action = 0;
          for (std::size_t p = 1; p < num_phases; ++p)
            if (probs_t.at(b, p) > probs_t.at(b, action)) action = p;
        }
      } else if (config_.ppo.sample_actions) {
        std::vector<double> w(num_phases);
        for (std::size_t p = 0; p < num_phases; ++p) w[p] = probs_t.at(b, p);
        action = rng_.categorical(w);
      } else {
        // Paper Algorithm 1: epsilon-greedy over the policy's argmax.
        if (rng_.bernoulli(current_epsilon())) {
          action = rng_.uniform_int(num_phases);
        } else {
          action = 0;
          for (std::size_t p = 1; p < num_phases; ++p)
            if (probs_t.at(b, p) > probs_t.at(b, action)) action = p;
        }
      }

      decision.actions[i] = action;
      decision.log_probs[i] = logp_t.at(b, action);
      decision.values[i] = val_t.at(b, 0);

      if (buffer != nullptr) {
        rl::Sample sample;
        sample.obs = a_inputs[i];
        sample.critic_obs = v_inputs[i];
        sample.h_actor = states[i].h_a;
        sample.c_actor = states[i].c_a;
        sample.h_critic = states[i].h_v;
        sample.c_critic = states[i].c_v;
        sample.action = action;
        sample.phase_count = num_phases;
        sample.log_prob = decision.log_probs[i];
        sample.value = decision.values[i];
        buffer->add(i, std::move(sample));
      }

      // Advance recurrent state and regularize the outgoing message:
      // m_hat = Logistic(N(m, sigma)); noiseless at evaluation time.
      states[i].h_a = extract_row(ha_t, b);
      states[i].c_a = extract_row(ca_t, b);
      states[i].h_v = extract_row(hv_t, b);
      states[i].c_v = extract_row(cv_t, b);
      for (std::size_t k = 0; k < config_.msg_dim; ++k) {
        const double raw = msg_t.at(b, k);
        const double noisy =
            explore ? rng_.normal(raw, config_.msg_sigma) : raw;
        states[i].msg_out[k] = 1.0 / (1.0 + std::exp(-noisy));
      }
    }
  }
  last_messages_.resize(n);
  for (std::size_t i = 0; i < n; ++i) last_messages_[i] = states[i].msg_out;
  return decision;
}

void PairUpLightTrainer::save_checkpoint(const std::string& prefix) {
  for (std::size_t m = 0; m < actors_.size(); ++m) {
    nn::save_weights(*actors_[m], prefix + "_actor" + std::to_string(m) + ".bin");
    nn::save_weights(*critics_[m], prefix + "_critic" + std::to_string(m) + ".bin");
  }
}

void PairUpLightTrainer::load_checkpoint(const std::string& prefix) {
  for (std::size_t m = 0; m < actors_.size(); ++m) {
    nn::load_weights(*actors_[m], prefix + "_actor" + std::to_string(m) + ".bin");
    nn::load_weights(*critics_[m], prefix + "_critic" + std::to_string(m) + ".bin");
  }
}

env::EpisodeStats PairUpLightTrainer::run(bool train_mode, std::uint64_t seed) {
  env_->reset(seed);
  std::vector<AgentState> states;
  reset_states(states);
  rl::RolloutBuffer buffer(env_->num_agents());
  rl::RolloutBuffer* buffer_ptr = train_mode ? &buffer : nullptr;

  Rng eval_rng(seed ^ env::kEvalSampleSalt);
  Rng* sample_rng =
      (!train_mode && !config_.greedy_eval) ? &eval_rng : nullptr;

  double reward_sum = 0.0;
  std::size_t reward_count = 0;
  while (!env_->done()) {
    StepDecision decision = decide(states, train_mode, buffer_ptr, sample_rng);
    const auto rewards = env_->step(decision.actions);
    for (std::size_t i = 0; i < rewards.size(); ++i) {
      reward_sum += rewards[i];
      ++reward_count;
    }
    if (buffer_ptr != nullptr) {
      for (std::size_t i = 0; i < rewards.size(); ++i)
        buffer.last(i).reward = rewards[i];
    }
  }

  if (train_mode) {
    // Bootstrap V(s_T) per agent (Algorithm 1 line 24).
    StepDecision boot = decide(states, /*explore=*/false, nullptr);
    for (std::size_t i = 0; i < env_->num_agents(); ++i)
      buffer.finish_agent(i, boot.values[i], config_.ppo.gamma, config_.ppo.lambda);
    update(buffer);
    ++episode_;
  }

  env::EpisodeStats stats;
  stats.avg_wait = env_->episode_avg_wait();
  stats.travel_time = env_->average_travel_time();
  stats.mean_reward =
      reward_count ? reward_sum / static_cast<double>(reward_count) : 0.0;
  stats.vehicles_finished = env_->simulator().vehicles_finished();
  stats.vehicles_spawned = env_->simulator().vehicles_spawned();
  return stats;
}

env::EpisodeStats PairUpLightTrainer::train_episode() {
  return run(/*train_mode=*/true, episode_seed_ + episode_);
}

env::EpisodeStats PairUpLightTrainer::eval_episode(std::uint64_t seed) {
  return run(/*train_mode=*/false, seed);
}

void PairUpLightTrainer::update(rl::RolloutBuffer& buffer) {
  auto all = buffer.flatten(config_.ppo.normalize_advantages);
  if (config_.parameter_sharing) {
    update_model(0, all);
  } else {
    for (std::size_t i = 0; i < env_->num_agents(); ++i) {
      std::vector<const rl::Sample*> mine;
      for (const rl::Sample& s : buffer.agent_samples(i)) mine.push_back(&s);
      update_model(i, mine);
    }
  }
}

void PairUpLightTrainer::update_model(std::size_t model,
                                      const std::vector<const rl::Sample*>& samples) {
  if (samples.empty()) return;
  CoordinatedActor& actor = *actors_[model];
  CentralizedCritic& critic = *critics_[model];
  auto actor_params = actor.parameters();
  auto critic_params = critic.parameters();
  std::vector<nn::Parameter*> all_params = actor_params;
  all_params.insert(all_params.end(), critic_params.begin(), critic_params.end());

  std::vector<std::size_t> order(samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  const std::size_t minibatch = std::max<std::size_t>(1, config_.ppo.minibatch);
  for (std::size_t epoch = 0; epoch < config_.ppo.epochs; ++epoch) {
    // Fisher-Yates shuffle with the trainer's deterministic stream.
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng_.uniform_int(i)]);

    for (std::size_t start = 0; start < order.size(); start += minibatch) {
      const std::size_t end = std::min(order.size(), start + minibatch);
      const std::size_t batch = end - start;

      std::vector<std::vector<double>> in_rows(batch), ha_rows(batch), ca_rows(batch),
          vi_rows(batch), hv_rows(batch), cv_rows(batch);
      std::vector<std::size_t> actions(batch), phase_counts(batch);
      std::vector<double> old_logp(batch), advantages(batch), returns(batch);
      for (std::size_t b = 0; b < batch; ++b) {
        const rl::Sample& s = *samples[order[start + b]];
        in_rows[b] = s.obs;
        ha_rows[b] = s.h_actor;
        ca_rows[b] = s.c_actor;
        vi_rows[b] = s.critic_obs;
        hv_rows[b] = s.h_critic;
        cv_rows[b] = s.c_critic;
        actions[b] = s.action;
        old_logp[b] = s.log_prob;
        advantages[b] = s.advantage;
        returns[b] = s.ret;
        phase_counts[b] = s.phase_count;
      }

      Tape tape;
      Var input = tape.constant(pack_rows(in_rows, actor.input_dim()));
      Var h_a = tape.constant(pack_rows(ha_rows, config_.hidden));
      Var c_a = tape.constant(pack_rows(ca_rows, config_.hidden));
      auto actor_out = actor.forward(tape, input, h_a, c_a, phase_counts);
      Var logp_all = tape.log_softmax_rows(actor_out.logits);
      Var new_logp = tape.gather_cols(logp_all, actions);
      Var entropy = rl::policy_entropy(tape, actor_out.logits);

      Var v_input = tape.constant(pack_rows(vi_rows, critic_input_dim_));
      Var h_v = tape.constant(pack_rows(hv_rows, config_.hidden));
      Var c_v = tape.constant(pack_rows(cv_rows, config_.hidden));
      auto critic_out = critic.forward(tape, v_input, h_v, c_v);

      Var loss = rl::ppo_total_loss(tape, new_logp, entropy, critic_out.value,
                                    old_logp, advantages, returns, config_.ppo);
      actor.zero_grad();
      critic.zero_grad();
      tape.backward(loss);
      nn::clip_grad_norm(all_params, config_.ppo.max_grad_norm);
      optims_[model]->step();
    }
  }
}

// ---------------------------------------------------------------------------
// Greedy inference controller.

class PairUpController : public env::Controller {
 public:
  explicit PairUpController(PairUpLightTrainer* trainer) : trainer_(trainer) {}

  void begin_episode(const env::TscEnv& env) override {
    trainer_->reset_states(states_);
    rng_ = Rng(env.episode_seed() ^ env::kEvalSampleSalt);
  }

  std::vector<std::size_t> act(const env::TscEnv& env) override {
    (void)env;  // the trainer references the same environment
    Rng* sample_rng = trainer_->config().greedy_eval ? nullptr : &rng_;
    return trainer_->decide(states_, /*explore=*/false, nullptr, sample_rng)
        .actions;
  }

  std::string name() const override {
    return trainer_->config().comm_enabled ? "PairUpLight" : "PairUpLight-NoComm";
  }

 private:
  PairUpLightTrainer* trainer_;
  std::vector<PairUpLightTrainer::AgentState> states_;
  Rng rng_{0};
};

std::unique_ptr<env::Controller> PairUpLightTrainer::make_controller() {
  return std::make_unique<PairUpController>(this);
}

}  // namespace tsc::core
