#include "src/core/rollout_engine.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

namespace tsc::core {

using tsc::nn::Tape;
using tsc::nn::Tensor;
using tsc::nn::Var;

namespace detail {

Tensor pack_rows(const std::vector<std::vector<double>>& rows, std::size_t width) {
  Tensor t = Tensor::zeros(rows.size(), width);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == width);
    for (std::size_t c = 0; c < width; ++c) t.at(r, c) = rows[r][c];
  }
  return t;
}

std::vector<double> extract_row(const Tensor& t, std::size_t r) {
  std::vector<double> out(t.cols());
  for (std::size_t c = 0; c < t.cols(); ++c) out[c] = t.at(r, c);
  return out;
}

}  // namespace detail

namespace {

using detail::pack_rows;

std::vector<double> actor_input(const RolloutContext& ctx, std::size_t agent,
                                std::size_t partner,
                                const std::vector<AgentState>& states) {
  std::vector<double> input = ctx.env->local_obs(agent);
  if (ctx.config->comm_enabled) {
    const auto& msg = states[partner].msg_out;
    input.insert(input.end(), msg.begin(), msg.end());
  } else {
    input.insert(input.end(), ctx.config->msg_dim, 0.0);
  }
  return input;
}

std::vector<double> critic_input(const RolloutContext& ctx, std::size_t agent) {
  std::vector<double> input = ctx.env->local_obs(agent);
  const env::AgentSpec& spec = ctx.env->agent(agent);
  const std::size_t feat = env::TscEnv::kNeighborFeatDim;
  for (std::size_t slot = 0; slot < ctx.hop1_slots; ++slot) {
    if (slot < spec.hop1.size()) {
      const auto f = ctx.env->neighbor_feat(spec.hop1[slot]);
      input.insert(input.end(), f.begin(), f.end());
    } else {
      input.insert(input.end(), feat, 0.0);  // padding (paper section V-B)
    }
  }
  for (std::size_t slot = 0; slot < ctx.hop2_slots; ++slot) {
    if (slot < spec.hop2.size()) {
      const auto f = ctx.env->neighbor_feat(spec.hop2[slot]);
      input.insert(input.end(), f.begin(), f.end());
    } else {
      input.insert(input.end(), feat, 0.0);
    }
  }
  assert(input.size() == ctx.critic_input_dim);
  return input;
}

}  // namespace

void reset_agent_states(const RolloutContext& ctx, std::vector<AgentState>& states) {
  states.assign(ctx.env->num_agents(), AgentState{});
  for (AgentState& s : states) {
    s.h_a.assign(ctx.config->hidden, 0.0);
    s.c_a.assign(ctx.config->hidden, 0.0);
    s.h_v.assign(ctx.config->hidden, 0.0);
    s.c_v.assign(ctx.config->hidden, 0.0);
    s.msg_out.assign(ctx.config->msg_dim, 0.0);
  }
}

std::size_t pick_partner(RolloutContext& ctx, std::size_t agent) {
  return pick_partner(*ctx.env, *ctx.config, ctx.rng, agent);
}

std::size_t pick_partner(const env::TscEnv& env, const PairUpConfig& config,
                         Rng* rng, std::size_t agent) {
  const auto& upstream = env.agent(agent).upstream;
  switch (config.pairing) {
    case PairingStrategy::kMostCongestedUpstream:
      return env.most_congested_upstream(agent);
    case PairingStrategy::kSelf:
      return agent;
    case PairingStrategy::kRandomNeighbor:
      if (upstream.empty()) return agent;
      return upstream[rng->uniform_int(upstream.size())];
    case PairingStrategy::kFixedUpstream:
      return upstream.empty() ? agent : upstream.front();
  }
  return agent;
}

StepDecision decide_step(RolloutContext& ctx, std::vector<AgentState>& states,
                         bool explore, rl::RolloutBuffer* buffer,
                         Rng* sample_rng) {
  const std::size_t n = ctx.env->num_agents();
  StepDecision decision;
  decision.actions.resize(n);
  decision.log_probs.resize(n);
  decision.values.resize(n);

  // Partner picks first, in agent order (kRandomNeighbor draws from
  // ctx.rng, so this order is part of the deterministic stream).
  ctx.last_partners->resize(n);
  for (std::size_t i = 0; i < n; ++i)
    (*ctx.last_partners)[i] = pick_partner(ctx, i);

  // Group agents by model so shared mode runs one batched forward.
  std::vector<std::vector<std::size_t>> groups(ctx.actors.size());
  for (std::size_t i = 0; i < n; ++i) groups[ctx.model_of(i)].push_back(i);

  nn::InferenceWorkspace* const ws =
      ctx.config->inference_path ? ctx.workspace : nullptr;
  // Kernel tier follows the config on the inference path; the tape fallback
  // has no fast kernels and always runs reference (nn/kernels.hpp).
  if (ws != nullptr) ws->set_kernel_tier(ctx.config->kernel_tier);
  const nn::KernelTier tier =
      ws != nullptr ? ws->kernel_tier() : nn::KernelTier::kReference;

  // Gather ALL inputs before any forward or state mutation (messages are
  // the previous step's outputs for everyone, matching Algorithm 1's
  // synchronous sweep — a later group must not see an earlier group's
  // freshly advanced msg_out).
  std::vector<std::vector<double>> a_inputs, v_inputs;
  std::vector<std::array<Tensor*, 6>> gslots;
  if (ws != nullptr) {
    // Tape-free path: acquire every group's batch tensors up front and pack
    // observation rows straight into them via the env's zero-copy row seam
    // (no per-agent vector allocation).
    ws->begin_pass();
    const std::size_t hidden = ctx.config->hidden;
    const std::size_t obs_dim = ctx.env->obs_dim();
    gslots.assign(groups.size(), {});
    for (std::size_t m = 0; m < groups.size(); ++m) {
      if (groups[m].empty()) continue;
      const std::size_t batch = groups[m].size();
      gslots[m][0] = &ws->acquire(batch, ctx.actors[m]->input_dim());
      gslots[m][1] = &ws->acquire(batch, hidden);
      gslots[m][2] = &ws->acquire(batch, hidden);
      gslots[m][3] = &ws->acquire(batch, ctx.critic_input_dim);
      gslots[m][4] = &ws->acquire(batch, hidden);
      gslots[m][5] = &ws->acquire(batch, hidden);
    }
    for (std::size_t m = 0; m < groups.size(); ++m) {
      const auto& members = groups[m];
      for (std::size_t b = 0; b < members.size(); ++b) {
        const std::size_t i = members[b];
        const AgentState& s = states[i];
        double* in_row =
            gslots[m][0]->data() + b * ctx.actors[m]->input_dim();
        double* v_row = gslots[m][3]->data() + b * ctx.critic_input_dim;
        ctx.env->obs_into_row(i, in_row, v_row, ctx.hop1_slots,
                              ctx.hop2_slots);
        if (ctx.config->comm_enabled) {
          const auto& msg = states[(*ctx.last_partners)[i]].msg_out;
          std::copy(msg.begin(), msg.end(), in_row + obs_dim);
        } else {
          std::fill(in_row + obs_dim,
                    in_row + obs_dim + ctx.config->msg_dim, 0.0);
        }
        std::copy(s.h_a.begin(), s.h_a.end(),
                  gslots[m][1]->data() + b * hidden);
        std::copy(s.c_a.begin(), s.c_a.end(),
                  gslots[m][2]->data() + b * hidden);
        std::copy(s.h_v.begin(), s.h_v.end(),
                  gslots[m][4]->data() + b * hidden);
        std::copy(s.c_v.begin(), s.c_v.end(),
                  gslots[m][5]->data() + b * hidden);
      }
    }
  } else {
    a_inputs.resize(n);
    v_inputs.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      a_inputs[i] = actor_input(ctx, i, (*ctx.last_partners)[i], states);
      v_inputs[i] = critic_input(ctx, i);
    }
  }

  for (std::size_t m = 0; m < groups.size(); ++m) {
    const auto& members = groups[m];
    if (members.empty()) continue;
    const std::size_t batch = members.size();

    CoordinatedActor& actor = *ctx.actors[m];
    CentralizedCritic& critic = *ctx.critics[m];
    const std::size_t hidden = ctx.config->hidden;
    std::vector<std::size_t> phase_counts(batch);
    for (std::size_t b = 0; b < batch; ++b)
      phase_counts[b] = ctx.env->agent(members[b]).num_phases;

    // Both forward producers fill the same pointers; the action-selection /
    // state-advance loop below is shared so the RNG consumption order is
    // identical on either path.
    const Tensor* probs_p = nullptr;
    const Tensor* logp_p = nullptr;
    const Tensor* msg_p = nullptr;
    const Tensor* ha_p = nullptr;
    const Tensor* ca_p = nullptr;
    const Tensor* hv_p = nullptr;
    const Tensor* cv_p = nullptr;
    const Tensor* val_p = nullptr;

    if (ws != nullptr) {
      // Tape-free path: the batch tensors were packed above (before any
      // forward) and run through the bit-identical forward_inference
      // kernels here.
      Tensor& input = *gslots[m][0];
      Tensor& h_a = *gslots[m][1];
      Tensor& c_a = *gslots[m][2];
      Tensor& v_input = *gslots[m][3];
      Tensor& h_v = *gslots[m][4];
      Tensor& c_v = *gslots[m][5];
      auto actor_out =
          actor.forward_inference(*ws, input, h_a, c_a, phase_counts);
      Tensor& probs = ws->acquire(batch, actor.max_phases());
      nn::softmax_rows_into(probs, *actor_out.logits, tier);
      Tensor& logp = ws->acquire(batch, actor.max_phases());
      nn::log_softmax_rows_into(logp, *actor_out.logits, tier);
      auto critic_out = critic.forward_inference(*ws, v_input, h_v, c_v);

      probs_p = &probs;
      logp_p = &logp;
      msg_p = actor_out.message;
      ha_p = actor_out.h;
      ca_p = actor_out.c;
      hv_p = critic_out.h;
      cv_p = critic_out.c;
      val_p = critic_out.value;
    } else {
      Tape& tape = *ctx.tape;
      tape.reset();
      std::vector<std::vector<double>> in_rows(batch), ha_rows(batch),
          ca_rows(batch), vi_rows(batch), hv_rows(batch), cv_rows(batch);
      for (std::size_t b = 0; b < batch; ++b) {
        const std::size_t i = members[b];
        in_rows[b] = a_inputs[i];
        ha_rows[b] = states[i].h_a;
        ca_rows[b] = states[i].c_a;
        vi_rows[b] = v_inputs[i];
        hv_rows[b] = states[i].h_v;
        cv_rows[b] = states[i].c_v;
      }

      Var input = tape.constant(pack_rows(in_rows, actor.input_dim()));
      Var h_a = tape.constant(pack_rows(ha_rows, hidden));
      Var c_a = tape.constant(pack_rows(ca_rows, hidden));
      auto actor_out = actor.forward(tape, input, h_a, c_a, phase_counts);
      Var probs = tape.softmax_rows(actor_out.logits);
      Var logp = tape.log_softmax_rows(actor_out.logits);

      Var v_input = tape.constant(pack_rows(vi_rows, ctx.critic_input_dim));
      Var h_v = tape.constant(pack_rows(hv_rows, hidden));
      Var c_v = tape.constant(pack_rows(cv_rows, hidden));
      auto critic_out = critic.forward(tape, v_input, h_v, c_v);

      probs_p = &tape.value(probs);
      logp_p = &tape.value(logp);
      msg_p = &tape.value(actor_out.message);
      ha_p = &tape.value(actor_out.state.h);
      ca_p = &tape.value(actor_out.state.c);
      hv_p = &tape.value(critic_out.state.h);
      cv_p = &tape.value(critic_out.state.c);
      val_p = &tape.value(critic_out.value);
    }

    const Tensor& probs_t = *probs_p;
    const Tensor& logp_t = *logp_p;
    const Tensor& msg_t = *msg_p;
    const Tensor& ha_t = *ha_p;
    const Tensor& ca_t = *ca_p;
    const Tensor& hv_t = *hv_p;
    const Tensor& cv_t = *cv_p;
    const Tensor& val_t = *val_p;

    for (std::size_t b = 0; b < batch; ++b) {
      const std::size_t i = members[b];
      const std::size_t num_phases = phase_counts[b];

      // Action selection.
      std::size_t action;
      if (!explore) {
        if (sample_rng != nullptr) {
          // Stochastic evaluation: draw from the learned policy with the
          // caller's deterministic stream.
          std::vector<double> w(num_phases);
          for (std::size_t p = 0; p < num_phases; ++p) w[p] = probs_t.at(b, p);
          action = sample_rng->categorical(w);
        } else {
          action = 0;
          for (std::size_t p = 1; p < num_phases; ++p)
            if (probs_t.at(b, p) > probs_t.at(b, action)) action = p;
        }
      } else if (ctx.config->ppo.sample_actions) {
        std::vector<double> w(num_phases);
        for (std::size_t p = 0; p < num_phases; ++p) w[p] = probs_t.at(b, p);
        action = ctx.rng->categorical(w);
      } else {
        // Paper Algorithm 1: epsilon-greedy over the policy's argmax.
        if (ctx.rng->bernoulli(ctx.epsilon)) {
          action = ctx.rng->uniform_int(num_phases);
        } else {
          action = 0;
          for (std::size_t p = 1; p < num_phases; ++p)
            if (probs_t.at(b, p) > probs_t.at(b, action)) action = p;
        }
      }

      decision.actions[i] = action;
      decision.log_probs[i] = logp_t.at(b, action);
      decision.values[i] = val_t.at(b, 0);

      if (buffer != nullptr) {
        rl::Sample sample;
        if (ws != nullptr) {
          const double* obs_row =
              gslots[m][0]->data() + b * actor.input_dim();
          const double* vobs_row =
              gslots[m][3]->data() + b * ctx.critic_input_dim;
          sample.obs.assign(obs_row, obs_row + actor.input_dim());
          sample.critic_obs.assign(vobs_row,
                                   vobs_row + ctx.critic_input_dim);
        } else {
          sample.obs = a_inputs[i];
          sample.critic_obs = v_inputs[i];
        }
        sample.h_actor = states[i].h_a;
        sample.c_actor = states[i].c_a;
        sample.h_critic = states[i].h_v;
        sample.c_critic = states[i].c_v;
        sample.action = action;
        sample.phase_count = num_phases;
        sample.log_prob = decision.log_probs[i];
        sample.value = decision.values[i];
        buffer->add(i, std::move(sample));
      }

      // Advance recurrent state and regularize the outgoing message:
      // m_hat = Logistic(N(m, sigma)); noiseless at evaluation time.
      // assign() reuses each state vector's capacity — no allocation after
      // the first step of an episode.
      states[i].h_a.assign(ha_t.data() + b * hidden, ha_t.data() + (b + 1) * hidden);
      states[i].c_a.assign(ca_t.data() + b * hidden, ca_t.data() + (b + 1) * hidden);
      states[i].h_v.assign(hv_t.data() + b * hidden, hv_t.data() + (b + 1) * hidden);
      states[i].c_v.assign(cv_t.data() + b * hidden, cv_t.data() + (b + 1) * hidden);
      for (std::size_t k = 0; k < ctx.config->msg_dim; ++k) {
        const double raw = msg_t.at(b, k);
        const double noisy =
            explore ? ctx.rng->normal(raw, ctx.config->msg_sigma) : raw;
        states[i].msg_out[k] = nn::logistic(noisy, tier);
      }
    }
  }
  ctx.last_messages->resize(n);
  for (std::size_t i = 0; i < n; ++i) (*ctx.last_messages)[i] = states[i].msg_out;
  return decision;
}

env::EpisodeStats run_rollout_episode(RolloutContext& ctx, std::uint64_t seed,
                                      bool train_mode, rl::RolloutBuffer* buffer) {
  env::TscEnv& env = *ctx.env;
  assert(!train_mode || buffer != nullptr);
  env.reset(seed);
  std::vector<AgentState> states;
  reset_agent_states(ctx, states);
  rl::RolloutBuffer* buffer_ptr = train_mode ? buffer : nullptr;

  Rng eval_rng(seed ^ env::kEvalSampleSalt);
  Rng* sample_rng =
      (!train_mode && !ctx.config->greedy_eval) ? &eval_rng : nullptr;

  double reward_sum = 0.0;
  std::size_t reward_count = 0;
  while (!env.done()) {
    StepDecision decision =
        decide_step(ctx, states, train_mode, buffer_ptr, sample_rng);
    const auto rewards = env.step(decision.actions);
    for (std::size_t i = 0; i < rewards.size(); ++i) {
      reward_sum += rewards[i];
      ++reward_count;
    }
    if (buffer_ptr != nullptr) {
      for (std::size_t i = 0; i < rewards.size(); ++i)
        buffer_ptr->last(i).reward = rewards[i];
    }
  }

  if (train_mode) {
    // Bootstrap V(s_T) per agent (Algorithm 1 line 24).
    StepDecision boot = decide_step(ctx, states, /*explore=*/false, nullptr);
    for (std::size_t i = 0; i < env.num_agents(); ++i)
      buffer->finish_agent(i, boot.values[i], ctx.config->ppo.gamma,
                           ctx.config->ppo.lambda);
  }

  env::EpisodeStats stats;
  stats.avg_wait = env.episode_avg_wait();
  stats.travel_time = env.average_travel_time();
  stats.delay = env.average_delay();
  stats.mean_reward =
      reward_count ? reward_sum / static_cast<double>(reward_count) : 0.0;
  stats.vehicles_finished = env.simulator().vehicles_finished();
  stats.vehicles_spawned = env.simulator().vehicles_spawned();
  return stats;
}

}  // namespace tsc::core
