// Strict numeric parsing for CLI arguments and scenario-file tokens.
//
// The std::atof / std::atoi family silently turns typos into 0 and
// std::stod accepts trailing garbage ("3.5x" parses as 3.5), so every
// user-facing number in the tools and the scenario reader goes through
// these helpers instead: the WHOLE token must be a valid, in-range number
// or the parse fails (std::nullopt). Callers attach their own context
// (usage message, scenario line number) to the failure.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tsc::util {

/// Parses `text` as a finite double. The full token must be consumed:
/// empty strings, leading/trailing garbage or whitespace, overflow
/// (e.g. "1e999"), and non-finite spellings ("inf", "nan") all fail.
std::optional<double> parse_double(const std::string& text);

/// Parses `text` as a base-10 unsigned integer. Rejects empty strings,
/// any non-digit character (including sign and whitespace), and overflow.
std::optional<std::uint64_t> parse_u64(const std::string& text);

/// Parses `text` as a base-10 signed integer (optional leading '-').
std::optional<std::int64_t> parse_i64(const std::string& text);

/// Parses a comma-separated list of unsigned integers ("1,2,3").
/// Empty list, empty items, and any invalid item fail.
std::optional<std::vector<std::uint64_t>> parse_u64_list(const std::string& text);

}  // namespace tsc::util
