// Fixed-size worker pool for coarse-grained task parallelism (one task ==
// one episode rollout, not per-op parallelism). Tasks are queued FIFO;
// submit() returns a std::future carrying the task's result or, if the task
// threw, its exception (packaged_task semantics). The pool is reusable
// across submission rounds: construct once, submit many batches. The
// destructor finishes every queued task before joining the workers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace tsc::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(std::size_t num_threads);
  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return threads_.size(); }

  /// Enqueues `fn` for execution on a worker thread. The returned future
  /// yields fn's result; if fn throws, future.get() rethrows the exception
  /// on the caller's thread.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using Result = std::invoke_result_t<std::decay_t<F>>;
    // packaged_task is move-only but std::function requires copyable
    // callables, so the task lives behind a shared_ptr.
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.push([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace tsc::util
