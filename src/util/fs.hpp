// Crash-safe file replacement: write to a temp file in the target's
// directory, flush it to disk, then atomically rename over the target.
//
// This is the durability seam under every checkpoint writer (TSCW weight,
// TSCO optimizer, and TSCT trainer-state files) and the fleet run store's
// metrics records: a process killed at ANY point during a save leaves
// either the complete old file or the complete new file on disk, never a
// truncated hybrid — which is what lets the fleet orchestrator resume a
// SIGKILL'd training job from its last checkpoint (core/fleet_orchestrator).
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

namespace tsc::util {

/// Atomically replaces `path` with whatever `writer` streams out:
///   1. `writer` writes to `path + ".tmp"` (same directory, same filesystem)
///   2. the temp file is flushed and fsync'd
///   3. the temp file is rename(2)'d over `path` (atomic on POSIX)
/// Throws std::runtime_error — with the temp file removed and the old
/// `path` untouched — if the writer throws or any write/flush fails.
/// The stream is opened in binary mode when `binary` (the default).
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer,
                       bool binary = true);

/// Convenience wrapper: atomically replaces `path` with `content`.
void atomic_write_file(const std::string& path, const std::string& content);

/// TEST HOOK: when armed, atomic_write_file completes the temp-write stage
/// and then throws INSTEAD of renaming, leaving the temp file behind —
/// simulating a process killed between writing the new checkpoint and
/// committing it. The old `path` must survive such an interruption
/// (tests/test_fleet_orchestrator.cpp pins this). Sticky until disarmed.
void set_atomic_write_failure_injection(bool fail_before_rename);

}  // namespace tsc::util
