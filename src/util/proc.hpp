// Child-process spawn/wait helper for the fleet orchestrator.
//
// Thin POSIX fork/exec wrapper: spawn a child with its stdout+stderr
// appended to a log file, reap children (blocking or polling), and report
// how each one died — normal exit code vs terminating signal. Signal-aware
// exit status is what lets the orchestrator tell "job finished" from
// "worker was SIGKILL'd mid-episode" and retry the latter
// (core/fleet_orchestrator.hpp).
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace tsc::util {

/// How a child process ended.
struct ExitStatus {
  bool exited = false;    ///< normal exit (exit_code valid)
  int exit_code = -1;
  bool signaled = false;  ///< killed by a signal (term_signal valid)
  int term_signal = 0;
  bool success() const { return exited && exit_code == 0; }
};

/// Spawns `argv` (argv[0] is the executable path) as a child process.
/// When `log_path` is non-empty, the child's stdout and stderr are
/// APPENDED to that file (created if missing); otherwise they are
/// inherited. Returns the child pid. Throws std::runtime_error if the
/// process cannot be created (exec failures surface as exit code 127).
int spawn_process(const std::vector<std::string>& argv,
                  const std::string& log_path = "");

/// Blocks until child `pid` exits and returns how it ended.
ExitStatus wait_process(int pid);

/// Non-blocking reap: returns the pid + status of ONE exited child of this
/// process, or std::nullopt if none has exited yet (or there are none).
std::optional<std::pair<int, ExitStatus>> try_wait_any();

/// Absolute path of the running executable (/proc/self/exe on Linux),
/// falling back to `fallback` where that is unavailable.
std::string self_exe_path(const std::string& fallback);

}  // namespace tsc::util
