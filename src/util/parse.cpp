#include "src/util/parse.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace tsc::util {

std::optional<double> parse_double(const std::string& text) {
  if (text.empty()) return std::nullopt;
  // strtod skips leading whitespace and accepts "inf"/"nan"; reject both up
  // front so a token is exactly what it looks like.
  const unsigned char first = static_cast<unsigned char>(text.front());
  if (std::isspace(first)) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return std::nullopt;  // trailing garbage
  if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL))
    return std::nullopt;  // overflow (underflow to denormal/0 is fine)
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_u64(const std::string& text) {
  if (text.empty()) return std::nullopt;
  for (char c : text)
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) return std::nullopt;
  return static_cast<std::uint64_t>(value);
}

std::optional<std::int64_t> parse_i64(const std::string& text) {
  std::string digits = text;
  bool negative = false;
  if (!digits.empty() && (digits.front() == '-' || digits.front() == '+')) {
    negative = digits.front() == '-';
    digits.erase(digits.begin());
  }
  const auto magnitude = parse_u64(digits);
  if (!magnitude) return std::nullopt;
  if (negative) {
    if (*magnitude > 9223372036854775808ULL) return std::nullopt;
    return static_cast<std::int64_t>(-*magnitude);
  }
  if (*magnitude > 9223372036854775807ULL) return std::nullopt;
  return static_cast<std::int64_t>(*magnitude);
}

std::optional<std::vector<std::uint64_t>> parse_u64_list(const std::string& text) {
  if (text.empty()) return std::nullopt;
  std::vector<std::uint64_t> values;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    const auto item = parse_u64(text.substr(start, end - start));
    if (!item) return std::nullopt;
    values.push_back(*item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

}  // namespace tsc::util
