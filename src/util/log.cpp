#include "src/util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace tsc {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start).count();
  std::fprintf(stderr, "[%9.3f][%s] %s\n", elapsed, level_name(level), message.c_str());
}

}  // namespace tsc
