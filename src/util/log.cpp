#include "src/util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace tsc {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start).count();
  // Assemble the full line first and emit it with a single stream write:
  // stdio locks per call, so concurrent writers (e.g. rollout workers)
  // cannot interleave within a line.
  char prefix[64];
  const int n = std::snprintf(prefix, sizeof(prefix), "[%9.3f][%s] ", elapsed,
                              level_name(level));
  std::string line;
  line.reserve(static_cast<std::size_t>(n) + message.size() + 1);
  line.append(prefix, static_cast<std::size_t>(n));
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace tsc
