#include "src/util/proc.hpp"

#include <cerrno>
#include <stdexcept>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace tsc::util {

#ifndef _WIN32

namespace {

ExitStatus decode_status(int raw) {
  ExitStatus status;
  if (WIFEXITED(raw)) {
    status.exited = true;
    status.exit_code = WEXITSTATUS(raw);
  } else if (WIFSIGNALED(raw)) {
    status.signaled = true;
    status.term_signal = WTERMSIG(raw);
  }
  return status;
}

}  // namespace

int spawn_process(const std::vector<std::string>& argv,
                  const std::string& log_path) {
  if (argv.empty()) throw std::runtime_error("spawn_process: empty argv");
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv)
    cargv.push_back(const_cast<char*>(arg.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("spawn_process: fork failed");
  if (pid == 0) {
    // Child: redirect stdout/stderr, then exec. Only async-signal-safe
    // calls from here on; any failure ends the child, never returns.
    if (!log_path.empty()) {
      const int fd =
          ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (fd < 0) ::_exit(127);
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      if (fd > STDERR_FILENO) ::close(fd);
    }
    ::execv(cargv[0], cargv.data());
    ::_exit(127);  // exec failed
  }
  return static_cast<int>(pid);
}

ExitStatus wait_process(int pid) {
  int raw = 0;
  pid_t r;
  do {
    r = ::waitpid(static_cast<pid_t>(pid), &raw, 0);
  } while (r < 0 && errno == EINTR);
  if (r < 0) throw std::runtime_error("wait_process: waitpid failed");
  return decode_status(raw);
}

std::optional<std::pair<int, ExitStatus>> try_wait_any() {
  int raw = 0;
  const pid_t r = ::waitpid(-1, &raw, WNOHANG);
  if (r <= 0) return std::nullopt;
  return std::make_pair(static_cast<int>(r), decode_status(raw));
}

std::string self_exe_path(const std::string& fallback) {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n <= 0) return fallback;
  buffer[n] = '\0';
  return std::string(buffer);
}

#else  // _WIN32: the fleet orchestrator is POSIX-only.

int spawn_process(const std::vector<std::string>&, const std::string&) {
  throw std::runtime_error("spawn_process: requires a POSIX platform");
}
ExitStatus wait_process(int) {
  throw std::runtime_error("wait_process: requires a POSIX platform");
}
std::optional<std::pair<int, ExitStatus>> try_wait_any() {
  throw std::runtime_error("try_wait_any: requires a POSIX platform");
}
std::string self_exe_path(const std::string& fallback) { return fallback; }

#endif

}  // namespace tsc::util
