#include "src/util/csv.hpp"

#include <stdexcept>

namespace tsc {

CsvWriter::CsvWriter(const std::string& path) : out_(path, std::ios::trunc) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::write_header(const std::vector<std::string>& columns) {
  write_raw_row(columns);
}

void CsvWriter::write_raw_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::flush() { out_.flush(); }

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace tsc
