#include "src/util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tsc {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Ema::add(double x) {
  if (!seeded_) {
    value_ = x;
    seeded_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev_of(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double percentile_of(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  assert(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

void normalize_in_place(std::vector<double>& xs) {
  if (xs.empty()) return;
  const double m = mean_of(xs);
  double var = 0.0;
  for (double x : xs) var += (x - m) * (x - m);
  var /= static_cast<double>(xs.size());
  const double sd = std::sqrt(var);
  for (double& x : xs) {
    x -= m;
    if (sd > 1e-8) x /= sd;
  }
}

}  // namespace tsc
