#include "src/util/fs.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace tsc::util {
namespace {

bool g_fail_before_rename = false;

// Flushes `path`'s data to disk (best effort on platforms without fsync).
void sync_file(const std::string& path) {
#ifndef _WIN32
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
#else
  (void)path;
#endif
}

// After the rename, fsync the containing directory so the new directory
// entry itself is durable (best effort).
void sync_parent_dir(const std::string& path) {
#ifndef _WIN32
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
#else
  (void)path;
#endif
}

}  // namespace

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer,
                       bool binary) {
  const std::string tmp = path + ".tmp";
  {
    std::ios_base::openmode mode = std::ios::trunc;
    if (binary) mode |= std::ios::binary;
    std::ofstream out(tmp, mode);
    if (!out)
      throw std::runtime_error("atomic_write_file: cannot open " + tmp);
    try {
      writer(out);
    } catch (...) {
      out.close();
      std::remove(tmp.c_str());
      throw;
    }
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw std::runtime_error("atomic_write_file: write failed for " + tmp);
    }
  }
  sync_file(tmp);
  if (g_fail_before_rename)
    throw std::runtime_error(
        "atomic_write_file: injected failure before rename of " + tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("atomic_write_file: rename to " + path + " failed");
  }
  sync_parent_dir(path);
}

void atomic_write_file(const std::string& path, const std::string& content) {
  atomic_write_file(path, [&content](std::ostream& out) { out << content; });
}

void set_atomic_write_failure_injection(bool fail_before_rename) {
  g_fail_before_rename = fail_before_rename;
}

}  // namespace tsc::util
