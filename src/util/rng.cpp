#include "src/util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace tsc {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // Avoid the all-zero state (cannot occur from SplitMix64, but be safe).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::logistic() {
  double u = uniform();
  while (u <= 0.0 || u >= 1.0) u = uniform();
  return std::log(u / (1.0 - u));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::categorical(const std::vector<double>& weights) {
  if (weights.empty())
    throw std::invalid_argument("categorical: empty weight vector");
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0))  // negated to also reject NaN
      throw std::invalid_argument("categorical: negative or NaN weight");
    total += w;
  }
  if (!(total > 0.0) || !std::isfinite(total))
    throw std::invalid_argument("categorical: no strictly positive weight");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

Rng Rng::split() { return Rng((*this)()); }

Rng::State Rng::state() const {
  State st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.cached_normal = cached_normal_;
  st.has_cached_normal = has_cached_normal_;
  return st;
}

void Rng::set_state(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

}  // namespace tsc
