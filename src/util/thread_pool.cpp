#include "src/util/thread_pool.hpp"

namespace tsc::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions are captured into the task's future
  }
}

}  // namespace tsc::util
