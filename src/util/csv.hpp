// Minimal CSV writer for experiment outputs (training curves, tables).
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

namespace tsc {

/// Writes rows of mixed string/number cells to a file. Values containing
/// commas, quotes, or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens (truncates) `path`. Throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_header(const std::vector<std::string>& columns);

  /// Appends one row; each cell is formatted with operator<<.
  template <typename... Cells>
  void write_row(const Cells&... cells) {
    std::vector<std::string> row;
    row.reserve(sizeof...(cells));
    (row.push_back(format_cell(cells)), ...);
    write_raw_row(row);
  }

  void write_raw_row(const std::vector<std::string>& cells);

  void flush();

 private:
  template <typename T>
  static std::string format_cell(const T& value) {
    std::ostringstream os;
    os << value;
    return os.str();
  }

  static std::string escape(const std::string& cell);

  std::ofstream out_;
};

}  // namespace tsc
