// Small statistics helpers used by metrics collection and training logs.
#pragma once

#include <cstddef>
#include <vector>

namespace tsc {

/// Streaming mean/variance via Welford's algorithm.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 divisor, matching stddev_of and the seed
  /// aggregation in env/controller.cpp so every eval CSV reports one
  /// convention); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponential moving average, seeded from the first sample.
class Ema {
 public:
  explicit Ema(double alpha) : alpha_(alpha) {}
  void add(double x);
  bool empty() const { return !seeded_; }
  double value() const { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Mean of a vector; 0 for empty input.
double mean_of(const std::vector<double>& xs);

/// Sample standard deviation (n-1); 0 for fewer than two samples.
double stddev_of(const std::vector<double>& xs);

/// Linear-interpolated percentile, p in [0, 100]. Copies and sorts.
/// Returns 0 for empty input.
double percentile_of(std::vector<double> xs, double p);

/// Normalizes a vector to zero mean / unit std in place (no-op on empty or
/// constant input other than centering).
void normalize_in_place(std::vector<double>& xs);

}  // namespace tsc
