// Deterministic pseudo-random number generation for simulation and training.
//
// A single seeded Rng instance is threaded through every stochastic component
// (flow arrivals, policy sampling, weight init) so whole experiments replay
// bit-for-bit given the same seed.
#pragma once

#include <cstdint>
#include <vector>

namespace tsc {

/// xoshiro256++ generator with distribution helpers.
///
/// NOT thread-safe and never to be shared across threads: every draw
/// mutates the 4-word state, so concurrent use is a data race AND silently
/// destroys reproducibility. Parallel components must hand each worker its
/// own instance BY VALUE, derived via split() on the owning thread before
/// dispatch (this is what rl::ParallelRolloutCollector does at the
/// collector boundary).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state via SplitMix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Raw 64-bit draw (satisfies UniformRandomBitGenerator).
  std::uint64_t operator()();

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Standard logistic distribution sample (mean 0, scale 1).
  double logistic();

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Samples an index from an (unnormalized, non-negative) weight vector.
  /// Returns weights.size()-1 if rounding pushes past the end.
  /// Throws std::invalid_argument (in every build mode) if the vector is
  /// empty, any weight is negative or NaN, or no weight is strictly
  /// positive — each of those would otherwise silently return a biased or
  /// out-of-range index.
  std::size_t categorical(const std::vector<double>& weights);

  /// Exponential inter-arrival sample with the given rate (events/unit time).
  double exponential(double rate);

  /// Derives an independent generator (for per-agent / per-worker streams).
  Rng split();

  /// Full generator state, including the Box-Muller cache, so a restored
  /// generator continues the exact draw sequence (checkpoint/resume).
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };
  State state() const;
  void set_state(const State& state);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace tsc
