// Tiny leveled logger. Intended for experiment harnesses, not hot paths.
#pragma once

#include <sstream>
#include <string>

namespace tsc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes a timestamped line to stderr if `level` passes the threshold.
/// Thread-safe: the whole line goes out in one stream write, so lines from
/// concurrent writers never interleave mid-line.
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() <= LogLevel::kDebug) log_message(LogLevel::kDebug, detail::concat(args...));
}
template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() <= LogLevel::kInfo) log_message(LogLevel::kInfo, detail::concat(args...));
}
template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() <= LogLevel::kWarn) log_message(LogLevel::kWarn, detail::concat(args...));
}
template <typename... Args>
void log_error(const Args&... args) {
  if (log_level() <= LogLevel::kError) log_message(LogLevel::kError, detail::concat(args...));
}

}  // namespace tsc
