#include "src/rl/gae.hpp"

#include <cassert>

namespace tsc::rl {

GaeResult compute_gae(const std::vector<double>& rewards,
                      const std::vector<double>& values, double bootstrap_value,
                      double gamma, double lambda) {
  assert(rewards.size() == values.size());
  const std::size_t n = rewards.size();
  GaeResult out;
  out.advantages.resize(n);
  out.returns.resize(n);
  double gae = 0.0;
  for (std::size_t t = n; t-- > 0;) {
    const double next_value = (t + 1 < n) ? values[t + 1] : bootstrap_value;
    const double delta = rewards[t] + gamma * next_value - values[t];
    gae = delta + gamma * lambda * gae;
    out.advantages[t] = gae;
    out.returns[t] = gae + values[t];
  }
  return out;
}

}  // namespace tsc::rl
