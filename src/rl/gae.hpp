// Generalized Advantage Estimation (Schulman et al. 2016) - the advantage
// estimator of the paper's backbone (Eq. 7).
#pragma once

#include <vector>

namespace tsc::rl {

struct GaeResult {
  std::vector<double> advantages;
  std::vector<double> returns;  ///< reward-to-go targets (advantage + value)
};

/// Computes GAE(gamma, lambda) over one trajectory.
/// `values[t]` is V(s_t); `bootstrap_value` is V(s_T) for the state after
/// the last reward (0 for terminal). Sizes of rewards and values must match.
GaeResult compute_gae(const std::vector<double>& rewards,
                      const std::vector<double>& values, double bootstrap_value,
                      double gamma, double lambda);

}  // namespace tsc::rl
