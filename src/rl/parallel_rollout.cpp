#include "src/rl/parallel_rollout.hpp"

#include <stdexcept>

namespace tsc::rl {

RolloutBuffer merge_rollouts(std::vector<RolloutBuffer> parts) {
  if (parts.empty()) return RolloutBuffer(0);
  const std::size_t num_agents = parts.front().num_agents();
  RolloutBuffer merged(num_agents);
  for (const RolloutBuffer& part : parts)
    if (part.num_agents() != num_agents)
      throw std::invalid_argument("merge_rollouts: mismatched agent rosters");
  // Exact-capacity reserve so the moves below never trigger a vector growth
  // reallocation (tests/test_parallel_rollout.cpp asserts this).
  for (std::size_t agent = 0; agent < num_agents; ++agent) {
    std::size_t total = 0;
    for (const RolloutBuffer& part : parts)
      total += part.agent_samples(agent).size();
    merged.reserve_agent(agent, total);
  }
  for (RolloutBuffer& part : parts)
    for (std::size_t agent = 0; agent < num_agents; ++agent)
      for (Sample& s : part.mutable_agent_samples(agent))
        merged.add(agent, std::move(s));
  return merged;
}

}  // namespace tsc::rl
