#include "src/rl/parallel_rollout.hpp"

#include <stdexcept>

namespace tsc::rl {

RolloutBuffer merge_rollouts(std::vector<RolloutBuffer> parts) {
  if (parts.empty()) return RolloutBuffer(0);
  const std::size_t num_agents = parts.front().num_agents();
  RolloutBuffer merged(num_agents);
  for (RolloutBuffer& part : parts) {
    if (part.num_agents() != num_agents)
      throw std::invalid_argument("merge_rollouts: mismatched agent rosters");
    for (std::size_t agent = 0; agent < num_agents; ++agent)
      for (Sample& s : part.mutable_agent_samples(agent))
        merged.add(agent, std::move(s));
  }
  return merged;
}

}  // namespace tsc::rl
