// On-policy rollout storage for recurrent multi-agent PPO.
//
// Samples are stored per (agent, step). Hidden LSTM states recorded during
// the rollout are replayed as fixed inputs during the update ("stored
// state" training: gradients flow through one recurrent step). This keeps
// minibatch samples independent, trading exact BPTT for tractability -
// standard practice in recurrent PPO implementations.
#pragma once

#include <cstddef>
#include <vector>

#include "src/rl/gae.hpp"

namespace tsc::rl {

/// One decision point of one agent.
struct Sample {
  std::vector<double> obs;       ///< actor input (may include message)
  std::vector<double> critic_obs;///< critic input (may include neighbors)
  std::vector<double> h_actor;   ///< LSTM hidden (h) before this step
  std::vector<double> c_actor;   ///< LSTM cell (c) before this step
  std::vector<double> h_critic;
  std::vector<double> c_critic;
  std::size_t action = 0;
  std::size_t phase_count = 0;  ///< valid actions for this agent (masking)
  double log_prob = 0.0;
  double value = 0.0;
  double reward = 0.0;
  // Filled by finish_agent():
  double advantage = 0.0;
  double ret = 0.0;
};

/// Rollout of a full episode for all agents, organized per agent so GAE can
/// run over each agent's trajectory independently.
class RolloutBuffer {
 public:
  explicit RolloutBuffer(std::size_t num_agents) : per_agent_(num_agents) {}

  void add(std::size_t agent, Sample sample) {
    per_agent_.at(agent).push_back(std::move(sample));
  }

  /// Preallocates room for `n` samples of `agent` (exact-capacity reserve:
  /// callers that know an episode's length up front avoid all push_back
  /// growth reallocations — see merge_rollouts).
  void reserve_agent(std::size_t agent, std::size_t n) {
    per_agent_.at(agent).reserve(n);
  }
  std::size_t agent_capacity(std::size_t agent) const {
    return per_agent_.at(agent).capacity();
  }

  /// Most recent sample of `agent` (e.g. to fill in the reward that arrives
  /// after the action executes).
  Sample& last(std::size_t agent) { return per_agent_.at(agent).back(); }

  /// Runs GAE over agent `agent`'s trajectory with `bootstrap_value` as
  /// V(s_T), writing advantage/ret into each sample.
  void finish_agent(std::size_t agent, double bootstrap_value, double gamma,
                    double lambda);

  /// All samples flattened (after finish_agent on every agent).
  /// Optionally normalizes advantages across the whole batch.
  std::vector<const Sample*> flatten(bool normalize_advantages);

  /// Mutable access used by flatten's normalization.
  std::size_t total_samples() const;
  const std::vector<Sample>& agent_samples(std::size_t agent) const {
    return per_agent_.at(agent);
  }
  std::vector<Sample>& mutable_agent_samples(std::size_t agent) {
    return per_agent_.at(agent);
  }
  std::size_t num_agents() const { return per_agent_.size(); }

  void clear() {
    for (auto& v : per_agent_) v.clear();
  }

 private:
  std::vector<std::vector<Sample>> per_agent_;
};

}  // namespace tsc::rl
