// Parallel rollout collection over environment replicas.
//
// On-policy PPO rollout collection is embarrassingly parallel across
// environment replicas: each worker owns a full environment copy plus
// frozen copies of the policy parameters, runs one complete episode, and
// the per-worker RolloutBuffers are merged into a single PPO batch.
//
// The collector here is deliberately policy-agnostic: `Worker` is whatever
// bundle the caller needs on each pool thread (core::PairUpLightTrainer
// instantiates it with an env replica + frozen actor/critic copies). The
// collector owns the workers and a reusable util::ThreadPool, derives
// per-worker seeds deterministically from the round's base seed
// (independent of thread scheduling), and returns results in worker order -
// so a run is bit-reproducible for a fixed worker count.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/rl/rollout.hpp"
#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"

namespace tsc::rl {

/// Concatenates per-worker episode buffers (identical agent rosters) into
/// one batch, preserving worker order. Each part must already be finished
/// (GAE run per episode) - advantages are per-trajectory quantities and
/// cannot be computed across the merge boundary.
RolloutBuffer merge_rollouts(std::vector<RolloutBuffer> parts);

template <typename Worker>
class ParallelRolloutCollector {
 public:
  /// Takes ownership of the worker bundles; spawns one pool thread per
  /// worker. Workers must be mutually independent - nothing a worker
  /// mutates during collection may be reachable from another worker.
  explicit ParallelRolloutCollector(std::vector<std::unique_ptr<Worker>> workers)
      : workers_(std::move(workers)),
        pool_(workers_.empty() ? 1 : workers_.size()) {}

  std::size_t num_workers() const { return workers_.size(); }
  Worker& worker(std::size_t i) { return *workers_.at(i); }

  /// Runs `fn(worker, env_seed, rng)` once per worker, concurrently.
  /// Per-worker seeds and Rng streams derive from `base_seed` on the
  /// calling thread before dispatch, and each worker receives its Rng BY
  /// VALUE (Rng is not thread-safe; see util/rng.hpp). Results come back
  /// in worker order; a worker exception is rethrown here after all
  /// workers have finished.
  template <typename Fn>
  auto collect(std::uint64_t base_seed, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, Worker&, std::uint64_t, Rng>> {
    using Result = std::invoke_result_t<Fn&, Worker&, std::uint64_t, Rng>;
    Rng seeder(base_seed);
    std::vector<std::future<Result>> futures;
    futures.reserve(workers_.size());
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      const std::uint64_t env_seed = seeder();
      Rng worker_rng = seeder.split();
      Worker* worker = workers_[w].get();
      futures.push_back(pool_.submit([&fn, worker, env_seed, worker_rng]() mutable {
        return fn(*worker, env_seed, worker_rng);
      }));
    }
    // Wait for every task before get() so that a throwing worker cannot
    // leave siblings running against captured state we are unwinding past.
    for (auto& f : futures) f.wait();
    std::vector<Result> results;
    results.reserve(futures.size());
    for (auto& f : futures) results.push_back(f.get());
    return results;
  }

 private:
  std::vector<std::unique_ptr<Worker>> workers_;
  util::ThreadPool pool_;
};

}  // namespace tsc::rl
