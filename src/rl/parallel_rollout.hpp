// Parallel rollout collection over environment replicas.
//
// On-policy PPO rollout collection is embarrassingly parallel across
// environment replicas: each worker owns a full environment copy plus
// frozen copies of the policy parameters, runs one complete episode, and
// the per-worker RolloutBuffers are merged into a single PPO batch.
//
// The collector here is deliberately policy-agnostic: `Worker` is whatever
// bundle the caller needs on each pool thread (core::PairUpLightTrainer
// instantiates it with an env replica + frozen actor/critic copies). The
// collector owns the workers and a reusable util::ThreadPool, derives
// per-worker seeds deterministically from the round's base seed
// (independent of thread scheduling), and returns results in worker order -
// so a run is bit-reproducible for a fixed worker count.
#pragma once

#include <cassert>
#include <cstdint>
#include <future>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/rl/rollout.hpp"
#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"

namespace tsc::rl {

/// Concatenates per-worker episode buffers (identical agent rosters) into
/// one batch, preserving worker order. Each part must already be finished
/// (GAE run per episode) - advantages are per-trajectory quantities and
/// cannot be computed across the merge boundary.
RolloutBuffer merge_rollouts(std::vector<RolloutBuffer> parts);

/// Derives one round's env seeds and exploration streams from the round's
/// base seed: seed draw and split() interleaved per slot, exactly the
/// historical ParallelRolloutCollector::collect derivation. Shared with the
/// fleet-batched collection path so both consume identical streams for the
/// same (base_seed, k) — which is what makes fleet-vs-threaded trajectories
/// bit-comparable.
inline void derive_round_streams(std::uint64_t base_seed, std::size_t k,
                                 std::vector<std::uint64_t>& env_seeds,
                                 std::vector<Rng>& rngs) {
  Rng seeder(base_seed);
  env_seeds.clear();
  rngs.clear();
  env_seeds.reserve(k);
  rngs.reserve(k);
  for (std::size_t w = 0; w < k; ++w) {
    env_seeds.push_back(seeder());
    rngs.push_back(seeder.split());
  }
}

/// Worker-count-invariant variant: each slot's exploration stream derives
/// from its caller-chosen env seed alone (split() of a fresh Rng(seed)
/// decorrelates the exploration draws from the env's own Rng(seed) stream
/// while staying a pure function of the episode's seed) — the historical
/// collect_seeded derivation, shared with the fleet path.
inline void derive_seeded_streams(const std::vector<std::uint64_t>& env_seeds,
                                  std::vector<Rng>& rngs) {
  rngs.clear();
  rngs.reserve(env_seeds.size());
  for (std::uint64_t seed : env_seeds) {
    Rng derive(seed);
    rngs.push_back(derive.split());
  }
}

template <typename Worker>
class ParallelRolloutCollector {
 public:
  /// Takes ownership of the worker bundles; spawns one pool thread per
  /// worker. Workers must be mutually independent - nothing a worker
  /// mutates during collection may be reachable from another worker.
  explicit ParallelRolloutCollector(std::vector<std::unique_ptr<Worker>> workers)
      : workers_(std::move(workers)),
        pool_(workers_.empty() ? 1 : workers_.size()) {}

  std::size_t num_workers() const { return workers_.size(); }
  Worker& worker(std::size_t i) { return *workers_.at(i); }

  /// Runs `fn(worker, env_seed, rng)` once per worker, concurrently.
  /// Per-worker seeds and Rng streams derive from `base_seed` on the
  /// calling thread before dispatch, and each worker receives its Rng BY
  /// VALUE (Rng is not thread-safe; see util/rng.hpp). Results come back
  /// in worker order; a worker exception is rethrown here after all
  /// workers have finished. When `seeds_out` is non-null it receives the
  /// env seed handed to each worker, in worker order.
  template <typename Fn>
  auto collect(std::uint64_t base_seed, Fn&& fn,
               std::vector<std::uint64_t>* seeds_out = nullptr)
      -> std::vector<std::invoke_result_t<Fn&, Worker&, std::uint64_t, Rng>> {
    std::vector<std::uint64_t> env_seeds;
    std::vector<Rng> worker_rngs;
    derive_round_streams(base_seed, workers_.size(), env_seeds, worker_rngs);
    if (seeds_out != nullptr) *seeds_out = env_seeds;
    return dispatch(env_seeds, worker_rngs, std::forward<Fn>(fn));
  }

  /// Worker-count-invariant variant: worker w runs with the caller-chosen
  /// `env_seeds[w]` (one per worker), and its exploration Rng derives from
  /// that env seed alone — so an episode's seeds depend only on its global
  /// episode index, never on how many workers collected the round.
  template <typename Fn>
  auto collect_seeded(const std::vector<std::uint64_t>& env_seeds, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, Worker&, std::uint64_t, Rng>> {
    assert(env_seeds.size() == workers_.size());
    std::vector<Rng> worker_rngs;
    derive_seeded_streams(env_seeds, worker_rngs);
    return dispatch(env_seeds, worker_rngs, std::forward<Fn>(fn));
  }

 private:
  template <typename Fn>
  auto dispatch(const std::vector<std::uint64_t>& env_seeds,
                const std::vector<Rng>& worker_rngs, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, Worker&, std::uint64_t, Rng>> {
    using Result = std::invoke_result_t<Fn&, Worker&, std::uint64_t, Rng>;
    std::vector<std::future<Result>> futures;
    futures.reserve(workers_.size());
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      const std::uint64_t env_seed = env_seeds[w];
      Rng worker_rng = worker_rngs[w];
      Worker* worker = workers_[w].get();
      futures.push_back(pool_.submit([&fn, worker, env_seed, worker_rng]() mutable {
        return fn(*worker, env_seed, worker_rng);
      }));
    }
    // Wait for every task before get() so that a throwing worker cannot
    // leave siblings running against captured state we are unwinding past.
    for (auto& f : futures) f.wait();
    std::vector<Result> results;
    results.reserve(futures.size());
    for (auto& f : futures) results.push_back(f.get());
    return results;
  }

  std::vector<std::unique_ptr<Worker>> workers_;
  util::ThreadPool pool_;
};

}  // namespace tsc::rl
