// PPO building blocks: the clipped surrogate objective (paper Eq. 4) with
// value and entropy terms, plus configuration shared by the PPO trainers.
#pragma once

#include <cstddef>
#include <vector>

#include "src/nn/tape.hpp"

namespace tsc::rl {

struct PpoConfig {
  double gamma = 0.99;
  double lambda = 0.95;        ///< GAE lambda
  double clip_eps = 0.2;       ///< epsilon in Eq. 4
  double entropy_coef = 0.01;  ///< beta in Eq. 7
  double value_coef = 0.5;
  double lr = 3e-4;
  double max_grad_norm = 0.5;
  std::size_t epochs = 4;       ///< K in Algorithm 1
  std::size_t minibatch = 128;  ///< M in Algorithm 1
  bool normalize_advantages = true;
  /// Action selection during rollout: true samples from pi (standard PPO);
  /// false uses the paper's Algorithm 1 epsilon-greedy argmax.
  bool sample_actions = true;
  double epsilon_start = 0.5;  ///< epsilon-greedy schedule (paper mode)
  double epsilon_end = 0.02;
  std::size_t epsilon_decay_episodes = 100;
};

/// Scalar PPO total loss on `tape`:
///     L = -L_clip + value_coef * L_value - entropy_coef * H
/// Inputs:
///   new_logp   [B,1]  log pi_new(a_t | s_t) for the stored actions
///   entropy    [1]    mean policy entropy over the minibatch
///   values     [B,1]  V_new(s_t)
///   old_logp / advantages / returns: stored rollout statistics (size B).
nn::Var ppo_total_loss(nn::Tape& tape, nn::Var new_logp, nn::Var entropy,
                       nn::Var values, const std::vector<double>& old_logp,
                       const std::vector<double>& advantages,
                       const std::vector<double>& returns, const PpoConfig& config);

/// Policy entropy of a [B, A] logits node: mean over rows of
/// -sum_a p log p. Returns a scalar node.
nn::Var policy_entropy(nn::Tape& tape, nn::Var logits);

/// policy_entropy with an explicit divisor instead of the node's own row
/// count: identical op sequence, but scaled by -1/divisor. The sharded PPO
/// update (core/update_engine.cpp) evaluates graphs over a subset of the
/// minibatch — one row per sample (per-sample shards) or a contiguous
/// multi-row slice (batched shards) — that must contribute gradients as
/// their exact rows/minibatch share of the batched graph, so it passes the
/// full minibatch size here regardless of the node's row count.
nn::Var policy_entropy_scaled(nn::Tape& tape, nn::Var logits, std::size_t divisor);

/// The same objective as ppo_total_loss, but with every batch mean written
/// as sum()/divisor (Tape::div_scalar) so a graph over any subset of a
/// minibatch contributes its exact share of the full minibatch gradient.
/// With rows == divisor the two losses are the same objective; the backward
/// arithmetic is engineered to match ppo_total_loss rounding-for-rounding
/// (see core/update_engine.cpp for the argument). Callers pass rows == 1
/// (per-sample shards) or a whole contiguous slice at rows <= divisor
/// (batched shards). `entropy` must come from policy_entropy_scaled with
/// the same divisor.
nn::Var ppo_shard_loss(nn::Tape& tape, nn::Var new_logp, nn::Var entropy,
                       nn::Var values, const std::vector<double>& old_logp,
                       const std::vector<double>& advantages,
                       const std::vector<double>& returns, std::size_t divisor,
                       const PpoConfig& config);

/// Tape-free fused PPO loss + gradient: evaluates the same objective as
/// ppo_shard_loss (== ppo_total_loss when divisor == rows, where mean() and
/// sum()/divisor are the same expression) over masked `logits` [rows, A]
/// and `values` [rows, 1], and emits the gradient of the loss w.r.t. the
/// logits and values directly into `dlogits` / `dvalues` (every element
/// assigned; both reshaped here). `p` / `logp` are caller-provided scratch
/// filled with softmax / log-softmax of the logits (retained because the
/// backward reads them). Every arithmetic chain — the ratio/clip surrogate,
/// the value MSE, the entropy term, and all three logits-gradient
/// contributions (softmax, log-softmax, gathered action log-prob, in the
/// tape's descending node order) — replays the tape's rounding exactly, so
/// the returned loss and the emitted gradients are bit-identical to
/// building the graph and calling Tape::backward (pinned by
/// tests/test_backward_path.cpp).
double fused_ppo_loss_grad(const nn::Tensor& logits, const nn::Tensor& values,
                           const std::vector<std::size_t>& actions,
                           const std::vector<double>& old_logp,
                           const std::vector<double>& advantages,
                           const std::vector<double>& returns,
                           std::size_t divisor, const PpoConfig& config,
                           nn::Tensor& p, nn::Tensor& logp, nn::Tensor& dlogits,
                           nn::Tensor& dvalues);

/// Linear epsilon decay: start -> end over `decay_episodes`.
double epsilon_at(std::size_t episode, const PpoConfig& config);

}  // namespace tsc::rl
