#include "src/rl/normalizer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tsc::rl {

void RunningNormalizer::update(const std::vector<double>& obs) {
  assert(obs.size() == dim_);
  if (frozen_) return;
  ++count_;
  for (std::size_t i = 0; i < dim_; ++i) {
    const double delta = obs[i] - mean_[i];
    mean_[i] += delta / static_cast<double>(count_);
    m2_[i] += delta * (obs[i] - mean_[i]);
  }
}

double RunningNormalizer::stddev(std::size_t i) const {
  if (count_ < 2) return 1.0;
  return std::sqrt(std::max(m2_.at(i) / static_cast<double>(count_), 1e-8));
}

std::vector<double> RunningNormalizer::normalize(
    const std::vector<double>& obs) const {
  assert(obs.size() == dim_);
  std::vector<double> out(dim_);
  if (count_ < 2) return obs;
  for (std::size_t i = 0; i < dim_; ++i) {
    out[i] = std::clamp((obs[i] - mean_[i]) / stddev(i), -clip_, clip_);
  }
  return out;
}

std::vector<double> RunningNormalizer::update_and_normalize(
    const std::vector<double>& obs) {
  update(obs);
  return normalize(obs);
}

}  // namespace tsc::rl
