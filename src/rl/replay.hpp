// Fixed-capacity ring replay buffer (for DQN-style baselines).
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "src/util/rng.hpp"

namespace tsc::rl {

template <typename Transition>
class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
    assert(capacity > 0);
    storage_.reserve(capacity);
  }

  void push(Transition t) {
    if (storage_.size() < capacity_) {
      storage_.push_back(std::move(t));
    } else {
      storage_[next_] = std::move(t);
    }
    next_ = (next_ + 1) % capacity_;
  }

  std::size_t size() const { return storage_.size(); }
  bool empty() const { return storage_.empty(); }
  std::size_t capacity() const { return capacity_; }

  /// Uniform sample with replacement of `n` transitions.
  std::vector<const Transition*> sample(std::size_t n, Rng& rng) const {
    assert(!storage_.empty());
    std::vector<const Transition*> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      out.push_back(&storage_[rng.uniform_int(storage_.size())]);
    return out;
  }

  void clear() {
    storage_.clear();
    next_ = 0;
  }

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::vector<Transition> storage_;
};

}  // namespace tsc::rl
