#include "src/rl/ppo.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/nn/inference.hpp"

namespace tsc::rl {

nn::Var ppo_total_loss(nn::Tape& tape, nn::Var new_logp, nn::Var entropy,
                       nn::Var values, const std::vector<double>& old_logp,
                       const std::vector<double>& advantages,
                       const std::vector<double>& returns, const PpoConfig& config) {
  const std::size_t batch = old_logp.size();
  assert(advantages.size() == batch && returns.size() == batch);
  assert(tape.value(new_logp).rows() == batch && tape.value(new_logp).cols() == 1);
  assert(tape.value(values).rows() == batch && tape.value(values).cols() == 1);

  std::vector<double> old_logp_col(old_logp);
  nn::Var old_logp_node =
      tape.constant(nn::Tensor::matrix(batch, 1, std::move(old_logp_col)));
  std::vector<double> adv_col(advantages);
  nn::Var adv_node = tape.constant(nn::Tensor::matrix(batch, 1, std::move(adv_col)));

  // ratio = exp(logp_new - logp_old), clipped surrogate (Eq. 4).
  nn::Var ratio = tape.exp(tape.sub(new_logp, old_logp_node));
  nn::Var unclipped = tape.mul(ratio, adv_node);
  nn::Var clipped = tape.mul(
      tape.clamp(ratio, 1.0 - config.clip_eps, 1.0 + config.clip_eps), adv_node);
  nn::Var policy_objective = tape.mean(tape.min_elem(unclipped, clipped));

  std::vector<double> ret_col(returns);
  nn::Var ret_node = tape.constant(nn::Tensor::matrix(batch, 1, std::move(ret_col)));
  nn::Var value_loss = tape.mean(tape.square(tape.sub(values, ret_node)));

  nn::Var loss = tape.add(
      tape.neg(policy_objective),
      tape.sub(tape.scale(value_loss, config.value_coef),
               tape.scale(entropy, config.entropy_coef)));
  return loss;
}

nn::Var policy_entropy(nn::Tape& tape, nn::Var logits) {
  return policy_entropy_scaled(tape, logits, tape.value(logits).rows());
}

nn::Var policy_entropy_scaled(nn::Tape& tape, nn::Var logits, std::size_t divisor) {
  nn::Var logp = tape.log_softmax_rows(logits);
  nn::Var p = tape.softmax_rows(logits);
  // H = -mean_rows sum_a p*logp == -sum(p*logp)/divisor
  nn::Var plogp = tape.sum(tape.mul(p, logp));
  return tape.scale(plogp, -1.0 / static_cast<double>(divisor));
}

nn::Var ppo_shard_loss(nn::Tape& tape, nn::Var new_logp, nn::Var entropy,
                       nn::Var values, const std::vector<double>& old_logp,
                       const std::vector<double>& advantages,
                       const std::vector<double>& returns, std::size_t divisor,
                       const PpoConfig& config) {
  const std::size_t batch = old_logp.size();
  assert(divisor >= batch && divisor > 0);
  assert(advantages.size() == batch && returns.size() == batch);
  assert(tape.value(new_logp).rows() == batch && tape.value(new_logp).cols() == 1);
  assert(tape.value(values).rows() == batch && tape.value(values).cols() == 1);

  std::vector<double> old_logp_col(old_logp);
  nn::Var old_logp_node =
      tape.constant(nn::Tensor::matrix(batch, 1, std::move(old_logp_col)));
  std::vector<double> adv_col(advantages);
  nn::Var adv_node = tape.constant(nn::Tensor::matrix(batch, 1, std::move(adv_col)));

  nn::Var ratio = tape.exp(tape.sub(new_logp, old_logp_node));
  nn::Var unclipped = tape.mul(ratio, adv_node);
  nn::Var clipped = tape.mul(
      tape.clamp(ratio, 1.0 - config.clip_eps, 1.0 + config.clip_eps), adv_node);
  nn::Var policy_objective = tape.div_scalar(
      tape.sum(tape.min_elem(unclipped, clipped)), static_cast<double>(divisor));

  std::vector<double> ret_col(returns);
  nn::Var ret_node = tape.constant(nn::Tensor::matrix(batch, 1, std::move(ret_col)));
  nn::Var value_loss = tape.div_scalar(tape.sum(tape.square(tape.sub(values, ret_node))),
                                       static_cast<double>(divisor));

  nn::Var loss = tape.add(
      tape.neg(policy_objective),
      tape.sub(tape.scale(value_loss, config.value_coef),
               tape.scale(entropy, config.entropy_coef)));
  return loss;
}

double fused_ppo_loss_grad(const nn::Tensor& logits, const nn::Tensor& values,
                           const std::vector<std::size_t>& actions,
                           const std::vector<double>& old_logp,
                           const std::vector<double>& advantages,
                           const std::vector<double>& returns,
                           std::size_t divisor, const PpoConfig& config,
                           nn::Tensor& p, nn::Tensor& logp, nn::Tensor& dlogits,
                           nn::Tensor& dvalues) {
  const std::size_t rows = logits.rows();
  const std::size_t cols = logits.cols();
  assert(divisor >= rows && divisor > 0);
  assert(actions.size() == rows && old_logp.size() == rows);
  assert(advantages.size() == rows && returns.size() == rows);
  assert(values.rows() == rows && values.cols() == 1);

  nn::softmax_rows_into(p, logits);
  nn::log_softmax_rows_into(logp, logits);
  dlogits.reshape(rows, cols);
  dvalues.reshape(rows, 1);

  const double d = static_cast<double>(divisor);
  const double lo = 1.0 - config.clip_eps;
  const double hi = 1.0 + config.clip_eps;
  const double c_ent = -1.0 / d;
  const double* plp = logp.data();
  const double* pp = p.data();
  const double* pv = values.data();

  // ---- loss forward, rounding-for-rounding the tape graph's values ----
  // (ascending-row sums; each tensor op's intermediate rounded exactly
  // where the tape's node would round it).
  double po_sum = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    const double nl = plp[r * cols + actions[r]];
    const double ratio = std::exp(nl - old_logp[r]);
    const double u = ratio * advantages[r];
    const double cl = std::clamp(ratio, lo, hi) * advantages[r];
    po_sum += std::min(u, cl);
  }
  double ss = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    const double vs = pv[r] - returns[r];
    ss += vs * vs;
  }
  double plogp = 0.0;
  for (std::size_t i = 0; i < rows * cols; ++i) plogp += pp[i] * plp[i];
  const double entropy = plogp * c_ent;
  const double po = po_sum / d;
  const double vl = ss / d;
  const double loss =
      (po * -1.0) + ((vl * config.value_coef) - (entropy * config.entropy_coef));

  // ---- backward scalars, in the tape's descending node order ----
  // Every `0.0 +` is a tape node-grad seed (`grad += term` onto zeros): it
  // flushes -0.0 to +0.0 exactly where the tape would.
  const double g_se = 0.0 - 1.0;                        // sub backward
  const double g_e = 0.0 + config.entropy_coef * g_se;  // scale backward
  const double g_s = 0.0 + c_ent * g_e;
  const double g_m = 0.0 + g_s;                         // sum backward
  const double g_vl = 0.0 + config.value_coef * 1.0;
  const double g_ss = 0.0 + g_vl / d;                   // div_scalar backward
  const double g_po = 0.0 + -1.0 * 1.0;                 // neg (scale by -1)
  const double g_sm = 0.0 + g_po / d;

  const double g_sq = 0.0 + g_ss;  // sum backward, broadcast per row
  for (std::size_t r = 0; r < rows; ++r) {
    const double vs = pv[r] - returns[r];
    const double g_vs = 0.0 + 2.0 * g_sq * vs;  // square backward
    dvalues[r] = 0.0 + g_vs;                    // sub backward -> dV
  }

  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t a = actions[r];
    // Replay the surrogate chain's forward values for this row.
    const double nl = plp[r * cols + a];
    const double ratio = std::exp(nl - old_logp[r]);
    const double u = ratio * advantages[r];
    const double cl = std::clamp(ratio, lo, hi) * advantages[r];
    // min_elem -> mul/clamp/mul -> exp -> sub -> gather backward. The
    // ratio's two contributions land in the tape's order: the clamp
    // passthrough first (higher node index), then the unclipped product.
    const double g_mn = 0.0 + g_sm;
    double g_u = 0.0;
    double g_cl = 0.0;
    if (u < cl) {
      g_u += g_mn;
    } else if (cl < u) {
      g_cl += g_mn;
    } else {
      g_u += 0.5 * g_mn;
      g_cl += 0.5 * g_mn;
    }
    const double g_c = 0.0 + g_cl * advantages[r];
    double g_r = 0.0;
    if (ratio > lo && ratio < hi) g_r += g_c;
    g_r += g_u * advantages[r];
    const double g_sb = 0.0 + g_r * ratio;  // exp backward (y == ratio)
    const double g_nl = 0.0 + g_sb;
    // gather_cols scatters g_nl into one column of the action
    // log-softmax's grad; its row sum over that one-hot row is g_nl.
    const double g_sum1 = 0.0 + g_nl;

    // Entropy-term grads: the softmax node's backward runs first (highest
    // node index), then the entropy log-softmax, then the gathered one —
    // dlogits[rc] accumulates ((0 + t3) + t2) + t1 in that order.
    const double* lprow = plp + r * cols;
    const double* prow = pp + r * cols;
    double* drow = dlogits.data() + r * cols;
    double dot = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      const double g_p = 0.0 + g_m * lprow[c];  // mul backward -> softmax in
      dot += g_p * prow[c];
    }
    double g_sum2 = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      g_sum2 += 0.0 + g_m * prow[c];  // mul backward -> log-softmax in
    }
    for (std::size_t c = 0; c < cols; ++c) {
      const double g_p = 0.0 + g_m * lprow[c];
      const double g_lp = 0.0 + g_m * prow[c];
      const double ey = std::exp(lprow[c]);
      const double t3 = prow[c] * (g_p - dot);
      const double t2 = g_lp - ey * g_sum2;
      const double g1 = (c == a) ? g_nl : 0.0;
      const double t1 = g1 - ey * g_sum1;
      drow[c] = 0.0 + t3 + t2 + t1;
    }
  }
  return loss;
}

double epsilon_at(std::size_t episode, const PpoConfig& config) {
  if (config.epsilon_decay_episodes == 0) return config.epsilon_end;
  const double frac =
      std::min(1.0, static_cast<double>(episode) /
                        static_cast<double>(config.epsilon_decay_episodes));
  return config.epsilon_start + frac * (config.epsilon_end - config.epsilon_start);
}

}  // namespace tsc::rl
