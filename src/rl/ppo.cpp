#include "src/rl/ppo.hpp"

#include <cassert>

namespace tsc::rl {

nn::Var ppo_total_loss(nn::Tape& tape, nn::Var new_logp, nn::Var entropy,
                       nn::Var values, const std::vector<double>& old_logp,
                       const std::vector<double>& advantages,
                       const std::vector<double>& returns, const PpoConfig& config) {
  const std::size_t batch = old_logp.size();
  assert(advantages.size() == batch && returns.size() == batch);
  assert(tape.value(new_logp).rows() == batch && tape.value(new_logp).cols() == 1);
  assert(tape.value(values).rows() == batch && tape.value(values).cols() == 1);

  std::vector<double> old_logp_col(old_logp);
  nn::Var old_logp_node =
      tape.constant(nn::Tensor::matrix(batch, 1, std::move(old_logp_col)));
  std::vector<double> adv_col(advantages);
  nn::Var adv_node = tape.constant(nn::Tensor::matrix(batch, 1, std::move(adv_col)));

  // ratio = exp(logp_new - logp_old), clipped surrogate (Eq. 4).
  nn::Var ratio = tape.exp(tape.sub(new_logp, old_logp_node));
  nn::Var unclipped = tape.mul(ratio, adv_node);
  nn::Var clipped = tape.mul(
      tape.clamp(ratio, 1.0 - config.clip_eps, 1.0 + config.clip_eps), adv_node);
  nn::Var policy_objective = tape.mean(tape.min_elem(unclipped, clipped));

  std::vector<double> ret_col(returns);
  nn::Var ret_node = tape.constant(nn::Tensor::matrix(batch, 1, std::move(ret_col)));
  nn::Var value_loss = tape.mean(tape.square(tape.sub(values, ret_node)));

  nn::Var loss = tape.add(
      tape.neg(policy_objective),
      tape.sub(tape.scale(value_loss, config.value_coef),
               tape.scale(entropy, config.entropy_coef)));
  return loss;
}

nn::Var policy_entropy(nn::Tape& tape, nn::Var logits) {
  return policy_entropy_scaled(tape, logits, tape.value(logits).rows());
}

nn::Var policy_entropy_scaled(nn::Tape& tape, nn::Var logits, std::size_t divisor) {
  nn::Var logp = tape.log_softmax_rows(logits);
  nn::Var p = tape.softmax_rows(logits);
  // H = -mean_rows sum_a p*logp == -sum(p*logp)/divisor
  nn::Var plogp = tape.sum(tape.mul(p, logp));
  return tape.scale(plogp, -1.0 / static_cast<double>(divisor));
}

nn::Var ppo_shard_loss(nn::Tape& tape, nn::Var new_logp, nn::Var entropy,
                       nn::Var values, const std::vector<double>& old_logp,
                       const std::vector<double>& advantages,
                       const std::vector<double>& returns, std::size_t divisor,
                       const PpoConfig& config) {
  const std::size_t batch = old_logp.size();
  assert(divisor >= batch && divisor > 0);
  assert(advantages.size() == batch && returns.size() == batch);
  assert(tape.value(new_logp).rows() == batch && tape.value(new_logp).cols() == 1);
  assert(tape.value(values).rows() == batch && tape.value(values).cols() == 1);

  std::vector<double> old_logp_col(old_logp);
  nn::Var old_logp_node =
      tape.constant(nn::Tensor::matrix(batch, 1, std::move(old_logp_col)));
  std::vector<double> adv_col(advantages);
  nn::Var adv_node = tape.constant(nn::Tensor::matrix(batch, 1, std::move(adv_col)));

  nn::Var ratio = tape.exp(tape.sub(new_logp, old_logp_node));
  nn::Var unclipped = tape.mul(ratio, adv_node);
  nn::Var clipped = tape.mul(
      tape.clamp(ratio, 1.0 - config.clip_eps, 1.0 + config.clip_eps), adv_node);
  nn::Var policy_objective = tape.div_scalar(
      tape.sum(tape.min_elem(unclipped, clipped)), static_cast<double>(divisor));

  std::vector<double> ret_col(returns);
  nn::Var ret_node = tape.constant(nn::Tensor::matrix(batch, 1, std::move(ret_col)));
  nn::Var value_loss = tape.div_scalar(tape.sum(tape.square(tape.sub(values, ret_node))),
                                       static_cast<double>(divisor));

  nn::Var loss = tape.add(
      tape.neg(policy_objective),
      tape.sub(tape.scale(value_loss, config.value_coef),
               tape.scale(entropy, config.entropy_coef)));
  return loss;
}

double epsilon_at(std::size_t episode, const PpoConfig& config) {
  if (config.epsilon_decay_episodes == 0) return config.epsilon_end;
  const double frac =
      std::min(1.0, static_cast<double>(episode) /
                        static_cast<double>(config.epsilon_decay_episodes));
  return config.epsilon_start + frac * (config.epsilon_end - config.epsilon_start);
}

}  // namespace tsc::rl
