// Running observation/return normalization (Welford statistics shared
// across agents). Optional preprocessing in front of any policy network;
// particularly useful when transferring a policy between traffic regimes
// whose raw observation scales differ.
#pragma once

#include <cstddef>
#include <vector>

namespace tsc::rl {

class RunningNormalizer {
 public:
  explicit RunningNormalizer(std::size_t dim, double clip = 10.0)
      : dim_(dim), clip_(clip), mean_(dim, 0.0), m2_(dim, 0.0) {}

  std::size_t dim() const { return dim_; }
  std::size_t count() const { return count_; }

  /// Folds one observation into the running statistics.
  void update(const std::vector<double>& obs);

  /// (obs - mean) / std, clipped to [-clip, clip]. Identity until at least
  /// two samples were observed.
  std::vector<double> normalize(const std::vector<double>& obs) const;

  /// update() then normalize() - the common training-time call.
  std::vector<double> update_and_normalize(const std::vector<double>& obs);

  double mean(std::size_t i) const { return mean_.at(i); }
  double stddev(std::size_t i) const;

  /// Freezes statistics (evaluation mode): update() becomes a no-op.
  void freeze() { frozen_ = true; }
  void unfreeze() { frozen_ = false; }
  bool frozen() const { return frozen_; }

 private:
  std::size_t dim_;
  double clip_;
  std::size_t count_ = 0;
  bool frozen_ = false;
  std::vector<double> mean_;
  std::vector<double> m2_;
};

}  // namespace tsc::rl
