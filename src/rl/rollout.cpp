#include "src/rl/rollout.hpp"

#include <cmath>

namespace tsc::rl {

void RolloutBuffer::finish_agent(std::size_t agent, double bootstrap_value,
                                 double gamma, double lambda) {
  auto& samples = per_agent_.at(agent);
  std::vector<double> rewards, values;
  rewards.reserve(samples.size());
  values.reserve(samples.size());
  for (const Sample& s : samples) {
    rewards.push_back(s.reward);
    values.push_back(s.value);
  }
  const GaeResult gae = compute_gae(rewards, values, bootstrap_value, gamma, lambda);
  for (std::size_t t = 0; t < samples.size(); ++t) {
    samples[t].advantage = gae.advantages[t];
    samples[t].ret = gae.returns[t];
  }
}

std::size_t RolloutBuffer::total_samples() const {
  std::size_t n = 0;
  for (const auto& v : per_agent_) n += v.size();
  return n;
}

std::vector<const Sample*> RolloutBuffer::flatten(bool normalize_advantages) {
  std::vector<const Sample*> out;
  out.reserve(total_samples());
  for (auto& v : per_agent_)
    for (Sample& s : v) out.push_back(&s);
  if (normalize_advantages && out.size() > 1) {
    double mean = 0.0;
    for (const Sample* s : out) mean += s->advantage;
    mean /= static_cast<double>(out.size());
    double var = 0.0;
    for (const Sample* s : out) var += (s->advantage - mean) * (s->advantage - mean);
    var /= static_cast<double>(out.size());
    const double sd = std::sqrt(var);
    for (auto& v : per_agent_)
      for (Sample& s : v) {
        s.advantage -= mean;
        if (sd > 1e-8) s.advantage /= sd;
      }
  }
  return out;
}

}  // namespace tsc::rl
