// The paper's five traffic-flow patterns (Fig. 6) on a grid scenario.
//
// Patterns 1-4 combine two of four OD groups with time-staggered ramps that
// deliberately drive the network into oversaturation:
//   * forward flows ramp 0 -> peak over [0, 900 s], hold to 1800 s;
//   * reverse flows start at 900 s, ramp to peak at 1800 s, hold to 2700 s;
// so 16 OD pairs coexist during the overlap window, matching the paper's
// congestion-generation strategy (more intersecting OD pairs + staggered
// departures). Pattern 5 is the uniform light-traffic pattern: 300 veh/h
// west-east and 90 veh/h south-north, constant.
//
// Groups (each contributes 4 forward + 4 reverse ODs on a 6x6 grid). As in
// the paper's Fig. 6 (OD pairs like "F1 1-12" crossing the network), the
// entry and exit corridors are laterally shifted, so every route carries
// turning traffic through shared lanes (head-of-line blocking):
//   F1: vertical-ish (north terminal col c_i -> south terminal col c_{i+1})
//   F2: horizontal-ish (west row r_i -> east row r_{i+1})
//   F3: L-shaped west -> south (and reverse south -> west)
//   F4: L-shaped north -> east (and reverse east -> north)
// Pattern 1 = F1+F2 (the training pattern), 2 = F2+F3, 3 = F1+F4, 4 = F3+F4.
#pragma once

#include <vector>

#include "src/scenarios/grid.hpp"
#include "src/sim/flow.hpp"

namespace tsc::scenario {

enum class FlowPattern { kPattern1 = 1, kPattern2, kPattern3, kPattern4, kPattern5 };

struct FlowPatternConfig {
  double peak_veh_per_hour = 500.0;  ///< per-OD peak (patterns 1-4)
  double light_we_rate = 300.0;      ///< pattern 5 west-east rate
  double light_sn_rate = 90.0;       ///< pattern 5 south-north rate
  /// Multiplies every knot time; < 1 compresses the schedule so short
  /// episodes still see the ramp/overlap/recovery structure.
  double time_scale = 1.0;
};

/// Builds the OD flow set for `pattern` on `grid`. The grid must have at
/// least 4 rows and 4 columns (corridor selection uses spread positions).
std::vector<sim::FlowSpec> make_flow_pattern(const GridScenario& grid,
                                             FlowPattern pattern,
                                             const FlowPatternConfig& config = {});

/// Human-readable name ("Pattern 3").
const char* flow_pattern_name(FlowPattern pattern);

}  // namespace tsc::scenario
