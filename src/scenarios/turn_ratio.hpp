// Turn-ratio demand: instead of fixed origin-destination routes, vehicles
// enter at a boundary and turn randomly at each intersection according to
// per-turn-type ratios (the classic "10% left / 80% through / 10% right"
// demand spec of traffic engineering). Because the simulator executes
// fixed routes, this generator SAMPLES a route ensemble per entry and
// splits the entry rate across the samples - statistically equivalent at
// the link-flow level for memoryless turning.
#pragma once

#include <vector>

#include "src/sim/flow.hpp"
#include "src/sim/network.hpp"
#include "src/util/rng.hpp"

namespace tsc::scenario {

struct TurnRatios {
  double left = 0.1;
  double through = 0.8;
  double right = 0.1;

  double weight(sim::Turn turn) const {
    switch (turn) {
      case sim::Turn::kLeft: return left;
      case sim::Turn::kThrough: return through;
      case sim::Turn::kRight: return right;
    }
    return 0.0;
  }
};

/// Samples one random-walk route from `entry_link` to any boundary exit,
/// choosing movements by turn-type weight. Returns an empty vector if no
/// boundary is reached within `max_hops` (possible in pathological
/// networks; callers should resample).
std::vector<sim::LinkId> sample_turn_route(const sim::RoadNetwork& net,
                                           sim::LinkId entry_link,
                                           const TurnRatios& ratios, Rng& rng,
                                           std::size_t max_hops = 64);

/// Builds `samples_per_entry` sampled routes for each entry link, splitting
/// `rate_profile` evenly across the samples of one entry. Throws if an
/// entry cannot reach a boundary.
std::vector<sim::FlowSpec> make_turn_ratio_flows(
    const sim::RoadNetwork& net, const std::vector<sim::LinkId>& entry_links,
    const std::vector<sim::RateKnot>& rate_profile, const TurnRatios& ratios,
    std::size_t samples_per_entry, std::uint64_t seed);

}  // namespace tsc::scenario
