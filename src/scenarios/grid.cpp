#include "src/scenarios/grid.hpp"

#include <cmath>
#include <stdexcept>

namespace tsc::scenario {
namespace {

enum class Heading { kNorth, kEast, kSouth, kWest };

Heading heading_of(const sim::RoadNetwork& net, const sim::Link& link) {
  const auto& a = net.node(link.from);
  const auto& b = net.node(link.to);
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  if (std::abs(dx) >= std::abs(dy)) return dx >= 0.0 ? Heading::kEast : Heading::kWest;
  return dy >= 0.0 ? Heading::kNorth : Heading::kSouth;
}

/// Turn type when entering with heading `in` and leaving with heading `out`.
/// Same heading: through. 90 deg clockwise: right. 90 deg ccw: left.
sim::Turn classify_turn(Heading in, Heading out) {
  const int delta = (static_cast<int>(out) - static_cast<int>(in) + 4) % 4;
  switch (delta) {
    case 0: return sim::Turn::kThrough;
    case 1: return sim::Turn::kRight;  // N->E etc. (clockwise)
    case 3: return sim::Turn::kLeft;
    default: throw std::logic_error("classify_turn: U-turn not permitted");
  }
}

bool is_vertical(Heading h) { return h == Heading::kNorth || h == Heading::kSouth; }

}  // namespace

GridScenario::GridScenario(const GridConfig& config) : config_(config) {
  if (config_.rows == 0 || config_.cols == 0)
    throw std::invalid_argument("GridScenario: empty grid");
  build();
}

void GridScenario::build() {
  const std::size_t rows = config_.rows, cols = config_.cols;
  const double s = config_.spacing;

  interior_.resize(rows * cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      interior_[r * cols + c] = net_.add_node(
          sim::NodeType::kSignalized, static_cast<double>(c) * s,
          -static_cast<double>(r) * s,
          "I(" + std::to_string(r) + "," + std::to_string(c) + ")");

  west_.resize(rows);
  east_.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    west_[r] = net_.add_node(sim::NodeType::kBoundary, -s,
                             -static_cast<double>(r) * s, "W" + std::to_string(r));
    east_[r] = net_.add_node(sim::NodeType::kBoundary, static_cast<double>(cols) * s,
                             -static_cast<double>(r) * s, "E" + std::to_string(r));
  }
  north_.resize(cols);
  south_.resize(cols);
  for (std::size_t c = 0; c < cols; ++c) {
    north_[c] = net_.add_node(sim::NodeType::kBoundary, static_cast<double>(c) * s, s,
                              "N" + std::to_string(c));
    south_[c] = net_.add_node(sim::NodeType::kBoundary, static_cast<double>(c) * s,
                              -static_cast<double>(rows) * s, "S" + std::to_string(c));
  }

  auto connect = [&](sim::NodeId a, sim::NodeId b, std::uint32_t lanes) {
    const sim::LinkId ab = net_.add_link(a, b, s, lanes, config_.speed);
    const sim::LinkId ba = net_.add_link(b, a, s, lanes, config_.speed);
    link_map_[{a, b}] = ab;
    link_map_[{b, a}] = ba;
  };

  // Horizontal arterials (west-east) and vertical avenues (north-south).
  for (std::size_t r = 0; r < rows; ++r) {
    connect(west_[r], intersection(r, 0), config_.arterial_lanes);
    for (std::size_t c = 0; c + 1 < cols; ++c)
      connect(intersection(r, c), intersection(r, c + 1), config_.arterial_lanes);
    connect(intersection(r, cols - 1), east_[r], config_.arterial_lanes);
  }
  for (std::size_t c = 0; c < cols; ++c) {
    connect(north_[c], intersection(0, c), config_.avenue_lanes);
    for (std::size_t r = 0; r + 1 < rows; ++r)
      connect(intersection(r, c), intersection(r + 1, c), config_.avenue_lanes);
    connect(intersection(rows - 1, c), south_[c], config_.avenue_lanes);
  }

  // Movements + four-phase plans at every interior node.
  for (sim::NodeId node_id : interior_) {
    const sim::Node& node = net_.node(node_id);
    std::vector<sim::MovementId> ns_through_right, ns_left, ew_through_right, ew_left;
    for (sim::LinkId in_id : node.in_links) {
      const sim::Link in_link = net_.link(in_id);
      const Heading in_heading = heading_of(net_, in_link);
      for (sim::LinkId out_id : node.out_links) {
        const sim::Link out_link = net_.link(out_id);
        if (out_link.to == in_link.from) continue;  // no U-turns
        const Heading out_heading = heading_of(net_, out_link);
        const sim::Turn turn = classify_turn(in_heading, out_heading);
        // Lane policy: single-lane links share everything; two-lane links
        // dedicate lane 0 (inner/left) to left turns, lane 1 to through+right.
        std::vector<std::uint32_t> lanes;
        if (in_link.lanes == 1) {
          lanes = {0};
        } else if (turn == sim::Turn::kLeft) {
          lanes = {0};
        } else {
          lanes = {in_link.lanes - 1};
        }
        const sim::MovementId mid = net_.add_movement(in_id, out_id, turn, lanes);
        const bool vertical = is_vertical(in_heading);
        if (turn == sim::Turn::kLeft) {
          (vertical ? ns_left : ew_left).push_back(mid);
        } else {
          (vertical ? ns_through_right : ew_through_right).push_back(mid);
        }
      }
    }
    net_.set_phases(node_id, {ns_through_right, ns_left, ew_through_right, ew_left});
  }

  net_.finalize();
}

sim::NodeId GridScenario::intersection(std::size_t row, std::size_t col) const {
  if (row >= config_.rows || col >= config_.cols)
    throw std::out_of_range("GridScenario::intersection");
  return interior_[row * config_.cols + col];
}

sim::NodeId GridScenario::west_terminal(std::size_t row) const { return west_.at(row); }
sim::NodeId GridScenario::east_terminal(std::size_t row) const { return east_.at(row); }
sim::NodeId GridScenario::north_terminal(std::size_t col) const { return north_.at(col); }
sim::NodeId GridScenario::south_terminal(std::size_t col) const { return south_.at(col); }

sim::LinkId GridScenario::link_between(sim::NodeId a, sim::NodeId b) const {
  const auto it = link_map_.find({a, b});
  if (it == link_map_.end()) throw std::invalid_argument("link_between: not adjacent");
  return it->second;
}

std::vector<sim::LinkId> GridScenario::route(sim::NodeId from_terminal,
                                             sim::NodeId to_terminal) const {
  const sim::Node& from = net_.node(from_terminal);
  if (from.type != sim::NodeType::kBoundary || from.out_links.empty())
    throw std::invalid_argument("route: source is not a boundary terminal");
  auto r = net_.shortest_route(from.out_links.front(), to_terminal);
  if (r.empty()) throw std::invalid_argument("route: unreachable terminal");
  return r;
}

}  // namespace tsc::scenario
