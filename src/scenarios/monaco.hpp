// Synthetic stand-in for the paper's Monaco scenario (section VI-D).
//
// The paper trains on a real SUMO import of Monaco: 30 signalized
// intersections with heterogeneous lane configurations and per-intersection
// phase sets, loaded with conflicting flows peaking at 975 veh/h. That data
// is not redistributable, so this builder synthesizes a network with the
// same properties the experiment depends on:
//   * 30 signalized intersections with irregular (jittered) geometry,
//   * irregular topology (a connected backbone with ~25% of edges removed),
//   * heterogeneous lane counts (1-2) per street,
//   * heterogeneous per-intersection phase sets (split phasing: one phase
//     per approach, so 2-4 phases depending on degree),
//   * boundary terminals on the perimeter and staggered conflicting OD
//     flows with a configurable peak rate.
// Because intersections differ structurally, agents cannot share parameters
// here - exactly the condition the paper evaluates.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/flow.hpp"
#include "src/sim/network.hpp"

namespace tsc::scenario {

struct MonacoConfig {
  std::size_t grid_rows = 6;
  std::size_t grid_cols = 5;   ///< rows*cols = 30 signalized intersections
  double spacing = 150.0;
  double jitter = 40.0;        ///< positional jitter (m)
  double drop_fraction = 0.25; ///< fraction of interior edges to remove
  double speed = 11.11;        ///< 40 km/h urban speed
  std::uint64_t seed = 7;
};

class MonacoScenario {
 public:
  explicit MonacoScenario(const MonacoConfig& config);
  MonacoScenario() : MonacoScenario(MonacoConfig{}) {}

  const sim::RoadNetwork& net() const { return net_; }
  const MonacoConfig& config() const { return config_; }
  const std::vector<sim::NodeId>& terminals() const { return terminals_; }

  /// Staggered conflicting OD flows between random terminal pairs.
  /// `peak_veh_per_hour` defaults to the paper's 975; `time_scale`
  /// compresses the schedule; `num_od_pairs` OD pairs each get a forward
  /// and a (staggered) reverse flow.
  std::vector<sim::FlowSpec> make_flows(double peak_veh_per_hour = 975.0,
                                        double time_scale = 1.0,
                                        std::size_t num_od_pairs = 6,
                                        std::uint64_t seed = 13) const;

 private:
  void build();

  MonacoConfig config_;
  sim::RoadNetwork net_;
  std::vector<sim::NodeId> interior_;
  std::vector<sim::NodeId> terminals_;
};

}  // namespace tsc::scenario
