// Synthetic N x M signalized grid (paper section VI-A).
//
// Geometry follows the paper: 200 m spacing; horizontal (west-east) streets
// are two-lane arterials where the left lane is left-turn only and the right
// lane serves through + right; vertical (north-south) avenues have a single
// shared lane for all three movements (head-of-line blocking). Every
// interior node runs the four-phase plan of Fig. 3:
//   phase 0: north-south through + right     phase 1: north-south left
//   phase 2: west-east through + right       phase 3: west-east left
// Boundary terminals ring the grid and source/sink all traffic.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "src/sim/network.hpp"

namespace tsc::scenario {

struct GridConfig {
  std::size_t rows = 6;
  std::size_t cols = 6;
  double spacing = 200.0;          ///< meters between intersections
  std::uint32_t arterial_lanes = 2;///< west-east streets
  std::uint32_t avenue_lanes = 1;  ///< north-south avenues
  double speed = 13.89;            ///< m/s (50 km/h)
};

class GridScenario {
 public:
  explicit GridScenario(const GridConfig& config);

  const sim::RoadNetwork& net() const { return net_; }
  const GridConfig& config() const { return config_; }
  std::size_t rows() const { return config_.rows; }
  std::size_t cols() const { return config_.cols; }

  /// Interior intersection at grid position (row, col); row 0 is north.
  sim::NodeId intersection(std::size_t row, std::size_t col) const;
  /// Boundary terminals.
  sim::NodeId west_terminal(std::size_t row) const;
  sim::NodeId east_terminal(std::size_t row) const;
  sim::NodeId north_terminal(std::size_t col) const;
  sim::NodeId south_terminal(std::size_t col) const;

  /// Directed link from node `a` to adjacent node `b`; throws if absent.
  sim::LinkId link_between(sim::NodeId a, sim::NodeId b) const;

  /// Route along the shortest path from a boundary terminal's outgoing link
  /// to another boundary terminal; throws if unreachable.
  std::vector<sim::LinkId> route(sim::NodeId from_terminal,
                                 sim::NodeId to_terminal) const;

 private:
  void build();

  GridConfig config_;
  sim::RoadNetwork net_;
  std::vector<sim::NodeId> interior_;  // rows*cols
  std::vector<sim::NodeId> west_, east_, north_, south_;
  std::map<std::pair<sim::NodeId, sim::NodeId>, sim::LinkId> link_map_;
};

}  // namespace tsc::scenario
