#include "src/scenarios/flow_patterns.hpp"

#include <cmath>
#include <stdexcept>

namespace tsc::scenario {
namespace {

/// Four spread positions over [0, n-1] (e.g. {0, 2, 3, 5} for n == 6).
std::vector<std::size_t> corridor_positions(std::size_t n) {
  if (n < 4) throw std::invalid_argument("flow pattern: grid must be at least 4x4");
  std::vector<std::size_t> out;
  for (int i = 0; i < 4; ++i) {
    const auto p = static_cast<std::size_t>(
        std::lround(static_cast<double>(i) * static_cast<double>(n - 1) / 3.0));
    if (out.empty() || out.back() != p) out.push_back(p);
  }
  // n >= 4 guarantees 4 distinct positions.
  return out;
}

std::vector<sim::RateKnot> scale_times(std::vector<sim::RateKnot> knots, double s) {
  for (auto& k : knots) k.t_seconds *= s;
  return knots;
}

sim::FlowSpec make_flow(const GridScenario& grid, sim::NodeId from, sim::NodeId to,
                        std::vector<sim::RateKnot> profile) {
  sim::FlowSpec f;
  f.route = grid.route(from, to);
  f.profile = std::move(profile);
  return f;
}

}  // namespace

std::vector<sim::FlowSpec> make_flow_pattern(const GridScenario& grid,
                                             FlowPattern pattern,
                                             const FlowPatternConfig& config) {
  const double peak = config.peak_veh_per_hour;
  const double ts = config.time_scale;
  // Forward wave: ramp to peak at 900 s, hold to 1800 s. Reverse wave:
  // starts at 900 s, peaks at 1800 s, holds to 2700 s (paper section VI-A).
  const auto fwd = scale_times({{0.0, 0.0}, {900.0, peak}, {1800.0, peak}}, ts);
  const auto rev = scale_times({{900.0, 0.0}, {1800.0, peak}, {2700.0, peak}}, ts);

  const auto rows_sel = corridor_positions(grid.rows());
  const auto cols_sel = corridor_positions(grid.cols());

  std::vector<sim::FlowSpec> flows;
  auto add_group = [&](char group) {
    for (std::size_t i = 0; i < 4; ++i) {
      const std::size_t r = rows_sel[i];
      const std::size_t c = cols_sel[i];
      // Half the OD pairs exit on a laterally shifted corridor, so routes
      // turn mid-network and exercise the left/right phases (paper Fig. 6
      // shows both straight and crossing OD arrows); the rest run straight,
      // keeping the corridors' through-bands dominant.
      const bool shifted = (i % 2) == 1;
      const std::size_t r2 = shifted ? rows_sel[(i + 1) % 4] : r;
      const std::size_t c2 = shifted ? cols_sel[(i + 1) % 4] : c;
      switch (group) {
        case '1':  // vertical-ish, shifted exit column
          flows.push_back(make_flow(grid, grid.north_terminal(c),
                                    grid.south_terminal(c2), fwd));
          flows.push_back(make_flow(grid, grid.south_terminal(c),
                                    grid.north_terminal(c2), rev));
          break;
        case '2':  // horizontal-ish, shifted exit row
          flows.push_back(make_flow(grid, grid.west_terminal(r),
                                    grid.east_terminal(r2), fwd));
          flows.push_back(make_flow(grid, grid.east_terminal(r),
                                    grid.west_terminal(r2), rev));
          break;
        case '3':  // L-shaped: west in, south out
          flows.push_back(make_flow(grid, grid.west_terminal(r),
                                    grid.south_terminal(c), fwd));
          flows.push_back(make_flow(grid, grid.south_terminal(c),
                                    grid.west_terminal(r), rev));
          break;
        case '4':  // L-shaped: north in, east out
          flows.push_back(make_flow(grid, grid.north_terminal(c),
                                    grid.east_terminal(r), fwd));
          flows.push_back(make_flow(grid, grid.east_terminal(r),
                                    grid.north_terminal(c), rev));
          break;
        default:
          throw std::logic_error("unknown flow group");
      }
    }
  };

  switch (pattern) {
    case FlowPattern::kPattern1:
      add_group('1');
      add_group('2');
      break;
    case FlowPattern::kPattern2:
      add_group('2');
      add_group('3');
      break;
    case FlowPattern::kPattern3:
      add_group('1');
      add_group('4');
      break;
    case FlowPattern::kPattern4:
      add_group('3');
      add_group('4');
      break;
    case FlowPattern::kPattern5: {
      const auto light_we =
          scale_times({{0.0, config.light_we_rate}, {3600.0, config.light_we_rate}}, ts);
      const auto light_sn =
          scale_times({{0.0, config.light_sn_rate}, {3600.0, config.light_sn_rate}}, ts);
      for (std::size_t r = 0; r < grid.rows(); ++r)
        flows.push_back(
            make_flow(grid, grid.west_terminal(r), grid.east_terminal(r), light_we));
      for (std::size_t c = 0; c < grid.cols(); ++c)
        flows.push_back(
            make_flow(grid, grid.south_terminal(c), grid.north_terminal(c), light_sn));
      break;
    }
  }
  return flows;
}

const char* flow_pattern_name(FlowPattern pattern) {
  switch (pattern) {
    case FlowPattern::kPattern1: return "Pattern 1";
    case FlowPattern::kPattern2: return "Pattern 2";
    case FlowPattern::kPattern3: return "Pattern 3";
    case FlowPattern::kPattern4: return "Pattern 4";
    case FlowPattern::kPattern5: return "Pattern 5";
  }
  return "?";
}

}  // namespace tsc::scenario
