#include "src/scenarios/turn_ratio.hpp"

#include <stdexcept>

namespace tsc::scenario {

std::vector<sim::LinkId> sample_turn_route(const sim::RoadNetwork& net,
                                           sim::LinkId entry_link,
                                           const TurnRatios& ratios, Rng& rng,
                                           std::size_t max_hops) {
  std::vector<sim::LinkId> route = {entry_link};
  sim::LinkId current = entry_link;
  for (std::size_t hop = 0; hop < max_hops; ++hop) {
    const sim::Link& link = net.link(current);
    if (net.node(link.to).type == sim::NodeType::kBoundary) return route;
    const auto& movements = link.out_movements;
    if (movements.empty()) return {};  // dead end
    std::vector<double> weights(movements.size());
    double total = 0.0;
    for (std::size_t m = 0; m < movements.size(); ++m) {
      weights[m] = ratios.weight(net.movement(movements[m]).turn);
      total += weights[m];
    }
    std::size_t pick;
    if (total <= 0.0) {
      pick = rng.uniform_int(movements.size());  // all-zero ratios: uniform
    } else {
      pick = rng.categorical(weights);
    }
    current = net.movement(movements[pick]).to_link;
    route.push_back(current);
  }
  return {};  // wandered too long without exiting
}

std::vector<sim::FlowSpec> make_turn_ratio_flows(
    const sim::RoadNetwork& net, const std::vector<sim::LinkId>& entry_links,
    const std::vector<sim::RateKnot>& rate_profile, const TurnRatios& ratios,
    std::size_t samples_per_entry, std::uint64_t seed) {
  if (samples_per_entry == 0)
    throw std::invalid_argument("make_turn_ratio_flows: zero samples");
  Rng rng(seed);
  std::vector<sim::FlowSpec> flows;
  for (sim::LinkId entry : entry_links) {
    std::size_t produced = 0;
    std::size_t attempts = 0;
    while (produced < samples_per_entry) {
      if (++attempts > samples_per_entry * 50)
        throw std::runtime_error(
            "make_turn_ratio_flows: entry link cannot reach a boundary");
      auto route = sample_turn_route(net, entry, ratios, rng);
      if (route.empty()) continue;
      sim::FlowSpec f;
      f.route = std::move(route);
      f.profile = rate_profile;
      for (auto& knot : f.profile)
        knot.rate_veh_per_hour /= static_cast<double>(samples_per_entry);
      flows.push_back(std::move(f));
      ++produced;
    }
  }
  return flows;
}

}  // namespace tsc::scenario
