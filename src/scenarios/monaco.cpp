#include "src/scenarios/monaco.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numbers>
#include <set>
#include <stdexcept>

#include "src/util/rng.hpp"

namespace tsc::scenario {
namespace {

struct Edge {
  std::size_t a, b;  // interior node indices
};

/// Connectivity check over an undirected adjacency list.
bool connected(std::size_t n, const std::vector<std::set<std::size_t>>& adj) {
  if (n == 0) return true;
  std::vector<bool> seen(n, false);
  std::vector<std::size_t> stack = {0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    for (std::size_t v : adj[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == n;
}

}  // namespace

MonacoScenario::MonacoScenario(const MonacoConfig& config) : config_(config) {
  if (config_.grid_rows < 2 || config_.grid_cols < 2)
    throw std::invalid_argument("MonacoScenario: grid too small");
  build();
}

void MonacoScenario::build() {
  Rng rng(config_.seed);
  const std::size_t rows = config_.grid_rows, cols = config_.grid_cols;
  const std::size_t n = rows * cols;
  const double s = config_.spacing;

  // Jittered node positions.
  std::vector<std::pair<double, double>> pos(n);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      pos[r * cols + c] = {
          static_cast<double>(c) * s + rng.uniform(-config_.jitter, config_.jitter),
          -static_cast<double>(r) * s + rng.uniform(-config_.jitter, config_.jitter)};
    }
  }

  // Backbone edges (grid adjacency), then drop a fraction while keeping the
  // graph connected and every node at degree >= 2.
  std::vector<Edge> edges;
  auto idx = [&](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({idx(r, c), idx(r, c + 1)});
      if (r + 1 < rows) edges.push_back({idx(r, c), idx(r + 1, c)});
    }
  std::vector<std::set<std::size_t>> adj(n);
  for (const Edge& e : edges) {
    adj[e.a].insert(e.b);
    adj[e.b].insert(e.a);
  }
  const auto target_drop =
      static_cast<std::size_t>(config_.drop_fraction * static_cast<double>(edges.size()));
  // Shuffle candidate order deterministically.
  std::vector<std::size_t> order(edges.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.uniform_int(i)]);
  std::set<std::size_t> dropped;
  for (std::size_t cand : order) {
    if (dropped.size() >= target_drop) break;
    const Edge& e = edges[cand];
    if (adj[e.a].size() <= 2 || adj[e.b].size() <= 2) continue;
    adj[e.a].erase(e.b);
    adj[e.b].erase(e.a);
    if (connected(n, adj)) {
      dropped.insert(cand);
    } else {
      adj[e.a].insert(e.b);
      adj[e.b].insert(e.a);
    }
  }

  // Create nodes.
  interior_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    interior_[i] = net_.add_node(sim::NodeType::kSignalized, pos[i].first,
                                 pos[i].second, "M" + std::to_string(i));

  // Terminals on the perimeter: every second perimeter node gets one.
  std::vector<std::pair<std::size_t, std::pair<double, double>>> perimeter;
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      if (r != 0 && r != rows - 1 && c != 0 && c != cols - 1) continue;
      double dx = 0.0, dy = 0.0;
      if (r == 0) dy += s;
      if (r == rows - 1) dy -= s;
      if (c == 0) dx -= s;
      if (c == cols - 1) dx += s;
      perimeter.push_back({idx(r, c), {pos[idx(r, c)].first + dx,
                                       pos[idx(r, c)].second + dy}});
    }
  std::map<std::size_t, sim::NodeId> terminal_of;  // interior idx -> terminal
  for (std::size_t i = 0; i < perimeter.size(); i += 2) {
    const auto& [node_idx, tpos] = perimeter[i];
    const sim::NodeId t = net_.add_node(sim::NodeType::kBoundary, tpos.first,
                                        tpos.second, "T" + std::to_string(i / 2));
    terminals_.push_back(t);
    terminal_of[node_idx] = t;
  }

  // Links: heterogeneous lane counts per street (same both directions).
  auto connect = [&](sim::NodeId a, sim::NodeId b, std::uint32_t lanes) {
    const auto& na = net_.node(a);
    const auto& nb = net_.node(b);
    const double len = std::max(
        50.0, std::hypot(nb.x - na.x, nb.y - na.y));
    net_.add_link(a, b, len, lanes, config_.speed);
    net_.add_link(b, a, len, lanes, config_.speed);
  };
  for (std::size_t u = 0; u < n; ++u)
    for (std::size_t v : adj[u])
      if (u < v) connect(interior_[u], interior_[v],
                         rng.bernoulli(0.4) ? 2u : 1u);
  for (const auto& [node_idx, t] : terminal_of)
    connect(interior_[node_idx], t, rng.bernoulli(0.3) ? 2u : 1u);

  // Movements: every in-link to every out-link except U-turns; turn type by
  // heading change; two-lane approaches dedicate lane 0 to left turns.
  for (sim::NodeId node_id : interior_) {
    const sim::Node& node = net_.node(node_id);
    std::vector<std::vector<sim::MovementId>> phases;
    for (sim::LinkId in_id : node.in_links) {
      const sim::Link in_link = net_.link(in_id);
      const auto& from = net_.node(in_link.from);
      const double in_angle = std::atan2(node.y - from.y, node.x - from.x);
      std::vector<sim::MovementId> approach_movements;
      for (sim::LinkId out_id : node.out_links) {
        const sim::Link out_link = net_.link(out_id);
        if (out_link.to == in_link.from) continue;  // no U-turn
        const auto& to = net_.node(out_link.to);
        const double out_angle = std::atan2(to.y - node.y, to.x - node.x);
        double delta = out_angle - in_angle;
        while (delta > std::numbers::pi) delta -= 2.0 * std::numbers::pi;
        while (delta < -std::numbers::pi) delta += 2.0 * std::numbers::pi;
        sim::Turn turn = sim::Turn::kThrough;
        if (delta > std::numbers::pi / 4.0) turn = sim::Turn::kLeft;
        else if (delta < -std::numbers::pi / 4.0) turn = sim::Turn::kRight;
        std::vector<std::uint32_t> lanes;
        if (in_link.lanes == 1) {
          lanes = {0};
        } else if (turn == sim::Turn::kLeft) {
          lanes = {0};
        } else {
          lanes = {in_link.lanes - 1};
        }
        approach_movements.push_back(net_.add_movement(in_id, out_id, turn, lanes));
      }
      if (!approach_movements.empty()) phases.push_back(std::move(approach_movements));
    }
    // Split phasing: one phase per approach -> 2-4 phases by node degree.
    net_.set_phases(node_id, std::move(phases));
  }

  net_.finalize();
}

std::vector<sim::FlowSpec> MonacoScenario::make_flows(double peak_veh_per_hour,
                                                      double time_scale,
                                                      std::size_t num_od_pairs,
                                                      std::uint64_t seed) const {
  if (terminals_.size() < 2)
    throw std::logic_error("MonacoScenario: not enough terminals");
  Rng rng(seed);
  auto scale = [&](std::vector<sim::RateKnot> knots) {
    for (auto& k : knots) k.t_seconds *= time_scale;
    return knots;
  };
  const auto fwd = scale({{0.0, 0.0}, {600.0, peak_veh_per_hour},
                          {1500.0, peak_veh_per_hour}});
  const auto rev = scale({{600.0, 0.0}, {1500.0, peak_veh_per_hour},
                          {2100.0, peak_veh_per_hour}});
  std::vector<sim::FlowSpec> flows;
  std::set<std::pair<sim::NodeId, sim::NodeId>> used;
  std::size_t attempts = 0;
  while (flows.size() < 2 * num_od_pairs && attempts < 500) {
    ++attempts;
    const sim::NodeId a = terminals_[rng.uniform_int(terminals_.size())];
    const sim::NodeId b = terminals_[rng.uniform_int(terminals_.size())];
    if (a == b || used.count({a, b})) continue;
    const auto& na = net_.node(a);
    const auto route_ab = net_.shortest_route(na.out_links.front(), b);
    const auto& nb = net_.node(b);
    const auto route_ba = net_.shortest_route(nb.out_links.front(), a);
    if (route_ab.empty() || route_ba.empty() || route_ab.size() < 3) continue;
    used.insert({a, b});
    used.insert({b, a});
    sim::FlowSpec f1;
    f1.route = route_ab;
    f1.profile = fwd;
    flows.push_back(std::move(f1));
    sim::FlowSpec f2;
    f2.route = route_ba;
    f2.profile = rev;
    flows.push_back(std::move(f2));
  }
  if (flows.size() < 2 * num_od_pairs)
    throw std::runtime_error("MonacoScenario: could not find enough OD routes");
  return flows;
}

}  // namespace tsc::scenario
