// Movement conflict analysis: detects whether two turning movements cross
// paths inside an intersection, and audits phase tables for conflicting
// green pairs. Used to validate generated scenarios (a phase that greens
// two crossing movements would be a safety violation in the real world,
// even though the queue-level simulator cannot collide vehicles).
//
// Geometry: each movement is approximated by the straight segment from its
// entry point (where the incoming link meets the node) to its exit point
// (where the outgoing link leaves it). Two movements conflict if these
// segments properly intersect; movements sharing the incoming link (lane
// fan-out) or the outgoing link (merge) are considered compatible, as is
// standard in signal phasing (merges are yields, not crossings).
#pragma once

#include <utility>
#include <vector>

#include "src/sim/network.hpp"

namespace tsc::sim {

/// True if the two movements (at the same node) cross paths.
bool movements_conflict(const RoadNetwork& net, MovementId a, MovementId b);

/// All conflicting movement pairs that some phase of `node` greens
/// simultaneously. Empty means the node's phase table is conflict-free.
std::vector<std::pair<MovementId, MovementId>> phase_conflicts(
    const RoadNetwork& net, NodeId node);

/// Audits every signalized node; returns (node, movement pair) violations.
struct ConflictViolation {
  NodeId node;
  MovementId first;
  MovementId second;
};
std::vector<ConflictViolation> audit_phase_conflicts(const RoadNetwork& net);

}  // namespace tsc::sim
