#include "src/sim/scenario_io.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "src/util/parse.hpp"

namespace tsc::sim {
namespace {

const char* type_name(NodeType type) {
  switch (type) {
    case NodeType::kSignalized: return "signalized";
    case NodeType::kUnsignalized: return "unsignalized";
    case NodeType::kBoundary: return "boundary";
  }
  return "?";
}

const char* turn_name(Turn turn) {
  switch (turn) {
    case Turn::kLeft: return "left";
    case Turn::kThrough: return "through";
    case Turn::kRight: return "right";
  }
  return "?";
}

NodeType parse_type(const std::string& s, std::size_t line) {
  if (s == "signalized") return NodeType::kSignalized;
  if (s == "unsignalized") return NodeType::kUnsignalized;
  if (s == "boundary") return NodeType::kBoundary;
  throw std::runtime_error("scenario line " + std::to_string(line) +
                           ": unknown node type '" + s + "'");
}

Turn parse_turn(const std::string& s, std::size_t line) {
  if (s == "left") return Turn::kLeft;
  if (s == "through") return Turn::kThrough;
  if (s == "right") return Turn::kRight;
  throw std::runtime_error("scenario line " + std::to_string(line) +
                           ": unknown turn '" + s + "'");
}

/// Splits "a,b,c" into numeric tokens.
template <typename T, typename Parse>
std::vector<T> parse_list(const std::string& s, std::size_t line, Parse parse) {
  std::vector<T> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty())
      throw std::runtime_error("scenario line " + std::to_string(line) +
                               ": empty list element in '" + s + "'");
    out.push_back(parse(item));
  }
  if (out.empty())
    throw std::runtime_error("scenario line " + std::to_string(line) +
                             ": empty list");
  return out;
}

std::uint32_t parse_u32(const std::string& s) {
  return static_cast<std::uint32_t>(std::stoul(s));
}

}  // namespace

void write_scenario(const RoadNetwork& net, const std::vector<FlowSpec>& flows,
                    std::ostream& out) {
  out << "# tsc scenario file\n";
  for (const Node& n : net.nodes()) {
    out << "node " << type_name(n.type) << ' ' << n.x << ' ' << n.y;
    if (!n.name.empty()) out << ' ' << n.name;
    out << '\n';
  }
  for (const Link& l : net.links()) {
    out << "link " << l.from << ' ' << l.to << ' ' << l.length << ' ' << l.lanes
        << ' ' << l.speed;
    if (!l.name.empty()) out << ' ' << l.name;
    out << '\n';
  }
  for (const Movement& m : net.movements()) {
    out << "movement " << m.from_link << ' ' << m.to_link << ' '
        << turn_name(m.turn) << ' ';
    for (std::size_t i = 0; i < m.allowed_lanes.size(); ++i) {
      if (i) out << ',';
      out << m.allowed_lanes[i];
    }
    out << '\n';
  }
  for (const Node& n : net.nodes()) {
    if (n.phases.empty()) continue;
    out << "phases " << n.id;
    for (const auto& phase : n.phases) {
      out << ' ';
      for (std::size_t i = 0; i < phase.size(); ++i) {
        if (i) out << ',';
        out << phase[i];
      }
    }
    out << '\n';
  }
  for (const FlowSpec& f : flows) {
    out << "flow ";
    for (std::size_t i = 0; i < f.route.size(); ++i) {
      if (i) out << ',';
      out << f.route[i];
    }
    out << ' ';
    for (std::size_t i = 0; i < f.profile.size(); ++i) {
      if (i) out << ',';
      out << f.profile[i].t_seconds << ':' << f.profile[i].rate_veh_per_hour;
    }
    out << '\n';
  }
}

void save_scenario(const RoadNetwork& net, const std::vector<FlowSpec>& flows,
                   const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("save_scenario: cannot open " + path);
  write_scenario(net, flows, out);
  if (!out) throw std::runtime_error("save_scenario: write failed for " + path);
}

Scenario read_scenario(std::istream& in) {
  Scenario scenario;
  std::string line;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& message) -> std::runtime_error {
    return std::runtime_error("scenario line " + std::to_string(line_no) + ": " +
                              message);
  };

  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;  // blank line

    try {
      if (keyword == "node") {
        std::string type;
        double x = 0.0, y = 0.0;
        std::string name;
        if (!(ls >> type >> x >> y)) throw fail("expected: node <type> <x> <y>");
        ls >> name;  // optional
        scenario.net.add_node(parse_type(type, line_no), x, y, name);
      } else if (keyword == "link") {
        NodeId from = 0, to = 0;
        double length = 0.0, speed = 0.0;
        std::uint32_t lanes = 0;
        std::string name;
        if (!(ls >> from >> to >> length >> lanes >> speed))
          throw fail("expected: link <from> <to> <length> <lanes> <speed>");
        ls >> name;
        scenario.net.add_link(from, to, length, lanes, speed, name);
      } else if (keyword == "movement") {
        LinkId from = 0, to = 0;
        std::string turn, lanes;
        if (!(ls >> from >> to >> turn >> lanes))
          throw fail("expected: movement <from_link> <to_link> <turn> <lanes>");
        scenario.net.add_movement(from, to, parse_turn(turn, line_no),
                                  parse_list<std::uint32_t>(lanes, line_no,
                                                            parse_u32));
      } else if (keyword == "phases") {
        NodeId node = 0;
        if (!(ls >> node)) throw fail("expected: phases <node> <groups...>");
        std::vector<std::vector<MovementId>> phases;
        std::string group;
        while (ls >> group)
          phases.push_back(parse_list<MovementId>(group, line_no, parse_u32));
        if (phases.empty()) throw fail("phases needs at least one group");
        scenario.net.set_phases(node, std::move(phases));
      } else if (keyword == "flow") {
        std::string route, profile;
        if (!(ls >> route >> profile))
          throw fail("expected: flow <route> <profile>");
        FlowSpec f;
        f.route = parse_list<LinkId>(route, line_no, parse_u32);
        f.profile = parse_list<RateKnot>(profile, line_no, [&](const std::string& knot) {
          // Strict full-token parsing: bare std::stod accepted trailing
          // garbage ("3.5x" -> 3.5) and let overflow ("1e999") escape as a
          // raw std::out_of_range without the line-numbered context.
          const auto colon = knot.find(':');
          if (colon == std::string::npos)
            throw fail("profile knot '" + knot + "' is not t:rate");
          const auto t = util::parse_double(knot.substr(0, colon));
          if (!t)
            throw fail("profile knot '" + knot + "': bad time '" +
                       knot.substr(0, colon) + "'");
          const auto rate = util::parse_double(knot.substr(colon + 1));
          if (!rate)
            throw fail("profile knot '" + knot + "': bad rate '" +
                       knot.substr(colon + 1) + "'");
          RateKnot k;
          k.t_seconds = *t;
          k.rate_veh_per_hour = *rate;
          return k;
        });
        scenario.flows.push_back(std::move(f));
      } else {
        throw fail("unknown keyword '" + keyword + "'");
      }
    } catch (const std::invalid_argument& e) {
      // Re-wrap builder validation errors with the line number.
      throw fail(e.what());
    }
  }
  scenario.net.finalize();
  return scenario;
}

Scenario load_scenario(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_scenario: cannot open " + path);
  return read_scenario(in);
}

}  // namespace tsc::sim
