#include "src/sim/conflicts.hpp"

#include <cmath>

namespace tsc::sim {
namespace {

struct Point {
  double x, y;
};

/// Entry/exit points of a movement on a circle of radius r around the
/// node, placed along the incoming/outgoing link directions.
struct Segment {
  Point a, b;
};

Segment movement_segment(const RoadNetwork& net, const Movement& m) {
  const Node& node = net.node(m.node);
  const Link& in = net.link(m.from_link);
  const Link& out = net.link(m.to_link);
  const Node& from = net.node(in.from);
  const Node& to = net.node(out.to);
  // Unit vectors toward the upstream origin and downstream destination.
  const double r = 10.0;  // nominal intersection radius (m)
  auto unit = [](double dx, double dy) {
    const double len = std::hypot(dx, dy);
    return Point{dx / (len > 1e-9 ? len : 1.0), dy / (len > 1e-9 ? len : 1.0)};
  };
  const Point u_in = unit(from.x - node.x, from.y - node.y);
  const Point u_out = unit(to.x - node.x, to.y - node.y);
  // Entry point sits slightly to the right of the approach axis (right-hand
  // traffic): offset by the perpendicular so opposing throughs do not
  // falsely intersect head-on.
  const double lane_offset = 2.0;
  const Point perp_in{-u_in.y, u_in.x};
  const Point perp_out{-u_out.y, u_out.x};
  Segment s;
  s.a = {node.x + r * u_in.x + lane_offset * perp_in.x,
         node.y + r * u_in.y + lane_offset * perp_in.y};
  s.b = {node.x + r * u_out.x - lane_offset * perp_out.x,
         node.y + r * u_out.y - lane_offset * perp_out.y};
  return s;
}

double cross(const Point& o, const Point& p, const Point& q) {
  return (p.x - o.x) * (q.y - o.y) - (p.y - o.y) * (q.x - o.x);
}

/// Proper segment intersection (shared endpoints do not count).
bool segments_intersect(const Segment& s1, const Segment& s2) {
  const double d1 = cross(s2.a, s2.b, s1.a);
  const double d2 = cross(s2.a, s2.b, s1.b);
  const double d3 = cross(s1.a, s1.b, s2.a);
  const double d4 = cross(s1.a, s1.b, s2.b);
  return ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
         ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0));
}

}  // namespace

bool movements_conflict(const RoadNetwork& net, MovementId a, MovementId b) {
  if (a == b) return false;
  const Movement& ma = net.movement(a);
  const Movement& mb = net.movement(b);
  if (ma.node != mb.node) return false;
  // Same approach (lane fan-out) or same exit (merge): compatible.
  if (ma.from_link == mb.from_link || ma.to_link == mb.to_link) return false;
  return segments_intersect(movement_segment(net, ma),
                            movement_segment(net, mb));
}

std::vector<std::pair<MovementId, MovementId>> phase_conflicts(
    const RoadNetwork& net, NodeId node) {
  std::vector<std::pair<MovementId, MovementId>> out;
  for (const auto& phase : net.node(node).phases) {
    for (std::size_t i = 0; i < phase.size(); ++i)
      for (std::size_t j = i + 1; j < phase.size(); ++j)
        if (movements_conflict(net, phase[i], phase[j]))
          out.push_back({phase[i], phase[j]});
  }
  return out;
}

std::vector<ConflictViolation> audit_phase_conflicts(const RoadNetwork& net) {
  std::vector<ConflictViolation> out;
  for (NodeId node : net.signalized_nodes())
    for (const auto& [a, b] : phase_conflicts(net, node))
      out.push_back({node, a, b});
  return out;
}

}  // namespace tsc::sim
