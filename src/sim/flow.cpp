#include "src/sim/flow.hpp"

#include <algorithm>
#include <cassert>

namespace tsc::sim {

double FlowSpec::rate_at(double t) const {
  if (profile.empty()) return 0.0;
  if (t < profile.front().t_seconds || t > profile.back().t_seconds) return 0.0;
  for (std::size_t i = 0; i + 1 < profile.size(); ++i) {
    const RateKnot& a = profile[i];
    const RateKnot& b = profile[i + 1];
    if (t >= a.t_seconds && t <= b.t_seconds) {
      const double span = b.t_seconds - a.t_seconds;
      if (span <= 0.0) return b.rate_veh_per_hour;
      const double frac = (t - a.t_seconds) / span;
      return a.rate_veh_per_hour + frac * (b.rate_veh_per_hour - a.rate_veh_per_hour);
    }
  }
  return profile.back().rate_veh_per_hour;
}

double FlowSpec::expected_vehicles(double horizon) const {
  // Trapezoid integration at 1 s resolution.
  double total = 0.0;
  for (double t = 0.0; t < horizon; t += 1.0)
    total += 0.5 * (rate_at(t) + rate_at(std::min(t + 1.0, horizon))) / 3600.0;
  return total;
}

namespace profiles {

std::vector<RateKnot> ramp_hold(double start, double ramp, double end, double peak) {
  assert(ramp >= 0.0 && end >= start + ramp);
  return {{start, 0.0}, {start + ramp, peak}, {end, peak}};
}

std::vector<RateKnot> constant(double start, double end, double rate) {
  assert(end > start);
  return {{start, rate}, {end, rate}};
}

}  // namespace profiles

FlowSampler::FlowSampler(std::vector<FlowSpec> flows)
    : flows_(std::move(flows)) {
  window_begin_.reserve(flows_.size());
  window_end_.reserve(flows_.size());
  for (const FlowSpec& f : flows_) {
    // Empty profiles never emit; an inverted window skips them forever.
    window_begin_.push_back(f.profile.empty() ? 1.0 : f.profile.front().t_seconds);
    window_end_.push_back(f.profile.empty() ? 0.0 : f.profile.back().t_seconds);
  }
}

std::vector<std::size_t> FlowSampler::sample_arrivals(double t, double dt,
                                                      Rng& rng) const {
  std::vector<std::size_t> out;
  sample_arrivals(t, dt, rng, out);
  return out;
}

void FlowSampler::sample_arrivals(double t, double dt, Rng& rng,
                                  std::vector<std::size_t>& out) const {
  out.clear();
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    // Same comparisons rate_at() leads with: a flow outside its window has
    // rate 0 and draws nothing, so this skip preserves the Rng stream.
    if (t < window_begin_[i] || t > window_end_[i]) continue;
    const double rate = flows_[i].rate_at(t);
    if (rate <= 0.0) continue;
    const double p = rate / 3600.0 * dt;
    if (rng.bernoulli(std::min(p, 1.0))) out.push_back(i);
  }
}

}  // namespace tsc::sim
