#include "src/sim/metrics.hpp"

#include <algorithm>

#include "src/util/csv.hpp"

namespace tsc::sim {

void TraceRecorder::record(const Simulator& sim) {
  if (sim.now() + 1e-9 < next_sample_) return;
  TraceSample sample;
  sample.time = sim.now();
  sample.halting = sim.network_halting();
  sample.avg_wait = sim.network_avg_wait();
  sample.active = sim.vehicles_active();
  sample.finished = sim.vehicles_finished();
  for (const auto node : sim.network().signalized_nodes())
    sample.max_head_wait =
        std::max(sample.max_head_wait, sim.intersection_max_head_wait(node));
  samples_.push_back(sample);
  // Advance on the fixed grid 0, interval, 2*interval, ... rather than from
  // now(): record() is often called at coarse action boundaries, and
  // re-anchoring on now() would drift every subsequent sample time by the
  // accumulated overshoot.
  if (interval_ > 0.0) {
    while (next_sample_ <= sim.now() + 1e-9) next_sample_ += interval_;
  } else {
    next_sample_ = sim.now() + interval_;
  }
}

void TraceRecorder::clear() {
  samples_.clear();
  next_sample_ = 0.0;
}

void TraceRecorder::write_csv(const std::string& path) const {
  CsvWriter csv(path);
  csv.write_header(
      {"time", "halting", "avg_wait", "active", "finished", "max_head_wait"});
  for (const TraceSample& s : samples_)
    csv.write_row(s.time, s.halting, s.avg_wait, s.active, s.finished,
                  s.max_head_wait);
}

double TraceRecorder::congestion_onset(std::uint32_t threshold) const {
  for (const TraceSample& s : samples_)
    if (s.halting > threshold) return s.time;
  return -1.0;
}

double TraceRecorder::congestion_recovery(std::uint32_t threshold,
                                          double since) const {
  bool was_congested = false;
  for (const TraceSample& s : samples_) {
    if (s.time < since) continue;
    if (s.halting > threshold) was_congested = true;
    else if (was_congested) return s.time;
  }
  return -1.0;
}

EmissionsEstimate estimate_emissions(const Simulator& sim,
                                     const EmissionsConfig& config) {
  EmissionsEstimate out;
  const auto& net = sim.network();
  const auto& flows = sim.flows();
  for (const Vehicle& v : sim.vehicles()) {
    if (v.entered < 0.0) continue;  // never entered: backlog burns nothing
    out.idle_seconds += v.wait_total;
    const auto& route = flows[v.flow].route;
    // Links fully traversed: those before the current hop; the current one
    // counts as traversed when the vehicle has finished.
    const std::size_t traversed = v.finished ? route.size() : v.hop;
    for (std::size_t h = 0; h < traversed; ++h)
      out.distance_meters += net.link(route[h]).length;
  }
  out.fuel_liters = out.idle_seconds * config.idle_fuel_per_second +
                    out.distance_meters * config.cruise_fuel_per_meter;
  out.co2_kg = out.fuel_liters * config.co2_kg_per_liter;
  return out;
}

}  // namespace tsc::sim
