#include "src/sim/network.hpp"

#include <algorithm>
#include <queue>
#include <set>
#include <stdexcept>

namespace tsc::sim {

void RoadNetwork::require_not_finalized() const {
  if (finalized_) throw std::logic_error("RoadNetwork: already finalized");
}

NodeId RoadNetwork::add_node(NodeType type, double x, double y, std::string name) {
  require_not_finalized();
  Node n;
  n.id = static_cast<NodeId>(nodes_.size());
  n.type = type;
  n.x = x;
  n.y = y;
  n.name = std::move(name);
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

LinkId RoadNetwork::add_link(NodeId from, NodeId to, double length,
                             std::uint32_t lanes, double speed, std::string name) {
  require_not_finalized();
  if (from >= nodes_.size() || to >= nodes_.size())
    throw std::invalid_argument("add_link: unknown node");
  if (from == to) throw std::invalid_argument("add_link: self-loop");
  if (length <= 0.0 || speed <= 0.0 || lanes == 0)
    throw std::invalid_argument("add_link: bad geometry");
  Link l;
  l.id = static_cast<LinkId>(links_.size());
  l.from = from;
  l.to = to;
  l.length = length;
  l.lanes = lanes;
  l.speed = speed;
  l.name = std::move(name);
  links_.push_back(std::move(l));
  nodes_[from].out_links.push_back(links_.back().id);
  nodes_[to].in_links.push_back(links_.back().id);
  return links_.back().id;
}

MovementId RoadNetwork::add_movement(LinkId from_link, LinkId to_link, Turn turn,
                                     std::vector<std::uint32_t> allowed_lanes) {
  require_not_finalized();
  if (from_link >= links_.size() || to_link >= links_.size())
    throw std::invalid_argument("add_movement: unknown link");
  const Link& in = links_[from_link];
  const Link& out = links_[to_link];
  if (in.to != out.from)
    throw std::invalid_argument("add_movement: links do not share a node");
  if (allowed_lanes.empty())
    throw std::invalid_argument("add_movement: no lanes");
  for (std::uint32_t lane : allowed_lanes)
    if (lane >= in.lanes) throw std::invalid_argument("add_movement: lane out of range");
  if (find_movement(from_link, to_link) != kInvalidId)
    throw std::invalid_argument("add_movement: duplicate movement");
  Movement m;
  m.id = static_cast<MovementId>(movements_.size());
  m.from_link = from_link;
  m.to_link = to_link;
  m.turn = turn;
  m.allowed_lanes = std::move(allowed_lanes);
  m.node = in.to;
  movements_.push_back(std::move(m));
  links_[from_link].out_movements.push_back(movements_.back().id);
  return movements_.back().id;
}

void RoadNetwork::set_phases(NodeId node, std::vector<std::vector<MovementId>> phases) {
  require_not_finalized();
  if (node >= nodes_.size()) throw std::invalid_argument("set_phases: unknown node");
  nodes_[node].phases = std::move(phases);
}

void RoadNetwork::finalize() {
  require_not_finalized();
  for (const Node& n : nodes_) {
    if (n.type == NodeType::kSignalized) {
      if (n.phases.empty())
        throw std::invalid_argument("finalize: signalized node '" + n.name +
                                    "' has no phases");
      std::set<MovementId> covered;
      for (const auto& phase : n.phases) {
        if (phase.empty()) throw std::invalid_argument("finalize: empty phase");
        for (MovementId m : phase) {
          if (m >= movements_.size())
            throw std::invalid_argument("finalize: phase references unknown movement");
          if (movements_[m].node != n.id)
            throw std::invalid_argument(
                "finalize: phase references movement at another node");
          covered.insert(m);
        }
      }
      // Every movement at the node must be reachable in some phase, or
      // vehicles wanting it would deadlock forever.
      for (LinkId lid : n.in_links)
        for (MovementId m : links_[lid].out_movements)
          if (!covered.count(m))
            throw std::invalid_argument("finalize: movement " + std::to_string(m) +
                                        " at node '" + n.name +
                                        "' not covered by any phase");
    } else if (!n.phases.empty()) {
      throw std::invalid_argument("finalize: non-signalized node '" + n.name +
                                  "' has phases");
    }
  }
  finalized_ = true;
}

std::vector<NodeId> RoadNetwork::signalized_nodes() const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_)
    if (n.type == NodeType::kSignalized) out.push_back(n.id);
  return out;
}

MovementId RoadNetwork::find_movement(LinkId from_link, LinkId to_link) const {
  if (from_link >= links_.size()) return kInvalidId;
  for (MovementId m : links_[from_link].out_movements)
    if (movements_[m].to_link == to_link) return m;
  return kInvalidId;
}

std::vector<LinkId> RoadNetwork::shortest_route(LinkId from_link, NodeId dest) const {
  if (from_link >= links_.size() || dest >= nodes_.size()) return {};
  // Dijkstra over links: cost to have *traversed* a link.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(links_.size(), kInf);
  std::vector<LinkId> prev(links_.size(), kInvalidId);
  using Entry = std::pair<double, LinkId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[from_link] = links_[from_link].free_flow_time();
  pq.push({dist[from_link], from_link});
  while (!pq.empty()) {
    auto [d, lid] = pq.top();
    pq.pop();
    if (d > dist[lid]) continue;
    if (links_[lid].to == dest) {
      std::vector<LinkId> route;
      for (LinkId cur = lid; cur != kInvalidId; cur = prev[cur]) route.push_back(cur);
      std::reverse(route.begin(), route.end());
      return route;
    }
    for (MovementId mid : links_[lid].out_movements) {
      const LinkId next = movements_[mid].to_link;
      const double nd = d + links_[next].free_flow_time();
      if (nd < dist[next]) {
        dist[next] = nd;
        prev[next] = lid;
        pq.push({nd, next});
      }
    }
  }
  return {};
}

std::vector<NodeId> RoadNetwork::neighbor_signalized(NodeId id) const {
  std::set<NodeId> out;
  const Node& n = nodes_.at(id);
  for (LinkId lid : n.in_links) {
    const NodeId other = links_[lid].from;
    if (other != id && nodes_[other].type == NodeType::kSignalized) out.insert(other);
  }
  for (LinkId lid : n.out_links) {
    const NodeId other = links_[lid].to;
    if (other != id && nodes_[other].type == NodeType::kSignalized) out.insert(other);
  }
  return {out.begin(), out.end()};
}

std::vector<NodeId> RoadNetwork::upstream_signalized(NodeId id) const {
  std::set<NodeId> out;
  const Node& n = nodes_.at(id);
  for (LinkId lid : n.in_links) {
    const NodeId other = links_[lid].from;
    if (other != id && nodes_[other].type == NodeType::kSignalized) out.insert(other);
  }
  return {out.begin(), out.end()};
}

}  // namespace tsc::sim
