// Plain-text scenario serialization: save and load a road network together
// with its demand (flow specs) so scenarios can be versioned, shared, and
// edited outside C++.
//
// Format (line-oriented, '#' comments, whitespace-separated):
//   node <type> <x> <y> [name]             type: signalized|unsignalized|boundary
//   link <from> <to> <length> <lanes> <speed> [name]
//   movement <from_link> <to_link> <turn> <lane>[,<lane>...]   turn: left|through|right
//   phases <node> <m>[,<m>...] [<m>[,<m>...] ...]   one group per phase
//   flow <link>[,<link>...] <t>:<rate>[,<t>:<rate>...]
// Entity ids are assigned in file order (the writer emits them in id
// order), so indices in later lines refer to earlier lines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/sim/flow.hpp"
#include "src/sim/network.hpp"

namespace tsc::sim {

struct Scenario {
  RoadNetwork net;  ///< finalized on load
  std::vector<FlowSpec> flows;
};

/// Serializes the network and flows to the text format above.
void write_scenario(const RoadNetwork& net, const std::vector<FlowSpec>& flows,
                    std::ostream& out);
void save_scenario(const RoadNetwork& net, const std::vector<FlowSpec>& flows,
                   const std::string& path);

/// Parses and finalizes a scenario. Throws std::runtime_error with a
/// line-numbered message on any syntax or consistency error.
Scenario read_scenario(std::istream& in);
Scenario load_scenario(const std::string& path);

}  // namespace tsc::sim
