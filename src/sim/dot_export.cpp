#include "src/sim/dot_export.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/sim/simulator.hpp"

namespace tsc::sim {
namespace {

const char* node_shape(NodeType type) {
  switch (type) {
    case NodeType::kSignalized: return "box";
    case NodeType::kUnsignalized: return "diamond";
    case NodeType::kBoundary: return "circle";
  }
  return "circle";
}

void emit_header(std::ostringstream& os, const RoadNetwork& net) {
  os << "digraph road_network {\n"
     << "  rankdir=LR;\n  node [fontsize=10];\n  edge [fontsize=8];\n";
  for (const Node& n : net.nodes()) {
    os << "  n" << n.id << " [shape=" << node_shape(n.type) << ", label=\""
       << (n.name.empty() ? std::to_string(n.id) : n.name) << "\", pos=\""
       << n.x / 25.0 << ',' << n.y / 25.0 << "!\"];\n";
  }
}

}  // namespace

std::string to_dot(const RoadNetwork& net) {
  std::ostringstream os;
  emit_header(os, net);
  for (const Link& l : net.links()) {
    os << "  n" << l.from << " -> n" << l.to << " [label=\"" << l.lanes << '@'
       << static_cast<int>(l.length) << "m\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const Simulator& sim) {
  const RoadNetwork& net = sim.network();
  std::ostringstream os;
  emit_header(os, net);
  for (const Link& l : net.links()) {
    const double utilization =
        std::min(1.0, static_cast<double>(sim.link_queue(l.id)) /
                          std::max(1u, sim.link_capacity(l.id)));
    const int red = static_cast<int>(utilization * 255.0);
    char color[16];
    std::snprintf(color, sizeof(color), "#%02X0000", red);
    os << "  n" << l.from << " -> n" << l.to << " [label=\""
       << sim.link_queue(l.id) << '/' << sim.link_capacity(l.id)
       << "\", color=\"" << color << "\", penwidth="
       << 1.0 + 3.0 * utilization << "];\n";
  }
  os << "}\n";
  return os.str();
}

void write_dot(const RoadNetwork& net, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("write_dot: cannot open " + path);
  out << to_dot(net);
  if (!out) throw std::runtime_error("write_dot: write failed for " + path);
}

}  // namespace tsc::sim
