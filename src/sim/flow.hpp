// Time-varying origin-destination traffic demand.
//
// A FlowSpec fixes a route (link sequence) and a piecewise-linear rate
// profile in vehicles/hour. The simulator samples Bernoulli arrivals per
// tick from the instantaneous rate, reproducing the paper's staggered,
// ramped OD flows (Fig. 6).
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/network.hpp"
#include "src/util/rng.hpp"

namespace tsc::sim {

/// One knot of a rate profile: `rate_veh_per_hour` at time `t_seconds`.
/// Between knots the rate is linearly interpolated; outside the knot range
/// it is 0 before the first knot and 0 after the last (flows end).
struct RateKnot {
  double t_seconds = 0.0;
  double rate_veh_per_hour = 0.0;
};

struct FlowSpec {
  std::vector<LinkId> route;  ///< consecutive links; front() is the entry link
  std::vector<RateKnot> profile;

  /// Instantaneous rate (veh/h) at time t.
  double rate_at(double t) const;

  /// Integrated expected vehicle count over [0, horizon] seconds.
  double expected_vehicles(double horizon) const;
};

/// Convenience builders for the paper's flow shapes.
namespace profiles {

/// Ramp 0 -> peak over [start, start+ramp], hold until `end`, then stop.
std::vector<RateKnot> ramp_hold(double start, double ramp, double end, double peak);

/// Constant `rate` over [start, end].
std::vector<RateKnot> constant(double start, double end, double rate);

}  // namespace profiles

/// Samples arrivals for a set of flows, tick by tick. Deterministic given
/// the seed sequence from the owning simulator's Rng.
class FlowSampler {
 public:
  explicit FlowSampler(std::vector<FlowSpec> flows);

  const std::vector<FlowSpec>& flows() const { return flows_; }

  /// Returns indices of flows that emit a vehicle during [t, t+dt).
  /// Rates are assumed small relative to 1/dt (at most one arrival per flow
  /// per tick; at 975 veh/h and dt=1 s the per-tick probability is 0.27).
  std::vector<std::size_t> sample_arrivals(double t, double dt, Rng& rng) const;

  /// Allocation-free variant: clears and fills `out`. A flow whose rate is
  /// zero at `t` consumes no Rng draw, so skipping flows outside their
  /// precomputed support window leaves the random stream bit-identical.
  void sample_arrivals(double t, double dt, Rng& rng,
                       std::vector<std::size_t>& out) const;

 private:
  std::vector<FlowSpec> flows_;
  /// Support of each flow's profile ([first knot, last knot]); the rate —
  /// and therefore the Bernoulli draw — is suppressed outside it.
  std::vector<double> window_begin_;
  std::vector<double> window_end_;
};

}  // namespace tsc::sim
