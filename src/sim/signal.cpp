#include "src/sim/signal.hpp"

#include <cassert>
#include <stdexcept>

namespace tsc::sim {

SignalController::SignalController(NodeId node, std::size_t num_phases,
                                   double yellow_time)
    : node_(node), num_phases_(num_phases), yellow_time_(yellow_time) {
  if (num_phases == 0) throw std::invalid_argument("SignalController: no phases");
  if (yellow_time < 0.0) throw std::invalid_argument("SignalController: negative yellow");
}

void SignalController::request_phase(std::size_t p) {
  if (p >= num_phases_) throw std::out_of_range("request_phase: bad phase index");
  if (in_yellow()) {
    if (p == pending_phase_) return;  // same target: let the clearance run out
    if (p == phase_) {
      // Retarget back to the still-active phase: cancel the in-flight
      // switch and resume green. green_elapsed_ was never reset (that only
      // happens when a switch completes), so the green simply continues.
      pending_phase_ = phase_;
      yellow_remaining_ = 0.0;
      return;
    }
    // Retarget to a different phase: the new target must receive the full
    // clearance interval, so the yellow timer restarts. Without this a
    // phase chosen late in yellow could go green after an arbitrarily
    // short clearance (down to one tick).
    pending_phase_ = p;
    yellow_remaining_ = yellow_time_;
    return;
  }
  if (p == phase_) return;  // extend current green
  pending_phase_ = p;
  yellow_remaining_ = yellow_time_;
  if (yellow_time_ == 0.0) {
    phase_ = pending_phase_;
    green_elapsed_ = 0.0;
  }
}

void SignalController::tick(double dt) {
  assert(dt > 0.0);
  if (in_yellow()) {
    yellow_remaining_ -= dt;
    if (yellow_remaining_ <= 1e-9) {
      yellow_remaining_ = 0.0;
      phase_ = pending_phase_;
      green_elapsed_ = 0.0;
    }
  } else {
    green_elapsed_ += dt;
  }
}

void SignalController::reset(std::size_t initial_phase) {
  if (initial_phase >= num_phases_) throw std::out_of_range("reset: bad phase index");
  phase_ = pending_phase_ = initial_phase;
  yellow_remaining_ = 0.0;
  green_elapsed_ = 0.0;
}

}  // namespace tsc::sim
