// Discrete-time link-queue traffic simulator.
//
// Model (per 1 s tick):
//   * Vehicles spawn from time-varying OD flows onto their route's first
//     link, entering a per-link backlog if the link is full (spillback at
//     the network boundary).
//   * A vehicle entering a link travels its free-flow time, then joins the
//     shortest per-lane FIFO queue among the lanes permitting its next
//     movement. Lanes shared by several movements exhibit head-of-line
//     blocking: a red-movement leader blocks everything behind it.
//   * Queues discharge at the saturation flow rate (one vehicle per
//     `sat_headway` seconds per lane) when the head vehicle's movement is
//     green and the downstream link has storage; otherwise they spill back.
//   * Signalized nodes run a yellow clearance interval on phase switches
//     during which nothing discharges.
//
// Observables mirror roadside sensing: detector counts are capped at the
// vehicles within `detector_range` of the stopline; head-vehicle waiting
// time is measured at the stopline (paper Fig. 2).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/sim/flow.hpp"
#include "src/sim/network.hpp"
#include "src/sim/signal.hpp"
#include "src/util/rng.hpp"

namespace tsc::sim {

struct SimConfig {
  double tick = 1.0;            ///< seconds per simulation tick
  double yellow_time = 2.0;     ///< clearance interval on phase switch (s)
  double sat_headway = 2.0;     ///< discharge headway per lane (s/veh)
  double vehicle_gap = 7.5;     ///< storage length per vehicle (m)
  double detector_range = 50.0; ///< sensor coverage from the stopline (m)
};

struct Vehicle {
  std::uint32_t id = 0;
  std::uint32_t flow = 0;       ///< index into flows(): defines the route
  std::uint32_t hop = 0;        ///< current index into the route
  double depart_scheduled = 0;  ///< when the flow emitted the vehicle
  double entered = -1.0;        ///< actual network entry (-1: still in backlog)
  double exit_time = -1.0;      ///< network exit (-1: still active)
  double wait_current = 0.0;    ///< time stopped in the current queue
  double wait_total = 0.0;      ///< lifetime stopped time
  bool finished = false;
};

class Simulator {
 public:
  /// `net` must outlive the simulator and be finalized. Flow routes must be
  /// movement-consistent (each consecutive link pair has a movement) and end
  /// on a link whose head node is a boundary.
  Simulator(const RoadNetwork* net, std::vector<FlowSpec> flows, SimConfig config,
            std::uint64_t seed);

  /// Clears all vehicles and signal state; reseeds arrivals.
  void reset(std::uint64_t seed);

  double now() const { return now_; }
  const RoadNetwork& network() const { return *net_; }
  const SimConfig& config() const { return config_; }
  const std::vector<FlowSpec>& flows() const { return sampler_.flows(); }

  /// Agent action: request a phase at a signalized node.
  void set_phase(NodeId node, std::size_t phase);
  const SignalController& signal(NodeId node) const;

  /// Advances one tick.
  void step();
  /// Advances ceil(seconds / tick) ticks.
  void step_seconds(double seconds);

  // ---- observable state (sensor view, detector-capped) ----
  /// Queued vehicles on a link visible to the detector (capped at range).
  std::uint32_t detector_queue(LinkId link) const;
  /// Vehicles on the link visible to the detector (queued + approaching
  /// within range), capped at range capacity.
  std::uint32_t detector_count(LinkId link) const;
  /// Stopline waiting time of the head vehicle, maximized over lanes (s).
  double detector_head_wait(LinkId link) const;
  /// Per-lane head wait (0 if the lane is empty).
  double lane_head_wait(LinkId link, std::uint32_t lane) const;
  std::uint32_t lane_queue(LinkId link, std::uint32_t lane) const;
  /// Sensor-view link pressure: per-lane detector count on `link` minus the
  /// mean per-lane detector count over its movement target links.
  double link_pressure(LinkId link) const;

  // ---- ground-truth state ----
  /// All vehicles currently on the link (approaching + queued).
  std::uint32_t link_count(LinkId link) const;
  /// Queued (halted) vehicles on the link.
  std::uint32_t link_queue(LinkId link) const;
  std::uint32_t link_capacity(LinkId link) const;
  /// Sum of in-link counts minus sum of out-link counts.
  double intersection_pressure(NodeId node) const;
  /// Halted vehicles over all incoming links (reward term, Eq. 6).
  std::uint32_t intersection_halting(NodeId node) const;
  /// Max head-vehicle wait over all incoming lanes (reward term, Eq. 6).
  double intersection_max_head_wait(NodeId node) const;
  /// Mean over signalized nodes of intersection_max_head_wait (the paper's
  /// "average waiting time" metric).
  double network_avg_wait() const;
  /// Total queued vehicles network-wide.
  std::uint32_t network_halting() const;

  // ---- episode metrics ----
  std::size_t vehicles_spawned() const { return vehicles_.size(); }
  std::size_t vehicles_finished() const { return finished_count_; }
  std::size_t vehicles_active() const;
  /// Mean delay over EVERY spawned vehicle: finished trips contribute their
  /// travel time, unfinished vehicles — including those still waiting in
  /// the spawn backlog — are charged up to now(). Makes oversaturation and
  /// boundary spillback visible, at the cost of mixing source-queue delay
  /// into the number.
  double average_delay() const;
  /// Mean travel time over vehicles that ENTERED the network (finished
  /// trips plus in-network vehicles charged to now(); the spawn backlog is
  /// excluded from numerator and denominator). Measured from the scheduled
  /// departure, like average_travel_time_finished, so the two agree
  /// structurally: this metric converges to it as the network drains.
  double average_travel_time() const;
  /// Mean travel time over finished vehicles only.
  double average_travel_time_finished() const;
  const std::vector<Vehicle>& vehicles() const { return vehicles_; }

 private:
  struct ApproachEntry {
    std::uint32_t vehicle;
    double arrival;
  };
  struct LaneState {
    std::deque<std::uint32_t> queue;
    double credit = 0.0;  ///< saturation-flow discharge budget (vehicles)
  };
  struct LinkState {
    std::deque<ApproachEntry> approaching;
    std::vector<LaneState> lanes;
    std::uint32_t count = 0;  ///< approaching + queued
    std::deque<std::uint32_t> backlog;  ///< spawned but not yet inserted
  };

  void validate_flows() const;
  void spawn_and_insert();
  void insert_vehicle(std::uint32_t veh_idx);
  void process_arrivals();
  void discharge_node(const Node& node);
  void discharge_lane(LinkId link_id, std::uint32_t lane_idx, const Node& node);
  bool movement_green(const Node& node, MovementId m) const;
  void accrue_waits();
  /// Next link on the vehicle's route, or kInvalidId if on the last hop.
  LinkId next_link_of(const Vehicle& v) const;

  const RoadNetwork* net_;
  SimConfig config_;
  FlowSampler sampler_;
  Rng rng_;
  double now_ = 0.0;

  std::vector<Vehicle> vehicles_;
  std::vector<LinkState> link_states_;
  std::vector<SignalController> signals_;       // dense over nodes (sparse use)
  std::vector<std::int32_t> signal_index_;      // node id -> index or -1
  /// Per node: per phase: bitmask over node-local movements? We store a flat
  /// set: phase_green_[node][phase] is a sorted vector of MovementId.
  std::vector<std::vector<std::vector<MovementId>>> phase_green_;
  std::size_t finished_count_ = 0;
  double finished_tt_sum_ = 0.0;
};

}  // namespace tsc::sim
