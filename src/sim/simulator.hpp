// Discrete-time link-queue traffic simulator.
//
// Model (per 1 s tick):
//   * Vehicles spawn from time-varying OD flows onto their route's first
//     link, entering a per-link backlog if the link is full (spillback at
//     the network boundary).
//   * A vehicle entering a link travels its free-flow time, then joins the
//     shortest per-lane FIFO queue among the lanes permitting its next
//     movement. Lanes shared by several movements exhibit head-of-line
//     blocking: a red-movement leader blocks everything behind it.
//   * Queues discharge at the saturation flow rate (one vehicle per
//     `sat_headway` seconds per lane) when the head vehicle's movement is
//     green and the downstream link has storage; otherwise they spill back.
//   * Signalized nodes run a yellow clearance interval on phase switches
//     during which nothing discharges.
//
// Observables mirror roadside sensing: detector counts are capped at the
// vehicles within `detector_range` of the stopline; head-vehicle waiting
// time is measured at the stopline (paper Fig. 2).
//
// Hot-path layout: routing (route hop -> movement), link capacities,
// detector caps and free-flow times are precomputed at construction; queue
// aggregates (per-link, per-intersection, network halting) are maintained
// incrementally at push/pop; waiting time is lazy integer tick bookkeeping
// materialized on demand; and the per-tick sweeps visit only links with
// pending backlog/arrivals/queues. Sensor observables are backed by
// per-link snapshots (head-vehicle enqueue epoch, cached pressure fold)
// invalidated at the same push/pop/count points and refreshed lazily on
// query, so repeated observable reads are O(changed), never O(network).
// All externally observable numbers are bit-identical to the
// straightforward per-tick recomputation (see validate_incremental_state
// and DESIGN.md).
//
// Const observables may grow an internal memo table, so concurrent reads of
// the SAME simulator from several threads are not safe; distinct simulator
// instances are independent.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/flow.hpp"
#include "src/sim/network.hpp"
#include "src/sim/signal.hpp"
#include "src/util/rng.hpp"

namespace tsc::sim {

struct SimConfig {
  double tick = 1.0;            ///< seconds per simulation tick
  double yellow_time = 2.0;     ///< clearance interval on phase switch (s)
  double sat_headway = 2.0;     ///< discharge headway per lane (s/veh)
  double vehicle_gap = 7.5;     ///< storage length per vehicle (m)
  double detector_range = 50.0; ///< sensor coverage from the stopline (m)
};

struct Vehicle {
  std::uint32_t id = 0;
  std::uint32_t flow = 0;       ///< index into flows(): defines the route
  std::uint32_t hop = 0;        ///< current index into the route
  double depart_scheduled = 0;  ///< when the flow emitted the vehicle
  double entered = -1.0;        ///< actual network entry (-1: still in backlog)
  double exit_time = -1.0;      ///< network exit (-1: still active)
  double wait_current = 0.0;    ///< time stopped in the current queue
  double wait_total = 0.0;      ///< lifetime stopped time
  bool finished = false;
};

class Simulator {
 public:
  /// `net` must outlive the simulator and be finalized. Flow routes must be
  /// movement-consistent (each consecutive link pair has a movement) and end
  /// on a link whose head node is a boundary.
  Simulator(const RoadNetwork* net, std::vector<FlowSpec> flows, SimConfig config,
            std::uint64_t seed);

  /// Clears all vehicles and signal state; reseeds arrivals.
  void reset(std::uint64_t seed);

  double now() const { return now_; }
  const RoadNetwork& network() const { return *net_; }
  const SimConfig& config() const { return config_; }
  const std::vector<FlowSpec>& flows() const { return sampler_.flows(); }

  /// Agent action: request a phase at a signalized node.
  void set_phase(NodeId node, std::size_t phase);
  const SignalController& signal(NodeId node) const;

  /// Advances one tick.
  void step();
  /// Advances ceil(seconds / tick) ticks.
  void step_seconds(double seconds);

  // ---- observable state (sensor view, detector-capped) ----
  /// Queued vehicles on a link visible to the detector (capped at range).
  std::uint32_t detector_queue(LinkId link) const;
  /// Vehicles on the link visible to the detector (queued + approaching
  /// within range), capped at range capacity.
  std::uint32_t detector_count(LinkId link) const;
  /// Stopline waiting time of the head vehicle, maximized over lanes (s).
  double detector_head_wait(LinkId link) const;
  /// Per-lane head wait (0 if the lane is empty).
  double lane_head_wait(LinkId link, std::uint32_t lane) const;
  std::uint32_t lane_queue(LinkId link, std::uint32_t lane) const;
  /// Sensor-view link pressure: per-lane detector count on `link` minus the
  /// mean per-lane detector count over its movement target links.
  double link_pressure(LinkId link) const;

  // ---- ground-truth state ----
  /// All vehicles currently on the link (approaching + queued).
  std::uint32_t link_count(LinkId link) const;
  /// Queued (halted) vehicles on the link.
  std::uint32_t link_queue(LinkId link) const;
  std::uint32_t link_capacity(LinkId link) const;
  /// Sum of in-link counts minus sum of out-link counts.
  double intersection_pressure(NodeId node) const;
  /// Halted vehicles over all incoming links (reward term, Eq. 6).
  std::uint32_t intersection_halting(NodeId node) const;
  /// Max head-vehicle wait over all incoming lanes (reward term, Eq. 6).
  double intersection_max_head_wait(NodeId node) const;
  /// Mean over signalized nodes of intersection_max_head_wait (the paper's
  /// "average waiting time" metric).
  double network_avg_wait() const;
  /// Total queued vehicles network-wide.
  std::uint32_t network_halting() const;

  // ---- observation snapshot bookkeeping ----
  /// Completed simulation steps (== ticks since the last reset).
  std::int64_t step_count() const { return step_count_; }
  /// Per-link stamp of the last step whose events (queue push/pop, or a
  /// detector-visible count change on the link or on a link its pressure
  /// reads) could alter the link's sensor observables; -1 = untouched since
  /// reset. Unlike the internal stale flags these are never consumed by
  /// queries, so an observation builder can diff against its own refresh
  /// stamp: a link's sensor row changed since step S iff
  /// `obs_event_steps()[l] >= S || link_queue(l) > 0` (a standing queue
  /// advances head wait every tick without emitting events).
  const std::vector<std::int64_t>& obs_event_steps() const {
    return obs_event_step_;
  }
  /// Cumulative count of snapshot refreshes performed by observable queries
  /// (head-lane rescans + pressure refolds). Frozen between queries when no
  /// simulator state changed: the steady-state analog of the inference
  /// path's alloc_events() == 0 contract (asserted by bench_sim_step
  /// --smoke).
  std::size_t obs_refresh_events() const { return obs_refresh_events_; }

  // ---- episode metrics ----
  std::size_t vehicles_spawned() const { return vehicles_.size(); }
  std::size_t vehicles_finished() const { return finished_count_; }
  std::size_t vehicles_active() const;
  /// Mean delay over EVERY spawned vehicle: finished trips contribute their
  /// travel time, unfinished vehicles — including those still waiting in
  /// the spawn backlog — are charged up to now(). Makes oversaturation and
  /// boundary spillback visible, at the cost of mixing source-queue delay
  /// into the number.
  double average_delay() const;
  /// Mean travel time over vehicles that ENTERED the network (finished
  /// trips plus in-network vehicles charged to now(); the spawn backlog is
  /// excluded from numerator and denominator). Measured from the scheduled
  /// departure, like average_travel_time_finished, so the two agree
  /// structurally: this metric converges to it as the network drains.
  double average_travel_time() const;
  /// Mean travel time over finished vehicles only.
  double average_travel_time_finished() const;
  /// Vehicle table with wait_current/wait_total materialized from the lazy
  /// tick bookkeeping (O(#vehicles) when called after a step, free after).
  const std::vector<Vehicle>& vehicles() const;

  /// Cross-check mode: recomputes every incrementally maintained aggregate
  /// from scratch (walking the lane deques and vehicle table) and compares.
  /// Returns false and fills `error` on the first mismatch. O(network +
  /// vehicles) — for tests and bench smoke runs, not the hot path.
  bool validate_incremental_state(std::string* error = nullptr) const;

 private:
  struct ApproachEntry {
    std::uint32_t vehicle;
    double arrival;
  };
  struct LaneState {
    std::deque<std::uint32_t> queue;
    double credit = 0.0;  ///< saturation-flow discharge budget (vehicles)
    /// Step at which a discharge pop last emptied this lane. Reproduces the
    /// legacy per-visit credit zeroing lazily: discharge used to zero the
    /// credit of every lane it found empty, so a residual survives only if
    /// the lane refills before the next discharge pass — i.e. a push at
    /// step T keeps the banked credit iff T == empty_since + 1.
    std::int64_t empty_since = -2;
  };
  struct LinkState {
    std::deque<ApproachEntry> approaching;
    std::vector<LaneState> lanes;
    std::deque<std::uint32_t> backlog;  ///< spawned but not yet inserted
  };

  /// Validates flows and precomputes routing/capacity/signal tables.
  void build_static_tables();
  void spawn_and_insert();
  void insert_vehicle(std::uint32_t veh_idx);
  void process_arrivals();
  void discharge_node(const Node& node);
  void discharge_lane(LinkId link_id, std::uint32_t lane_idx, const Node& node);
  bool movement_green(const Node& node, MovementId m) const;

  /// Moves a vehicle onto a link's approaching deque and marks the link
  /// active for process_arrivals.
  void push_approaching(LinkId link, std::uint32_t veh_idx);
  /// Queue push/pop bookkeeping: incremental aggregates + wait epochs.
  void push_queue(LinkId link, LaneState& lane, std::uint32_t veh_idx);
  void pop_queue_bookkeeping(LinkId link, std::uint32_t veh_idx);
  /// Count-change hooks: invalidate the pressure snapshot of every link
  /// whose fold reads this link's detector count, when the detector-capped
  /// count actually changed. Call AFTER mutating link_count_[link].
  void note_count_increased(LinkId link);
  void note_count_decreased(LinkId link);
  void mark_pressure_deps(LinkId link);
  /// Rebuilds head_epoch_[link] from the lane fronts (counted refresh).
  void refresh_head_snapshot(LinkId link) const;
  void compact_unfinished();
  /// The value of a double accumulator after `n` additions of config_.tick
  /// starting from 0 — the exact fold the per-tick accrual sweep produced.
  double wait_value(std::uint32_t n) const;
  void materialize_waits() const;

  const RoadNetwork* net_;
  SimConfig config_;
  FlowSampler sampler_;
  Rng rng_;
  double now_ = 0.0;
  /// Completed steps; equals the number of wait-accrual points so far.
  std::int64_t step_count_ = 0;

  std::vector<Vehicle> vehicles_;
  std::vector<LinkState> link_states_;
  std::vector<SignalController> signals_;       // dense over nodes (sparse use)
  std::vector<std::int32_t> signal_index_;      // node id -> index or -1
  /// phase_green_[node][phase]: sorted movement list; fallback for nodes
  /// with more than 64 phases (phase_bits_ covers the rest in O(1)).
  std::vector<std::vector<std::vector<MovementId>>> phase_green_;
  /// Per movement: bit p set iff the movement is green in phase p.
  std::vector<std::uint64_t> phase_bits_;

  // ---- static per-link/per-flow tables (built once) ----
  std::vector<std::uint32_t> capacity_;      // storage in vehicles
  std::vector<std::uint32_t> detector_cap_;  // sensor coverage in vehicles
  std::vector<double> fftime_;               // free-flow traversal time
  std::vector<NodeId> to_node_;              // head node of each link
  /// flow_moves_[f][i]: movement route[i] -> route[i+1] of flow f.
  std::vector<std::vector<MovementId>> flow_moves_;
  std::vector<NodeId> interior_nodes_;       // non-boundary, id order
  std::vector<NodeId> signalized_nodes_;

  // ---- incremental aggregates ----
  std::vector<std::uint32_t> link_count_;   // approaching + queued per link
  std::vector<std::uint32_t> link_queue_;   // queued vehicles per link
  std::vector<std::uint32_t> node_queued_;  // sum over in-links per node
  std::uint32_t total_queued_ = 0;

  // ---- per-link sensor snapshots (lazy, query-refreshed) ----
  static constexpr std::int64_t kNoHead =
      std::numeric_limits<std::int64_t>::max();
  /// Min enqueue epoch over the lane-front vehicles (kNoHead: no queue).
  /// detector_head_wait == wait_value(step_count_ - head_epoch_): the
  /// legacy max-over-lanes fold equals the wait of the oldest head because
  /// wait_value is monotone in the tick count.
  mutable std::vector<std::int64_t> head_epoch_;
  mutable std::vector<std::uint8_t> head_stale_;
  /// Cached result of the legacy link_pressure fold (bit-exact: the stale
  /// path reruns the identical fold and the clean path returns its copy).
  mutable std::vector<double> pressure_snap_;
  mutable std::vector<std::uint8_t> pressure_stale_;
  /// CSR table: links whose pressure fold reads link l's detector count
  /// (l itself plus every link with a movement into l).
  std::vector<std::uint32_t> pressure_dep_offset_;
  std::vector<LinkId> pressure_dep_links_;
  /// Env-facing event stamps (see obs_event_steps()).
  std::vector<std::int64_t> obs_event_step_;
  mutable std::size_t obs_refresh_events_ = 0;

  // ---- active sets (sorted link ids + membership flags) ----
  std::vector<LinkId> backlog_active_;
  std::vector<LinkId> approach_active_;
  std::vector<std::uint8_t> in_backlog_active_;
  std::vector<std::uint8_t> in_approach_active_;

  // ---- lazy wait accounting ----
  std::vector<std::int64_t> enqueue_epoch_;  // per vehicle; -1 = not queued
  std::vector<std::uint32_t> wait_ticks_;    // completed accrual ticks
  /// wait_sum_[n] = n repeated additions of tick; grown on demand.
  mutable std::vector<double> wait_sum_;
  mutable bool waits_dirty_ = false;

  std::vector<std::size_t> arrivals_scratch_;  // reused by spawn_and_insert

  /// Unfinished vehicle ids in ascending order with lazy compaction, so the
  /// delay/travel-time folds touch O(active) vehicles in the same order as
  /// a full table walk.
  std::vector<std::uint32_t> unfinished_ids_;
  std::size_t stale_finished_ = 0;

  std::size_t finished_count_ = 0;
  double finished_tt_sum_ = 0.0;
};

}  // namespace tsc::sim
