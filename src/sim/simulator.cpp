#include "src/sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace tsc::sim {

Simulator::Simulator(const RoadNetwork* net, std::vector<FlowSpec> flows,
                     SimConfig config, std::uint64_t seed)
    : net_(net), config_(config), sampler_(std::move(flows)), rng_(seed) {
  if (net_ == nullptr || !net_->finalized())
    throw std::invalid_argument("Simulator: network must be finalized");
  build_static_tables();

  link_states_.resize(net_->num_links());
  for (LinkId l = 0; l < net_->num_links(); ++l)
    link_states_[l].lanes.resize(net_->link(l).lanes);

  signal_index_.assign(net_->num_nodes(), -1);
  phase_green_.resize(net_->num_nodes());
  phase_bits_.assign(net_->num_movements(), 0);
  for (const Node& n : net_->nodes()) {
    if (n.type != NodeType::kSignalized) continue;
    signal_index_[n.id] = static_cast<std::int32_t>(signals_.size());
    signals_.emplace_back(n.id, n.phases.size(), config_.yellow_time);
    phase_green_[n.id] = n.phases;
    for (auto& phase : phase_green_[n.id]) std::sort(phase.begin(), phase.end());
    if (n.phases.size() <= 64) {
      for (std::size_t p = 0; p < n.phases.size(); ++p)
        for (MovementId m : n.phases[p])
          phase_bits_[m] |= std::uint64_t{1} << p;
    }
  }

  link_count_.assign(net_->num_links(), 0);
  link_queue_.assign(net_->num_links(), 0);
  node_queued_.assign(net_->num_nodes(), 0);
  in_backlog_active_.assign(net_->num_links(), 0);
  in_approach_active_.assign(net_->num_links(), 0);
  head_epoch_.assign(net_->num_links(), kNoHead);
  head_stale_.assign(net_->num_links(), 0);
  pressure_snap_.assign(net_->num_links(), 0.0);
  pressure_stale_.assign(net_->num_links(), 1);
  obs_event_step_.assign(net_->num_links(), -1);
  wait_sum_.assign(1, 0.0);
}

void Simulator::build_static_tables() {
  const std::size_t num_links = net_->num_links();
  capacity_.resize(num_links);
  detector_cap_.resize(num_links);
  fftime_.resize(num_links);
  to_node_.resize(num_links);
  for (LinkId l = 0; l < num_links; ++l) {
    const Link& link = net_->link(l);
    const auto per_lane =
        static_cast<std::uint32_t>(link.length / config_.vehicle_gap);
    capacity_[l] = std::max(1u, per_lane) * link.lanes;
    // The head vehicle sits at the stopline, so it is always inside the
    // detector footprint even when detector_range < vehicle_gap.
    const auto det_per_lane = static_cast<std::uint32_t>(
        config_.detector_range / config_.vehicle_gap);
    detector_cap_[l] = std::max(1u, det_per_lane) * link.lanes;
    fftime_[l] = link.free_flow_time();
    to_node_[l] = link.to;
  }

  flow_moves_.resize(sampler_.flows().size());
  for (std::size_t f = 0; f < sampler_.flows().size(); ++f) {
    const FlowSpec& spec = sampler_.flows()[f];
    if (spec.route.empty()) throw std::invalid_argument("flow: empty route");
    flow_moves_[f].resize(spec.route.size() - 1);
    for (std::size_t i = 0; i + 1 < spec.route.size(); ++i) {
      const MovementId mid = net_->find_movement(spec.route[i], spec.route[i + 1]);
      if (mid == kInvalidId)
        throw std::invalid_argument("flow: route hop without movement");
      flow_moves_[f][i] = mid;
    }
    const Link& last = net_->link(spec.route.back());
    if (net_->node(last.to).type != NodeType::kBoundary)
      throw std::invalid_argument("flow: route must end at a boundary node");
  }

  for (const Node& n : net_->nodes())
    if (n.type != NodeType::kBoundary) interior_nodes_.push_back(n.id);
  signalized_nodes_ = net_->signalized_nodes();

  // CSR list of pressure dependents: link X's detector count appears in the
  // pressure fold of X itself and of every link with a movement into X.
  std::vector<std::vector<LinkId>> deps(num_links);
  for (LinkId l = 0; l < num_links; ++l) deps[l].push_back(l);
  for (const Movement& m : net_->movements())
    deps[m.to_link].push_back(m.from_link);
  pressure_dep_offset_.assign(num_links + 1, 0);
  pressure_dep_links_.clear();
  for (LinkId l = 0; l < num_links; ++l) {
    pressure_dep_offset_[l] =
        static_cast<std::uint32_t>(pressure_dep_links_.size());
    pressure_dep_links_.insert(pressure_dep_links_.end(), deps[l].begin(),
                               deps[l].end());
  }
  pressure_dep_offset_[num_links] =
      static_cast<std::uint32_t>(pressure_dep_links_.size());
}

void Simulator::reset(std::uint64_t seed) {
  rng_ = Rng(seed);
  now_ = 0.0;
  step_count_ = 0;
  vehicles_.clear();
  finished_count_ = 0;
  finished_tt_sum_ = 0.0;
  for (LinkState& ls : link_states_) {
    ls.approaching.clear();
    ls.backlog.clear();
    for (LaneState& lane : ls.lanes) {
      lane.queue.clear();
      lane.credit = 0.0;
      lane.empty_since = -2;
    }
  }
  for (SignalController& s : signals_) s.reset();
  std::fill(link_count_.begin(), link_count_.end(), 0u);
  std::fill(link_queue_.begin(), link_queue_.end(), 0u);
  std::fill(node_queued_.begin(), node_queued_.end(), 0u);
  total_queued_ = 0;
  std::fill(head_epoch_.begin(), head_epoch_.end(), kNoHead);
  std::fill(head_stale_.begin(), head_stale_.end(), 0);
  std::fill(pressure_stale_.begin(), pressure_stale_.end(), 1);
  std::fill(obs_event_step_.begin(), obs_event_step_.end(),
            std::int64_t{-1});
  backlog_active_.clear();
  approach_active_.clear();
  std::fill(in_backlog_active_.begin(), in_backlog_active_.end(), 0);
  std::fill(in_approach_active_.begin(), in_approach_active_.end(), 0);
  enqueue_epoch_.clear();
  wait_ticks_.clear();
  unfinished_ids_.clear();
  stale_finished_ = 0;
  waits_dirty_ = false;
}

void Simulator::set_phase(NodeId node, std::size_t phase) {
  const std::int32_t idx = signal_index_.at(node);
  if (idx < 0) throw std::invalid_argument("set_phase: node not signalized");
  signals_[static_cast<std::size_t>(idx)].request_phase(phase);
}

const SignalController& Simulator::signal(NodeId node) const {
  const std::int32_t idx = signal_index_.at(node);
  if (idx < 0) throw std::invalid_argument("signal: node not signalized");
  return signals_[static_cast<std::size_t>(idx)];
}

void Simulator::step() {
  spawn_and_insert();
  process_arrivals();
  for (NodeId nid : interior_nodes_) {
    if (node_queued_[nid] == 0) continue;  // no in-link has a queue
    discharge_node(net_->node(nid));
  }
  // Wait accrual is lazy: completing this step advances step_count_, which
  // adds one tick to every vehicle still queued (enqueue_epoch_ bookkeeping).
  for (SignalController& s : signals_) s.tick(config_.tick);
  now_ += config_.tick;
  ++step_count_;
  waits_dirty_ = true;
}

void Simulator::step_seconds(double seconds) {
  const auto ticks = static_cast<std::size_t>(std::ceil(seconds / config_.tick - 1e-9));
  for (std::size_t i = 0; i < ticks; ++i) step();
}

void Simulator::push_approaching(LinkId link, std::uint32_t veh_idx) {
  link_states_[link].approaching.push_back({veh_idx, now_ + fftime_[link]});
  if (!in_approach_active_[link]) {
    in_approach_active_[link] = 1;
    approach_active_.insert(
        std::lower_bound(approach_active_.begin(), approach_active_.end(), link),
        link);
  }
}

void Simulator::push_queue(LinkId link, LaneState& lane, std::uint32_t veh_idx) {
  // Legacy discharge zeroed the credit of every empty lane it visited, so a
  // banked residual survives only across an immediate refill (see LaneState).
  if (lane.queue.empty() && step_count_ > lane.empty_since + 1)
    lane.credit = 0.0;
  lane.queue.push_back(veh_idx);
  enqueue_epoch_[veh_idx] = step_count_;
  ++link_queue_[link];
  ++node_queued_[to_node_[link]];
  ++total_queued_;
  // A push becomes the link's oldest head only when no head predates it, so
  // the min-epoch snapshot stays clean (refreshes happen only after pops).
  if (step_count_ < head_epoch_[link]) head_epoch_[link] = step_count_;
  obs_event_step_[link] = step_count_;
}

void Simulator::pop_queue_bookkeeping(LinkId link, std::uint32_t veh_idx) {
  // Popping the oldest head invalidates the min-epoch snapshot (another
  // lane may share it); popping a younger head cannot move the minimum.
  if (!head_stale_[link] && enqueue_epoch_[veh_idx] == head_epoch_[link])
    head_stale_[link] = 1;
  obs_event_step_[link] = step_count_;
  wait_ticks_[veh_idx] +=
      static_cast<std::uint32_t>(step_count_ - enqueue_epoch_[veh_idx]);
  enqueue_epoch_[veh_idx] = -1;
  --link_queue_[link];
  --node_queued_[to_node_[link]];
  --total_queued_;
}

void Simulator::mark_pressure_deps(LinkId link) {
  const std::uint32_t begin = pressure_dep_offset_[link];
  const std::uint32_t end = pressure_dep_offset_[link + 1];
  for (std::uint32_t i = begin; i < end; ++i) {
    const LinkId d = pressure_dep_links_[i];
    pressure_stale_[d] = 1;
    obs_event_step_[d] = step_count_;
  }
}

void Simulator::note_count_increased(LinkId link) {
  // Called after ++link_count_: the detector-capped count changed iff the
  // new value is still inside the detector footprint.
  if (link_count_[link] <= detector_cap_[link]) mark_pressure_deps(link);
}

void Simulator::note_count_decreased(LinkId link) {
  if (link_count_[link] < detector_cap_[link]) mark_pressure_deps(link);
}

void Simulator::spawn_and_insert() {
  // Drain backlogs first (ascending link order) so earlier arrivals keep
  // priority; only links with a nonempty backlog are visited.
  std::size_t w = 0;
  for (std::size_t i = 0; i < backlog_active_.size(); ++i) {
    const LinkId l = backlog_active_[i];
    LinkState& ls = link_states_[l];
    while (!ls.backlog.empty() && link_count_[l] < capacity_[l]) {
      const std::uint32_t veh = ls.backlog.front();
      ls.backlog.pop_front();
      vehicles_[veh].entered = now_;
      push_approaching(l, veh);
      ++link_count_[l];
      note_count_increased(l);
    }
    if (ls.backlog.empty()) {
      in_backlog_active_[l] = 0;
    } else {
      backlog_active_[w++] = l;
    }
  }
  backlog_active_.resize(w);

  sampler_.sample_arrivals(now_, config_.tick, rng_, arrivals_scratch_);
  for (std::size_t flow_idx : arrivals_scratch_) {
    Vehicle v;
    v.id = static_cast<std::uint32_t>(vehicles_.size());
    v.flow = static_cast<std::uint32_t>(flow_idx);
    v.depart_scheduled = now_;
    vehicles_.push_back(v);
    enqueue_epoch_.push_back(-1);
    wait_ticks_.push_back(0);
    unfinished_ids_.push_back(v.id);
    insert_vehicle(v.id);
  }
}

void Simulator::insert_vehicle(std::uint32_t veh_idx) {
  Vehicle& v = vehicles_[veh_idx];
  const LinkId entry = sampler_.flows()[v.flow].route.front();
  LinkState& ls = link_states_[entry];
  if (link_count_[entry] < capacity_[entry] && ls.backlog.empty()) {
    v.entered = now_;
    push_approaching(entry, veh_idx);
    ++link_count_[entry];
    note_count_increased(entry);
  } else {
    ls.backlog.push_back(veh_idx);
    if (!in_backlog_active_[entry]) {
      in_backlog_active_[entry] = 1;
      backlog_active_.insert(
          std::lower_bound(backlog_active_.begin(), backlog_active_.end(), entry),
          entry);
    }
  }
}

void Simulator::process_arrivals() {
  // Only links with pending approaching vehicles, ascending id order (the
  // exit-time fold below is order-sensitive). Nothing is pushed onto an
  // approaching deque during this pass, so in-place compaction is safe.
  std::size_t w = 0;
  for (std::size_t i = 0; i < approach_active_.size(); ++i) {
    const LinkId l = approach_active_[i];
    LinkState& ls = link_states_[l];
    while (!ls.approaching.empty() && ls.approaching.front().arrival <= now_ + 1e-9) {
      const std::uint32_t veh_idx = ls.approaching.front().vehicle;
      ls.approaching.pop_front();
      Vehicle& v = vehicles_[veh_idx];
      const auto& moves = flow_moves_[v.flow];
      if (v.hop >= moves.size()) {
        // Final link: the head node is a boundary, so the vehicle exits.
        v.finished = true;
        v.exit_time = now_;
        ++finished_count_;
        finished_tt_sum_ += v.exit_time - v.depart_scheduled;
        assert(link_count_[l] > 0);
        --link_count_[l];
        note_count_decreased(l);
        if (++stale_finished_ >= 64 &&
            stale_finished_ * 2 > unfinished_ids_.size())
          compact_unfinished();
        continue;
      }
      const Movement& m = net_->movement(moves[v.hop]);
      // Join the shortest permitted lane.
      std::uint32_t best_lane = m.allowed_lanes.front();
      std::size_t best_len = ls.lanes[best_lane].queue.size();
      for (std::uint32_t lane : m.allowed_lanes) {
        if (ls.lanes[lane].queue.size() < best_len) {
          best_len = ls.lanes[lane].queue.size();
          best_lane = lane;
        }
      }
      push_queue(l, ls.lanes[best_lane], veh_idx);
    }
    if (ls.approaching.empty()) {
      in_approach_active_[l] = 0;
    } else {
      approach_active_[w++] = l;
    }
  }
  approach_active_.resize(w);
}

bool Simulator::movement_green(const Node& node, MovementId m) const {
  if (node.type == NodeType::kUnsignalized) return true;
  const SignalController& sig =
      signals_[static_cast<std::size_t>(signal_index_[node.id])];
  if (sig.in_yellow()) return false;
  if (node.phases.size() <= 64)
    return (phase_bits_[m] >> sig.phase()) & 1u;
  const auto& green = phase_green_[node.id][sig.phase()];
  return std::binary_search(green.begin(), green.end(), m);
}

void Simulator::discharge_node(const Node& node) {
  for (LinkId lid : node.in_links) {
    if (link_queue_[lid] == 0) continue;
    const Link& link = net_->link(lid);
    for (std::uint32_t lane = 0; lane < link.lanes; ++lane) {
      if (link_states_[lid].lanes[lane].queue.empty()) continue;
      discharge_lane(lid, lane, node);
    }
  }
}

void Simulator::discharge_lane(LinkId link_id, std::uint32_t lane_idx,
                               const Node& node) {
  LinkState& ls = link_states_[link_id];
  LaneState& lane = ls.lanes[lane_idx];
  // Saturation-flow budget accrues only while a queue is present (the
  // caller skips empty lanes; push_queue reproduces the credit reset an
  // empty-lane visit used to perform). The cap to one banked vehicle is
  // applied after discharging so the fractional remainder carries over
  // during sustained green (exact 1/headway rate), while a blocked or
  // empty lane cannot hoard green time.
  lane.credit += config_.tick / config_.sat_headway;
  while (!lane.queue.empty() && lane.credit >= 1.0 - 1e-9) {
    const std::uint32_t veh_idx = lane.queue.front();
    Vehicle& v = vehicles_[veh_idx];
    const auto& moves = flow_moves_[v.flow];
    assert(v.hop < moves.size() && "queued vehicle must have a next link");
    const MovementId mid = moves[v.hop];
    if (!movement_green(node, mid)) break;  // red head blocks the lane (HoL)
    const LinkId next = net_->movement(mid).to_link;
    if (link_count_[next] >= capacity_[next]) break;  // spillback
    lane.queue.pop_front();
    lane.credit -= 1.0;
    assert(link_count_[link_id] > 0);
    --link_count_[link_id];
    note_count_decreased(link_id);
    pop_queue_bookkeeping(link_id, veh_idx);
    v.hop += 1;
    push_approaching(next, veh_idx);
    ++link_count_[next];
    note_count_increased(next);
  }
  lane.credit = std::min(lane.credit, 1.0);
  if (lane.queue.empty()) lane.empty_since = step_count_;
}

double Simulator::wait_value(std::uint32_t n) const {
  while (wait_sum_.size() <= n) wait_sum_.push_back(wait_sum_.back() + config_.tick);
  return wait_sum_[n];
}

void Simulator::materialize_waits() const {
  if (!waits_dirty_) return;
  auto& vehicles = const_cast<std::vector<Vehicle>&>(vehicles_);
  for (std::size_t i = 0; i < vehicles.size(); ++i) {
    Vehicle& v = vehicles[i];
    const std::int64_t e = enqueue_epoch_[i];
    const auto cur =
        e >= 0 ? static_cast<std::uint32_t>(step_count_ - e) : 0u;
    v.wait_current = wait_value(cur);
    v.wait_total = wait_value(wait_ticks_[i] + cur);
  }
  waits_dirty_ = false;
}

const std::vector<Vehicle>& Simulator::vehicles() const {
  materialize_waits();
  return vehicles_;
}

void Simulator::compact_unfinished() {
  std::size_t w = 0;
  for (std::uint32_t id : unfinished_ids_)
    if (!vehicles_[id].finished) unfinished_ids_[w++] = id;
  unfinished_ids_.resize(w);
  stale_finished_ = 0;
}

std::uint32_t Simulator::link_capacity(LinkId link) const {
  return capacity_.at(link);
}

std::uint32_t Simulator::link_count(LinkId link) const {
  return link_count_.at(link);
}

std::uint32_t Simulator::link_queue(LinkId link) const {
  return link_queue_.at(link);
}

std::uint32_t Simulator::lane_queue(LinkId link, std::uint32_t lane) const {
  return static_cast<std::uint32_t>(link_states_.at(link).lanes.at(lane).queue.size());
}

double Simulator::lane_head_wait(LinkId link, std::uint32_t lane) const {
  const auto& q = link_states_.at(link).lanes.at(lane).queue;
  if (q.empty()) return 0.0;
  return wait_value(
      static_cast<std::uint32_t>(step_count_ - enqueue_epoch_[q.front()]));
}

std::uint32_t Simulator::detector_queue(LinkId link) const {
  return std::min(link_queue_.at(link), detector_cap_[link]);
}

std::uint32_t Simulator::detector_count(LinkId link) const {
  return std::min(link_count_.at(link), detector_cap_[link]);
}

void Simulator::refresh_head_snapshot(LinkId link) const {
  ++obs_refresh_events_;
  std::int64_t best = kNoHead;
  for (const LaneState& lane : link_states_[link].lanes) {
    if (lane.queue.empty()) continue;
    const std::int64_t e = enqueue_epoch_[lane.queue.front()];
    if (e < best) best = e;
  }
  head_epoch_[link] = best;
  head_stale_[link] = 0;
}

double Simulator::detector_head_wait(LinkId link) const {
  // wait_value is monotone non-decreasing in its argument, so the max over
  // nonempty lane fronts equals the wait of the minimum front epoch — the
  // cached scalar reproduces the legacy max-over-lanes fold bit-exactly.
  if (head_stale_.at(link)) refresh_head_snapshot(link);
  const std::int64_t e = head_epoch_[link];
  if (e == kNoHead) return 0.0;
  return wait_value(static_cast<std::uint32_t>(step_count_ - e));
}

double Simulator::link_pressure(LinkId link) const {
  if (pressure_stale_.at(link)) {
    ++obs_refresh_events_;
    // Exact legacy fold (division order and operand order preserved); the
    // cache stores the identical bits the per-query path produced.
    const Link& in = net_->link(link);
    const double in_per_lane = static_cast<double>(detector_count(link)) /
                               static_cast<double>(in.lanes);
    double out_sum = 0.0;
    std::size_t out_count = 0;
    for (MovementId mid : in.out_movements) {
      const Link& out = net_->link(net_->movement(mid).to_link);
      out_sum += static_cast<double>(detector_count(out.id)) /
                 static_cast<double>(out.lanes);
      ++out_count;
    }
    pressure_snap_[link] =
        out_count == 0 ? in_per_lane
                       : in_per_lane - out_sum / static_cast<double>(out_count);
    pressure_stale_[link] = 0;
  }
  return pressure_snap_[link];
}

double Simulator::intersection_pressure(NodeId node) const {
  const Node& n = net_->node(node);
  double p = 0.0;
  for (LinkId l : n.in_links) p += link_count(l);
  for (LinkId l : n.out_links) p -= link_count(l);
  return p;
}

std::uint32_t Simulator::intersection_halting(NodeId node) const {
  return node_queued_.at(node);
}

double Simulator::intersection_max_head_wait(NodeId node) const {
  double best = 0.0;
  for (LinkId l : net_->node(node).in_links)
    best = std::max(best, detector_head_wait(l));
  return best;
}

double Simulator::network_avg_wait() const {
  if (signalized_nodes_.empty()) return 0.0;
  double sum = 0.0;
  for (NodeId n : signalized_nodes_) sum += intersection_max_head_wait(n);
  return sum / static_cast<double>(signalized_nodes_.size());
}

std::uint32_t Simulator::network_halting() const {
  return total_queued_;
}

std::size_t Simulator::vehicles_active() const {
  return vehicles_.size() - finished_count_;
}

double Simulator::average_delay() const {
  if (vehicles_.empty()) return 0.0;
  // Same fold, in the same vehicle-id order, as a walk over the full table
  // (FP addition order is observable); unfinished_ids_ merely skips the
  // finished prefix in O(active).
  double total = finished_tt_sum_;
  for (std::uint32_t id : unfinished_ids_) {
    const Vehicle& v = vehicles_[id];
    if (v.finished) continue;
    total += now_ - v.depart_scheduled;
  }
  return total / static_cast<double>(vehicles_.size());
}

double Simulator::average_travel_time() const {
  // Entered vehicles only: under spillback the spawn backlog holds vehicles
  // that never reached the network, and counting them (as average_delay
  // does) conflates source-queue delay with network travel time.
  double total = finished_tt_sum_;
  std::size_t entered = finished_count_;
  for (std::uint32_t id : unfinished_ids_) {
    const Vehicle& v = vehicles_[id];
    if (v.finished || v.entered < 0.0) continue;
    total += now_ - v.depart_scheduled;
    ++entered;
  }
  if (entered == 0) return 0.0;
  return total / static_cast<double>(entered);
}

double Simulator::average_travel_time_finished() const {
  if (finished_count_ == 0) return 0.0;
  return finished_tt_sum_ / static_cast<double>(finished_count_);
}

bool Simulator::validate_incremental_state(std::string* error) const {
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };

  std::uint32_t total = 0;
  std::vector<std::uint32_t> node_sum(net_->num_nodes(), 0);
  std::vector<std::uint32_t> scratch_count(net_->num_links(), 0);
  std::vector<std::uint8_t> queued(vehicles_.size(), 0);
  for (LinkId l = 0; l < net_->num_links(); ++l) {
    const LinkState& ls = link_states_[l];
    std::uint32_t q = 0;
    for (const LaneState& lane : ls.lanes) {
      for (std::uint32_t id : lane.queue) {
        if (queued[id])
          return fail("vehicle " + std::to_string(id) + " queued twice");
        queued[id] = 1;
        if (enqueue_epoch_[id] < 0 || enqueue_epoch_[id] > step_count_)
          return fail("vehicle " + std::to_string(id) +
                      " queued with invalid enqueue epoch");
      }
      q += static_cast<std::uint32_t>(lane.queue.size());
    }
    if (q != link_queue_[l])
      return fail("link_queue mismatch on link " + std::to_string(l) + ": " +
                  std::to_string(link_queue_[l]) + " cached vs " +
                  std::to_string(q) + " scratch");
    const auto count =
        static_cast<std::uint32_t>(ls.approaching.size()) + q;
    if (count != link_count_[l])
      return fail("link count mismatch on link " + std::to_string(l));
    scratch_count[l] = count;
    // Head-wait snapshot: a clean cache must equal the scratch minimum
    // front-enqueue epoch across lanes (kNoHead when no lane has a queue).
    if (!head_stale_[l]) {
      std::int64_t best = kNoHead;
      for (const LaneState& lane : ls.lanes) {
        if (lane.queue.empty()) continue;
        best = std::min(best, enqueue_epoch_[lane.queue.front()]);
      }
      if (best != head_epoch_[l])
        return fail("head-epoch snapshot mismatch on link " + std::to_string(l) +
                    ": " + std::to_string(head_epoch_[l]) + " cached vs " +
                    std::to_string(best) + " scratch");
    }
    if (obs_event_step_[l] > step_count_)
      return fail("obs event stamp from the future on link " + std::to_string(l));
    node_sum[to_node_[l]] += q;
    total += q;
    if (static_cast<bool>(in_backlog_active_[l]) != !ls.backlog.empty())
      return fail("backlog active flag mismatch on link " + std::to_string(l));
    if (static_cast<bool>(in_approach_active_[l]) != !ls.approaching.empty())
      return fail("approach active flag mismatch on link " + std::to_string(l));
  }
  if (total != total_queued_)
    return fail("network_halting mismatch: " + std::to_string(total_queued_) +
                " cached vs " + std::to_string(total) + " scratch");
  for (NodeId n = 0; n < net_->num_nodes(); ++n) {
    if (node_sum[n] != node_queued_[n])
      return fail("intersection_halting mismatch on node " + std::to_string(n));
  }

  // Pressure snapshot: a clean cache must reproduce the legacy fold over
  // scratch detector counts bit-exactly (same operand and division order).
  const auto scratch_det = [&](LinkId l) {
    return std::min(scratch_count[l], detector_cap_[l]);
  };
  for (LinkId l = 0; l < net_->num_links(); ++l) {
    if (pressure_stale_[l]) continue;
    const Link& in = net_->link(l);
    const double in_per_lane =
        static_cast<double>(scratch_det(l)) / static_cast<double>(in.lanes);
    double out_sum = 0.0;
    std::size_t out_count = 0;
    for (MovementId mid : in.out_movements) {
      const Link& out = net_->link(net_->movement(mid).to_link);
      out_sum += static_cast<double>(scratch_det(out.id)) /
                 static_cast<double>(out.lanes);
      ++out_count;
    }
    const double expect =
        out_count == 0 ? in_per_lane
                       : in_per_lane - out_sum / static_cast<double>(out_count);
    if (expect != pressure_snap_[l])
      return fail("pressure snapshot mismatch on link " + std::to_string(l));
  }

  const auto check_active = [&](const std::vector<LinkId>& list,
                                const std::vector<std::uint8_t>& flags,
                                const char* name) -> const char* {
    if (!std::is_sorted(list.begin(), list.end())) return name;
    if (std::adjacent_find(list.begin(), list.end()) != list.end()) return name;
    std::size_t flagged = 0;
    for (std::uint8_t f : flags) flagged += f;
    if (flagged != list.size()) return name;
    for (LinkId l : list)
      if (!flags[l]) return name;
    return nullptr;
  };
  if (const char* bad =
          check_active(backlog_active_, in_backlog_active_, "backlog"))
    return fail(std::string(bad) + " active set inconsistent");
  if (const char* bad =
          check_active(approach_active_, in_approach_active_, "approach"))
    return fail(std::string(bad) + " active set inconsistent");

  std::size_t finished = 0;
  double tt = 0.0;
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    const Vehicle& v = vehicles_[i];
    if ((enqueue_epoch_[i] >= 0) != static_cast<bool>(queued[i]))
      return fail("vehicle " + std::to_string(i) +
                  " enqueue epoch disagrees with queue membership");
    if (v.finished) {
      ++finished;
      tt += v.exit_time - v.depart_scheduled;
      if (queued[i])
        return fail("finished vehicle " + std::to_string(i) + " still queued");
    }
  }
  if (finished != finished_count_)
    return fail("finished_count mismatch: " + std::to_string(finished_count_) +
                " cached vs " + std::to_string(finished) + " scratch");
  // finished_tt_sum_ accumulates in finish order, the scratch sum in id
  // order, so only near-equality (not bit equality) is checkable here.
  if (std::abs(tt - finished_tt_sum_) >
      1e-9 * std::max(1.0, std::abs(tt)))
    return fail("finished travel-time sum mismatch");

  std::vector<std::uint8_t> listed(vehicles_.size(), 0);
  for (std::uint32_t id : unfinished_ids_) {
    if (id >= vehicles_.size() || listed[id])
      return fail("unfinished id list corrupt at id " + std::to_string(id));
    listed[id] = 1;
  }
  if (!std::is_sorted(unfinished_ids_.begin(), unfinished_ids_.end()))
    return fail("unfinished id list not sorted");
  for (std::size_t i = 0; i < vehicles_.size(); ++i)
    if (!vehicles_[i].finished && !listed[i])
      return fail("unfinished vehicle " + std::to_string(i) +
                  " missing from id list");
  return true;
}

}  // namespace tsc::sim
