#include "src/sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace tsc::sim {

Simulator::Simulator(const RoadNetwork* net, std::vector<FlowSpec> flows,
                     SimConfig config, std::uint64_t seed)
    : net_(net), config_(config), sampler_(std::move(flows)), rng_(seed) {
  if (net_ == nullptr || !net_->finalized())
    throw std::invalid_argument("Simulator: network must be finalized");
  validate_flows();

  link_states_.resize(net_->num_links());
  for (LinkId l = 0; l < net_->num_links(); ++l)
    link_states_[l].lanes.resize(net_->link(l).lanes);

  signal_index_.assign(net_->num_nodes(), -1);
  phase_green_.resize(net_->num_nodes());
  for (const Node& n : net_->nodes()) {
    if (n.type != NodeType::kSignalized) continue;
    signal_index_[n.id] = static_cast<std::int32_t>(signals_.size());
    signals_.emplace_back(n.id, n.phases.size(), config_.yellow_time);
    phase_green_[n.id] = n.phases;
    for (auto& phase : phase_green_[n.id]) std::sort(phase.begin(), phase.end());
  }
}

void Simulator::validate_flows() const {
  for (const FlowSpec& f : sampler_.flows()) {
    if (f.route.empty()) throw std::invalid_argument("flow: empty route");
    for (std::size_t i = 0; i + 1 < f.route.size(); ++i) {
      if (net_->find_movement(f.route[i], f.route[i + 1]) == kInvalidId)
        throw std::invalid_argument("flow: route hop without movement");
    }
    const Link& last = net_->link(f.route.back());
    if (net_->node(last.to).type != NodeType::kBoundary)
      throw std::invalid_argument("flow: route must end at a boundary node");
  }
}

void Simulator::reset(std::uint64_t seed) {
  rng_ = Rng(seed);
  now_ = 0.0;
  vehicles_.clear();
  finished_count_ = 0;
  finished_tt_sum_ = 0.0;
  for (LinkState& ls : link_states_) {
    ls.approaching.clear();
    ls.backlog.clear();
    ls.count = 0;
    for (LaneState& lane : ls.lanes) {
      lane.queue.clear();
      lane.credit = 0.0;
    }
  }
  for (SignalController& s : signals_) s.reset();
}

void Simulator::set_phase(NodeId node, std::size_t phase) {
  const std::int32_t idx = signal_index_.at(node);
  if (idx < 0) throw std::invalid_argument("set_phase: node not signalized");
  signals_[static_cast<std::size_t>(idx)].request_phase(phase);
}

const SignalController& Simulator::signal(NodeId node) const {
  const std::int32_t idx = signal_index_.at(node);
  if (idx < 0) throw std::invalid_argument("signal: node not signalized");
  return signals_[static_cast<std::size_t>(idx)];
}

void Simulator::step() {
  spawn_and_insert();
  process_arrivals();
  for (const Node& n : net_->nodes())
    if (n.type != NodeType::kBoundary) discharge_node(n);
  accrue_waits();
  for (SignalController& s : signals_) s.tick(config_.tick);
  now_ += config_.tick;
}

void Simulator::step_seconds(double seconds) {
  const auto ticks = static_cast<std::size_t>(std::ceil(seconds / config_.tick - 1e-9));
  for (std::size_t i = 0; i < ticks; ++i) step();
}

LinkId Simulator::next_link_of(const Vehicle& v) const {
  const auto& route = sampler_.flows()[v.flow].route;
  if (v.hop + 1 >= route.size()) return kInvalidId;
  return route[v.hop + 1];
}

void Simulator::spawn_and_insert() {
  // Drain backlogs first so earlier arrivals keep priority.
  for (LinkId l = 0; l < net_->num_links(); ++l) {
    LinkState& ls = link_states_[l];
    while (!ls.backlog.empty() && ls.count < link_capacity(l)) {
      const std::uint32_t veh = ls.backlog.front();
      ls.backlog.pop_front();
      vehicles_[veh].entered = now_;
      ls.approaching.push_back({veh, now_ + net_->link(l).free_flow_time()});
      ++ls.count;
    }
  }
  for (std::size_t flow_idx : sampler_.sample_arrivals(now_, config_.tick, rng_)) {
    Vehicle v;
    v.id = static_cast<std::uint32_t>(vehicles_.size());
    v.flow = static_cast<std::uint32_t>(flow_idx);
    v.depart_scheduled = now_;
    vehicles_.push_back(v);
    insert_vehicle(v.id);
  }
}

void Simulator::insert_vehicle(std::uint32_t veh_idx) {
  Vehicle& v = vehicles_[veh_idx];
  const LinkId entry = sampler_.flows()[v.flow].route.front();
  LinkState& ls = link_states_[entry];
  if (ls.count < link_capacity(entry) && ls.backlog.empty()) {
    v.entered = now_;
    ls.approaching.push_back({veh_idx, now_ + net_->link(entry).free_flow_time()});
    ++ls.count;
  } else {
    ls.backlog.push_back(veh_idx);
  }
}

void Simulator::process_arrivals() {
  for (LinkId l = 0; l < net_->num_links(); ++l) {
    LinkState& ls = link_states_[l];
    while (!ls.approaching.empty() && ls.approaching.front().arrival <= now_ + 1e-9) {
      const std::uint32_t veh_idx = ls.approaching.front().vehicle;
      ls.approaching.pop_front();
      Vehicle& v = vehicles_[veh_idx];
      const LinkId next = next_link_of(v);
      if (next == kInvalidId) {
        // Final link: the head node is a boundary, so the vehicle exits.
        v.finished = true;
        v.exit_time = now_;
        ++finished_count_;
        finished_tt_sum_ += v.exit_time - v.depart_scheduled;
        assert(ls.count > 0);
        --ls.count;
        continue;
      }
      const MovementId mid = net_->find_movement(l, next);
      assert(mid != kInvalidId);
      const Movement& m = net_->movement(mid);
      // Join the shortest permitted lane.
      std::uint32_t best_lane = m.allowed_lanes.front();
      std::size_t best_len = ls.lanes[best_lane].queue.size();
      for (std::uint32_t lane : m.allowed_lanes) {
        if (ls.lanes[lane].queue.size() < best_len) {
          best_len = ls.lanes[lane].queue.size();
          best_lane = lane;
        }
      }
      v.wait_current = 0.0;
      ls.lanes[best_lane].queue.push_back(veh_idx);
    }
  }
}

bool Simulator::movement_green(const Node& node, MovementId m) const {
  if (node.type == NodeType::kUnsignalized) return true;
  const SignalController& sig =
      signals_[static_cast<std::size_t>(signal_index_[node.id])];
  if (sig.in_yellow()) return false;
  const auto& green = phase_green_[node.id][sig.phase()];
  return std::binary_search(green.begin(), green.end(), m);
}

void Simulator::discharge_node(const Node& node) {
  for (LinkId lid : node.in_links) {
    const Link& link = net_->link(lid);
    for (std::uint32_t lane = 0; lane < link.lanes; ++lane)
      discharge_lane(lid, lane, node);
  }
}

void Simulator::discharge_lane(LinkId link_id, std::uint32_t lane_idx,
                               const Node& node) {
  LinkState& ls = link_states_[link_id];
  LaneState& lane = ls.lanes[lane_idx];
  // Saturation-flow budget accrues only while a queue is present. The cap
  // to one banked vehicle is applied after discharging so the fractional
  // remainder carries over during sustained green (exact 1/headway rate),
  // while a blocked or empty lane cannot hoard green time.
  if (lane.queue.empty()) {
    lane.credit = 0.0;
    return;
  }
  lane.credit += config_.tick / config_.sat_headway;
  while (!lane.queue.empty() && lane.credit >= 1.0 - 1e-9) {
    const std::uint32_t veh_idx = lane.queue.front();
    Vehicle& v = vehicles_[veh_idx];
    const LinkId next = next_link_of(v);
    assert(next != kInvalidId && "queued vehicle must have a next link");
    const MovementId mid = net_->find_movement(link_id, next);
    assert(mid != kInvalidId);
    if (!movement_green(node, mid)) break;  // red head blocks the lane (HoL)
    LinkState& next_ls = link_states_[next];
    if (next_ls.count >= link_capacity(next)) break;  // spillback
    lane.queue.pop_front();
    lane.credit -= 1.0;
    assert(ls.count > 0);
    --ls.count;
    v.hop += 1;
    v.wait_current = 0.0;
    next_ls.approaching.push_back({veh_idx, now_ + net_->link(next).free_flow_time()});
    ++next_ls.count;
  }
  lane.credit = std::min(lane.credit, 1.0);
}

void Simulator::accrue_waits() {
  for (LinkState& ls : link_states_) {
    for (LaneState& lane : ls.lanes) {
      for (std::uint32_t veh_idx : lane.queue) {
        vehicles_[veh_idx].wait_current += config_.tick;
        vehicles_[veh_idx].wait_total += config_.tick;
      }
    }
  }
}

std::uint32_t Simulator::link_capacity(LinkId link) const {
  const Link& l = net_->link(link);
  const auto per_lane = static_cast<std::uint32_t>(l.length / config_.vehicle_gap);
  return std::max(1u, per_lane) * l.lanes;
}

std::uint32_t Simulator::link_count(LinkId link) const {
  return link_states_.at(link).count;
}

std::uint32_t Simulator::link_queue(LinkId link) const {
  std::uint32_t total = 0;
  for (const LaneState& lane : link_states_.at(link).lanes)
    total += static_cast<std::uint32_t>(lane.queue.size());
  return total;
}

std::uint32_t Simulator::lane_queue(LinkId link, std::uint32_t lane) const {
  return static_cast<std::uint32_t>(link_states_.at(link).lanes.at(lane).queue.size());
}

double Simulator::lane_head_wait(LinkId link, std::uint32_t lane) const {
  const auto& q = link_states_.at(link).lanes.at(lane).queue;
  return q.empty() ? 0.0 : vehicles_[q.front()].wait_current;
}

std::uint32_t Simulator::detector_queue(LinkId link) const {
  const Link& l = net_->link(link);
  const auto cap = static_cast<std::uint32_t>(config_.detector_range /
                                              config_.vehicle_gap) * l.lanes;
  return std::min(link_queue(link), cap);
}

std::uint32_t Simulator::detector_count(LinkId link) const {
  const Link& l = net_->link(link);
  const auto cap = static_cast<std::uint32_t>(config_.detector_range /
                                              config_.vehicle_gap) * l.lanes;
  return std::min(link_count(link), cap);
}

double Simulator::detector_head_wait(LinkId link) const {
  double best = 0.0;
  const Link& l = net_->link(link);
  for (std::uint32_t lane = 0; lane < l.lanes; ++lane)
    best = std::max(best, lane_head_wait(link, lane));
  return best;
}

double Simulator::link_pressure(LinkId link) const {
  const Link& in = net_->link(link);
  const double in_per_lane =
      static_cast<double>(detector_count(link)) / static_cast<double>(in.lanes);
  double out_sum = 0.0;
  std::size_t out_count = 0;
  for (MovementId mid : in.out_movements) {
    const Link& out = net_->link(net_->movement(mid).to_link);
    out_sum += static_cast<double>(detector_count(out.id)) /
               static_cast<double>(out.lanes);
    ++out_count;
  }
  if (out_count == 0) return in_per_lane;
  return in_per_lane - out_sum / static_cast<double>(out_count);
}

double Simulator::intersection_pressure(NodeId node) const {
  const Node& n = net_->node(node);
  double p = 0.0;
  for (LinkId l : n.in_links) p += link_count(l);
  for (LinkId l : n.out_links) p -= link_count(l);
  return p;
}

std::uint32_t Simulator::intersection_halting(NodeId node) const {
  std::uint32_t total = 0;
  for (LinkId l : net_->node(node).in_links) total += link_queue(l);
  return total;
}

double Simulator::intersection_max_head_wait(NodeId node) const {
  double best = 0.0;
  for (LinkId l : net_->node(node).in_links)
    best = std::max(best, detector_head_wait(l));
  return best;
}

double Simulator::network_avg_wait() const {
  const auto nodes = net_->signalized_nodes();
  if (nodes.empty()) return 0.0;
  double sum = 0.0;
  for (NodeId n : nodes) sum += intersection_max_head_wait(n);
  return sum / static_cast<double>(nodes.size());
}

std::uint32_t Simulator::network_halting() const {
  std::uint32_t total = 0;
  for (LinkId l = 0; l < net_->num_links(); ++l) total += link_queue(l);
  return total;
}

std::size_t Simulator::vehicles_active() const {
  return vehicles_.size() - finished_count_;
}

double Simulator::average_delay() const {
  if (vehicles_.empty()) return 0.0;
  double total = finished_tt_sum_;
  for (const Vehicle& v : vehicles_)
    if (!v.finished) total += now_ - v.depart_scheduled;
  return total / static_cast<double>(vehicles_.size());
}

double Simulator::average_travel_time() const {
  // Entered vehicles only: under spillback the spawn backlog holds vehicles
  // that never reached the network, and counting them (as average_delay
  // does) conflates source-queue delay with network travel time.
  double total = finished_tt_sum_;
  std::size_t entered = finished_count_;
  for (const Vehicle& v : vehicles_) {
    if (v.finished || v.entered < 0.0) continue;
    total += now_ - v.depart_scheduled;
    ++entered;
  }
  if (entered == 0) return 0.0;
  return total / static_cast<double>(entered);
}

double Simulator::average_travel_time_finished() const {
  if (finished_count_ == 0) return 0.0;
  return finished_tt_sum_ / static_cast<double>(finished_count_);
}

}  // namespace tsc::sim
