// Road network model: nodes (intersections / boundary terminals), directed
// links with lanes, turning movements with lane permissions, and signal
// phase sets. This is the static description; dynamics live in simulator.hpp.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace tsc::sim {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;
using MovementId = std::uint32_t;

inline constexpr std::uint32_t kInvalidId = std::numeric_limits<std::uint32_t>::max();

enum class NodeType {
  kSignalized,    ///< Interior intersection controlled by an RL agent.
  kUnsignalized,  ///< Interior junction, movements always permitted.
  kBoundary,      ///< Source/sink terminal; vehicles enter and leave here.
};

enum class Turn { kLeft, kThrough, kRight };

struct Node {
  NodeId id = kInvalidId;
  NodeType type = NodeType::kBoundary;
  double x = 0.0;
  double y = 0.0;
  std::string name;
  std::vector<LinkId> in_links;
  std::vector<LinkId> out_links;
  /// Signal phases; phases[p] is the set of movements green in phase p.
  /// Empty for non-signalized nodes.
  std::vector<std::vector<MovementId>> phases;
};

struct Link {
  LinkId id = kInvalidId;
  NodeId from = kInvalidId;
  NodeId to = kInvalidId;
  double length = 200.0;      ///< meters
  std::uint32_t lanes = 1;
  double speed = 13.89;       ///< free-flow speed, m/s (default 50 km/h)
  std::string name;
  /// Movements leaving this link (computed by finalize()).
  std::vector<MovementId> out_movements;

  double free_flow_time() const { return length / speed; }
};

/// A permitted turn: vehicles travelling `from_link` may continue onto
/// `to_link` using any lane in `allowed_lanes` (indices on `from_link`).
/// A lane listed by several movements is a shared lane (head-of-line
/// blocking applies).
struct Movement {
  MovementId id = kInvalidId;
  LinkId from_link = kInvalidId;
  LinkId to_link = kInvalidId;
  Turn turn = Turn::kThrough;
  std::vector<std::uint32_t> allowed_lanes;
  /// Node the movement crosses (== link[from_link].to).
  NodeId node = kInvalidId;
};

/// Immutable after finalize(). Built by scenario generators.
class RoadNetwork {
 public:
  NodeId add_node(NodeType type, double x, double y, std::string name = {});
  LinkId add_link(NodeId from, NodeId to, double length, std::uint32_t lanes,
                  double speed, std::string name = {});
  MovementId add_movement(LinkId from_link, LinkId to_link, Turn turn,
                          std::vector<std::uint32_t> allowed_lanes);
  /// Registers the phase table for a signalized node. Each phase is a list
  /// of movement ids at that node.
  void set_phases(NodeId node, std::vector<std::vector<MovementId>> phases);

  /// Validates the topology and freezes the network. Throws
  /// std::invalid_argument on inconsistencies (dangling ids, movements whose
  /// links do not share a node, lane indices out of range, signalized nodes
  /// without phases, phases referencing foreign movements).
  void finalize();
  bool finalized() const { return finalized_; }

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_links() const { return links_.size(); }
  std::size_t num_movements() const { return movements_.size(); }

  const Node& node(NodeId id) const { return nodes_.at(id); }
  const Link& link(LinkId id) const { return links_.at(id); }
  const Movement& movement(MovementId id) const { return movements_.at(id); }
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Link>& links() const { return links_; }
  const std::vector<Movement>& movements() const { return movements_; }

  /// Ids of all signalized nodes, ascending.
  std::vector<NodeId> signalized_nodes() const;

  /// Movement from `from_link` to `to_link`, or kInvalidId if absent.
  MovementId find_movement(LinkId from_link, LinkId to_link) const;

  /// Shortest path (by free-flow time) as a link sequence from `from_link`
  /// (inclusive) to any link ending at `dest`; empty if unreachable.
  std::vector<LinkId> shortest_route(LinkId from_link, NodeId dest) const;

  /// Signalized 1-hop neighbors of a signalized node: nodes with a direct
  /// link to or from `id`, ascending, excluding `id` itself.
  std::vector<NodeId> neighbor_signalized(NodeId id) const;

  /// Upstream signalized neighbors: nodes with a link INTO `id`.
  std::vector<NodeId> upstream_signalized(NodeId id) const;

 private:
  void require_not_finalized() const;

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<Movement> movements_;
  bool finalized_ = false;
};

}  // namespace tsc::sim
