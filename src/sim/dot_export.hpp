// Graphviz DOT export of a road network (and optionally live congestion)
// for quick visual inspection of generated scenarios.
#pragma once

#include <string>

#include "src/sim/network.hpp"

namespace tsc::sim {

class Simulator;

/// Renders the static topology: signalized nodes as boxes, boundary
/// terminals as circles, links as directed edges labelled "lanes@length".
std::string to_dot(const RoadNetwork& net);

/// Same, with live queue counts: edge color intensity scales with the
/// current queue on each link (red = at capacity).
std::string to_dot(const Simulator& sim);

/// Writes to_dot(...) output to a file. Throws std::runtime_error on I/O
/// failure.
void write_dot(const RoadNetwork& net, const std::string& path);

}  // namespace tsc::sim
