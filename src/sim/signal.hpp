// Per-intersection signal state machine with a safety yellow interlock.
//
// An agent requests a phase; if it differs from the active one the
// controller first runs an all-red/yellow clearance interval during which no
// movement discharges, then activates the new phase. Requesting the active
// phase extends the green.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/network.hpp"

namespace tsc::sim {

class SignalController {
 public:
  /// `num_phases` from the node's phase table; `yellow_time` in seconds.
  SignalController(NodeId node, std::size_t num_phases, double yellow_time);

  /// Requests phase `p` (the agent action). Starts the yellow interlock if
  /// `p` differs from the active phase. While a switch is in flight,
  /// retargeting to a different phase RESTARTS the clearance interval (the
  /// new target always receives the full yellow time), and retargeting back
  /// to the active phase cancels the switch and resumes the running green.
  void request_phase(std::size_t p);

  /// Advances time by dt seconds, completing a pending switch when the
  /// yellow interval elapses.
  void tick(double dt);

  /// Active phase index. During yellow this is the *outgoing* phase.
  std::size_t phase() const { return phase_; }

  /// True while the clearance interval runs (no discharge permitted).
  bool in_yellow() const { return yellow_remaining_ > 0.0; }

  /// Seconds the active phase has been green (resets on switch).
  double green_elapsed() const { return green_elapsed_; }

  std::size_t num_phases() const { return num_phases_; }
  NodeId node() const { return node_; }

  void reset(std::size_t initial_phase = 0);

 private:
  NodeId node_;
  std::size_t num_phases_;
  double yellow_time_;
  std::size_t phase_ = 0;
  std::size_t pending_phase_ = 0;
  double yellow_remaining_ = 0.0;
  double green_elapsed_ = 0.0;
};

}  // namespace tsc::sim
