// Episode-level measurement utilities on top of the simulator:
//   * TraceRecorder - fixed-interval time series of network state (queue
//     totals, waits, throughput) exportable to CSV for plotting;
//   * emissions/fuel estimation - the idling-vs-moving model commonly used
//     in TSC evaluations (stopped vehicles burn idle fuel; travel distance
//     burns cruise fuel), derived entirely from simulator bookkeeping.
#pragma once

#include <string>
#include <vector>

#include "src/sim/simulator.hpp"

namespace tsc::sim {

/// One sampled instant of network state.
struct TraceSample {
  double time = 0.0;
  std::uint32_t halting = 0;        ///< queued vehicles network-wide
  double avg_wait = 0.0;            ///< paper's avg waiting metric
  std::size_t active = 0;           ///< vehicles in the network
  std::size_t finished = 0;         ///< cumulative completions
  double max_head_wait = 0.0;       ///< worst head-vehicle wait anywhere
};

/// Samples the simulator every `interval` seconds of simulated time.
/// Call record() after each simulator advance; it samples when due. Sample
/// deadlines live on the fixed grid 0, interval, 2*interval, ...: when a
/// sample is taken late (record() called at a coarse action boundary), the
/// next deadline is the first grid point after now(), so the schedule never
/// drifts off the grid.
class TraceRecorder {
 public:
  explicit TraceRecorder(double interval = 5.0) : interval_(interval) {}

  void record(const Simulator& sim);
  const std::vector<TraceSample>& samples() const { return samples_; }
  void clear();

  /// Writes "time,halting,avg_wait,active,finished,max_head_wait" rows.
  void write_csv(const std::string& path) const;

  /// Time at which network-wide halting first exceeded `threshold`
  /// vehicles, or -1 if it never did (congestion-onset detector).
  double congestion_onset(std::uint32_t threshold) const;
  /// First time AFTER `since` at which halting fell back below `threshold`,
  /// or -1 (congestion-recovery detector).
  double congestion_recovery(std::uint32_t threshold, double since) const;

 private:
  double interval_;
  double next_sample_ = 0.0;
  std::vector<TraceSample> samples_;
};

/// Fuel/emissions estimate for a finished (or charged) episode.
struct EmissionsConfig {
  double idle_fuel_per_second = 0.00035;   ///< liters/s while halted
  double cruise_fuel_per_meter = 0.00008;  ///< liters/m while moving
  double co2_kg_per_liter = 2.31;          ///< kg CO2 per liter of fuel
};

struct EmissionsEstimate {
  double fuel_liters = 0.0;
  double co2_kg = 0.0;
  double idle_seconds = 0.0;     ///< total halted vehicle-seconds
  double distance_meters = 0.0;  ///< total distance traveled
};

/// Estimates fleet fuel/CO2 from the simulator's per-vehicle bookkeeping:
/// idle time is each vehicle's accumulated waiting; distance is the length
/// of every link the vehicle has fully or partially traversed.
EmissionsEstimate estimate_emissions(const Simulator& sim,
                                     const EmissionsConfig& config = {});

}  // namespace tsc::sim
