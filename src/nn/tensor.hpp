// Dense row-major tensor of doubles. Supports rank 1 and rank 2 (the only
// shapes the RL stack needs); rank-2 tensors are [rows, cols].
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace tsc::nn {

class Tensor {
 public:
  Tensor() = default;

  /// Rank-1 tensor of `n` zeros.
  static Tensor zeros(std::size_t n);
  /// Rank-2 tensor of zeros.
  static Tensor zeros(std::size_t rows, std::size_t cols);
  static Tensor full(std::size_t rows, std::size_t cols, double value);
  /// Rank-1 from values.
  static Tensor vector(std::vector<double> values);
  /// Rank-2 from row-major values. Requires values.size() == rows*cols.
  static Tensor matrix(std::size_t rows, std::size_t cols, std::vector<double> values);
  /// Zeros with the same shape as `other`.
  static Tensor zeros_like(const Tensor& other);

  std::size_t rank() const { return shape_.size(); }
  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Rows of a rank-2 tensor; a rank-1 tensor is treated as a single row.
  /// Defined inline: rows()/cols()/at() sit inside the hot element loops of
  /// the inference paths and must not cost an out-of-line call each.
  std::size_t rows() const {
    if (shape_.size() == 2) return shape_[0];
    return shape_.empty() ? 0 : 1;
  }
  /// Cols of a rank-2 tensor; the length of a rank-1 tensor.
  std::size_t cols() const {
    if (shape_.size() == 2) return shape_[1];
    return shape_.empty() ? 0 : shape_[0];
  }

  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }
  double& at(std::size_t r, std::size_t c) {
    assert(r < rows() && c < cols());
    return data_[r * cols() + c];
  }
  double at(std::size_t r, std::size_t c) const {
    assert(r < rows() && c < cols());
    return data_[r * cols() + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::vector<double>& values() { return data_; }
  const std::vector<double>& values() const { return data_; }

  void fill(double value);
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Re-shapes this tensor to rank-2 [rows, cols], reusing the existing
  /// backing storage where capacity allows. Contents are unspecified after
  /// the call (callers overwrite every element). Never shrinks capacity, so
  /// a buffer cycled through its peak shapes stops allocating.
  void reshape(std::size_t rows, std::size_t cols);

  /// Element-wise in-place ops (shapes must match exactly).
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(double scalar);

  /// Sum of all elements.
  double sum() const;
  /// L2 norm of all elements.
  double norm() const;

  /// "[2x3]{1, 2, 3, ...}" — for test failure messages.
  std::string to_string() const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<double> data_;
};

/// out = a @ b for rank-2 a [m,k] and b [k,n]. Asserts on shape mismatch.
Tensor matmul(const Tensor& a, const Tensor& b);
/// matmul into a preallocated output (reshaped to [m,n]; must not alias a
/// or b). Runs the exact same loop as matmul(), so results are bit-identical
/// to the allocating form — the tape-free inference path depends on that.
void matmul_into(Tensor& out, const Tensor& a, const Tensor& b);
/// Same contract and (for finite inputs) bit-identical results as
/// matmul_into, tuned for the tall batches of the fleet-batched inference
/// path: multi-row register blocking turns the ~2 accumulator dependency
/// chains per output row of matmul_into into 8+ independent chains, which
/// is where the single-thread GEMM throughput headroom lives. Each
/// out[i][j] still receives its contributions in ascending-p order with
/// separate mul/add rounding (this translation unit builds with
/// -ffp-contract=off, so no FMA contraction on either kernel). See the
/// implementation for the zero-skip equivalence argument.
void matmul_into_batched(Tensor& out, const Tensor& a, const Tensor& b);
/// matmul_into's reference row loop on raw row-major pointers:
/// out [m,n] = a [m,k] @ b [k,n], same blocking / rounding / zero-skip.
/// Exists so block-batched layers (nn/gat.hpp) can run per-block products on
/// slices of a stacked workspace tensor — bit-identical to calling
/// matmul_into on each block copied into its own tensor, without the copies.
void matmul_rows_into(double* out, const double* a, const double* b,
                      std::size_t m, std::size_t k, std::size_t n);
/// out = a @ b^T for rank-2 a [m,k], b [n,k].
Tensor matmul_nt(const Tensor& a, const Tensor& b);
/// out = a^T @ b for rank-2 a [k,m], b [k,n].
Tensor matmul_tn(const Tensor& a, const Tensor& b);

}  // namespace tsc::nn
