// Gradient-descent optimizers over a fixed parameter list.
#pragma once

#include <cstddef>
#include <vector>

#include "src/nn/tape.hpp"

namespace tsc::nn {

/// Scales gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
double clip_grad_norm(const std::vector<Parameter*>& params, double max_norm);

/// Same clip over raw gradient tensors held outside the parameters (the
/// sharded PPO update reduces worker gradients into its own buffers and
/// clips those). The fold order over tensors matches the Parameter*
/// overload's order over params, so clipping the same values gives the
/// same result either way.
double clip_grad_norm(std::vector<Tensor>& grads, double max_norm);

class Sgd {
 public:
  Sgd(std::vector<Parameter*> params, double lr) : params_(std::move(params)), lr_(lr) {}
  void step();
  void set_lr(double lr) { lr_ = lr; }

 private:
  std::vector<Parameter*> params_;
  double lr_;
};

/// Adam (Kingma & Ba 2015) with bias correction.
class Adam {
 public:
  struct Config {
    double lr = 3e-4;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 0.0;  // decoupled (AdamW-style)
  };

  Adam(std::vector<Parameter*> params, Config config);
  explicit Adam(std::vector<Parameter*> params) : Adam(std::move(params), Config{}) {}

  /// Applies one update from the parameters' current gradients.
  void step();

  /// Applies one update reading gradients positionally from `grads` instead
  /// of the parameters' own grad tensors; the parameters' grad tensors are
  /// left untouched. Identical arithmetic to step(). Used by the sharded
  /// PPO update, which reduces per-sample gradients outside the parameters.
  /// Throws std::invalid_argument on count or shape mismatch.
  void step_with_grads(const std::vector<Tensor>& grads);

  void set_lr(double lr) { config_.lr = lr; }
  double lr() const { return config_.lr; }
  std::size_t steps_taken() const { return t_; }

  // ---- state access for checkpointing (nn/serialize.cpp) ----
  std::size_t num_params() const { return params_.size(); }
  const std::vector<Parameter*>& params() const { return params_; }
  const std::vector<Tensor>& first_moments() const { return m_; }
  const std::vector<Tensor>& second_moments() const { return v_; }
  /// Restores moments and step count from a checkpoint. Throws
  /// std::invalid_argument unless `m`/`v` match the parameter list
  /// pairwise in count and shape.
  void restore_state(std::vector<Tensor> m, std::vector<Tensor> v,
                     std::size_t t);

 private:
  void apply_param(std::size_t k, const Tensor& grad, double bc1, double bc2);

  std::vector<Parameter*> params_;
  Config config_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  std::size_t t_ = 0;
};

}  // namespace tsc::nn
