// Gradient-descent optimizers over a fixed parameter list.
#pragma once

#include <cstddef>
#include <vector>

#include "src/nn/tape.hpp"

namespace tsc::nn {

/// Scales gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
double clip_grad_norm(const std::vector<Parameter*>& params, double max_norm);

class Sgd {
 public:
  Sgd(std::vector<Parameter*> params, double lr) : params_(std::move(params)), lr_(lr) {}
  void step();
  void set_lr(double lr) { lr_ = lr; }

 private:
  std::vector<Parameter*> params_;
  double lr_;
};

/// Adam (Kingma & Ba 2015) with bias correction.
class Adam {
 public:
  struct Config {
    double lr = 3e-4;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 0.0;  // decoupled (AdamW-style)
  };

  Adam(std::vector<Parameter*> params, Config config);
  explicit Adam(std::vector<Parameter*> params) : Adam(std::move(params), Config{}) {}

  /// Applies one update from the parameters' current gradients.
  void step();

  void set_lr(double lr) { config_.lr = lr; }
  double lr() const { return config_.lr; }
  std::size_t steps_taken() const { return t_; }

 private:
  std::vector<Parameter*> params_;
  Config config_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  std::size_t t_ = 0;
};

}  // namespace tsc::nn
