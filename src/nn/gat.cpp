#include "src/nn/gat.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/nn/backward.hpp"
#include "src/nn/inference.hpp"

namespace tsc::nn {

GatLayer::GatLayer(std::size_t entity_dim, std::size_t out_dim,
                   std::size_t max_entities, Rng& rng)
    : entity_dim_(entity_dim), out_dim_(out_dim), max_entities_(max_entities) {
  w_query_ = std::make_unique<Linear>(entity_dim, out_dim, rng, 1.0);
  w_key_ = std::make_unique<Linear>(entity_dim, out_dim, rng, 1.0);
  w_value_ = std::make_unique<Linear>(entity_dim, out_dim, rng, 1.0);
  w_out_ = std::make_unique<Linear>(out_dim, out_dim, rng, 1.0);
  register_module(w_query_.get());
  register_module(w_key_.get());
  register_module(w_value_.get());
  register_module(w_out_.get());
}

Var GatLayer::forward(Tape& tape, Var entities, const std::vector<bool>& mask) {
  assert(tape.value(entities).rows() == max_entities_);
  assert(tape.value(entities).cols() == entity_dim_);
  assert(mask.size() == max_entities_);
  assert(mask[0] && "row 0 (self) must be a live entity");

  Var query = w_query_->forward(tape, tape.select_row(entities, 0));  // [1, d]
  Var keys = w_key_->forward(tape, entities);                         // [E, d]
  Var vals = w_value_->forward(tape, entities);                       // [E, d]

  // scores[1, E] = query @ keys^T / sqrt(d), with -inf on padded slots.
  // keys^T is realized by per-row dot products via matmul with transposed
  // layout: we compute query [1,d] @ keys_r [d,E] where keys_r is built from
  // slices. Cheaper: scores_e = sum(query * key_e) using mul+sum per entity.
  std::vector<Var> score_parts;
  score_parts.reserve(max_entities_);
  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(out_dim_));
  for (std::size_t e = 0; e < max_entities_; ++e) {
    Var key_e = tape.select_row(keys, e);  // [1, d]
    Var dot = tape.sum(tape.mul(query, key_e));
    dot = tape.scale(dot, inv_sqrt_d);
    if (!mask[e]) dot = tape.add_scalar(tape.scale(dot, 0.0), -1e9);
    score_parts.push_back(dot);  // [1]
  }
  Var scores = tape.concat_cols(score_parts);  // [1, E]
  Var alpha = tape.softmax_rows(scores);       // [1, E]

  last_attention_.assign(tape.value(alpha).data(),
                         tape.value(alpha).data() + max_entities_);

  Var mixed = tape.matmul(alpha, vals);  // [1, d]
  return tape.relu(w_out_->forward(tape, mixed));
}

const Tensor& GatLayer::forward_inference(InferenceWorkspace& ws,
                                          const Tensor& entities,
                                          const std::vector<bool>& mask) {
  assert(entities.rows() == max_entities_);
  assert(entities.cols() == entity_dim_);
  assert(mask.size() == max_entities_);
  assert(mask[0] && "row 0 (self) must be a live entity");

  Tensor& self_row = ws.acquire(1, entity_dim_);  // select_row(entities, 0)
  std::copy(entities.data(), entities.data() + entity_dim_, self_row.data());
  const Tensor& query = w_query_->forward_inference(ws, self_row);  // [1, d]
  const Tensor& keys = w_key_->forward_inference(ws, entities);     // [E, d]
  const Tensor& vals = w_value_->forward_inference(ws, entities);   // [E, d]

  // Per-entity scores replay the tape's mul -> sum -> scale -> mask chain:
  // each product is rounded before the running sum, the scale by 1/sqrt(d)
  // rounds once, and a masked slot becomes exactly dot*0.0 + (-1e9).
  Tensor& scores = ws.acquire(1, max_entities_);
  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(out_dim_));
  const double* pq = query.data();
  for (std::size_t e = 0; e < max_entities_; ++e) {
    const double* krow = keys.data() + e * out_dim_;
    double dot = 0.0;
    for (std::size_t j = 0; j < out_dim_; ++j) {
      const double p = pq[j] * krow[j];
      dot += p;
    }
    double score = dot * inv_sqrt_d;
    if (!mask[e]) score = score * 0.0 + (-1e9);
    scores[e] = score;
  }
  Tensor& alpha = ws.acquire(1, max_entities_);
  softmax_rows_into(alpha, scores, ws.kernel_tier());

  last_attention_.assign(alpha.data(), alpha.data() + max_entities_);

  Tensor& mixed = ws.acquire(1, out_dim_);
  matmul_into(mixed, alpha, vals);
  Tensor& out = const_cast<Tensor&>(w_out_->forward_inference(ws, mixed));
  relu_inplace(out);
  return out;
}

const Tensor& GatLayer::forward_train(BackwardWorkspace& ws,
                                      const Tensor& entities,
                                      const std::vector<bool>& mask,
                                      TrainTrace& trace) {
  assert(entities.rows() == max_entities_);
  assert(entities.cols() == entity_dim_);
  assert(mask.size() == max_entities_);
  assert(mask[0] && "row 0 (self) must be a live entity");

  // Same arithmetic as forward_inference (reference tier), with every
  // intermediate pinned in the trace.
  Tensor& self_row = ws.acquire(1, entity_dim_);
  std::copy(entities.data(), entities.data() + entity_dim_, self_row.data());
  const Tensor& query = w_query_->forward_inference(ws.fwd(), self_row);
  const Tensor& keys = w_key_->forward_inference(ws.fwd(), entities);
  const Tensor& vals = w_value_->forward_inference(ws.fwd(), entities);

  Tensor& scores = ws.acquire(1, max_entities_);
  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(out_dim_));
  const double* pq = query.data();
  for (std::size_t e = 0; e < max_entities_; ++e) {
    const double* krow = keys.data() + e * out_dim_;
    double dot = 0.0;
    for (std::size_t j = 0; j < out_dim_; ++j) {
      const double p = pq[j] * krow[j];
      dot += p;
    }
    double score = dot * inv_sqrt_d;
    if (!mask[e]) score = score * 0.0 + (-1e9);
    scores[e] = score;
  }
  Tensor& alpha = ws.acquire(1, max_entities_);
  softmax_rows_into(alpha, scores);

  last_attention_.assign(alpha.data(), alpha.data() + max_entities_);

  Tensor& mixed = ws.acquire(1, out_dim_);
  matmul_into(mixed, alpha, vals);
  Tensor& out = const_cast<Tensor&>(w_out_->forward_inference(ws.fwd(), mixed));
  relu_inplace(out);

  trace = {&self_row, &query, &keys, &vals, &alpha, &mixed, &out, &mask};
  return out;
}

void GatLayer::backward_train(BackwardWorkspace& ws, const Tensor& entities,
                              const TrainTrace& trace, const Tensor& dout,
                              Tensor* const* sinks, Tensor* dentities) const {
  const std::vector<bool>& mask = *trace.mask;
  // relu -> output Linear.
  Tensor& dz = ws.acquire_zeroed(1, out_dim_);
  relu_backward_acc(dz, dout, *trace.out);
  Tensor& dmixed = ws.acquire_zeroed(1, out_dim_);
  w_out_->backward_train(*trace.mixed, dz, *sinks[6], *sinks[7], &dmixed);
  // mixed = alpha @ vals.
  Tensor& dalpha = ws.acquire_zeroed(1, max_entities_);
  backward_matmul_nt_acc(dalpha, dmixed, *trace.vals);
  Tensor& dvals = ws.acquire_zeroed(max_entities_, out_dim_);
  backward_matmul_tn_acc(dvals, *trace.alpha, dmixed);
  // softmax, then the per-entity score chains in descending creation order.
  Tensor& dscores = ws.acquire_zeroed(1, max_entities_);
  softmax_backward_acc(dscores, dalpha, *trace.alpha);
  Tensor& dquery = ws.acquire_zeroed(1, out_dim_);
  Tensor& dkeys = ws.acquire_zeroed(max_entities_, out_dim_);
  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(out_dim_));
  const double* pq = trace.query->data();
  for (std::size_t e = max_entities_; e-- > 0;) {
    // A masked slot's chain ends in scale-by-0.0: every contribution it
    // feeds back is an exact ±0.0 onto +0.0-seeded sinks — skippable.
    if (!mask[e]) continue;
    const double gs = 0.0 + dscores[e];            // concat_cols backward
    const double gdot = 0.0 + inv_sqrt_d * gs;     // scale backward
    const double* krow = trace.keys->data() + e * out_dim_;
    double* dkrow = dkeys.data() + e * out_dim_;
    for (std::size_t j = 0; j < out_dim_; ++j) {
      // sum backward broadcasts gdot; mul backward splits it to query/key.
      dquery[j] += gdot * krow[j];
      dkrow[j] = 0.0 + gdot * pq[j];
    }
  }
  // Linear backwards in descending node order: values, keys, query. The
  // entity gradient accumulates values-term first, then keys-term, then the
  // select_row scatter of the self-row gradient — the tape's exact order.
  Tensor* dself = nullptr;
  w_value_->backward_train(entities, dvals, *sinks[4], *sinks[5], dentities);
  w_key_->backward_train(entities, dkeys, *sinks[2], *sinks[3], dentities);
  if (dentities != nullptr) {
    dself = &ws.acquire_zeroed(1, entity_dim_);
  }
  w_query_->backward_train(*trace.self_row, dquery, *sinks[0], *sinks[1], dself);
  if (dentities != nullptr) {
    double* drow0 = dentities->data();
    const double* ds = dself->data();
    for (std::size_t c = 0; c < entity_dim_; ++c) drow0[c] += ds[c];
  }
}

const Tensor& GatLayer::forward_inference_blocks(
    InferenceWorkspace& ws, const Tensor& entities,
    const std::vector<const std::vector<bool>*>& masks) {
  const std::size_t blocks = masks.size();
  assert(blocks > 0);
  assert(entities.rows() == blocks * max_entities_);
  assert(entities.cols() == entity_dim_);

  Tensor& selfs = ws.acquire(blocks, entity_dim_);  // each block's row 0
  for (std::size_t b = 0; b < blocks; ++b)
    std::copy(entities.data() + b * max_entities_ * entity_dim_,
              entities.data() + (b * max_entities_ + 1) * entity_dim_,
              selfs.data() + b * entity_dim_);
  const Tensor& query = w_query_->forward_inference(ws, selfs);    // [B, d]
  const Tensor& keys = w_key_->forward_inference(ws, entities);    // [B*E, d]
  const Tensor& vals = w_value_->forward_inference(ws, entities);  // [B*E, d]

  // Per-block score chain, identical to the single-block path above.
  Tensor& scores = ws.acquire(blocks, max_entities_);
  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(out_dim_));
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::vector<bool>& mask = *masks[b];
    assert(mask.size() == max_entities_);
    assert(mask[0] && "row 0 (self) must be a live entity");
    const double* pq = query.data() + b * out_dim_;
    double* srow = scores.data() + b * max_entities_;
    for (std::size_t e = 0; e < max_entities_; ++e) {
      const double* krow = keys.data() + (b * max_entities_ + e) * out_dim_;
      double dot = 0.0;
      for (std::size_t j = 0; j < out_dim_; ++j) {
        const double p = pq[j] * krow[j];
        dot += p;
      }
      double score = dot * inv_sqrt_d;
      if (!mask[e]) score = score * 0.0 + (-1e9);
      srow[e] = score;
    }
  }
  Tensor& alpha = ws.acquire(blocks, max_entities_);
  softmax_rows_into(alpha, scores, ws.kernel_tier());

  last_attention_.assign(alpha.data() + (blocks - 1) * max_entities_,
                         alpha.data() + blocks * max_entities_);

  // Per-block [1, E] @ [E, d] products on the stacked buffers.
  Tensor& mixed = ws.acquire(blocks, out_dim_);
  for (std::size_t b = 0; b < blocks; ++b)
    matmul_rows_into(mixed.data() + b * out_dim_,
                     alpha.data() + b * max_entities_,
                     vals.data() + b * max_entities_ * out_dim_,
                     /*m=*/1, max_entities_, out_dim_);
  Tensor& out = const_cast<Tensor&>(w_out_->forward_inference(ws, mixed));
  relu_inplace(out);
  return out;
}

}  // namespace tsc::nn
