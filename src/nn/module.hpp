// Module base class (parameter registry) and weight initializers.
#pragma once

#include <string>
#include <vector>

#include "src/nn/tape.hpp"
#include "src/util/rng.hpp"

namespace tsc::nn {

/// Base for anything that owns trainable Parameters. Modules register their
/// own parameters and child modules; parameters() walks the tree.
class Module {
 public:
  virtual ~Module() = default;

  /// All parameters of this module and its registered children.
  std::vector<Parameter*> parameters();

  /// Zeroes every parameter gradient.
  void zero_grad();

  /// Total number of scalar weights.
  std::size_t num_weights();

  /// Copies all parameter values from `other` (shapes must match pairwise).
  void copy_weights_from(Module& other);

  /// Blends weights: this = (1-tau)*this + tau*other (for target networks).
  void soft_update_from(Module& other, double tau);

 protected:
  void register_parameter(Parameter* p) { own_params_.push_back(p); }
  void register_module(Module* m) { children_.push_back(m); }

 private:
  std::vector<Parameter*> own_params_;
  std::vector<Module*> children_;
};

/// Fills a rank-2 parameter with an orthogonal matrix scaled by `gain`
/// (Gram-Schmidt on a Gaussian sample; the paper's Algorithm 1 initializes
/// both networks orthogonally).
void orthogonal_init(Tensor& w, Rng& rng, double gain = 1.0);

/// Xavier/Glorot uniform init for a rank-2 [fan_in, fan_out] tensor.
void xavier_init(Tensor& w, Rng& rng);

}  // namespace tsc::nn
