#include "src/nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "src/util/fs.hpp"

namespace tsc::nn {
namespace {

constexpr char kMagic[4] = {'T', 'S', 'C', 'W'};
constexpr char kOptimMagic[4] = {'T', 'S', 'C', 'O'};
constexpr std::uint64_t kOptimVersion = 1;

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

void write_values(std::ostream& out, const Tensor& t) {
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(double)));
}

void read_values(std::ifstream& in, Tensor& t) {
  in.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.size() * sizeof(double)));
}

}  // namespace

// Checkpoint writers go through util::atomic_write_file (temp file + rename
// in the same directory), so a crash mid-save can never leave a truncated
// file where a previously-good checkpoint was — the durability contract the
// fleet orchestrator's crash-resume relies on (DESIGN.md §9).
void save_weights(Module& module, const std::string& path) {
  util::atomic_write_file(path, [&](std::ostream& out) {
    out.write(kMagic, sizeof(kMagic));
    auto params = module.parameters();
    write_u64(out, params.size());
    for (Parameter* p : params) {
      write_u64(out, p->value.rank());
      for (std::size_t d : p->value.shape()) write_u64(out, d);
      out.write(reinterpret_cast<const char*>(p->value.data()),
                static_cast<std::streamsize>(p->value.size() * sizeof(double)));
    }
    if (!out) throw std::runtime_error("save_weights: write failed for " + path);
  });
}

void load_weights(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_weights: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::string(magic, 4) != std::string(kMagic, 4))
    throw std::runtime_error("load_weights: bad magic in " + path);
  auto params = module.parameters();
  const std::uint64_t count = read_u64(in);
  if (count != params.size())
    throw std::runtime_error("load_weights: parameter count mismatch in " + path);
  for (Parameter* p : params) {
    const std::uint64_t rank = read_u64(in);
    if (rank != p->value.rank())
      throw std::runtime_error("load_weights: rank mismatch for " + p->name);
    for (std::size_t d = 0; d < rank; ++d) {
      const std::uint64_t dim = read_u64(in);
      if (dim != p->value.shape()[d])
        throw std::runtime_error("load_weights: shape mismatch for " + p->name);
    }
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(double)));
  }
  if (!in) throw std::runtime_error("load_weights: truncated file " + path);
}

void save_optimizer_state(const Adam& optim, const std::string& path) {
  util::atomic_write_file(path, [&](std::ostream& out) {
    out.write(kOptimMagic, sizeof(kOptimMagic));
    write_u64(out, kOptimVersion);
    write_u64(out, optim.steps_taken());
    const auto& m = optim.first_moments();
    const auto& v = optim.second_moments();
    write_u64(out, m.size());
    for (std::size_t k = 0; k < m.size(); ++k) {
      write_u64(out, m[k].rank());
      for (std::size_t d : m[k].shape()) write_u64(out, d);
      write_values(out, m[k]);
      write_values(out, v[k]);
    }
    if (!out)
      throw std::runtime_error("save_optimizer_state: write failed for " + path);
  });
}

void load_optimizer_state(Adam& optim, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_optimizer_state: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::string(magic, 4) != std::string(kOptimMagic, 4))
    throw std::runtime_error("load_optimizer_state: bad magic in " + path);
  const std::uint64_t version = read_u64(in);
  if (version != kOptimVersion)
    throw std::runtime_error("load_optimizer_state: unsupported version in " + path);
  const std::uint64_t t = read_u64(in);
  const std::uint64_t count = read_u64(in);
  if (count != optim.num_params())
    throw std::runtime_error("load_optimizer_state: parameter count mismatch in " +
                             path);
  std::vector<Tensor> m, v;
  m.reserve(count);
  v.reserve(count);
  for (std::uint64_t k = 0; k < count; ++k) {
    const Parameter& p = *optim.params()[k];
    const std::uint64_t rank = read_u64(in);
    if (rank != p.value.rank())
      throw std::runtime_error("load_optimizer_state: rank mismatch for " + p.name);
    for (std::size_t d = 0; d < rank; ++d) {
      const std::uint64_t dim = read_u64(in);
      if (dim != p.value.shape()[d])
        throw std::runtime_error("load_optimizer_state: shape mismatch for " +
                                 p.name);
    }
    Tensor mk = Tensor::zeros_like(p.value);
    Tensor vk = Tensor::zeros_like(p.value);
    read_values(in, mk);
    read_values(in, vk);
    m.push_back(std::move(mk));
    v.push_back(std::move(vk));
  }
  if (!in) throw std::runtime_error("load_optimizer_state: truncated file " + path);
  optim.restore_state(std::move(m), std::move(v), static_cast<std::size_t>(t));
}

}  // namespace tsc::nn
