#include "src/nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace tsc::nn {
namespace {

constexpr char kMagic[4] = {'T', 'S', 'C', 'W'};

void write_u64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

}  // namespace

void save_weights(Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_weights: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  auto params = module.parameters();
  write_u64(out, params.size());
  for (Parameter* p : params) {
    write_u64(out, p->value.rank());
    for (std::size_t d : p->value.shape()) write_u64(out, d);
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.size() * sizeof(double)));
  }
  if (!out) throw std::runtime_error("save_weights: write failed for " + path);
}

void load_weights(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_weights: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::string(magic, 4) != std::string(kMagic, 4))
    throw std::runtime_error("load_weights: bad magic in " + path);
  auto params = module.parameters();
  const std::uint64_t count = read_u64(in);
  if (count != params.size())
    throw std::runtime_error("load_weights: parameter count mismatch in " + path);
  for (Parameter* p : params) {
    const std::uint64_t rank = read_u64(in);
    if (rank != p->value.rank())
      throw std::runtime_error("load_weights: rank mismatch for " + p->name);
    for (std::size_t d = 0; d < rank; ++d) {
      const std::uint64_t dim = read_u64(in);
      if (dim != p->value.shape()[d])
        throw std::runtime_error("load_weights: shape mismatch for " + p->name);
    }
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(double)));
  }
  if (!in) throw std::runtime_error("load_weights: truncated file " + path);
}

}  // namespace tsc::nn
