#include "src/nn/module.hpp"

#include <cassert>
#include <cmath>

namespace tsc::nn {

std::vector<Parameter*> Module::parameters() {
  std::vector<Parameter*> out = own_params_;
  for (Module* child : children_) {
    auto sub = child->parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

void Module::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

std::size_t Module::num_weights() {
  std::size_t n = 0;
  for (Parameter* p : parameters()) n += p->value.size();
  return n;
}

void Module::copy_weights_from(Module& other) {
  auto mine = parameters();
  auto theirs = other.parameters();
  assert(mine.size() == theirs.size());
  for (std::size_t i = 0; i < mine.size(); ++i) {
    assert(mine[i]->value.same_shape(theirs[i]->value));
    mine[i]->value = theirs[i]->value;
  }
}

void Module::soft_update_from(Module& other, double tau) {
  auto mine = parameters();
  auto theirs = other.parameters();
  assert(mine.size() == theirs.size());
  for (std::size_t i = 0; i < mine.size(); ++i) {
    Tensor& a = mine[i]->value;
    const Tensor& b = theirs[i]->value;
    assert(a.same_shape(b));
    for (std::size_t j = 0; j < a.size(); ++j) a[j] = (1.0 - tau) * a[j] + tau * b[j];
  }
}

void orthogonal_init(Tensor& w, Rng& rng, double gain) {
  assert(w.rank() == 2);
  const std::size_t rows = w.shape()[0];
  const std::size_t cols = w.shape()[1];
  // Work on the taller orientation so Gram-Schmidt has full column rank.
  const bool transpose = rows < cols;
  const std::size_t n = transpose ? cols : rows;  // vectors length
  const std::size_t k = transpose ? rows : cols;  // number of vectors
  std::vector<std::vector<double>> q(k, std::vector<double>(n));
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i = 0; i < n; ++i) q[j][i] = rng.normal();
    // Orthogonalize against previous columns (modified Gram-Schmidt).
    for (std::size_t prev = 0; prev < j; ++prev) {
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) dot += q[j][i] * q[prev][i];
      for (std::size_t i = 0; i < n; ++i) q[j][i] -= dot * q[prev][i];
    }
    double norm = 0.0;
    for (double x : q[j]) norm += x * x;
    norm = std::sqrt(norm);
    if (norm < 1e-10) {
      // Degenerate draw; use a unit basis vector instead.
      for (double& x : q[j]) x = 0.0;
      q[j][j % n] = 1.0;
    } else {
      for (double& x : q[j]) x /= norm;
    }
  }
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      w.at(r, c) = gain * (transpose ? q[r][c] : q[c][r]);
}

void xavier_init(Tensor& w, Rng& rng) {
  assert(w.rank() == 2);
  const double fan_in = static_cast<double>(w.shape()[0]);
  const double fan_out = static_cast<double>(w.shape()[1]);
  const double bound = std::sqrt(6.0 / (fan_in + fan_out));
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = rng.uniform(-bound, bound);
}

}  // namespace tsc::nn
