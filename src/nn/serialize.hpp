// Checkpointing: save/load a Module's parameters to a simple binary format.
//
// Format: magic "TSCW", u64 parameter count, then per parameter:
//   u64 rank, u64 dims..., f64 values...
// Parameters are matched positionally (same module architecture required).
#pragma once

#include <string>

#include "src/nn/module.hpp"

namespace tsc::nn {

/// Writes all parameters of `module` to `path`. Throws on I/O failure.
void save_weights(Module& module, const std::string& path);

/// Loads parameters saved by save_weights. Throws on I/O failure or if the
/// stored shapes do not match the module's parameters.
void load_weights(Module& module, const std::string& path);

}  // namespace tsc::nn
