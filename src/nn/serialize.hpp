// Checkpointing: save/load a Module's parameters and an optimizer's state
// to simple binary formats.
//
// Weights:   magic "TSCW", u64 parameter count, then per parameter:
//              u64 rank, u64 dims..., f64 values...
// Optimizer: magic "TSCO", u64 format version, u64 step count, u64
//            parameter count, then per parameter:
//              u64 rank, u64 dims..., f64 first moments..., f64 second
//              moments...
// Both match positionally (same module/optimizer architecture required).
#pragma once

#include <string>

#include "src/nn/module.hpp"
#include "src/nn/optim.hpp"

namespace tsc::nn {

/// Writes all parameters of `module` to `path`. Throws on I/O failure.
void save_weights(Module& module, const std::string& path);

/// Loads parameters saved by save_weights. Throws on I/O failure or if the
/// stored shapes do not match the module's parameters.
void load_weights(Module& module, const std::string& path);

/// Writes `optim`'s full state (Adam step count + per-parameter first and
/// second moments) to `path`. Without this a resumed run silently restarts
/// the moments and bias correction, so its training curve diverges from the
/// uninterrupted one. Throws on I/O failure.
void save_optimizer_state(const Adam& optim, const std::string& path);

/// Restores state saved by save_optimizer_state. Throws on I/O failure, an
/// unknown format version, or if the stored shapes do not match the
/// optimizer's parameters (same checks as load_weights).
void load_optimizer_state(Adam& optim, const std::string& path);

}  // namespace tsc::nn
