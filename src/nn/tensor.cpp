#include "src/nn/tensor.hpp"

#include <cassert>
#include <cmath>
#include <sstream>

namespace tsc::nn {

Tensor Tensor::zeros(std::size_t n) {
  Tensor t;
  t.shape_ = {n};
  t.data_.assign(n, 0.0);
  return t;
}

Tensor Tensor::zeros(std::size_t rows, std::size_t cols) {
  Tensor t;
  t.shape_ = {rows, cols};
  t.data_.assign(rows * cols, 0.0);
  return t;
}

Tensor Tensor::full(std::size_t rows, std::size_t cols, double value) {
  Tensor t = zeros(rows, cols);
  t.fill(value);
  return t;
}

Tensor Tensor::vector(std::vector<double> values) {
  Tensor t;
  t.shape_ = {values.size()};
  t.data_ = std::move(values);
  return t;
}

Tensor Tensor::matrix(std::size_t rows, std::size_t cols, std::vector<double> values) {
  assert(values.size() == rows * cols);
  Tensor t;
  t.shape_ = {rows, cols};
  t.data_ = std::move(values);
  return t;
}

Tensor Tensor::zeros_like(const Tensor& other) {
  Tensor t;
  t.shape_ = other.shape_;
  t.data_.assign(other.data_.size(), 0.0);
  return t;
}

std::size_t Tensor::rows() const {
  if (shape_.size() == 2) return shape_[0];
  return shape_.empty() ? 0 : 1;
}

std::size_t Tensor::cols() const {
  if (shape_.size() == 2) return shape_[1];
  return shape_.empty() ? 0 : shape_[0];
}

double& Tensor::at(std::size_t r, std::size_t c) {
  assert(r < rows() && c < cols());
  return data_[r * cols() + c];
}

double Tensor::at(std::size_t r, std::size_t c) const {
  assert(r < rows() && c < cols());
  return data_[r * cols() + c];
}

void Tensor::fill(double value) {
  for (double& x : data_) x = value;
}

void Tensor::reshape(std::size_t rows, std::size_t cols) {
  shape_.assign({rows, cols});
  data_.resize(rows * cols);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  assert(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  assert(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

double Tensor::sum() const {
  double s = 0.0;
  for (double x : data_) s += x;
  return s;
}

double Tensor::norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

std::string Tensor::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << 'x';
    os << shape_[i];
  }
  os << "]{";
  const std::size_t show = data_.size() > 16 ? 16 : data_.size();
  for (std::size_t i = 0; i < show; ++i) {
    if (i) os << ", ";
    os << data_[i];
  }
  if (show < data_.size()) os << ", ...";
  os << '}';
  return os.str();
}

// The three matmul variants below are the RL stack's hottest kernels
// (every Linear/LSTM forward and backward lands here at sizes like
// [36,18]x[18,64]). They all run loop order i-k-j (unit-stride inner loop,
// accumulation into one hoisted output row) with row pointers hoisted out
// of the inner loops so the optimizer sees plain pointer arithmetic instead
// of repeated at() index math.

void matmul_into(Tensor& out, const Tensor& a, const Tensor& b) {
  assert(a.rank() == 2 && b.rank() == 2);
  assert(&out != &a && &out != &b);
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  assert(b.rows() == k);
  out.reshape(m, n);
  const double* __restrict__ pa = a.data();
  const double* __restrict__ pb = b.data();
  double* __restrict__ po = out.data();
  // Register-blocked i-(j-block)-p: each output block accumulates in a
  // fixed-size local array (mapped to vector registers), so the inner loop
  // does one load per contribution instead of load+load+store. Every
  // out[i][j] still receives its contributions in ascending-p order with
  // separate mul/add rounding and the same zero-skip, so results are
  // bit-identical to the straight i-k-j loop this replaces (the golden
  // tests pin that).
  constexpr std::size_t kBlock = 8;
  for (std::size_t i = 0; i < m; ++i) {
    const double* __restrict__ arow = pa + i * k;
    double* __restrict__ orow = po + i * n;
    std::size_t j0 = 0;
    for (; j0 + kBlock <= n; j0 += kBlock) {
      double acc[kBlock] = {0.0};
      for (std::size_t p = 0; p < k; ++p) {
        const double aip = arow[p];
        // Skip zero multipliers: observations are padded/one-hot, so whole
        // rows of the input batch are sparse in practice.
        if (aip == 0.0) continue;
        const double* __restrict__ brow = pb + p * n + j0;
        for (std::size_t jj = 0; jj < kBlock; ++jj) acc[jj] += aip * brow[jj];
      }
      for (std::size_t jj = 0; jj < kBlock; ++jj) orow[j0 + jj] = acc[jj];
    }
    for (; j0 < n; ++j0) {  // ragged tail (n not a multiple of kBlock)
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const double aip = arow[p];
        if (aip == 0.0) continue;
        acc += aip * pb[p * n + j0];
      }
      orow[j0] = acc;
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor out;
  matmul_into(out, a, b);
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  assert(a.rank() == 2 && b.rank() == 2);
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  assert(b.cols() == k);
  Tensor out = Tensor::zeros(m, n);
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = pa + i * k;
    double* orow = po + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* brow = pb + j * k;
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      orow[j] = s;
    }
  }
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  assert(a.rank() == 2 && b.rank() == 2);
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  assert(b.rows() == k);
  Tensor out = Tensor::zeros(m, n);
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  for (std::size_t p = 0; p < k; ++p) {
    const double* arow = pa + p * m;
    const double* brow = pb + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double api = arow[i];
      if (api == 0.0) continue;
      double* orow = po + i * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += api * brow[j];
    }
  }
  return out;
}

}  // namespace tsc::nn
