#include "src/nn/tensor.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace tsc::nn {

Tensor Tensor::zeros(std::size_t n) {
  Tensor t;
  t.shape_ = {n};
  t.data_.assign(n, 0.0);
  return t;
}

Tensor Tensor::zeros(std::size_t rows, std::size_t cols) {
  Tensor t;
  t.shape_ = {rows, cols};
  t.data_.assign(rows * cols, 0.0);
  return t;
}

Tensor Tensor::full(std::size_t rows, std::size_t cols, double value) {
  Tensor t = zeros(rows, cols);
  t.fill(value);
  return t;
}

Tensor Tensor::vector(std::vector<double> values) {
  Tensor t;
  t.shape_ = {values.size()};
  t.data_ = std::move(values);
  return t;
}

Tensor Tensor::matrix(std::size_t rows, std::size_t cols, std::vector<double> values) {
  assert(values.size() == rows * cols);
  Tensor t;
  t.shape_ = {rows, cols};
  t.data_ = std::move(values);
  return t;
}

Tensor Tensor::zeros_like(const Tensor& other) {
  Tensor t;
  t.shape_ = other.shape_;
  t.data_.assign(other.data_.size(), 0.0);
  return t;
}

void Tensor::fill(double value) {
  for (double& x : data_) x = value;
}

void Tensor::reshape(std::size_t rows, std::size_t cols) {
  shape_.assign({rows, cols});
  data_.resize(rows * cols);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  assert(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  assert(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

double Tensor::sum() const {
  double s = 0.0;
  for (double x : data_) s += x;
  return s;
}

double Tensor::norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

std::string Tensor::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << 'x';
    os << shape_[i];
  }
  os << "]{";
  const std::size_t show = data_.size() > 16 ? 16 : data_.size();
  for (std::size_t i = 0; i < show; ++i) {
    if (i) os << ", ";
    os << data_[i];
  }
  if (show < data_.size()) os << ", ...";
  os << '}';
  return os.str();
}

// The three matmul variants below are the RL stack's hottest kernels
// (every Linear/LSTM forward and backward lands here at sizes like
// [36,18]x[18,64]). They all run loop order i-k-j (unit-stride inner loop,
// accumulation into one hoisted output row) with row pointers hoisted out
// of the inner loops so the optimizer sees plain pointer arithmetic instead
// of repeated at() index math.

namespace {

// The reference row loop shared by matmul_into (all rows) and
// matmul_into_batched (row/column tails), on raw row-major pointers:
// register-blocked i-(j-block)-p with each output block accumulating in a
// fixed-size local array (mapped to vector registers), so the inner loop
// does one load per contribution instead of load+load+store. Every
// out[i][j] receives its contributions in ascending-p order with separate
// mul/add rounding and the zero-skip, bit-identical to the straight i-k-j
// loop this replaced (the golden tests pin that).
void reference_rows(double* __restrict__ po, const double* __restrict__ pa,
                    const double* __restrict__ pb, std::size_t m,
                    std::size_t k, std::size_t n) {
  constexpr std::size_t kBlock = 8;
  for (std::size_t i = 0; i < m; ++i) {
    const double* __restrict__ arow = pa + i * k;
    double* __restrict__ orow = po + i * n;
    std::size_t j0 = 0;
    for (; j0 + kBlock <= n; j0 += kBlock) {
      double acc[kBlock] = {0.0};
      for (std::size_t p = 0; p < k; ++p) {
        const double aip = arow[p];
        // Skip zero multipliers: observations are padded/one-hot, so whole
        // rows of the input batch are sparse in practice.
        if (aip == 0.0) continue;
        const double* __restrict__ brow = pb + p * n + j0;
        for (std::size_t jj = 0; jj < kBlock; ++jj) acc[jj] += aip * brow[jj];
      }
      for (std::size_t jj = 0; jj < kBlock; ++jj) orow[j0 + jj] = acc[jj];
    }
    for (; j0 < n; ++j0) {  // ragged tail (n not a multiple of kBlock)
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const double aip = arow[p];
        if (aip == 0.0) continue;
        acc += aip * pb[p * n + j0];
      }
      orow[j0] = acc;
    }
  }
}

}  // namespace

void matmul_into(Tensor& out, const Tensor& a, const Tensor& b) {
  assert(a.rank() == 2 && b.rank() == 2);
  assert(&out != &a && &out != &b);
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  assert(b.rows() == k);
  out.reshape(m, n);
  reference_rows(out.data(), a.data(), b.data(), m, k, n);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor out;
  matmul_into(out, a, b);
  return out;
}

void matmul_rows_into(double* out, const double* a, const double* b,
                      std::size_t m, std::size_t k, std::size_t n) {
  reference_rows(out, a, b, m, k, n);
}

// matmul_into_batched: the fleet-batched GEMM.
//
// Why a second kernel: matmul_into's single-row j-block gives each output
// row only ~2 vector accumulator chains, so on one hardware thread the FMA
// ports sit mostly idle. Blocking over ROWS as well (8 rows x 16 cols below)
// creates enough independent accumulator chains to approach port saturation
// — measured ~3.4-3.9x on the rollout path's dominant [B,64]x[64,256] LSTM
// GEMMs once B reaches fleet sizes (num_envs * num_agents rows).
//
// Bit-identity argument (vs matmul_into, for FINITE a and b):
//  * Every out[i][j] accumulates its k contributions in ascending-p order
//    with separate mul/add rounding, exactly like matmul_into (both kernels
//    build with -ffp-contract=off, so the compiler cannot fuse them).
//  * matmul_into additionally SKIPS contributions where a[i][p] == 0.0;
//    this kernel adds them. The two are bitwise equivalent: under
//    round-to-nearest the only additive producer of -0.0 is (-0)+(-0), so a
//    running sum seeded with +0.0 can never become -0.0 — and adding a
//    +-0.0 product (a[i][p] == 0, b finite) to a sum that is not -0.0
//    returns the sum unchanged. With a non-finite b (0 * inf = NaN) the
//    paths could diverge, but network parameters are finite by
//    construction. tests/test_inference_path.cpp pins the equivalence.
//  * Row blocks below 8 and ragged columns delegate to matmul_into's exact
//    loops (skip included), which are bit-identical per the above.

#if defined(__AVX512F__)

namespace {

// One 8-row x 8-column tile: zmm accumulators, explicit mul then add (NO
// fused multiply-add — rounding must match the scalar kernel).
inline void fleet_tile_8x8(double* __restrict__ po, const double* __restrict__ pa,
                           const double* __restrict__ pb, std::size_t i0,
                           std::size_t j0, std::size_t k, std::size_t n) {
  __m512d acc[8];
  for (std::size_t r = 0; r < 8; ++r) acc[r] = _mm512_setzero_pd();
  for (std::size_t p = 0; p < k; ++p) {
    const __m512d brow = _mm512_loadu_pd(pb + p * n + j0);
    for (std::size_t r = 0; r < 8; ++r) {
      const __m512d av = _mm512_set1_pd(pa[(i0 + r) * k + p]);
      acc[r] = _mm512_add_pd(acc[r], _mm512_mul_pd(av, brow));
    }
  }
  for (std::size_t r = 0; r < 8; ++r)
    _mm512_storeu_pd(po + (i0 + r) * n + j0, acc[r]);
}

// One 8-row x 16-column tile (two column vectors per row — better load/ALU
// overlap than 8x8 when n allows it).
inline void fleet_tile_8x16(double* __restrict__ po, const double* __restrict__ pa,
                            const double* __restrict__ pb, std::size_t i0,
                            std::size_t j0, std::size_t k, std::size_t n) {
  __m512d acc[8][2];
  for (std::size_t r = 0; r < 8; ++r) {
    acc[r][0] = _mm512_setzero_pd();
    acc[r][1] = _mm512_setzero_pd();
  }
  for (std::size_t p = 0; p < k; ++p) {
    const __m512d b0 = _mm512_loadu_pd(pb + p * n + j0);
    const __m512d b1 = _mm512_loadu_pd(pb + p * n + j0 + 8);
    for (std::size_t r = 0; r < 8; ++r) {
      const __m512d av = _mm512_set1_pd(pa[(i0 + r) * k + p]);
      acc[r][0] = _mm512_add_pd(acc[r][0], _mm512_mul_pd(av, b0));
      acc[r][1] = _mm512_add_pd(acc[r][1], _mm512_mul_pd(av, b1));
    }
  }
  for (std::size_t r = 0; r < 8; ++r) {
    _mm512_storeu_pd(po + (i0 + r) * n + j0, acc[r][0]);
    _mm512_storeu_pd(po + (i0 + r) * n + j0 + 8, acc[r][1]);
  }
}

}  // namespace

void matmul_into_batched(Tensor& out, const Tensor& a, const Tensor& b) {
  assert(a.rank() == 2 && b.rank() == 2);
  assert(&out != &a && &out != &b);
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  assert(b.rows() == k);
  out.reshape(m, n);
  const double* __restrict__ pa = a.data();
  const double* __restrict__ pb = b.data();
  double* __restrict__ po = out.data();
  std::size_t i0 = 0;
  for (; i0 + 8 <= m; i0 += 8) {
    std::size_t j0 = 0;
    for (; j0 + 16 <= n; j0 += 16) fleet_tile_8x16(po, pa, pb, i0, j0, k, n);
    for (; j0 + 8 <= n; j0 += 8) fleet_tile_8x8(po, pa, pb, i0, j0, k, n);
    for (; j0 < n; ++j0) {  // ragged column tail: matmul_into's exact loop
      for (std::size_t r = 0; r < 8; ++r) {
        const double* __restrict__ arow = pa + (i0 + r) * k;
        double acc = 0.0;
        for (std::size_t p = 0; p < k; ++p) {
          const double aip = arow[p];
          if (aip == 0.0) continue;
          acc += aip * pb[p * n + j0];
        }
        po[(i0 + r) * n + j0] = acc;
      }
    }
  }
  if (i0 < m)  // row tail (< 8 rows): the reference kernel, no allocation
    reference_rows(po + i0 * n, pa + i0 * k, pb, m - i0, k, n);
}

#else  // !__AVX512F__

void matmul_into_batched(Tensor& out, const Tensor& a, const Tensor& b) {
  // Portable fallback: 4-row x 8-column blocking with the reference
  // kernel's zero-skip kept per row. Same ascending-p per-element order, so
  // bit-identical to matmul_into without needing the +-0.0 argument above.
  assert(a.rank() == 2 && b.rank() == 2);
  assert(&out != &a && &out != &b);
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  assert(b.rows() == k);
  out.reshape(m, n);
  const double* __restrict__ pa = a.data();
  const double* __restrict__ pb = b.data();
  double* __restrict__ po = out.data();
  constexpr std::size_t kBlock = 8;
  std::size_t i0 = 0;
  for (; i0 + 4 <= m; i0 += 4) {
    const double* __restrict__ a0 = pa + (i0 + 0) * k;
    const double* __restrict__ a1 = pa + (i0 + 1) * k;
    const double* __restrict__ a2 = pa + (i0 + 2) * k;
    const double* __restrict__ a3 = pa + (i0 + 3) * k;
    std::size_t j0 = 0;
    for (; j0 + kBlock <= n; j0 += kBlock) {
      double c0[kBlock] = {0.0}, c1[kBlock] = {0.0};
      double c2[kBlock] = {0.0}, c3[kBlock] = {0.0};
      for (std::size_t p = 0; p < k; ++p) {
        const double* __restrict__ brow = pb + p * n + j0;
        const double v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
        if (v0 != 0.0) for (std::size_t jj = 0; jj < kBlock; ++jj) c0[jj] += v0 * brow[jj];
        if (v1 != 0.0) for (std::size_t jj = 0; jj < kBlock; ++jj) c1[jj] += v1 * brow[jj];
        if (v2 != 0.0) for (std::size_t jj = 0; jj < kBlock; ++jj) c2[jj] += v2 * brow[jj];
        if (v3 != 0.0) for (std::size_t jj = 0; jj < kBlock; ++jj) c3[jj] += v3 * brow[jj];
      }
      for (std::size_t jj = 0; jj < kBlock; ++jj) po[(i0 + 0) * n + j0 + jj] = c0[jj];
      for (std::size_t jj = 0; jj < kBlock; ++jj) po[(i0 + 1) * n + j0 + jj] = c1[jj];
      for (std::size_t jj = 0; jj < kBlock; ++jj) po[(i0 + 2) * n + j0 + jj] = c2[jj];
      for (std::size_t jj = 0; jj < kBlock; ++jj) po[(i0 + 3) * n + j0 + jj] = c3[jj];
    }
    for (; j0 < n; ++j0) {
      for (std::size_t r = 0; r < 4; ++r) {
        const double* __restrict__ arow = pa + (i0 + r) * k;
        double acc = 0.0;
        for (std::size_t p = 0; p < k; ++p) {
          const double aip = arow[p];
          if (aip == 0.0) continue;
          acc += aip * pb[p * n + j0];
        }
        po[(i0 + r) * n + j0] = acc;
      }
    }
  }
  if (i0 < m)  // row tail (< 4 rows): the reference kernel, no allocation
    reference_rows(po + i0 * n, pa + i0 * k, pb, m - i0, k, n);
}

#endif  // __AVX512F__

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  assert(a.rank() == 2 && b.rank() == 2);
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  assert(b.cols() == k);
  Tensor out = Tensor::zeros(m, n);
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = pa + i * k;
    double* orow = po + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* brow = pb + j * k;
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      orow[j] = s;
    }
  }
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  assert(a.rank() == 2 && b.rank() == 2);
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  assert(b.rows() == k);
  Tensor out = Tensor::zeros(m, n);
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  for (std::size_t p = 0; p < k; ++p) {
    const double* arow = pa + p * m;
    const double* brow = pb + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double api = arow[i];
      if (api == 0.0) continue;
      double* orow = po + i * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += api * brow[j];
    }
  }
  return out;
}

}  // namespace tsc::nn
