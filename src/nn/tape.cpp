#include "src/nn/tape.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tsc::nn {

Var Tape::push(Tensor value) {
  // Gradient buffers are allocated lazily in backward(): forward-only
  // passes (rollout decisions, evaluation) never pay for them.
  Node n;
  n.value = std::move(value);
  nodes_.push_back(std::move(n));
  return Var{static_cast<std::int32_t>(nodes_.size() - 1)};
}

Tape::Node& Tape::node(Var v) {
  assert(v.valid() && static_cast<std::size_t>(v.idx) < nodes_.size());
  return nodes_[static_cast<std::size_t>(v.idx)];
}

const Tape::Node& Tape::node(Var v) const {
  assert(v.valid() && static_cast<std::size_t>(v.idx) < nodes_.size());
  return nodes_[static_cast<std::size_t>(v.idx)];
}

Var Tape::constant(Tensor value) { return push(std::move(value)); }

Var Tape::alloc_constant(std::size_t rows, std::size_t cols) {
  Tensor t;
  if (!recycle_.empty()) {
    t = std::move(recycle_.back());
    recycle_.pop_back();
  }
  t.reshape(rows, cols);
  Var v = push(std::move(t));
  node(v).recyclable = true;
  return v;
}

Tensor& Tape::mutable_value(Var v) {
  assert(!node(v).back && node(v).parameter == nullptr);
  return node(v).value;
}

Var Tape::leaf(Tensor value) { return push(std::move(value)); }

Var Tape::param(Parameter& p) {
  Var v = push(p.value);
  node(v).parameter = &p;
  if (redirects_) {
    for (const auto& [target, sink] : *redirects_) {
      if (target == &p) {
        node(v).grad_sink = sink;
        break;
      }
    }
  }
  Var vc = v;
  node(v).back = [this, vc]() {
    Node& n = node(vc);
    if (n.grad_sink) {
      *n.grad_sink += n.grad;
    } else {
      n.parameter->grad += n.grad;
    }
  };
  return v;
}

const Tensor& Tape::value(Var v) const { return node(v).value; }
const Tensor& Tape::grad(Var v) const { return node(v).grad; }

Var Tape::add(Var a, Var b) {
  const Tensor& ta = value(a);
  const Tensor& tb = value(b);
  const bool broadcast = !ta.same_shape(tb);
  Tensor out = ta;
  if (broadcast) {
    assert(tb.rank() == 1 && tb.size() == ta.cols());
    for (std::size_t r = 0; r < ta.rows(); ++r)
      for (std::size_t c = 0; c < ta.cols(); ++c) out.at(r, c) += tb[c];
  } else {
    out += tb;
  }
  Var v = push(std::move(out));
  node(v).back = [this, v, a, b, broadcast]() {
    const Tensor& g = node(v).grad;
    node(a).grad += g;
    Tensor& gb = node(b).grad;
    if (broadcast) {
      const std::size_t cols = g.cols();
      for (std::size_t r = 0; r < g.rows(); ++r)
        for (std::size_t c = 0; c < cols; ++c) gb[c] += g.at(r, c);
    } else {
      gb += g;
    }
  };
  return v;
}

Var Tape::sub(Var a, Var b) {
  const Tensor& ta = value(a);
  const Tensor& tb = value(b);
  assert(ta.same_shape(tb));
  Tensor out = ta;
  out -= tb;
  Var v = push(std::move(out));
  node(v).back = [this, v, a, b]() {
    const Tensor& g = node(v).grad;
    node(a).grad += g;
    Tensor& gb = node(b).grad;
    for (std::size_t i = 0; i < g.size(); ++i) gb[i] -= g[i];
  };
  return v;
}

Var Tape::mul(Var a, Var b) {
  const Tensor& ta = value(a);
  const Tensor& tb = value(b);
  assert(ta.same_shape(tb));
  Tensor out = ta;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] *= tb[i];
  Var v = push(std::move(out));
  node(v).back = [this, v, a, b]() {
    const Tensor& g = node(v).grad;
    const Tensor& va = node(a).value;
    const Tensor& vb = node(b).value;
    Tensor& ga = node(a).grad;
    Tensor& gb = node(b).grad;
    for (std::size_t i = 0; i < g.size(); ++i) {
      ga[i] += g[i] * vb[i];
      gb[i] += g[i] * va[i];
    }
  };
  return v;
}

Var Tape::scale(Var a, double c) {
  Tensor out = value(a);
  out *= c;
  Var v = push(std::move(out));
  node(v).back = [this, v, a, c]() {
    const Tensor& g = node(v).grad;
    Tensor& ga = node(a).grad;
    for (std::size_t i = 0; i < g.size(); ++i) ga[i] += c * g[i];
  };
  return v;
}

Var Tape::div_scalar(Var a, double d) {
  assert(d != 0.0);
  Tensor out = value(a);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] /= d;
  Var v = push(std::move(out));
  node(v).back = [this, v, a, d]() {
    const Tensor& g = node(v).grad;
    Tensor& ga = node(a).grad;
    for (std::size_t i = 0; i < g.size(); ++i) ga[i] += g[i] / d;
  };
  return v;
}

Var Tape::add_scalar(Var a, double c) {
  Tensor out = value(a);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += c;
  Var v = push(std::move(out));
  node(v).back = [this, v, a]() { node(a).grad += node(v).grad; };
  return v;
}

Var Tape::matmul(Var a, Var b) {
  Var v = push(nn::matmul(value(a), value(b)));
  node(v).back = [this, v, a, b]() {
    const Tensor& g = node(v).grad;
    // dA = g @ B^T ; dB = A^T @ g
    node(a).grad += matmul_nt(g, node(b).value);
    node(b).grad += matmul_tn(node(a).value, g);
  };
  return v;
}

Var Tape::relu(Var a) {
  Tensor out = value(a);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = out[i] > 0.0 ? out[i] : 0.0;
  Var v = push(std::move(out));
  node(v).back = [this, v, a]() {
    const Tensor& g = node(v).grad;
    const Tensor& va = node(a).value;
    Tensor& ga = node(a).grad;
    for (std::size_t i = 0; i < g.size(); ++i)
      if (va[i] > 0.0) ga[i] += g[i];
  };
  return v;
}

Var Tape::leaky_relu(Var a, double slope) {
  Tensor out = value(a);
  for (std::size_t i = 0; i < out.size(); ++i)
    if (out[i] < 0.0) out[i] *= slope;
  Var v = push(std::move(out));
  node(v).back = [this, v, a, slope]() {
    const Tensor& g = node(v).grad;
    const Tensor& va = node(a).value;
    Tensor& ga = node(a).grad;
    for (std::size_t i = 0; i < g.size(); ++i)
      ga[i] += g[i] * (va[i] > 0.0 ? 1.0 : slope);
  };
  return v;
}

Var Tape::tanh(Var a) {
  Tensor out = value(a);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(out[i]);
  Var v = push(std::move(out));
  node(v).back = [this, v, a]() {
    const Tensor& g = node(v).grad;
    const Tensor& y = node(v).value;
    Tensor& ga = node(a).grad;
    for (std::size_t i = 0; i < g.size(); ++i) ga[i] += g[i] * (1.0 - y[i] * y[i]);
  };
  return v;
}

Var Tape::sigmoid(Var a) {
  Tensor out = value(a);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = 1.0 / (1.0 + std::exp(-out[i]));
  Var v = push(std::move(out));
  node(v).back = [this, v, a]() {
    const Tensor& g = node(v).grad;
    const Tensor& y = node(v).value;
    Tensor& ga = node(a).grad;
    for (std::size_t i = 0; i < g.size(); ++i) ga[i] += g[i] * y[i] * (1.0 - y[i]);
  };
  return v;
}

Var Tape::exp(Var a) {
  Tensor out = value(a);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::exp(out[i]);
  Var v = push(std::move(out));
  node(v).back = [this, v, a]() {
    const Tensor& g = node(v).grad;
    const Tensor& y = node(v).value;
    Tensor& ga = node(a).grad;
    for (std::size_t i = 0; i < g.size(); ++i) ga[i] += g[i] * y[i];
  };
  return v;
}

Var Tape::log(Var a, double eps) {
  Tensor out = value(a);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::log(std::max(out[i], eps));
  Var v = push(std::move(out));
  node(v).back = [this, v, a, eps]() {
    const Tensor& g = node(v).grad;
    const Tensor& va = node(a).value;
    Tensor& ga = node(a).grad;
    for (std::size_t i = 0; i < g.size(); ++i) ga[i] += g[i] / std::max(va[i], eps);
  };
  return v;
}

Var Tape::square(Var a) {
  Tensor out = value(a);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] *= out[i];
  Var v = push(std::move(out));
  node(v).back = [this, v, a]() {
    const Tensor& g = node(v).grad;
    const Tensor& va = node(a).value;
    Tensor& ga = node(a).grad;
    for (std::size_t i = 0; i < g.size(); ++i) ga[i] += 2.0 * g[i] * va[i];
  };
  return v;
}

Var Tape::huber(Var a, double delta) {
  assert(delta > 0.0);
  Tensor out = value(a);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double x = std::abs(out[i]);
    out[i] = x <= delta ? 0.5 * x * x : delta * (x - 0.5 * delta);
  }
  Var v = push(std::move(out));
  node(v).back = [this, v, a, delta]() {
    const Tensor& g = node(v).grad;
    const Tensor& va = node(a).value;
    Tensor& ga = node(a).grad;
    for (std::size_t i = 0; i < g.size(); ++i) {
      const double x = va[i];
      const double d = std::abs(x) <= delta ? x : (x > 0.0 ? delta : -delta);
      ga[i] += g[i] * d;
    }
  };
  return v;
}

Var Tape::softmax_rows(Var a) {
  const Tensor& ta = value(a);
  assert(ta.rank() == 2 || ta.rank() == 1);
  const std::size_t rows = ta.rows(), cols = ta.cols();
  Tensor out = ta;
  for (std::size_t r = 0; r < rows; ++r) {
    double mx = out[r * cols];
    for (std::size_t c = 1; c < cols; ++c) mx = std::max(mx, out[r * cols + c]);
    double denom = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      out[r * cols + c] = std::exp(out[r * cols + c] - mx);
      denom += out[r * cols + c];
    }
    for (std::size_t c = 0; c < cols; ++c) out[r * cols + c] /= denom;
  }
  Var v = push(std::move(out));
  node(v).back = [this, v, a, rows, cols]() {
    const Tensor& g = node(v).grad;
    const Tensor& y = node(v).value;
    Tensor& ga = node(a).grad;
    for (std::size_t r = 0; r < rows; ++r) {
      double dot = 0.0;
      for (std::size_t c = 0; c < cols; ++c) dot += g[r * cols + c] * y[r * cols + c];
      for (std::size_t c = 0; c < cols; ++c)
        ga[r * cols + c] += y[r * cols + c] * (g[r * cols + c] - dot);
    }
  };
  return v;
}

Var Tape::log_softmax_rows(Var a) {
  const Tensor& ta = value(a);
  assert(ta.rank() == 2 || ta.rank() == 1);
  const std::size_t rows = ta.rows(), cols = ta.cols();
  Tensor out = ta;
  for (std::size_t r = 0; r < rows; ++r) {
    double mx = out[r * cols];
    for (std::size_t c = 1; c < cols; ++c) mx = std::max(mx, out[r * cols + c]);
    double denom = 0.0;
    for (std::size_t c = 0; c < cols; ++c) denom += std::exp(out[r * cols + c] - mx);
    const double lse = mx + std::log(denom);
    for (std::size_t c = 0; c < cols; ++c) out[r * cols + c] -= lse;
  }
  Var v = push(std::move(out));
  node(v).back = [this, v, a, rows, cols]() {
    const Tensor& g = node(v).grad;
    const Tensor& y = node(v).value;  // log-probs
    Tensor& ga = node(a).grad;
    for (std::size_t r = 0; r < rows; ++r) {
      double gsum = 0.0;
      for (std::size_t c = 0; c < cols; ++c) gsum += g[r * cols + c];
      for (std::size_t c = 0; c < cols; ++c)
        ga[r * cols + c] += g[r * cols + c] - std::exp(y[r * cols + c]) * gsum;
    }
  };
  return v;
}

Var Tape::sum(Var a) {
  Tensor out = Tensor::vector({value(a).sum()});
  Var v = push(std::move(out));
  node(v).back = [this, v, a]() {
    const double g = node(v).grad[0];
    Tensor& ga = node(a).grad;
    for (std::size_t i = 0; i < ga.size(); ++i) ga[i] += g;
  };
  return v;
}

Var Tape::mean(Var a) {
  const std::size_t n = value(a).size();
  assert(n > 0);
  Tensor out = Tensor::vector({value(a).sum() / static_cast<double>(n)});
  Var v = push(std::move(out));
  node(v).back = [this, v, a, n]() {
    const double g = node(v).grad[0] / static_cast<double>(n);
    Tensor& ga = node(a).grad;
    for (std::size_t i = 0; i < ga.size(); ++i) ga[i] += g;
  };
  return v;
}

Var Tape::concat_cols(const std::vector<Var>& parts) {
  assert(!parts.empty());
  const std::size_t rows = value(parts[0]).rows();
  std::size_t total_cols = 0;
  for (Var p : parts) {
    assert(value(p).rows() == rows);
    total_cols += value(p).cols();
  }
  Tensor out = Tensor::zeros(rows, total_cols);
  std::size_t off = 0;
  for (Var p : parts) {
    const Tensor& t = value(p);
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < t.cols(); ++c) out.at(r, off + c) = t.at(r, c);
    off += t.cols();
  }
  Var v = push(std::move(out));
  std::vector<Var> parts_copy = parts;
  node(v).back = [this, v, parts_copy, rows]() {
    const Tensor& g = node(v).grad;
    std::size_t off = 0;
    for (Var p : parts_copy) {
      Tensor& gp = node(p).grad;
      const std::size_t pc = node(p).value.cols();
      for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < pc; ++c) gp[r * pc + c] += g.at(r, off + c);
      off += pc;
    }
  };
  return v;
}

Var Tape::concat_rows(const std::vector<Var>& parts) {
  assert(!parts.empty());
  const std::size_t cols = value(parts[0]).cols();
  std::size_t total_rows = 0;
  for (Var p : parts) {
    assert(value(p).cols() == cols);
    total_rows += value(p).rows();
  }
  Tensor out = Tensor::zeros(total_rows, cols);
  std::size_t off = 0;
  for (Var p : parts) {
    const Tensor& t = value(p);
    for (std::size_t r = 0; r < t.rows(); ++r)
      for (std::size_t c = 0; c < cols; ++c) out.at(off + r, c) = t.at(r, c);
    off += t.rows();
  }
  Var v = push(std::move(out));
  std::vector<Var> parts_copy = parts;
  node(v).back = [this, v, parts_copy, cols]() {
    const Tensor& g = node(v).grad;
    std::size_t off = 0;
    for (Var p : parts_copy) {
      Tensor& gp = node(p).grad;
      const std::size_t pr = node(p).value.rows();
      for (std::size_t r = 0; r < pr; ++r)
        for (std::size_t c = 0; c < cols; ++c) gp[r * cols + c] += g.at(off + r, c);
      off += pr;
    }
  };
  return v;
}

Var Tape::slice_cols(Var a, std::size_t start, std::size_t len) {
  const Tensor& ta = value(a);
  assert(start + len <= ta.cols());
  const std::size_t rows = ta.rows();
  Tensor out = Tensor::zeros(rows, len);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < len; ++c) out.at(r, c) = ta.at(r, start + c);
  Var v = push(std::move(out));
  node(v).back = [this, v, a, start, len, rows]() {
    const Tensor& g = node(v).grad;
    Tensor& ga = node(a).grad;
    const std::size_t acols = node(a).value.cols();
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < len; ++c) ga[r * acols + start + c] += g.at(r, c);
  };
  return v;
}

Var Tape::select_row(Var a, std::size_t r) {
  const Tensor& ta = value(a);
  assert(r < ta.rows());
  const std::size_t cols = ta.cols();
  Tensor out = Tensor::zeros(1, cols);
  for (std::size_t c = 0; c < cols; ++c) out.at(0, c) = ta.at(r, c);
  Var v = push(std::move(out));
  node(v).back = [this, v, a, r, cols]() {
    const Tensor& g = node(v).grad;
    Tensor& ga = node(a).grad;
    for (std::size_t c = 0; c < cols; ++c) ga[r * cols + c] += g[c];
  };
  return v;
}

Var Tape::gather_cols(Var a, const std::vector<std::size_t>& indices) {
  const Tensor& ta = value(a);
  assert(indices.size() == ta.rows());
  Tensor out = Tensor::zeros(ta.rows(), 1);
  for (std::size_t r = 0; r < ta.rows(); ++r) {
    assert(indices[r] < ta.cols());
    out.at(r, 0) = ta.at(r, indices[r]);
  }
  Var v = push(std::move(out));
  std::vector<std::size_t> idx = indices;
  node(v).back = [this, v, a, idx]() {
    const Tensor& g = node(v).grad;
    Tensor& ga = node(a).grad;
    const std::size_t cols = node(a).value.cols();
    for (std::size_t r = 0; r < idx.size(); ++r) ga[r * cols + idx[r]] += g[r];
  };
  return v;
}

Var Tape::clamp(Var a, double lo, double hi) {
  Tensor out = value(a);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::clamp(out[i], lo, hi);
  Var v = push(std::move(out));
  node(v).back = [this, v, a, lo, hi]() {
    const Tensor& g = node(v).grad;
    const Tensor& va = node(a).value;
    Tensor& ga = node(a).grad;
    for (std::size_t i = 0; i < g.size(); ++i)
      if (va[i] > lo && va[i] < hi) ga[i] += g[i];
  };
  return v;
}

Var Tape::min_elem(Var a, Var b) {
  const Tensor& ta = value(a);
  const Tensor& tb = value(b);
  assert(ta.same_shape(tb));
  Tensor out = ta;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::min(ta[i], tb[i]);
  Var v = push(std::move(out));
  node(v).back = [this, v, a, b]() {
    const Tensor& g = node(v).grad;
    const Tensor& va = node(a).value;
    const Tensor& vb = node(b).value;
    Tensor& ga = node(a).grad;
    Tensor& gb = node(b).grad;
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (va[i] < vb[i]) {
        ga[i] += g[i];
      } else if (vb[i] < va[i]) {
        gb[i] += g[i];
      } else {
        ga[i] += 0.5 * g[i];
        gb[i] += 0.5 * g[i];
      }
    }
  };
  return v;
}

Var Tape::max_elem(Var a, Var b) {
  const Tensor& ta = value(a);
  const Tensor& tb = value(b);
  assert(ta.same_shape(tb));
  Tensor out = ta;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::max(ta[i], tb[i]);
  Var v = push(std::move(out));
  node(v).back = [this, v, a, b]() {
    const Tensor& g = node(v).grad;
    const Tensor& va = node(a).value;
    const Tensor& vb = node(b).value;
    Tensor& ga = node(a).grad;
    Tensor& gb = node(b).grad;
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (va[i] > vb[i]) {
        ga[i] += g[i];
      } else if (vb[i] > va[i]) {
        gb[i] += g[i];
      } else {
        ga[i] += 0.5 * g[i];
        gb[i] += 0.5 * g[i];
      }
    }
  };
  return v;
}

void Tape::backward(Var loss) {
  assert(loss.valid());
  Node& ln = node(loss);
  assert(ln.value.size() == 1 && "backward() requires a scalar loss");
  for (Node& n : nodes_)
    if (n.grad.size() != n.value.size()) n.grad = Tensor::zeros_like(n.value);
  ln.grad.fill(1.0);
  for (std::size_t i = static_cast<std::size_t>(loss.idx) + 1; i-- > 0;) {
    if (nodes_[i].back) nodes_[i].back();
  }
}

void Tape::reset() {
  peak_nodes_ = std::max(peak_nodes_, nodes_.size());
  for (Node& n : nodes_)
    if (n.recyclable) recycle_.push_back(std::move(n.value));
  nodes_.clear();
  nodes_.reserve(peak_nodes_);
}

}  // namespace tsc::nn
