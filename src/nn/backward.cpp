// Backward kernels for the tape-free training path. Every loop replays the
// corresponding Tape backward closure (nn/tape.cpp) and the matmul_nt /
// matmul_tn kernels (nn/tensor.cpp) expression-for-expression — see the
// contract in backward.hpp. Built with the tensor.cpp flag set
// (-O3 -march=native -ffp-contract=off) so vectorization never introduces
// FMA contraction or reassociation.
#include "src/nn/backward.hpp"

#include <cmath>
#include <cstddef>

namespace tsc::nn {

void backward_matmul_nt_acc(Tensor& dx, const Tensor& dy, const Tensor& w) {
  const std::size_t m = dy.rows();
  const std::size_t n = dy.cols();
  const std::size_t k = w.rows();  // dx is [m, k], w is [k, n]
  const double* pg = dy.data();
  const double* pw = w.data();
  double* po = dx.data();
  for (std::size_t i = 0; i < m; ++i) {
    const double* grow = pg + i * n;
    double* orow = po + i * k;
    for (std::size_t j = 0; j < k; ++j) {
      // matmul_nt's sequential ascending dot, then the tape's single +=.
      const double* wrow = pw + j * n;
      double s = 0.0;
      for (std::size_t p = 0; p < n; ++p) {
        s += grow[p] * wrow[p];
      }
      orow[j] += s;
    }
  }
}

void backward_matmul_tn_acc(Tensor& dw, const Tensor& x, const Tensor& dy) {
  const std::size_t m = x.rows();
  const std::size_t k = x.cols();  // dw is [k, n]
  const std::size_t n = dy.cols();
  const double* px = x.data();
  const double* pg = dy.data();
  double* po = dw.data();
  for (std::size_t p = 0; p < m; ++p) {
    const double* xrow = px + p * k;
    const double* grow = pg + p * n;
    for (std::size_t i = 0; i < k; ++i) {
      const double xpi = xrow[i];
      if (xpi == 0.0) {
        continue;  // matmul_tn's zero-skip on the activation
      }
      double* orow = po + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        orow[j] += xpi * grow[j];
      }
    }
  }
}

void backward_bias_acc(Tensor& db, const Tensor& dy) {
  const std::size_t rows = dy.rows();
  const std::size_t cols = dy.cols();
  const double* pg = dy.data();
  double* pb = db.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const double* grow = pg + r * cols;
    for (std::size_t c = 0; c < cols; ++c) {
      pb[c] += grow[c];
    }
  }
}

void relu_backward_acc(Tensor& dx, const Tensor& g, const Tensor& y) {
  const std::size_t n = y.size();
  const double* pg = g.data();
  const double* py = y.data();
  double* po = dx.data();
  for (std::size_t i = 0; i < n; ++i) {
    if (py[i] > 0.0) {
      po[i] += pg[i];
    }
  }
}

void tanh_backward_acc(Tensor& dx, const Tensor& g, const Tensor& y) {
  const std::size_t n = y.size();
  const double* pg = g.data();
  const double* py = y.data();
  double* po = dx.data();
  for (std::size_t i = 0; i < n; ++i) {
    po[i] += pg[i] * (1.0 - py[i] * py[i]);
  }
}

void sigmoid_backward_acc(Tensor& dx, const Tensor& g, const Tensor& y) {
  const std::size_t n = y.size();
  const double* pg = g.data();
  const double* py = y.data();
  double* po = dx.data();
  for (std::size_t i = 0; i < n; ++i) {
    po[i] += pg[i] * py[i] * (1.0 - py[i]);
  }
}

void softmax_backward_acc(Tensor& dx, const Tensor& g, const Tensor& y) {
  const std::size_t rows = y.rows();
  const std::size_t cols = y.cols();
  const double* pg = g.data();
  const double* py = y.data();
  double* po = dx.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const double* grow = pg + r * cols;
    const double* yrow = py + r * cols;
    double* orow = po + r * cols;
    double dot = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      dot += grow[c] * yrow[c];
    }
    for (std::size_t c = 0; c < cols; ++c) {
      orow[c] += yrow[c] * (grow[c] - dot);
    }
  }
}

void log_softmax_backward_acc(Tensor& dx, const Tensor& g, const Tensor& y) {
  const std::size_t rows = y.rows();
  const std::size_t cols = y.cols();
  const double* pg = g.data();
  const double* py = y.data();
  double* po = dx.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const double* grow = pg + r * cols;
    const double* yrow = py + r * cols;
    double* orow = po + r * cols;
    double gsum = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      gsum += grow[c];
    }
    for (std::size_t c = 0; c < cols; ++c) {
      orow[c] += grow[c] - std::exp(yrow[c]) * gsum;
    }
  }
}

void lstm_backward_gates(Tensor& dgates, const Tensor& dh, const Tensor& gates,
                         const Tensor& tanh_c, const Tensor& c_in,
                         std::size_t hidden) {
  const std::size_t rows = dh.rows();
  const double* pdh = dh.data();
  const double* pgt = gates.data();
  const double* ptc = tanh_c.data();
  const double* pc = c_in.data();
  double* po = dgates.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const double* dhrow = pdh + r * hidden;
    const double* grow = pgt + r * 4 * hidden;
    const double* tcrow = ptc + r * hidden;
    const double* crow = pc + r * hidden;
    double* orow = po + r * 4 * hidden;
    for (std::size_t j = 0; j < hidden; ++j) {
      const double iv = grow[j];
      const double fv = grow[hidden + j];
      const double gv = grow[2 * hidden + j];
      const double ov = grow[3 * hidden + j];
      const double tc = tcrow[j];
      const double dhv = dhrow[j];
      // The `0.0 +` adds are the tape's node-grad seeds (`grad += term`
      // onto a zero tensor): they flush -0.0 to +0.0 before the value is
      // multiplied downstream, which bit-identity requires.
      const double go = 0.0 + dhv * tc;            // h = mul(o, tanh_c)
      const double gtc = 0.0 + dhv * ov;
      const double gcn = 0.0 + gtc * (1.0 - tc * tc);  // tanh backward
      const double gi = 0.0 + gcn * gv;            // ig = mul(i, g)
      const double gg = 0.0 + gcn * iv;
      const double gf = 0.0 + gcn * crow[j];       // fc = mul(f, c_in)
      orow[j] = 0.0 + gi * iv * (1.0 - iv);        // sigmoid backwards
      orow[hidden + j] = 0.0 + gf * fv * (1.0 - fv);
      orow[2 * hidden + j] = 0.0 + gg * (1.0 - gv * gv);  // tanh backward
      orow[3 * hidden + j] = 0.0 + go * ov * (1.0 - ov);
    }
  }
}

}  // namespace tsc::nn
