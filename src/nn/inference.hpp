// Forward-only inference engine: preallocated activation buffers plus
// tape-free kernels that replay the tape's exact floating-point operations.
//
// Rollout collection, greedy evaluation, and the baseline controllers never
// call backward(), yet historically paid for a full autodiff tape per
// forward pass: one node per op, each owning a freshly allocated value
// tensor, plus a copy of every weight matrix (Tape::param copies the
// Parameter value into its node). The InferenceWorkspace replaces all of
// that with a flat list of reusable activation buffers handed out in
// acquisition order: begin_pass() rewinds the cursor, acquire() returns the
// next slot reshaped to the requested size. Because a decision step always
// acquires the same shapes in the same order, every buffer reaches its peak
// capacity after the first pass and the workspace performs ZERO steady-state
// allocations — observable via alloc_events(), which counts slot creations
// and backing-storage growth.
//
// Bit-identity contract: every kernel here mirrors the corresponding Tape
// op's loop structure exactly (same operation order, same rounding), so
// logits / messages / values / actions produced through forward_inference
// are bit-identical to the tape path. tests/test_inference_path.cpp pins
// this against the tape for the actor, critic, and all NN baselines.
//
// Threading: a workspace is mutable scratch — give each worker thread its
// own (RolloutWorker carries one; see core/trainer.hpp). Buffers returned
// by acquire() are only valid until the next begin_pass(), so persistent
// state (LSTM h/c) must be copied out before the next pass.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "src/nn/kernels.hpp"
#include "src/nn/tensor.hpp"

namespace tsc::nn {

class InferenceWorkspace {
 public:
  InferenceWorkspace() = default;
  InferenceWorkspace(const InferenceWorkspace&) = delete;
  InferenceWorkspace& operator=(const InferenceWorkspace&) = delete;

  /// Rewinds the buffer cursor; the next acquire() reuses the first slot.
  void begin_pass() { cursor_ = 0; }

  /// Next activation buffer, reshaped to [rows, cols]. Contents are
  /// unspecified (kernels overwrite every element). The reference stays
  /// valid until the slot is handed out again after a begin_pass() —
  /// slots live behind stable unique_ptrs, so earlier acquisitions of the
  /// same pass are never invalidated by later ones.
  Tensor& acquire(std::size_t rows, std::size_t cols);

  /// Total allocation events so far: slot creations plus backing-storage
  /// growth inside acquire(). Stops increasing once the acquisition
  /// sequence has stabilized — the zero-steady-state-allocation guarantee
  /// tests assert on.
  std::size_t alloc_events() const { return alloc_events_; }
  std::size_t num_buffers() const { return slots_.size(); }

  /// Selects the GEMM kernel the layer forwards run through this workspace:
  /// false (default) = matmul_into, the per-agent path's reference kernel;
  /// true = matmul_into_batched, the multi-row register-blocked kernel
  /// tuned for fleet-sized batches. Both produce bit-identical results (see
  /// nn/tensor.hpp); the flag exists so the fleet engine gets the batched
  /// throughput while the per-agent path keeps running — and benchmarking
  /// as — the exact historical kernel.
  void set_batched_gemm(bool on) { batched_gemm_ = on; }
  bool batched_gemm() const { return batched_gemm_; }

  /// Selects the math-kernel tier (nn/kernels.hpp) for every layer forward
  /// run through this workspace: kReference (default) keeps the bit-exact
  /// legacy kernels; kFast swaps in the tolerance-bounded SIMD/FMA ones.
  /// Orthogonal to set_batched_gemm — in the fast tier both the batched and
  /// per-agent GEMM route to the same FMA kernel, so fleet vs per-agent
  /// stays bit-identical WITHIN a tier.
  void set_kernel_tier(KernelTier tier) { kernel_tier_ = tier; }
  KernelTier kernel_tier() const { return kernel_tier_; }

 private:
  std::vector<std::unique_ptr<Tensor>> slots_;
  std::size_t cursor_ = 0;
  std::size_t alloc_events_ = 0;
  bool batched_gemm_ = false;
  KernelTier kernel_tier_ = KernelTier::kReference;
};

// ---- tape-free kernels (loops mirror the Tape ops bit-for-bit) ----

/// out = row-wise softmax of `in` (same loops as Tape::softmax_rows).
/// `out` must not alias `in`.
void softmax_rows_into(Tensor& out, const Tensor& in);

/// out = row-wise log-softmax of `in` (same loops as
/// Tape::log_softmax_rows). `out` must not alias `in`.
void log_softmax_rows_into(Tensor& out, const Tensor& in);

/// Tier-dispatched variants: kReference runs the exact loops above; kFast
/// replaces the per-element libm exp with the vectorized fast-tier exp
/// (max-subtraction and normalization unchanged, so rows still sum to 1 up
/// to rounding and the -1e9 action mask still lands exactly on probability
/// zero — the fast exp clamps into the underflow-to-+0 range).
void softmax_rows_into(Tensor& out, const Tensor& in, KernelTier tier);
void log_softmax_rows_into(Tensor& out, const Tensor& in, KernelTier tier);

/// In-place ReLU / tanh (same element order as Tape::relu / Tape::tanh).
void relu_inplace(Tensor& t);
void tanh_inplace(Tensor& t);
/// Tier-dispatched tanh (kReference == tanh_inplace above, bit for bit).
void tanh_inplace(Tensor& t, KernelTier tier);

/// argmax over columns [0, limit) of row `r` (first max wins, matching the
/// strict `>` comparison the rollout/baseline action loops use).
std::size_t argmax_row(const Tensor& t, std::size_t r, std::size_t limit);

}  // namespace tsc::nn
