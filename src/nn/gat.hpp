// Graph attention over an agent's local neighborhood (self + K neighbor
// slots), as used by CoLight: scaled dot-product attention where the query
// is the agent itself and keys/values are the neighborhood entities.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "src/nn/layers.hpp"
#include "src/nn/module.hpp"

namespace tsc::nn {

class GatLayer : public Module {
 public:
  /// `entity_dim`: embedding width of each entity row; `out_dim`: output
  /// width; `max_entities`: fixed neighborhood size (self + padded slots).
  GatLayer(std::size_t entity_dim, std::size_t out_dim, std::size_t max_entities,
           Rng& rng);

  /// entities: [max_entities, entity_dim] where row 0 is the agent itself;
  /// mask[k] == false marks a padded slot (excluded from attention).
  /// Returns [1, out_dim].
  Var forward(Tape& tape, Var entities, const std::vector<bool>& mask);

  /// Tape-free forward; bit-identical to forward() (same dot/scale/mask
  /// arithmetic, same softmax loops). Updates last_attention() like the
  /// tape path does. The returned reference lives in the workspace.
  const Tensor& forward_inference(InferenceWorkspace& ws, const Tensor& entities,
                                  const std::vector<bool>& mask);

  /// Block-batched tape-free forward for the fleet evaluation path:
  /// `entities` stacks B independent neighborhoods as [B * max_entities,
  /// entity_dim] (block b's first row is that block's self) and masks[b] is
  /// block b's entity mask. Returns [B, out_dim] where row b is
  /// bit-identical to forward_inference() on block b alone: the query / key
  /// / value projections batch into single row-independent GEMMs, and the
  /// score chain plus the per-block alpha @ vals product replay the
  /// single-block arithmetic exactly (nn::matmul_rows_into on the stacked
  /// buffers). last_attention() afterwards holds the LAST block's weights.
  const Tensor& forward_inference_blocks(
      InferenceWorkspace& ws, const Tensor& entities,
      const std::vector<const std::vector<bool>*>& masks);

  /// Activations retained by forward_train() for backward_train(); all
  /// tensors are workspace slots (valid until the next begin_pass()).
  struct TrainTrace {
    const Tensor* self_row = nullptr;  ///< [1, entity_dim]
    const Tensor* query = nullptr;     ///< [1, out_dim]
    const Tensor* keys = nullptr;      ///< [max_entities, out_dim]
    const Tensor* vals = nullptr;      ///< [max_entities, out_dim]
    const Tensor* alpha = nullptr;     ///< [1, max_entities]
    const Tensor* mixed = nullptr;     ///< [1, out_dim]
    const Tensor* out = nullptr;       ///< [1, out_dim] post-relu
    const std::vector<bool>* mask = nullptr;
  };

  /// Forward bit-identical to forward() / forward_inference(), retaining
  /// the intermediates backward_train() needs.
  const Tensor& forward_train(BackwardWorkspace& ws, const Tensor& entities,
                              const std::vector<bool>& mask, TrainTrace& trace);

  /// Analytic backward: `dout` is the [1, out_dim] output gradient;
  /// parameter gradients accumulate into `sinks` in parameters() order
  /// ([wq.w, wq.b, wk.w, wk.b, wv.w, wv.b, wo.w, wo.b], weight sinks
  /// exactly +0.0); when dentities != nullptr, dentities += gradient w.r.t.
  /// the entity rows. Bit-identical to the tape's backward, including the
  /// accumulation order of the three entity-gradient contributions
  /// (values term, keys term, then the self-row scatter) and the exactly
  /// skippable masked-slot score chains.
  void backward_train(BackwardWorkspace& ws, const Tensor& entities,
                      const TrainTrace& trace, const Tensor& dout,
                      Tensor* const* sinks, Tensor* dentities) const;

  /// Attention weights of the last forward() call (for tests/inspection).
  const std::vector<double>& last_attention() const { return last_attention_; }

  std::size_t max_entities() const { return max_entities_; }

 private:
  std::size_t entity_dim_, out_dim_, max_entities_;
  std::unique_ptr<Linear> w_query_;
  std::unique_ptr<Linear> w_key_;
  std::unique_ptr<Linear> w_value_;
  std::unique_ptr<Linear> w_out_;
  std::vector<double> last_attention_;
};

}  // namespace tsc::nn
