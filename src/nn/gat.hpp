// Graph attention over an agent's local neighborhood (self + K neighbor
// slots), as used by CoLight: scaled dot-product attention where the query
// is the agent itself and keys/values are the neighborhood entities.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "src/nn/layers.hpp"
#include "src/nn/module.hpp"

namespace tsc::nn {

class GatLayer : public Module {
 public:
  /// `entity_dim`: embedding width of each entity row; `out_dim`: output
  /// width; `max_entities`: fixed neighborhood size (self + padded slots).
  GatLayer(std::size_t entity_dim, std::size_t out_dim, std::size_t max_entities,
           Rng& rng);

  /// entities: [max_entities, entity_dim] where row 0 is the agent itself;
  /// mask[k] == false marks a padded slot (excluded from attention).
  /// Returns [1, out_dim].
  Var forward(Tape& tape, Var entities, const std::vector<bool>& mask);

  /// Tape-free forward; bit-identical to forward() (same dot/scale/mask
  /// arithmetic, same softmax loops). Updates last_attention() like the
  /// tape path does. The returned reference lives in the workspace.
  const Tensor& forward_inference(InferenceWorkspace& ws, const Tensor& entities,
                                  const std::vector<bool>& mask);

  /// Block-batched tape-free forward for the fleet evaluation path:
  /// `entities` stacks B independent neighborhoods as [B * max_entities,
  /// entity_dim] (block b's first row is that block's self) and masks[b] is
  /// block b's entity mask. Returns [B, out_dim] where row b is
  /// bit-identical to forward_inference() on block b alone: the query / key
  /// / value projections batch into single row-independent GEMMs, and the
  /// score chain plus the per-block alpha @ vals product replay the
  /// single-block arithmetic exactly (nn::matmul_rows_into on the stacked
  /// buffers). last_attention() afterwards holds the LAST block's weights.
  const Tensor& forward_inference_blocks(
      InferenceWorkspace& ws, const Tensor& entities,
      const std::vector<const std::vector<bool>*>& masks);

  /// Attention weights of the last forward() call (for tests/inspection).
  const std::vector<double>& last_attention() const { return last_attention_; }

  std::size_t max_entities() const { return max_entities_; }

 private:
  std::size_t entity_dim_, out_dim_, max_entities_;
  std::unique_ptr<Linear> w_query_;
  std::unique_ptr<Linear> w_key_;
  std::unique_ptr<Linear> w_value_;
  std::unique_ptr<Linear> w_out_;
  std::vector<double> last_attention_;
};

}  // namespace tsc::nn
