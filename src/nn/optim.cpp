#include "src/nn/optim.hpp"

#include <cmath>

namespace tsc::nn {

double clip_grad_norm(const std::vector<Parameter*>& params, double max_norm) {
  double total_sq = 0.0;
  for (const Parameter* p : params)
    for (std::size_t i = 0; i < p->grad.size(); ++i) total_sq += p->grad[i] * p->grad[i];
  const double norm = std::sqrt(total_sq);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (Parameter* p : params)
      for (std::size_t i = 0; i < p->grad.size(); ++i) p->grad[i] *= scale;
  }
  return norm;
}

void Sgd::step() {
  for (Parameter* p : params_)
    for (std::size_t i = 0; i < p->value.size(); ++i) p->value[i] -= lr_ * p->grad[i];
}

Adam::Adam(std::vector<Parameter*> params, Config config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter* p : params_) {
    m_.push_back(Tensor::zeros_like(p->value));
    v_.push_back(Tensor::zeros_like(p->value));
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Parameter& p = *params_[k];
    Tensor& m = m_[k];
    Tensor& v = v_[k];
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      const double g = p.grad[i];
      m[i] = config_.beta1 * m[i] + (1.0 - config_.beta1) * g;
      v[i] = config_.beta2 * v[i] + (1.0 - config_.beta2) * g * g;
      const double m_hat = m[i] / bc1;
      const double v_hat = v[i] / bc2;
      p.value[i] -= config_.lr *
                    (m_hat / (std::sqrt(v_hat) + config_.eps) +
                     config_.weight_decay * p.value[i]);
    }
  }
}

}  // namespace tsc::nn
