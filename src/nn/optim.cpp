#include "src/nn/optim.hpp"

#include <cmath>
#include <stdexcept>

namespace tsc::nn {

double clip_grad_norm(const std::vector<Parameter*>& params, double max_norm) {
  double total_sq = 0.0;
  for (const Parameter* p : params)
    for (std::size_t i = 0; i < p->grad.size(); ++i) total_sq += p->grad[i] * p->grad[i];
  const double norm = std::sqrt(total_sq);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (Parameter* p : params)
      for (std::size_t i = 0; i < p->grad.size(); ++i) p->grad[i] *= scale;
  }
  return norm;
}

double clip_grad_norm(std::vector<Tensor>& grads, double max_norm) {
  double total_sq = 0.0;
  for (const Tensor& g : grads)
    for (std::size_t i = 0; i < g.size(); ++i) total_sq += g[i] * g[i];
  const double norm = std::sqrt(total_sq);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (Tensor& g : grads)
      for (std::size_t i = 0; i < g.size(); ++i) g[i] *= scale;
  }
  return norm;
}

void Sgd::step() {
  for (Parameter* p : params_)
    for (std::size_t i = 0; i < p->value.size(); ++i) p->value[i] -= lr_ * p->grad[i];
}

Adam::Adam(std::vector<Parameter*> params, Config config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter* p : params_) {
    m_.push_back(Tensor::zeros_like(p->value));
    v_.push_back(Tensor::zeros_like(p->value));
  }
}

void Adam::apply_param(std::size_t k, const Tensor& grad, double bc1, double bc2) {
  Parameter& p = *params_[k];
  Tensor& m = m_[k];
  Tensor& v = v_[k];
  for (std::size_t i = 0; i < p.value.size(); ++i) {
    const double g = grad[i];
    m[i] = config_.beta1 * m[i] + (1.0 - config_.beta1) * g;
    v[i] = config_.beta2 * v[i] + (1.0 - config_.beta2) * g * g;
    const double m_hat = m[i] / bc1;
    const double v_hat = v[i] / bc2;
    p.value[i] -= config_.lr *
                  (m_hat / (std::sqrt(v_hat) + config_.eps) +
                   config_.weight_decay * p.value[i]);
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k)
    apply_param(k, params_[k]->grad, bc1, bc2);
}

void Adam::step_with_grads(const std::vector<Tensor>& grads) {
  if (grads.size() != params_.size())
    throw std::invalid_argument("Adam::step_with_grads: gradient count mismatch");
  for (std::size_t k = 0; k < params_.size(); ++k)
    if (!grads[k].same_shape(params_[k]->value))
      throw std::invalid_argument("Adam::step_with_grads: shape mismatch for " +
                                  params_[k]->name);
  ++t_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k)
    apply_param(k, grads[k], bc1, bc2);
}

void Adam::restore_state(std::vector<Tensor> m, std::vector<Tensor> v,
                         std::size_t t) {
  if (m.size() != params_.size() || v.size() != params_.size())
    throw std::invalid_argument("Adam::restore_state: moment count mismatch");
  for (std::size_t k = 0; k < params_.size(); ++k)
    if (!m[k].same_shape(params_[k]->value) || !v[k].same_shape(params_[k]->value))
      throw std::invalid_argument("Adam::restore_state: shape mismatch for " +
                                  params_[k]->name);
  m_ = std::move(m);
  v_ = std::move(v);
  t_ = t;
}

}  // namespace tsc::nn
