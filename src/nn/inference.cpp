#include "src/nn/inference.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tsc::nn {

Tensor& InferenceWorkspace::acquire(std::size_t rows, std::size_t cols) {
  if (cursor_ == slots_.size()) {
    slots_.push_back(std::make_unique<Tensor>());
    ++alloc_events_;
  }
  Tensor& t = *slots_[cursor_++];
  const std::size_t cap_before = t.values().capacity();
  t.reshape(rows, cols);
  if (t.values().capacity() != cap_before) ++alloc_events_;
  return t;
}

// The softmax kernels below copy the input and then run the EXACT loop
// bodies of Tape::softmax_rows / Tape::log_softmax_rows (tape.cpp): the
// same max scan, the same exp/accumulate order, the same divide/subtract.
// Any deviation breaks the inference path's bit-identity guarantee.

void softmax_rows_into(Tensor& out, const Tensor& in) {
  assert(&out != &in);
  const std::size_t rows = in.rows(), cols = in.cols();
  out.reshape(rows, cols);
  std::copy(in.data(), in.data() + in.size(), out.data());
  for (std::size_t r = 0; r < rows; ++r) {
    double mx = out[r * cols];
    for (std::size_t c = 1; c < cols; ++c) mx = std::max(mx, out[r * cols + c]);
    double denom = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      out[r * cols + c] = std::exp(out[r * cols + c] - mx);
      denom += out[r * cols + c];
    }
    for (std::size_t c = 0; c < cols; ++c) out[r * cols + c] /= denom;
  }
}

void log_softmax_rows_into(Tensor& out, const Tensor& in) {
  assert(&out != &in);
  const std::size_t rows = in.rows(), cols = in.cols();
  out.reshape(rows, cols);
  std::copy(in.data(), in.data() + in.size(), out.data());
  for (std::size_t r = 0; r < rows; ++r) {
    double mx = out[r * cols];
    for (std::size_t c = 1; c < cols; ++c) mx = std::max(mx, out[r * cols + c]);
    double denom = 0.0;
    for (std::size_t c = 0; c < cols; ++c) denom += std::exp(out[r * cols + c] - mx);
    const double lse = mx + std::log(denom);
    for (std::size_t c = 0; c < cols; ++c) out[r * cols + c] -= lse;
  }
}

// Fast-tier softmax: subtract the row max in one pass, batch the exps
// through the vectorized kernel, then normalize. Subtract-then-exp computes
// the same values as the reference's fused exp(x - mx); the separation is
// what lets the exp vectorize across the whole row.

void softmax_rows_into(Tensor& out, const Tensor& in, KernelTier tier) {
  if (tier == KernelTier::kReference) {
    softmax_rows_into(out, in);
    return;
  }
  assert(&out != &in);
  const std::size_t rows = in.rows(), cols = in.cols();
  out.reshape(rows, cols);
  std::copy(in.data(), in.data() + in.size(), out.data());
  double* p = out.data();
  for (std::size_t r = 0; r < rows; ++r) {
    double* row = p + r * cols;
    double mx = row[0];
    for (std::size_t c = 1; c < cols; ++c) mx = std::max(mx, row[c]);
    for (std::size_t c = 0; c < cols; ++c) row[c] -= mx;
  }
  exp_inplace_tier(p, rows * cols, tier);
  for (std::size_t r = 0; r < rows; ++r) {
    double* row = p + r * cols;
    double denom = 0.0;
    for (std::size_t c = 0; c < cols; ++c) denom += row[c];
    for (std::size_t c = 0; c < cols; ++c) row[c] /= denom;
  }
}

void log_softmax_rows_into(Tensor& out, const Tensor& in, KernelTier tier) {
  if (tier == KernelTier::kReference) {
    log_softmax_rows_into(out, in);
    return;
  }
  assert(&out != &in);
  const std::size_t rows = in.rows(), cols = in.cols();
  out.reshape(rows, cols);
  std::copy(in.data(), in.data() + in.size(), out.data());
  double* p = out.data();
  // Shift every row by its max in place, batch one exp over the whole
  // buffer into a stack scratch (rows here are action logits, a handful of
  // columns — chunking keeps the scratch fixed-size for any shape), then
  // subtract each row's log-sum-exp.
  for (std::size_t r = 0; r < rows; ++r) {
    double* row = p + r * cols;
    double mx = row[0];
    for (std::size_t c = 1; c < cols; ++c) mx = std::max(mx, row[c]);
    for (std::size_t c = 0; c < cols; ++c) row[c] -= mx;
    double denom = 0.0;
    double scratch[64];
    for (std::size_t c0 = 0; c0 < cols; c0 += 64) {
      const std::size_t len = std::min<std::size_t>(64, cols - c0);
      std::copy(row + c0, row + c0 + len, scratch);
      exp_inplace_tier(scratch, len, tier);
      for (std::size_t i = 0; i < len; ++i) denom += scratch[i];
    }
    const double lse = std::log(denom);
    for (std::size_t c = 0; c < cols; ++c) row[c] -= lse;
  }
}

void relu_inplace(Tensor& t) {
  double* p = t.data();
  const std::size_t n = t.size();
  for (std::size_t i = 0; i < n; ++i) p[i] = p[i] > 0.0 ? p[i] : 0.0;
}

void tanh_inplace(Tensor& t) {
  double* p = t.data();
  const std::size_t n = t.size();
  for (std::size_t i = 0; i < n; ++i) p[i] = std::tanh(p[i]);
}

void tanh_inplace(Tensor& t, KernelTier tier) {
  tanh_inplace_tier(t.data(), t.size(), tier);
}

std::size_t argmax_row(const Tensor& t, std::size_t r, std::size_t limit) {
  assert(limit > 0 && limit <= t.cols());
  std::size_t best = 0;
  for (std::size_t c = 1; c < limit; ++c)
    if (t.at(r, c) > t.at(r, best)) best = c;
  return best;
}

}  // namespace tsc::nn
