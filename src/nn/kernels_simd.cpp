// SIMD implementations of the fast-tier kernels. This translation unit is
// compiled with explicit ISA flags (see src/nn/CMakeLists.txt, TSC_FAST_TIER)
// and is only ENTERED after simd_detail::runtime_supported() confirms the
// running CPU has every feature the compiler was allowed to emit — callers
// in kernels.cpp otherwise take the scalar fallback, which is written to be
// bit-identical to these lanes (see kernels_scalar.hpp for the contract).
//
// Lane-for-lane identity with the scalar fallback:
//  * _mm256_fmadd_pd == std::fma per lane (both correctly rounded fused ops).
//  * _mm256_round_pd(NEAREST_INT|NO_EXC) == std::nearbyint under the default
//    round-to-nearest FP environment (the only one the repo runs in).
//  * min/max/and/or/blend are exact bit operations or exact selections.
//  * Vector loop tails run the scalar functions directly — same arithmetic.
//
// The GEMM tiles produce bit-identical results to gemm_fma_rows because each
// out[i][j]'s FMA chain is ascending-p regardless of how (i, j) is tiled.
#include <cstddef>

#include "src/nn/kernels_scalar.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace tsc::nn::simd_detail {

#if defined(__AVX2__) && defined(__FMA__)

bool runtime_supported() {
  // Must cover every ISA extension the compiler could have used in this TU:
  // with -march=native on an AVX-512 box the "AVX2" intrinsics below may be
  // EVEX-encoded, so the AVX-512 feature bits are required too when the
  // corresponding macros were defined at compile time.
  if (!__builtin_cpu_supports("avx2") || !__builtin_cpu_supports("fma"))
    return false;
#if defined(__AVX512F__)
  if (!__builtin_cpu_supports("avx512f")) return false;
#endif
#if defined(__AVX512VL__)
  if (!__builtin_cpu_supports("avx512vl")) return false;
#endif
#if defined(__AVX512DQ__)
  if (!__builtin_cpu_supports("avx512dq")) return false;
#endif
#if defined(__AVX512BW__)
  if (!__builtin_cpu_supports("avx512bw")) return false;
#endif
  return true;
}

namespace {

using fast_detail::kExpHi;
using fast_detail::kExpLo;
using fast_detail::kExpPoly;
using fast_detail::kLn2Hi;
using fast_detail::kLn2Lo;
using fast_detail::kLog2E;
using fast_detail::kTanhP;
using fast_detail::kTanhQ;
using fast_detail::kTanhSplit;

// 2^52 + 2^51: for |v| < 2^51, bits(v + kMagic) - bits(kMagic) == (int64)v
// when v is integral — the classic exact double->int64 conversion that AVX2
// lacks a direct instruction for.
constexpr double kMagic = 6755399441055744.0;

inline __m256i to_int64(__m256d v) {
  const __m256d magic = _mm256_set1_pd(kMagic);
  return _mm256_sub_epi64(_mm256_castpd_si256(_mm256_add_pd(v, magic)),
                          _mm256_castpd_si256(magic));
}

inline __m256d exp4(__m256d x) {
  x = _mm256_max_pd(x, _mm256_set1_pd(kExpLo));
  x = _mm256_min_pd(x, _mm256_set1_pd(kExpHi));
  const __m256d n =
      _mm256_round_pd(_mm256_mul_pd(x, _mm256_set1_pd(kLog2E)),
                      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fmadd_pd(n, _mm256_set1_pd(-kLn2Hi), x);
  r = _mm256_fmadd_pd(n, _mm256_set1_pd(-kLn2Lo), r);
  __m256d p = _mm256_set1_pd(kExpPoly[0]);
  for (std::size_t i = 1; i < sizeof(kExpPoly) / sizeof(kExpPoly[0]); ++i)
    p = _mm256_fmadd_pd(r, p, _mm256_set1_pd(kExpPoly[i]));
  const __m256d n1 =
      _mm256_round_pd(_mm256_mul_pd(n, _mm256_set1_pd(0.5)),
                      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m256d n2 = _mm256_sub_pd(n, n1);
  const __m256i bias = _mm256_set1_epi64x(1023);
  const __m256d s1 = _mm256_castsi256_pd(
      _mm256_slli_epi64(_mm256_add_epi64(to_int64(n1), bias), 52));
  const __m256d s2 = _mm256_castsi256_pd(
      _mm256_slli_epi64(_mm256_add_epi64(to_int64(n2), bias), 52));
  return _mm256_mul_pd(_mm256_mul_pd(p, s1), s2);
}

inline __m256d sigmoid4(__m256d x) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  const __m256d e = exp4(_mm256_xor_pd(x, sign));  // e^{-x}: exact negation
  const __m256d one = _mm256_set1_pd(1.0);
  return _mm256_div_pd(one, _mm256_add_pd(one, e));
}

inline __m256d tanh4(__m256d x) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d sign = _mm256_and_pd(x, sign_mask);
  const __m256d ax = _mm256_andnot_pd(sign_mask, x);
  // Small branch (|x| < 0.625): Cephes rational, uses signed x directly.
  const __m256d z = _mm256_mul_pd(x, x);
  __m256d pn = _mm256_set1_pd(kTanhP[0]);
  pn = _mm256_fmadd_pd(z, pn, _mm256_set1_pd(kTanhP[1]));
  pn = _mm256_fmadd_pd(z, pn, _mm256_set1_pd(kTanhP[2]));
  __m256d pd = _mm256_add_pd(z, _mm256_set1_pd(kTanhQ[0]));
  pd = _mm256_fmadd_pd(z, pd, _mm256_set1_pd(kTanhQ[1]));
  pd = _mm256_fmadd_pd(z, pd, _mm256_set1_pd(kTanhQ[2]));
  const __m256d small =
      _mm256_fmadd_pd(_mm256_mul_pd(x, z), _mm256_div_pd(pn, pd), x);
  // Large branch: 1 - 2/(e^{2|x|}+1), sign reapplied (the quotient is >= 0).
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d e = exp4(_mm256_add_pd(ax, ax));
  const __m256d t =
      _mm256_sub_pd(one, _mm256_div_pd(_mm256_set1_pd(2.0), _mm256_add_pd(e, one)));
  const __m256d big = _mm256_or_pd(t, sign);
  const __m256d use_small =
      _mm256_cmp_pd(ax, _mm256_set1_pd(kTanhSplit), _CMP_LT_OQ);
  return _mm256_blendv_pd(big, small, use_small);
}

}  // namespace

void exp_inplace(double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(x + i, exp4(_mm256_loadu_pd(x + i)));
  for (; i < n; ++i) x[i] = fast_detail::exp_scalar(x[i]);
}

void tanh_inplace(double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(x + i, tanh4(_mm256_loadu_pd(x + i)));
  for (; i < n; ++i) x[i] = fast_detail::tanh_scalar(x[i]);
}

void sigmoid_inplace(double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(x + i, sigmoid4(_mm256_loadu_pd(x + i)));
  for (; i < n; ++i) x[i] = fast_detail::sigmoid_scalar(x[i]);
}

// ---- FMA GEMM ----------------------------------------------------------
// Same tiling skeleton as tensor.cpp's matmul_into_batched, with fused
// multiply-adds and no zero-skip. AVX-512 tiles when compiled for it
// (this box), AVX2 4x8 tiles otherwise; every tile keeps each out[i][j]'s
// chain ascending-p, so results are bit-identical to gemm_fma_rows.

#if defined(__AVX512F__)

namespace {

inline void fma_tile_8x8(double* __restrict__ po, const double* __restrict__ pa,
                         const double* __restrict__ pb, std::size_t i0,
                         std::size_t j0, std::size_t k, std::size_t n) {
  __m512d acc[8];
  for (std::size_t r = 0; r < 8; ++r) acc[r] = _mm512_setzero_pd();
  for (std::size_t p = 0; p < k; ++p) {
    const __m512d brow = _mm512_loadu_pd(pb + p * n + j0);
    for (std::size_t r = 0; r < 8; ++r) {
      const __m512d av = _mm512_set1_pd(pa[(i0 + r) * k + p]);
      acc[r] = _mm512_fmadd_pd(av, brow, acc[r]);
    }
  }
  for (std::size_t r = 0; r < 8; ++r)
    _mm512_storeu_pd(po + (i0 + r) * n + j0, acc[r]);
}

inline void fma_tile_8x16(double* __restrict__ po, const double* __restrict__ pa,
                          const double* __restrict__ pb, std::size_t i0,
                          std::size_t j0, std::size_t k, std::size_t n) {
  __m512d acc[8][2];
  for (std::size_t r = 0; r < 8; ++r) {
    acc[r][0] = _mm512_setzero_pd();
    acc[r][1] = _mm512_setzero_pd();
  }
  for (std::size_t p = 0; p < k; ++p) {
    const __m512d b0 = _mm512_loadu_pd(pb + p * n + j0);
    const __m512d b1 = _mm512_loadu_pd(pb + p * n + j0 + 8);
    for (std::size_t r = 0; r < 8; ++r) {
      const __m512d av = _mm512_set1_pd(pa[(i0 + r) * k + p]);
      acc[r][0] = _mm512_fmadd_pd(av, b0, acc[r][0]);
      acc[r][1] = _mm512_fmadd_pd(av, b1, acc[r][1]);
    }
  }
  for (std::size_t r = 0; r < 8; ++r) {
    _mm512_storeu_pd(po + (i0 + r) * n + j0, acc[r][0]);
    _mm512_storeu_pd(po + (i0 + r) * n + j0 + 8, acc[r][1]);
  }
}

}  // namespace

void gemm_fma(double* __restrict__ po, const double* __restrict__ pa,
              const double* __restrict__ pb, std::size_t m, std::size_t k,
              std::size_t n) {
  std::size_t i0 = 0;
  for (; i0 + 8 <= m; i0 += 8) {
    std::size_t j0 = 0;
    for (; j0 + 16 <= n; j0 += 16) fma_tile_8x16(po, pa, pb, i0, j0, k, n);
    for (; j0 + 8 <= n; j0 += 8) fma_tile_8x8(po, pa, pb, i0, j0, k, n);
    for (; j0 < n; ++j0) {  // ragged column tail: scalar fma chain
      for (std::size_t r = 0; r < 8; ++r) {
        const double* __restrict__ arow = pa + (i0 + r) * k;
        double acc = 0.0;
        for (std::size_t p = 0; p < k; ++p)
          acc = __builtin_fma(arow[p], pb[p * n + j0], acc);
        po[(i0 + r) * n + j0] = acc;
      }
    }
  }
  if (i0 < m)  // row tail (< 8 rows): the shared scalar kernel
    fast_detail::gemm_fma_rows(po + i0 * n, pa + i0 * k, pb, m - i0, k, n);
}

#else  // AVX2-only build of this TU

namespace {

inline void fma_tile_4x8(double* __restrict__ po, const double* __restrict__ pa,
                         const double* __restrict__ pb, std::size_t i0,
                         std::size_t j0, std::size_t k, std::size_t n) {
  __m256d acc[4][2];
  for (std::size_t r = 0; r < 4; ++r) {
    acc[r][0] = _mm256_setzero_pd();
    acc[r][1] = _mm256_setzero_pd();
  }
  for (std::size_t p = 0; p < k; ++p) {
    const __m256d b0 = _mm256_loadu_pd(pb + p * n + j0);
    const __m256d b1 = _mm256_loadu_pd(pb + p * n + j0 + 4);
    for (std::size_t r = 0; r < 4; ++r) {
      const __m256d av = _mm256_set1_pd(pa[(i0 + r) * k + p]);
      acc[r][0] = _mm256_fmadd_pd(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_pd(av, b1, acc[r][1]);
    }
  }
  for (std::size_t r = 0; r < 4; ++r) {
    _mm256_storeu_pd(po + (i0 + r) * n + j0, acc[r][0]);
    _mm256_storeu_pd(po + (i0 + r) * n + j0 + 4, acc[r][1]);
  }
}

}  // namespace

void gemm_fma(double* __restrict__ po, const double* __restrict__ pa,
              const double* __restrict__ pb, std::size_t m, std::size_t k,
              std::size_t n) {
  std::size_t i0 = 0;
  for (; i0 + 4 <= m; i0 += 4) {
    std::size_t j0 = 0;
    for (; j0 + 8 <= n; j0 += 8) fma_tile_4x8(po, pa, pb, i0, j0, k, n);
    for (; j0 < n; ++j0) {
      for (std::size_t r = 0; r < 4; ++r) {
        const double* __restrict__ arow = pa + (i0 + r) * k;
        double acc = 0.0;
        for (std::size_t p = 0; p < k; ++p)
          acc = __builtin_fma(arow[p], pb[p * n + j0], acc);
        po[(i0 + r) * n + j0] = acc;
      }
    }
  }
  if (i0 < m) fast_detail::gemm_fma_rows(po + i0 * n, pa + i0 * k, pb, m - i0, k, n);
}

#endif  // __AVX512F__

#else  // TU compiled without AVX2+FMA (non-x86 box or flags rejected):
       // runtime_supported() says no, so these stubs are never entered via
       // dispatch; they defer to the scalar kernels for safety anyway.

bool runtime_supported() { return false; }

void exp_inplace(double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = fast_detail::exp_scalar(x[i]);
}
void tanh_inplace(double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = fast_detail::tanh_scalar(x[i]);
}
void sigmoid_inplace(double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = fast_detail::sigmoid_scalar(x[i]);
}
void gemm_fma(double* po, const double* pa, const double* pb, std::size_t m,
              std::size_t k, std::size_t n) {
  fast_detail::gemm_fma_rows(po, pa, pb, m, k, n);
}

#endif  // __AVX2__ && __FMA__

}  // namespace tsc::nn::simd_detail
