#include "src/nn/kernels.hpp"

#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdlib>

#include "src/nn/kernels_scalar.hpp"
#include "src/nn/tensor.hpp"
#include "src/util/log.hpp"

namespace tsc::nn {

// ---- SIMD translation-unit hooks --------------------------------------
// kernels_simd.cpp is only in the build when CMake's TSC_FAST_TIER knob is
// ON and the compiler accepted the ISA flags; it defines TSC_FAST_TIER_SIMD
// for THIS translation unit via a CMake compile definition so the two can
// never disagree about whether the symbols exist.
#if defined(TSC_FAST_TIER_SIMD)
namespace simd_detail {
bool runtime_supported();  // __builtin_cpu_supports for the compiled ISA
void exp_inplace(double* x, std::size_t n);
void tanh_inplace(double* x, std::size_t n);
void sigmoid_inplace(double* x, std::size_t n);
void gemm_fma(double* out, const double* a, const double* b, std::size_t m,
              std::size_t k, std::size_t n);
}  // namespace simd_detail
#endif

namespace {

bool force_scalar_from_env() {
  const char* raw = std::getenv("PAIRUP_KERNEL_FORCE_SCALAR");
  return raw != nullptr && raw[0] == '1' && raw[1] == '\0';
}

std::atomic<bool>& force_scalar_flag() {
  static std::atomic<bool> flag{force_scalar_from_env()};
  return flag;
}

}  // namespace

const char* kernel_tier_name(KernelTier tier) {
  return tier == KernelTier::kFast ? "fast" : "reference";
}

bool parse_kernel_tier(std::string_view text, KernelTier* out) {
  if (text == "reference" || text == "ref" || text == "0") {
    *out = KernelTier::kReference;
    return true;
  }
  if (text == "fast" || text == "1") {
    *out = KernelTier::kFast;
    return true;
  }
  return false;
}

KernelTier kernel_tier_from_env(KernelTier fallback) {
  const char* raw = std::getenv("PAIRUP_KERNEL_TIER");
  if (raw == nullptr) return fallback;
  KernelTier tier = fallback;
  if (!parse_kernel_tier(raw, &tier)) {
    log_warn("PAIRUP_KERNEL_TIER: unknown value '", raw, "', keeping '",
             kernel_tier_name(fallback), "'");
    return fallback;
  }
  return tier;
}

bool fast_tier_simd_compiled() {
#if defined(TSC_FAST_TIER_SIMD)
  return true;
#else
  return false;
#endif
}

bool fast_tier_simd_active() {
#if defined(TSC_FAST_TIER_SIMD)
  static const bool cpu_ok = simd_detail::runtime_supported();
  return cpu_ok && !force_scalar_flag().load(std::memory_order_relaxed);
#else
  return false;
#endif
}

void set_fast_tier_force_scalar(bool force) {
  force_scalar_flag().store(force, std::memory_order_relaxed);
}

bool fast_tier_force_scalar() {
  return force_scalar_flag().load(std::memory_order_relaxed);
}

// ---- element-wise kernels ---------------------------------------------

void exp_inplace_tier(double* x, std::size_t n, KernelTier tier) {
  if (tier == KernelTier::kReference) {
    for (std::size_t i = 0; i < n; ++i) x[i] = std::exp(x[i]);
    return;
  }
#if defined(TSC_FAST_TIER_SIMD)
  if (fast_tier_simd_active()) {
    simd_detail::exp_inplace(x, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) x[i] = fast_detail::exp_scalar(x[i]);
}

void tanh_inplace_tier(double* x, std::size_t n, KernelTier tier) {
  if (tier == KernelTier::kReference) {
    for (std::size_t i = 0; i < n; ++i) x[i] = std::tanh(x[i]);
    return;
  }
#if defined(TSC_FAST_TIER_SIMD)
  if (fast_tier_simd_active()) {
    simd_detail::tanh_inplace(x, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) x[i] = fast_detail::tanh_scalar(x[i]);
}

void sigmoid_inplace_tier(double* x, std::size_t n, KernelTier tier) {
  if (tier == KernelTier::kReference) {
    for (std::size_t i = 0; i < n; ++i) x[i] = 1.0 / (1.0 + std::exp(-x[i]));
    return;
  }
#if defined(TSC_FAST_TIER_SIMD)
  if (fast_tier_simd_active()) {
    simd_detail::sigmoid_inplace(x, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) x[i] = fast_detail::sigmoid_scalar(x[i]);
}

double logistic(double x, KernelTier tier) {
  // Reference: the exact expression the message-squash sites historically
  // inlined — 1.0 / (1.0 + std::exp(-x)) — so the dedup is bit-identical.
  if (tier == KernelTier::kReference) return 1.0 / (1.0 + std::exp(-x));
  return fast_detail::sigmoid_scalar(x);
}

void matmul_into_fast(Tensor& out, const Tensor& a, const Tensor& b) {
  assert(a.rank() == 2 && b.rank() == 2);
  assert(a.shape()[1] == b.shape()[0]);
  assert(&out != &a && &out != &b);
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  out.reshape(m, n);
#if defined(TSC_FAST_TIER_SIMD)
  if (fast_tier_simd_active()) {
    simd_detail::gemm_fma(out.data(), a.data(), b.data(), m, k, n);
    return;
  }
#endif
  fast_detail::gemm_fma_rows(out.data(), a.data(), b.data(), m, k, n);
}

}  // namespace tsc::nn
