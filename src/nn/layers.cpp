#include "src/nn/layers.hpp"

#include <cassert>
#include <cmath>

#include "src/nn/backward.hpp"
#include "src/nn/inference.hpp"

namespace tsc::nn {

Linear::Linear(std::size_t in, std::size_t out, Rng& rng, double gain, bool orthogonal)
    : weight(Tensor::zeros(in, out), "linear.weight"),
      bias(Tensor::zeros(out), "linear.bias"),
      in_(in),
      out_(out) {
  if (orthogonal) {
    orthogonal_init(weight.value, rng, gain);
  } else {
    xavier_init(weight.value, rng);
  }
  register_parameter(&weight);
  register_parameter(&bias);
}

Var Linear::forward(Tape& tape, Var x) {
  assert(tape.value(x).cols() == in_);
  Var w = tape.param(weight);
  Var b = tape.param(bias);
  return tape.add(tape.matmul(x, w), b);
}

const Tensor& Linear::forward_inference(InferenceWorkspace& ws,
                                        const Tensor& x) const {
  assert(x.cols() == in_);
  Tensor& out = ws.acquire(x.rows(), out_);
  // Reference tier: both kernels are bit-identical (nn/tensor.hpp); the
  // workspace selects the multi-row blocked one on the fleet-batched path.
  // Fast tier: one FMA kernel for both paths, so fleet vs per-agent stays
  // bit-identical within the tier.
  if (ws.kernel_tier() == KernelTier::kFast) {
    matmul_into_fast(out, x, weight.value);
  } else if (ws.batched_gemm()) {
    matmul_into_batched(out, x, weight.value);
  } else {
    matmul_into(out, x, weight.value);
  }
  // Broadcast bias add: same adds in the same order as Tape::add's rank-1
  // branch, on raw rows (this loop runs once per fleet GEMM over every
  // batch element and must not pay per-element accessor calls).
  const double* pb = bias.value.data();
  const std::size_t rows = out.rows();
  double* po = out.data();
  for (std::size_t r = 0; r < rows; ++r, po += out_)
    for (std::size_t c = 0; c < out_; ++c) po[c] += pb[c];
  return out;
}

void Linear::backward_train(const Tensor& x, const Tensor& dy, Tensor& dw_sink,
                            Tensor& db_sink, Tensor* dx) const {
  assert(x.cols() == in_ && dy.cols() == out_ && x.rows() == dy.rows());
  // Tape order: the add node's backward (bias row sums) runs before the
  // matmul node's — the sinks are disjoint, but keep the order anyway.
  backward_bias_acc(db_sink, dy);
  if (dx != nullptr) backward_matmul_nt_acc(*dx, dy, weight.value);
  backward_matmul_tn_acc(dw_sink, x, dy);
}

Mlp::Mlp(const std::vector<std::size_t>& dims, Rng& rng, Activation hidden_act,
         double out_gain)
    : act_(hidden_act) {
  assert(dims.size() >= 2);
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    const bool is_output = (i + 2 == dims.size());
    const double gain = is_output ? out_gain : std::numbers::sqrt2;
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng, gain));
    register_module(layers_.back().get());
  }
}

Var Mlp::forward(Tape& tape, Var x) {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    x = layers_[i]->forward(tape, x);
    const bool is_output = (i + 1 == layers_.size());
    if (!is_output) {
      switch (act_) {
        case Activation::kRelu: x = tape.relu(x); break;
        case Activation::kTanh: x = tape.tanh(x); break;
        case Activation::kNone: break;
      }
    }
  }
  return x;
}

const Tensor& Mlp::forward_inference(InferenceWorkspace& ws,
                                     const Tensor& x) const {
  const Tensor* cur = &x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Tensor& out = const_cast<Tensor&>(layers_[i]->forward_inference(ws, *cur));
    const bool is_output = (i + 1 == layers_.size());
    if (!is_output) {
      // In-place activation on the layer output: element-wise, so identical
      // to the tape's copy-then-transform nodes.
      switch (act_) {
        case Activation::kRelu: relu_inplace(out); break;
        case Activation::kTanh: tanh_inplace(out); break;
        case Activation::kNone: break;
      }
    }
    cur = &out;
  }
  return *cur;
}

const Tensor& Mlp::forward_train(BackwardWorkspace& ws, const Tensor& x,
                                 TrainTrace& trace) const {
  trace.inputs.clear();
  const Tensor* cur = &x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    trace.inputs.push_back(cur);
    Tensor& out = const_cast<Tensor&>(layers_[i]->forward_inference(ws.fwd(), *cur));
    const bool is_output = (i + 1 == layers_.size());
    if (!is_output) {
      switch (act_) {
        case Activation::kRelu: relu_inplace(out); break;
        case Activation::kTanh: tanh_inplace(out); break;
        case Activation::kNone: break;
      }
    }
    cur = &out;
  }
  trace.out = cur;
  return *cur;
}

void Mlp::backward_train(BackwardWorkspace& ws, const TrainTrace& trace,
                         const Tensor& dy, Tensor* const* sinks,
                         Tensor* dx) const {
  assert(trace.inputs.size() == layers_.size());
  const std::size_t rows = dy.rows();
  const Tensor* g = &dy;  // gradient w.r.t. layer i's pre-activation output
  for (std::size_t i = layers_.size(); i-- > 0;) {
    const Tensor& in = *trace.inputs[i];
    Tensor* din = nullptr;
    if (i > 0) {
      din = &ws.acquire_zeroed(rows, layers_[i]->in_features());
    } else {
      din = dx;
    }
    layers_[i]->backward_train(in, *g, *sinks[2 * i], *sinks[2 * i + 1], din);
    if (i == 0) break;
    if (act_ == Activation::kNone) {  // no activation node on the tape either
      g = din;
      continue;
    }
    // Through the hidden activation: `in` is the previous layer's
    // post-activation output, which is what the tape closures key off.
    Tensor& gprev = ws.acquire_zeroed(rows, layers_[i]->in_features());
    switch (act_) {
      case Activation::kRelu: relu_backward_acc(gprev, *din, in); break;
      case Activation::kTanh: tanh_backward_acc(gprev, *din, in); break;
      case Activation::kNone: break;
    }
    g = &gprev;
  }
}

LayerNorm::LayerNorm(std::size_t dim, double eps)
    : gain(Tensor::full(1, dim, 1.0), "layernorm.gain"),
      bias(Tensor::zeros(dim), "layernorm.bias"),
      dim_(dim),
      eps_(eps) {
  register_parameter(&gain);
  register_parameter(&bias);
}

Var LayerNorm::forward(Tape& tape, Var x) {
  const std::size_t batch = tape.value(x).rows();
  assert(tape.value(x).cols() == dim_);
  const double inv_d = 1.0 / static_cast<double>(dim_);
  // Row statistics via matmul with ones (keeps everything on the tape).
  Var ones_col = tape.constant(Tensor::full(dim_, 1, 1.0));   // [d,1]
  Var ones_row = tape.constant(Tensor::full(1, dim_, 1.0));   // [1,d]
  Var mean = tape.scale(tape.matmul(x, ones_col), inv_d);     // [B,1]
  Var centered = tape.sub(x, tape.matmul(mean, ones_row));    // [B,d]
  Var var = tape.scale(tape.matmul(tape.square(centered), ones_col), inv_d);
  // 1/sqrt(var + eps) == exp(-0.5 * log(var + eps)).
  Var inv_std = tape.exp(tape.scale(tape.log(tape.add_scalar(var, eps_)), -0.5));
  Var normalized = tape.mul(centered, tape.matmul(inv_std, ones_row));
  Var ones_batch = tape.constant(Tensor::full(batch, 1, 1.0));  // [B,1]
  Var gain_bcast = tape.matmul(ones_batch, tape.param(gain));   // [B,d]
  return tape.add(tape.mul(normalized, gain_bcast), tape.param(bias));
}

Dropout::Dropout(double p, Rng& rng) : p_(p), rng_(&rng) {
  assert(p >= 0.0 && p < 1.0);
}

Var Dropout::forward(Tape& tape, Var x) {
  if (!training_ || p_ == 0.0) return x;
  const Tensor& v = tape.value(x);
  Tensor mask = Tensor::zeros_like(v);
  const double keep_scale = 1.0 / (1.0 - p_);
  for (std::size_t i = 0; i < mask.size(); ++i)
    mask[i] = rng_->bernoulli(p_) ? 0.0 : keep_scale;
  return tape.mul(x, tape.constant(std::move(mask)));
}

LstmCell::LstmCell(std::size_t in, std::size_t hidden, Rng& rng)
    : w_x(Tensor::zeros(in, 4 * hidden), "lstm.w_x"),
      w_h(Tensor::zeros(hidden, 4 * hidden), "lstm.w_h"),
      bias(Tensor::zeros(4 * hidden), "lstm.bias"),
      in_(in),
      hidden_(hidden) {
  orthogonal_init(w_x.value, rng, 1.0);
  orthogonal_init(w_h.value, rng, 1.0);
  // Forget-gate bias of 1 keeps early memories alive (standard practice).
  for (std::size_t i = hidden; i < 2 * hidden; ++i) bias.value[i] = 1.0;
  register_parameter(&w_x);
  register_parameter(&w_h);
  register_parameter(&bias);
}

LstmCell::State LstmCell::forward(Tape& tape, Var x, Var h, Var c) {
  assert(tape.value(x).cols() == in_);
  assert(tape.value(h).cols() == hidden_);
  Var gates = tape.add(
      tape.add(tape.matmul(x, tape.param(w_x)), tape.matmul(h, tape.param(w_h))),
      tape.param(bias));
  Var i_gate = tape.sigmoid(tape.slice_cols(gates, 0, hidden_));
  Var f_gate = tape.sigmoid(tape.slice_cols(gates, hidden_, hidden_));
  Var g_gate = tape.tanh(tape.slice_cols(gates, 2 * hidden_, hidden_));
  Var o_gate = tape.sigmoid(tape.slice_cols(gates, 3 * hidden_, hidden_));
  Var c_new = tape.add(tape.mul(f_gate, c), tape.mul(i_gate, g_gate));
  Var h_new = tape.mul(o_gate, tape.tanh(c_new));
  return {h_new, c_new};
}

LstmCell::InferenceState LstmCell::forward_inference(InferenceWorkspace& ws,
                                                     const Tensor& x,
                                                     const Tensor& h,
                                                     const Tensor& c) const {
  assert(x.cols() == in_);
  assert(h.cols() == hidden_ && c.cols() == hidden_);
  const std::size_t batch = x.rows();
  const std::size_t gate_cols = 4 * hidden_;
  Tensor& m1 = ws.acquire(batch, gate_cols);
  Tensor& m2 = ws.acquire(batch, gate_cols);
  const bool fast = ws.kernel_tier() == KernelTier::kFast;
  if (fast) {
    matmul_into_fast(m1, x, w_x.value);
    matmul_into_fast(m2, h, w_h.value);
  } else if (ws.batched_gemm()) {
    matmul_into_batched(m1, x, w_x.value);
    matmul_into_batched(m2, h, w_h.value);
  } else {
    matmul_into(m1, x, w_x.value);
    matmul_into(m2, h, w_h.value);
  }
  // gates = (x@w_x + h@w_h) + bias as two separately rounded adds, exactly
  // the tape's add(add(matmul, matmul), bias) chain.
  Tensor& gates = m1;
  const double* pb = bias.value.data();
  for (std::size_t r = 0; r < batch; ++r) {
    double* grow = gates.data() + r * gate_cols;
    const double* m2row = m2.data() + r * gate_cols;
    for (std::size_t j = 0; j < gate_cols; ++j) {
      const double s = grow[j] + m2row[j];
      grow[j] = s + pb[j];
    }
  }
  Tensor& h_new = ws.acquire(batch, hidden_);
  Tensor& c_new = ws.acquire(batch, hidden_);
  assert(&c != &c_new && &h != &h_new && &c != &h_new && &h != &c_new);
  if (fast) {
    // Fast tier: batch the gate nonlinearities over the contiguous spans the
    // i|f|g|o gate-row layout already provides — sigmoid across [0, 2H)
    // (i and f back to back), tanh across [2H, 3H), sigmoid across [3H, 4H)
    // — then the c/h update with one more batched tanh over the fresh cell
    // row (m2 is dead after the gate sum above, so its rows serve as the
    // tanh scratch). The per-element c_new arithmetic (f*c + i*g, separate
    // rounding) matches the reference loop exactly; all tier divergence
    // comes from the vectorized transcendentals and the FMA GEMMs.
    for (std::size_t r = 0; r < batch; ++r) {
      double* grow = gates.data() + r * gate_cols;
      const double* crow = c.data() + r * hidden_;
      double* hrow = h_new.data() + r * hidden_;
      double* crow_new = c_new.data() + r * hidden_;
      double* scratch = m2.data() + r * gate_cols;
      sigmoid_inplace_tier(grow, 2 * hidden_, KernelTier::kFast);
      tanh_inplace_tier(grow + 2 * hidden_, hidden_, KernelTier::kFast);
      sigmoid_inplace_tier(grow + 3 * hidden_, hidden_, KernelTier::kFast);
      for (std::size_t j = 0; j < hidden_; ++j) {
        const double fc = grow[hidden_ + j] * crow[j];
        const double ig = grow[j] * grow[2 * hidden_ + j];
        const double cn = fc + ig;
        crow_new[j] = cn;
        scratch[j] = cn;
      }
      tanh_inplace_tier(scratch, hidden_, KernelTier::kFast);
      const double* orow = grow + 3 * hidden_;
      for (std::size_t j = 0; j < hidden_; ++j) hrow[j] = orow[j] * scratch[j];
    }
    return {&h_new, &c_new};
  }
  for (std::size_t r = 0; r < batch; ++r) {
    const double* grow = gates.data() + r * gate_cols;
    const double* crow = c.data() + r * hidden_;
    double* hrow = h_new.data() + r * hidden_;
    double* crow_new = c_new.data() + r * hidden_;
    for (std::size_t j = 0; j < hidden_; ++j) {
      const double i_gate = 1.0 / (1.0 + std::exp(-grow[j]));
      const double f_gate = 1.0 / (1.0 + std::exp(-grow[hidden_ + j]));
      const double g_gate = std::tanh(grow[2 * hidden_ + j]);
      const double o_gate = 1.0 / (1.0 + std::exp(-grow[3 * hidden_ + j]));
      const double fc = f_gate * crow[j];
      const double ig = i_gate * g_gate;
      const double cn = fc + ig;
      crow_new[j] = cn;
      hrow[j] = o_gate * std::tanh(cn);
    }
  }
  return {&h_new, &c_new};
}

LstmCell::TrainState LstmCell::forward_train(BackwardWorkspace& ws,
                                             const Tensor& x, const Tensor& h,
                                             const Tensor& c) const {
  assert(x.cols() == in_);
  assert(h.cols() == hidden_ && c.cols() == hidden_);
  const std::size_t batch = x.rows();
  const std::size_t gate_cols = 4 * hidden_;
  Tensor& m1 = ws.acquire(batch, gate_cols);
  Tensor& m2 = ws.acquire(batch, gate_cols);
  // Always reference-tier GEMMs (training is bit-exact); batched vs plain
  // are bit-identical (nn/tensor.hpp).
  if (ws.fwd().batched_gemm()) {
    matmul_into_batched(m1, x, w_x.value);
    matmul_into_batched(m2, h, w_h.value);
  } else {
    matmul_into(m1, x, w_x.value);
    matmul_into(m2, h, w_h.value);
  }
  // Gate pre-activation: the tape's add(add(x@w_x, h@w_h), bias) chain as
  // two separately rounded adds, then the nonlinearities applied in place —
  // m1 ends up holding the retained POST-activation gates.
  Tensor& gates = m1;
  const double* pb = bias.value.data();
  Tensor& tanh_c = ws.acquire(batch, hidden_);
  Tensor& h_new = ws.acquire(batch, hidden_);
  assert(&c != &tanh_c && &h != &h_new && &c != &h_new && &h != &tanh_c);
  for (std::size_t r = 0; r < batch; ++r) {
    double* grow = gates.data() + r * gate_cols;
    const double* m2row = m2.data() + r * gate_cols;
    for (std::size_t j = 0; j < gate_cols; ++j) {
      const double s = grow[j] + m2row[j];
      grow[j] = s + pb[j];
    }
    const double* crow = c.data() + r * hidden_;
    double* tcrow = tanh_c.data() + r * hidden_;
    double* hrow = h_new.data() + r * hidden_;
    for (std::size_t j = 0; j < hidden_; ++j) {
      const double i_gate = 1.0 / (1.0 + std::exp(-grow[j]));
      const double f_gate = 1.0 / (1.0 + std::exp(-grow[hidden_ + j]));
      const double g_gate = std::tanh(grow[2 * hidden_ + j]);
      const double o_gate = 1.0 / (1.0 + std::exp(-grow[3 * hidden_ + j]));
      grow[j] = i_gate;
      grow[hidden_ + j] = f_gate;
      grow[2 * hidden_ + j] = g_gate;
      grow[3 * hidden_ + j] = o_gate;
      const double fc = f_gate * crow[j];
      const double ig = i_gate * g_gate;
      const double cn = fc + ig;
      tcrow[j] = std::tanh(cn);
      hrow[j] = o_gate * tcrow[j];
    }
  }
  return {&h_new, &gates, &tanh_c};
}

void LstmCell::backward_train(BackwardWorkspace& ws, const Tensor& x,
                              const Tensor& h, const Tensor& c,
                              const TrainState& st, const Tensor& dh,
                              Tensor& dwx_sink, Tensor& dwh_sink,
                              Tensor& dbias_sink, Tensor* dx) const {
  const std::size_t batch = dh.rows();
  assert(dh.cols() == hidden_);
  Tensor& dgates = ws.acquire(batch, 4 * hidden_);  // every element assigned
  lstm_backward_gates(dgates, dh, *st.gates, *st.tanh_c, c, hidden_);
  // Tape descent through gates = add(add(x@w_x, h@w_h), bias): bias row
  // sums, then the h-side matmul (created later, so its backward runs
  // first), then the x-side. The h/c input gradients the tape computes into
  // discarded constants are skipped.
  backward_bias_acc(dbias_sink, dgates);
  backward_matmul_tn_acc(dwh_sink, h, dgates);
  if (dx != nullptr) backward_matmul_nt_acc(*dx, dgates, w_x.value);
  backward_matmul_tn_acc(dwx_sink, x, dgates);
}

LstmCell::State LstmCell::zero_state(Tape& tape, std::size_t batch) const {
  return {tape.constant(Tensor::zeros(batch, hidden_)),
          tape.constant(Tensor::zeros(batch, hidden_))};
}

}  // namespace tsc::nn
