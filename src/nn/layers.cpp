#include "src/nn/layers.hpp"

#include <cassert>

namespace tsc::nn {

Linear::Linear(std::size_t in, std::size_t out, Rng& rng, double gain, bool orthogonal)
    : weight(Tensor::zeros(in, out), "linear.weight"),
      bias(Tensor::zeros(out), "linear.bias"),
      in_(in),
      out_(out) {
  if (orthogonal) {
    orthogonal_init(weight.value, rng, gain);
  } else {
    xavier_init(weight.value, rng);
  }
  register_parameter(&weight);
  register_parameter(&bias);
}

Var Linear::forward(Tape& tape, Var x) {
  assert(tape.value(x).cols() == in_);
  Var w = tape.param(weight);
  Var b = tape.param(bias);
  return tape.add(tape.matmul(x, w), b);
}

Mlp::Mlp(const std::vector<std::size_t>& dims, Rng& rng, Activation hidden_act,
         double out_gain)
    : act_(hidden_act) {
  assert(dims.size() >= 2);
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    const bool is_output = (i + 2 == dims.size());
    const double gain = is_output ? out_gain : std::numbers::sqrt2;
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng, gain));
    register_module(layers_.back().get());
  }
}

Var Mlp::forward(Tape& tape, Var x) {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    x = layers_[i]->forward(tape, x);
    const bool is_output = (i + 1 == layers_.size());
    if (!is_output) {
      switch (act_) {
        case Activation::kRelu: x = tape.relu(x); break;
        case Activation::kTanh: x = tape.tanh(x); break;
        case Activation::kNone: break;
      }
    }
  }
  return x;
}

LayerNorm::LayerNorm(std::size_t dim, double eps)
    : gain(Tensor::full(1, dim, 1.0), "layernorm.gain"),
      bias(Tensor::zeros(dim), "layernorm.bias"),
      dim_(dim),
      eps_(eps) {
  register_parameter(&gain);
  register_parameter(&bias);
}

Var LayerNorm::forward(Tape& tape, Var x) {
  const std::size_t batch = tape.value(x).rows();
  assert(tape.value(x).cols() == dim_);
  const double inv_d = 1.0 / static_cast<double>(dim_);
  // Row statistics via matmul with ones (keeps everything on the tape).
  Var ones_col = tape.constant(Tensor::full(dim_, 1, 1.0));   // [d,1]
  Var ones_row = tape.constant(Tensor::full(1, dim_, 1.0));   // [1,d]
  Var mean = tape.scale(tape.matmul(x, ones_col), inv_d);     // [B,1]
  Var centered = tape.sub(x, tape.matmul(mean, ones_row));    // [B,d]
  Var var = tape.scale(tape.matmul(tape.square(centered), ones_col), inv_d);
  // 1/sqrt(var + eps) == exp(-0.5 * log(var + eps)).
  Var inv_std = tape.exp(tape.scale(tape.log(tape.add_scalar(var, eps_)), -0.5));
  Var normalized = tape.mul(centered, tape.matmul(inv_std, ones_row));
  Var ones_batch = tape.constant(Tensor::full(batch, 1, 1.0));  // [B,1]
  Var gain_bcast = tape.matmul(ones_batch, tape.param(gain));   // [B,d]
  return tape.add(tape.mul(normalized, gain_bcast), tape.param(bias));
}

Dropout::Dropout(double p, Rng& rng) : p_(p), rng_(&rng) {
  assert(p >= 0.0 && p < 1.0);
}

Var Dropout::forward(Tape& tape, Var x) {
  if (!training_ || p_ == 0.0) return x;
  const Tensor& v = tape.value(x);
  Tensor mask = Tensor::zeros_like(v);
  const double keep_scale = 1.0 / (1.0 - p_);
  for (std::size_t i = 0; i < mask.size(); ++i)
    mask[i] = rng_->bernoulli(p_) ? 0.0 : keep_scale;
  return tape.mul(x, tape.constant(std::move(mask)));
}

LstmCell::LstmCell(std::size_t in, std::size_t hidden, Rng& rng)
    : w_x(Tensor::zeros(in, 4 * hidden), "lstm.w_x"),
      w_h(Tensor::zeros(hidden, 4 * hidden), "lstm.w_h"),
      bias(Tensor::zeros(4 * hidden), "lstm.bias"),
      in_(in),
      hidden_(hidden) {
  orthogonal_init(w_x.value, rng, 1.0);
  orthogonal_init(w_h.value, rng, 1.0);
  // Forget-gate bias of 1 keeps early memories alive (standard practice).
  for (std::size_t i = hidden; i < 2 * hidden; ++i) bias.value[i] = 1.0;
  register_parameter(&w_x);
  register_parameter(&w_h);
  register_parameter(&bias);
}

LstmCell::State LstmCell::forward(Tape& tape, Var x, Var h, Var c) {
  assert(tape.value(x).cols() == in_);
  assert(tape.value(h).cols() == hidden_);
  Var gates = tape.add(
      tape.add(tape.matmul(x, tape.param(w_x)), tape.matmul(h, tape.param(w_h))),
      tape.param(bias));
  Var i_gate = tape.sigmoid(tape.slice_cols(gates, 0, hidden_));
  Var f_gate = tape.sigmoid(tape.slice_cols(gates, hidden_, hidden_));
  Var g_gate = tape.tanh(tape.slice_cols(gates, 2 * hidden_, hidden_));
  Var o_gate = tape.sigmoid(tape.slice_cols(gates, 3 * hidden_, hidden_));
  Var c_new = tape.add(tape.mul(f_gate, c), tape.mul(i_gate, g_gate));
  Var h_new = tape.mul(o_gate, tape.tanh(c_new));
  return {h_new, c_new};
}

LstmCell::State LstmCell::zero_state(Tape& tape, std::size_t batch) const {
  return {tape.constant(Tensor::zeros(batch, hidden_)),
          tape.constant(Tensor::zeros(batch, hidden_))};
}

}  // namespace tsc::nn
