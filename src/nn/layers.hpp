// Standard layers: Linear, multi-layer perceptron, LSTM cell.
#pragma once

#include <cstddef>
#include <memory>
#include <numbers>
#include <vector>

#include "src/nn/module.hpp"
#include "src/nn/tape.hpp"

namespace tsc::nn {

class InferenceWorkspace;

/// y = x @ W + b, with W [in, out], b [out].
class Linear : public Module {
 public:
  Linear(std::size_t in, std::size_t out, Rng& rng, double gain = std::numbers::sqrt2,
         bool orthogonal = true);

  /// x: [batch, in] -> [batch, out].
  Var forward(Tape& tape, Var x);

  /// Tape-free forward into a workspace buffer; bit-identical to forward()
  /// (same matmul kernel, same broadcast bias-add loop). The returned
  /// reference is valid until the workspace's next begin_pass().
  const Tensor& forward_inference(InferenceWorkspace& ws, const Tensor& x) const;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

  Parameter weight;
  Parameter bias;

 private:
  std::size_t in_, out_;
};

enum class Activation { kNone, kRelu, kTanh };

/// Stack of Linear layers with a fixed hidden activation; the output layer
/// has no activation (callers apply softmax / identity as needed).
class Mlp : public Module {
 public:
  /// dims = {in, h1, ..., out}; requires dims.size() >= 2.
  Mlp(const std::vector<std::size_t>& dims, Rng& rng,
      Activation hidden_act = Activation::kTanh, double out_gain = 0.01);

  Var forward(Tape& tape, Var x);

  /// Tape-free forward; bit-identical to forward().
  const Tensor& forward_inference(InferenceWorkspace& ws, const Tensor& x) const;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation act_;
};

/// Layer normalization over the last dimension: per row,
/// y = gain * (x - mean) / sqrt(var + eps) + bias.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(std::size_t dim, double eps = 1e-5);

  /// x: [batch, dim] -> [batch, dim].
  tsc::nn::Var forward(Tape& tape, Var x);

  Parameter gain;  ///< [dim], initialized to 1
  Parameter bias;  ///< [dim], initialized to 0

 private:
  std::size_t dim_;
  double eps_;
};

/// Inverted dropout: active only between train()/eval() switches; scales
/// kept activations by 1/(1-p) so evaluation needs no correction.
class Dropout {
 public:
  Dropout(double p, Rng& rng);

  Var forward(Tape& tape, Var x);

  void train() { training_ = true; }
  void eval() { training_ = false; }
  bool training() const { return training_; }
  double rate() const { return p_; }

 private:
  double p_;
  Rng* rng_;
  bool training_ = true;
};

/// Single LSTM cell. Gate order in the packed weight matrices: i, f, g, o.
class LstmCell : public Module {
 public:
  LstmCell(std::size_t in, std::size_t hidden, Rng& rng);

  struct State {
    Var h;
    Var c;
  };

  /// x: [batch, in], h/c: [batch, hidden] -> new (h, c).
  State forward(Tape& tape, Var x, Var h, Var c);

  /// Tape-free forward results; the pointed-to tensors live in the
  /// workspace and stay valid until its next begin_pass().
  struct InferenceState {
    const Tensor* h = nullptr;
    const Tensor* c = nullptr;
  };

  /// Tape-free forward; bit-identical to forward() (the gate pre-activation
  /// replays the tape's add(add(x@w_x, h@w_h), bias) rounding chain, and
  /// c/h updates use the same mul-mul-add order). `x`, `h`, `c` must not
  /// alias buffers acquired by this call (pass prior-pass state copies).
  InferenceState forward_inference(InferenceWorkspace& ws, const Tensor& x,
                                   const Tensor& h, const Tensor& c) const;

  /// Convenience: zero initial state as tape constants.
  State zero_state(Tape& tape, std::size_t batch) const;

  std::size_t hidden_size() const { return hidden_; }

  Parameter w_x;  // [in, 4*hidden]
  Parameter w_h;  // [hidden, 4*hidden]
  Parameter bias; // [4*hidden] (forget-gate slice initialized to 1)

 private:
  std::size_t in_, hidden_;
};

}  // namespace tsc::nn
