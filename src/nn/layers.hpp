// Standard layers: Linear, multi-layer perceptron, LSTM cell.
#pragma once

#include <cstddef>
#include <memory>
#include <numbers>
#include <vector>

#include "src/nn/module.hpp"
#include "src/nn/tape.hpp"

namespace tsc::nn {

class InferenceWorkspace;
class BackwardWorkspace;

/// y = x @ W + b, with W [in, out], b [out].
class Linear : public Module {
 public:
  Linear(std::size_t in, std::size_t out, Rng& rng, double gain = std::numbers::sqrt2,
         bool orthogonal = true);

  /// x: [batch, in] -> [batch, out].
  Var forward(Tape& tape, Var x);

  /// Tape-free forward into a workspace buffer; bit-identical to forward()
  /// (same matmul kernel, same broadcast bias-add loop). The returned
  /// reference is valid until the workspace's next begin_pass().
  const Tensor& forward_inference(InferenceWorkspace& ws, const Tensor& x) const;

  /// Analytic backward of forward(): given the forward input `x` and the
  /// output gradient `dy`, accumulates db += column sums of dy and
  /// dW += x^T @ dy into the sinks (dw_sink must hold exactly +0.0 — see
  /// backward.hpp), and, when dx != nullptr, dx += dy @ W^T. Bit-identical
  /// to the tape's add/matmul backward closures.
  void backward_train(const Tensor& x, const Tensor& dy, Tensor& dw_sink,
                      Tensor& db_sink, Tensor* dx) const;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

  Parameter weight;
  Parameter bias;

 private:
  std::size_t in_, out_;
};

enum class Activation { kNone, kRelu, kTanh };

/// Stack of Linear layers with a fixed hidden activation; the output layer
/// has no activation (callers apply softmax / identity as needed).
class Mlp : public Module {
 public:
  /// dims = {in, h1, ..., out}; requires dims.size() >= 2.
  Mlp(const std::vector<std::size_t>& dims, Rng& rng,
      Activation hidden_act = Activation::kTanh, double out_gain = 0.01);

  Var forward(Tape& tape, Var x);

  /// Tape-free forward; bit-identical to forward().
  const Tensor& forward_inference(InferenceWorkspace& ws, const Tensor& x) const;

  /// Retained activations of a forward_train() pass: inputs[i] points at
  /// layer i's input (inputs[0] is the caller's x; the rest are workspace
  /// slots holding the previous layer's post-activation output).
  struct TrainTrace {
    std::vector<const Tensor*> inputs;
    const Tensor* out = nullptr;
  };

  /// Forward identical to forward_inference() (hence to forward()), but
  /// retaining every layer input in `trace` for backward_train().
  const Tensor& forward_train(BackwardWorkspace& ws, const Tensor& x,
                              TrainTrace& trace) const;

  /// Analytic backward: `dy` is the output gradient; parameter gradients
  /// accumulate into `sinks` ([w0, b0, w1, b1, ...] in parameters() order,
  /// weight sinks exactly +0.0); when dx != nullptr, dx += gradient w.r.t.
  /// the forward input. Bit-identical to the tape.
  void backward_train(BackwardWorkspace& ws, const TrainTrace& trace,
                      const Tensor& dy, Tensor* const* sinks, Tensor* dx) const;

  std::size_t num_layers() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation act_;
};

/// Layer normalization over the last dimension: per row,
/// y = gain * (x - mean) / sqrt(var + eps) + bias.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(std::size_t dim, double eps = 1e-5);

  /// x: [batch, dim] -> [batch, dim].
  tsc::nn::Var forward(Tape& tape, Var x);

  Parameter gain;  ///< [dim], initialized to 1
  Parameter bias;  ///< [dim], initialized to 0

 private:
  std::size_t dim_;
  double eps_;
};

/// Inverted dropout: active only between train()/eval() switches; scales
/// kept activations by 1/(1-p) so evaluation needs no correction.
class Dropout {
 public:
  Dropout(double p, Rng& rng);

  Var forward(Tape& tape, Var x);

  void train() { training_ = true; }
  void eval() { training_ = false; }
  bool training() const { return training_; }
  double rate() const { return p_; }

 private:
  double p_;
  Rng* rng_;
  bool training_ = true;
};

/// Single LSTM cell. Gate order in the packed weight matrices: i, f, g, o.
class LstmCell : public Module {
 public:
  LstmCell(std::size_t in, std::size_t hidden, Rng& rng);

  struct State {
    Var h;
    Var c;
  };

  /// x: [batch, in], h/c: [batch, hidden] -> new (h, c).
  State forward(Tape& tape, Var x, Var h, Var c);

  /// Tape-free forward results; the pointed-to tensors live in the
  /// workspace and stay valid until its next begin_pass().
  struct InferenceState {
    const Tensor* h = nullptr;
    const Tensor* c = nullptr;
  };

  /// Tape-free forward; bit-identical to forward() (the gate pre-activation
  /// replays the tape's add(add(x@w_x, h@w_h), bias) rounding chain, and
  /// c/h updates use the same mul-mul-add order). `x`, `h`, `c` must not
  /// alias buffers acquired by this call (pass prior-pass state copies).
  InferenceState forward_inference(InferenceWorkspace& ws, const Tensor& x,
                                   const Tensor& h, const Tensor& c) const;

  /// Activations a training step must retain for backward_train(). The
  /// tensors live in the workspace (valid until its next begin_pass()).
  /// c_new is not materialized: the training graphs only consume h_new, so
  /// tanh(c_new) is all the backward needs.
  struct TrainState {
    const Tensor* h = nullptr;       ///< [B, hidden] h_new
    const Tensor* gates = nullptr;   ///< [B, 4*hidden] post-activation i|f|g|o
    const Tensor* tanh_c = nullptr;  ///< [B, hidden] tanh(c_new)
  };

  /// Forward for the tape-free training path; h_new is bit-identical to
  /// forward() / forward_inference() (same gate pre-activation rounding
  /// chain, same c/h update order; always reference-tier kernels).
  TrainState forward_train(BackwardWorkspace& ws, const Tensor& x,
                           const Tensor& h, const Tensor& c) const;

  /// Analytic backward for graphs where downstream consumes only h_new
  /// (the external c_new gradient is exactly zero). `dh` is the incoming
  /// h_new gradient; parameter gradients accumulate into the sinks (matmul
  /// sinks exactly +0.0); when dx != nullptr, dx += gradient w.r.t. x.
  /// Gradients w.r.t. h/c (constant inputs in the training graphs) are not
  /// produced. Bit-identical to the tape's backward.
  void backward_train(BackwardWorkspace& ws, const Tensor& x, const Tensor& h,
                      const Tensor& c, const TrainState& st, const Tensor& dh,
                      Tensor& dwx_sink, Tensor& dwh_sink, Tensor& dbias_sink,
                      Tensor* dx) const;

  /// Convenience: zero initial state as tape constants.
  State zero_state(Tape& tape, std::size_t batch) const;

  std::size_t hidden_size() const { return hidden_; }

  Parameter w_x;  // [in, 4*hidden]
  Parameter w_h;  // [hidden, 4*hidden]
  Parameter bias; // [4*hidden] (forget-gate slice initialized to 1)

 private:
  std::size_t in_, hidden_;
};

}  // namespace tsc::nn
