// Kernel tiers: runtime-selectable math-kernel implementations for the
// tape-free inference path.
//
//   kReference — the bit-exact kernels the repo has always run: libm
//     exp/tanh, separate multiply+add GEMM accumulation (no FMA, no
//     reassociation). Default everywhere; the training tape ONLY ever uses
//     this tier, so learning dynamics and checkpoints are untouched by the
//     tier knob.
//   kFast — SIMD-vectorized exp/tanh/sigmoid/softmax (polynomial range
//     reduction, AVX2/FMA when the CPU has them, scalar fallback otherwise)
//     and an FMA GEMM. NOT bit-identical to reference: results are
//     tolerance-bounded by the error budgets below, pinned by
//     tests/test_kernel_tiers.cpp and the bench_micro accuracy sweep, and
//     documented in the README determinism matrix.
//
// Dispatch is runtime: the SIMD translation unit (kernels_simd.cpp) is
// compiled with explicit ISA flags behind the TSC_FAST_TIER CMake knob, and
// is only entered when __builtin_cpu_supports agrees at runtime — on other
// CPUs (or with TSC_FAST_TIER=OFF, or under the force-scalar override) the
// fast tier runs the portable scalar fallback, which is written
// fma-for-fma identical to the SIMD lanes and therefore produces
// bit-identical fast-tier results on every box.
#pragma once

#include <cstddef>
#include <string_view>

namespace tsc::nn {

class Tensor;

enum class KernelTier {
  kReference,  // bit-exact legacy kernels (default)
  kFast,       // tolerance-bounded SIMD/FMA kernels
};

// Human-readable name ("reference" / "fast").
const char* kernel_tier_name(KernelTier tier);

// Parses "reference"/"ref"/"0" and "fast"/"1" (case-sensitive). Returns
// false (leaving *out untouched) on anything else.
bool parse_kernel_tier(std::string_view text, KernelTier* out);

// Reads PAIRUP_KERNEL_TIER; returns `fallback` when unset, and warns +
// returns `fallback` when set to an unparsable value.
KernelTier kernel_tier_from_env(KernelTier fallback);

// True when the binary contains the SIMD fast-tier kernels at all
// (TSC_FAST_TIER=ON and the compiler accepted the ISA flags).
bool fast_tier_simd_compiled();
// True when fast-tier calls will actually take the SIMD path right now:
// compiled in, CPU supports the required features, and the force-scalar
// override is off.
bool fast_tier_simd_active();

// Force the fast tier onto the portable scalar fallback (also settable via
// the environment knob PAIRUP_KERNEL_FORCE_SCALAR=1, read once at startup).
// Used by tests/bench to pin scalar-vs-SIMD bit-identity; safe to flip from
// one thread while no kernel is mid-flight.
void set_fast_tier_force_scalar(bool force);
bool fast_tier_force_scalar();

// ---- fast-tier error budgets (pinned by test_kernel_tiers + bench_micro) --
// Transcendentals: max ULP distance vs the libm result over the live input
// domains (gate pre-activations, softmax-shifted logits, message
// pre-squash; measured worst cases are exp 1, tanh 2, sigmoid 4 — budgets
// leave ~2x headroom for other libm implementations). GEMM: per-element
// |fast - reference| normalized by k * max|a| * max|b| — a condition-free
// scale, because element-relative error is unbounded under cancellation
// while the absolute error of both kernels is bounded by the accumulated
// magnitude (measured worst ~9e-17, i.e. below one eps of the scale).
inline constexpr double kFastExpMaxUlp = 2.0;
inline constexpr double kFastSigmoidMaxUlp = 6.0;
inline constexpr double kFastTanhMaxUlp = 4.0;
inline constexpr double kFastGemmMaxNormErr = 1e-15;

// ---- element-wise kernels, tier-dispatched ----
// Reference tier: std::exp / std::tanh / 1/(1+std::exp(-x)) loops, bitwise
// identical to the hand-written loops they replaced. Fast tier: vectorized.
void exp_inplace_tier(double* x, std::size_t n, KernelTier tier);
void tanh_inplace_tier(double* x, std::size_t n, KernelTier tier);
void sigmoid_inplace_tier(double* x, std::size_t n, KernelTier tier);

// Shared message-squash entry point: the logistic 1/(1+e^{-x}).
// Deduplicates the hand-rolled squash in core/fleet_engine.cpp and
// core/rollout_engine.cpp; reference tier reproduces their exact expression
// bit for bit.
double logistic(double x, KernelTier tier);

// FMA GEMM: out [m,n] = a [m,k] @ b [k,n], ascending-k fused multiply-add
// accumulation per output element (tile-shape independent, so scalar and
// SIMD agree bitwise). Fast-tier sibling of tensor.cpp's
// matmul_into_batched; requires out/a/b preshaped, out disjoint from a/b.
void matmul_into_fast(Tensor& out, const Tensor& a, const Tensor& b);

}  // namespace tsc::nn
