// Tape-free fused backward path for training: preallocated workspace plus
// hand-written analytic backward kernels that replay the tape's exact
// floating-point accumulation orders.
//
// This is the training-side counterpart of nn/inference.hpp. The autodiff
// tape (nn/tape.hpp) pays, per minibatch, for graph construction (one node
// per op), per-node value/grad tensor allocation, a copy of every weight
// matrix (Tape::param copies the Parameter value into its node), and a
// std::function dispatch per backward closure. None of that is needed for
// the fixed actor/critic/PPO graph the update runs: the BackwardWorkspace
// holds every activation and gradient buffer behind stable slots handed out
// in acquisition order (begin_pass() rewinds the cursor), and the kernels
// below compute the same gradients the tape would, directly into the
// caller's gradient sinks.
//
// Bit-identity contract. Every kernel replays the corresponding Tape
// backward closure's loop structure exactly:
//   * backward_matmul_nt_acc runs matmul_nt's sequential ascending-k dot
//     per output element and then adds the result — the same value the
//     tape's `grad += matmul_nt(g, B)` contributes, in the same order.
//   * backward_matmul_tn_acc runs matmul_tn's p-outer accumulation
//     (ascending batch rows, zero-skip on the activation) directly into the
//     sink. The sink must hold exactly +0.0 where this product is its first
//     contribution (all call sites: parameters are consumed once per
//     forward), which makes direct accumulation bitwise equal to the tape's
//     temp-then-+= — a +0.0-seeded running sum can never become -0.0, so
//     the tape's extra `0.0 + temp` add is the identity.
//   * The element-wise kernels use the tape closures' exact expressions and
//     association (e.g. sigmoid: `(g*y)*(1-y)`; square: `(2*g)*va`).
// Intermediate node gradients in the tape are materialized as
// `0.0 + term` (the += onto a zero-initialized grad); where a kernel folds
// a chain of such nodes, it keeps those flushes explicit (`0.0 + x`
// normalizes -0.0 to +0.0, which matters when the value is later
// multiplied). tests/test_backward_path.cpp pins all of this bitwise
// against the tape and against central differences.
//
// This translation unit builds with the same flags as nn/tensor.cpp
// (-O3 -march=native -ffp-contract=off): vectorization without FMA
// contraction or reassociation, so the strict IEEE per-op rounding the
// contract depends on is preserved.
#pragma once

#include <cstddef>

#include "src/nn/inference.hpp"
#include "src/nn/tensor.hpp"

namespace tsc::nn {

/// Preallocated activation + gradient buffers for the tape-free training
/// path. Thin wrapper over an InferenceWorkspace (the forward half of a
/// training pass reuses the inference kernels, which are bit-identical to
/// the tape), with the same zero-steady-state-allocation contract:
/// alloc_events() stops increasing once the acquisition sequence has
/// stabilized. One workspace per thread — the sharded update engine gives
/// every worker its own.
class BackwardWorkspace {
 public:
  BackwardWorkspace() {
    // Training forwards run the batched GEMM kernel (bit-identical to the
    // reference kernel; see nn/tensor.hpp) — the update's matrices are
    // minibatch-tall, which is exactly what it is blocked for. The kernel
    // tier stays kReference: training is always bit-exact.
    fwd_.set_batched_gemm(true);
  }
  BackwardWorkspace(const BackwardWorkspace&) = delete;
  BackwardWorkspace& operator=(const BackwardWorkspace&) = delete;

  /// The forward-side workspace (layer forward_inference calls route
  /// through it; its slots share this workspace's lifetime and counter).
  InferenceWorkspace& fwd() { return fwd_; }

  /// Rewinds the slot cursor; the next acquire() reuses the first slot.
  void begin_pass() { fwd_.begin_pass(); }

  /// Next buffer, reshaped to [rows, cols]; contents unspecified.
  Tensor& acquire(std::size_t rows, std::size_t cols) {
    return fwd_.acquire(rows, cols);
  }

  /// acquire() + fill(0.0) — for gradient accumulators.
  Tensor& acquire_zeroed(std::size_t rows, std::size_t cols) {
    Tensor& t = fwd_.acquire(rows, cols);
    t.fill(0.0);
    return t;
  }

  /// Allocation events (slot creations + backing-storage growth). Zero
  /// across steady-state epochs/minibatches — asserted by
  /// tests/test_backward_path.cpp and bench_ppo_update --smoke.
  std::size_t alloc_events() const { return fwd_.alloc_events(); }
  std::size_t num_buffers() const { return fwd_.num_buffers(); }

 private:
  InferenceWorkspace fwd_;
};

// ---- backward kernels (loops mirror the Tape backward closures) ----

/// dx [m,k] += dy [m,n] @ w [k,n]^T — the input-gradient half of
/// Tape::matmul's backward (`grad += matmul_nt(g, B)`). Safe on sinks with
/// prior contributions: matmul_nt forms each element with one sequential
/// dot and the tape adds it in a single +=, which this kernel replays.
void backward_matmul_nt_acc(Tensor& dx, const Tensor& dy, const Tensor& w);

/// dw [j,n] += x [m,j]^T @ dy [m,n] — the weight-gradient half of
/// Tape::matmul's backward (`grad += matmul_tn(A, g)`), replaying
/// matmul_tn's p-outer ascending-row accumulation with its zero-skip on
/// the activation. `dw` must hold exactly +0.0 wherever this product is
/// its first contribution (see file comment).
void backward_matmul_tn_acc(Tensor& dw, const Tensor& x, const Tensor& dy);

/// db [n] += column sums of dy [m,n], rows ascending — Tape::add's rank-1
/// broadcast backward (the bias gradient).
void backward_bias_acc(Tensor& db, const Tensor& dy);

/// dx[i] += g[i] where y[i] > 0 (Tape::relu backward; for relu outputs,
/// y > 0 exactly where the pre-activation input is > 0).
void relu_backward_acc(Tensor& dx, const Tensor& g, const Tensor& y);

/// dx[i] += g[i] * (1 - y[i]^2), y = tanh output (Tape::tanh backward).
void tanh_backward_acc(Tensor& dx, const Tensor& g, const Tensor& y);

/// dx[i] += (g[i] * y[i]) * (1 - y[i]), y = sigmoid output (Tape::sigmoid
/// backward). Also the analytic backward of the message-squash logistic
/// (nn::logistic in nn/kernels.hpp is the same function).
void sigmoid_backward_acc(Tensor& dx, const Tensor& g, const Tensor& y);

/// Row-wise softmax backward: per row, dot = sum_c g*y (ascending), then
/// dx[r,c] += y*(g - dot) (Tape::softmax_rows backward).
void softmax_backward_acc(Tensor& dx, const Tensor& g, const Tensor& y);

/// Row-wise log-softmax backward: per row, gsum = sum_c g (ascending),
/// then dx[r,c] += g - exp(y)*gsum, y = log-probs (Tape::log_softmax_rows
/// backward).
void log_softmax_backward_acc(Tensor& dx, const Tensor& g, const Tensor& y);

/// Full LSTM-cell gate backward for the training graphs, where downstream
/// consumes only h_new (c_new's external gradient is exactly zero; the
/// actor/critic losses never touch it). Inputs are the forward's retained
/// post-activation gates [B,4H] (i|f|g|o), tanh(c_new) [B,H], and the cell
/// input state c_in [B,H]; dh is the incoming h_new gradient. Writes the
/// PRE-activation gate gradient into dgates [B,4H] (every element
/// assigned, flushed through the tape's `0.0 +` node-grad seeds). The
/// caller runs the matmul/bias backwards on dgates.
void lstm_backward_gates(Tensor& dgates, const Tensor& dh, const Tensor& gates,
                         const Tensor& tanh_c, const Tensor& c_in,
                         std::size_t hidden);

}  // namespace tsc::nn
