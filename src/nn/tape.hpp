// Reverse-mode automatic differentiation on a tape of Tensor ops.
//
// Usage: create leaves / parameter nodes, compose ops, call backward() on a
// scalar node. Gradients for parameter nodes are accumulated into the owning
// Parameter's `grad` tensor; intermediate gradients are queryable via grad().
// Reset the tape between forward passes (parameters live outside the tape).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/nn/tensor.hpp"

namespace tsc::nn {

/// A trainable tensor with its accumulated gradient. Owned by a Module;
/// registered on a Tape per forward pass via Tape::param().
struct Parameter {
  Tensor value;
  Tensor grad;
  std::string name;

  Parameter() = default;
  Parameter(Tensor v, std::string n) : value(std::move(v)), name(std::move(n)) {
    grad = Tensor::zeros_like(value);
  }
  void zero_grad() { grad.fill(0.0); }
};

/// Handle to a tape node. Cheap to copy; only valid for the tape that
/// created it, until that tape is reset.
struct Var {
  std::int32_t idx = -1;
  bool valid() const { return idx >= 0; }
};

class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Node with no gradient tracking (inputs, masks, targets).
  Var constant(Tensor value);
  /// Constant node with an unspecified-content [rows, cols] value, meant to
  /// be filled in place via mutable_value(). The backing storage is recycled
  /// across reset() calls, so batch packers that write sample rows straight
  /// into the node (core/update_engine.cpp) stop allocating + copying a
  /// row-vector intermediate on every minibatch.
  Var alloc_constant(std::size_t rows, std::size_t cols);
  /// Mutable access to an alloc_constant() node's value. Fill it before any
  /// op consumes the node; other node kinds must not be mutated.
  Tensor& mutable_value(Var v);
  /// Node whose gradient is tracked and queryable via grad().
  Var leaf(Tensor value);
  /// Node backed by a Parameter; backward() accumulates into p.grad.
  Var param(Parameter& p);

  const Tensor& value(Var v) const;
  /// Gradient of node `v`. Only populated by backward(); before the first
  /// backward() on this pass the buffer is empty (gradient storage is
  /// allocated lazily so forward-only passes skip it entirely).
  const Tensor& grad(Var v) const;

  // ---- arithmetic ----
  /// Element-wise add. `b` may be rank-1 with b.size()==a.cols(), in which
  /// case it is broadcast across the rows of `a` (bias add).
  Var add(Var a, Var b);
  Var sub(Var a, Var b);
  /// Element-wise multiply (shapes must match).
  Var mul(Var a, Var b);
  Var scale(Var a, double c);
  /// Element-wise division by scalar `d`; the backward pass divides the
  /// incoming gradient by `d`. Not the same rounding as scale(a, 1/d):
  /// division matches mean()'s backward exactly, which the sharded PPO
  /// update relies on for bit-identical gradients (core/update_engine.cpp).
  Var div_scalar(Var a, double d);
  Var add_scalar(Var a, double c);
  Var neg(Var a) { return scale(a, -1.0); }
  /// Matrix product: a [m,k] @ b [k,n].
  Var matmul(Var a, Var b);

  // ---- nonlinearities ----
  Var relu(Var a);
  Var leaky_relu(Var a, double slope);
  Var tanh(Var a);
  Var sigmoid(Var a);
  Var exp(Var a);
  /// Natural log; inputs are clamped to >= eps for safety.
  Var log(Var a, double eps = 1e-12);
  Var square(Var a);
  /// Element-wise Huber penalty: 0.5*x^2 for |x| <= delta, otherwise
  /// delta*(|x| - delta/2). Standard robust loss for TD errors.
  Var huber(Var a, double delta);

  // ---- reductions / softmax ----
  /// Row-wise softmax of a rank-2 tensor.
  Var softmax_rows(Var a);
  /// Row-wise log-softmax (numerically stable).
  Var log_softmax_rows(Var a);
  /// Sum of all elements -> scalar node (shape [1]).
  Var sum(Var a);
  /// Mean of all elements -> scalar node (shape [1]).
  Var mean(Var a);

  // ---- shaping ----
  /// Concatenate along columns; all inputs must have equal row counts.
  Var concat_cols(const std::vector<Var>& parts);
  /// Concatenate along rows; all inputs must have equal column counts.
  Var concat_rows(const std::vector<Var>& parts);
  /// Columns [start, start+len) of a rank-2 tensor.
  Var slice_cols(Var a, std::size_t start, std::size_t len);
  /// Row r of a rank-2 tensor as a [1, cols] node.
  Var select_row(Var a, std::size_t r);
  /// out[i, 0] = a[i, indices[i]]; gradient scatters back.
  Var gather_cols(Var a, const std::vector<std::size_t>& indices);

  // ---- clipping / min-max ----
  /// Clamp to [lo, hi]; gradient passes only where lo < x < hi.
  Var clamp(Var a, double lo, double hi);
  /// Element-wise minimum; gradient flows to the smaller operand
  /// (split evenly on ties).
  Var min_elem(Var a, Var b);
  Var max_elem(Var a, Var b);

  /// Runs reverse pass from `loss` (must be a single-element node) and
  /// accumulates parameter gradients. May be called once per forward pass.
  void backward(Var loss);

  /// Drops all nodes and pre-reserves storage for the peak node count seen
  /// so far, so a tape reused across forward passes stops reallocating its
  /// node vector. Parameter tensors are untouched.
  void reset();

  std::size_t num_nodes() const { return nodes_.size(); }

  /// Parameter-gradient redirect list: while installed, backward()
  /// accumulates the gradient of each listed Parameter into the paired
  /// Tensor instead of Parameter::grad (parameters not on the list keep the
  /// default sink). This is how the sharded PPO update gives every worker
  /// thread-local accumulation buffers over the shared, frozen weights: the
  /// parameters themselves are only ever read. The sink is resolved when
  /// param() records the node, so install the list before the forward pass;
  /// both the list and its target tensors must outlive that backward().
  /// Survives reset(); pass nullptr to restore the default behavior.
  using GradRedirects = std::vector<std::pair<Parameter*, Tensor*>>;
  void set_grad_redirects(const GradRedirects* redirects) {
    redirects_ = redirects;
  }

 private:
  struct Node {
    Tensor value;
    Tensor grad;
    std::function<void()> back;  // empty for constants/leaves
    Parameter* parameter = nullptr;
    Tensor* grad_sink = nullptr;  // overrides parameter->grad when set
    bool recyclable = false;      // alloc_constant() storage, reclaimed on reset
  };

  Var push(Tensor value);
  Node& node(Var v);
  const Node& node(Var v) const;

  std::vector<Node> nodes_;
  std::vector<Tensor> recycle_;  ///< storage pool for alloc_constant()
  std::size_t peak_nodes_ = 0;  ///< high-water mark for reset()'s reserve
  const GradRedirects* redirects_ = nullptr;
};

}  // namespace tsc::nn
