// INTERNAL header: the fast tier's scalar kernel bodies and polynomial
// constants, shared verbatim between the portable translation unit
// (kernels.cpp) and the SIMD one (kernels_simd.cpp).
//
// The contract that makes runtime CPU dispatch testable: every function here
// performs, per element, EXACTLY the operation sequence the SIMD lanes
// perform — same constants, same Horner order, fused multiply-adds via
// std::fma (correctly rounded, like vfmadd), round-to-nearest-even via
// std::nearbyint (like _mm256_round_pd TO_NEAREST_INT under the default FP
// environment). IEEE-754 arithmetic is deterministic, so the scalar fallback
// is bit-identical to the vector path lane for lane; tests/test_kernel_tiers
// pins that by forcing the fallback and comparing bitwise.
//
// Inputs are assumed FINITE (network activations and pre-activations are by
// construction); NaN propagation through the clamped range reduction is
// unspecified. Accuracy budgets vs libm are pinned in nn/kernels.hpp.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstddef>

namespace tsc::nn::fast_detail {

// ---- exp: clamped range reduction + degree-13 Taylor Horner ----
//
// x clamped to [kExpLo, kExpHi] (below: exp underflows to +0, above:
// overflows to +inf — the clamp keeps the 2^n reconstruction in range and
// makes the softmax mask value -1e9 land exactly on 0).
// n = nearbyint(x * log2(e)); r = x - n*ln2 via the hi/lo split (two fmas,
// |r| <= ln2/2); e^r by Taylor to r^13/13! (max term error ~r^14/14! ~ 4e-18,
// well under 1 ulp); scale by 2^n as two exponent-bit factors 2^n1 * 2^n2
// with n1 = nearbyint(n/2), so each factor's biased exponent stays in
// [484, 1536] — representable even at the clamp bounds.
inline constexpr double kExpLo = -745.5;
inline constexpr double kExpHi = 709.9;
inline constexpr double kLog2E = 1.44269504088896340736;
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;
// 1/k! for k = 13 down to 0 (Horner order).
inline constexpr double kExpPoly[] = {
    1.6059043836821614599e-10,  // 1/13!
    2.0876756987868098979e-09,  // 1/12!
    2.5052108385441718775e-08,  // 1/11!
    2.7557319223985890653e-07,  // 1/10!
    2.7557319223985892511e-06,  // 1/9!
    2.4801587301587301566e-05,  // 1/8!
    1.9841269841269841253e-04,  // 1/7!
    1.3888888888888889419e-03,  // 1/6!
    8.3333333333333332177e-03,  // 1/5!
    4.1666666666666664354e-02,  // 1/4!
    1.6666666666666665741e-01,  // 1/3!
    5.0000000000000000000e-01,  // 1/2!
    1.0000000000000000000e+00,  // 1/1!
    1.0000000000000000000e+00,  // 1/0!
};

inline double exp_scalar(double x) {
  x = x < kExpLo ? kExpLo : x;
  x = x > kExpHi ? kExpHi : x;
  const double n = std::nearbyint(x * kLog2E);
  double r = std::fma(n, -kLn2Hi, x);
  r = std::fma(n, -kLn2Lo, r);
  double p = kExpPoly[0];
  for (std::size_t i = 1; i < sizeof(kExpPoly) / sizeof(kExpPoly[0]); ++i)
    p = std::fma(r, p, kExpPoly[i]);
  const double n1 = std::nearbyint(n * 0.5);
  const double n2 = n - n1;
  const double s1 = std::bit_cast<double>(
      (static_cast<std::int64_t>(n1) + 1023) << 52);
  const double s2 = std::bit_cast<double>(
      (static_cast<std::int64_t>(n2) + 1023) << 52);
  return (p * s1) * s2;
}

// ---- tanh: Cephes split at |x| = 0.625 ----
//
// |x| < 0.625: x + x*z*P(z)/Q(z), z = x^2 (Cephes tanh.c rational, ~2 ulp;
// exact at 0 and first-order exact for tiny x, so no relative blowup near
// the origin). |x| >= 0.625: 1 - 2/(e^{2|x|} + 1) with the sign reapplied —
// no cancellation (the subtrahend is <= 0.446 there), error dominated by
// exp_scalar's. Saturates to +-1 exactly once e^{2|x|} overflows.
inline constexpr double kTanhSplit = 0.625;
inline constexpr double kTanhP[] = {
    -9.64399179425052238628e-1,
    -9.92877231001918586564e1,
    -1.61468768441708447952e3,
};
inline constexpr double kTanhQ[] = {
    // leading coefficient 1.0 implied (p1evl)
    1.12811678491632931402e2,
    2.23548839060100448583e3,
    4.84406305325125486048e3,
};

inline double tanh_scalar(double x) {
  const double ax = std::fabs(x);
  if (ax < kTanhSplit) {
    const double z = x * x;
    double pn = kTanhP[0];
    pn = std::fma(z, pn, kTanhP[1]);
    pn = std::fma(z, pn, kTanhP[2]);
    double pd = z + kTanhQ[0];
    pd = std::fma(z, pd, kTanhQ[1]);
    pd = std::fma(z, pd, kTanhQ[2]);
    return std::fma(x * z, pn / pd, x);
  }
  const double e = exp_scalar(ax + ax);
  const double t = 1.0 - 2.0 / (e + 1.0);
  return std::copysign(t, x);
}

// ---- sigmoid: 1 / (1 + e^{-x}) on the shared exp core ----
// Monotone, no cancellation (e^{-x} > 0); underflow/overflow of the exp
// saturate the result to exactly 1.0 / 0.0 at the domain edges.
inline double sigmoid_scalar(double x) {
  const double e = exp_scalar(-x);
  return 1.0 / (1.0 + e);
}

// ---- FMA GEMM row kernel ----
//
// out [m,n] = a [m,k] @ b [k,n], row-major, each out[i][j] accumulated as an
// ascending-p chain of fused multiply-adds. Per-element chains are
// independent of the blocking, so ANY tile shape over (i, j) — including the
// SIMD 8x16 / 4x8 tiles — produces bit-identical results to this plain
// loop. Unlike the reference kernel there is deliberately NO zero-skip:
// skipping would change nothing numerically (finite b), but the fast tier
// trades the branch away for straight-line FMA throughput.
inline void gemm_fma_rows(double* __restrict__ po, const double* __restrict__ pa,
                          const double* __restrict__ pb, std::size_t m,
                          std::size_t k, std::size_t n) {
  constexpr std::size_t kBlock = 8;
  for (std::size_t i = 0; i < m; ++i) {
    const double* __restrict__ arow = pa + i * k;
    double* __restrict__ orow = po + i * n;
    std::size_t j0 = 0;
    for (; j0 + kBlock <= n; j0 += kBlock) {
      double acc[kBlock] = {0.0};
      for (std::size_t p = 0; p < k; ++p) {
        const double aip = arow[p];
        const double* __restrict__ brow = pb + p * n + j0;
        for (std::size_t jj = 0; jj < kBlock; ++jj)
          acc[jj] = std::fma(aip, brow[jj], acc[jj]);
      }
      for (std::size_t jj = 0; jj < kBlock; ++jj) orow[j0 + jj] = acc[jj];
    }
    for (; j0 < n; ++j0) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p)
        acc = std::fma(arow[p], pb[p * n + j0], acc);
      orow[j0] = acc;
    }
  }
}

}  // namespace tsc::nn::fast_detail
