// CoLight baseline (Wei, Xu et al. 2019, paper section VI-B).
//
// A parameter-shared Deep Q-Network whose state embedding attends over the
// agent's neighborhood with a graph attention layer: each agent embeds its
// own and its 1-hop neighbors' observations, a GAT mixes them (query =
// self), and a Q head scores each phase. Trained off-policy from a replay
// buffer with a target network and epsilon-greedy exploration.
#pragma once

#include <memory>
#include <vector>

#include "src/env/controller.hpp"
#include "src/env/env.hpp"
#include "src/nn/gat.hpp"
#include "src/nn/inference.hpp"
#include "src/nn/layers.hpp"
#include "src/nn/optim.hpp"
#include "src/rl/replay.hpp"
#include "src/util/rng.hpp"

namespace tsc::baselines {

struct CoLightConfig {
  double gamma = 0.99;
  double lr = 1e-3;
  double epsilon_start = 0.8;
  double epsilon_end = 0.05;
  std::size_t epsilon_decay_episodes = 60;
  std::size_t embed_dim = 32;
  std::size_t replay_capacity = 20000;
  std::size_t batch_size = 32;
  std::size_t target_update_steps = 200;  ///< hard target-net sync interval
  std::size_t updates_per_step = 1;       ///< gradient steps per env step
  double max_grad_norm = 1.0;
  /// Greedy action selection runs tape-free on a preallocated workspace
  /// (nn/inference.hpp); bit-identical to the tape forward. False forces
  /// the tape path (debug / A-B comparison).
  bool inference_path = true;
  /// Math-kernel tier for the inference-path forwards (nn/kernels.hpp):
  /// kReference (default) is bit-exact; kFast is tolerance-bounded SIMD/FMA.
  /// Tape forwards/backwards (the Q update) always run reference.
  nn::KernelTier kernel_tier = nn::KernelTier::kReference;
  std::uint64_t seed = 4;
};

class CoLightTrainer {
 public:
  CoLightTrainer(env::TscEnv* env, CoLightConfig config);

  env::EpisodeStats train_episode();
  env::EpisodeStats eval_episode(std::uint64_t seed);
  /// Fleet-batched greedy evaluation: one episode per seed, all replicas
  /// stepped in lockstep with every (replica, agent) neighborhood stacked
  /// into one block-batched Q forward per step — the embedding, GAT
  /// projections, and Q head each run as a single GEMM over
  /// active_replicas * num_agents blocks. stats[w] is bit-identical to
  /// eval_episode(seeds[w]) (greedy CoLight consumes no RNG). Runs on
  /// per-call environment clones; the trainer's environment and RNG stream
  /// are untouched.
  std::vector<env::EpisodeStats> eval_episodes_fleet(
      const std::vector<std::uint64_t>& seeds);
  std::unique_ptr<env::Controller> make_controller();
  std::size_t episodes_trained() const { return episode_; }

  /// Bits received from other intersections per step: 1-hop neighbors ship
  /// their link-level observations as 32-bit floats (Table IV "CoLight").
  std::size_t comm_bits_per_step() const;

 private:
  friend class CoLightController;

  /// A Q-network: shared obs embedding + GAT + Q head.
  struct QNet : nn::Module {
    QNet(std::size_t obs_dim, std::size_t embed_dim, std::size_t entities,
         std::size_t max_phases, Rng& rng);
    /// entity_obs: [entities, obs_dim] (row 0 = self). Returns [1, max_phases].
    nn::Var forward(nn::Tape& tape, nn::Var entity_obs,
                    const std::vector<bool>& mask);
    /// Tape-free forward; bit-identical to forward(). Non-const because the
    /// GAT layer records its attention weights.
    const nn::Tensor& forward_inference(nn::InferenceWorkspace& ws,
                                        const nn::Tensor& entity_obs,
                                        const std::vector<bool>& mask);
    /// Block-batched tape-free forward: entity_obs stacks B neighborhoods
    /// as [B * entities, obs_dim] and masks[b] is block b's entity mask.
    /// Row b of the returned [B, max_phases] tensor is bit-identical to
    /// forward_inference() on block b alone (see GatLayer::
    /// forward_inference_blocks for the argument).
    const nn::Tensor& forward_inference_blocks(
        nn::InferenceWorkspace& ws, const nn::Tensor& entity_obs,
        const std::vector<const std::vector<bool>*>& masks);
    std::unique_ptr<nn::Linear> embed;
    std::unique_ptr<nn::GatLayer> gat;
    std::unique_ptr<nn::Linear> q_head;
  };

  struct Transition {
    std::vector<double> entity_obs;       ///< flattened [entities, obs_dim]
    std::vector<double> next_entity_obs;
    std::vector<bool> mask;
    std::size_t action = 0;
    std::size_t phase_count = 0;
    double reward = 0.0;
    bool terminal = false;
  };

  /// Flattened neighborhood observation of agent i (self first).
  std::vector<double> entity_obs(std::size_t i) const;
  std::vector<bool> entity_mask(std::size_t i) const;
  std::vector<std::size_t> act_all(bool explore);
  void learn_step();
  env::EpisodeStats run(bool train_mode, std::uint64_t seed);
  double current_epsilon() const;

  env::TscEnv* env_;
  CoLightConfig config_;
  Rng rng_;
  std::size_t entities_ = 0;  ///< 1 + hop1 slots
  std::unique_ptr<QNet> online_;
  std::unique_ptr<QNet> target_;
  std::unique_ptr<nn::Adam> optim_;
  rl::ReplayBuffer<Transition> replay_;
  nn::InferenceWorkspace workspace_;
  std::size_t episode_ = 0;
  std::size_t learn_steps_ = 0;
  std::uint64_t episode_seed_ = 0;
};

}  // namespace tsc::baselines
