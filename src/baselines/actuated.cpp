#include "src/baselines/actuated.hpp"

namespace tsc::baselines {

void ActuatedController::begin_episode(const env::TscEnv& env) {
  action_duration_ = env.config().action_duration;
  current_.assign(env.num_agents(), 0);
  green_.assign(env.num_agents(), 0.0);
}

std::uint32_t ActuatedController::phase_demand(const env::TscEnv& env,
                                               std::size_t agent,
                                               std::size_t phase) {
  // Detector actuation reads through the env's sensor layer so fault
  // injection degrades this controller the same way it degrades RL agents.
  const auto& net = env.simulator().network();
  const auto& node = net.node(env.agent(agent).node);
  double demand = 0.0;
  for (sim::MovementId mid : node.phases.at(phase)) {
    const auto& m = net.movement(mid);
    for (std::uint32_t lane : m.allowed_lanes)
      demand += env.observed_lane_queue(m.from_link, lane);
  }
  return static_cast<std::uint32_t>(demand);
}

std::vector<std::size_t> ActuatedController::act(const env::TscEnv& env) {
  std::vector<std::size_t> actions(env.num_agents());
  for (std::size_t i = 0; i < env.num_agents(); ++i) {
    const std::size_t num_phases = env.agent(i).num_phases;
    const bool min_done = green_[i] >= config_.min_green - 1e-9;
    const bool max_hit = green_[i] >= config_.max_green - 1e-9;
    const bool has_demand = phase_demand(env, i, current_[i]) > 0;
    if (min_done && (max_hit || !has_demand)) {
      // Advance to the next phase with demand; if every other phase is
      // empty too, just rotate once (keeps the cycle fair).
      std::size_t next = (current_[i] + 1) % num_phases;
      for (std::size_t k = 0; k + 1 < num_phases; ++k) {
        if (phase_demand(env, i, next) > 0) break;
        next = (next + 1) % num_phases;
        if (next == current_[i]) next = (next + 1) % num_phases;
      }
      current_[i] = next;
      green_[i] = 0.0;
    }
    green_[i] += action_duration_;
    actions[i] = current_[i];
  }
  return actions;
}

}  // namespace tsc::baselines
