// Gap-based actuated control - the second classical control family from
// the paper's taxonomy (section II-A). Each phase's green extends while its
// served movements still have queued demand, up to a maximum green; when
// demand gaps out (or max green is hit) the controller advances to the next
// phase in the cycle that has demand (or simply the next phase if none do).
#pragma once

#include <string>
#include <vector>

#include "src/env/controller.hpp"

namespace tsc::baselines {

struct ActuatedConfig {
  double min_green = 5.0;   ///< seconds a phase is always held
  double max_green = 30.0;  ///< green cap before forced rotation
};

class ActuatedController : public env::Controller {
 public:
  explicit ActuatedController(ActuatedConfig config = {}) : config_(config) {}

  void begin_episode(const env::TscEnv& env) override;
  std::vector<std::size_t> act(const env::TscEnv& env) override;
  std::string name() const override { return "Actuated"; }

  /// Queued demand served by phase `p` of agent `i` (exposed for tests).
  static std::uint32_t phase_demand(const env::TscEnv& env, std::size_t agent,
                                    std::size_t phase);

 private:
  ActuatedConfig config_;
  std::vector<std::size_t> current_;
  std::vector<double> green_;
  double action_duration_ = 5.0;
};

}  // namespace tsc::baselines
