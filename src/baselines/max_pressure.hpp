// Max-pressure control (Varaiya 2013) - the classical model-based adaptive
// baseline. At every decision step each intersection activates the phase
// whose movements carry the largest total pressure
//     pressure(m) = queue(in link)/lanes_in - queue(out link)/lanes_out,
// which is throughput-optimal under idealized assumptions. Included beyond
// the paper's baseline set because it is the standard non-learning
// comparator for RL TSC work.
#pragma once

#include <string>
#include <vector>

#include "src/env/controller.hpp"

namespace tsc::baselines {

class MaxPressureController : public env::Controller {
 public:
  /// `min_green_seconds`: a phase is held at least this long before the
  /// controller may switch (avoids thrash through yellow).
  explicit MaxPressureController(double min_green_seconds = 5.0)
      : min_green_(min_green_seconds) {}

  void begin_episode(const env::TscEnv& env) override;
  std::vector<std::size_t> act(const env::TscEnv& env) override;
  std::string name() const override { return "MaxPressure"; }

  /// Pressure of phase `p` at agent `i` in the current state (exposed for
  /// tests).
  static double phase_pressure(const env::TscEnv& env, std::size_t agent,
                               std::size_t phase);

 private:
  double min_green_;
  std::vector<std::size_t> current_;
  std::vector<double> held_;
  double action_duration_ = 5.0;
};

}  // namespace tsc::baselines
