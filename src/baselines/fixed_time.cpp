#include "src/baselines/fixed_time.hpp"

namespace tsc::baselines {

void FixedTimeController::begin_episode(const env::TscEnv& env) {
  action_duration_ = env.config().action_duration;
  phase_.assign(env.num_agents(), 0);
  elapsed_.assign(env.num_agents(), 0.0);
  if (offset_stagger_) {
    for (std::size_t i = 0; i < env.num_agents(); ++i)
      phase_[i] = i % env.agent(i).num_phases;
  }
}

std::vector<std::size_t> FixedTimeController::act(const env::TscEnv& env) {
  std::vector<std::size_t> actions(env.num_agents());
  for (std::size_t i = 0; i < env.num_agents(); ++i) {
    if (elapsed_[i] + 1e-9 >= green_seconds_) {
      phase_[i] = (phase_[i] + 1) % env.agent(i).num_phases;
      elapsed_[i] = 0.0;
    }
    actions[i] = phase_[i];
    elapsed_[i] += action_duration_;
  }
  return actions;
}

}  // namespace tsc::baselines
