// MA2C baseline (Chu et al. 2019, paper section VI-B).
//
// Independent advantage actor-critic per intersection - no parameter
// sharing. Each agent augments its local observation with:
//   * spatially discounted neighbor observations (factor alpha), and
//   * neighbor policy fingerprints (the neighbors' previous action
//     probability distributions),
// and trains on a spatially discounted reward
//   r_i + alpha * sum_{j in N(i)} r_j.
// Updates are on-policy A2C (Eqs. 1-3): one pass over the episode batch.
#pragma once

#include <memory>
#include <vector>

#include "src/env/controller.hpp"
#include "src/env/env.hpp"
#include "src/nn/inference.hpp"
#include "src/nn/layers.hpp"
#include "src/nn/optim.hpp"
#include "src/rl/ppo.hpp"
#include "src/rl/rollout.hpp"
#include "src/util/rng.hpp"

namespace tsc::baselines {

struct Ma2cConfig {
  double gamma = 0.99;
  double alpha = 0.75;        ///< spatial discount for neighbor obs/rewards
  double lr = 3e-4;
  double entropy_coef = 0.01;
  double value_coef = 0.5;
  double max_grad_norm = 0.5;
  std::size_t hidden = 64;
  std::size_t minibatch = 128;
  /// Sample from the stochastic policies at evaluation time (deterministic
  /// per-episode stream); argmax when true.
  bool greedy_eval = false;
  /// Rollout/evaluation forwards run tape-free on a preallocated workspace
  /// (nn/inference.hpp); bit-identical to the tape forward. False forces
  /// the tape path (debug / A-B comparison).
  bool inference_path = true;
  /// Math-kernel tier for the inference-path forwards (nn/kernels.hpp):
  /// kReference (default) is bit-exact; kFast is tolerance-bounded SIMD/FMA.
  /// Tape forwards/backwards (the A2C update) always run reference.
  nn::KernelTier kernel_tier = nn::KernelTier::kReference;
  std::uint64_t seed = 3;
};

class Ma2cTrainer {
 public:
  Ma2cTrainer(env::TscEnv* env, Ma2cConfig config);

  env::EpisodeStats train_episode();
  env::EpisodeStats eval_episode(std::uint64_t seed);
  /// Fleet-batched evaluation: one episode per seed, replicas stepped in
  /// lockstep with each agent's actor forward batched across the live
  /// replicas into one GEMM per layer. stats[w] is bit-identical to
  /// eval_episode(seeds[w]): each replica keeps its own fingerprint table
  /// and (unless greedy_eval) its own Rng(seed ^ kEvalSampleSalt) sample
  /// stream, consumed agent-ascending per step exactly like the serial
  /// loop; the phase-mask add, softmax, and categorical weights replay the
  /// serial arithmetic row-by-row. Runs on per-call environment clones; the
  /// trainer's environment, fingerprints, and RNG streams are untouched.
  std::vector<env::EpisodeStats> eval_episodes_fleet(
      const std::vector<std::uint64_t>& seeds);
  std::unique_ptr<env::Controller> make_controller();
  std::size_t episodes_trained() const { return episode_; }

  /// Bits received from other intersections per step: each of the (up to 4)
  /// neighbors sends its observation + fingerprint as 32-bit floats
  /// (Table IV row "MA2C").
  std::size_t comm_bits_per_step() const;

 private:
  friend class Ma2cController;

  std::vector<double> agent_input(std::size_t i) const;
  std::vector<std::size_t> act_all(bool explore, rl::RolloutBuffer* buffer,
                                   Rng* sample_rng = nullptr);
  env::EpisodeStats run(bool train_mode, std::uint64_t seed);
  void update(rl::RolloutBuffer& buffer);

  env::TscEnv* env_;
  Ma2cConfig config_;
  Rng rng_;
  std::size_t hop1_slots_ = 0;
  std::size_t input_dim_ = 0;
  std::vector<std::unique_ptr<nn::Mlp>> actors_;   // one per agent
  std::vector<std::unique_ptr<nn::Mlp>> critics_;
  std::vector<std::unique_ptr<nn::Adam>> optims_;
  /// Policy fingerprints: last action distribution per agent.
  std::vector<std::vector<double>> fingerprints_;
  nn::InferenceWorkspace workspace_;
  std::size_t episode_ = 0;
  std::uint64_t episode_seed_ = 0;
};

}  // namespace tsc::baselines
