#include "src/baselines/max_pressure.hpp"

namespace tsc::baselines {

void MaxPressureController::begin_episode(const env::TscEnv& env) {
  action_duration_ = env.config().action_duration;
  current_.assign(env.num_agents(), 0);
  held_.assign(env.num_agents(), 0.0);
}

double MaxPressureController::phase_pressure(const env::TscEnv& env,
                                             std::size_t agent, std::size_t phase) {
  // Reads go through the env's sensor layer (detector range caps, fault
  // injection) so max-pressure sees the same world as the learned agents.
  const auto& net = env.simulator().network();
  const auto& node = net.node(env.agent(agent).node);
  double total = 0.0;
  for (sim::MovementId mid : node.phases.at(phase)) {
    const auto& m = net.movement(mid);
    const auto& in = net.link(m.from_link);
    const auto& out = net.link(m.to_link);
    total += env.observed_queue(in.id) / in.lanes -
             env.observed_queue(out.id) / out.lanes;
  }
  return total;
}

std::vector<std::size_t> MaxPressureController::act(const env::TscEnv& env) {
  std::vector<std::size_t> actions(env.num_agents());
  for (std::size_t i = 0; i < env.num_agents(); ++i) {
    if (held_[i] < min_green_ - 1e-9) {
      held_[i] += action_duration_;
      actions[i] = current_[i];
      continue;
    }
    std::size_t best = 0;
    double best_pressure = phase_pressure(env, i, 0);
    for (std::size_t p = 1; p < env.agent(i).num_phases; ++p) {
      const double pressure = phase_pressure(env, i, p);
      if (pressure > best_pressure) {
        best_pressure = pressure;
        best = p;
      }
    }
    if (best != current_[i]) held_[i] = 0.0;
    current_[i] = best;
    held_[i] += action_duration_;
    actions[i] = best;
  }
  return actions;
}

}  // namespace tsc::baselines
