// SingleAgentRL baseline (paper section VI-B): one PPO policy trained from
// local observations only and applied uniformly to every intersection.
// No communication, no neighbor information, no recurrence - the policy is
// a feed-forward actor-critic over the local observation.
#pragma once

#include <memory>
#include <vector>

#include "src/env/controller.hpp"
#include "src/env/env.hpp"
#include "src/nn/layers.hpp"
#include "src/nn/optim.hpp"
#include "src/rl/ppo.hpp"
#include "src/rl/rollout.hpp"
#include "src/util/rng.hpp"

namespace tsc::baselines {

struct SingleAgentConfig {
  rl::PpoConfig ppo;
  std::size_t hidden = 64;
  /// Paper semantics (section VI-B): "a single agent is trained ... its
  /// learned policy is uniformly applied to all intersections". When true
  /// the policy learns from ONE intersection's experience stream (the most
  /// central one); when false it learns from every intersection's samples -
  /// a strictly stronger parameter-shared variant kept for comparison.
  bool train_on_single_intersection = true;
  /// Sample from the stochastic policy at evaluation time (deterministic
  /// per-episode stream); argmax when true. See PairUpConfig::greedy_eval.
  bool greedy_eval = false;
  std::uint64_t seed = 2;
};

class SingleAgentPpoTrainer {
 public:
  SingleAgentPpoTrainer(env::TscEnv* env, SingleAgentConfig config);

  env::EpisodeStats train_episode();
  env::EpisodeStats eval_episode(std::uint64_t seed);
  std::unique_ptr<env::Controller> make_controller();
  std::size_t episodes_trained() const { return episode_; }
  nn::Module& policy();

 private:
  friend class SingleAgentController;

  /// Actions for the current env state. When not exploring, samples with
  /// `sample_rng` if provided, else takes the argmax.
  std::vector<std::size_t> act_all(bool explore, rl::RolloutBuffer* buffer,
                                   Rng* sample_rng = nullptr);
  env::EpisodeStats run(bool train_mode, std::uint64_t seed);
  void update(rl::RolloutBuffer& buffer);

  env::TscEnv* env_;
  SingleAgentConfig config_;
  Rng rng_;
  std::unique_ptr<nn::Mlp> actor_;
  std::unique_ptr<nn::Mlp> critic_;
  std::unique_ptr<nn::Adam> optim_;
  std::vector<nn::Parameter*> all_params_;
  std::size_t episode_ = 0;
  std::uint64_t episode_seed_ = 0;
};

}  // namespace tsc::baselines
