#include "src/baselines/colight.hpp"

#include <algorithm>
#include <cassert>

namespace tsc::baselines {

using tsc::nn::Tape;
using tsc::nn::Tensor;
using tsc::nn::Var;

CoLightTrainer::QNet::QNet(std::size_t obs_dim, std::size_t embed_dim,
                           std::size_t entities, std::size_t max_phases, Rng& rng) {
  embed = std::make_unique<nn::Linear>(obs_dim, embed_dim, rng);
  gat = std::make_unique<nn::GatLayer>(embed_dim, embed_dim, entities, rng);
  q_head = std::make_unique<nn::Linear>(embed_dim, max_phases, rng, 0.1);
  register_module(embed.get());
  register_module(gat.get());
  register_module(q_head.get());
}

Var CoLightTrainer::QNet::forward(Tape& tape, Var entity_obs,
                                  const std::vector<bool>& mask) {
  Var embedded = tape.relu(embed->forward(tape, entity_obs));  // [E, d]
  Var mixed = gat->forward(tape, embedded, mask);              // [1, d]
  return q_head->forward(tape, mixed);                         // [1, A]
}

const Tensor& CoLightTrainer::QNet::forward_inference(
    nn::InferenceWorkspace& ws, const Tensor& entity_obs,
    const std::vector<bool>& mask) {
  Tensor& embedded =
      const_cast<Tensor&>(embed->forward_inference(ws, entity_obs));  // [E, d]
  nn::relu_inplace(embedded);
  const Tensor& mixed = gat->forward_inference(ws, embedded, mask);  // [1, d]
  return q_head->forward_inference(ws, mixed);                       // [1, A]
}

const Tensor& CoLightTrainer::QNet::forward_inference_blocks(
    nn::InferenceWorkspace& ws, const Tensor& entity_obs,
    const std::vector<const std::vector<bool>*>& masks) {
  Tensor& embedded =
      const_cast<Tensor&>(embed->forward_inference(ws, entity_obs));  // [B*E, d]
  nn::relu_inplace(embedded);
  const Tensor& mixed = gat->forward_inference_blocks(ws, embedded, masks);
  return q_head->forward_inference(ws, mixed);  // [B, A]
}

CoLightTrainer::CoLightTrainer(env::TscEnv* env, CoLightConfig config)
    : env_(env),
      config_(config),
      rng_(config.seed),
      replay_(config.replay_capacity),
      episode_seed_(config.seed * 3371) {
  workspace_.set_kernel_tier(config_.kernel_tier);
  std::size_t hop1_slots = 0;
  for (std::size_t i = 0; i < env_->num_agents(); ++i)
    hop1_slots = std::max(hop1_slots, env_->agent(i).hop1.size());
  entities_ = 1 + hop1_slots;
  online_ = std::make_unique<QNet>(env_->obs_dim(), config_.embed_dim, entities_,
                                   env_->config().max_phases, rng_);
  target_ = std::make_unique<QNet>(env_->obs_dim(), config_.embed_dim, entities_,
                                   env_->config().max_phases, rng_);
  target_->copy_weights_from(*online_);
  nn::Adam::Config adam_config;
  adam_config.lr = config_.lr;
  optim_ = std::make_unique<nn::Adam>(online_->parameters(), adam_config);
}

std::size_t CoLightTrainer::comm_bits_per_step() const {
  return (entities_ - 1) * env_->obs_dim() * 32;
}

double CoLightTrainer::current_epsilon() const {
  if (config_.epsilon_decay_episodes == 0) return config_.epsilon_end;
  const double frac =
      std::min(1.0, static_cast<double>(episode_) /
                        static_cast<double>(config_.epsilon_decay_episodes));
  return config_.epsilon_start + frac * (config_.epsilon_end - config_.epsilon_start);
}

std::vector<double> CoLightTrainer::entity_obs(std::size_t i) const {
  const std::size_t obs_dim = env_->obs_dim();
  std::vector<double> out;
  out.reserve(entities_ * obs_dim);
  const auto own = env_->local_obs(i);
  out.insert(out.end(), own.begin(), own.end());
  const env::AgentSpec& spec = env_->agent(i);
  for (std::size_t slot = 0; slot + 1 < entities_; ++slot) {
    if (slot < spec.hop1.size()) {
      const auto nb = env_->local_obs(spec.hop1[slot]);
      out.insert(out.end(), nb.begin(), nb.end());
    } else {
      out.insert(out.end(), obs_dim, 0.0);
    }
  }
  return out;
}

std::vector<bool> CoLightTrainer::entity_mask(std::size_t i) const {
  std::vector<bool> mask(entities_, false);
  mask[0] = true;
  for (std::size_t slot = 0; slot < env_->agent(i).hop1.size(); ++slot)
    mask[slot + 1] = true;
  return mask;
}

std::vector<std::size_t> CoLightTrainer::act_all(bool explore) {
  const std::size_t n = env_->num_agents();
  std::vector<std::size_t> actions(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t num_phases = env_->agent(i).num_phases;
    if (explore && rng_.bernoulli(current_epsilon())) {
      actions[i] = rng_.uniform_int(num_phases);
      continue;
    }
    if (config_.inference_path) {
      workspace_.begin_pass();
      const auto flat = entity_obs(i);
      Tensor& obs = workspace_.acquire(entities_, env_->obs_dim());
      std::copy(flat.begin(), flat.end(), obs.data());
      const Tensor& q_t = online_->forward_inference(workspace_, obs,
                                                     entity_mask(i));
      actions[i] = nn::argmax_row(q_t, 0, num_phases);
    } else {
      Tape tape;
      Var obs = tape.constant(
          Tensor::matrix(entities_, env_->obs_dim(), entity_obs(i)));
      Var q = online_->forward(tape, obs, entity_mask(i));
      const Tensor& q_t = tape.value(q);
      std::size_t best = 0;
      for (std::size_t p = 1; p < num_phases; ++p)
        if (q_t.at(0, p) > q_t.at(0, best)) best = p;
      actions[i] = best;
    }
  }
  return actions;
}

void CoLightTrainer::learn_step() {
  if (replay_.size() < config_.batch_size) return;
  const auto batch = replay_.sample(config_.batch_size, rng_);

  // Targets from the target network: y = r + gamma * max_a' Q_target(s', a').
  std::vector<double> targets(batch.size());
  for (std::size_t b = 0; b < batch.size(); ++b) {
    const Transition& t = *batch[b];
    double y = t.reward;
    if (!t.terminal) {
      Tape tape;
      Var obs = tape.constant(
          Tensor::matrix(entities_, env_->obs_dim(), t.next_entity_obs));
      Var q = target_->forward(tape, obs, t.mask);
      const Tensor& q_t = tape.value(q);
      double best = q_t.at(0, 0);
      for (std::size_t p = 1; p < t.phase_count; ++p)
        best = std::max(best, q_t.at(0, p));
      y += config_.gamma * best;
    }
    targets[b] = y;
  }

  // One combined graph for the whole minibatch: per-sample forwards feed a
  // shared squared-error loss.
  Tape tape;
  std::vector<Var> errors;
  errors.reserve(batch.size());
  for (std::size_t b = 0; b < batch.size(); ++b) {
    const Transition& t = *batch[b];
    Var obs =
        tape.constant(Tensor::matrix(entities_, env_->obs_dim(), t.entity_obs));
    Var q = online_->forward(tape, obs, t.mask);
    Var q_a = tape.slice_cols(q, t.action, 1);  // [1,1]
    Var target = tape.constant(Tensor::matrix(1, 1, {targets[b]}));
    // Huber-clipped TD error, as in standard DQN practice.
    errors.push_back(tape.huber(tape.sub(q_a, target), 1.0));
  }
  Var loss = tape.mean(tape.concat_rows(errors));
  online_->zero_grad();
  tape.backward(loss);
  auto params = online_->parameters();
  nn::clip_grad_norm(params, config_.max_grad_norm);
  optim_->step();

  ++learn_steps_;
  if (learn_steps_ % config_.target_update_steps == 0)
    target_->copy_weights_from(*online_);
}

env::EpisodeStats CoLightTrainer::run(bool train_mode, std::uint64_t seed) {
  env_->reset(seed);
  const std::size_t n = env_->num_agents();
  double reward_sum = 0.0;
  std::size_t reward_count = 0;

  std::vector<std::vector<double>> prev_obs(n);
  std::vector<std::size_t> prev_actions;
  while (!env_->done()) {
    for (std::size_t i = 0; i < n; ++i) prev_obs[i] = entity_obs(i);
    const auto actions = act_all(train_mode);
    const auto rewards = env_->step(actions);
    const bool terminal = env_->done();
    for (std::size_t i = 0; i < n; ++i) {
      reward_sum += rewards[i];
      ++reward_count;
      if (train_mode) {
        Transition t;
        t.entity_obs = prev_obs[i];
        t.next_entity_obs = entity_obs(i);
        t.mask = entity_mask(i);
        t.action = actions[i];
        t.phase_count = env_->agent(i).num_phases;
        t.reward = rewards[i];
        t.terminal = terminal;
        replay_.push(std::move(t));
      }
    }
    if (train_mode)
      for (std::size_t u = 0; u < config_.updates_per_step; ++u) learn_step();
  }
  if (train_mode) ++episode_;

  env::EpisodeStats stats;
  stats.avg_wait = env_->episode_avg_wait();
  stats.travel_time = env_->average_travel_time();
  stats.delay = env_->average_delay();
  stats.mean_reward =
      reward_count ? reward_sum / static_cast<double>(reward_count) : 0.0;
  stats.vehicles_finished = env_->simulator().vehicles_finished();
  stats.vehicles_spawned = env_->simulator().vehicles_spawned();
  return stats;
}

env::EpisodeStats CoLightTrainer::train_episode() {
  return run(true, episode_seed_ + episode_);
}

env::EpisodeStats CoLightTrainer::eval_episode(std::uint64_t seed) {
  return run(false, seed);
}

std::vector<env::EpisodeStats> CoLightTrainer::eval_episodes_fleet(
    const std::vector<std::uint64_t>& seeds) {
  const std::size_t k = seeds.size();
  const std::size_t n = env_->num_agents();
  const std::size_t obs_dim = env_->obs_dim();
  std::vector<std::unique_ptr<env::TscEnv>> envs;
  envs.reserve(k);
  for (std::size_t w = 0; w < k; ++w) {
    envs.push_back(env_->clone(seeds[w]));
    envs.back()->reset(seeds[w]);
  }
  // Entity masks depend only on the grid topology, identical across clones.
  std::vector<std::vector<bool>> agent_masks(n);
  for (std::size_t i = 0; i < n; ++i) agent_masks[i] = entity_mask(i);

  const bool prev_gemm = workspace_.batched_gemm();
  workspace_.set_batched_gemm(true);
  std::vector<std::size_t> active(k);
  for (std::size_t w = 0; w < k; ++w) active[w] = w;
  std::vector<std::vector<std::size_t>> actions(k, std::vector<std::size_t>(n, 0));
  std::vector<double> reward_sum(k, 0.0);
  std::vector<std::size_t> reward_count(k, 0);
  std::vector<const std::vector<bool>*> masks;
  while (!active.empty()) {
    const std::size_t batch = active.size();
    workspace_.begin_pass();
    Tensor& obs = workspace_.acquire(batch * n * entities_, obs_dim);
    masks.clear();
    for (std::size_t a = 0; a < batch; ++a) {
      const env::TscEnv& env = *envs[active[a]];
      for (std::size_t i = 0; i < n; ++i) {
        double* block = obs.data() + (a * n + i) * entities_ * obs_dim;
        env.local_obs_into(i, block);
        const env::AgentSpec& spec = env.agent(i);
        for (std::size_t slot = 0; slot + 1 < entities_; ++slot) {
          double* row = block + (slot + 1) * obs_dim;
          if (slot < spec.hop1.size())
            env.local_obs_into(spec.hop1[slot], row);
          else
            std::fill(row, row + obs_dim, 0.0);
        }
        masks.push_back(&agent_masks[i]);
      }
    }
    const Tensor& q = online_->forward_inference_blocks(workspace_, obs, masks);
    for (std::size_t a = 0; a < batch; ++a)
      for (std::size_t i = 0; i < n; ++i)
        actions[active[a]][i] =
            nn::argmax_row(q, a * n + i, env_->agent(i).num_phases);
    for (std::size_t a = 0; a < batch; ++a) {
      const std::size_t w = active[a];
      const auto rewards = envs[w]->step(actions[w]);
      for (double r : rewards) {
        reward_sum[w] += r;
        ++reward_count[w];
      }
    }
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](std::size_t w) { return envs[w]->done(); }),
                 active.end());
  }
  workspace_.set_batched_gemm(prev_gemm);

  std::vector<env::EpisodeStats> out(k);
  for (std::size_t w = 0; w < k; ++w) {
    out[w].avg_wait = envs[w]->episode_avg_wait();
    out[w].travel_time = envs[w]->average_travel_time();
    out[w].delay = envs[w]->average_delay();
    out[w].mean_reward =
        reward_count[w] ? reward_sum[w] / static_cast<double>(reward_count[w])
                        : 0.0;
    out[w].vehicles_finished = envs[w]->simulator().vehicles_finished();
    out[w].vehicles_spawned = envs[w]->simulator().vehicles_spawned();
  }
  return out;
}

// ---------------------------------------------------------------------------

class CoLightController : public env::Controller {
 public:
  explicit CoLightController(CoLightTrainer* trainer) : trainer_(trainer) {}
  std::vector<std::size_t> act(const env::TscEnv& env) override {
    (void)env;
    return trainer_->act_all(/*explore=*/false);
  }
  std::string name() const override { return "CoLight"; }

 private:
  CoLightTrainer* trainer_;
};

std::unique_ptr<env::Controller> CoLightTrainer::make_controller() {
  return std::make_unique<CoLightController>(this);
}

}  // namespace tsc::baselines
