#include "src/baselines/single_agent.hpp"

#include <algorithm>
#include <cassert>

#include "src/util/stats.hpp"

namespace tsc::baselines {

using tsc::nn::Tape;
using tsc::nn::Tensor;
using tsc::nn::Var;

namespace {

Tensor pack_rows(const std::vector<std::vector<double>>& rows, std::size_t width) {
  Tensor t = Tensor::zeros(rows.size(), width);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == width);
    for (std::size_t c = 0; c < width; ++c) t.at(r, c) = rows[r][c];
  }
  return t;
}

Var mask_logits(Tape& tape, Var logits, const std::vector<std::size_t>& phase_counts,
                std::size_t max_phases) {
  bool needs_mask = false;
  for (std::size_t pc : phase_counts)
    if (pc < max_phases) needs_mask = true;
  if (!needs_mask) return logits;
  Tensor mask = Tensor::zeros(phase_counts.size(), max_phases);
  for (std::size_t b = 0; b < phase_counts.size(); ++b)
    for (std::size_t p = phase_counts[b]; p < max_phases; ++p) mask.at(b, p) = -1e9;
  return tape.add(logits, tape.constant(std::move(mask)));
}

}  // namespace

SingleAgentPpoTrainer::SingleAgentPpoTrainer(env::TscEnv* env, SingleAgentConfig config)
    : env_(env), config_(config), rng_(config.seed), episode_seed_(config.seed * 6151) {
  const std::size_t obs = env_->obs_dim();
  const std::size_t max_phases = env_->config().max_phases;
  actor_ = std::make_unique<nn::Mlp>(
      std::vector<std::size_t>{obs, config_.hidden, config_.hidden, max_phases}, rng_);
  critic_ = std::make_unique<nn::Mlp>(
      std::vector<std::size_t>{obs, config_.hidden, config_.hidden, 1}, rng_,
      nn::Activation::kTanh, 1.0);
  all_params_ = actor_->parameters();
  auto critic_params = critic_->parameters();
  all_params_.insert(all_params_.end(), critic_params.begin(), critic_params.end());
  nn::Adam::Config adam_config;
  adam_config.lr = config_.ppo.lr;
  optim_ = std::make_unique<nn::Adam>(all_params_, adam_config);
}

nn::Module& SingleAgentPpoTrainer::policy() { return *actor_; }

std::vector<std::size_t> SingleAgentPpoTrainer::act_all(bool explore,
                                                        rl::RolloutBuffer* buffer,
                                                        Rng* sample_rng) {
  const std::size_t n = env_->num_agents();
  const std::size_t max_phases = env_->config().max_phases;
  std::vector<std::vector<double>> obs_rows(n);
  std::vector<std::size_t> phase_counts(n);
  for (std::size_t i = 0; i < n; ++i) {
    obs_rows[i] = env_->local_obs(i);
    phase_counts[i] = env_->agent(i).num_phases;
  }
  Tape tape;
  Var obs = tape.constant(pack_rows(obs_rows, env_->obs_dim()));
  Var logits = mask_logits(tape, actor_->forward(tape, obs), phase_counts, max_phases);
  Var probs = tape.softmax_rows(logits);
  Var logp = tape.log_softmax_rows(logits);
  Var values = critic_->forward(tape, obs);

  const Tensor& probs_t = tape.value(probs);
  const Tensor& logp_t = tape.value(logp);
  const Tensor& val_t = tape.value(values);

  std::vector<std::size_t> actions(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t action = 0;
    if (explore && config_.ppo.sample_actions) {
      std::vector<double> w(phase_counts[i]);
      for (std::size_t p = 0; p < phase_counts[i]; ++p) w[p] = probs_t.at(i, p);
      action = rng_.categorical(w);
    } else if (explore && rng_.bernoulli(rl::epsilon_at(episode_, config_.ppo))) {
      action = rng_.uniform_int(phase_counts[i]);
    } else if (!explore && sample_rng != nullptr) {
      std::vector<double> w(phase_counts[i]);
      for (std::size_t p = 0; p < phase_counts[i]; ++p) w[p] = probs_t.at(i, p);
      action = sample_rng->categorical(w);
    } else {
      for (std::size_t p = 1; p < phase_counts[i]; ++p)
        if (probs_t.at(i, p) > probs_t.at(i, action)) action = p;
    }
    actions[i] = action;
    if (buffer != nullptr) {
      rl::Sample s;
      s.obs = obs_rows[i];
      s.action = action;
      s.phase_count = phase_counts[i];
      s.log_prob = logp_t.at(i, action);
      s.value = val_t.at(i, 0);
      buffer->add(i, std::move(s));
    }
  }
  return actions;
}

env::EpisodeStats SingleAgentPpoTrainer::run(bool train_mode, std::uint64_t seed) {
  env_->reset(seed);
  rl::RolloutBuffer buffer(env_->num_agents());
  rl::RolloutBuffer* buffer_ptr = train_mode ? &buffer : nullptr;
  Rng eval_rng(seed ^ env::kEvalSampleSalt);
  Rng* sample_rng = (!train_mode && !config_.greedy_eval) ? &eval_rng : nullptr;
  double reward_sum = 0.0;
  std::size_t reward_count = 0;
  while (!env_->done()) {
    const auto actions = act_all(train_mode, buffer_ptr, sample_rng);
    const auto rewards = env_->step(actions);
    for (std::size_t i = 0; i < rewards.size(); ++i) {
      reward_sum += rewards[i];
      ++reward_count;
      if (buffer_ptr != nullptr) buffer.last(i).reward = rewards[i];
    }
  }
  if (train_mode) {
    // Bootstrap values for the final state.
    const std::size_t n = env_->num_agents();
    std::vector<std::vector<double>> obs_rows(n);
    for (std::size_t i = 0; i < n; ++i) obs_rows[i] = env_->local_obs(i);
    Tape tape;
    Var obs = tape.constant(pack_rows(obs_rows, env_->obs_dim()));
    Var values = critic_->forward(tape, obs);
    for (std::size_t i = 0; i < n; ++i)
      buffer.finish_agent(i, tape.value(values).at(i, 0), config_.ppo.gamma,
                          config_.ppo.lambda);
    update(buffer);
    ++episode_;
  }
  env::EpisodeStats stats;
  stats.avg_wait = env_->episode_avg_wait();
  stats.travel_time = env_->average_travel_time();
  stats.delay = env_->average_delay();
  stats.mean_reward =
      reward_count ? reward_sum / static_cast<double>(reward_count) : 0.0;
  stats.vehicles_finished = env_->simulator().vehicles_finished();
  stats.vehicles_spawned = env_->simulator().vehicles_spawned();
  return stats;
}

env::EpisodeStats SingleAgentPpoTrainer::train_episode() {
  return run(true, episode_seed_ + episode_);
}

env::EpisodeStats SingleAgentPpoTrainer::eval_episode(std::uint64_t seed) {
  return run(false, seed);
}

void SingleAgentPpoTrainer::update(rl::RolloutBuffer& buffer) {
  std::vector<const rl::Sample*> samples;
  if (config_.train_on_single_intersection) {
    // Learn from the most central intersection only, normalizing its
    // advantages locally.
    const std::size_t center = env_->num_agents() / 2;
    auto& center_samples = buffer.mutable_agent_samples(center);
    if (config_.ppo.normalize_advantages && center_samples.size() > 1) {
      std::vector<double> advantages;
      advantages.reserve(center_samples.size());
      for (const rl::Sample& s : center_samples) advantages.push_back(s.advantage);
      normalize_in_place(advantages);
      for (std::size_t i = 0; i < center_samples.size(); ++i)
        center_samples[i].advantage = advantages[i];
    }
    for (const rl::Sample& s : center_samples) samples.push_back(&s);
  } else {
    samples = buffer.flatten(config_.ppo.normalize_advantages);
  }
  if (samples.empty()) return;
  const std::size_t max_phases = env_->config().max_phases;
  std::vector<std::size_t> order(samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const std::size_t minibatch = std::max<std::size_t>(1, config_.ppo.minibatch);

  for (std::size_t epoch = 0; epoch < config_.ppo.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng_.uniform_int(i)]);
    for (std::size_t start = 0; start < order.size(); start += minibatch) {
      const std::size_t end = std::min(order.size(), start + minibatch);
      const std::size_t batch = end - start;
      std::vector<std::vector<double>> obs_rows(batch);
      std::vector<std::size_t> actions(batch);
      std::vector<std::size_t> phase_counts(batch);
      std::vector<double> old_logp(batch), advantages(batch), returns(batch);
      for (std::size_t b = 0; b < batch; ++b) {
        const rl::Sample& s = *samples[order[start + b]];
        obs_rows[b] = s.obs;
        actions[b] = s.action;
        phase_counts[b] = s.phase_count;
        old_logp[b] = s.log_prob;
        advantages[b] = s.advantage;
        returns[b] = s.ret;
      }
      Tape tape;
      Var obs = tape.constant(pack_rows(obs_rows, env_->obs_dim()));
      Var logits =
          mask_logits(tape, actor_->forward(tape, obs), phase_counts, max_phases);
      Var new_logp = tape.gather_cols(tape.log_softmax_rows(logits), actions);
      Var entropy = rl::policy_entropy(tape, logits);
      Var values = critic_->forward(tape, obs);
      Var loss = rl::ppo_total_loss(tape, new_logp, entropy, values, old_logp,
                                    advantages, returns, config_.ppo);
      actor_->zero_grad();
      critic_->zero_grad();
      tape.backward(loss);
      nn::clip_grad_norm(all_params_, config_.ppo.max_grad_norm);
      optim_->step();
    }
  }
}

// ---------------------------------------------------------------------------

class SingleAgentController : public env::Controller {
 public:
  explicit SingleAgentController(SingleAgentPpoTrainer* trainer) : trainer_(trainer) {}
  void begin_episode(const env::TscEnv& env) override {
    rng_ = Rng(env.episode_seed() ^ env::kEvalSampleSalt);
  }
  std::vector<std::size_t> act(const env::TscEnv& env) override {
    (void)env;
    Rng* sample_rng = trainer_->config_.greedy_eval ? nullptr : &rng_;
    return trainer_->act_all(/*explore=*/false, nullptr, sample_rng);
  }
  std::string name() const override { return "SingleAgent"; }

 private:
  SingleAgentPpoTrainer* trainer_;
  Rng rng_{0};
};

std::unique_ptr<env::Controller> SingleAgentPpoTrainer::make_controller() {
  return std::make_unique<SingleAgentController>(this);
}

}  // namespace tsc::baselines
