#include "src/baselines/idqn.hpp"

#include <algorithm>
#include <cassert>

namespace tsc::baselines {

using tsc::nn::Tape;
using tsc::nn::Tensor;
using tsc::nn::Var;

IdqnTrainer::IdqnTrainer(env::TscEnv* env, IdqnConfig config)
    : env_(env), config_(config), rng_(config.seed) {
  workspace_.set_kernel_tier(config_.kernel_tier);
  const std::size_t obs = env_->obs_dim();
  const std::size_t max_phases = env_->config().max_phases;
  for (std::size_t i = 0; i < env_->num_agents(); ++i) {
    online_.push_back(std::make_unique<nn::Mlp>(
        std::vector<std::size_t>{obs, config_.hidden, max_phases}, rng_,
        nn::Activation::kRelu, 0.1));
    target_.push_back(std::make_unique<nn::Mlp>(
        std::vector<std::size_t>{obs, config_.hidden, max_phases}, rng_,
        nn::Activation::kRelu, 0.1));
    target_.back()->copy_weights_from(*online_.back());
    nn::Adam::Config adam_config;
    adam_config.lr = config_.lr;
    optims_.push_back(
        std::make_unique<nn::Adam>(online_.back()->parameters(), adam_config));
    replays_.emplace_back(config_.replay_capacity);
  }
}

double IdqnTrainer::current_epsilon() const {
  if (config_.epsilon_decay_episodes == 0) return config_.epsilon_end;
  const double frac =
      std::min(1.0, static_cast<double>(episode_) /
                        static_cast<double>(config_.epsilon_decay_episodes));
  return config_.epsilon_start + frac * (config_.epsilon_end - config_.epsilon_start);
}

std::vector<std::size_t> IdqnTrainer::act_all(bool explore) {
  const std::size_t n = env_->num_agents();
  std::vector<std::size_t> actions(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t num_phases = env_->agent(i).num_phases;
    if (explore && rng_.bernoulli(current_epsilon())) {
      actions[i] = rng_.uniform_int(num_phases);
      continue;
    }
    const auto obs = env_->local_obs(i);
    if (config_.inference_path) {
      workspace_.begin_pass();
      Tensor& x = workspace_.acquire(1, obs.size());
      std::copy(obs.begin(), obs.end(), x.data());
      const Tensor& q_t = online_[i]->forward_inference(workspace_, x);
      actions[i] = nn::argmax_row(q_t, 0, num_phases);
    } else {
      Tape tape;
      Var x = tape.constant(Tensor::matrix(1, obs.size(), obs));
      Var q = online_[i]->forward(tape, x);
      const Tensor& q_t = tape.value(q);
      std::size_t best = 0;
      for (std::size_t p = 1; p < num_phases; ++p)
        if (q_t.at(0, p) > q_t.at(0, best)) best = p;
      actions[i] = best;
    }
  }
  return actions;
}

void IdqnTrainer::learn_step(std::size_t agent) {
  auto& replay = replays_[agent];
  if (replay.size() < config_.batch_size) return;
  const auto batch = replay.sample(config_.batch_size, rng_);
  const std::size_t num_phases = env_->agent(agent).num_phases;

  std::vector<double> targets(batch.size());
  for (std::size_t b = 0; b < batch.size(); ++b) {
    const Transition& t = *batch[b];
    double y = t.reward;
    if (!t.terminal) {
      Tape tape;
      Var x = tape.constant(Tensor::matrix(1, t.next_obs.size(), t.next_obs));
      Var q = target_[agent]->forward(tape, x);
      double best = tape.value(q).at(0, 0);
      for (std::size_t p = 1; p < num_phases; ++p)
        best = std::max(best, tape.value(q).at(0, p));
      y += config_.gamma * best;
    }
    targets[b] = y;
  }

  // Batched TD update with Huber-clipped errors.
  Tape tape;
  const std::size_t obs_dim = env_->obs_dim();
  Tensor obs_batch = Tensor::zeros(batch.size(), obs_dim);
  std::vector<std::size_t> actions(batch.size());
  for (std::size_t b = 0; b < batch.size(); ++b) {
    for (std::size_t k = 0; k < obs_dim; ++k)
      obs_batch.at(b, k) = batch[b]->obs[k];
    actions[b] = batch[b]->action;
  }
  Var q_all = online_[agent]->forward(tape, tape.constant(std::move(obs_batch)));
  Var q_taken = tape.gather_cols(q_all, actions);
  Var target =
      tape.constant(Tensor::matrix(batch.size(), 1, std::move(targets)));
  Var loss = tape.mean(tape.huber(tape.sub(q_taken, target), 1.0));
  online_[agent]->zero_grad();
  tape.backward(loss);
  auto params = online_[agent]->parameters();
  nn::clip_grad_norm(params, config_.max_grad_norm);
  optims_[agent]->step();

  ++learn_steps_;
  if (learn_steps_ % config_.target_update_steps == 0)
    target_[agent]->copy_weights_from(*online_[agent]);
}

env::EpisodeStats IdqnTrainer::run(bool train_mode, std::uint64_t seed) {
  env_->reset(seed);
  const std::size_t n = env_->num_agents();
  double reward_sum = 0.0;
  std::size_t reward_count = 0;
  std::vector<std::vector<double>> prev_obs(n);
  while (!env_->done()) {
    for (std::size_t i = 0; i < n; ++i) prev_obs[i] = env_->local_obs(i);
    const auto actions = act_all(train_mode);
    const auto rewards = env_->step(actions);
    const bool terminal = env_->done();
    for (std::size_t i = 0; i < n; ++i) {
      reward_sum += rewards[i];
      ++reward_count;
      if (train_mode) {
        Transition t;
        t.obs = prev_obs[i];
        t.next_obs = env_->local_obs(i);
        t.action = actions[i];
        t.reward = rewards[i];
        t.terminal = terminal;
        replays_[i].push(std::move(t));
        for (std::size_t u = 0; u < config_.updates_per_step; ++u) learn_step(i);
      }
    }
  }
  if (train_mode) ++episode_;
  env::EpisodeStats stats;
  stats.avg_wait = env_->episode_avg_wait();
  stats.travel_time = env_->average_travel_time();
  stats.delay = env_->average_delay();
  stats.mean_reward =
      reward_count ? reward_sum / static_cast<double>(reward_count) : 0.0;
  stats.vehicles_finished = env_->simulator().vehicles_finished();
  stats.vehicles_spawned = env_->simulator().vehicles_spawned();
  return stats;
}

env::EpisodeStats IdqnTrainer::train_episode() {
  return run(true, config_.seed * 2861 + episode_);
}

env::EpisodeStats IdqnTrainer::eval_episode(std::uint64_t seed) {
  return run(false, seed);
}

std::vector<env::EpisodeStats> IdqnTrainer::eval_episodes_fleet(
    const std::vector<std::uint64_t>& seeds) {
  const std::size_t k = seeds.size();
  const std::size_t n = env_->num_agents();
  const std::size_t obs_dim = env_->obs_dim();
  std::vector<std::unique_ptr<env::TscEnv>> envs;
  envs.reserve(k);
  for (std::size_t w = 0; w < k; ++w) {
    envs.push_back(env_->clone(seeds[w]));
    envs.back()->reset(seeds[w]);
  }

  const bool prev_gemm = workspace_.batched_gemm();
  workspace_.set_batched_gemm(true);
  std::vector<std::size_t> active(k);
  for (std::size_t w = 0; w < k; ++w) active[w] = w;
  std::vector<std::vector<std::size_t>> actions(k, std::vector<std::size_t>(n, 0));
  std::vector<double> reward_sum(k, 0.0);
  std::vector<std::size_t> reward_count(k, 0);
  while (!active.empty()) {
    const std::size_t batch = active.size();
    workspace_.begin_pass();
    for (std::size_t i = 0; i < n; ++i) {
      Tensor& x = workspace_.acquire(batch, obs_dim);
      for (std::size_t a = 0; a < batch; ++a)
        envs[active[a]]->local_obs_into(i, x.data() + a * obs_dim);
      const Tensor& q = online_[i]->forward_inference(workspace_, x);
      const std::size_t num_phases = env_->agent(i).num_phases;
      for (std::size_t a = 0; a < batch; ++a)
        actions[active[a]][i] = nn::argmax_row(q, a, num_phases);
    }
    for (std::size_t a = 0; a < batch; ++a) {
      const std::size_t w = active[a];
      const auto rewards = envs[w]->step(actions[w]);
      for (double r : rewards) {
        reward_sum[w] += r;
        ++reward_count[w];
      }
    }
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](std::size_t w) { return envs[w]->done(); }),
                 active.end());
  }
  workspace_.set_batched_gemm(prev_gemm);

  std::vector<env::EpisodeStats> out(k);
  for (std::size_t w = 0; w < k; ++w) {
    out[w].avg_wait = envs[w]->episode_avg_wait();
    out[w].travel_time = envs[w]->average_travel_time();
    out[w].delay = envs[w]->average_delay();
    out[w].mean_reward =
        reward_count[w] ? reward_sum[w] / static_cast<double>(reward_count[w])
                        : 0.0;
    out[w].vehicles_finished = envs[w]->simulator().vehicles_finished();
    out[w].vehicles_spawned = envs[w]->simulator().vehicles_spawned();
  }
  return out;
}

// ---------------------------------------------------------------------------

class IdqnController : public env::Controller {
 public:
  explicit IdqnController(IdqnTrainer* trainer) : trainer_(trainer) {}
  std::vector<std::size_t> act(const env::TscEnv& env) override {
    (void)env;
    return trainer_->act_all(/*explore=*/false);
  }
  std::string name() const override { return "IDQN"; }

 private:
  IdqnTrainer* trainer_;
};

std::unique_ptr<env::Controller> IdqnTrainer::make_controller() {
  return std::make_unique<IdqnController>(this);
}

}  // namespace tsc::baselines
