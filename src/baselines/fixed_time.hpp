// Fixed-time baseline: cycles phases on a predetermined schedule,
// independent of traffic (paper section VI-B, "Fixedtime").
#pragma once

#include <string>
#include <vector>

#include "src/env/controller.hpp"

namespace tsc::baselines {

class FixedTimeController : public env::Controller {
 public:
  /// Each phase is held for `green_seconds` of decision time before the
  /// cycle advances (the paper's plan: 5 s phases). `offset_stagger` adds
  /// per-agent phase offsets (agent index modulo cycle) - a crude green
  /// wave, disabled by default.
  explicit FixedTimeController(double green_seconds = 5.0, bool offset_stagger = false)
      : green_seconds_(green_seconds), offset_stagger_(offset_stagger) {}

  void begin_episode(const env::TscEnv& env) override;
  std::vector<std::size_t> act(const env::TscEnv& env) override;
  std::string name() const override { return "Fixedtime"; }

 private:
  double green_seconds_;
  bool offset_stagger_;
  std::vector<std::size_t> phase_;
  std::vector<double> elapsed_;
  double action_duration_ = 5.0;
};

}  // namespace tsc::baselines
