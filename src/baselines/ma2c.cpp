#include "src/baselines/ma2c.hpp"

#include <algorithm>
#include <cassert>

namespace tsc::baselines {

using tsc::nn::Tape;
using tsc::nn::Tensor;
using tsc::nn::Var;

namespace {

Tensor pack_rows(const std::vector<std::vector<double>>& rows, std::size_t width) {
  Tensor t = Tensor::zeros(rows.size(), width);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == width);
    for (std::size_t c = 0; c < width; ++c) t.at(r, c) = rows[r][c];
  }
  return t;
}

}  // namespace

Ma2cTrainer::Ma2cTrainer(env::TscEnv* env, Ma2cConfig config)
    : env_(env), config_(config), rng_(config.seed), episode_seed_(config.seed * 4793) {
  workspace_.set_kernel_tier(config_.kernel_tier);
  const std::size_t n = env_->num_agents();
  for (std::size_t i = 0; i < n; ++i)
    hop1_slots_ = std::max(hop1_slots_, env_->agent(i).hop1.size());
  const std::size_t obs = env_->obs_dim();
  const std::size_t max_phases = env_->config().max_phases;
  input_dim_ = obs + hop1_slots_ * (obs + max_phases);

  for (std::size_t i = 0; i < n; ++i) {
    actors_.push_back(std::make_unique<nn::Mlp>(
        std::vector<std::size_t>{input_dim_, config_.hidden, config_.hidden,
                                 max_phases},
        rng_));
    critics_.push_back(std::make_unique<nn::Mlp>(
        std::vector<std::size_t>{input_dim_, config_.hidden, config_.hidden, 1}, rng_,
        nn::Activation::kTanh, 1.0));
    auto params = actors_.back()->parameters();
    auto critic_params = critics_.back()->parameters();
    params.insert(params.end(), critic_params.begin(), critic_params.end());
    nn::Adam::Config adam_config;
    adam_config.lr = config_.lr;
    optims_.push_back(std::make_unique<nn::Adam>(std::move(params), adam_config));
  }
  fingerprints_.assign(n, std::vector<double>(max_phases, 0.0));
}

std::size_t Ma2cTrainer::comm_bits_per_step() const {
  // Each neighbor ships its local observation + policy fingerprint.
  return hop1_slots_ * (env_->obs_dim() + env_->config().max_phases) * 32;
}

std::vector<double> Ma2cTrainer::agent_input(std::size_t i) const {
  const std::size_t obs_dim = env_->obs_dim();
  const std::size_t max_phases = env_->config().max_phases;
  std::vector<double> input = env_->local_obs(i);
  const env::AgentSpec& spec = env_->agent(i);
  for (std::size_t slot = 0; slot < hop1_slots_; ++slot) {
    if (slot < spec.hop1.size()) {
      const std::size_t nb = spec.hop1[slot];
      auto nb_obs = env_->local_obs(nb);
      for (double v : nb_obs) input.push_back(config_.alpha * v);
      for (double v : fingerprints_[nb]) input.push_back(v);
    } else {
      input.insert(input.end(), obs_dim + max_phases, 0.0);
    }
  }
  assert(input.size() == input_dim_);
  return input;
}

std::vector<std::size_t> Ma2cTrainer::act_all(bool explore,
                                              rl::RolloutBuffer* buffer,
                                              Rng* sample_rng) {
  const std::size_t n = env_->num_agents();
  std::vector<std::size_t> actions(n);
  std::vector<std::vector<double>> new_fingerprints(n);
  const std::size_t max_phases = env_->config().max_phases;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t num_phases = env_->agent(i).num_phases;
    const auto input = agent_input(i);

    // Both forward producers fill the same pointers; the selection /
    // fingerprint / buffer code below is shared so the RNG consumption
    // order is identical on either path.
    const Tensor* probs_p = nullptr;
    const Tensor* logp_p = nullptr;
    const Tensor* val_p = nullptr;
    Tape tape;  // used only on the tape path; outlives the pointers
    if (config_.inference_path) {
      workspace_.begin_pass();
      Tensor& x = workspace_.acquire(1, input_dim_);
      std::copy(input.begin(), input.end(), x.data());
      Tensor& logits =
          const_cast<Tensor&>(actors_[i]->forward_inference(workspace_, x));
      // Mask exactly like the tape path: elementwise add of 0.0 / -1e9.
      if (num_phases < max_phases)
        for (std::size_t p = 0; p < max_phases; ++p)
          logits.at(0, p) += p < num_phases ? 0.0 : -1e9;
      Tensor& probs = workspace_.acquire(1, max_phases);
      nn::softmax_rows_into(probs, logits, workspace_.kernel_tier());
      Tensor& logp = workspace_.acquire(1, max_phases);
      nn::log_softmax_rows_into(logp, logits, workspace_.kernel_tier());
      const Tensor& value = critics_[i]->forward_inference(workspace_, x);
      probs_p = &probs;
      logp_p = &logp;
      val_p = &value;
    } else {
      Var x = tape.constant(pack_rows({input}, input_dim_));
      Var logits = actors_[i]->forward(tape, x);
      // Mask phases beyond this agent's count.
      if (num_phases < max_phases) {
        Tensor mask = Tensor::zeros(1, max_phases);
        for (std::size_t p = num_phases; p < max_phases; ++p)
          mask.at(0, p) = -1e9;
        logits = tape.add(logits, tape.constant(std::move(mask)));
      }
      Var probs = tape.softmax_rows(logits);
      Var logp = tape.log_softmax_rows(logits);
      Var value = critics_[i]->forward(tape, x);
      probs_p = &tape.value(probs);
      logp_p = &tape.value(logp);
      val_p = &tape.value(value);
    }
    const Tensor& probs_t = *probs_p;

    std::size_t action = 0;
    if (explore) {
      std::vector<double> w(num_phases);
      for (std::size_t p = 0; p < num_phases; ++p) w[p] = probs_t.at(0, p);
      action = rng_.categorical(w);
    } else if (sample_rng != nullptr) {
      std::vector<double> w(num_phases);
      for (std::size_t p = 0; p < num_phases; ++p) w[p] = probs_t.at(0, p);
      action = sample_rng->categorical(w);
    } else {
      for (std::size_t p = 1; p < num_phases; ++p)
        if (probs_t.at(0, p) > probs_t.at(0, action)) action = p;
    }
    actions[i] = action;

    new_fingerprints[i].assign(max_phases, 0.0);
    for (std::size_t p = 0; p < max_phases; ++p)
      new_fingerprints[i][p] = probs_t.at(0, p);

    if (buffer != nullptr) {
      rl::Sample s;
      s.obs = input;
      s.action = action;
      s.phase_count = num_phases;
      s.log_prob = logp_p->at(0, action);
      s.value = val_p->at(0, 0);
      buffer->add(i, std::move(s));
    }
  }
  fingerprints_ = std::move(new_fingerprints);
  return actions;
}

env::EpisodeStats Ma2cTrainer::run(bool train_mode, std::uint64_t seed) {
  env_->reset(seed);
  for (auto& fp : fingerprints_) std::fill(fp.begin(), fp.end(), 0.0);
  rl::RolloutBuffer buffer(env_->num_agents());
  rl::RolloutBuffer* buffer_ptr = train_mode ? &buffer : nullptr;
  Rng eval_rng(seed ^ env::kEvalSampleSalt);
  Rng* sample_rng = (!train_mode && !config_.greedy_eval) ? &eval_rng : nullptr;
  double reward_sum = 0.0;
  std::size_t reward_count = 0;
  while (!env_->done()) {
    const auto actions = act_all(train_mode, buffer_ptr, sample_rng);
    const auto rewards = env_->step(actions);
    for (std::size_t i = 0; i < rewards.size(); ++i) {
      reward_sum += rewards[i];
      ++reward_count;
      if (buffer_ptr != nullptr) {
        // Spatially discounted reward: own + alpha * neighbors'.
        double r = rewards[i];
        for (std::size_t nb : env_->agent(i).hop1) r += config_.alpha * rewards[nb];
        buffer.last(i).reward = r;
      }
    }
  }
  if (train_mode) {
    // Bootstrap each agent's value at the final state.
    for (std::size_t i = 0; i < env_->num_agents(); ++i) {
      const auto input = agent_input(i);
      double boot = 0.0;
      if (config_.inference_path) {
        workspace_.begin_pass();
        Tensor& x = workspace_.acquire(1, input_dim_);
        std::copy(input.begin(), input.end(), x.data());
        boot = critics_[i]->forward_inference(workspace_, x).at(0, 0);
      } else {
        Tape tape;
        Var x = tape.constant(pack_rows({input}, input_dim_));
        Var value = critics_[i]->forward(tape, x);
        boot = tape.value(value).at(0, 0);
      }
      // A2C uses Monte-Carlo returns with bootstrap (lambda = 1).
      buffer.finish_agent(i, boot, config_.gamma, 1.0);
    }
    update(buffer);
    ++episode_;
  }
  env::EpisodeStats stats;
  stats.avg_wait = env_->episode_avg_wait();
  stats.travel_time = env_->average_travel_time();
  stats.delay = env_->average_delay();
  stats.mean_reward =
      reward_count ? reward_sum / static_cast<double>(reward_count) : 0.0;
  stats.vehicles_finished = env_->simulator().vehicles_finished();
  stats.vehicles_spawned = env_->simulator().vehicles_spawned();
  return stats;
}

env::EpisodeStats Ma2cTrainer::train_episode() {
  return run(true, episode_seed_ + episode_);
}

env::EpisodeStats Ma2cTrainer::eval_episode(std::uint64_t seed) {
  return run(false, seed);
}

std::vector<env::EpisodeStats> Ma2cTrainer::eval_episodes_fleet(
    const std::vector<std::uint64_t>& seeds) {
  const std::size_t k = seeds.size();
  const std::size_t n = env_->num_agents();
  const std::size_t obs_dim = env_->obs_dim();
  const std::size_t max_phases = env_->config().max_phases;
  std::vector<std::unique_ptr<env::TscEnv>> envs;
  envs.reserve(k);
  for (std::size_t w = 0; w < k; ++w) {
    envs.push_back(env_->clone(seeds[w]));
    envs.back()->reset(seeds[w]);
  }
  // Per-replica episode state, mirroring what run()/act_all() keep in
  // members and locals: a fingerprint table and a sample stream per seed.
  std::vector<std::vector<std::vector<double>>> fps(
      k, std::vector<std::vector<double>>(n,
                                          std::vector<double>(max_phases, 0.0)));
  std::vector<Rng> srngs;
  if (!config_.greedy_eval) {
    srngs.reserve(k);
    for (std::size_t w = 0; w < k; ++w)
      srngs.emplace_back(seeds[w] ^ env::kEvalSampleSalt);
  }

  const bool prev_gemm = workspace_.batched_gemm();
  workspace_.set_batched_gemm(true);
  std::vector<std::size_t> active(k);
  for (std::size_t w = 0; w < k; ++w) active[w] = w;
  std::vector<std::vector<std::size_t>> actions(k, std::vector<std::size_t>(n, 0));
  std::vector<double> reward_sum(k, 0.0);
  std::vector<std::size_t> reward_count(k, 0);
  // Next-step fingerprints staged per active replica so that every agent's
  // input this step reads the PREVIOUS step's table (act_all swaps at end).
  std::vector<std::vector<std::vector<double>>> staged;
  while (!active.empty()) {
    const std::size_t batch = active.size();
    staged.assign(batch, std::vector<std::vector<double>>(n));
    workspace_.begin_pass();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t num_phases = env_->agent(i).num_phases;
      Tensor& x = workspace_.acquire(batch, input_dim_);
      for (std::size_t a = 0; a < batch; ++a) {
        const env::TscEnv& env = *envs[active[a]];
        double* row = x.data() + a * input_dim_;
        env.local_obs_into(i, row);
        const env::AgentSpec& spec = env.agent(i);
        double* cur = row + obs_dim;
        for (std::size_t slot = 0; slot < hop1_slots_; ++slot) {
          if (slot < spec.hop1.size()) {
            const std::size_t nb = spec.hop1[slot];
            env.local_obs_into(nb, cur);
            for (std::size_t j = 0; j < obs_dim; ++j) cur[j] = config_.alpha * cur[j];
            cur += obs_dim;
            const std::vector<double>& fp = fps[active[a]][nb];
            std::copy(fp.begin(), fp.end(), cur);
            cur += max_phases;
          } else {
            std::fill(cur, cur + obs_dim + max_phases, 0.0);
            cur += obs_dim + max_phases;
          }
        }
      }
      Tensor& logits =
          const_cast<Tensor&>(actors_[i]->forward_inference(workspace_, x));
      if (num_phases < max_phases)
        for (std::size_t a = 0; a < batch; ++a)
          for (std::size_t p = 0; p < max_phases; ++p)
            logits.at(a, p) += p < num_phases ? 0.0 : -1e9;
      Tensor& probs = workspace_.acquire(batch, max_phases);
      nn::softmax_rows_into(probs, logits, workspace_.kernel_tier());
      for (std::size_t a = 0; a < batch; ++a) {
        std::size_t action = 0;
        if (!config_.greedy_eval) {
          std::vector<double> weights(num_phases);
          for (std::size_t p = 0; p < num_phases; ++p) weights[p] = probs.at(a, p);
          action = srngs[active[a]].categorical(weights);
        } else {
          for (std::size_t p = 1; p < num_phases; ++p)
            if (probs.at(a, p) > probs.at(a, action)) action = p;
        }
        actions[active[a]][i] = action;
        staged[a][i].assign(max_phases, 0.0);
        for (std::size_t p = 0; p < max_phases; ++p)
          staged[a][i][p] = probs.at(a, p);
      }
    }
    for (std::size_t a = 0; a < batch; ++a) {
      const std::size_t w = active[a];
      fps[w].swap(staged[a]);
      const auto rewards = envs[w]->step(actions[w]);
      for (double r : rewards) {
        reward_sum[w] += r;
        ++reward_count[w];
      }
    }
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](std::size_t w) { return envs[w]->done(); }),
                 active.end());
  }
  workspace_.set_batched_gemm(prev_gemm);

  std::vector<env::EpisodeStats> out(k);
  for (std::size_t w = 0; w < k; ++w) {
    out[w].avg_wait = envs[w]->episode_avg_wait();
    out[w].travel_time = envs[w]->average_travel_time();
    out[w].delay = envs[w]->average_delay();
    out[w].mean_reward =
        reward_count[w] ? reward_sum[w] / static_cast<double>(reward_count[w])
                        : 0.0;
    out[w].vehicles_finished = envs[w]->simulator().vehicles_finished();
    out[w].vehicles_spawned = envs[w]->simulator().vehicles_spawned();
  }
  return out;
}

void Ma2cTrainer::update(rl::RolloutBuffer& buffer) {
  const std::size_t max_phases = env_->config().max_phases;
  for (std::size_t i = 0; i < env_->num_agents(); ++i) {
    const auto& samples = buffer.agent_samples(i);
    if (samples.empty()) continue;
    const std::size_t minibatch = std::max<std::size_t>(1, config_.minibatch);
    for (std::size_t start = 0; start < samples.size(); start += minibatch) {
      const std::size_t end = std::min(samples.size(), start + minibatch);
      const std::size_t batch = end - start;
      std::vector<std::vector<double>> in_rows(batch);
      std::vector<std::size_t> actions(batch);
      std::vector<double> advantages(batch), returns(batch);
      for (std::size_t b = 0; b < batch; ++b) {
        const rl::Sample& s = samples[start + b];
        in_rows[b] = s.obs;
        actions[b] = s.action;
        advantages[b] = s.advantage;
        returns[b] = s.ret;
      }
      Tape tape;
      Var x = tape.constant(pack_rows(in_rows, input_dim_));
      Var logits = actors_[i]->forward(tape, x);
      if (env_->agent(i).num_phases < max_phases) {
        Tensor mask = Tensor::zeros(batch, max_phases);
        for (std::size_t b = 0; b < batch; ++b)
          for (std::size_t p = env_->agent(i).num_phases; p < max_phases; ++p)
            mask.at(b, p) = -1e9;
        logits = tape.add(logits, tape.constant(std::move(mask)));
      }
      Var logp = tape.gather_cols(tape.log_softmax_rows(logits), actions);
      Var entropy = rl::policy_entropy(tape, logits);
      Var values = critics_[i]->forward(tape, x);

      // A2C losses (Eqs. 1-3): -mean(logp * adv) + c_v * mse - c_e * H.
      Var adv = tape.constant(Tensor::matrix(batch, 1, std::vector<double>(
                                                           advantages)));
      Var ret = tape.constant(Tensor::matrix(batch, 1, std::vector<double>(returns)));
      Var policy_loss = tape.neg(tape.mean(tape.mul(logp, adv)));
      Var value_loss = tape.mean(tape.square(tape.sub(values, ret)));
      Var loss = tape.add(policy_loss,
                          tape.sub(tape.scale(value_loss, config_.value_coef),
                                   tape.scale(entropy, config_.entropy_coef)));
      actors_[i]->zero_grad();
      critics_[i]->zero_grad();
      tape.backward(loss);
      auto params = actors_[i]->parameters();
      auto critic_params = critics_[i]->parameters();
      params.insert(params.end(), critic_params.begin(), critic_params.end());
      nn::clip_grad_norm(params, config_.max_grad_norm);
      optims_[i]->step();
    }
  }
}

// ---------------------------------------------------------------------------

class Ma2cController : public env::Controller {
 public:
  explicit Ma2cController(Ma2cTrainer* trainer) : trainer_(trainer) {}
  void begin_episode(const env::TscEnv& env) override {
    for (auto& fp : trainer_->fingerprints_) std::fill(fp.begin(), fp.end(), 0.0);
    rng_ = Rng(env.episode_seed() ^ env::kEvalSampleSalt);
  }
  std::vector<std::size_t> act(const env::TscEnv& env) override {
    (void)env;
    Rng* sample_rng = trainer_->config_.greedy_eval ? nullptr : &rng_;
    return trainer_->act_all(/*explore=*/false, nullptr, sample_rng);
  }
  std::string name() const override { return "MA2C"; }

 private:
  Ma2cTrainer* trainer_;
  Rng rng_{0};
};

std::unique_ptr<env::Controller> Ma2cTrainer::make_controller() {
  return std::make_unique<Ma2cController>(this);
}

}  // namespace tsc::baselines
