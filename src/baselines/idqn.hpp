// IDQN baseline: one independent Deep Q-Network per intersection, local
// observations only, no communication and no parameter sharing - the
// "Individual RL" comparator standard in TSC studies (e.g. CoLight's
// IndividualRL, Wei et al.'s IntelliLight lineage). Included beyond the
// paper's baseline set to separate the value of *learning* from the value
// of *coordination*.
#pragma once

#include <memory>
#include <vector>

#include "src/env/controller.hpp"
#include "src/env/env.hpp"
#include "src/nn/inference.hpp"
#include "src/nn/layers.hpp"
#include "src/nn/optim.hpp"
#include "src/rl/replay.hpp"
#include "src/util/rng.hpp"

namespace tsc::baselines {

struct IdqnConfig {
  double gamma = 0.99;
  double lr = 1e-3;
  double epsilon_start = 0.8;
  double epsilon_end = 0.05;
  std::size_t epsilon_decay_episodes = 60;
  std::size_t hidden = 64;
  std::size_t replay_capacity = 10000;  ///< per agent
  std::size_t batch_size = 32;
  std::size_t target_update_steps = 200;
  std::size_t updates_per_step = 1;
  double max_grad_norm = 1.0;
  /// Greedy action selection runs tape-free on a preallocated workspace
  /// (nn/inference.hpp); bit-identical to the tape forward. False forces
  /// the tape path (debug / A-B comparison).
  bool inference_path = true;
  /// Math-kernel tier for the inference-path forwards (nn/kernels.hpp):
  /// kReference (default) is bit-exact; kFast is tolerance-bounded SIMD/FMA.
  /// Tape forwards/backwards (the Q update) always run reference.
  nn::KernelTier kernel_tier = nn::KernelTier::kReference;
  std::uint64_t seed = 5;
};

class IdqnTrainer {
 public:
  IdqnTrainer(env::TscEnv* env, IdqnConfig config);

  env::EpisodeStats train_episode();
  env::EpisodeStats eval_episode(std::uint64_t seed);
  /// Fleet-batched greedy evaluation: one episode per seed, all replicas
  /// stepped in lockstep with each agent's Q forward batched across the
  /// live replicas into one GEMM per layer. stats[w] is bit-identical to
  /// eval_episode(seeds[w]) — greedy IDQN consumes no RNG, per-row argmax
  /// replays the serial tie-break, and the batched GEMM kernel matches the
  /// reference bit-for-bit. Runs on per-call environment clones; the
  /// trainer's own environment and RNG stream are untouched.
  std::vector<env::EpisodeStats> eval_episodes_fleet(
      const std::vector<std::uint64_t>& seeds);
  std::unique_ptr<env::Controller> make_controller();
  std::size_t episodes_trained() const { return episode_; }

  /// IDQN receives nothing from other intersections.
  std::size_t comm_bits_per_step() const { return 0; }

 private:
  friend class IdqnController;

  struct Transition {
    std::vector<double> obs;
    std::vector<double> next_obs;
    std::size_t action = 0;
    double reward = 0.0;
    bool terminal = false;
  };

  std::vector<std::size_t> act_all(bool explore);
  void learn_step(std::size_t agent);
  env::EpisodeStats run(bool train_mode, std::uint64_t seed);
  double current_epsilon() const;

  env::TscEnv* env_;
  IdqnConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<nn::Mlp>> online_;
  std::vector<std::unique_ptr<nn::Mlp>> target_;
  std::vector<std::unique_ptr<nn::Adam>> optims_;
  std::vector<rl::ReplayBuffer<Transition>> replays_;
  nn::InferenceWorkspace workspace_;
  std::size_t episode_ = 0;
  std::size_t learn_steps_ = 0;
};

}  // namespace tsc::baselines
