#include "src/core/training_loop.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/baselines/fixed_time.hpp"
#include "src/baselines/single_agent.hpp"
#include "src/core/trainer.hpp"
#include "src/scenarios/grid.hpp"

namespace tsc::core {
namespace {

struct Fixture {
  scenario::GridScenario grid;
  env::TscEnv environment;

  Fixture() : grid(make_grid()), environment(&grid.net(), flows(grid), config(), 1) {}

  static scenario::GridScenario make_grid() {
    scenario::GridConfig grid_config;
    grid_config.rows = 2;
    grid_config.cols = 2;
    return scenario::GridScenario(grid_config);
  }
  static std::vector<sim::FlowSpec> flows(const scenario::GridScenario& g) {
    std::vector<sim::FlowSpec> out;
    for (std::size_t r = 0; r < 2; ++r) {
      sim::FlowSpec f;
      f.route = g.route(g.west_terminal(r), g.east_terminal(r));
      f.profile = {{0.0, 500.0}, {200.0, 500.0}};
      out.push_back(f);
    }
    return out;
  }
  static env::EnvConfig config() {
    env::EnvConfig env_config;
    env_config.episode_seconds = 80.0;
    return env_config;
  }
  static PairUpConfig fast() {
    PairUpConfig c;
    c.hidden = 12;
    c.ppo.epochs = 1;
    return c;
  }
};

TEST(TrainingLoop, RecordsTrainAndEvalHistory) {
  Fixture f;
  PairUpLightTrainer trainer(&f.environment, Fixture::fast());
  TrainingLoopConfig config;
  config.episodes = 6;
  config.eval_every = 3;
  const auto result = run_training_loop(trainer, config);
  EXPECT_EQ(result.train_history.size(), 6u);
  EXPECT_EQ(result.eval_history.size(), 2u);  // after ep 3 and ep 6
  EXPECT_EQ(result.eval_history[0].first, 2u);
  EXPECT_EQ(result.eval_history[1].first, 5u);
  EXPECT_LT(result.best_eval_wait, 1e18);
}

TEST(TrainingLoop, NoEvalWhenDisabled) {
  Fixture f;
  PairUpLightTrainer trainer(&f.environment, Fixture::fast());
  TrainingLoopConfig config;
  config.episodes = 3;
  config.eval_every = 0;
  const auto result = run_training_loop(trainer, config);
  EXPECT_TRUE(result.eval_history.empty());
}

TEST(TrainingLoop, WritesCsvLog) {
  Fixture f;
  PairUpLightTrainer trainer(&f.environment, Fixture::fast());
  TrainingLoopConfig config;
  config.episodes = 2;
  config.eval_every = 2;
  config.log_csv =
      (std::filesystem::temp_directory_path() / "tsc_loop_log.csv").string();
  run_training_loop(trainer, config);
  std::ifstream in(config.log_csv);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "episode,kind,avg_wait,travel_time,mean_reward");
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 3u);  // 2 train + 1 eval
  std::remove(config.log_csv.c_str());
}

TEST(TrainingLoop, SavesBestCheckpoint) {
  Fixture f;
  PairUpLightTrainer trainer(&f.environment, Fixture::fast());
  TrainingLoopConfig config;
  config.episodes = 4;
  config.eval_every = 2;
  config.best_checkpoint_prefix =
      (std::filesystem::temp_directory_path() / "tsc_loop_best").string();
  const auto result = run_training_loop(trainer, config);
  const std::string actor_file = config.best_checkpoint_prefix + "_actor0.bin";
  EXPECT_TRUE(std::filesystem::exists(actor_file));
  // The checkpointed policy reproduces the best eval when loaded back.
  PairUpLightTrainer restored(&f.environment, Fixture::fast());
  restored.load_checkpoint(config.best_checkpoint_prefix);
  const auto replay = restored.eval_episode(config.eval_seed);
  EXPECT_DOUBLE_EQ(replay.avg_wait, result.best_eval_wait);
  std::remove(actor_file.c_str());
  std::remove((config.best_checkpoint_prefix + "_critic0.bin").c_str());
}

TEST(TrainingLoop, WorksWithOtherTrainers) {
  Fixture f;
  baselines::SingleAgentConfig single_config;
  single_config.hidden = 12;
  single_config.ppo.epochs = 1;
  baselines::SingleAgentPpoTrainer trainer(&f.environment, single_config);
  TrainingLoopConfig config;
  config.episodes = 3;
  config.eval_every = 3;
  const auto result = run_training_loop(trainer, config);
  EXPECT_EQ(result.train_history.size(), 3u);
  EXPECT_EQ(result.eval_history.size(), 1u);
}

TEST(RunEpisodes, AggregatesAcrossSeeds) {
  Fixture f;
  baselines::FixedTimeController controller;
  const auto agg = env::run_episodes(f.environment, controller, {1, 2, 3, 4});
  EXPECT_EQ(agg.runs, 4u);
  EXPECT_GT(agg.mean.travel_time, 0.0);
  EXPECT_GE(agg.stddev.travel_time, 0.0);
  // Aggregate of identical seeds has zero spread.
  const auto same = env::run_episodes(f.environment, controller, {7, 7, 7});
  EXPECT_DOUBLE_EQ(same.stddev.travel_time, 0.0);
  EXPECT_DOUBLE_EQ(same.stddev.avg_wait, 0.0);
  EXPECT_THROW(env::run_episodes(f.environment, controller, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace tsc::core
