// Numerical-equivalence harness for the update-mode matrix
// (core/update_engine.hpp):
//   * kSerial and kPerSampleShards are BIT-identical to the single-shard
//     update (the guarantee test_parallel_update.cpp pins with goldens);
//   * kBatchedShards re-associates each weight gradient's row fold at shard
//     boundaries, so it only tracks the serial weights within a tolerance —
//     pinned here after one update and as a documented drift bound over a
//     20-episode run — while remaining exactly reproducible run to run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/trainer.hpp"
#include "src/scenarios/grid.hpp"

namespace tsc {
namespace {

// Same fixture as test_parallel_update.cpp / test_parallel_rollout.cpp so
// the tolerance bounds pin the identical training run.
struct GridFixture {
  scenario::GridScenario grid;
  env::TscEnv environment;

  GridFixture()
      : grid(make_grid()),
        environment(&grid.net(), make_flows(grid), make_env_config(), 1) {}

  static scenario::GridScenario make_grid() {
    scenario::GridConfig config;
    config.rows = 2;
    config.cols = 2;
    return scenario::GridScenario(config);
  }
  static std::vector<sim::FlowSpec> make_flows(const scenario::GridScenario& g) {
    std::vector<sim::FlowSpec> flows;
    for (std::size_t c = 0; c < 2; ++c) {
      sim::FlowSpec f;
      f.route = g.route(g.north_terminal(c), g.south_terminal(c));
      f.profile = {{0.0, 400.0}, {200.0, 400.0}};
      flows.push_back(f);
    }
    return flows;
  }
  static env::EnvConfig make_env_config() {
    env::EnvConfig config;
    config.episode_seconds = 100.0;
    return config;
  }

  core::PairUpConfig fast_config() {
    core::PairUpConfig config;
    config.hidden = 16;
    config.ppo.epochs = 1;
    config.ppo.minibatch = 32;
    config.seed = 7;
    return config;
  }
};

std::vector<double> all_weights(core::PairUpLightTrainer& trainer) {
  std::vector<double> values;
  for (std::size_t m = 0; m < trainer.num_models(); ++m) {
    for (nn::Parameter* p : trainer.actor(m).parameters())
      values.insert(values.end(), p->value.values().begin(),
                    p->value.values().end());
    for (nn::Parameter* p : trainer.critic(m).parameters())
      values.insert(values.end(), p->value.values().begin(),
                    p->value.values().end());
  }
  return values;
}

// max_i |a_i - b_i| / max(|a_i|, |b_i|, 1): relative where weights are
// O(1) or larger, absolute where they are tiny (a near-zero weight pair
// should not register machine noise as huge relative divergence).
double max_relative_divergence(core::PairUpLightTrainer& a,
                               core::PairUpLightTrainer& b) {
  const auto wa = all_weights(a);
  const auto wb = all_weights(b);
  EXPECT_EQ(wa.size(), wb.size());
  double worst = 0.0;
  const std::size_t n = std::min(wa.size(), wb.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double scale = std::max({std::fabs(wa[i]), std::fabs(wb[i]), 1.0});
    worst = std::max(worst, std::fabs(wa[i] - wb[i]) / scale);
  }
  return worst;
}

void expect_weights_identical(core::PairUpLightTrainer& a,
                              core::PairUpLightTrainer& b) {
  const auto wa = all_weights(a);
  const auto wb = all_weights(b);
  ASSERT_EQ(wa.size(), wb.size());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < wa.size(); ++i)
    if (!(wa[i] == wb[i]) && ++mismatches <= 3)
      ADD_FAILURE() << "weight " << i << ": " << wa[i] << " != " << wb[i];
  EXPECT_EQ(mismatches, 0u);
}

// ---------------------------------------------------------------------------
// The exact modes stay exact.

TEST(UpdateModes, SerialModeIgnoresShardCount) {
  // update_mode = kSerial must force the single-threaded batched update even
  // when num_update_shards asks for workers.
  GridFixture f1, f2;
  core::PairUpConfig serial_config = f1.fast_config();  // shards = 1
  core::PairUpConfig forced_config = f2.fast_config();
  forced_config.num_update_shards = 4;
  forced_config.update_mode = core::UpdateMode::kSerial;
  core::PairUpLightTrainer serial(&f1.environment, serial_config);
  core::PairUpLightTrainer forced(&f2.environment, forced_config);
  for (int e = 0; e < 2; ++e) {
    serial.train_episode();
    forced.train_episode();
  }
  expect_weights_identical(serial, forced);
}

TEST(UpdateModes, PerSampleShardsStayBitIdentical) {
  // The explicit mode enum must preserve the historical guarantee the
  // default relied on (test_parallel_update.cpp pins it via the default).
  GridFixture f1, f2;
  core::PairUpConfig sharded_config = f2.fast_config();
  sharded_config.num_update_shards = 3;
  sharded_config.update_mode = core::UpdateMode::kPerSampleShards;
  core::PairUpLightTrainer serial(&f1.environment, f1.fast_config());
  core::PairUpLightTrainer sharded(&f2.environment, sharded_config);
  for (int e = 0; e < 2; ++e) {
    serial.train_episode();
    sharded.train_episode();
  }
  expect_weights_identical(serial, sharded);
}

// ---------------------------------------------------------------------------
// Batched shards: tolerance-bounded equivalence.

TEST(UpdateModes, BatchedMatchesSerialToFloatingPointNoiseAfterOneEpisode) {
  GridFixture serial_f, batched_f;
  core::PairUpConfig batched_config = batched_f.fast_config();
  batched_config.num_update_shards = 4;
  batched_config.update_mode = core::UpdateMode::kBatchedShards;
  core::PairUpLightTrainer serial(&serial_f.environment, serial_f.fast_config());
  core::PairUpLightTrainer batched(&batched_f.environment, batched_config);

  serial.train_episode();
  batched.train_episode();

  // After one episode's updates the only difference is the re-associated
  // gradient fold: divergence must sit at accumulated-rounding scale, far
  // below anything training-visible. (Empirically ~3e-17 on this fixture —
  // machine-epsilon scale; the bound leaves generous slack for other
  // compilers/flags while staying far below training-visible drift.)
  const double divergence = max_relative_divergence(serial, batched);
  EXPECT_LT(divergence, 1e-12) << "batched shards drifted beyond FP noise";
}

TEST(UpdateModes, BatchedDriftStaysBoundedOverTwentyEpisodes) {
  GridFixture serial_f, batched_f;
  core::PairUpConfig batched_config = batched_f.fast_config();
  batched_config.num_update_shards = 4;
  batched_config.update_mode = core::UpdateMode::kBatchedShards;
  core::PairUpLightTrainer serial(&serial_f.environment, serial_f.fast_config());
  core::PairUpLightTrainer batched(&batched_f.environment, batched_config);

  // Rounding differences compound through Adam's moments and, eventually,
  // through sampled actions, so the drift bound over a 20-episode run is
  // necessarily looser than the single-episode one. This pins the
  // DOCUMENTED bound: as long as both runs keep sampling identical
  // trajectories the divergence stays at FP-noise scale; this fixture stays
  // trajectory-identical for all 20 episodes (asserted below), with
  // end-of-run weight divergence empirically ~6e-17.
  for (int e = 0; e < 20; ++e) {
    const auto s1 = serial.train_episode();
    const auto s2 = batched.train_episode();
    EXPECT_DOUBLE_EQ(s1.avg_wait, s2.avg_wait) << "episode " << e;
    EXPECT_EQ(s1.vehicles_finished, s2.vehicles_finished) << "episode " << e;
  }
  const double divergence = max_relative_divergence(serial, batched);
  EXPECT_LT(divergence, 1e-9) << "20-episode batched drift out of bound";
}

TEST(UpdateModes, BatchedIsReproducibleRunToRun) {
  // Not bit-identical to serial, but exactly deterministic for a fixed
  // shard count: shards are folded in index order on the calling thread, so
  // two identical runs must agree to the bit.
  GridFixture f1, f2;
  core::PairUpConfig config1 = f1.fast_config();
  config1.num_update_shards = 3;
  config1.update_mode = core::UpdateMode::kBatchedShards;
  core::PairUpConfig config2 = f2.fast_config();
  config2.num_update_shards = 3;
  config2.update_mode = core::UpdateMode::kBatchedShards;
  core::PairUpLightTrainer t1(&f1.environment, config1);
  core::PairUpLightTrainer t2(&f2.environment, config2);
  for (int e = 0; e < 3; ++e) {
    const auto s1 = t1.train_episode();
    const auto s2 = t2.train_episode();
    EXPECT_DOUBLE_EQ(s1.avg_wait, s2.avg_wait) << "episode " << e;
    EXPECT_DOUBLE_EQ(s1.mean_reward, s2.mean_reward) << "episode " << e;
  }
  expect_weights_identical(t1, t2);
}

TEST(UpdateModes, BatchedTrainingStaysHealthy) {
  // End-to-end sanity in the new mode on its own terms (no serial twin):
  // losses finite, stats populated, uneven shard split (3 does not divide
  // 32) exercised.
  GridFixture f;
  core::PairUpConfig config = f.fast_config();
  config.num_update_shards = 3;
  config.update_mode = core::UpdateMode::kBatchedShards;
  core::PairUpLightTrainer trainer(&f.environment, config);
  for (int e = 0; e < 3; ++e) {
    const auto s = trainer.train_episode();
    EXPECT_TRUE(std::isfinite(s.mean_reward));
    EXPECT_TRUE(std::isfinite(s.avg_wait));
    EXPECT_GT(s.vehicles_spawned, 0u);
  }
  const auto ev = trainer.eval_episode(77);
  EXPECT_TRUE(std::isfinite(ev.travel_time));
  for (double w : all_weights(trainer)) EXPECT_TRUE(std::isfinite(w));
}

}  // namespace
}  // namespace tsc
