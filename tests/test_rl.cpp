#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/tape.hpp"
#include "src/rl/gae.hpp"
#include "src/rl/ppo.hpp"
#include "src/rl/replay.hpp"
#include "src/rl/rollout.hpp"
#include "src/util/rng.hpp"

namespace tsc::rl {
namespace {

TEST(Gae, HandComputedTwoSteps) {
  // gamma=0.9, lambda=0.8, rewards={1,2}, values={0.5,0.4}, bootstrap=0.3.
  const auto out = compute_gae({1.0, 2.0}, {0.5, 0.4}, 0.3, 0.9, 0.8);
  const double delta1 = 2.0 + 0.9 * 0.3 - 0.4;          // 1.87
  const double delta0 = 1.0 + 0.9 * 0.4 - 0.5;          // 0.86
  const double adv1 = delta1;
  const double adv0 = delta0 + 0.9 * 0.8 * adv1;
  EXPECT_NEAR(out.advantages[1], adv1, 1e-12);
  EXPECT_NEAR(out.advantages[0], adv0, 1e-12);
  EXPECT_NEAR(out.returns[0], adv0 + 0.5, 1e-12);
  EXPECT_NEAR(out.returns[1], adv1 + 0.4, 1e-12);
}

TEST(Gae, LambdaZeroIsOneStepTd) {
  const auto out = compute_gae({1.0, 1.0, 1.0}, {2.0, 3.0, 4.0}, 5.0, 0.9, 0.0);
  EXPECT_NEAR(out.advantages[0], 1.0 + 0.9 * 3.0 - 2.0, 1e-12);
  EXPECT_NEAR(out.advantages[1], 1.0 + 0.9 * 4.0 - 3.0, 1e-12);
  EXPECT_NEAR(out.advantages[2], 1.0 + 0.9 * 5.0 - 4.0, 1e-12);
}

TEST(Gae, LambdaOneIsMonteCarloMinusValue) {
  const std::vector<double> r = {1.0, 2.0, 3.0};
  const std::vector<double> v = {0.5, 0.5, 0.5};
  const double boot = 2.0;
  const auto out = compute_gae(r, v, boot, 0.9, 1.0);
  // Return-to-go: G2 = 3 + .9*2 = 4.8; G1 = 2 + .9*4.8; G0 = 1 + .9*G1.
  const double g2 = 3.0 + 0.9 * boot;
  const double g1 = 2.0 + 0.9 * g2;
  const double g0 = 1.0 + 0.9 * g1;
  EXPECT_NEAR(out.advantages[0], g0 - 0.5, 1e-12);
  EXPECT_NEAR(out.advantages[1], g1 - 0.5, 1e-12);
  EXPECT_NEAR(out.advantages[2], g2 - 0.5, 1e-12);
  EXPECT_NEAR(out.returns[2], g2, 1e-12);
}

TEST(Gae, EmptyTrajectory) {
  const auto out = compute_gae({}, {}, 0.0, 0.9, 0.95);
  EXPECT_TRUE(out.advantages.empty());
  EXPECT_TRUE(out.returns.empty());
}

TEST(EpsilonSchedule, LinearDecay) {
  PpoConfig config;
  config.epsilon_start = 1.0;
  config.epsilon_end = 0.1;
  config.epsilon_decay_episodes = 10;
  EXPECT_DOUBLE_EQ(epsilon_at(0, config), 1.0);
  EXPECT_NEAR(epsilon_at(5, config), 0.55, 1e-12);
  EXPECT_DOUBLE_EQ(epsilon_at(10, config), 0.1);
  EXPECT_DOUBLE_EQ(epsilon_at(100, config), 0.1);
  config.epsilon_decay_episodes = 0;
  EXPECT_DOUBLE_EQ(epsilon_at(0, config), 0.1);
}

TEST(PolicyEntropy, UniformIsLogN) {
  nn::Tape tape;
  nn::Var logits = tape.constant(nn::Tensor::zeros(3, 4));
  const double h = tape.value(policy_entropy(tape, logits))[0];
  EXPECT_NEAR(h, std::log(4.0), 1e-10);
}

TEST(PolicyEntropy, PeakedIsNearZero) {
  nn::Tape tape;
  nn::Tensor t = nn::Tensor::zeros(1, 3);
  t.at(0, 0) = 50.0;
  nn::Var logits = tape.constant(std::move(t));
  EXPECT_NEAR(tape.value(policy_entropy(tape, logits))[0], 0.0, 1e-9);
}

TEST(PpoLoss, ZeroWhenPolicyUnchangedAndValueExact) {
  // ratio = 1 everywhere, advantage mean-zero, values == returns, no
  // entropy coefficient -> loss = -mean(adv) = 0.
  PpoConfig config;
  config.entropy_coef = 0.0;
  config.value_coef = 0.5;
  nn::Tape tape;
  const std::vector<double> old_logp = {-1.0, -2.0};
  const std::vector<double> adv = {1.0, -1.0};
  const std::vector<double> ret = {3.0, 4.0};
  nn::Var new_logp = tape.constant(nn::Tensor::matrix(2, 1, {-1.0, -2.0}));
  nn::Var values = tape.constant(nn::Tensor::matrix(2, 1, {3.0, 4.0}));
  nn::Var entropy = tape.constant(nn::Tensor::vector({0.7}));
  nn::Var loss =
      ppo_total_loss(tape, new_logp, entropy, values, old_logp, adv, ret, config);
  EXPECT_NEAR(tape.value(loss)[0], 0.0, 1e-12);
}

TEST(PpoLoss, ClipsLargeRatios) {
  // A huge positive log-ratio with positive advantage must be clipped to
  // (1+eps)*adv, not rewarded unboundedly.
  PpoConfig config;
  config.clip_eps = 0.2;
  config.entropy_coef = 0.0;
  config.value_coef = 0.0;
  nn::Tape tape;
  nn::Var new_logp = tape.constant(nn::Tensor::matrix(1, 1, {5.0}));
  nn::Var values = tape.constant(nn::Tensor::matrix(1, 1, {0.0}));
  nn::Var entropy = tape.constant(nn::Tensor::vector({0.0}));
  nn::Var loss = ppo_total_loss(tape, new_logp, entropy, values, {0.0}, {2.0},
                                {0.0}, config);
  // min(e^5 * 2, 1.2 * 2) = 2.4 -> loss = -2.4.
  EXPECT_NEAR(tape.value(loss)[0], -2.4, 1e-9);
}

TEST(PpoLoss, PessimisticOnNegativeAdvantage) {
  // For negative advantage the unclipped (more negative) branch is taken
  // when the ratio grows: min picks the worse objective.
  PpoConfig config;
  config.clip_eps = 0.2;
  config.entropy_coef = 0.0;
  config.value_coef = 0.0;
  nn::Tape tape;
  nn::Var new_logp = tape.constant(nn::Tensor::matrix(1, 1, {1.0}));
  nn::Var values = tape.constant(nn::Tensor::matrix(1, 1, {0.0}));
  nn::Var entropy = tape.constant(nn::Tensor::vector({0.0}));
  nn::Var loss = ppo_total_loss(tape, new_logp, entropy, values, {0.0}, {-1.0},
                                {0.0}, config);
  // min(e^1 * -1, 1.2 * -1) = -e -> loss = e.
  EXPECT_NEAR(tape.value(loss)[0], std::exp(1.0), 1e-9);
}

TEST(PpoLoss, EntropyBonusLowersLoss) {
  PpoConfig config;
  config.entropy_coef = 0.5;
  config.value_coef = 0.0;
  nn::Tape t1, t2;
  auto mk = [&](nn::Tape& tape, double h) {
    nn::Var new_logp = tape.constant(nn::Tensor::matrix(1, 1, {0.0}));
    nn::Var values = tape.constant(nn::Tensor::matrix(1, 1, {0.0}));
    nn::Var entropy = tape.constant(nn::Tensor::vector({h}));
    return tape.value(ppo_total_loss(tape, new_logp, entropy, values, {0.0},
                                     {0.0}, {0.0}, config))[0];
  };
  EXPECT_LT(mk(t1, 1.0), mk(t2, 0.0));
}

TEST(Rollout, FinishAgentFillsAdvantages) {
  RolloutBuffer buffer(2);
  for (int t = 0; t < 3; ++t) {
    Sample s;
    s.reward = 1.0;
    s.value = 0.0;
    buffer.add(0, s);
    buffer.add(1, s);
  }
  buffer.finish_agent(0, 0.0, 1.0, 1.0);
  buffer.finish_agent(1, 0.0, 0.0, 0.0);  // gamma 0: adv = r - v
  const auto& a0 = buffer.agent_samples(0);
  EXPECT_NEAR(a0[0].ret, 3.0, 1e-12);
  EXPECT_NEAR(a0[2].ret, 1.0, 1e-12);
  const auto& a1 = buffer.agent_samples(1);
  EXPECT_NEAR(a1[0].advantage, 1.0, 1e-12);
}

TEST(Rollout, FlattenNormalizesAdvantages) {
  RolloutBuffer buffer(1);
  for (double r : {1.0, 2.0, 3.0, 4.0}) {
    Sample s;
    s.reward = r;
    s.value = 0.0;
    buffer.add(0, s);
  }
  buffer.finish_agent(0, 0.0, 0.0, 0.0);  // adv = rewards
  auto flat = buffer.flatten(true);
  ASSERT_EQ(flat.size(), 4u);
  double mean = 0.0, var = 0.0;
  for (auto* s : flat) mean += s->advantage;
  mean /= 4.0;
  for (auto* s : flat) var += (s->advantage - mean) * (s->advantage - mean);
  EXPECT_NEAR(mean, 0.0, 1e-12);
  EXPECT_NEAR(var / 4.0, 1.0, 1e-12);
}

TEST(Rollout, LastAndClear) {
  RolloutBuffer buffer(1);
  Sample s;
  s.action = 3;
  buffer.add(0, s);
  buffer.last(0).reward = 7.0;
  EXPECT_DOUBLE_EQ(buffer.agent_samples(0)[0].reward, 7.0);
  buffer.clear();
  EXPECT_EQ(buffer.total_samples(), 0u);
}

TEST(Replay, RingOverwritesOldest) {
  ReplayBuffer<int> buffer(3);
  for (int i = 0; i < 5; ++i) buffer.push(i);
  EXPECT_EQ(buffer.size(), 3u);
  Rng rng(1);
  // Only values 2,3,4 remain.
  for (int i = 0; i < 50; ++i) {
    const int v = *buffer.sample(1, rng)[0];
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 4);
  }
}

TEST(Replay, SampleSizeAndClear) {
  ReplayBuffer<int> buffer(10);
  buffer.push(42);
  Rng rng(2);
  const auto batch = buffer.sample(4, rng);
  EXPECT_EQ(batch.size(), 4u);
  for (auto* p : batch) EXPECT_EQ(*p, 42);
  buffer.clear();
  EXPECT_TRUE(buffer.empty());
}

}  // namespace
}  // namespace tsc::rl
