#include <gtest/gtest.h>

#include <set>

#include "src/scenarios/flow_patterns.hpp"
#include "src/scenarios/grid.hpp"
#include "src/scenarios/monaco.hpp"
#include "src/sim/simulator.hpp"

namespace tsc::scenario {
namespace {

TEST(Grid, NodeAndLinkCounts) {
  GridConfig config;
  config.rows = 3;
  config.cols = 4;
  GridScenario grid(config);
  // 12 interior + 2*3 west/east + 2*4 north/south terminals.
  EXPECT_EQ(grid.net().num_nodes(), 12u + 6u + 8u);
  // Horizontal: 3 rows * 5 segments * 2 dirs; vertical: 4 cols * 4 segs * 2.
  EXPECT_EQ(grid.net().num_links(), 3u * 5u * 2u + 4u * 4u * 2u);
  EXPECT_EQ(grid.net().signalized_nodes().size(), 12u);
}

TEST(Grid, LaneConfiguration) {
  GridScenario grid(GridConfig{});
  // Horizontal (west-east) links have 2 lanes, vertical 1.
  const auto we = grid.link_between(grid.intersection(0, 0), grid.intersection(0, 1));
  const auto ns = grid.link_between(grid.intersection(0, 0), grid.intersection(1, 0));
  EXPECT_EQ(grid.net().link(we).lanes, 2u);
  EXPECT_EQ(grid.net().link(ns).lanes, 1u);
  EXPECT_DOUBLE_EQ(grid.net().link(we).length, 200.0);
}

TEST(Grid, InteriorNodeHasTwelveMovementsAndFourPhases) {
  GridScenario grid(GridConfig{});
  const auto node = grid.net().node(grid.intersection(2, 2));
  EXPECT_EQ(node.in_links.size(), 4u);
  std::size_t movements = 0;
  for (auto lid : node.in_links)
    movements += grid.net().link(lid).out_movements.size();
  EXPECT_EQ(movements, 12u);  // 4 approaches x (L, T, R)
  ASSERT_EQ(node.phases.size(), 4u);
  // Phases partition all movements at the node.
  std::set<sim::MovementId> seen;
  std::size_t total = 0;
  for (const auto& phase : node.phases) {
    total += phase.size();
    seen.insert(phase.begin(), phase.end());
  }
  EXPECT_EQ(total, 12u);
  EXPECT_EQ(seen.size(), 12u);
}

TEST(Grid, ArterialLanePolicySeparatesLeftTurns) {
  GridScenario grid(GridConfig{});
  const auto node = grid.net().node(grid.intersection(1, 1));
  for (auto lid : node.in_links) {
    const auto& link = grid.net().link(lid);
    for (auto mid : link.out_movements) {
      const auto& m = grid.net().movement(mid);
      if (link.lanes == 2) {
        if (m.turn == sim::Turn::kLeft) {
          EXPECT_EQ(m.allowed_lanes, std::vector<std::uint32_t>{0});
        } else {
          EXPECT_EQ(m.allowed_lanes, std::vector<std::uint32_t>{1});
        }
      } else {
        // Single shared lane: every movement uses lane 0 (HoL blocking).
        EXPECT_EQ(m.allowed_lanes, std::vector<std::uint32_t>{0});
      }
    }
  }
}

TEST(Grid, RoutesConnectTerminals) {
  GridScenario grid(GridConfig{});
  const auto straight = grid.route(grid.west_terminal(2), grid.east_terminal(2));
  EXPECT_EQ(straight.size(), 7u);  // 6 cols + exit link
  const auto l_shape = grid.route(grid.north_terminal(1), grid.east_terminal(4));
  EXPECT_GE(l_shape.size(), 2u);
  // Route hops must all be movement-consistent.
  for (std::size_t i = 0; i + 1 < l_shape.size(); ++i)
    EXPECT_NE(grid.net().find_movement(l_shape[i], l_shape[i + 1]), sim::kInvalidId);
}

TEST(Grid, RejectsDegenerateConfigs) {
  GridConfig config;
  config.rows = 0;
  EXPECT_THROW(GridScenario{config}, std::invalid_argument);
}

TEST(Grid, NeighborGraphMatchesLattice) {
  GridScenario grid(GridConfig{});
  const auto center = grid.intersection(2, 3);
  const auto neighbors = grid.net().neighbor_signalized(center);
  EXPECT_EQ(neighbors.size(), 4u);
  const auto corner = grid.intersection(0, 0);
  EXPECT_EQ(grid.net().neighbor_signalized(corner).size(), 2u);
}

// ---------------------------------------------------------------------------

class FlowPatternTest : public ::testing::TestWithParam<FlowPattern> {};

TEST_P(FlowPatternTest, RoutesAreValidAndSimulable) {
  GridScenario grid(GridConfig{});
  FlowPatternConfig config;
  config.time_scale = 0.1;
  const auto flows = make_flow_pattern(grid, GetParam(), config);
  ASSERT_FALSE(flows.empty());
  // Constructing a simulator validates every route end-to-end.
  sim::Simulator sim(&grid.net(), flows, sim::SimConfig{}, 1);
  sim.step_seconds(30.0);
  EXPECT_GT(sim.vehicles_spawned(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, FlowPatternTest,
                         ::testing::Values(FlowPattern::kPattern1,
                                           FlowPattern::kPattern2,
                                           FlowPattern::kPattern3,
                                           FlowPattern::kPattern4,
                                           FlowPattern::kPattern5),
                         [](const auto& info) {
                           return std::string(flow_pattern_name(info.param))
                               .substr(8)
                               .insert(0, "Pattern");
                         });

TEST(FlowPatterns, CongestedPatternsHaveSixteenOdPairs) {
  GridScenario grid(GridConfig{});
  for (auto p : {FlowPattern::kPattern1, FlowPattern::kPattern2,
                 FlowPattern::kPattern3, FlowPattern::kPattern4}) {
    EXPECT_EQ(make_flow_pattern(grid, p).size(), 16u) << flow_pattern_name(p);
  }
}

TEST(FlowPatterns, StaggeredWaves) {
  GridScenario grid(GridConfig{});
  const auto flows = make_flow_pattern(grid, FlowPattern::kPattern1);
  // Half the flows ramp from t=0 (forward), half start at t=900 (reverse).
  std::size_t forward = 0, reverse = 0;
  for (const auto& f : flows) {
    if (f.rate_at(450.0) > 0.0) ++forward;
    if (f.rate_at(450.0) == 0.0 && f.rate_at(2000.0) > 0.0) ++reverse;
  }
  EXPECT_EQ(forward, 8u);
  EXPECT_EQ(reverse, 8u);
  // During the overlap window all 16 O-D pairs are active (paper VI-A).
  std::size_t active_at_overlap = 0;
  for (const auto& f : flows)
    if (f.rate_at(1500.0) > 0.0) ++active_at_overlap;
  EXPECT_EQ(active_at_overlap, 16u);
}

TEST(FlowPatterns, PeakRateMatchesConfig) {
  GridScenario grid(GridConfig{});
  FlowPatternConfig config;
  config.peak_veh_per_hour = 500.0;
  const auto flows = make_flow_pattern(grid, FlowPattern::kPattern1, config);
  double max_rate = 0.0;
  for (const auto& f : flows)
    for (double t = 0; t <= 2700; t += 100) max_rate = std::max(max_rate, f.rate_at(t));
  EXPECT_DOUBLE_EQ(max_rate, 500.0);
}

TEST(FlowPatterns, Pattern5IsUniformAndLight) {
  GridScenario grid(GridConfig{});
  const auto flows = make_flow_pattern(grid, FlowPattern::kPattern5);
  EXPECT_EQ(flows.size(), 12u);  // 6 rows WE + 6 cols SN
  std::size_t we = 0, sn = 0;
  for (const auto& f : flows) {
    const double r = f.rate_at(100.0);
    if (r == 300.0) ++we;
    if (r == 90.0) ++sn;
  }
  EXPECT_EQ(we, 6u);
  EXPECT_EQ(sn, 6u);
}

TEST(FlowPatterns, TimeScaleCompressesSchedule) {
  GridScenario grid(GridConfig{});
  FlowPatternConfig config;
  config.time_scale = 0.5;
  const auto flows = make_flow_pattern(grid, FlowPattern::kPattern1, config);
  // Forward flows peak at 450 s instead of 900 s.
  EXPECT_DOUBLE_EQ(flows[0].rate_at(450.0), 500.0);
  EXPECT_DOUBLE_EQ(flows[0].rate_at(1000.0), 0.0);
}

TEST(FlowPatterns, TooSmallGridThrows) {
  GridConfig config;
  config.rows = 3;
  config.cols = 3;
  GridScenario grid(config);
  EXPECT_THROW(make_flow_pattern(grid, FlowPattern::kPattern1),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------

TEST(Monaco, ThirtySignalizedHeterogeneousIntersections) {
  MonacoScenario monaco;
  EXPECT_EQ(monaco.net().signalized_nodes().size(), 30u);
  // Heterogeneous phase counts (split phasing by degree).
  std::set<std::size_t> phase_counts;
  for (auto node : monaco.net().signalized_nodes())
    phase_counts.insert(monaco.net().node(node).phases.size());
  EXPECT_GE(phase_counts.size(), 2u);
  // Heterogeneous lane counts.
  std::set<std::uint32_t> lane_counts;
  for (const auto& link : monaco.net().links()) lane_counts.insert(link.lanes);
  EXPECT_EQ(lane_counts, (std::set<std::uint32_t>{1u, 2u}));
}

TEST(Monaco, DeterministicForSeed) {
  MonacoConfig config;
  MonacoScenario a(config), b(config);
  EXPECT_EQ(a.net().num_links(), b.net().num_links());
  EXPECT_EQ(a.net().num_movements(), b.net().num_movements());
  config.seed = 99;
  MonacoScenario c(config);
  // A different seed produces a structurally different network (with very
  // high probability: jitter, dropped edges, lane draws all change).
  EXPECT_TRUE(a.net().num_movements() != c.net().num_movements() ||
              a.net().num_links() != c.net().num_links() ||
              a.net().node(0).x != c.net().node(0).x);
}

TEST(Monaco, FlowsAreSimulable) {
  MonacoScenario monaco;
  const auto flows = monaco.make_flows(975.0, 0.1, 6, 13);
  EXPECT_EQ(flows.size(), 12u);
  double peak = 0.0;
  for (const auto& f : flows)
    for (double t = 0; t <= 250; t += 10) peak = std::max(peak, f.rate_at(t));
  EXPECT_DOUBLE_EQ(peak, 975.0);
  sim::Simulator sim(&monaco.net(), flows, sim::SimConfig{}, 3);
  sim.step_seconds(60.0);
  EXPECT_GT(sim.vehicles_spawned(), 0u);
}

TEST(Monaco, EveryIntersectionRemainsEscapable) {
  // Every in-link at every signalized node must have at least one movement
  // (no dead ends), and all its movements appear in some phase (checked by
  // finalize, but assert the degree-2 invariant the builder promises).
  MonacoScenario monaco;
  for (auto node_id : monaco.net().signalized_nodes()) {
    const auto& node = monaco.net().node(node_id);
    EXPECT_GE(node.out_links.size(), 2u);
    for (auto lid : node.in_links)
      EXPECT_FALSE(monaco.net().link(lid).out_movements.empty());
  }
}

}  // namespace
}  // namespace tsc::scenario
