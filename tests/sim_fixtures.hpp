// Hand-built miniature networks for simulator tests.
#pragma once

#include <vector>

#include "src/sim/flow.hpp"
#include "src/sim/network.hpp"

namespace tsc::test {

/// B0 --L0--> M --L1--> B1 with an unsignalized middle node (through only).
struct Chain {
  sim::RoadNetwork net;
  sim::NodeId b0, mid, b1;
  sim::LinkId l0, l1;

  explicit Chain(double length = 200.0, std::uint32_t lanes = 1,
                 double speed = 10.0) {
    b0 = net.add_node(sim::NodeType::kBoundary, -length, 0, "B0");
    mid = net.add_node(sim::NodeType::kUnsignalized, 0, 0, "M");
    b1 = net.add_node(sim::NodeType::kBoundary, length, 0, "B1");
    l0 = net.add_link(b0, mid, length, lanes, speed, "L0");
    l1 = net.add_link(mid, b1, length, lanes, speed, "L1");
    std::vector<std::uint32_t> all_lanes;
    for (std::uint32_t i = 0; i < lanes; ++i) all_lanes.push_back(i);
    net.add_movement(l0, l1, sim::Turn::kThrough, all_lanes);
    net.finalize();
  }

  sim::FlowSpec flow(std::vector<sim::RateKnot> profile) const {
    sim::FlowSpec f;
    f.route = {l0, l1};
    f.profile = std::move(profile);
    return f;
  }
};

/// A single signalized 4-way crossing with through movements only.
/// Phase 0: north-south green; phase 1: west-east green.
/// Node layout: terminals N/E/S/W around signalized C.
struct Cross {
  sim::RoadNetwork net;
  sim::NodeId center;
  sim::NodeId n, e, s, w;
  sim::LinkId n_in, s_out;  // north terminal -> center -> south terminal
  sim::LinkId s_in, n_out;
  sim::LinkId w_in, e_out;
  sim::LinkId e_in, w_out;
  sim::MovementId m_ns, m_sn, m_we, m_ew;

  explicit Cross(double length = 200.0, double speed = 10.0,
                 std::uint32_t lanes = 1) {
    center = net.add_node(sim::NodeType::kSignalized, 0, 0, "C");
    n = net.add_node(sim::NodeType::kBoundary, 0, length, "N");
    s = net.add_node(sim::NodeType::kBoundary, 0, -length, "S");
    w = net.add_node(sim::NodeType::kBoundary, -length, 0, "W");
    e = net.add_node(sim::NodeType::kBoundary, length, 0, "E");
    n_in = net.add_link(n, center, length, lanes, speed, "n_in");
    s_out = net.add_link(center, s, length, lanes, speed, "s_out");
    s_in = net.add_link(s, center, length, lanes, speed, "s_in");
    n_out = net.add_link(center, n, length, lanes, speed, "n_out");
    w_in = net.add_link(w, center, length, lanes, speed, "w_in");
    e_out = net.add_link(center, e, length, lanes, speed, "e_out");
    e_in = net.add_link(e, center, length, lanes, speed, "e_in");
    w_out = net.add_link(center, w, length, lanes, speed, "w_out");
    std::vector<std::uint32_t> all_lanes;
    for (std::uint32_t i = 0; i < lanes; ++i) all_lanes.push_back(i);
    m_ns = net.add_movement(n_in, s_out, sim::Turn::kThrough, all_lanes);
    m_sn = net.add_movement(s_in, n_out, sim::Turn::kThrough, all_lanes);
    m_we = net.add_movement(w_in, e_out, sim::Turn::kThrough, all_lanes);
    m_ew = net.add_movement(e_in, w_out, sim::Turn::kThrough, all_lanes);
    net.set_phases(center, {{m_ns, m_sn}, {m_we, m_ew}});
    net.finalize();
  }

  sim::FlowSpec flow_ns(std::vector<sim::RateKnot> profile) const {
    sim::FlowSpec f;
    f.route = {n_in, s_out};
    f.profile = std::move(profile);
    return f;
  }
  sim::FlowSpec flow_we(std::vector<sim::RateKnot> profile) const {
    sim::FlowSpec f;
    f.route = {w_in, e_out};
    f.profile = std::move(profile);
    return f;
  }
};

}  // namespace tsc::test
