// Property sweeps over the scenario generators: structural invariants that
// must hold for every grid geometry and every Monaco seed.
#include <gtest/gtest.h>

#include <set>

#include "src/scenarios/flow_patterns.hpp"
#include "src/scenarios/grid.hpp"
#include "src/scenarios/monaco.hpp"
#include "src/sim/conflicts.hpp"
#include "src/sim/simulator.hpp"

namespace tsc::scenario {
namespace {

// ---------------------------------------------------------------------------
// Grid sweep.

struct GridCase {
  std::size_t rows, cols;
  std::uint32_t arterial_lanes, avenue_lanes;
};

std::string grid_case_name(const ::testing::TestParamInfo<GridCase>& info) {
  const GridCase& c = info.param;
  return std::to_string(c.rows) + "x" + std::to_string(c.cols) + "_a" +
         std::to_string(c.arterial_lanes) + "v" + std::to_string(c.avenue_lanes);
}

class GridSweep : public ::testing::TestWithParam<GridCase> {
 protected:
  GridScenario build() const {
    GridConfig config;
    config.rows = GetParam().rows;
    config.cols = GetParam().cols;
    config.arterial_lanes = GetParam().arterial_lanes;
    config.avenue_lanes = GetParam().avenue_lanes;
    return GridScenario(config);
  }
};

TEST_P(GridSweep, NodeAndLinkCountFormulas) {
  const auto grid = build();
  const std::size_t r = GetParam().rows, c = GetParam().cols;
  EXPECT_EQ(grid.net().num_nodes(), r * c + 2 * r + 2 * c);
  // Horizontal segments: r rows x (c+1); vertical: c cols x (r+1); both
  // directions.
  EXPECT_EQ(grid.net().num_links(), 2 * (r * (c + 1) + c * (r + 1)));
  EXPECT_EQ(grid.net().signalized_nodes().size(), r * c);
}

TEST_P(GridSweep, PhasesPartitionMovementsEverywhere) {
  const auto grid = build();
  for (auto node_id : grid.net().signalized_nodes()) {
    const auto& node = grid.net().node(node_id);
    std::size_t at_node = 0;
    for (auto lid : node.in_links)
      at_node += grid.net().link(lid).out_movements.size();
    std::set<sim::MovementId> covered;
    for (const auto& phase : node.phases)
      covered.insert(phase.begin(), phase.end());
    EXPECT_EQ(covered.size(), at_node);
    EXPECT_EQ(node.phases.size(), 4u);
  }
}

TEST_P(GridSweep, PhaseTablesAreConflictFree) {
  const auto grid = build();
  EXPECT_TRUE(sim::audit_phase_conflicts(grid.net()).empty());
}

TEST_P(GridSweep, AllStraightCorridorsRoutable) {
  const auto grid = build();
  for (std::size_t row = 0; row < GetParam().rows; ++row) {
    const auto route = grid.route(grid.west_terminal(row), grid.east_terminal(row));
    EXPECT_EQ(route.size(), GetParam().cols + 1);
  }
  for (std::size_t col = 0; col < GetParam().cols; ++col) {
    const auto route =
        grid.route(grid.north_terminal(col), grid.south_terminal(col));
    EXPECT_EQ(route.size(), GetParam().rows + 1);
  }
}

TEST_P(GridSweep, ShortSimulationRunsClean) {
  const auto grid = build();
  // Uniform entry demand on every western row.
  std::vector<sim::FlowSpec> flows;
  for (std::size_t row = 0; row < GetParam().rows; ++row) {
    sim::FlowSpec f;
    f.route = grid.route(grid.west_terminal(row), grid.east_terminal(row));
    f.profile = {{0.0, 400.0}, {120.0, 400.0}};
    flows.push_back(f);
  }
  sim::Simulator sim(&grid.net(), flows, sim::SimConfig{}, 3);
  sim.step_seconds(120.0);
  EXPECT_GT(sim.vehicles_spawned(), 0u);
  for (sim::LinkId l = 0; l < grid.net().num_links(); ++l)
    EXPECT_LE(sim.link_count(l), sim.link_capacity(l));
}

INSTANTIATE_TEST_SUITE_P(Geometries, GridSweep,
                         ::testing::Values(GridCase{2, 3, 2, 1},
                                           GridCase{3, 2, 1, 1},
                                           GridCase{4, 4, 2, 2},
                                           GridCase{5, 3, 3, 1},
                                           GridCase{6, 6, 2, 1}),
                         grid_case_name);

// ---------------------------------------------------------------------------
// Monaco seed sweep.

class MonacoSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MonacoSweep, StructuralInvariantsAcrossSeeds) {
  MonacoConfig config;
  config.seed = GetParam();
  MonacoScenario monaco(config);
  // Always exactly 30 signalized intersections.
  EXPECT_EQ(monaco.net().signalized_nodes().size(), 30u);
  // Degree >= 2 everywhere and no dead-end approaches.
  for (auto node_id : monaco.net().signalized_nodes()) {
    const auto& node = monaco.net().node(node_id);
    EXPECT_GE(node.out_links.size(), 2u);
    for (auto lid : node.in_links)
      EXPECT_FALSE(monaco.net().link(lid).out_movements.empty());
  }
  // Split phasing is conflict-free by construction.
  EXPECT_TRUE(sim::audit_phase_conflicts(monaco.net()).empty());
  // Terminals exist and flows are buildable + simulable.
  EXPECT_GE(monaco.terminals().size(), 4u);
  const auto flows = monaco.make_flows(600.0, 0.05, 4, GetParam() + 1);
  sim::Simulator sim(&monaco.net(), flows, sim::SimConfig{}, 5);
  sim.step_seconds(60.0);
  EXPECT_GT(sim.vehicles_spawned(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonacoSweep, ::testing::Values(1, 7, 13, 42, 99),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Flow-pattern property: every pattern's every route starts and ends at
// boundary terminals and has a positive expected vehicle count.

class PatternSweep : public ::testing::TestWithParam<FlowPattern> {};

TEST_P(PatternSweep, RoutesTerminateAtBoundaries) {
  GridScenario grid{GridConfig{}};
  const auto flows = make_flow_pattern(grid, GetParam());
  for (const auto& f : flows) {
    const auto& first = grid.net().link(f.route.front());
    const auto& last = grid.net().link(f.route.back());
    EXPECT_EQ(grid.net().node(first.from).type, sim::NodeType::kBoundary);
    EXPECT_EQ(grid.net().node(last.to).type, sim::NodeType::kBoundary);
    EXPECT_GT(f.expected_vehicles(3600.0), 1.0);
  }
}

TEST_P(PatternSweep, CongestedPatternsContainTurningRoutes) {
  if (GetParam() == FlowPattern::kPattern5) GTEST_SKIP() << "uniform pattern";
  GridScenario grid{GridConfig{}};
  const auto flows = make_flow_pattern(grid, GetParam());
  std::size_t turning_routes = 0;
  for (const auto& f : flows) {
    for (std::size_t i = 0; i + 1 < f.route.size(); ++i) {
      const auto mid = grid.net().find_movement(f.route[i], f.route[i + 1]);
      if (grid.net().movement(mid).turn != sim::Turn::kThrough) {
        ++turning_routes;
        break;
      }
    }
  }
  // The Fig. 6-style OD structure guarantees turning traffic.
  EXPECT_GE(turning_routes, 4u);
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, PatternSweep,
                         ::testing::Values(FlowPattern::kPattern1,
                                           FlowPattern::kPattern2,
                                           FlowPattern::kPattern3,
                                           FlowPattern::kPattern4,
                                           FlowPattern::kPattern5),
                         [](const auto& info) {
                           return std::string("P") +
                                  std::to_string(static_cast<int>(info.param));
                         });

}  // namespace
}  // namespace tsc::scenario
