// Tests for the movement-conflict auditor and the IDQN baseline.
#include <gtest/gtest.h>

#include "sim_fixtures.hpp"
#include "src/baselines/idqn.hpp"
#include "src/scenarios/grid.hpp"
#include "src/scenarios/monaco.hpp"
#include "src/sim/conflicts.hpp"

namespace tsc {
namespace {

TEST(Conflicts, CrossingThroughMovementsConflict) {
  test::Cross cross;
  // North-south through vs west-east through cross at the center.
  EXPECT_TRUE(sim::movements_conflict(cross.net, cross.m_ns, cross.m_we));
  EXPECT_TRUE(sim::movements_conflict(cross.net, cross.m_sn, cross.m_ew));
}

TEST(Conflicts, OpposingThroughMovementsCompatible) {
  test::Cross cross;
  // NS and SN throughs run on opposite sides of the road: no crossing.
  EXPECT_FALSE(sim::movements_conflict(cross.net, cross.m_ns, cross.m_sn));
  EXPECT_FALSE(sim::movements_conflict(cross.net, cross.m_we, cross.m_ew));
}

TEST(Conflicts, SelfAndSameLinkCompatible) {
  test::Cross cross;
  EXPECT_FALSE(sim::movements_conflict(cross.net, cross.m_ns, cross.m_ns));
}

TEST(Conflicts, CrossPhaseTableIsConflictFree) {
  test::Cross cross;
  EXPECT_TRUE(sim::phase_conflicts(cross.net, cross.center).empty());
  EXPECT_TRUE(sim::audit_phase_conflicts(cross.net).empty());
}

TEST(Conflicts, BadPhaseTableDetected) {
  // Build a crossing whose single phase greens both crossing throughs.
  sim::RoadNetwork net;
  const auto c = net.add_node(sim::NodeType::kSignalized, 0, 0, "C");
  const auto n = net.add_node(sim::NodeType::kBoundary, 0, 200, "N");
  const auto s = net.add_node(sim::NodeType::kBoundary, 0, -200, "S");
  const auto w = net.add_node(sim::NodeType::kBoundary, -200, 0, "W");
  const auto e = net.add_node(sim::NodeType::kBoundary, 200, 0, "E");
  const auto n_in = net.add_link(n, c, 200, 1, 10);
  const auto s_out = net.add_link(c, s, 200, 1, 10);
  const auto w_in = net.add_link(w, c, 200, 1, 10);
  const auto e_out = net.add_link(c, e, 200, 1, 10);
  const auto m1 = net.add_movement(n_in, s_out, sim::Turn::kThrough, {0});
  const auto m2 = net.add_movement(w_in, e_out, sim::Turn::kThrough, {0});
  net.set_phases(c, {{m1, m2}});  // both crossing movements green together
  net.finalize();
  const auto violations = sim::audit_phase_conflicts(net);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].node, c);
}

TEST(Conflicts, GeneratedScenariosAreConflictFree) {
  // The paper's four-phase grid plan must not green crossing movements.
  scenario::GridScenario grid(scenario::GridConfig{});
  EXPECT_TRUE(sim::audit_phase_conflicts(grid.net()).empty());
  // Monaco's split phasing greens one approach at a time: also clean.
  scenario::MonacoScenario monaco;
  EXPECT_TRUE(sim::audit_phase_conflicts(monaco.net()).empty());
}

// ---------------------------------------------------------------------------

struct IdqnFixture {
  scenario::GridScenario grid;
  env::TscEnv environment;

  IdqnFixture() : grid(make_grid()), environment(&grid.net(), flows(grid), config(), 1) {}

  static scenario::GridScenario make_grid() {
    scenario::GridConfig grid_config;
    grid_config.rows = 2;
    grid_config.cols = 2;
    return scenario::GridScenario(grid_config);
  }
  static std::vector<sim::FlowSpec> flows(const scenario::GridScenario& g) {
    std::vector<sim::FlowSpec> out;
    sim::FlowSpec f;
    f.route = g.route(g.west_terminal(0), g.east_terminal(0));
    f.profile = {{0.0, 600.0}, {200.0, 600.0}};
    out.push_back(f);
    return out;
  }
  static env::EnvConfig config() {
    env::EnvConfig env_config;
    env_config.episode_seconds = 80.0;
    return env_config;
  }
};

TEST(Idqn, TrainsIndependentNetworks) {
  IdqnFixture f;
  baselines::IdqnConfig config;
  config.hidden = 16;
  config.batch_size = 8;
  baselines::IdqnTrainer trainer(&f.environment, config);
  const auto stats = trainer.train_episode();
  EXPECT_GT(stats.travel_time, 0.0);
  EXPECT_EQ(trainer.episodes_trained(), 1u);
  EXPECT_EQ(trainer.comm_bits_per_step(), 0u);
}

TEST(Idqn, GreedyEvalDeterministic) {
  IdqnFixture f;
  baselines::IdqnConfig config;
  config.hidden = 16;
  baselines::IdqnTrainer trainer(&f.environment, config);
  trainer.train_episode();
  const auto e1 = trainer.eval_episode(5);
  const auto e2 = trainer.eval_episode(5);
  EXPECT_DOUBLE_EQ(e1.travel_time, e2.travel_time);
  auto controller = trainer.make_controller();
  EXPECT_EQ(controller->name(), "IDQN");
  const auto via_controller = env::run_episode(f.environment, *controller, 5);
  EXPECT_DOUBLE_EQ(via_controller.travel_time, e1.travel_time);
}

}  // namespace
}  // namespace tsc
