// Regression tests for the sensor-model bugfixes and the env observation
// snapshot:
//   (1) neighbor features bypassed the sensor model (raw uncapped link
//       counts, no dropout/noise) — fixed behind
//       EnvConfig::sensor_consistent_obs;
//   (2) queue observables scaled sensor noise by pressure_norm — fixed
//       behind EnvConfig::queue_norm (0 keeps the legacy scaling);
//   (3) the TscEnv constructor hardcoded sim::SimConfig{}, silently
//       dropping any tuning — fixed by plumbing SimConfig through
//       EnvConfig, so clone() and construct-from-scratch agree.
// Plus: the lazily synced observation snapshot must reproduce the live
// fault-aware queries bit-exactly under sensor-fault schedules, and
// obs_into_row must pack exactly the rows the engines used to assemble by
// hand.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/env/env.hpp"
#include "src/scenarios/flow_patterns.hpp"
#include "src/scenarios/grid.hpp"

namespace tsc::env {
namespace {

scenario::GridScenario make_grid(std::size_t rows = 4, std::size_t cols = 4) {
  scenario::GridConfig config;
  config.rows = rows;
  config.cols = cols;
  return scenario::GridScenario(config);
}

std::vector<sim::FlowSpec> demand(const scenario::GridScenario& grid,
                                  double time_scale = 1.0) {
  scenario::FlowPatternConfig config;
  config.time_scale = time_scale;
  return scenario::make_flow_pattern(grid, scenario::FlowPattern::kPattern1,
                                     config);
}

/// Advances the env with all-zero phase actions (builds standing queues on
/// the red approaches).
void run_steps(TscEnv& env, std::size_t steps) {
  const std::vector<std::size_t> actions(env.num_agents(), 0);
  for (std::size_t s = 0; s < steps && !env.done(); ++s) env.step(actions);
}

// ---- Bugfix 1: sensor-consistent neighbor features ----

TEST(SensorModel, NeighborFeatsSeeDroppedOutSensorsWhenConsistent) {
  // With every sensor failed, an agent's LOCAL view of a link is zero; the
  // legacy neighbor features still reported the raw counts — the bypass.
  // Under sensor_consistent_obs the neighbors go dark too.
  auto grid = make_grid();
  EnvConfig config;
  config.sensor_dropout = 1.0;  // every link reads 0, every step
  config.sensor_consistent_obs = true;
  TscEnv env(&grid.net(), demand(grid), config, 3);
  run_steps(env, 12);
  ASSERT_GT(env.simulator().network_halting(), 0u) << "no traffic built up";

  for (std::size_t i = 0; i < env.num_agents(); ++i) {
    const auto feat = env.neighbor_feat(i);
    EXPECT_DOUBLE_EQ(feat[0], 0.0) << "agent " << i;
    EXPECT_DOUBLE_EQ(feat[1], 0.0) << "agent " << i;
  }
}

TEST(SensorModel, LegacyNeighborFeatsStillBypassFaults) {
  // Compat default: feats keep reading the raw simulator (bit-exact with
  // the historical goldens), even under total sensor dropout.
  auto grid = make_grid();
  EnvConfig config;
  config.sensor_dropout = 1.0;
  TscEnv env(&grid.net(), demand(grid), config, 3);
  run_steps(env, 12);

  bool any_nonzero = false;
  for (std::size_t i = 0; i < env.num_agents(); ++i) {
    const auto feat = env.neighbor_feat(i);
    const sim::NodeId node = env.agent(i).node;
    EXPECT_DOUBLE_EQ(
        feat[0], env.simulator().intersection_pressure(node) /
                     config.pressure_norm);
    EXPECT_DOUBLE_EQ(
        feat[1], static_cast<double>(
                     env.simulator().intersection_halting(node)) /
                     config.pressure_norm);
    if (feat[0] != 0.0 || feat[1] != 0.0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero) << "bypass check vacuous: all raw feats were zero";
}

TEST(SensorModel, ConsistentNeighborFeatsUseDetectorCappedCounts) {
  // Clean sensors, consistent mode: feats must fold the detector-capped
  // fault-aware observables, matching a hand fold over observed_count /
  // observed_queue bit-exactly.
  auto grid = make_grid();
  EnvConfig config;
  config.sensor_consistent_obs = true;
  TscEnv env(&grid.net(), demand(grid), config, 7);
  run_steps(env, 10);

  for (std::size_t i = 0; i < env.num_agents(); ++i) {
    const sim::NodeId node = env.agent(i).node;
    const sim::Node& n = grid.net().node(node);
    double pressure = 0.0;
    for (sim::LinkId l : n.in_links) pressure += env.observed_count(l);
    for (sim::LinkId l : n.out_links) pressure -= env.observed_count(l);
    double halting = 0.0;
    for (sim::LinkId l : n.in_links) halting += env.observed_queue(l);
    const auto feat = env.neighbor_feat(i);
    EXPECT_EQ(feat[0], pressure / config.pressure_norm) << "agent " << i;
    EXPECT_EQ(feat[1], halting / config.pressure_norm) << "agent " << i;
  }
}

// ---- Bugfix 2: queue noise normalizer ----

TEST(SensorModel, QueueNormRescalesQueueNoise) {
  // Same seed => identical fault draws; doubling the queue normalizer must
  // double the noise term on queue observables (and only on those).
  auto grid = make_grid();
  EnvConfig base;
  base.sensor_noise_std = 0.5;
  EnvConfig scaled = base;
  scaled.queue_norm = 2.0 * base.pressure_norm;
  TscEnv env_base(&grid.net(), demand(grid), base, 11);
  TscEnv env_scaled(&grid.net(), demand(grid), scaled, 11);
  run_steps(env_base, 8);
  run_steps(env_scaled, 8);

  bool any_noise = false;
  for (sim::LinkId l = 0; l < grid.net().num_links(); ++l) {
    const double det = env_base.simulator().detector_queue(l);
    const double obs1 = env_base.observed_queue(l);
    const double obs2 = env_scaled.observed_queue(l);
    if (obs1 <= 0.0 || obs2 <= 0.0) continue;  // clamped or dropped out
    EXPECT_NEAR(obs2 - det, 2.0 * (obs1 - det), 1e-9) << "link " << l;
    if (obs1 != det) {
      any_noise = true;
      EXPECT_NE(obs2, obs1) << "queue_norm had no effect on link " << l;
    }
    // Pressure observables must be untouched by queue_norm.
    EXPECT_EQ(env_base.observed_pressure(l), env_scaled.observed_pressure(l));
  }
  EXPECT_TRUE(any_noise) << "rescale check vacuous: no noisy queue reading";
}

TEST(SensorModel, DefaultQueueNormKeepsLegacyPressureNormScaling) {
  // queue_norm == 0 (default) must be bit-identical to explicitly scaling
  // queue noise by pressure_norm — existing configs are unchanged.
  auto grid = make_grid();
  EnvConfig implicit;
  implicit.sensor_noise_std = 0.5;
  EnvConfig explicit_norm = implicit;
  explicit_norm.queue_norm = implicit.pressure_norm;
  TscEnv env_a(&grid.net(), demand(grid), implicit, 13);
  TscEnv env_b(&grid.net(), demand(grid), explicit_norm, 13);
  run_steps(env_a, 8);
  run_steps(env_b, 8);

  for (sim::LinkId l = 0; l < grid.net().num_links(); ++l) {
    EXPECT_EQ(env_a.observed_queue(l), env_b.observed_queue(l)) << l;
    EXPECT_EQ(env_a.observed_lane_queue(l, 0), env_b.observed_lane_queue(l, 0))
        << l;
  }
}

// ---- Bugfix 3: SimConfig plumbing ----

TEST(SensorModel, EnvConfigSimConfigReachesTheSimulator) {
  // The constructor used to hardcode sim::SimConfig{}, silently dropping
  // any tuning the caller asked for.
  auto grid = make_grid();
  EnvConfig config;
  config.sim.tick = 0.5;
  config.sim.sat_headway = 2.5;
  config.sim.detector_range = 30.0;
  TscEnv env(&grid.net(), demand(grid), config, 1);
  EXPECT_DOUBLE_EQ(env.simulator().config().tick, 0.5);
  EXPECT_DOUBLE_EQ(env.simulator().config().sat_headway, 2.5);
  EXPECT_DOUBLE_EQ(env.simulator().config().detector_range, 30.0);
}

TEST(SensorModel, CloneAndSetFlowsCarryTheSimConfig) {
  // clone(), construct-from-scratch, and set_flows must all build the same
  // simulator: stepping the original and its clone with identical actions
  // stays bit-identical.
  auto grid = make_grid();
  EnvConfig config;
  config.sim.tick = 0.5;
  config.sim.sat_headway = 2.5;
  TscEnv env(&grid.net(), demand(grid), config, 21);
  auto replica = env.clone(21);
  EXPECT_DOUBLE_EQ(replica->simulator().config().tick, 0.5);
  EXPECT_DOUBLE_EQ(replica->simulator().config().sat_headway, 2.5);

  run_steps(env, 10);
  run_steps(*replica, 10);
  EXPECT_EQ(env.simulator().network_halting(),
            replica->simulator().network_halting());
  EXPECT_EQ(env.simulator().vehicles_spawned(),
            replica->simulator().vehicles_spawned());
  EXPECT_EQ(env.simulator().network_avg_wait(),
            replica->simulator().network_avg_wait());

  TscEnv refreshed(&grid.net(), demand(grid), config, 99);
  refreshed.set_flows(demand(grid), 21);
  EXPECT_DOUBLE_EQ(refreshed.simulator().config().tick, 0.5);
  run_steps(refreshed, 10);
  EXPECT_EQ(env.simulator().network_halting(),
            refreshed.simulator().network_halting());
}

// ---- Observation snapshot vs live queries ----

TEST(SensorModel, SnapshotMatchesLiveQueriesUnderFaultSchedule) {
  // Dropout + noise resampled every decision step: the cached rows served
  // by local_obs / neighbor_feat must equal the live fault-aware queries
  // bit-exactly after every step.
  auto grid = make_grid();
  EnvConfig config;
  config.sensor_noise_std = 0.3;
  config.sensor_dropout = 0.25;
  config.sensor_consistent_obs = true;
  TscEnv env(&grid.net(), demand(grid), config, 17);
  const std::vector<std::size_t> actions(env.num_agents(), 0);

  for (int step = 0; step < 20 && !env.done(); ++step) {
    env.step(actions);
    for (std::size_t i = 0; i < env.num_agents(); ++i) {
      const auto obs = env.local_obs(i);
      const sim::Node& node = grid.net().node(env.agent(i).node);
      for (std::size_t slot = 0; slot < node.in_links.size(); ++slot) {
        const sim::LinkId l = node.in_links[slot];
        ASSERT_EQ(obs[2 * slot],
                  env.observed_pressure(l) / config.pressure_norm)
            << "agent " << i << " slot " << slot << " step " << step;
        ASSERT_EQ(obs[2 * slot + 1],
                  env.observed_head_wait(l) / config.wait_norm)
            << "agent " << i << " slot " << slot << " step " << step;
      }
      const auto feat = env.neighbor_feat(i);
      ASSERT_EQ(feat[0], env.observed_intersection_pressure(env.agent(i).node) /
                             config.pressure_norm);
      ASSERT_EQ(feat[1], env.observed_intersection_halting(env.agent(i).node) /
                             config.pressure_norm);
    }
  }
}

TEST(SensorModel, ObsIntoRowMatchesHandAssembledRows) {
  // The zero-copy seam must write exactly what the engines used to build:
  // local obs in the actor row; obs prefix + zero-padded hop1/hop2
  // neighbor feats in the critic row.
  auto grid = make_grid();
  EnvConfig config;
  TscEnv env(&grid.net(), demand(grid), config, 29);
  run_steps(env, 6);

  const std::size_t hop1_slots = 4, hop2_slots = 8;
  const std::size_t critic_dim =
      env.obs_dim() + TscEnv::kNeighborFeatDim * (hop1_slots + hop2_slots);
  for (std::size_t i = 0; i < env.num_agents(); ++i) {
    std::vector<double> actor_row(env.obs_dim(), -1.0);
    std::vector<double> critic_row(critic_dim, -1.0);
    env.obs_into_row(i, actor_row.data(), critic_row.data(), hop1_slots,
                     hop2_slots);

    EXPECT_EQ(actor_row, env.local_obs(i)) << "agent " << i;

    std::vector<double> expect = env.local_obs(i);
    const AgentSpec& spec = env.agent(i);
    for (std::size_t slot = 0; slot < hop1_slots; ++slot) {
      if (slot < spec.hop1.size()) {
        const auto f = env.neighbor_feat(spec.hop1[slot]);
        expect.insert(expect.end(), f.begin(), f.end());
      } else {
        expect.insert(expect.end(), TscEnv::kNeighborFeatDim, 0.0);
      }
    }
    for (std::size_t slot = 0; slot < hop2_slots; ++slot) {
      if (slot < spec.hop2.size()) {
        const auto f = env.neighbor_feat(spec.hop2[slot]);
        expect.insert(expect.end(), f.begin(), f.end());
      } else {
        expect.insert(expect.end(), TscEnv::kNeighborFeatDim, 0.0);
      }
    }
    EXPECT_EQ(critic_row, expect) << "agent " << i;
  }

  // Actor-only variant (critic_row == nullptr) must leave nothing unwritten.
  std::vector<double> actor_only(env.obs_dim(), -1.0);
  env.obs_into_row(0, actor_only.data(), nullptr, hop1_slots, hop2_slots);
  EXPECT_EQ(actor_only, env.local_obs(0));
}

}  // namespace
}  // namespace tsc::env
