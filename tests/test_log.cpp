#include "src/util/log.hpp"

#include <gtest/gtest.h>

namespace tsc {
namespace {

TEST(Log, LevelThresholdRoundTrip) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(original);
}

TEST(Log, EmittingBelowThresholdIsSafeNoop) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kOff);
  // Nothing should crash or emit; concat path is still exercised.
  log_debug("value=", 42, " pi=", 3.14);
  log_info("info ", std::string("string"));
  log_warn("warn");
  log_error("error");
  set_log_level(original);
}

TEST(Log, ConcatFormatsMixedTypes) {
  EXPECT_EQ(detail::concat("a", 1, '-', 2.5), "a1-2.5");
  EXPECT_EQ(detail::concat(), "");
}

}  // namespace
}  // namespace tsc
