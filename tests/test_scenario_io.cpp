#include "src/sim/scenario_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim_fixtures.hpp"
#include "src/scenarios/flow_patterns.hpp"
#include "src/scenarios/grid.hpp"
#include "src/sim/simulator.hpp"

namespace tsc::sim {
namespace {

TEST(ScenarioIo, RoundTripPreservesCross) {
  test::Cross cross;
  std::vector<FlowSpec> flows = {
      cross.flow_ns({{0.0, 500.0}, {100.0, 500.0}}),
      cross.flow_we({{50.0, 0.0}, {150.0, 700.0}}),
  };
  std::ostringstream out;
  write_scenario(cross.net, flows, out);
  std::istringstream in(out.str());
  const Scenario loaded = read_scenario(in);

  EXPECT_EQ(loaded.net.num_nodes(), cross.net.num_nodes());
  EXPECT_EQ(loaded.net.num_links(), cross.net.num_links());
  EXPECT_EQ(loaded.net.num_movements(), cross.net.num_movements());
  EXPECT_TRUE(loaded.net.finalized());
  ASSERT_EQ(loaded.flows.size(), 2u);
  EXPECT_EQ(loaded.flows[0].route, flows[0].route);
  EXPECT_DOUBLE_EQ(loaded.flows[1].rate_at(150.0), 700.0);
  // Node metadata survives.
  EXPECT_EQ(loaded.net.node(cross.center).type, NodeType::kSignalized);
  EXPECT_EQ(loaded.net.node(cross.center).name, "C");
  EXPECT_EQ(loaded.net.node(cross.center).phases.size(), 2u);
}

TEST(ScenarioIo, RoundTripPreservesFullGrid) {
  scenario::GridScenario grid(scenario::GridConfig{});
  auto flows = scenario::make_flow_pattern(grid, scenario::FlowPattern::kPattern1);
  std::ostringstream out;
  write_scenario(grid.net(), flows, out);
  std::istringstream in(out.str());
  const Scenario loaded = read_scenario(in);
  EXPECT_EQ(loaded.net.num_nodes(), grid.net().num_nodes());
  EXPECT_EQ(loaded.net.num_links(), grid.net().num_links());
  EXPECT_EQ(loaded.net.num_movements(), grid.net().num_movements());
  EXPECT_EQ(loaded.flows.size(), flows.size());
  // Loaded scenario simulates identically to the original given a seed.
  Simulator a(&grid.net(), flows, SimConfig{}, 9);
  Simulator b(&loaded.net, loaded.flows, SimConfig{}, 9);
  a.step_seconds(120.0);
  b.step_seconds(120.0);
  EXPECT_EQ(a.vehicles_spawned(), b.vehicles_spawned());
  EXPECT_DOUBLE_EQ(a.average_travel_time(), b.average_travel_time());
}

TEST(ScenarioIo, CommentsAndBlankLinesIgnored) {
  std::istringstream in(
      "# a comment\n"
      "\n"
      "node boundary 0 0 A\n"
      "node boundary 100 0 B  # trailing comment\n"
      "link 0 1 100 1 10\n");
  const Scenario s = read_scenario(in);
  EXPECT_EQ(s.net.num_nodes(), 2u);
  EXPECT_EQ(s.net.num_links(), 1u);
  EXPECT_EQ(s.net.node(1).name, "B");
}

TEST(ScenarioIo, ErrorsCarryLineNumbers) {
  {
    std::istringstream in("node boundary 0 0\nfrobnicate 1 2 3\n");
    try {
      read_scenario(in);
      FAIL() << "expected parse error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
    }
  }
  {
    std::istringstream in("node weird 0 0\n");
    EXPECT_THROW(read_scenario(in), std::runtime_error);
  }
  {
    // Builder-level validation error is re-wrapped with the line number.
    std::istringstream in("node boundary 0 0\nlink 0 7 100 1 10\n");
    try {
      read_scenario(in);
      FAIL() << "expected validation error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
  }
}

TEST(ScenarioIo, BadFlowProfileRejected) {
  std::istringstream in(
      "node boundary 0 0\n"
      "node boundary 100 0\n"
      "link 0 1 100 1 10\n"
      "flow 0 nocolon\n");
  EXPECT_THROW(read_scenario(in), std::runtime_error);
}

// Regressions for the bare-std::stod knot parsing: trailing garbage used to
// be silently accepted ("3.5x" -> 3.5) and overflow escaped as a raw
// std::out_of_range with no line context.
TEST(ScenarioIo, FlowKnotTrailingGarbageRejected) {
  std::istringstream in(
      "node boundary 0 0\n"
      "node boundary 100 0\n"
      "link 0 1 100 1 10\n"
      "flow 0 10:3.5x\n");
  try {
    read_scenario(in);
    FAIL() << "expected garbage-suffix knot to be rejected";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("3.5x"), std::string::npos) << what;
  }
}

TEST(ScenarioIo, FlowKnotOverflowRejectedWithContext) {
  std::istringstream in(
      "node boundary 0 0\n"
      "node boundary 100 0\n"
      "link 0 1 100 1 10\n"
      "flow 0 0:1e999\n");
  try {
    read_scenario(in);
    FAIL() << "expected overflowing knot to be rejected";
  } catch (const std::runtime_error& e) {
    // Routed through fail(): line-numbered, not a raw std::out_of_range.
    const std::string what = e.what();
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("1e999"), std::string::npos) << what;
  }
}

TEST(ScenarioIo, FlowKnotEmptyFieldRejected) {
  for (const char* knot : {"10:", ":400", ":"}) {
    std::istringstream in(std::string(
                              "node boundary 0 0\n"
                              "node boundary 100 0\n"
                              "link 0 1 100 1 10\n"
                              "flow 0 ") +
                          knot + "\n");
    EXPECT_THROW(read_scenario(in), std::runtime_error) << knot;
  }
}

TEST(ScenarioIo, FinalizeErrorsSurface) {
  // Signalized node without phases fails at finalize.
  std::istringstream in(
      "node boundary 0 0\n"
      "node signalized 100 0\n"
      "node boundary 200 0\n"
      "link 0 1 100 1 10\n"
      "link 1 2 100 1 10\n"
      "movement 0 1 through 0\n");
  EXPECT_THROW(read_scenario(in), std::invalid_argument);
}

TEST(ScenarioIo, FileRoundTrip) {
  test::Chain chain;
  const std::string path = "/tmp/tsc_scenario_test.txt";
  save_scenario(chain.net, {chain.flow({{0.0, 300.0}, {60.0, 300.0}})}, path);
  const Scenario loaded = load_scenario(path);
  EXPECT_EQ(loaded.net.num_links(), 2u);
  EXPECT_EQ(loaded.flows.size(), 1u);
  std::remove(path.c_str());
  EXPECT_THROW(load_scenario("/no/such/file.txt"), std::runtime_error);
}

}  // namespace
}  // namespace tsc::sim
