// Fleet orchestrator + crash-safety regressions (ROADMAP item 4).
//
// Covers the run store (journal replay, torn tails), sweep expansion, the
// process-spawn helpers, the atomic-checkpoint durability contract, and —
// end to end across real OS processes — the headline guarantee: a worker
// SIGKILL'd mid-training is retried, resumes from its last durable
// checkpoint, and finishes with weights and metrics bit-identical to an
// uninterrupted run.
#include "src/core/fleet_orchestrator.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/trainer.hpp"
#include "src/env/env.hpp"
#include "src/scenarios/grid.hpp"
#include "src/sim/scenario_io.hpp"
#include "src/util/fs.hpp"
#include "src/util/proc.hpp"

#ifndef TSC_FLEET_BIN
#define TSC_FLEET_BIN ""
#endif

namespace tsc::core {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// 2x2 grid with north-south flows, saved as a scenario file.
std::string write_tiny_scenario(const std::string& dir) {
  scenario::GridConfig config;
  config.rows = 2;
  config.cols = 2;
  scenario::GridScenario grid(config);
  std::vector<sim::FlowSpec> flows;
  for (std::size_t c = 0; c < 2; ++c) {
    sim::FlowSpec f;
    f.route = grid.route(grid.north_terminal(c), grid.south_terminal(c));
    f.profile = {{0.0, 400.0}, {200.0, 400.0}};
    flows.push_back(std::move(f));
  }
  const std::string path = dir + "/tiny.scenario";
  sim::save_scenario(grid.net(), flows, path);
  return path;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void append_raw(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::app | std::ios::binary);
  out << text;
}

FleetJob make_job(std::size_t id, const std::string& scenario,
                  const std::string& controller, std::uint64_t seed = 1) {
  FleetJob job;
  job.id = id;
  job.scenario = scenario;
  job.controller = controller;
  job.seed = seed;
  job.hidden = 8;
  job.train_episodes = controller_learns(controller) ? 3 : 0;
  job.episode_seconds = 60.0;
  return job;
}

// ---------------------------------------------------------------------------
// Sweep expansion.

TEST(SweepExpansion, DeterministicScenarioMajorOrder) {
  SweepSpec spec;
  spec.scenarios = {"a.scenario", "b.scenario"};
  spec.controllers = {"fixedtime", "pairuplight"};
  spec.seeds = {1, 2};
  spec.hiddens = {16, 32};
  spec.train_episodes = 4;

  const auto jobs = expand_sweep(spec);
  // Per scenario: fixedtime ignores the hidden axis (2 seeds x 1), the
  // learning controller sweeps it (2 seeds x 2 hiddens).
  ASSERT_EQ(jobs.size(), 2u * (2u + 4u));
  for (std::size_t i = 0; i < jobs.size(); ++i) EXPECT_EQ(jobs[i].id, i);
  EXPECT_EQ(jobs[0].scenario, "a.scenario");
  EXPECT_EQ(jobs[0].controller, "fixedtime");
  EXPECT_EQ(jobs[0].train_episodes, 0u);  // classics do not train
  EXPECT_EQ(jobs[2].controller, "pairuplight");
  EXPECT_EQ(jobs[2].hidden, 16u);
  EXPECT_EQ(jobs[3].hidden, 32u);
  EXPECT_EQ(jobs[2].train_episodes, 4u);
  EXPECT_EQ(jobs[6].scenario, "b.scenario");

  // Same spec, same jobs — expansion is deterministic.
  const auto again = expand_sweep(spec);
  ASSERT_EQ(again.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(again[i].scenario, jobs[i].scenario);
    EXPECT_EQ(again[i].controller, jobs[i].controller);
    EXPECT_EQ(again[i].seed, jobs[i].seed);
    EXPECT_EQ(again[i].hidden, jobs[i].hidden);
  }
}

TEST(SweepExpansion, RejectsBadSpecs) {
  SweepSpec spec;
  spec.scenarios = {"a.scenario"};
  spec.controllers = {"pairuplight"};
  SweepSpec no_scenarios = spec;
  no_scenarios.scenarios.clear();
  EXPECT_THROW(expand_sweep(no_scenarios), std::invalid_argument);
  SweepSpec bad_controller = spec;
  bad_controller.controllers = {"sotl"};
  EXPECT_THROW(expand_sweep(bad_controller), std::invalid_argument);
  SweepSpec no_seeds = spec;
  no_seeds.seeds.clear();
  EXPECT_THROW(expand_sweep(no_seeds), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Flat JSON wire format.

TEST(FlatJson, EscapeParseRoundTrip) {
  const std::string raw = "a\"b\\c\nd\te";
  const std::string line = "{\"key\":\"" + json_escape(raw) + "\",\"n\":42}";
  const auto parsed = parse_flat_json(line);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->at("key"), raw);
  EXPECT_EQ(parsed->at("n"), "42");
}

TEST(FlatJson, TornLinesRejected) {
  // Prefixes of a valid line — what a killed writer leaves behind.
  const std::string full = "{\"event\":\"done\",\"id\":3,\"wall_seconds\":1.5}";
  ASSERT_TRUE(parse_flat_json(full));
  for (std::size_t cut = 1; cut < full.size(); ++cut)
    EXPECT_FALSE(parse_flat_json(full.substr(0, cut))) << cut;
  EXPECT_FALSE(parse_flat_json(""));
  EXPECT_FALSE(parse_flat_json("not json"));
  EXPECT_FALSE(parse_flat_json(full + "x"));  // trailing junk
}

// ---------------------------------------------------------------------------
// Run store.

TEST(RunStore, JournalReplayReconstructsState) {
  const std::string dir = temp_dir("runstore_replay");
  {
    RunStore store = RunStore::create(
        dir, {make_job(0, "a.scenario", "pairuplight"),
              make_job(1, "a.scenario", "fixedtime"),
              make_job(2, "a.scenario", "maxpressure")});
    store.record_start(0, 100);
    store.record_done(0, 1.5);
    store.record_start(1, 101);
    util::ExitStatus crash;
    crash.signaled = true;
    crash.term_signal = SIGKILL;
    store.record_fail(1, crash);
    store.record_start(2, 102);  // still running when the orchestrator dies
  }
  RunStore store = RunStore::open(dir);
  ASSERT_EQ(store.jobs().size(), 3u);
  EXPECT_EQ(store.jobs()[0].phase, JobPhase::kDone);
  EXPECT_DOUBLE_EQ(store.jobs()[0].wall_seconds, 1.5);
  EXPECT_EQ(store.jobs()[0].attempts, 1u);
  EXPECT_EQ(store.jobs()[0].job.controller, "pairuplight");
  EXPECT_EQ(store.jobs()[0].job.train_episodes, 3u);
  EXPECT_EQ(store.jobs()[1].phase, JobPhase::kFailed);
  EXPECT_EQ(store.jobs()[1].last_signal, SIGKILL);
  // A job left kRunning by a dead orchestrator is schedulable again.
  EXPECT_EQ(store.jobs()[2].phase, JobPhase::kPending);
  EXPECT_EQ(store.jobs()[2].attempts, 1u);
}

TEST(RunStore, TornTrailingLineTolerated) {
  const std::string dir = temp_dir("runstore_torn");
  {
    RunStore store =
        RunStore::create(dir, {make_job(0, "a.scenario", "fixedtime")});
    store.record_start(0, 100);
    store.record_done(0, 2.0);
  }
  // Simulate the orchestrator dying mid-append: half an event, no newline.
  append_raw(dir + "/journal.jsonl", "{\"event\":\"start\",\"id\":0,\"at");
  RunStore store = RunStore::open(dir);
  ASSERT_EQ(store.jobs().size(), 1u);
  EXPECT_EQ(store.jobs()[0].phase, JobPhase::kDone);
  EXPECT_EQ(store.jobs()[0].attempts, 1u);
}

TEST(RunStore, CreateRefusesExistingJournal) {
  const std::string dir = temp_dir("runstore_exists");
  const std::vector<FleetJob> jobs = {make_job(0, "a.scenario", "fixedtime")};
  RunStore::create(dir, jobs);
  EXPECT_THROW(RunStore::create(dir, jobs), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Process spawn/wait helpers.

TEST(Proc, ExitCodeAndSignalAreDistinguished) {
  const int ok = util::spawn_process({"/bin/sh", "-c", "exit 3"});
  const auto ok_status = util::wait_process(ok);
  EXPECT_TRUE(ok_status.exited);
  EXPECT_EQ(ok_status.exit_code, 3);
  EXPECT_FALSE(ok_status.success());

  const int killed = util::spawn_process({"/bin/sh", "-c", "kill -KILL $$"});
  const auto killed_status = util::wait_process(killed);
  EXPECT_FALSE(killed_status.exited);
  EXPECT_TRUE(killed_status.signaled);
  EXPECT_EQ(killed_status.term_signal, SIGKILL);
}

TEST(Proc, OutputRedirectsToLogFile) {
  const std::string dir = temp_dir("proc_log");
  const std::string log = dir + "/log.txt";
  const int pid = util::spawn_process(
      {"/bin/sh", "-c", "echo to-stdout; echo to-stderr 1>&2"}, log);
  EXPECT_TRUE(util::wait_process(pid).success());
  const std::string text = read_bytes(log);
  EXPECT_NE(text.find("to-stdout"), std::string::npos);
  EXPECT_NE(text.find("to-stderr"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Atomic checkpoint regressions (the corruption bugs that blocked the fleet).

struct TrainerFixture {
  scenario::GridScenario grid;
  std::vector<sim::FlowSpec> flows;
  env::TscEnv environment;

  TrainerFixture()
      : grid(make_grid()),
        flows(make_flows(grid)),
        environment(&grid.net(), flows, make_env_config(), 1) {}

  static scenario::GridScenario make_grid() {
    scenario::GridConfig config;
    config.rows = 2;
    config.cols = 2;
    return scenario::GridScenario(config);
  }
  static std::vector<sim::FlowSpec> make_flows(const scenario::GridScenario& g) {
    std::vector<sim::FlowSpec> flows;
    for (std::size_t c = 0; c < 2; ++c) {
      sim::FlowSpec f;
      f.route = g.route(g.north_terminal(c), g.south_terminal(c));
      f.profile = {{0.0, 400.0}, {200.0, 400.0}};
      flows.push_back(f);
    }
    return flows;
  }
  static env::EnvConfig make_env_config() {
    env::EnvConfig config;
    config.episode_seconds = 60.0;
    return config;
  }
  PairUpConfig fast_config() {
    PairUpConfig config;
    config.hidden = 8;
    config.ppo.epochs = 1;
    config.ppo.minibatch = 32;
    config.seed = 7;
    return config;
  }
};

const char* const kCheckpointFiles[] = {"_actor0.bin", "_critic0.bin",
                                        "_optim0.bin", "_trainer.bin"};

TEST(AtomicCheckpoint, InterruptedSaveNeverClobbersOldCheckpoint) {
  TrainerFixture f;
  PairUpLightTrainer trainer(&f.environment, f.fast_config());
  const std::string prefix = temp_dir("atomic_ckpt") + "/ckpt";

  trainer.train_episode();
  trainer.save_checkpoint(prefix);
  std::vector<std::string> before;
  for (const char* suffix : kCheckpointFiles)
    before.push_back(read_bytes(prefix + suffix));

  // Kill the save between writing the temp file and committing the rename:
  // before the atomic writers this truncated the live checkpoint in place.
  trainer.train_episode();
  util::set_atomic_write_failure_injection(true);
  EXPECT_THROW(trainer.save_checkpoint(prefix), std::runtime_error);
  util::set_atomic_write_failure_injection(false);

  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(read_bytes(prefix + kCheckpointFiles[i]), before[i])
        << kCheckpointFiles[i] << " was clobbered by an interrupted save";

  // The old checkpoint is still loadable, and a clean save commits.
  PairUpLightTrainer resumed(&f.environment, f.fast_config());
  resumed.load_checkpoint(prefix);
  EXPECT_EQ(resumed.episodes_trained(), 1u);
  trainer.save_checkpoint(prefix);
  EXPECT_NE(read_bytes(prefix + "_trainer.bin"), before.back());
}

TEST(AtomicCheckpoint, TruncatedFilesFailToLoadCleanly) {
  TrainerFixture f;
  PairUpLightTrainer trainer(&f.environment, f.fast_config());
  const std::string dir = temp_dir("truncated_ckpt");
  const std::string prefix = dir + "/ckpt";
  trainer.train_episode();
  trainer.save_checkpoint(prefix);

  for (const char* suffix : kCheckpointFiles) {
    const std::string path = prefix + suffix;
    const std::string bytes = read_bytes(path);
    ASSERT_GT(bytes.size(), 8u);
    fs::resize_file(path, bytes.size() / 2);  // torn mid-write
    PairUpLightTrainer victim(&f.environment, f.fast_config());
    EXPECT_THROW(victim.load_checkpoint(prefix), std::runtime_error) << suffix;
    // Restore for the next iteration.
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
}

// ---------------------------------------------------------------------------
// End-to-end orchestration across real worker processes.

class FleetEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::string(TSC_FLEET_BIN).empty() || !fs::exists(TSC_FLEET_BIN))
      GTEST_SKIP() << "tsc_fleet binary not available";
  }

  OrchestratorConfig config() {
    OrchestratorConfig c;
    c.worker_exe = TSC_FLEET_BIN;
    c.backoff_seconds = 0.05;
    c.verbose = false;
    return c;
  }
};

TEST_F(FleetEndToEnd, SweepRunsAcrossWorkerProcessesAndIsIdempotent) {
  const std::string dir = temp_dir("fleet_basic");
  const std::string scenario = write_tiny_scenario(dir);
  RunStore store = RunStore::create(
      dir + "/run", {make_job(0, scenario, "fixedtime"),
                     make_job(1, scenario, "maxpressure", 2)});
  auto cfg = config();
  cfg.max_parallel = 2;
  const auto result = run_fleet(store, cfg);
  EXPECT_EQ(result.done, 2u);
  EXPECT_EQ(result.failed, 0u);
  for (std::size_t id = 0; id < 2; ++id) {
    EXPECT_EQ(store.jobs()[id].phase, JobPhase::kDone);
    ASSERT_TRUE(fs::exists(store.metrics_path(id)));
  }

  // Re-running a finished job is a no-op: the worker sees the durable
  // metrics record and exits 0 without touching anything.
  const std::string before = read_bytes(store.metrics_path(0));
  const int pid = util::spawn_process(
      {TSC_FLEET_BIN, "worker", "--run", store.dir(), "--job", "0"});
  EXPECT_TRUE(util::wait_process(pid).success());
  EXPECT_EQ(read_bytes(store.metrics_path(0)), before);

  // A reopened store schedules nothing (that is `resume` on a done sweep).
  RunStore reopened = RunStore::open(store.dir());
  const auto again = run_fleet(reopened, cfg);
  EXPECT_EQ(again.done, 0u);
  EXPECT_EQ(again.retries, 0u);
}

TEST_F(FleetEndToEnd, PermanentFailureAfterBoundedRetries) {
  const std::string dir = temp_dir("fleet_fail");
  RunStore store = RunStore::create(
      dir + "/run", {make_job(0, dir + "/missing.scenario", "fixedtime")});
  auto cfg = config();
  cfg.max_attempts = 2;
  const auto result = run_fleet(store, cfg);
  EXPECT_EQ(result.done, 0u);
  EXPECT_EQ(result.failed, 1u);
  EXPECT_EQ(result.retries, 1u);
  EXPECT_EQ(store.jobs()[0].phase, JobPhase::kFailed);
  EXPECT_EQ(store.jobs()[0].attempts, 2u);
}

TEST_F(FleetEndToEnd, SigkilledWorkerResumesCheckpointExactly) {
  const std::string dir = temp_dir("fleet_crash_resume");
  const std::string scenario = write_tiny_scenario(dir);
  const FleetJob job = make_job(0, scenario, "pairuplight", 3);

  // Crashed run: the worker SIGKILLs itself after training episode 2 but
  // before saving it, so the last durable checkpoint is episode 1 (workers
  // inherit the hook from our environment; it only arms in a fresh worker,
  // so the retry resumes and completes).
  ASSERT_EQ(setenv("TSC_FLEET_CRASH_AFTER_EPISODE", "2", 1), 0);
  RunStore crashed = RunStore::create(dir + "/crashed", {job});
  const auto crashed_result = run_fleet(crashed, config());
  ASSERT_EQ(unsetenv("TSC_FLEET_CRASH_AFTER_EPISODE"), 0);
  EXPECT_EQ(crashed_result.done, 1u);
  EXPECT_EQ(crashed_result.failed, 0u);
  EXPECT_GE(crashed_result.retries, 1u);
  EXPECT_EQ(crashed.jobs()[0].phase, JobPhase::kDone);
  EXPECT_GE(crashed.jobs()[0].attempts, 2u);
  EXPECT_EQ(crashed.jobs()[0].last_signal, SIGKILL);

  // Uninterrupted control run of the identical job.
  RunStore clean = RunStore::create(dir + "/clean", {job});
  const auto clean_result = run_fleet(clean, config());
  EXPECT_EQ(clean_result.done, 1u);
  EXPECT_EQ(clean_result.retries, 0u);

  // The headline guarantee: final weights, optimizer, and trainer state are
  // bit-identical, and the evaluated metrics agree exactly.
  for (const char* suffix : kCheckpointFiles)
    EXPECT_EQ(read_bytes(crashed.checkpoint_prefix(0) + suffix),
              read_bytes(clean.checkpoint_prefix(0) + suffix))
        << suffix;
  const auto crashed_metrics =
      parse_flat_json(read_bytes(crashed.metrics_path(0)).substr(
          0, read_bytes(crashed.metrics_path(0)).find('\n')));
  const auto clean_metrics =
      parse_flat_json(read_bytes(clean.metrics_path(0)).substr(
          0, read_bytes(clean.metrics_path(0)).find('\n')));
  ASSERT_TRUE(crashed_metrics);
  ASSERT_TRUE(clean_metrics);
  for (const char* key : {"travel_time", "delay", "avg_wait", "finished",
                          "spawned", "train_episodes"})
    EXPECT_EQ(crashed_metrics->at(key), clean_metrics->at(key)) << key;

  // Report aggregation sees the whole story.
  FleetReport report = build_report(crashed);
  EXPECT_EQ(report.jobs_done, 1u);
  EXPECT_EQ(report.jobs_failed, 0u);
  EXPECT_GE(report.total_attempts, 2u);
  EXPECT_GT(report.serialized_wall_seconds, 0.0);
  EXPECT_GT(report.total_env_steps, 0u);
  EXPECT_EQ(report.totals.sessions, 1u);

  const std::string bench_path = dir + "/BENCH_fleet.json";
  write_bench_fleet_json(report, bench_path);
  const std::string bench = read_bytes(bench_path);
  EXPECT_NE(bench.find("\"hardware_threads\""), std::string::npos);
  EXPECT_NE(bench.find("\"jobs_per_hour\""), std::string::npos);
  EXPECT_NE(bench.find("\"speedup_vs_one_process\""), std::string::npos);
}

}  // namespace
}  // namespace tsc::core
