// Tests for the measurement tooling (trace recorder, emissions model, DOT
// export), the Huber op, and the running observation normalizer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "grad_check.hpp"
#include "sim_fixtures.hpp"
#include "src/nn/tape.hpp"
#include "src/rl/normalizer.hpp"
#include "src/sim/dot_export.hpp"
#include "src/sim/metrics.hpp"
#include "src/sim/simulator.hpp"
#include "src/util/rng.hpp"

namespace tsc {
namespace {

using test::Cross;

TEST(TraceRecorder, SamplesAtInterval) {
  Cross cross;
  auto f = cross.flow_we({{0.0, 900.0}, {100.0, 900.0}});
  sim::Simulator sim(&cross.net, {f}, sim::SimConfig{}, 3);
  sim::TraceRecorder trace(10.0);
  trace.record(sim);  // t = 0
  for (int i = 0; i < 100; ++i) {
    sim.step();
    trace.record(sim);
  }
  // One sample at t=0 plus one every 10 s.
  EXPECT_EQ(trace.samples().size(), 11u);
  EXPECT_DOUBLE_EQ(trace.samples()[0].time, 0.0);
  EXPECT_NEAR(trace.samples()[1].time, 10.0, 1.0);
  // Queues grow over a red light: later samples show more halting.
  EXPECT_GT(trace.samples().back().halting, trace.samples()[1].halting);
}

// Regression: record() used to re-anchor the next deadline at now() +
// interval, so whenever record() ran at a cadence coarser than the interval
// every sample drifted by the accumulated overshoot (4 s cadence, 5 s
// interval sampled at 0, 8, 16, 24, ... — an 8 s effective interval). The
// deadlines must stay on the fixed grid 0, 5, 10, ...: with a 4 s cadence
// that means samples at 0, 8, 12, 16, 20, ... (the first record at or after
// each multiple of 5).
TEST(TraceRecorder, CoarseRecordCadenceStaysOnGrid) {
  Cross cross;
  sim::Simulator sim(&cross.net, {}, sim::SimConfig{}, 1);
  sim::TraceRecorder trace(5.0);
  trace.record(sim);  // t = 0
  for (int i = 0; i < 10; ++i) {
    sim.step_seconds(4.0);  // record every 4 s of simulated time
    trace.record(sim);
  }
  // t = 0..40 at a 4 s cadence against the 5 s grid: 0, 8 (covers the 5 s
  // deadline), 12 (10 s), 16 (15 s), 20 (20 s, landing ON the grid), then
  // nothing at 24 (next deadline 25), 28, 32, 36, 40. The drifting pre-fix
  // schedule was 0, 8, 16, 24, 32, 40 — an 8 s effective interval.
  const std::vector<double> expected = {0.0, 8.0, 12.0, 16.0, 20.0,
                                        28.0, 32.0, 36.0, 40.0};
  ASSERT_EQ(trace.samples().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_DOUBLE_EQ(trace.samples()[i].time, expected[i]) << "sample " << i;
}

TEST(TraceRecorder, CongestionOnsetAndRecovery) {
  Cross cross;
  auto f = cross.flow_we({{0.0, 1200.0}, {60.0, 1200.0}});  // ends at 60 s
  sim::Simulator sim(&cross.net, {f}, sim::SimConfig{}, 5);
  sim::TraceRecorder trace(5.0);
  for (int i = 0; i < 200; ++i) {
    if (i == 80) sim.set_phase(cross.center, 1);  // release WE at t=80
    sim.step();
    trace.record(sim);
  }
  const double onset = trace.congestion_onset(5);
  ASSERT_GT(onset, 0.0);
  const double recovery = trace.congestion_recovery(5, onset);
  ASSERT_GT(recovery, onset);
  EXPECT_GT(recovery, 80.0);  // cannot recover before the green
}

TEST(TraceRecorder, CsvAndClear) {
  Cross cross;
  sim::Simulator sim(&cross.net, {}, sim::SimConfig{}, 1);
  sim::TraceRecorder trace(1.0);
  trace.record(sim);
  const std::string path =
      (std::filesystem::temp_directory_path() / "tsc_trace_test.csv").string();
  trace.write_csv(path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "time,halting,avg_wait,active,finished,max_head_wait");
  std::remove(path.c_str());
  trace.clear();
  EXPECT_TRUE(trace.samples().empty());
}

TEST(Emissions, ZeroWithoutTraffic) {
  Cross cross;
  sim::Simulator sim(&cross.net, {}, sim::SimConfig{}, 1);
  sim.step_seconds(50.0);
  const auto e = sim::estimate_emissions(sim);
  EXPECT_DOUBLE_EQ(e.fuel_liters, 0.0);
  EXPECT_DOUBLE_EQ(e.co2_kg, 0.0);
}

TEST(Emissions, IdlingAddsFuelWithoutDistance) {
  Cross cross;
  auto f = cross.flow_we({{0.0, 3600.0}, {3.0, 0.0}});  // a few vehicles
  sim::Simulator sim(&cross.net, {f}, sim::SimConfig{}, 7);
  sim.step_seconds(150.0);  // red forever: vehicles idle on w_in
  const auto e = sim::estimate_emissions(sim);
  EXPECT_GT(e.idle_seconds, 50.0);
  EXPECT_DOUBLE_EQ(e.distance_meters, 0.0);  // nobody completed a link
  EXPECT_GT(e.fuel_liters, 0.0);
  EXPECT_NEAR(e.co2_kg, e.fuel_liters * 2.31, 1e-9);
}

TEST(Emissions, CompletedTripsAddDistance) {
  Cross cross;
  auto f = cross.flow_ns({{0.0, 3600.0}, {3.0, 0.0}});
  sim::Simulator sim(&cross.net, {f}, sim::SimConfig{}, 9);
  sim.step_seconds(150.0);  // NS is green in phase 0: trips complete
  ASSERT_GT(sim.vehicles_finished(), 0u);
  const auto e = sim::estimate_emissions(sim);
  // Each finished vehicle traversed two 200 m links.
  EXPECT_GE(e.distance_meters, 400.0 * sim.vehicles_finished());
}

TEST(DotExport, ContainsNodesAndEdges) {
  Cross cross;
  const std::string dot = sim::to_dot(cross.net);
  EXPECT_NE(dot.find("digraph road_network"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);     // signalized
  EXPECT_NE(dot.find("shape=circle"), std::string::npos);  // boundary
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("1@200m"), std::string::npos);
}

TEST(DotExport, LiveViewShowsQueues) {
  Cross cross;
  auto f = cross.flow_we({{0.0, 1800.0}, {60.0, 1800.0}});
  sim::Simulator sim(&cross.net, {f}, sim::SimConfig{}, 11);
  sim.step_seconds(60.0);
  const std::string dot = sim::to_dot(sim);
  // Some edge label shows a non-zero queue over capacity.
  EXPECT_NE(dot.find("penwidth"), std::string::npos);
  EXPECT_NE(dot.find("/26"), std::string::npos);  // 200 m / 7.5 m capacity
}

TEST(DotExport, WriteDotCreatesFile) {
  Cross cross;
  const std::string path =
      (std::filesystem::temp_directory_path() / "tsc_dot_test.dot").string();
  sim::write_dot(cross.net, path);
  EXPECT_TRUE(std::filesystem::exists(path));
  std::remove(path.c_str());
  EXPECT_THROW(sim::write_dot(cross.net, "/no_such_dir/x.dot"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------

TEST(Huber, ValuesQuadraticInsideLinearOutside) {
  nn::Tape tape;
  nn::Var x = tape.constant(nn::Tensor::vector({0.5, -0.5, 3.0, -3.0}));
  const auto& h = tape.value(tape.huber(x, 1.0));
  EXPECT_DOUBLE_EQ(h[0], 0.125);
  EXPECT_DOUBLE_EQ(h[1], 0.125);
  EXPECT_DOUBLE_EQ(h[2], 2.5);  // 1*(3 - 0.5)
  EXPECT_DOUBLE_EQ(h[3], 2.5);
}

TEST(Huber, GradientMatchesFiniteDifference) {
  Rng rng(31);
  nn::Tensor x = nn::Tensor::zeros(3, 4);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 2.0 * rng.normal();
  const double err = test::max_grad_error(
      {x}, [](nn::Tape& t, const std::vector<nn::Var>& in) {
        return t.sum(t.huber(in[0], 1.0));
      });
  EXPECT_LT(err, 2e-6);
}

// ---------------------------------------------------------------------------

TEST(Normalizer, IdentityUntilTwoSamples) {
  rl::RunningNormalizer norm(2);
  const std::vector<double> obs = {3.0, -1.0};
  EXPECT_EQ(norm.normalize(obs), obs);
  norm.update(obs);
  EXPECT_EQ(norm.normalize(obs), obs);
}

TEST(Normalizer, CentersAndScales) {
  rl::RunningNormalizer norm(1);
  Rng rng(33);
  for (int i = 0; i < 10000; ++i) norm.update({rng.normal(5.0, 2.0)});
  EXPECT_NEAR(norm.mean(0), 5.0, 0.1);
  EXPECT_NEAR(norm.stddev(0), 2.0, 0.1);
  const auto out = norm.normalize({5.0});
  EXPECT_NEAR(out[0], 0.0, 0.05);
  const auto out2 = norm.normalize({9.0});
  EXPECT_NEAR(out2[0], 2.0, 0.1);
}

TEST(Normalizer, ClipsExtremes) {
  rl::RunningNormalizer norm(1, /*clip=*/3.0);
  for (int i = 0; i < 100; ++i) norm.update({static_cast<double>(i % 2)});
  const auto out = norm.normalize({1000.0});
  EXPECT_DOUBLE_EQ(out[0], 3.0);
}

TEST(Normalizer, FreezeStopsUpdates) {
  rl::RunningNormalizer norm(1);
  norm.update({1.0});
  norm.update({2.0});
  norm.freeze();
  const double mean_before = norm.mean(0);
  norm.update({100.0});
  EXPECT_DOUBLE_EQ(norm.mean(0), mean_before);
  EXPECT_EQ(norm.count(), 2u);
  norm.unfreeze();
  norm.update({100.0});
  EXPECT_GT(norm.mean(0), mean_before);
}

TEST(Normalizer, UpdateAndNormalizeCombined) {
  rl::RunningNormalizer norm(2);
  norm.update({0.0, 0.0});
  norm.update({2.0, 4.0});
  const auto out = norm.update_and_normalize({1.0, 2.0});
  EXPECT_EQ(norm.count(), 3u);
  // {1,2} is exactly the running mean after the third update.
  EXPECT_NEAR(out[0], 0.0, 1e-9);
  EXPECT_NEAR(out[1], 0.0, 1e-9);
}

}  // namespace
}  // namespace tsc
