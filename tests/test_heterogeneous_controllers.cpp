// Classic and learned controllers on the heterogeneous Monaco-like network:
// variable phase counts per intersection must be handled by every policy.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/baselines/actuated.hpp"
#include "src/baselines/fixed_time.hpp"
#include "src/baselines/idqn.hpp"
#include "src/baselines/max_pressure.hpp"
#include "src/env/controller.hpp"
#include "src/scenarios/monaco.hpp"

namespace tsc {
namespace {

struct MonacoFixture {
  scenario::MonacoScenario monaco;
  env::TscEnv environment;

  MonacoFixture()
      : monaco(make_config()),
        environment(&monaco.net(), monaco.make_flows(700.0, 0.05, 4, 13),
                    make_env_config(), 1) {}

  static scenario::MonacoConfig make_config() {
    scenario::MonacoConfig config;
    config.grid_rows = 4;
    config.grid_cols = 3;  // small for test speed, still heterogeneous
    return config;
  }
  static env::EnvConfig make_env_config() {
    env::EnvConfig config;
    config.episode_seconds = 120.0;
    return config;
  }
};

TEST(HeterogeneousControllers, PhaseCountsActuallyVary) {
  MonacoFixture f;
  std::size_t min_phases = 99, max_phases = 0;
  for (std::size_t i = 0; i < f.environment.num_agents(); ++i) {
    min_phases = std::min(min_phases, f.environment.agent(i).num_phases);
    max_phases = std::max(max_phases, f.environment.agent(i).num_phases);
  }
  EXPECT_LT(min_phases, max_phases);  // the fixture is genuinely heterogeneous
}

TEST(HeterogeneousControllers, FixedTimeWrapsEachAgentsCycle) {
  MonacoFixture f;
  baselines::FixedTimeController controller(5.0);
  f.environment.reset(3);
  controller.begin_episode(f.environment);
  // Actions must always be within each agent's own phase count.
  for (int s = 0; s < 12; ++s) {
    const auto actions = controller.act(f.environment);
    for (std::size_t i = 0; i < actions.size(); ++i)
      EXPECT_LT(actions[i], f.environment.agent(i).num_phases);
    f.environment.step(actions);  // env would throw on a bad phase
  }
}

TEST(HeterogeneousControllers, MaxPressureRunsFullEpisode) {
  MonacoFixture f;
  baselines::MaxPressureController controller;
  const auto stats = env::run_episode(f.environment, controller, 7);
  EXPECT_GT(stats.travel_time, 0.0);
  EXPECT_GT(stats.vehicles_spawned, 0u);
}

TEST(HeterogeneousControllers, ActuatedRunsFullEpisode) {
  MonacoFixture f;
  baselines::ActuatedController controller;
  const auto stats = env::run_episode(f.environment, controller, 7);
  EXPECT_GT(stats.travel_time, 0.0);
}

TEST(HeterogeneousControllers, IdqnHandlesVariablePhases) {
  MonacoFixture f;
  baselines::IdqnConfig config;
  config.hidden = 12;
  config.batch_size = 8;
  baselines::IdqnTrainer trainer(&f.environment, config);
  const auto stats = trainer.train_episode();
  EXPECT_GT(stats.travel_time, 0.0);
  auto controller = trainer.make_controller();
  const auto eval = env::run_episode(f.environment, *controller, 9);
  EXPECT_GT(eval.travel_time, 0.0);
}

TEST(HeterogeneousControllers, AdaptiveBeatsOrMatchesFixedOnAverage) {
  // Across a few seeds, max-pressure should not be systematically worse
  // than blind fixed-time on the heterogeneous network.
  MonacoFixture f;
  baselines::MaxPressureController max_pressure;
  baselines::FixedTimeController fixed_time;
  const std::vector<std::uint64_t> seeds = {11, 22, 33};
  const auto mp = env::run_episodes(f.environment, max_pressure, seeds);
  const auto ft = env::run_episodes(f.environment, fixed_time, seeds);
  EXPECT_LT(mp.mean.avg_wait, ft.mean.avg_wait * 1.5);
}

}  // namespace
}  // namespace tsc
