// Thread pool, parallel rollout collection, and the serial-equivalence
// guarantee of the num_envs knob.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/core/trainer.hpp"
#include "src/rl/parallel_rollout.hpp"
#include "src/scenarios/grid.hpp"
#include "src/util/log.hpp"
#include "src/util/thread_pool.hpp"

namespace tsc {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, ReturnsTaskResults) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, PropagatesExceptionsAndSurvivesThem) {
  util::ThreadPool pool(2);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool must stay usable after a task threw.
  auto good = pool.submit([] { return 42; });
  EXPECT_EQ(good.get(), 42);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> count{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 64; ++i)
      pool.submit([&count] { count.fetch_add(1); });
  }  // dtor joins after running everything queued
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ConcurrentLoggingIsSafe) {
  // log_* must be callable from pool workers (single stream write per line;
  // TSan runs of this test verify there is no data race).
  util::ThreadPool pool(4);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i)
    futures.push_back(pool.submit(
        [i] { log_info("concurrent log line ", i, " value ", i * 0.5); }));
  for (auto& f : futures) f.get();
}

TEST(ThreadPool, AtLeastOneThread) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

// ---------------------------------------------------------------------------
// merge_rollouts

rl::RolloutBuffer make_buffer(std::size_t num_agents, std::size_t steps,
                              double tag) {
  rl::RolloutBuffer buffer(num_agents);
  for (std::size_t t = 0; t < steps; ++t) {
    for (std::size_t a = 0; a < num_agents; ++a) {
      rl::Sample s;
      s.obs = {tag, static_cast<double>(t)};
      s.action = a;
      s.reward = tag;
      buffer.add(a, std::move(s));
    }
  }
  return buffer;
}

TEST(MergeRollouts, ConcatenatesInWorkerOrder) {
  std::vector<rl::RolloutBuffer> parts;
  parts.push_back(make_buffer(2, 3, 1.0));
  parts.push_back(make_buffer(2, 2, 2.0));
  rl::RolloutBuffer merged = rl::merge_rollouts(std::move(parts));
  EXPECT_EQ(merged.num_agents(), 2u);
  EXPECT_EQ(merged.total_samples(), 2u * (3 + 2));
  const auto& agent0 = merged.agent_samples(0);
  ASSERT_EQ(agent0.size(), 5u);
  // Worker 0's episode first, then worker 1's.
  EXPECT_DOUBLE_EQ(agent0[0].obs[0], 1.0);
  EXPECT_DOUBLE_EQ(agent0[2].obs[0], 1.0);
  EXPECT_DOUBLE_EQ(agent0[3].obs[0], 2.0);
  EXPECT_DOUBLE_EQ(agent0[4].obs[1], 1.0);  // step index preserved
}

TEST(MergeRollouts, RejectsMismatchedRosters) {
  std::vector<rl::RolloutBuffer> parts;
  parts.push_back(make_buffer(2, 1, 1.0));
  parts.push_back(make_buffer(3, 1, 2.0));
  EXPECT_THROW(rl::merge_rollouts(std::move(parts)), std::invalid_argument);
}

TEST(MergeRollouts, EmptyInputYieldsEmptyBuffer) {
  rl::RolloutBuffer merged = rl::merge_rollouts({});
  EXPECT_EQ(merged.num_agents(), 0u);
  EXPECT_EQ(merged.total_samples(), 0u);
}

TEST(MergeRollouts, ReservesExactCapacityUpFront) {
  // merge_rollouts sizes every per-agent vector to the exact sample total
  // before moving anything in, so the moves never trigger a growth
  // reallocation and no capacity is left stranded.
  std::vector<rl::RolloutBuffer> parts;
  parts.push_back(make_buffer(3, 7, 1.0));
  parts.push_back(make_buffer(3, 2, 2.0));
  parts.push_back(make_buffer(3, 5, 3.0));
  rl::RolloutBuffer merged = rl::merge_rollouts(std::move(parts));
  for (std::size_t agent = 0; agent < merged.num_agents(); ++agent) {
    EXPECT_EQ(merged.agent_samples(agent).size(), 14u) << "agent " << agent;
    EXPECT_EQ(merged.agent_capacity(agent), merged.agent_samples(agent).size())
        << "agent " << agent;
  }
}

TEST(MergeRollouts, GaeStaysIsolatedPerEpisode) {
  // finish_agent runs GAE per part (with each episode's own bootstrap)
  // BEFORE merge_rollouts concatenates, so merged advantages must equal the
  // per-episode compute_gae outputs exactly — no recurrence across the seam.
  const double gamma = 0.99, lambda = 0.95;
  const std::vector<double> rewards_a = {1.0, 0.0, 2.0};
  const std::vector<double> values_a = {0.5, 0.2, 0.1};
  const std::vector<double> rewards_b = {-1.0, 0.5};
  const std::vector<double> values_b = {0.8, 0.4};

  auto fill = [](rl::RolloutBuffer& buffer, const std::vector<double>& rewards,
                 const std::vector<double>& values) {
    for (std::size_t t = 0; t < rewards.size(); ++t) {
      rl::Sample s;
      s.reward = rewards[t];
      s.value = values[t];
      buffer.add(0, std::move(s));
    }
  };
  std::vector<rl::RolloutBuffer> parts;
  parts.emplace_back(1);
  fill(parts[0], rewards_a, values_a);
  parts[0].finish_agent(0, /*bootstrap_value=*/0.3, gamma, lambda);
  parts.emplace_back(1);
  fill(parts[1], rewards_b, values_b);
  parts[1].finish_agent(0, /*bootstrap_value=*/0.0, gamma, lambda);
  rl::RolloutBuffer merged = rl::merge_rollouts(std::move(parts));

  const auto gae_a = rl::compute_gae(rewards_a, values_a, 0.3, gamma, lambda);
  const auto gae_b = rl::compute_gae(rewards_b, values_b, 0.0, gamma, lambda);
  const auto& samples = merged.agent_samples(0);
  ASSERT_EQ(samples.size(), 5u);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(samples[t].advantage, gae_a.advantages[t]) << "t=" << t;
    EXPECT_EQ(samples[t].ret, gae_a.returns[t]) << "t=" << t;
  }
  for (std::size_t t = 0; t < 2; ++t) {
    EXPECT_EQ(samples[3 + t].advantage, gae_b.advantages[t]) << "t=" << t;
    EXPECT_EQ(samples[3 + t].ret, gae_b.returns[t]) << "t=" << t;
  }
}

// ---------------------------------------------------------------------------
// TscEnv::clone

struct GridFixture {
  scenario::GridScenario grid;
  env::TscEnv environment;

  GridFixture()
      : grid(make_grid()),
        environment(&grid.net(), make_flows(grid), make_env_config(), 1) {}

  static scenario::GridScenario make_grid() {
    scenario::GridConfig config;
    config.rows = 2;
    config.cols = 2;
    return scenario::GridScenario(config);
  }
  static std::vector<sim::FlowSpec> make_flows(const scenario::GridScenario& g) {
    std::vector<sim::FlowSpec> flows;
    for (std::size_t c = 0; c < 2; ++c) {
      sim::FlowSpec f;
      f.route = g.route(g.north_terminal(c), g.south_terminal(c));
      f.profile = {{0.0, 400.0}, {200.0, 400.0}};
      flows.push_back(f);
    }
    return flows;
  }
  static env::EnvConfig make_env_config() {
    env::EnvConfig config;
    config.episode_seconds = 100.0;
    return config;
  }

  core::PairUpConfig fast_config() {
    core::PairUpConfig config;
    config.hidden = 16;
    config.ppo.epochs = 1;
    config.ppo.minibatch = 32;
    config.seed = 7;
    return config;
  }
};

TEST(TscEnvClone, ReplicaIsIndependentAndFaithful) {
  GridFixture f;
  auto replica = f.environment.clone(5);
  ASSERT_NE(replica, nullptr);
  EXPECT_EQ(replica->num_agents(), f.environment.num_agents());

  // Same seed + same actions => identical trajectories.
  f.environment.reset(5);
  replica->reset(5);
  std::vector<std::size_t> actions(f.environment.num_agents(), 0);
  const auto r1 = f.environment.step(actions);
  const auto r2 = replica->step(actions);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) EXPECT_DOUBLE_EQ(r1[i], r2[i]);

  // Stepping the original further must not disturb the replica.
  const double replica_now = replica->now();
  f.environment.step(actions);
  f.environment.step(actions);
  EXPECT_DOUBLE_EQ(replica->now(), replica_now);
  EXPECT_EQ(replica->steps_taken(), 1u);
}

// ---------------------------------------------------------------------------
// Serial-equivalence golden regression.
//
// These exact values were captured from the pre-refactor single-environment
// trainer (fixture above, seed 7; 3 training episodes then one stochastic
// eval at seed 77). collect_rollouts with the default num_envs = 1 must
// reproduce them bit-for-bit: any drift means the engine extraction or the
// tape/matmul changes altered serial training behavior.

TEST(ParallelRollout, SerialPathMatchesPreRefactorGolden) {
  GridFixture f;
  core::PairUpLightTrainer trainer(&f.environment, f.fast_config());

  const double golden_wait[3] = {8.0, 11.0375, 13.275};
  const double golden_travel[3] = {43.363636363636367, 54.785714285714285,
                                   65.888888888888886};
  const double golden_reward[3] = {-0.45687500000000003, -0.64749999999999985,
                                   -0.76312500000000005};
  const std::size_t golden_fin[3] = {5, 8, 1};
  const std::size_t golden_spawn[3] = {22, 28, 18};
  for (int e = 0; e < 3; ++e) {
    const auto s = trainer.train_episode();
    EXPECT_DOUBLE_EQ(s.avg_wait, golden_wait[e]) << "episode " << e;
    EXPECT_DOUBLE_EQ(s.travel_time, golden_travel[e]) << "episode " << e;
    EXPECT_DOUBLE_EQ(s.mean_reward, golden_reward[e]) << "episode " << e;
    EXPECT_EQ(s.vehicles_finished, golden_fin[e]) << "episode " << e;
    EXPECT_EQ(s.vehicles_spawned, golden_spawn[e]) << "episode " << e;
  }

  const auto ev = trainer.eval_episode(77);
  EXPECT_DOUBLE_EQ(ev.avg_wait, 9.2624999999999993);
  EXPECT_DOUBLE_EQ(ev.travel_time, 47.92307692307692);
  EXPECT_DOUBLE_EQ(ev.mean_reward, -0.54812499999999986);
}

TEST(ParallelRollout, ExplicitNumEnvs1MatchesDefault) {
  GridFixture f1, f2;
  core::PairUpConfig explicit_config = f1.fast_config();
  explicit_config.num_envs = 1;
  core::PairUpLightTrainer t1(&f1.environment, explicit_config);
  core::PairUpLightTrainer t2(&f2.environment, f2.fast_config());
  for (int e = 0; e < 2; ++e) {
    const auto s1 = t1.train_episode();
    const auto s2 = t2.train_episode();
    EXPECT_DOUBLE_EQ(s1.avg_wait, s2.avg_wait);
    EXPECT_DOUBLE_EQ(s1.travel_time, s2.travel_time);
    EXPECT_DOUBLE_EQ(s1.mean_reward, s2.mean_reward);
  }
}

// ---------------------------------------------------------------------------
// Parallel collection.

TEST(ParallelRollout, CollectsOneEpisodePerWorker) {
  GridFixture serial_f, parallel_f;
  core::PairUpLightTrainer serial(&serial_f.environment, serial_f.fast_config());
  core::PairUpConfig parallel_config = parallel_f.fast_config();
  parallel_config.num_envs = 3;
  core::PairUpLightTrainer parallel(&parallel_f.environment, parallel_config);
  EXPECT_EQ(parallel.num_envs(), 3u);

  const auto serial_res = serial.collect_rollouts(123);
  const auto parallel_res = parallel.collect_rollouts(123);
  // Fixed episode length => every replica contributes the same step count.
  EXPECT_EQ(parallel_res.env_steps, 3u * serial_res.env_steps);
  EXPECT_EQ(parallel_res.buffer.total_samples(),
            3u * serial_res.buffer.total_samples());
  EXPECT_EQ(parallel_res.buffer.num_agents(), serial_res.buffer.num_agents());
  EXPECT_GT(parallel_res.stats.vehicles_spawned, 0u);
}

TEST(ParallelRollout, AdvantageNormalizationSpansTheMergedBatch) {
  // The update normalizes advantages AFTER merge_rollouts, so the statistics
  // must be batch-global over all num_envs episodes — not per episode.
  GridFixture f;
  core::PairUpConfig config = f.fast_config();
  config.num_envs = 2;
  core::PairUpLightTrainer trainer(&f.environment, config);
  auto collected = trainer.collect_rollouts(321);
  const auto flat = collected.buffer.flatten(/*normalize_advantages=*/true);
  ASSERT_GT(flat.size(), 2u);

  double mean = 0.0;
  for (const rl::Sample* s : flat) mean += s->advantage;
  mean /= static_cast<double>(flat.size());
  double var = 0.0;
  for (const rl::Sample* s : flat) var += (s->advantage - mean) * (s->advantage - mean);
  var /= static_cast<double>(flat.size());
  EXPECT_NEAR(mean, 0.0, 1e-9);
  EXPECT_NEAR(std::sqrt(var), 1.0, 1e-6);

  // Global normalization leaves the two episodes' sub-means offset from
  // zero (they only cancel in aggregate); per-episode normalization would
  // zero each half separately. Verify at least one half is visibly off 0.
  const std::size_t half = flat.size() / 2;
  double mean_a = 0.0;
  for (std::size_t i = 0; i < half; ++i) mean_a += flat[i]->advantage;
  mean_a /= static_cast<double>(half);
  EXPECT_GT(std::abs(mean_a), 1e-6);
}

TEST(ParallelRollout, CollectedGaeRecurrenceHoldsWithinEpisodesOnly) {
  // On the real num_envs=2 path, each agent's merged trajectory is two
  // episodes back to back. Inside each episode the GAE recurrence
  //   adv[t] = delta_t + gamma*lambda*adv[t+1],
  //   delta_t = r_t + gamma*V(s_{t+1}) - V(s_t)
  // must hold; across the episode seam it must NOT (episode 1 ends with its
  // own bootstrap value, not episode 2's opening state).
  GridFixture f;
  core::PairUpConfig config = f.fast_config();
  config.num_envs = 2;
  core::PairUpLightTrainer trainer(&f.environment, config);
  auto collected = trainer.collect_rollouts(654);
  const auto& buffer = collected.buffer;
  const double gamma = config.ppo.gamma, lambda = config.ppo.lambda;

  double max_seam_residual = 0.0;
  for (std::size_t agent = 0; agent < buffer.num_agents(); ++agent) {
    const auto& samples = buffer.agent_samples(agent);
    ASSERT_EQ(samples.size() % 2, 0u);
    const std::size_t episode_len = samples.size() / 2;
    ASSERT_GE(episode_len, 2u);
    for (std::size_t t = 0; t + 1 < samples.size(); ++t) {
      const double delta = samples[t].reward + gamma * samples[t + 1].value -
                           samples[t].value;
      const double residual =
          samples[t].advantage - (delta + gamma * lambda * samples[t + 1].advantage);
      if (t + 1 == episode_len) {
        // Seam between the two workers' episodes.
        max_seam_residual = std::max(max_seam_residual, std::abs(residual));
      } else {
        EXPECT_NEAR(residual, 0.0, 1e-9)
            << "agent " << agent << " step " << t << ": GAE recurrence broken "
            << "inside an episode";
      }
    }
  }
  // If bootstrapping leaked across the seam the recurrence would hold there
  // too, making every seam residual ~0.
  EXPECT_GT(max_seam_residual, 1e-9);
}

TEST(ParallelRollout, ParallelTrainingIsReproducibleRunToRun) {
  GridFixture f1, f2;
  core::PairUpConfig config1 = f1.fast_config();
  config1.num_envs = 3;
  core::PairUpConfig config2 = f2.fast_config();
  config2.num_envs = 3;
  core::PairUpLightTrainer t1(&f1.environment, config1);
  core::PairUpLightTrainer t2(&f2.environment, config2);
  for (int e = 0; e < 2; ++e) {
    const auto s1 = t1.train_episode();
    const auto s2 = t2.train_episode();
    EXPECT_DOUBLE_EQ(s1.avg_wait, s2.avg_wait) << "episode " << e;
    EXPECT_DOUBLE_EQ(s1.travel_time, s2.travel_time) << "episode " << e;
    EXPECT_DOUBLE_EQ(s1.mean_reward, s2.mean_reward) << "episode " << e;
    EXPECT_EQ(s1.vehicles_finished, s2.vehicles_finished) << "episode " << e;
    EXPECT_EQ(s1.vehicles_spawned, s2.vehicles_spawned) << "episode " << e;
  }
  // After identical updates the policies must agree at evaluation too.
  const auto e1 = t1.eval_episode(99);
  const auto e2 = t2.eval_episode(99);
  EXPECT_DOUBLE_EQ(e1.travel_time, e2.travel_time);
  EXPECT_DOUBLE_EQ(e1.mean_reward, e2.mean_reward);
}

}  // namespace
}  // namespace tsc
