// Golden suite for the kernel tier system (nn/kernels.hpp).
//
// Two contracts are pinned here. (1) kReference is the bit-exact status quo:
// the tier plumbing must not move a single bit anywhere while the default is
// in effect — the legacy logistic expression, the pre-PR end-to-end training
// goldens, and tier-overload delegation are all compared exactly. (2) kFast
// is tolerance-bounded: every fast kernel stays within the error budgets
// declared next to its implementation (max ULP vs libm for the
// transcendentals, a condition-free normalized bound for the FMA GEMM), the
// scalar fallback is bit-identical to the SIMD lanes (so fast-tier results
// are reproducible across machines), and end-to-end greedy evaluation picks
// the same actions as the reference tier on the 6x6 grid and the
// heterogeneous Monaco network.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "src/baselines/ma2c.hpp"
#include "src/core/actor.hpp"
#include "src/core/trainer.hpp"
#include "src/env/env.hpp"
#include "src/nn/inference.hpp"
#include "src/nn/kernels.hpp"
#include "src/nn/tensor.hpp"
#include "src/rl/rollout.hpp"
#include "src/scenarios/grid.hpp"
#include "src/scenarios/monaco.hpp"
#include "src/util/rng.hpp"

namespace tsc {
namespace {

// ---------------------------------------------------------------------------
// Tier selection plumbing.

TEST(KernelTiers, ParseAndName) {
  nn::KernelTier tier = nn::KernelTier::kFast;
  EXPECT_TRUE(nn::parse_kernel_tier("reference", &tier));
  EXPECT_EQ(tier, nn::KernelTier::kReference);
  EXPECT_TRUE(nn::parse_kernel_tier("fast", &tier));
  EXPECT_EQ(tier, nn::KernelTier::kFast);
  EXPECT_TRUE(nn::parse_kernel_tier("ref", &tier));
  EXPECT_EQ(tier, nn::KernelTier::kReference);
  EXPECT_TRUE(nn::parse_kernel_tier("1", &tier));
  EXPECT_EQ(tier, nn::KernelTier::kFast);
  EXPECT_TRUE(nn::parse_kernel_tier("0", &tier));
  EXPECT_EQ(tier, nn::KernelTier::kReference);

  tier = nn::KernelTier::kFast;
  EXPECT_FALSE(nn::parse_kernel_tier("turbo", &tier));
  EXPECT_EQ(tier, nn::KernelTier::kFast);  // untouched on failure
  EXPECT_FALSE(nn::parse_kernel_tier("", &tier));

  EXPECT_STREQ(nn::kernel_tier_name(nn::KernelTier::kReference), "reference");
  EXPECT_STREQ(nn::kernel_tier_name(nn::KernelTier::kFast), "fast");
}

TEST(KernelTiers, EnvOverride) {
  ::unsetenv("PAIRUP_KERNEL_TIER");
  EXPECT_EQ(nn::kernel_tier_from_env(nn::KernelTier::kReference),
            nn::KernelTier::kReference);
  ::setenv("PAIRUP_KERNEL_TIER", "fast", 1);
  EXPECT_EQ(nn::kernel_tier_from_env(nn::KernelTier::kReference),
            nn::KernelTier::kFast);
  ::setenv("PAIRUP_KERNEL_TIER", "nonsense", 1);
  EXPECT_EQ(nn::kernel_tier_from_env(nn::KernelTier::kReference),
            nn::KernelTier::kReference);  // warn + keep fallback
  ::unsetenv("PAIRUP_KERNEL_TIER");
}

TEST(KernelTiers, DefaultConfigsAreReferenceTier) {
  EXPECT_EQ(core::PairUpConfig{}.kernel_tier, nn::KernelTier::kReference);
  EXPECT_EQ(baselines::Ma2cConfig{}.kernel_tier, nn::KernelTier::kReference);
  nn::InferenceWorkspace ws;
  EXPECT_EQ(ws.kernel_tier(), nn::KernelTier::kReference);
}

// ---------------------------------------------------------------------------
// Fast-tier accuracy budgets. ULP distance via the ordered-integer mapping
// (sign-magnitude floats to a monotonic int64 line; +-0 both map to 0).

std::int64_t ordered(double x) {
  const std::int64_t i = std::bit_cast<std::int64_t>(x);
  return i >= 0 ? i : std::numeric_limits<std::int64_t>::min() - i;
}

double ulp_distance(double a, double b) {
  if (a == b) return 0.0;                      // covers +0 vs -0
  if (std::isnan(a) || std::isnan(b)) return std::numeric_limits<double>::infinity();
  return std::abs(static_cast<double>(ordered(a) - ordered(b)));
}

// Applies the fast kernel to `xs` and returns the worst ULP distance vs the
// per-element libm oracle.
template <typename Oracle>
double worst_ulp(void (*kernel)(double*, std::size_t, nn::KernelTier),
                 const std::vector<double>& xs, Oracle oracle) {
  std::vector<double> ys = xs;
  kernel(ys.data(), ys.size(), nn::KernelTier::kFast);
  double worst = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    worst = std::max(worst, ulp_distance(ys[i], oracle(xs[i])));
  return worst;
}

std::vector<double> sweep(double lo, double hi, std::size_t n, std::uint64_t seed) {
  std::vector<double> xs;
  xs.reserve(n + 2);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.uniform(lo, hi));
  xs.push_back(lo);
  xs.push_back(hi);
  return xs;
}

TEST(KernelTiers, FastExpWithinUlpBudget) {
  // Live domains: softmax-shifted logits (<= 0, down to the -1e9 mask),
  // tanh's internal exp(2|x|), and the logistic's exp(-x).
  auto xs = sweep(-745.0, 709.0, 40000, 101);
  const auto near_zero = sweep(-1.0, 1.0, 10000, 102);
  xs.insert(xs.end(), near_zero.begin(), near_zero.end());
  EXPECT_LE(worst_ulp(nn::exp_inplace_tier, xs,
                      [](double x) { return std::exp(x); }),
            nn::kFastExpMaxUlp);
}

TEST(KernelTiers, FastTanhWithinUlpBudget) {
  // Gate pre-activations live in a few tens at most; sweep well past the
  // saturation threshold on both sides plus the rational-kernel region.
  auto xs = sweep(-30.0, 30.0, 40000, 103);
  const auto small = sweep(-0.625, 0.625, 10000, 104);
  xs.insert(xs.end(), small.begin(), small.end());
  EXPECT_LE(worst_ulp(nn::tanh_inplace_tier, xs,
                      [](double x) { return std::tanh(x); }),
            nn::kFastTanhMaxUlp);
}

TEST(KernelTiers, FastSigmoidWithinUlpBudget) {
  auto xs = sweep(-60.0, 60.0, 40000, 105);
  const auto wide = sweep(-745.0, 745.0, 10000, 106);
  xs.insert(xs.end(), wide.begin(), wide.end());
  EXPECT_LE(worst_ulp(nn::sigmoid_inplace_tier, xs,
                      [](double x) { return 1.0 / (1.0 + std::exp(-x)); }),
            nn::kFastSigmoidMaxUlp);
}

TEST(KernelTiers, FastSpecialValuesAreExact) {
  // The identities the inference path actually leans on: a masked logit
  // (-1e9 after the max shift) must produce EXACTLY zero probability, and
  // the fixed points of each squash must stay fixed points.
  double e[] = {0.0, -1e9, 1e4, -745.0, 709.0};
  nn::exp_inplace_tier(e, 5, nn::KernelTier::kFast);
  EXPECT_EQ(e[0], 1.0);
  EXPECT_EQ(e[1], 0.0);
  EXPECT_EQ(e[2], std::numeric_limits<double>::infinity());
  EXPECT_GT(e[3], 0.0);  // deep underflow stays positive (denormal range)
  EXPECT_LT(e[4], std::numeric_limits<double>::infinity());

  double t[] = {0.0, -0.0, 40.0, -40.0};
  nn::tanh_inplace_tier(t, 4, nn::KernelTier::kFast);
  EXPECT_EQ(t[0], 0.0);
  EXPECT_EQ(t[1], 0.0);  // -0 comes back as +0 (0 ULP; sign of zero unused)
  EXPECT_EQ(t[2], 1.0);
  EXPECT_EQ(t[3], -1.0);

  double s[] = {0.0, 60.0, -800.0};
  nn::sigmoid_inplace_tier(s, 3, nn::KernelTier::kFast);
  EXPECT_EQ(s[0], 0.5);
  EXPECT_EQ(s[1], 1.0);
  EXPECT_EQ(s[2], 0.0);
}

TEST(KernelTiers, FastSoftmaxMaskedColumnsAreExactlyZero) {
  // Heterogeneous phase counts mask trailing logits with -1e9; the fast
  // softmax must put probability EXACTLY 0 there (so log-probs and sampled
  // actions can never land on a phase the controller does not have).
  nn::Tensor logits = nn::Tensor::matrix(
      2, 4, {0.3, -0.7, -1e9, -1e9, 1.2, 0.0, -0.4, -1e9});
  nn::Tensor probs;
  nn::softmax_rows_into(probs, logits, nn::KernelTier::kFast);
  EXPECT_EQ(probs.at(0, 2), 0.0);
  EXPECT_EQ(probs.at(0, 3), 0.0);
  EXPECT_EQ(probs.at(1, 3), 0.0);
  for (std::size_t r = 0; r < 2; ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < 4; ++c) total += probs.at(r, c);
    EXPECT_NEAR(total, 1.0, 1e-12) << "row " << r;
  }
}

TEST(KernelTiers, FastGemmWithinNormalizedErrorBudget) {
  // Same shape zoo as the fleet GEMM suite: single rows, exact tiles, and
  // ragged everything. The bound is |fast - reference| normalized by
  // k * max|a| * max|b| (condition-free; see kernels.hpp).
  Rng rng(9);
  const struct Shape {
    std::size_t m, k, n;
  } shapes[] = {
      {1, 3, 5}, {4, 8, 8}, {7, 16, 8}, {8, 64, 256},
      {17, 33, 19}, {36, 64, 256}, {144, 64, 8}, {5, 1, 1},
  };
  for (const Shape& s : shapes) {
    nn::Tensor a = nn::Tensor::zeros(s.m, s.k);
    nn::Tensor b = nn::Tensor::zeros(s.k, s.n);
    for (double& x : a.values())
      x = rng.bernoulli(0.3) ? 0.0 : rng.uniform(-2.0, 2.0);
    for (double& x : b.values()) x = rng.uniform(-2.0, 2.0);
    double amax = 0.0, bmax = 0.0;
    for (double x : a.values()) amax = std::max(amax, std::abs(x));
    for (double x : b.values()) bmax = std::max(bmax, std::abs(x));
    const double scale = static_cast<double>(s.k) * amax * bmax;

    nn::Tensor ref, fast;
    nn::matmul_into(ref, a, b);
    nn::matmul_into_fast(fast, a, b);
    ASSERT_EQ(ref.rows(), fast.rows());
    ASSERT_EQ(ref.cols(), fast.cols());
    double worst = 0.0;
    for (std::size_t i = 0; i < ref.size(); ++i)
      worst = std::max(worst, std::abs(fast.data()[i] - ref.data()[i]));
    EXPECT_LE(worst / scale, nn::kFastGemmMaxNormErr)
        << s.m << "x" << s.k << "x" << s.n;
  }
}

// ---------------------------------------------------------------------------
// Runtime dispatch: the portable scalar fallback must be bit-identical to
// the SIMD lanes, so fast-tier results do not depend on the host CPU.

struct ForceScalarGuard {
  bool saved = nn::fast_tier_force_scalar();
  ~ForceScalarGuard() { nn::set_fast_tier_force_scalar(saved); }
};

TEST(KernelTiers, ForceScalarFallbackBitIdenticalToSimd) {
  ForceScalarGuard guard;
  nn::set_fast_tier_force_scalar(false);
  if (!nn::fast_tier_simd_active())
    GTEST_SKIP() << "SIMD fast tier not compiled in or not supported by this "
                    "CPU; the fast tier already runs the scalar fallback";

  const auto xs = sweep(-50.0, 50.0, 20000, 107);
  auto run_all = [&] {
    std::vector<double> out;
    std::vector<double> buf = xs;
    nn::exp_inplace_tier(buf.data(), buf.size(), nn::KernelTier::kFast);
    out.insert(out.end(), buf.begin(), buf.end());
    buf = xs;
    nn::tanh_inplace_tier(buf.data(), buf.size(), nn::KernelTier::kFast);
    out.insert(out.end(), buf.begin(), buf.end());
    buf = xs;
    nn::sigmoid_inplace_tier(buf.data(), buf.size(), nn::KernelTier::kFast);
    out.insert(out.end(), buf.begin(), buf.end());
    Rng rng(31);
    nn::Tensor a = nn::Tensor::zeros(17, 33);
    nn::Tensor b = nn::Tensor::zeros(33, 19);
    for (double& x : a.values()) x = rng.uniform(-2.0, 2.0);
    for (double& x : b.values()) x = rng.uniform(-2.0, 2.0);
    nn::Tensor c;
    nn::matmul_into_fast(c, a, b);
    out.insert(out.end(), c.data(), c.data() + c.size());
    return out;
  };

  const auto simd = run_all();
  nn::set_fast_tier_force_scalar(true);
  EXPECT_FALSE(nn::fast_tier_simd_active());
  const auto scalar = run_all();
  ASSERT_EQ(simd.size(), scalar.size());
  EXPECT_EQ(0, std::memcmp(simd.data(), scalar.data(),
                           simd.size() * sizeof(double)))
      << "scalar fallback diverged from the SIMD lanes";
}

// ---------------------------------------------------------------------------
// Reference tier: bit-exact legacy behavior.

TEST(KernelTiers, ReferenceLogisticMatchesLegacySquashBitForBit) {
  // nn::logistic deduplicates the hand-rolled 1/(1+exp(-x)) message squash
  // from rollout_engine.cpp and fleet_engine.cpp; in the reference tier it
  // must reproduce that exact expression, bit for bit.
  Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform(-30.0, 30.0);
    EXPECT_EQ(nn::logistic(x, nn::KernelTier::kReference),
              1.0 / (1.0 + std::exp(-x)))
        << "x = " << x;
  }
  EXPECT_EQ(nn::logistic(0.0, nn::KernelTier::kReference), 0.5);
}

TEST(KernelTiers, ReferenceTierOverloadsDelegateBitForBit) {
  Rng rng(19);
  nn::Tensor logits = nn::Tensor::zeros(5, 7);
  for (double& x : logits.values()) x = rng.uniform(-4.0, 4.0);
  nn::Tensor legacy, tiered;
  nn::softmax_rows_into(legacy, logits);
  nn::softmax_rows_into(tiered, logits, nn::KernelTier::kReference);
  for (std::size_t i = 0; i < legacy.size(); ++i)
    ASSERT_EQ(legacy.data()[i], tiered.data()[i]) << "softmax elem " << i;

  nn::log_softmax_rows_into(legacy, logits);
  nn::log_softmax_rows_into(tiered, logits, nn::KernelTier::kReference);
  for (std::size_t i = 0; i < legacy.size(); ++i)
    ASSERT_EQ(legacy.data()[i], tiered.data()[i]) << "log_softmax elem " << i;

  nn::Tensor ta = logits, tb = logits;
  nn::tanh_inplace(ta);
  nn::tanh_inplace(tb, nn::KernelTier::kReference);
  for (std::size_t i = 0; i < ta.size(); ++i)
    ASSERT_EQ(ta.data()[i], tb.data()[i]) << "tanh elem " << i;
}

// The 2x2 end-to-end fixture shared with the inference-path suite.
struct GridFixture {
  scenario::GridScenario grid;
  env::TscEnv environment;

  GridFixture()
      : grid(make_grid()),
        environment(&grid.net(), make_flows(grid), make_env_config(), 1) {}

  static scenario::GridScenario make_grid() {
    scenario::GridConfig config;
    config.rows = 2;
    config.cols = 2;
    return scenario::GridScenario(config);
  }
  static std::vector<sim::FlowSpec> make_flows(const scenario::GridScenario& g) {
    std::vector<sim::FlowSpec> flows;
    for (std::size_t c = 0; c < 2; ++c) {
      sim::FlowSpec f;
      f.route = g.route(g.north_terminal(c), g.south_terminal(c));
      f.profile = {{0.0, 400.0}, {200.0, 400.0}};
      flows.push_back(f);
    }
    return flows;
  }
  static env::EnvConfig make_env_config() {
    env::EnvConfig config;
    config.episode_seconds = 100.0;
    return config;
  }

  core::PairUpConfig fast_config() {
    core::PairUpConfig config;
    config.hidden = 16;
    config.ppo.epochs = 1;
    config.ppo.minibatch = 32;
    config.seed = 7;
    return config;
  }
};

void expect_stats_identical(const env::EpisodeStats& a,
                            const env::EpisodeStats& b, const char* what) {
  EXPECT_EQ(a.avg_wait, b.avg_wait) << what;
  EXPECT_EQ(a.travel_time, b.travel_time) << what;
  EXPECT_EQ(a.mean_reward, b.mean_reward) << what;
  EXPECT_EQ(a.vehicles_finished, b.vehicles_finished) << what;
  EXPECT_EQ(a.vehicles_spawned, b.vehicles_spawned) << what;
}

TEST(KernelTiers, DefaultTierReproducesPrePrGoldens) {
  // Trajectory + trained-weight goldens captured on this fixture BEFORE the
  // tier system existed. The default (reference) tier must keep reproducing
  // them exactly: any drift means the tier plumbing perturbed the legacy
  // path, which is the one thing it must never do.
  GridFixture f;
  core::PairUpLightTrainer trainer(&f.environment, f.fast_config());

  const auto t0 = trainer.train_episode();
  EXPECT_EQ(t0.avg_wait, 8.0);
  EXPECT_EQ(t0.mean_reward, -0.45687500000000003);
  EXPECT_EQ(t0.travel_time, 43.363636363636367);

  const auto t1 = trainer.train_episode();
  EXPECT_EQ(t1.avg_wait, 11.0375);
  EXPECT_EQ(t1.mean_reward, -0.64749999999999985);
  EXPECT_EQ(t1.travel_time, 54.785714285714285);

  const auto e = trainer.eval_episode(77);
  EXPECT_EQ(e.avg_wait, 9.2624999999999993);
  EXPECT_EQ(e.mean_reward, -0.54812499999999986);
  EXPECT_EQ(e.travel_time, 47.92307692307692);
  EXPECT_EQ(e.vehicles_finished, 2u);

  std::size_t count = 0;
  double sum = 0.0, sumsq = 0.0;
  for (std::size_t m = 0; m < trainer.num_models(); ++m) {
    for (nn::Parameter* p : trainer.actor(m).parameters())
      for (double v : p->value.values()) { ++count; sum += v; sumsq += v * v; }
    for (nn::Parameter* p : trainer.critic(m).parameters())
      for (double v : p->value.values()) { ++count; sum += v; sumsq += v * v; }
  }
  EXPECT_EQ(count, 5082u);
  EXPECT_EQ(sum, 26.508848675424137);
  EXPECT_EQ(sumsq, 160.95480015356355);
}

// ---------------------------------------------------------------------------
// Fast tier end-to-end: tolerance at the logits, parity at the actions.

TEST(KernelTiers, ActorForwardAcrossTiersStaysWithinTolerance) {
  // Direct network-level divergence bound: recurrent actor forwards with
  // per-tier LSTM state carried over 5 steps. A few-ULP kernel error can
  // compound through the recurrence, but must stay far below the logit gaps
  // that decide actions.
  const std::size_t obs_dim = 6, msg_dim = 2, hidden = 8, max_phases = 4;
  const std::size_t batch = 3;
  const std::vector<std::size_t> phase_counts = {2, 4, 3};
  Rng weight_rng(11);
  core::CoordinatedActor actor(obs_dim, msg_dim, hidden, max_phases, weight_rng);

  Rng input_rng(21);
  nn::InferenceWorkspace ref_ws, fast_ws;
  fast_ws.set_kernel_tier(nn::KernelTier::kFast);
  std::vector<double> ref_h(batch * hidden, 0.0), ref_c(batch * hidden, 0.0);
  std::vector<double> fast_h(batch * hidden, 0.0), fast_c(batch * hidden, 0.0);

  for (std::size_t step = 0; step < 5; ++step) {
    std::vector<double> input(batch * (obs_dim + msg_dim));
    for (double& x : input) x = input_rng.uniform(-1.0, 1.0);

    auto forward = [&](nn::InferenceWorkspace& ws, std::vector<double>& h,
                       std::vector<double>& c) {
      ws.begin_pass();
      nn::Tensor& x_in = ws.acquire(batch, obs_dim + msg_dim);
      std::copy(input.begin(), input.end(), x_in.data());
      nn::Tensor& h_in = ws.acquire(batch, hidden);
      std::copy(h.begin(), h.end(), h_in.data());
      nn::Tensor& c_in = ws.acquire(batch, hidden);
      std::copy(c.begin(), c.end(), c_in.data());
      const auto out = actor.forward_inference(ws, x_in, h_in, c_in, phase_counts);
      h.assign(out.h->data(), out.h->data() + batch * hidden);
      c.assign(out.c->data(), out.c->data() + batch * hidden);
      return out;
    };

    const auto ref = forward(ref_ws, ref_h, ref_c);
    const auto fast = forward(fast_ws, fast_h, fast_c);
    for (std::size_t r = 0; r < batch; ++r)
      for (std::size_t cc = 0; cc < phase_counts[r]; ++cc)
        EXPECT_NEAR(ref.logits->at(r, cc), fast.logits->at(r, cc), 1e-9)
            << "step " << step << " logit (" << r << "," << cc << ")";
    for (std::size_t i = 0; i < batch * msg_dim; ++i)
      EXPECT_NEAR(ref.message->data()[i], fast.message->data()[i], 1e-9)
          << "step " << step << " message " << i;
    // Masked logits are identical huge negatives on both tiers.
    EXPECT_LT(fast.logits->at(0, 3), -1e8);
  }
}

void run_greedy_eval_parity(env::TscEnv* ref_env, env::TscEnv* fast_env,
                            core::PairUpConfig config) {
  config.greedy_eval = true;
  core::PairUpConfig fast_config = config;
  fast_config.kernel_tier = nn::KernelTier::kFast;
  core::PairUpLightTrainer ref_trainer(ref_env, config);
  core::PairUpLightTrainer fast_trainer(fast_env, fast_config);

  // Same seed, no training: both trainers hold bit-identical weights, so any
  // stat difference can only come from a kernel-induced argmax flip.
  for (std::uint64_t seed : {77u, 78u, 79u}) {
    const auto ref = ref_trainer.eval_episode(seed);
    const auto fast = fast_trainer.eval_episode(seed);
    EXPECT_GT(ref.vehicles_spawned, 0u);  // not vacuously equal
    expect_stats_identical(ref, fast, "greedy eval across tiers");
  }
}

TEST(KernelTiers, FastGreedyEvalMatchesReferenceOnGrid) {
  GridFixture ref_f, fast_f;
  run_greedy_eval_parity(&ref_f.environment, &fast_f.environment,
                         ref_f.fast_config());
}

TEST(KernelTiers, FastGreedyEvalMatchesReferenceOnMonaco) {
  // Heterogeneous Monaco network without parameter sharing: every model
  // bucket and phase-count mask shape goes through the fast kernels.
  struct MonacoFixture {
    scenario::MonacoScenario monaco;
    env::TscEnv environment;
    MonacoFixture()
        : monaco(make_config()),
          environment(&monaco.net(), monaco.make_flows(700.0, 0.05, 4, 13),
                      make_env_config(), 1) {}
    static scenario::MonacoConfig make_config() {
      scenario::MonacoConfig config;
      config.grid_rows = 4;
      config.grid_cols = 3;
      return config;
    }
    static env::EnvConfig make_env_config() {
      env::EnvConfig config;
      config.episode_seconds = 120.0;
      return config;
    }
  };
  MonacoFixture ref_f, fast_f;
  core::PairUpConfig config;
  config.hidden = 12;
  config.ppo.epochs = 1;
  config.seed = 7;
  config.parameter_sharing = false;
  run_greedy_eval_parity(&ref_f.environment, &fast_f.environment, config);
}

TEST(KernelTiers, FleetMatchesPerAgentWithinFastTier) {
  // Within the fast tier, BOTH GEMM paths route to the FMA kernel and the
  // squash/softmax go through the same tier dispatch, so fleet-batched
  // collection stays bit-identical to the per-agent path — the fleet
  // bit-identity contract survives the tier switch.
  GridFixture per_f, fleet_f;
  core::PairUpConfig per_config = per_f.fast_config();
  per_config.num_envs = 2;
  per_config.kernel_tier = nn::KernelTier::kFast;
  core::PairUpConfig fleet_config = per_config;
  fleet_config.fleet_batched = true;
  core::PairUpLightTrainer per_trainer(&per_f.environment, per_config);
  core::PairUpLightTrainer fleet_trainer(&fleet_f.environment, fleet_config);

  auto r1 = per_trainer.collect_rollouts(12345);
  auto r2 = fleet_trainer.collect_rollouts(12345);
  expect_stats_identical(r1.stats, r2.stats, "fast-tier collect stats");
  EXPECT_EQ(r1.env_steps, r2.env_steps);
  ASSERT_EQ(r1.buffer.num_agents(), r2.buffer.num_agents());
  for (std::size_t i = 0; i < r1.buffer.num_agents(); ++i) {
    const auto& sa = r1.buffer.agent_samples(i);
    const auto& sb = r2.buffer.agent_samples(i);
    ASSERT_EQ(sa.size(), sb.size()) << "agent " << i;
    for (std::size_t t = 0; t < sa.size(); ++t) {
      EXPECT_EQ(sa[t].obs, sb[t].obs) << "agent " << i << " step " << t;
      EXPECT_EQ(sa[t].h_actor, sb[t].h_actor) << "agent " << i << " step " << t;
      EXPECT_EQ(sa[t].c_actor, sb[t].c_actor) << "agent " << i << " step " << t;
      EXPECT_EQ(sa[t].action, sb[t].action) << "agent " << i << " step " << t;
      EXPECT_EQ(sa[t].log_prob, sb[t].log_prob) << "agent " << i << " step " << t;
      EXPECT_EQ(sa[t].value, sb[t].value) << "agent " << i << " step " << t;
      EXPECT_EQ(sa[t].ret, sb[t].ret) << "agent " << i << " step " << t;
    }
  }
}

}  // namespace
}  // namespace tsc
