// Property-based sweeps: simulator invariants that must hold across the
// whole configuration space (lane counts, saturation headways, yellow
// times, demand levels, signal policies). Each property is checked for
// every combination via parameterized tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <tuple>
#include <utility>
#include <vector>

#include "sim_fixtures.hpp"
#include "src/sim/simulator.hpp"

namespace tsc::sim {
namespace {

using test::Cross;

struct SweepCase {
  std::uint32_t lanes;
  double sat_headway;
  double yellow;
  double demand_veh_h;   // per approach
  int policy;            // 0 = hold phase 0, 1 = alternate every 10 s
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  return "lanes" + std::to_string(c.lanes) + "_h" +
         std::to_string(static_cast<int>(c.sat_headway * 10)) + "_y" +
         std::to_string(static_cast<int>(c.yellow)) + "_d" +
         std::to_string(static_cast<int>(c.demand_veh_h)) + "_p" +
         std::to_string(c.policy);
}

class SimulatorSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  /// Runs 300 ticks of a crossing under the case's config and policy,
  /// checking stepwise invariants throughout.
  void run_and_check() {
    const SweepCase& c = GetParam();
    Cross cross(200.0, 10.0, c.lanes);
    auto f1 = cross.flow_ns({{0.0, c.demand_veh_h}, {300.0, c.demand_veh_h}});
    auto f2 = cross.flow_we({{0.0, c.demand_veh_h}, {300.0, c.demand_veh_h}});
    SimConfig config;
    config.sat_headway = c.sat_headway;
    config.yellow_time = c.yellow;
    Simulator sim(&cross.net, {f1, f2}, config, 1234);

    std::size_t last_finished = 0;
    for (int tick = 0; tick < 300; ++tick) {
      if (c.policy == 1 && tick % 10 == 0)
        sim.set_phase(cross.center, (tick / 10) % 2);
      sim.step();

      // Invariant: conservation. Every spawned vehicle is finished, on a
      // link, or in an entry backlog.
      std::uint32_t on_network = 0;
      for (LinkId l = 0; l < cross.net.num_links(); ++l)
        on_network += sim.link_count(l);
      std::size_t backlog = 0;
      for (const Vehicle& v : sim.vehicles())
        if (!v.finished && v.entered < 0.0) ++backlog;
      ASSERT_EQ(sim.vehicles_spawned(),
                sim.vehicles_finished() + on_network + backlog);

      // Invariant: storage. No link ever exceeds its capacity.
      for (LinkId l = 0; l < cross.net.num_links(); ++l)
        ASSERT_LE(sim.link_count(l), sim.link_capacity(l));

      // Invariant: monotone completions.
      ASSERT_GE(sim.vehicles_finished(), last_finished);
      last_finished = sim.vehicles_finished();

      // Invariant: queues never exceed total on-link counts.
      for (LinkId l = 0; l < cross.net.num_links(); ++l)
        ASSERT_LE(sim.link_queue(l), sim.link_count(l));

      // Invariant: detector view never exceeds ground truth.
      for (LinkId l = 0; l < cross.net.num_links(); ++l) {
        ASSERT_LE(sim.detector_queue(l), sim.link_queue(l));
        ASSERT_LE(sim.detector_count(l), sim.link_count(l));
      }

      // Invariant: non-negative measures.
      ASSERT_GE(sim.network_avg_wait(), 0.0);
      ASSERT_GE(sim.average_travel_time(), 0.0);
    }

    // Invariant: every finished trip took at least the free-flow time
    // (two 200 m links at 10 m/s = 40 s).
    for (const Vehicle& v : sim.vehicles()) {
      if (!v.finished) continue;
      ASSERT_GE(v.exit_time - v.depart_scheduled, 40.0 - 1e-9);
      ASSERT_GE(v.wait_total, 0.0);
    }

    // Invariant: determinism - replay from the same seed matches exactly.
    Simulator replay(&cross.net, {f1, f2}, config, 1234);
    for (int tick = 0; tick < 300; ++tick) {
      if (c.policy == 1 && tick % 10 == 0)
        replay.set_phase(cross.center, (tick / 10) % 2);
      replay.step();
    }
    ASSERT_EQ(replay.vehicles_spawned(), sim.vehicles_spawned());
    ASSERT_EQ(replay.vehicles_finished(), sim.vehicles_finished());
    ASSERT_DOUBLE_EQ(replay.average_travel_time(), sim.average_travel_time());
  }
};

TEST_P(SimulatorSweep, InvariantsHold) { run_and_check(); }

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (std::uint32_t lanes : {1u, 2u})
    for (double headway : {1.5, 2.0, 3.0})
      for (double yellow : {0.0, 2.0})
        for (double demand : {200.0, 900.0})
          for (int policy : {0, 1})
            cases.push_back({lanes, headway, yellow, demand, policy});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(ConfigSpace, SimulatorSweep,
                         ::testing::ValuesIn(sweep_cases()), case_name);

// ---------------------------------------------------------------------------
// Throughput property: with permanent green and saturated demand, measured
// discharge approaches the configured saturation flow.

class SaturationFlow : public ::testing::TestWithParam<double> {};

TEST_P(SaturationFlow, DischargeMatchesConfiguredHeadway) {
  const double headway = GetParam();
  Cross cross;
  // Saturate the NS approach; phase 0 keeps it green permanently.
  auto f = cross.flow_ns({{0.0, 3000.0}, {400.0, 3000.0}});
  SimConfig config;
  config.sat_headway = headway;
  Simulator sim(&cross.net, {f}, config, 77);
  sim.step_seconds(100.0);  // fill the queue
  const std::size_t before = sim.vehicles_finished();
  sim.step_seconds(200.0);
  const double rate =
      static_cast<double>(sim.vehicles_finished() - before) / 200.0;
  // The theoretical saturation rate is 1/headway; allow simulation slack
  // (the queue occasionally starves while arrivals are in the approach
  // zone at high headway).
  EXPECT_GT(rate, 0.75 / headway);
  EXPECT_LE(rate, 1.0 / headway + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Headways, SaturationFlow,
                         ::testing::Values(1.5, 2.0, 2.5, 4.0),
                         [](const auto& info) {
                           return "h" + std::to_string(static_cast<int>(
                                            info.param * 10));
                         });

// ---------------------------------------------------------------------------
// Demand-response property: more demand never yields fewer completions
// under the same (work-conserving, alternating) signal policy.

// ---------------------------------------------------------------------------
// Yellow-clearance interlock property: no queued vehicle crosses the
// stopline of a node that is clearing — including the FULL restarted
// clearance after a mid-yellow retarget. Pre-fix,
// SignalController::request_phase kept the original countdown on a
// retarget, so the new phase could go green (and discharge) less than
// yellow_time after being chosen; this sweep caught that as a vehicle
// advancing within the [retarget, retarget + yellow_time) window.

TEST(YellowClearanceProperty, NoDischargeDuringYellowOrFreshRetarget) {
  // A 4-way crossing with THREE phases so a mid-yellow retarget can name a
  // phase that differs from both the current and the pending one.
  RoadNetwork net;
  const NodeId center = net.add_node(NodeType::kSignalized, 0, 0, "C");
  const NodeId n = net.add_node(NodeType::kBoundary, 0, 200, "N");
  const NodeId s = net.add_node(NodeType::kBoundary, 0, -200, "S");
  const NodeId w = net.add_node(NodeType::kBoundary, -200, 0, "W");
  const NodeId e = net.add_node(NodeType::kBoundary, 200, 0, "E");
  const LinkId n_in = net.add_link(n, center, 200, 1, 10, "n_in");
  const LinkId s_out = net.add_link(center, s, 200, 1, 10, "s_out");
  const LinkId s_in = net.add_link(s, center, 200, 1, 10, "s_in");
  const LinkId n_out = net.add_link(center, n, 200, 1, 10, "n_out");
  const LinkId w_in = net.add_link(w, center, 200, 1, 10, "w_in");
  const LinkId e_out = net.add_link(center, e, 200, 1, 10, "e_out");
  const LinkId e_in = net.add_link(e, center, 200, 1, 10, "e_in");
  const LinkId w_out = net.add_link(center, w, 200, 1, 10, "w_out");
  const MovementId m_ns = net.add_movement(n_in, s_out, Turn::kThrough, {0});
  const MovementId m_sn = net.add_movement(s_in, n_out, Turn::kThrough, {0});
  const MovementId m_we = net.add_movement(w_in, e_out, Turn::kThrough, {0});
  const MovementId m_ew = net.add_movement(e_in, w_out, Turn::kThrough, {0});
  net.set_phases(center, {{m_ns, m_sn}, {m_we}, {m_ew}});
  net.finalize();

  auto make_flow = [](LinkId in, LinkId out) {
    FlowSpec f;
    f.route = {in, out};
    f.profile = {{0.0, 700.0}, {400.0, 700.0}};
    return f;
  };
  SimConfig config;  // tick 1 s, yellow 2 s
  Simulator sim(&net,
                {make_flow(n_in, s_out), make_flow(s_in, n_out),
                 make_flow(w_in, e_out), make_flow(e_in, w_out)},
                config, 321);

  const LinkId in_links[] = {n_in, s_in, w_in, e_in};
  auto on_in_link = [&](const Vehicle& v) {
    const LinkId l = sim.flows()[v.flow].route[v.hop];
    return std::find(std::begin(in_links), std::end(in_links), l) !=
           std::end(in_links);
  };

  double last_retarget = -1e9;
  for (int tick = 0; tick < 400; ++tick) {
    // Every 20 ticks start a switch; one tick into its yellow, change the
    // target again (when that names a genuinely different phase).
    if (tick % 20 == 10) sim.set_phase(center, (tick / 20 + 1) % 3);
    if (tick % 20 == 11 && sim.signal(center).in_yellow()) {
      const std::size_t target = (tick / 20 + 2) % 3;
      if (target != sim.signal(center).phase())
        last_retarget = static_cast<double>(tick);
      sim.set_phase(center, target);
    }

    const bool yellow_before = sim.signal(center).in_yellow();
    const bool clearing =
        sim.now() + 1e-9 < last_retarget + config.yellow_time;
    std::vector<std::pair<std::size_t, std::uint32_t>> held;  // index, hop
    if (yellow_before || clearing) {
      const auto& vehicles = sim.vehicles();
      for (std::size_t i = 0; i < vehicles.size(); ++i) {
        const Vehicle& v = vehicles[i];
        if (v.finished || v.entered < 0.0) continue;
        if (on_in_link(v)) held.push_back({i, v.hop});
      }
    }
    sim.step();
    for (const auto& [idx, hop] : held)
      ASSERT_EQ(sim.vehicles()[idx].hop, hop)
          << "vehicle " << idx << " crossed a clearing stopline at tick "
          << tick;
  }
  // The sweep must have exercised real traffic, not an empty intersection.
  EXPECT_GT(sim.vehicles_finished(), 50u);
}

TEST(DemandMonotonicity, CompletionsGrowWithDemand) {
  std::size_t prev_finished = 0;
  for (double demand : {100.0, 300.0, 600.0}) {
    Cross cross;
    auto f = cross.flow_ns({{0.0, demand}, {400.0, demand}});
    Simulator sim(&cross.net, {f}, SimConfig{}, 55);
    sim.step_seconds(400.0);  // NS green throughout (phase 0)
    EXPECT_GE(sim.vehicles_finished(), prev_finished);
    prev_finished = sim.vehicles_finished();
  }
  EXPECT_GT(prev_finished, 20u);
}

}  // namespace
}  // namespace tsc::sim
