#include "src/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim_fixtures.hpp"

namespace tsc::sim {
namespace {

using test::Chain;
using test::Cross;

SimConfig default_config() { return SimConfig{}; }

TEST(Simulator, RequiresFinalizedNetwork) {
  RoadNetwork net;
  net.add_node(NodeType::kBoundary, 0, 0);
  EXPECT_THROW(Simulator(&net, {}, default_config(), 1), std::invalid_argument);
}

TEST(Simulator, RejectsInvalidRoutes) {
  Chain chain;
  {
    FlowSpec f;  // empty route
    EXPECT_THROW(Simulator(&chain.net, {f}, default_config(), 1),
                 std::invalid_argument);
  }
  {
    FlowSpec f;  // hop without a movement (l1 -> l0 has none)
    f.route = {chain.l1, chain.l0};
    EXPECT_THROW(Simulator(&chain.net, {f}, default_config(), 1),
                 std::invalid_argument);
  }
  {
    FlowSpec f;  // route ending at an interior node
    f.route = {chain.l0};
    EXPECT_THROW(Simulator(&chain.net, {f}, default_config(), 1),
                 std::invalid_argument);
  }
}

TEST(Simulator, FreeFlowTravelTimeOnEmptyRoad) {
  // 200 m links at 10 m/s through an unsignalized node: ~40 s + one
  // discharge headway at the middle queue.
  Chain chain(200.0, 1, 10.0);
  auto f = chain.flow({{0.0, 3600.0}, {1.0, 0.0}});  // ~1 vehicle at t=0
  Simulator sim(&chain.net, {f}, default_config(), 3);
  sim.step_seconds(120.0);
  ASSERT_GE(sim.vehicles_finished(), 1u);
  const double tt = sim.average_travel_time_finished();
  EXPECT_GE(tt, 40.0);
  EXPECT_LE(tt, 46.0);  // free flow + queue service, no congestion
}

TEST(Simulator, VehicleConservation) {
  Cross cross;
  auto f1 = cross.flow_ns({{0.0, 800.0}, {300.0, 800.0}});
  auto f2 = cross.flow_we({{0.0, 800.0}, {300.0, 800.0}});
  Simulator sim(&cross.net, {f1, f2}, default_config(), 5);
  for (int i = 0; i < 400; ++i) {
    sim.step();
    std::uint32_t on_network = 0;
    for (LinkId l = 0; l < cross.net.num_links(); ++l)
      on_network += sim.link_count(l);
    // spawned == finished + on_network + backlog(not entered)
    std::size_t backlog = 0;
    for (const Vehicle& v : sim.vehicles())
      if (!v.finished && v.entered < 0.0) ++backlog;
    EXPECT_EQ(sim.vehicles_spawned(),
              sim.vehicles_finished() + on_network + backlog);
  }
  EXPECT_GT(sim.vehicles_spawned(), 50u);
}

TEST(Simulator, RedLightBlocksDischarge) {
  Cross cross;
  auto f = cross.flow_we({{0.0, 1200.0}, {60.0, 1200.0}});
  Simulator sim(&cross.net, {f}, default_config(), 7);
  // Phase 0 = NS green, so WE traffic must queue.
  sim.step_seconds(60.0);
  EXPECT_GT(sim.link_queue(cross.w_in), 0u);
  EXPECT_EQ(sim.link_count(cross.e_out), 0u);
  EXPECT_EQ(sim.vehicles_finished(), 0u);
}

TEST(Simulator, GreenDischargesAtSaturationRate) {
  Cross cross;
  // Load a long queue while red, then release and count the discharge rate.
  auto f = cross.flow_we({{0.0, 1800.0}, {80.0, 1800.0}});
  SimConfig config;
  config.sat_headway = 2.0;
  Simulator sim(&cross.net, {f}, config, 9);
  sim.step_seconds(80.0);  // builds a queue on red
  ASSERT_GT(sim.link_queue(cross.w_in), 10u);
  sim.set_phase(cross.center, 1);  // WE green (after 2 s yellow)
  sim.step_seconds(42.0);          // 40 s effective green
  // Vehicles that crossed the stopline are either finished or on e_out.
  const std::uint32_t crossed = static_cast<std::uint32_t>(
      sim.vehicles_finished() + sim.link_count(cross.e_out));
  // Saturation flow = 1 veh / 2 s -> ~20 vehicles in 40 s of green.
  EXPECT_GE(crossed, 15u);
  EXPECT_LE(crossed, 22u);
}

TEST(Simulator, YellowBlocksDischargeDuringSwitch) {
  Cross cross;
  auto f = cross.flow_we({{0.0, 1800.0}, {40.0, 1800.0}});
  Simulator sim(&cross.net, {f}, default_config(), 11);
  sim.step_seconds(40.0);
  ASSERT_GT(sim.link_queue(cross.w_in), 0u);
  EXPECT_EQ(sim.link_count(cross.e_out), 0u);
  sim.set_phase(cross.center, 1);
  sim.step();  // yellow tick 1
  EXPECT_TRUE(sim.signal(cross.center).in_yellow());
  EXPECT_EQ(sim.link_count(cross.e_out), 0u);  // nothing crosses on yellow
  sim.step();  // yellow tick 2 -> phase switches at end of tick
  EXPECT_EQ(sim.link_count(cross.e_out), 0u);
  sim.step_seconds(5.0);  // green: discharge resumes
  EXPECT_FALSE(sim.signal(cross.center).in_yellow());
  EXPECT_GT(sim.link_count(cross.e_out), 0u);
}

TEST(Simulator, SharedLaneHeadOfLineBlocking) {
  // Network where left-turn and through share a single lane; the leader
  // wants the red left movement and must block the through follower.
  RoadNetwork net;
  const NodeId b0 = net.add_node(NodeType::kBoundary, -200, 0, "B0");
  const NodeId c = net.add_node(NodeType::kSignalized, 0, 0, "C");
  const NodeId east = net.add_node(NodeType::kBoundary, 200, 0, "E");
  const NodeId north = net.add_node(NodeType::kBoundary, 0, 200, "N");
  const LinkId in = net.add_link(b0, c, 200, 1, 10, "in");
  const LinkId out_e = net.add_link(c, east, 200, 1, 10, "out_e");
  const LinkId out_n = net.add_link(c, north, 200, 1, 10, "out_n");
  const MovementId through = net.add_movement(in, out_e, Turn::kThrough, {0});
  const MovementId left = net.add_movement(in, out_n, Turn::kLeft, {0});
  net.set_phases(c, {{through}, {left}});
  net.finalize();

  // First vehicle turns left, the rest go straight. Phase 0 = through green.
  FlowSpec f_left;
  f_left.route = {in, out_n};
  f_left.profile = {{0.0, 3600.0}, {1.0, 0.0}};  // one leader at t~0
  FlowSpec f_through;
  f_through.route = {in, out_e};
  f_through.profile = {{5.0, 1800.0}, {60.0, 1800.0}};
  Simulator sim(&net, {f_left, f_through}, default_config(), 13);
  sim.step_seconds(90.0);
  // The left-turner (red in phase 0) blocks every through vehicle behind it.
  EXPECT_EQ(sim.vehicles_finished(), 0u);
  EXPECT_GT(sim.link_queue(in), 5u);
  // Give the left phase green: the leader clears, then the lane unblocks
  // back on phase 0.
  sim.set_phase(c, 1);
  sim.step_seconds(10.0);
  sim.set_phase(c, 0);
  sim.step_seconds(60.0);
  EXPECT_GT(sim.vehicles_finished(), 10u);
}

TEST(Simulator, SpillbackBlocksUpstreamDischarge) {
  // Short downstream link with tiny storage, held red at its far end: once
  // full, the upstream junction cannot discharge into it even though the
  // upstream junction itself is unsignalized (always green).
  RoadNetwork net;
  const NodeId b0 = net.add_node(NodeType::kBoundary, -200, 0);
  const NodeId j1 = net.add_node(NodeType::kUnsignalized, 0, 0);
  const NodeId j2 = net.add_node(NodeType::kSignalized, 30, 0, "J2");
  const NodeId b1 = net.add_node(NodeType::kBoundary, 230, 0);
  const NodeId b2 = net.add_node(NodeType::kBoundary, 30, 200, "B2");
  const LinkId l_in = net.add_link(b0, j1, 200, 1, 10);
  const LinkId l_short = net.add_link(j1, j2, 30, 1, 10);  // capacity 4
  const LinkId l_out = net.add_link(j2, b1, 200, 1, 10);
  const LinkId l_side = net.add_link(b2, j2, 200, 1, 10);  // competing approach
  net.add_movement(l_in, l_short, Turn::kThrough, {0});
  const MovementId m_exit = net.add_movement(l_short, l_out, Turn::kThrough, {0});
  const MovementId m_side = net.add_movement(l_side, l_out, Turn::kRight, {0});
  net.set_phases(j2, {{m_side}, {m_exit}});  // phase 0 keeps the exit red
  net.finalize();

  FlowSpec f;
  f.route = {l_in, l_short, l_out};
  f.profile = {{0.0, 1500.0}, {120.0, 1500.0}};
  Simulator sim(&net, {f}, default_config(), 15);
  sim.step_seconds(120.0);  // exit red: l_short fills, then spills back
  // Short link saturates at its storage capacity (30 m / 7.5 m = 4).
  EXPECT_EQ(sim.link_count(l_short), 4u);
  EXPECT_GT(sim.link_queue(l_in), 10u);
  EXPECT_EQ(sim.vehicles_finished(), 0u);
  // Release the exit: the corridor drains.
  sim.set_phase(j2, 1);
  sim.step_seconds(200.0);
  EXPECT_GT(sim.vehicles_finished(), 20u);
}

TEST(Simulator, DetectorCapsAtRange) {
  Cross cross;
  auto f = cross.flow_we({{0.0, 1800.0}, {200.0, 1800.0}});
  SimConfig config;
  config.detector_range = 50.0;  // 50 / 7.5 -> 6 vehicles visible
  Simulator sim(&cross.net, {f}, config, 17);
  sim.step_seconds(200.0);  // WE is red; long queue forms
  EXPECT_GT(sim.link_queue(cross.w_in), 6u);
  EXPECT_EQ(sim.detector_queue(cross.w_in), 6u);
  EXPECT_EQ(sim.detector_count(cross.w_in), 6u);
  EXPECT_GT(sim.detector_head_wait(cross.w_in), 100.0);
}

TEST(Simulator, DetectorSeesStoplineHeadEvenWithShortRange) {
  // Regression: with detector_range < vehicle_gap the per-lane cap used to
  // truncate to zero, blinding the detector to the head vehicle that is, by
  // definition, at the stopline.
  Cross cross;
  auto f = cross.flow_we({{0.0, 1800.0}, {200.0, 1800.0}});
  SimConfig config;
  config.detector_range = 5.0;  // shorter than the 7.5 m vehicle gap
  Simulator sim(&cross.net, {f}, config, 17);
  sim.step_seconds(200.0);  // WE is red; long queue forms
  ASSERT_GT(sim.link_queue(cross.w_in), 1u);
  EXPECT_EQ(sim.detector_queue(cross.w_in), 1u);  // the stopline vehicle
  EXPECT_EQ(sim.detector_count(cross.w_in), 1u);
  EXPECT_GT(sim.detector_head_wait(cross.w_in), 0.0);
}

TEST(Simulator, PressureSignsReflectImbalance) {
  Cross cross;
  auto f = cross.flow_we({{0.0, 1200.0}, {100.0, 1200.0}});
  Simulator sim(&cross.net, {f}, default_config(), 19);
  sim.step_seconds(100.0);
  // Queue on w_in, empty e_out: positive link pressure and intersection
  // pressure.
  EXPECT_GT(sim.link_pressure(cross.w_in), 0.0);
  EXPECT_GT(sim.intersection_pressure(cross.center), 0.0);
  EXPECT_EQ(sim.intersection_halting(cross.center), sim.link_queue(cross.w_in));
}

TEST(Simulator, WaitingTimeAccrual) {
  Cross cross;
  auto f = cross.flow_we({{0.0, 3600.0}, {2.0, 0.0}});  // ~1-2 vehicles
  Simulator sim(&cross.net, {f}, default_config(), 21);
  sim.step_seconds(100.0);  // red the whole time
  if (sim.link_queue(cross.w_in) > 0) {
    // Head vehicle arrived after ~20 s travel; has waited since.
    EXPECT_GT(sim.lane_head_wait(cross.w_in, 0), 60.0);
    EXPECT_GT(sim.intersection_max_head_wait(cross.center), 60.0);
    EXPECT_GT(sim.network_avg_wait(), 60.0);
  }
}

TEST(Simulator, AverageTravelTimeChargesUnfinished) {
  Cross cross;
  auto f = cross.flow_we({{0.0, 3600.0}, {2.0, 0.0}});
  Simulator sim(&cross.net, {f}, default_config(), 23);
  sim.step_seconds(200.0);
  ASSERT_GT(sim.vehicles_spawned(), 0u);
  EXPECT_EQ(sim.vehicles_finished(), 0u);  // red forever
  EXPECT_DOUBLE_EQ(sim.average_travel_time_finished(), 0.0);
  EXPECT_GT(sim.average_travel_time(), 150.0);  // charged to now
}

TEST(Simulator, BacklogInsertsWhenSpaceFrees) {
  // Tiny entry link: most vehicles start in the backlog, then trickle in.
  RoadNetwork net;
  const NodeId b0 = net.add_node(NodeType::kBoundary, -30, 0);
  const NodeId j = net.add_node(NodeType::kUnsignalized, 0, 0);
  const NodeId b1 = net.add_node(NodeType::kBoundary, 200, 0);
  const LinkId l_in = net.add_link(b0, j, 30, 1, 10);  // capacity 4
  const LinkId l_out = net.add_link(j, b1, 200, 1, 10);
  net.add_movement(l_in, l_out, Turn::kThrough, {0});
  net.finalize();
  FlowSpec f;
  f.route = {l_in, l_out};
  // Exactly one spawn per tick (p = 1) for 15 s: deterministic burst.
  f.profile = {{0.0, 3600.0}, {15.0, 3600.0}};
  Simulator sim(&net, {f}, default_config(), 25);
  sim.step_seconds(16.0);
  EXPECT_LE(sim.link_count(l_in), 4u);
  const std::size_t spawned = sim.vehicles_spawned();
  ASSERT_GE(spawned, 15u);
  sim.step_seconds(120.0);
  EXPECT_EQ(sim.vehicles_finished(), spawned);  // everyone eventually passes
}

// Regression: average_travel_time used to charge vehicles still in the
// spawn backlog (entered == -1) as if they were traveling, conflating
// source-queue delay with network travel time. That all-vehicles charge now
// lives in average_delay; average_travel_time averages entered vehicles
// only.
TEST(Simulator, TravelTimeCountsEnteredOnlyDelayChargesBacklog) {
  // Tiny entry link (capacity 4) + one spawn per tick: a standing backlog.
  RoadNetwork net;
  const NodeId b0 = net.add_node(NodeType::kBoundary, -30, 0);
  const NodeId j = net.add_node(NodeType::kUnsignalized, 0, 0);
  const NodeId b1 = net.add_node(NodeType::kBoundary, 200, 0);
  const LinkId l_in = net.add_link(b0, j, 30, 1, 10);
  const LinkId l_out = net.add_link(j, b1, 200, 1, 10);
  net.add_movement(l_in, l_out, Turn::kThrough, {0});
  net.finalize();
  FlowSpec f;
  f.route = {l_in, l_out};
  f.profile = {{0.0, 3600.0}, {15.0, 3600.0}};
  Simulator sim(&net, {f}, default_config(), 25);
  sim.step_seconds(16.0);

  // Reconstruct both metrics from per-vehicle state.
  double all_sum = 0.0, entered_sum = 0.0;
  std::size_t all_count = 0, entered_count = 0, backlog = 0;
  for (const Vehicle& v : sim.vehicles()) {
    const double span = v.finished ? v.exit_time - v.depart_scheduled
                                   : sim.now() - v.depart_scheduled;
    all_sum += span;
    ++all_count;
    if (v.finished || v.entered >= 0.0) {
      entered_sum += span;
      ++entered_count;
    } else {
      ++backlog;
    }
  }
  ASSERT_GT(backlog, 0u);  // the scenario must actually have a backlog
  ASSERT_GT(entered_count, 0u);
  EXPECT_DOUBLE_EQ(sim.average_delay(), all_sum / static_cast<double>(all_count));
  EXPECT_DOUBLE_EQ(sim.average_travel_time(),
                   entered_sum / static_cast<double>(entered_count));
  // With a non-empty backlog the populations differ, so the metrics must.
  EXPECT_NE(sim.average_travel_time(), sim.average_delay());
}

TEST(Simulator, DeterministicGivenSeed) {
  Cross cross;
  auto f1 = cross.flow_ns({{0.0, 700.0}, {200.0, 700.0}});
  auto f2 = cross.flow_we({{0.0, 700.0}, {200.0, 700.0}});
  Simulator a(&cross.net, {f1, f2}, default_config(), 99);
  Simulator b(&cross.net, {f1, f2}, default_config(), 99);
  for (int i = 0; i < 200; ++i) {
    if (i == 50) {
      a.set_phase(cross.center, 1);
      b.set_phase(cross.center, 1);
    }
    a.step();
    b.step();
  }
  EXPECT_EQ(a.vehicles_spawned(), b.vehicles_spawned());
  EXPECT_EQ(a.vehicles_finished(), b.vehicles_finished());
  EXPECT_DOUBLE_EQ(a.average_travel_time(), b.average_travel_time());
}

TEST(Simulator, ResetClearsAllState) {
  Cross cross;
  auto f = cross.flow_ns({{0.0, 900.0}, {100.0, 900.0}});
  Simulator sim(&cross.net, {f}, default_config(), 27);
  sim.set_phase(cross.center, 1);
  sim.step_seconds(100.0);
  ASSERT_GT(sim.vehicles_spawned(), 0u);
  sim.reset(27);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.vehicles_spawned(), 0u);
  EXPECT_EQ(sim.vehicles_finished(), 0u);
  EXPECT_EQ(sim.network_halting(), 0u);
  EXPECT_EQ(sim.signal(cross.center).phase(), 0u);
  for (LinkId l = 0; l < cross.net.num_links(); ++l)
    EXPECT_EQ(sim.link_count(l), 0u);
}

TEST(Simulator, ResetReproducesIdenticalRun) {
  Cross cross;
  auto f = cross.flow_ns({{0.0, 900.0}, {100.0, 900.0}});
  Simulator sim(&cross.net, {f}, default_config(), 31);
  sim.step_seconds(100.0);
  const auto spawned_first = sim.vehicles_spawned();
  const auto tt_first = sim.average_travel_time();
  sim.reset(31);
  sim.step_seconds(100.0);
  EXPECT_EQ(sim.vehicles_spawned(), spawned_first);
  EXPECT_DOUBLE_EQ(sim.average_travel_time(), tt_first);
}

TEST(Simulator, SetPhaseRejectsNonSignalized) {
  Chain chain;
  Simulator sim(&chain.net, {}, default_config(), 1);
  EXPECT_THROW(sim.set_phase(chain.mid, 0), std::invalid_argument);
  EXPECT_THROW(sim.signal(chain.b0), std::invalid_argument);
}

TEST(Simulator, MultiLaneSplitsQueues) {
  Cross cross(200.0, 10.0, /*lanes=*/2);
  auto f = cross.flow_we({{0.0, 1800.0}, {60.0, 1800.0}});
  Simulator sim(&cross.net, {f}, default_config(), 33);
  sim.step_seconds(60.0);  // red for WE
  const std::uint32_t lane0 = sim.lane_queue(cross.w_in, 0);
  const std::uint32_t lane1 = sim.lane_queue(cross.w_in, 1);
  EXPECT_GT(lane0 + lane1, 10u);
  // Shortest-lane assignment keeps the two lanes balanced within 1.
  EXPECT_LE(lane0 > lane1 ? lane0 - lane1 : lane1 - lane0, 1u);
}

TEST(Simulator, StepSecondsMatchesRepeatedTicks) {
  Cross cross;
  auto f = cross.flow_ns({{0.0, 700.0}, {100.0, 700.0}});
  Simulator a(&cross.net, {f}, default_config(), 35);
  Simulator b(&cross.net, {f}, default_config(), 35);
  a.step_seconds(50.0);
  for (int i = 0; i < 50; ++i) b.step();
  EXPECT_DOUBLE_EQ(a.now(), b.now());
  EXPECT_EQ(a.vehicles_spawned(), b.vehicles_spawned());
}

}  // namespace
}  // namespace tsc::sim
