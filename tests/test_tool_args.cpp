// Strict CLI/token numeric parsing (src/util/parse.hpp) — the shared
// helpers behind tsc_run --seconds, tsc_make_scenario, tsc_fleet, and the
// scenario-file flow-knot reader. Every tool used to go through
// atof/atoi/stod, which silently turned typos into 0 or a truncated prefix.
#include "src/util/parse.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace tsc::util {
namespace {

TEST(ParseDouble, AcceptsOrdinaryNumbers) {
  EXPECT_DOUBLE_EQ(*parse_double("600"), 600.0);
  EXPECT_DOUBLE_EQ(*parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*parse_double("-0.25"), -0.25);
  EXPECT_DOUBLE_EQ(*parse_double("1e3"), 1000.0);
  EXPECT_DOUBLE_EQ(*parse_double("0"), 0.0);
}

TEST(ParseDouble, RejectsGarbageAndPartialTokens) {
  EXPECT_FALSE(parse_double(""));
  EXPECT_FALSE(parse_double("abc"));
  EXPECT_FALSE(parse_double("3.5x"));    // the std::stod trap: prefix parses
  EXPECT_FALSE(parse_double("x3.5"));
  EXPECT_FALSE(parse_double(" 3.5"));    // no silent whitespace
  EXPECT_FALSE(parse_double("3.5 "));
  EXPECT_FALSE(parse_double("1,5"));
}

TEST(ParseDouble, RejectsOverflowAndNonFinite) {
  EXPECT_FALSE(parse_double("1e999"));   // used to escape as out_of_range
  EXPECT_FALSE(parse_double("-1e999"));
  EXPECT_FALSE(parse_double("inf"));
  EXPECT_FALSE(parse_double("nan"));
}

TEST(ParseU64, AcceptsDigitsOnly) {
  EXPECT_EQ(*parse_u64("0"), 0u);
  EXPECT_EQ(*parse_u64("42"), 42u);
  EXPECT_EQ(*parse_u64("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseU64, RejectsEverythingElse) {
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("-1"));
  EXPECT_FALSE(parse_u64("+1"));
  EXPECT_FALSE(parse_u64("1.5"));
  EXPECT_FALSE(parse_u64("6x"));         // the std::atoi trap
  EXPECT_FALSE(parse_u64("six"));
  EXPECT_FALSE(parse_u64(" 6"));
  EXPECT_FALSE(parse_u64("18446744073709551616"));  // 2^64 overflows
}

TEST(ParseI64, HandlesSign) {
  EXPECT_EQ(*parse_i64("-7"), -7);
  EXPECT_EQ(*parse_i64("7"), 7);
  EXPECT_FALSE(parse_i64("--7"));
  EXPECT_FALSE(parse_i64("7-"));
  EXPECT_FALSE(parse_i64(""));
}

TEST(ParseU64List, SplitsStrictly) {
  const auto list = parse_u64_list("1,2,30");
  ASSERT_TRUE(list);
  EXPECT_EQ(*list, (std::vector<std::uint64_t>{1, 2, 30}));
  EXPECT_EQ(parse_u64_list("5")->size(), 1u);
  EXPECT_FALSE(parse_u64_list(""));
  EXPECT_FALSE(parse_u64_list("1,,2"));
  EXPECT_FALSE(parse_u64_list("1,2x"));
  EXPECT_FALSE(parse_u64_list(","));
}

}  // namespace
}  // namespace tsc::util
