// Second batch of simulator behavior tests: lane-separated movements,
// unsignalized junction flow, long multi-hop routes, detector semantics.
#include <gtest/gtest.h>

#include "sim_fixtures.hpp"
#include "src/sim/simulator.hpp"

namespace tsc::sim {
namespace {

TEST(SimulatorLanes, SeparateLanesDoNotBlockEachOther) {
  // Two-lane approach: lane 0 dedicated to a (red) left turn, lane 1 to the
  // (green) through. Through traffic must keep flowing while lefts queue.
  RoadNetwork net;
  const NodeId b0 = net.add_node(NodeType::kBoundary, -200, 0);
  const NodeId c = net.add_node(NodeType::kSignalized, 0, 0, "C");
  const NodeId east = net.add_node(NodeType::kBoundary, 200, 0);
  const NodeId north = net.add_node(NodeType::kBoundary, 0, 200);
  const LinkId in = net.add_link(b0, c, 200, 2, 10);
  const LinkId out_e = net.add_link(c, east, 200, 1, 10);
  const LinkId out_n = net.add_link(c, north, 200, 1, 10);
  const MovementId through = net.add_movement(in, out_e, Turn::kThrough, {1});
  const MovementId left = net.add_movement(in, out_n, Turn::kLeft, {0});
  net.set_phases(c, {{through}, {left}});
  net.finalize();

  FlowSpec f_through;
  f_through.route = {in, out_e};
  f_through.profile = {{0.0, 900.0}, {200.0, 900.0}};
  FlowSpec f_left;
  f_left.route = {in, out_n};
  f_left.profile = {{0.0, 400.0}, {200.0, 400.0}};
  Simulator sim(&net, {f_through, f_left}, SimConfig{}, 3);
  sim.step_seconds(200.0);  // phase 0 green for through the whole time
  // Through vehicles complete; left-turners pile up in lane 0 only.
  EXPECT_GT(sim.vehicles_finished(), 20u);
  EXPECT_GT(sim.lane_queue(in, 0), 5u);
  EXPECT_LE(sim.lane_queue(in, 1), 2u);
}

TEST(SimulatorUnsignalized, JunctionFlowsFreely) {
  test::Chain chain(200.0, 1, 10.0);
  auto f = chain.flow({{0.0, 900.0}, {300.0, 900.0}});
  Simulator sim(&chain.net, {f}, SimConfig{}, 5);
  sim.step_seconds(300.0);
  // Demand 0.25 veh/s < saturation 0.5 veh/s: queue stays tiny and
  // essentially everything that entered early has exited.
  EXPECT_LE(sim.link_queue(chain.l0), 3u);
  EXPECT_GT(sim.vehicles_finished(), 50u);
}

TEST(SimulatorRoutes, LongRouteAccumulatesFreeFlowTime) {
  // Chain of 4 links through 3 unsignalized junctions.
  RoadNetwork net;
  std::vector<NodeId> nodes;
  nodes.push_back(net.add_node(NodeType::kBoundary, 0, 0));
  for (int i = 1; i <= 3; ++i)
    nodes.push_back(net.add_node(NodeType::kUnsignalized, 100.0 * i, 0));
  nodes.push_back(net.add_node(NodeType::kBoundary, 400, 0));
  std::vector<LinkId> links;
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i)
    links.push_back(net.add_link(nodes[i], nodes[i + 1], 100, 1, 10));
  for (std::size_t i = 0; i + 1 < links.size(); ++i)
    net.add_movement(links[i], links[i + 1], Turn::kThrough, {0});
  net.finalize();
  FlowSpec f;
  f.route = links;
  f.profile = {{0.0, 3600.0}, {1.0, 0.0}};  // one vehicle
  Simulator sim(&net, {f}, SimConfig{}, 7);
  sim.step_seconds(120.0);
  ASSERT_EQ(sim.vehicles_finished(), 1u);
  // 4 x 10 s free flow + up to 3 queue-service headways.
  const double tt = sim.average_travel_time_finished();
  EXPECT_GE(tt, 40.0);
  EXPECT_LE(tt, 52.0);
}

TEST(SimulatorDetectors, HeadWaitIsMaxAcrossLanes) {
  test::Cross cross(200.0, 10.0, /*lanes=*/2);
  auto f = cross.flow_we({{0.0, 1200.0}, {120.0, 1200.0}});
  Simulator sim(&cross.net, {f}, SimConfig{}, 9);
  sim.step_seconds(120.0);  // WE red
  const double lane0 = sim.lane_head_wait(cross.w_in, 0);
  const double lane1 = sim.lane_head_wait(cross.w_in, 1);
  EXPECT_DOUBLE_EQ(sim.detector_head_wait(cross.w_in),
                   std::max(lane0, lane1));
  EXPECT_GT(sim.detector_head_wait(cross.w_in), 30.0);
}

TEST(SimulatorDetectors, LinkPressureUsesCappedCounts) {
  test::Cross cross;
  auto f = cross.flow_we({{0.0, 1800.0}, {300.0, 1800.0}});
  SimConfig config;
  config.detector_range = 50.0;  // cap = 6 per lane
  Simulator sim(&cross.net, {f}, config, 11);
  sim.step_seconds(300.0);  // very long queue, far beyond detector range
  // Pressure is computed from detector-capped counts: bounded by cap even
  // though the true queue is much longer.
  EXPECT_GT(sim.link_queue(cross.w_in), 10u);
  EXPECT_LE(sim.link_pressure(cross.w_in), 6.0 + 1e-9);
  EXPECT_GT(sim.link_pressure(cross.w_in), 0.0);
}

TEST(SimulatorFlows, ArrivalStreamsIndependentOfOtherFlows) {
  // Adding a second flow must not change the first flow's arrivals pattern
  // in aggregate (same seed, flows sampled independently per tick).
  test::Cross cross;
  auto f1 = cross.flow_ns({{0.0, 600.0}, {200.0, 600.0}});
  Simulator a(&cross.net, {f1}, SimConfig{}, 13);
  a.step_seconds(200.0);
  const auto solo_spawned = a.vehicles_spawned();
  auto f2 = cross.flow_we({{0.0, 600.0}, {200.0, 600.0}});
  Simulator b(&cross.net, {f1, f2}, SimConfig{}, 13);
  b.step_seconds(200.0);
  // Roughly double the arrivals with two equal flows.
  EXPECT_NEAR(static_cast<double>(b.vehicles_spawned()),
              2.0 * static_cast<double>(solo_spawned),
              0.35 * static_cast<double>(solo_spawned));
}

TEST(SimulatorSignals, GreenElapsedVisibleThroughSimulator) {
  test::Cross cross;
  Simulator sim(&cross.net, {}, SimConfig{}, 15);
  sim.step_seconds(12.0);
  EXPECT_DOUBLE_EQ(sim.signal(cross.center).green_elapsed(), 12.0);
  sim.set_phase(cross.center, 1);
  sim.step_seconds(5.0);  // 2 s yellow + 3 s green
  EXPECT_EQ(sim.signal(cross.center).phase(), 1u);
  EXPECT_NEAR(sim.signal(cross.center).green_elapsed(), 3.0, 1.01);
}

}  // namespace
}  // namespace tsc::sim
