#include "src/nn/layers.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "grad_check.hpp"
#include "src/nn/gat.hpp"
#include "src/nn/module.hpp"
#include "src/nn/optim.hpp"
#include "src/nn/serialize.hpp"
#include "src/util/rng.hpp"

namespace tsc::nn {
namespace {

TEST(OrthogonalInit, ColumnsAreOrthonormal) {
  Rng rng(5);
  Tensor w = Tensor::zeros(16, 8);
  orthogonal_init(w, rng, 1.0);
  // Columns of a [rows >= cols] matrix should be orthonormal.
  for (std::size_t c1 = 0; c1 < 8; ++c1) {
    for (std::size_t c2 = c1; c2 < 8; ++c2) {
      double dot = 0.0;
      for (std::size_t r = 0; r < 16; ++r) dot += w.at(r, c1) * w.at(r, c2);
      EXPECT_NEAR(dot, c1 == c2 ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(OrthogonalInit, GainScalesNorm) {
  Rng rng(6);
  Tensor w = Tensor::zeros(8, 8);
  orthogonal_init(w, rng, 2.0);
  double col_norm_sq = 0.0;
  for (std::size_t r = 0; r < 8; ++r) col_norm_sq += w.at(r, 0) * w.at(r, 0);
  EXPECT_NEAR(std::sqrt(col_norm_sq), 2.0, 1e-9);
}

TEST(OrthogonalInit, WideMatrixRowsOrthonormal) {
  Rng rng(7);
  Tensor w = Tensor::zeros(4, 10);
  orthogonal_init(w, rng, 1.0);
  for (std::size_t r1 = 0; r1 < 4; ++r1) {
    double norm_sq = 0.0;
    for (std::size_t c = 0; c < 10; ++c) norm_sq += w.at(r1, c) * w.at(r1, c);
    EXPECT_NEAR(norm_sq, 1.0, 1e-9);
  }
}

TEST(XavierInit, WithinBound) {
  Rng rng(8);
  Tensor w = Tensor::zeros(10, 20);
  xavier_init(w, rng);
  const double bound = std::sqrt(6.0 / 30.0);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w[i], -bound);
    EXPECT_LE(w[i], bound);
  }
}

TEST(Linear, OutputShapeAndBias) {
  Rng rng(9);
  Linear layer(3, 2, rng);
  layer.bias.value[0] = 5.0;
  Tape tape;
  Var x = tape.constant(Tensor::zeros(4, 3));
  Var y = layer.forward(tape, x);
  EXPECT_EQ(tape.value(y).rows(), 4u);
  EXPECT_EQ(tape.value(y).cols(), 2u);
  // Zero input -> output equals bias.
  EXPECT_DOUBLE_EQ(tape.value(y).at(2, 0), 5.0);
}

TEST(Linear, GradientMatchesFiniteDifference) {
  Rng rng(10);
  Linear layer(4, 3, rng);
  Tensor x = Tensor::zeros(2, 4);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng.normal();

  // Analytic parameter gradients.
  layer.zero_grad();
  {
    Tape tape;
    Var xv = tape.constant(x);
    tape.backward(tape.sum(tape.square(layer.forward(tape, xv))));
  }
  // Finite differences on one weight and one bias entry.
  auto loss_value = [&]() {
    Tape tape;
    Var xv = tape.constant(x);
    return tape.value(tape.sum(tape.square(layer.forward(tape, xv))))[0];
  };
  const double eps = 1e-6;
  for (std::size_t idx : {std::size_t{0}, std::size_t{5}}) {
    const double saved = layer.weight.value[idx];
    layer.weight.value[idx] = saved + eps;
    const double up = loss_value();
    layer.weight.value[idx] = saved - eps;
    const double down = loss_value();
    layer.weight.value[idx] = saved;
    EXPECT_NEAR((up - down) / (2 * eps), layer.weight.grad[idx], 1e-5);
  }
  const double saved = layer.bias.value[1];
  layer.bias.value[1] = saved + eps;
  const double up = loss_value();
  layer.bias.value[1] = saved - eps;
  const double down = loss_value();
  layer.bias.value[1] = saved;
  EXPECT_NEAR((up - down) / (2 * eps), layer.bias.grad[1], 1e-5);
}

TEST(Mlp, ParameterCountAndShapes) {
  Rng rng(11);
  Mlp mlp({5, 8, 3}, rng);
  // (5*8 + 8) + (8*3 + 3) = 48 + 27
  EXPECT_EQ(mlp.num_weights(), 75u);
  Tape tape;
  Var x = tape.constant(Tensor::zeros(2, 5));
  EXPECT_EQ(tape.value(mlp.forward(tape, x)).cols(), 3u);
}

TEST(Lstm, ShapesAndStateEvolution) {
  Rng rng(12);
  LstmCell cell(3, 5, rng);
  Tape tape;
  auto state = cell.zero_state(tape, 2);
  Var x = tape.constant(Tensor::full(2, 3, 1.0));
  auto next = cell.forward(tape, x, state.h, state.c);
  EXPECT_EQ(tape.value(next.h).rows(), 2u);
  EXPECT_EQ(tape.value(next.h).cols(), 5u);
  // State must change from zero on nonzero input.
  EXPECT_GT(tape.value(next.h).norm(), 0.0);
  // h is bounded by tanh.
  for (std::size_t i = 0; i < tape.value(next.h).size(); ++i)
    EXPECT_LE(std::abs(tape.value(next.h)[i]), 1.0);
}

TEST(Lstm, ForgetBiasInitializedToOne) {
  Rng rng(13);
  LstmCell cell(2, 4, rng);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(cell.bias.value[i], 0.0);      // input gate
    EXPECT_DOUBLE_EQ(cell.bias.value[4 + i], 1.0);  // forget gate
  }
}

TEST(Lstm, GradientFlowsToAllParameters) {
  Rng rng(14);
  LstmCell cell(3, 4, rng);
  cell.zero_grad();
  Tape tape;
  auto state = cell.zero_state(tape, 1);
  Var x = tape.constant(Tensor::full(1, 3, 0.5));
  auto s1 = cell.forward(tape, x, state.h, state.c);
  auto s2 = cell.forward(tape, x, s1.h, s1.c);  // two steps -> recurrent path
  tape.backward(tape.sum(tape.square(s2.h)));
  for (Parameter* p : cell.parameters()) {
    EXPECT_GT(p->grad.norm(), 0.0) << p->name;
  }
}

TEST(Module, CopyAndSoftUpdate) {
  Rng rng(15);
  Linear a(3, 3, rng), b(3, 3, rng);
  EXPECT_NE(a.weight.value[0], b.weight.value[0]);
  b.copy_weights_from(a);
  EXPECT_DOUBLE_EQ(a.weight.value[0], b.weight.value[0]);

  Linear c(3, 3, rng);
  const double before = b.weight.value[0];
  b.soft_update_from(c, 0.25);
  EXPECT_NEAR(b.weight.value[0], 0.75 * before + 0.25 * c.weight.value[0], 1e-12);
}

TEST(Adam, MinimizesQuadratic) {
  Parameter w(Tensor::vector({5.0, -3.0}), "w");
  Adam::Config config;
  config.lr = 0.1;
  Adam opt({&w}, config);
  for (int i = 0; i < 300; ++i) {
    w.zero_grad();
    Tape tape;
    Var wv = tape.param(w);
    tape.backward(tape.sum(tape.square(wv)));
    opt.step();
  }
  EXPECT_NEAR(w.value[0], 0.0, 1e-2);
  EXPECT_NEAR(w.value[1], 0.0, 1e-2);
  EXPECT_EQ(opt.steps_taken(), 300u);
}

TEST(Sgd, StepsDownhill) {
  Parameter w(Tensor::vector({1.0}), "w");
  Sgd opt({&w}, 0.5);
  w.grad[0] = 2.0;  // d/dw of w^2 at w=1
  opt.step();
  EXPECT_DOUBLE_EQ(w.value[0], 0.0);
}

TEST(ClipGradNorm, ScalesWhenAboveThreshold) {
  Parameter w(Tensor::vector({3.0, 4.0}), "w");
  w.grad[0] = 3.0;
  w.grad[1] = 4.0;  // norm 5
  const double pre = clip_grad_norm({&w}, 1.0);
  EXPECT_DOUBLE_EQ(pre, 5.0);
  EXPECT_NEAR(std::hypot(w.grad[0], w.grad[1]), 1.0, 1e-12);
  // Below threshold: untouched.
  w.grad[0] = 0.1;
  w.grad[1] = 0.0;
  clip_grad_norm({&w}, 1.0);
  EXPECT_DOUBLE_EQ(w.grad[0], 0.1);
}

TEST(Serialize, RoundTripRestoresWeights) {
  Rng rng(16);
  Mlp original({4, 6, 2}, rng);
  Mlp restored({4, 6, 2}, rng);  // different random init
  const std::string path =
      (std::filesystem::temp_directory_path() / "tsc_weights_test.bin").string();
  save_weights(original, path);
  load_weights(restored, path);
  auto po = original.parameters();
  auto pr = restored.parameters();
  ASSERT_EQ(po.size(), pr.size());
  for (std::size_t i = 0; i < po.size(); ++i)
    for (std::size_t j = 0; j < po[i]->value.size(); ++j)
      EXPECT_DOUBLE_EQ(po[i]->value[j], pr[i]->value[j]);
  std::remove(path.c_str());
}

TEST(Serialize, ShapeMismatchThrows) {
  Rng rng(17);
  Mlp small({2, 3, 1}, rng);
  Mlp big({4, 6, 2}, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "tsc_weights_mismatch.bin").string();
  save_weights(small, path);
  EXPECT_THROW(load_weights(big, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Gat, AttentionIgnoresMaskedEntities) {
  Rng rng(18);
  GatLayer gat(4, 4, 3, rng);
  Tape tape;
  Tensor entities = Tensor::zeros(3, 4);
  for (std::size_t i = 0; i < entities.size(); ++i) entities[i] = rng.normal();
  Var e = tape.constant(entities);
  gat.forward(tape, e, {true, true, false});
  const auto& att = gat.last_attention();
  ASSERT_EQ(att.size(), 3u);
  EXPECT_NEAR(att[0] + att[1], 1.0, 1e-9);
  EXPECT_NEAR(att[2], 0.0, 1e-12);
}

TEST(Gat, ChangingNeighborChangesOutput) {
  Rng rng(19);
  GatLayer gat(3, 4, 2, rng);
  Tensor base = Tensor::matrix(2, 3, {1, 0, 0, 0, 1, 0});
  Tensor changed = base;
  changed.at(1, 2) = 5.0;
  Tape t1, t2;
  Var o1 = gat.forward(t1, t1.constant(base), {true, true});
  Var o2 = gat.forward(t2, t2.constant(changed), {true, true});
  double diff = 0.0;
  for (std::size_t i = 0; i < t1.value(o1).size(); ++i)
    diff += std::abs(t1.value(o1)[i] - t2.value(o2)[i]);
  EXPECT_GT(diff, 1e-6);
}

TEST(Gat, GradientFlowsToAllParameters) {
  Rng rng(20);
  GatLayer gat(3, 4, 3, rng);
  gat.zero_grad();
  Tape tape;
  Tensor entities = Tensor::zeros(3, 3);
  for (std::size_t i = 0; i < entities.size(); ++i) entities[i] = rng.normal();
  Var out = gat.forward(tape, tape.constant(entities), {true, true, true});
  tape.backward(tape.sum(tape.square(out)));
  std::size_t with_grad = 0;
  for (Parameter* p : gat.parameters())
    if (p->grad.norm() > 0.0) ++with_grad;
  // All four sub-layers (query/key/value/out) must receive gradient; the
  // relu on the output can zero a few individual entries but not whole
  // parameter tensors in practice.
  EXPECT_GE(with_grad, 7u);  // 4 weights + >=3 biases
}

}  // namespace
}  // namespace tsc::nn
