#include "src/sim/network.hpp"

#include <gtest/gtest.h>

#include "sim_fixtures.hpp"

namespace tsc::sim {
namespace {

TEST(RoadNetwork, AddNodeAndLinkBookkeeping) {
  RoadNetwork net;
  const NodeId a = net.add_node(NodeType::kBoundary, 0, 0, "A");
  const NodeId b = net.add_node(NodeType::kBoundary, 100, 0, "B");
  const LinkId l = net.add_link(a, b, 100, 2, 10, "ab");
  EXPECT_EQ(net.num_nodes(), 2u);
  EXPECT_EQ(net.num_links(), 1u);
  EXPECT_EQ(net.link(l).from, a);
  EXPECT_EQ(net.link(l).to, b);
  EXPECT_EQ(net.link(l).lanes, 2u);
  ASSERT_EQ(net.node(a).out_links.size(), 1u);
  EXPECT_EQ(net.node(a).out_links[0], l);
  ASSERT_EQ(net.node(b).in_links.size(), 1u);
  EXPECT_EQ(net.node(b).in_links[0], l);
  EXPECT_DOUBLE_EQ(net.link(l).free_flow_time(), 10.0);
}

TEST(RoadNetwork, RejectsBadLinks) {
  RoadNetwork net;
  const NodeId a = net.add_node(NodeType::kBoundary, 0, 0);
  const NodeId b = net.add_node(NodeType::kBoundary, 1, 0);
  EXPECT_THROW(net.add_link(a, a, 100, 1, 10), std::invalid_argument);  // self-loop
  EXPECT_THROW(net.add_link(a, 99, 100, 1, 10), std::invalid_argument); // unknown
  EXPECT_THROW(net.add_link(a, b, -5, 1, 10), std::invalid_argument);   // length
  EXPECT_THROW(net.add_link(a, b, 100, 0, 10), std::invalid_argument);  // lanes
  EXPECT_THROW(net.add_link(a, b, 100, 1, 0), std::invalid_argument);   // speed
}

TEST(RoadNetwork, RejectsBadMovements) {
  RoadNetwork net;
  const NodeId a = net.add_node(NodeType::kBoundary, 0, 0);
  const NodeId b = net.add_node(NodeType::kUnsignalized, 1, 0);
  const NodeId c = net.add_node(NodeType::kBoundary, 2, 0);
  const NodeId d = net.add_node(NodeType::kBoundary, 3, 0);
  const LinkId ab = net.add_link(a, b, 100, 2, 10);
  const LinkId bc = net.add_link(b, c, 100, 1, 10);
  const LinkId cd = net.add_link(c, d, 100, 1, 10);
  // Links not sharing a node.
  EXPECT_THROW(net.add_movement(ab, cd, Turn::kThrough, {0}), std::invalid_argument);
  // Lane out of range on the 2-lane approach.
  EXPECT_THROW(net.add_movement(ab, bc, Turn::kThrough, {2}), std::invalid_argument);
  // Empty lane list.
  EXPECT_THROW(net.add_movement(ab, bc, Turn::kThrough, {}), std::invalid_argument);
  // Valid, then duplicate.
  net.add_movement(ab, bc, Turn::kThrough, {0, 1});
  EXPECT_THROW(net.add_movement(ab, bc, Turn::kThrough, {0}), std::invalid_argument);
}

TEST(RoadNetwork, FinalizeRequiresPhasesOnSignalizedNodes) {
  RoadNetwork net;
  const NodeId a = net.add_node(NodeType::kBoundary, 0, 0);
  const NodeId b = net.add_node(NodeType::kSignalized, 1, 0);
  const NodeId c = net.add_node(NodeType::kBoundary, 2, 0);
  const LinkId ab = net.add_link(a, b, 100, 1, 10);
  const LinkId bc = net.add_link(b, c, 100, 1, 10);
  net.add_movement(ab, bc, Turn::kThrough, {0});
  EXPECT_THROW(net.finalize(), std::invalid_argument);  // no phases
}

TEST(RoadNetwork, FinalizeRejectsUncoveredMovement) {
  RoadNetwork net;
  const NodeId a = net.add_node(NodeType::kBoundary, 0, 0);
  const NodeId b = net.add_node(NodeType::kSignalized, 1, 0);
  const NodeId c = net.add_node(NodeType::kBoundary, 2, 0);
  const NodeId d = net.add_node(NodeType::kBoundary, 1, 1);
  const LinkId ab = net.add_link(a, b, 100, 1, 10);
  const LinkId bc = net.add_link(b, c, 100, 1, 10);
  const LinkId bd = net.add_link(b, d, 100, 1, 10);
  const MovementId m1 = net.add_movement(ab, bc, Turn::kThrough, {0});
  net.add_movement(ab, bd, Turn::kLeft, {0});  // never appears in a phase
  net.set_phases(b, {{m1}});
  EXPECT_THROW(net.finalize(), std::invalid_argument);
}

TEST(RoadNetwork, FinalizeFreezesBuilders) {
  test::Chain chain;
  EXPECT_TRUE(chain.net.finalized());
  // Note: modifying after finalize throws.
  EXPECT_THROW(chain.net.add_node(NodeType::kBoundary, 0, 0), std::logic_error);
}

TEST(RoadNetwork, FindMovement) {
  test::Chain chain;
  EXPECT_NE(chain.net.find_movement(chain.l0, chain.l1), kInvalidId);
  EXPECT_EQ(chain.net.find_movement(chain.l1, chain.l0), kInvalidId);
}

TEST(RoadNetwork, ShortestRouteStraightLine) {
  test::Cross cross;
  const auto route = cross.net.shortest_route(cross.n_in, cross.s);
  ASSERT_EQ(route.size(), 2u);
  EXPECT_EQ(route[0], cross.n_in);
  EXPECT_EQ(route[1], cross.s_out);
}

TEST(RoadNetwork, ShortestRouteUnreachableReturnsEmpty) {
  test::Cross cross;
  // No movement from n_in to n_out (no U-turn), so N cannot reach N.
  EXPECT_TRUE(cross.net.shortest_route(cross.n_in, cross.n).empty());
}

TEST(RoadNetwork, SignalizedNodesAndNeighbors) {
  test::Cross cross;
  const auto sig = cross.net.signalized_nodes();
  ASSERT_EQ(sig.size(), 1u);
  EXPECT_EQ(sig[0], cross.center);
  EXPECT_TRUE(cross.net.neighbor_signalized(cross.center).empty());
  EXPECT_TRUE(cross.net.upstream_signalized(cross.center).empty());
}

TEST(RoadNetwork, ShortestRoutePrefersFasterPath) {
  // Two parallel routes A->B: direct slow link vs two fast links via M.
  RoadNetwork net;
  const NodeId a = net.add_node(NodeType::kBoundary, 0, 0);
  const NodeId m = net.add_node(NodeType::kUnsignalized, 1, 0);
  const NodeId b = net.add_node(NodeType::kBoundary, 2, 0);
  const NodeId start = net.add_node(NodeType::kBoundary, -1, 0);
  const NodeId j = net.add_node(NodeType::kUnsignalized, -0.5, 0);
  const LinkId entry = net.add_link(start, j, 100, 1, 10);
  const LinkId slow = net.add_link(j, b, 100, 1, 1);     // 100 s
  const LinkId fast1 = net.add_link(j, m, 100, 1, 20);   // 5 s
  const LinkId fast2 = net.add_link(m, b, 100, 1, 20);   // 5 s
  (void)a;
  net.add_movement(entry, slow, Turn::kLeft, {0});
  net.add_movement(entry, fast1, Turn::kThrough, {0});
  net.add_movement(fast1, fast2, Turn::kThrough, {0});
  net.finalize();
  const auto route = net.shortest_route(entry, b);
  ASSERT_EQ(route.size(), 3u);
  EXPECT_EQ(route[1], fast1);
  EXPECT_EQ(route[2], fast2);
}

}  // namespace
}  // namespace tsc::sim
