// Cross-component integration tests: the full pipeline from scenario
// construction through serialization, environment, training, checkpointing,
// and evaluation with every controller family.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "src/baselines/actuated.hpp"
#include "src/baselines/colight.hpp"
#include "src/baselines/fixed_time.hpp"
#include "src/baselines/idqn.hpp"
#include "src/baselines/ma2c.hpp"
#include "src/baselines/max_pressure.hpp"
#include "src/baselines/single_agent.hpp"
#include "src/core/trainer.hpp"
#include "src/scenarios/flow_patterns.hpp"
#include "src/scenarios/grid.hpp"
#include "src/sim/scenario_io.hpp"

namespace tsc {
namespace {

struct Pipeline {
  scenario::GridScenario grid;
  std::vector<sim::FlowSpec> flows;
  env::EnvConfig env_config;

  Pipeline() : grid(make_grid()) {
    scenario::FlowPatternConfig flow_config;
    flow_config.time_scale = 0.05;
    flows = scenario::make_flow_pattern(grid, scenario::FlowPattern::kPattern1,
                                        flow_config);
    env_config.episode_seconds = 100.0;
  }
  static scenario::GridScenario make_grid() {
    scenario::GridConfig config;
    config.rows = 4;
    config.cols = 4;
    return scenario::GridScenario(config);
  }
};

TEST(Integration, EveryControllerFamilyRunsOneEpisode) {
  Pipeline p;
  env::TscEnv environment(&p.grid.net(), p.flows, p.env_config, 1);

  baselines::FixedTimeController fixed_time;
  baselines::ActuatedController actuated;
  baselines::MaxPressureController max_pressure;

  baselines::SingleAgentConfig single_config;
  single_config.hidden = 12;
  single_config.ppo.epochs = 1;
  baselines::SingleAgentPpoTrainer single(&environment, single_config);
  baselines::Ma2cConfig ma2c_config;
  ma2c_config.hidden = 12;
  baselines::Ma2cTrainer ma2c(&environment, ma2c_config);
  baselines::CoLightConfig colight_config;
  colight_config.embed_dim = 8;
  baselines::CoLightTrainer colight(&environment, colight_config);
  baselines::IdqnConfig idqn_config;
  idqn_config.hidden = 12;
  baselines::IdqnTrainer idqn(&environment, idqn_config);
  core::PairUpConfig pairup_config;
  pairup_config.hidden = 12;
  pairup_config.ppo.epochs = 1;
  core::PairUpLightTrainer pairup(&environment, pairup_config);

  single.train_episode();
  ma2c.train_episode();
  colight.train_episode();
  idqn.train_episode();
  pairup.train_episode();

  auto c1 = single.make_controller();
  auto c2 = ma2c.make_controller();
  auto c3 = colight.make_controller();
  auto c4 = idqn.make_controller();
  auto c5 = pairup.make_controller();
  env::Controller* all[] = {&fixed_time, &actuated, &max_pressure,
                            c1.get(),    c2.get(),  c3.get(),
                            c4.get(),    c5.get()};
  for (env::Controller* controller : all) {
    const auto stats = env::run_episode(environment, *controller, 99);
    EXPECT_GT(stats.travel_time, 0.0) << controller->name();
    EXPECT_GT(stats.vehicles_spawned, 0u) << controller->name();
    EXPECT_LE(stats.vehicles_finished, stats.vehicles_spawned)
        << controller->name();
  }
}

TEST(Integration, ScenarioFileToTrainedPolicy) {
  Pipeline p;
  // Serialize the scenario, reload it, and train on the loaded copy.
  std::ostringstream buffer;
  sim::write_scenario(p.grid.net(), p.flows, buffer);
  std::istringstream input(buffer.str());
  sim::Scenario loaded = sim::read_scenario(input);

  env::TscEnv original_env(&p.grid.net(), p.flows, p.env_config, 1);
  env::TscEnv loaded_env(&loaded.net, loaded.flows, p.env_config, 1);

  core::PairUpConfig config;
  config.hidden = 12;
  config.ppo.epochs = 1;
  core::PairUpLightTrainer original(&original_env, config);
  core::PairUpLightTrainer reloaded(&loaded_env, config);
  // Identical nets (same seeds) + identical scenario -> identical training.
  const auto s1 = original.train_episode();
  const auto s2 = reloaded.train_episode();
  EXPECT_DOUBLE_EQ(s1.travel_time, s2.travel_time);
  EXPECT_DOUBLE_EQ(s1.mean_reward, s2.mean_reward);
}

TEST(Integration, CheckpointTransfersAcrossEnvironments) {
  Pipeline p;
  env::TscEnv env_a(&p.grid.net(), p.flows, p.env_config, 1);
  env::TscEnv env_b(&p.grid.net(), p.flows, p.env_config, 1);
  core::PairUpConfig config;
  config.hidden = 12;
  config.ppo.epochs = 1;
  core::PairUpLightTrainer trainer_a(&env_a, config);
  for (int e = 0; e < 2; ++e) trainer_a.train_episode();

  const std::string prefix =
      (std::filesystem::temp_directory_path() / "tsc_integration_ckpt").string();
  trainer_a.save_checkpoint(prefix);
  core::PairUpLightTrainer trainer_b(&env_b, config);
  trainer_b.load_checkpoint(prefix);
  EXPECT_DOUBLE_EQ(trainer_a.eval_episode(7).travel_time,
                   trainer_b.eval_episode(7).travel_time);
  std::remove((prefix + "_actor0.bin").c_str());
  std::remove((prefix + "_critic0.bin").c_str());
}

TEST(Integration, CrossPatternEvaluationProtocol) {
  // Miniature Table II protocol: train on pattern 1, evaluate on 1 and 5.
  Pipeline p;
  env::TscEnv environment(&p.grid.net(), p.flows, p.env_config, 1);
  core::PairUpConfig config;
  config.hidden = 12;
  config.ppo.epochs = 1;
  core::PairUpLightTrainer trainer(&environment, config);
  for (int e = 0; e < 2; ++e) trainer.train_episode();
  auto controller = trainer.make_controller();

  scenario::FlowPatternConfig flow_config;
  flow_config.time_scale = 0.05;
  for (auto pattern :
       {scenario::FlowPattern::kPattern1, scenario::FlowPattern::kPattern5}) {
    environment.set_flows(
        scenario::make_flow_pattern(p.grid, pattern, flow_config), 1000);
    const auto stats = env::run_episode(environment, *controller, 1000);
    EXPECT_GT(stats.travel_time, 0.0);
  }
}

}  // namespace
}  // namespace tsc
