// Edge-case tests for the NN stack: tiny shapes, shared subgraphs
// (gradient accumulation through diamonds), optimizer options, and
// serialization of multi-module trees.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "grad_check.hpp"
#include "src/nn/layers.hpp"
#include "src/nn/optim.hpp"
#include "src/nn/serialize.hpp"
#include "src/nn/tape.hpp"
#include "src/util/rng.hpp"

namespace tsc::nn {
namespace {

TEST(TapeEdge, SingleElementTensors) {
  Tape tape;
  Var x = tape.constant(Tensor::vector({3.0}));
  Var y = tape.mul(x, x);
  EXPECT_DOUBLE_EQ(tape.value(y)[0], 9.0);
  Var z = tape.matmul(tape.constant(Tensor::matrix(1, 1, {2.0})),
                      tape.constant(Tensor::matrix(1, 1, {5.0})));
  EXPECT_DOUBLE_EQ(tape.value(z)[0], 10.0);
}

TEST(TapeEdge, DiamondGraphAccumulatesGradients) {
  // loss = sum(x*x) + sum(3x): d/dx = 2x + 3, with x reused twice.
  Tape tape;
  Var x = tape.leaf(Tensor::vector({2.0, -1.0}));
  Var loss = tape.add(tape.sum(tape.mul(x, x)), tape.sum(tape.scale(x, 3.0)));
  tape.backward(loss);
  EXPECT_DOUBLE_EQ(tape.grad(x)[0], 7.0);   // 2*2 + 3
  EXPECT_DOUBLE_EQ(tape.grad(x)[1], 1.0);   // -2 + 3
}

TEST(TapeEdge, DeepChainGradient) {
  // 20 tanh layers deep: gradients stay finite and correct numerically.
  Rng rng(51);
  Tensor x = Tensor::zeros(1, 3);
  for (std::size_t i = 0; i < 3; ++i) x[i] = rng.normal();
  const double err = test::max_grad_error(
      {x}, [](Tape& t, const std::vector<Var>& in) {
        Var h = in[0];
        for (int layer = 0; layer < 20; ++layer) h = t.tanh(t.scale(h, 1.1));
        return t.sum(h);
      });
  EXPECT_LT(err, 1e-6);
}

TEST(TapeEdge, ParamUsedTwiceInOneForward) {
  // Weight sharing: same parameter node reused; gradient doubles up.
  Parameter w(Tensor::vector({1.5}), "w");
  Tape tape;
  Var wv = tape.param(w);
  // loss = (w * w) using the SAME node twice.
  tape.backward(tape.sum(tape.mul(wv, wv)));
  EXPECT_DOUBLE_EQ(w.grad[0], 3.0);  // 2w
}

TEST(TapeEdge, TwoSeparateParamNodesOfSameParameter) {
  // Registering the parameter twice on one tape also accumulates correctly.
  Parameter w(Tensor::vector({2.0}), "w");
  Tape tape;
  Var w1 = tape.param(w);
  Var w2 = tape.param(w);
  tape.backward(tape.sum(tape.mul(w1, w2)));
  EXPECT_DOUBLE_EQ(w.grad[0], 4.0);  // d(w^2)/dw
}

TEST(AdamEdge, WeightDecayShrinksWeights) {
  Parameter w(Tensor::vector({1.0}), "w");
  Adam::Config config;
  config.lr = 0.01;
  config.weight_decay = 0.1;
  Adam opt({&w}, config);
  // Zero gradient: only decay acts.
  w.zero_grad();
  opt.step();
  EXPECT_LT(w.value[0], 1.0);
  EXPECT_GT(w.value[0], 0.99);
}

TEST(AdamEdge, LrSetterTakesEffect) {
  Parameter w(Tensor::vector({1.0}), "w");
  Adam opt({&w});
  opt.set_lr(0.0);
  w.grad[0] = 100.0;
  opt.step();
  EXPECT_DOUBLE_EQ(w.value[0], 1.0);  // zero lr: no movement
  EXPECT_DOUBLE_EQ(opt.lr(), 0.0);
}

TEST(MlpEdge, SingleHiddenReluPath) {
  Rng rng(53);
  Mlp mlp({2, 4, 1}, rng, Activation::kRelu);
  Tape tape;
  Var y = mlp.forward(tape, tape.constant(Tensor::matrix(1, 2, {1.0, -1.0})));
  EXPECT_EQ(tape.value(y).cols(), 1u);
  // Gradcheck through the relu MLP at a generic point.
  Tensor x = Tensor::matrix(2, 2, {0.3, -0.7, 1.2, 0.4});
  const double err = test::max_grad_error(
      {x}, [&](Tape& t, const std::vector<Var>& in) {
        return t.sum(t.square(mlp.forward(t, in[0])));
      });
  EXPECT_LT(err, 1e-5);
}

TEST(SerializeEdge, LstmAndLinearTreeRoundTrip) {
  Rng rng(54);
  struct Net : Module {
    Net(Rng& rng) : linear(3, 4, rng), lstm(4, 4, rng) {
      register_module(&linear);
      register_module(&lstm);
    }
    Linear linear;
    LstmCell lstm;
  };
  Net a(rng), b(rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "tsc_tree_roundtrip.bin").string();
  save_weights(a, path);
  load_weights(b, path);
  auto pa = a.parameters();
  auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  ASSERT_EQ(pa.size(), 5u);  // linear W+b, lstm Wx+Wh+b
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::size_t j = 0; j < pa[i]->value.size(); ++j)
      EXPECT_DOUBLE_EQ(pa[i]->value[j], pb[i]->value[j]);
  std::remove(path.c_str());
}

TEST(SerializeEdge, CorruptMagicRejected) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tsc_corrupt.bin").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "JUNKDATA";
  }
  Rng rng(55);
  Mlp mlp({2, 2}, rng);
  EXPECT_THROW(load_weights(mlp, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(LstmEdge, CellStateSaturationBounded) {
  // Feeding large constant inputs for many steps must not blow up h.
  Rng rng(56);
  LstmCell cell(2, 3, rng);
  Tape tape;
  auto state = cell.zero_state(tape, 1);
  Var x = tape.constant(Tensor::full(1, 2, 10.0));
  for (int step = 0; step < 50; ++step) {
    state = cell.forward(tape, x, state.h, state.c);
  }
  for (std::size_t i = 0; i < tape.value(state.h).size(); ++i) {
    EXPECT_TRUE(std::isfinite(tape.value(state.h)[i]));
    EXPECT_LE(std::abs(tape.value(state.h)[i]), 1.0);
  }
}

}  // namespace
}  // namespace tsc::nn
