#include <gtest/gtest.h>

#include "src/baselines/colight.hpp"
#include "src/baselines/fixed_time.hpp"
#include "src/baselines/ma2c.hpp"
#include "src/baselines/single_agent.hpp"
#include "src/scenarios/flow_patterns.hpp"
#include "src/scenarios/grid.hpp"

namespace tsc::baselines {
namespace {

struct Fixture {
  scenario::GridScenario grid;
  env::TscEnv environment;

  Fixture()
      : grid(make_grid()),
        environment(&grid.net(), make_flows(grid), make_env_config(), 1) {}

  static scenario::GridScenario make_grid() {
    scenario::GridConfig config;
    config.rows = 2;
    config.cols = 2;
    return scenario::GridScenario(config);
  }
  static std::vector<sim::FlowSpec> make_flows(const scenario::GridScenario& g) {
    std::vector<sim::FlowSpec> flows;
    for (std::size_t r = 0; r < 2; ++r) {
      sim::FlowSpec f;
      f.route = g.route(g.west_terminal(r), g.east_terminal(r));
      f.profile = {{0.0, 500.0}, {200.0, 500.0}};
      flows.push_back(f);
    }
    sim::FlowSpec f;
    f.route = g.route(g.north_terminal(0), g.south_terminal(0));
    f.profile = {{0.0, 400.0}, {200.0, 400.0}};
    flows.push_back(f);
    return flows;
  }
  static env::EnvConfig make_env_config() {
    env::EnvConfig config;
    config.episode_seconds = 100.0;
    return config;
  }
};

TEST(FixedTime, CyclesThroughAllPhases) {
  Fixture f;
  FixedTimeController controller(5.0);
  f.environment.reset(1);
  controller.begin_episode(f.environment);
  std::vector<std::vector<std::size_t>> seen;
  for (int i = 0; i < 8; ++i) seen.push_back(controller.act(f.environment));
  // 5 s greens with 5 s decisions: phase advances every step, wraps at 4.
  for (std::size_t a = 0; a < f.environment.num_agents(); ++a) {
    EXPECT_EQ(seen[0][a], 0u);
    EXPECT_EQ(seen[1][a], 1u);
    EXPECT_EQ(seen[3][a], 3u);
    EXPECT_EQ(seen[4][a], 0u);  // wrap
  }
  EXPECT_EQ(controller.name(), "Fixedtime");
}

TEST(FixedTime, LongerGreenHoldsPhase) {
  Fixture f;
  FixedTimeController controller(10.0);
  f.environment.reset(1);
  controller.begin_episode(f.environment);
  const auto a0 = controller.act(f.environment);
  const auto a1 = controller.act(f.environment);
  const auto a2 = controller.act(f.environment);
  EXPECT_EQ(a0[0], a1[0]);  // held 10 s across two 5 s decisions
  EXPECT_NE(a1[0], a2[0]);
}

TEST(FixedTime, StaggerOffsetsAgents) {
  Fixture f;
  FixedTimeController controller(5.0, /*offset_stagger=*/true);
  f.environment.reset(1);
  controller.begin_episode(f.environment);
  const auto actions = controller.act(f.environment);
  EXPECT_EQ(actions[0], 0u);
  EXPECT_EQ(actions[1], 1u);
}

TEST(SingleAgent, TrainsAndEvaluatesDeterministically) {
  Fixture f;
  SingleAgentConfig config;
  config.hidden = 16;
  config.ppo.epochs = 1;
  SingleAgentPpoTrainer trainer(&f.environment, config);
  const auto stats = trainer.train_episode();
  EXPECT_GT(stats.travel_time, 0.0);
  EXPECT_EQ(trainer.episodes_trained(), 1u);
  const auto e1 = trainer.eval_episode(7);
  const auto e2 = trainer.eval_episode(7);
  EXPECT_DOUBLE_EQ(e1.travel_time, e2.travel_time);
  auto controller = trainer.make_controller();
  EXPECT_EQ(controller->name(), "SingleAgent");
  const auto via_controller = env::run_episode(f.environment, *controller, 7);
  EXPECT_DOUBLE_EQ(via_controller.travel_time, e1.travel_time);
}

TEST(SingleAgent, LearningMovesReward) {
  Fixture f;
  SingleAgentConfig config;
  config.hidden = 16;
  config.ppo.epochs = 2;
  config.ppo.lr = 1e-3;
  SingleAgentPpoTrainer trainer(&f.environment, config);
  double first = 0.0, last = 0.0;
  const int episodes = 16;
  for (int e = 0; e < episodes; ++e) {
    const auto stats = trainer.train_episode();
    if (e < 4) first += stats.mean_reward;
    if (e >= episodes - 4) last += stats.mean_reward;
  }
  // Directional check with slack: on a 100 s toy episode individual
  // episodes are noisy, but sustained collapse would fail this.
  EXPECT_GT(last / 4.0, first / 4.0 - 0.2);
}

TEST(Ma2c, IndependentAgentsTrainAndEvaluate) {
  Fixture f;
  Ma2cConfig config;
  config.hidden = 16;
  Ma2cTrainer trainer(&f.environment, config);
  const auto stats = trainer.train_episode();
  EXPECT_GT(stats.travel_time, 0.0);
  EXPECT_EQ(trainer.episodes_trained(), 1u);
  auto controller = trainer.make_controller();
  EXPECT_EQ(controller->name(), "MA2C");
  const auto e1 = env::run_episode(f.environment, *controller, 11);
  const auto e2 = env::run_episode(f.environment, *controller, 11);
  EXPECT_DOUBLE_EQ(e1.travel_time, e2.travel_time);
}

TEST(Ma2c, CommOverheadCountsNeighborPayload) {
  Fixture f;
  Ma2cTrainer trainer(&f.environment, Ma2cConfig{});
  // 2x2 grid: 2 hop1 slots x (obs_dim + max_phases fingerprints) x 32 bits.
  const std::size_t expected =
      2 * (f.environment.obs_dim() + f.environment.config().max_phases) * 32;
  EXPECT_EQ(trainer.comm_bits_per_step(), expected);
}

TEST(CoLight, TrainsWithReplayAndTargetNet) {
  Fixture f;
  CoLightConfig config;
  config.embed_dim = 16;
  config.batch_size = 16;
  config.target_update_steps = 20;
  CoLightTrainer trainer(&f.environment, config);
  const auto stats = trainer.train_episode();
  EXPECT_GT(stats.travel_time, 0.0);
  EXPECT_EQ(trainer.episodes_trained(), 1u);
  auto controller = trainer.make_controller();
  EXPECT_EQ(controller->name(), "CoLight");
  const auto e1 = env::run_episode(f.environment, *controller, 13);
  const auto e2 = env::run_episode(f.environment, *controller, 13);
  EXPECT_DOUBLE_EQ(e1.travel_time, e2.travel_time);
}

TEST(CoLight, EpsilonDecaysAcrossEpisodes) {
  Fixture f;
  CoLightConfig config;
  config.embed_dim = 8;
  config.epsilon_start = 1.0;
  config.epsilon_end = 0.0;
  config.epsilon_decay_episodes = 2;
  config.updates_per_step = 0;  // pure exploration runs, no learning cost
  CoLightTrainer trainer(&f.environment, config);
  trainer.train_episode();
  trainer.train_episode();
  // After the decay horizon the policy is fully greedy: two evals agree.
  const auto e1 = trainer.eval_episode(5);
  const auto e2 = trainer.eval_episode(5);
  EXPECT_DOUBLE_EQ(e1.travel_time, e2.travel_time);
}

TEST(CoLight, CommOverheadCountsNeighborObs) {
  Fixture f;
  CoLightTrainer trainer(&f.environment, CoLightConfig{});
  EXPECT_EQ(trainer.comm_bits_per_step(), 2 * f.environment.obs_dim() * 32);
}

TEST(CommOverhead, PairUpLightOrderOfMagnitudeBelowBaselines) {
  // The Table IV relationship must hold structurally: one 32-bit message
  // vs. full neighbor payloads.
  Fixture f;
  Ma2cTrainer ma2c(&f.environment, Ma2cConfig{});
  CoLightTrainer colight(&f.environment, CoLightConfig{});
  EXPECT_GT(ma2c.comm_bits_per_step(), 10u * 32u);
  EXPECT_GT(colight.comm_bits_per_step(), 10u * 32u);
}

}  // namespace
}  // namespace tsc::baselines
