// Finite-difference gradient checking utilities for autodiff tests.
#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include "src/nn/tape.hpp"
#include "src/nn/tensor.hpp"

namespace tsc::test {

/// Builds a scalar loss from leaf values and compares the tape gradient of
/// every input element against central finite differences.
///
/// `build` receives a fresh tape and leaf Vars for each input tensor and
/// must return a scalar node. Returns the max absolute error observed.
inline double max_grad_error(
    std::vector<nn::Tensor> inputs,
    const std::function<nn::Var(nn::Tape&, const std::vector<nn::Var>&)>& build,
    double eps = 1e-5) {
  // Analytic gradients.
  std::vector<nn::Tensor> analytic;
  {
    nn::Tape tape;
    std::vector<nn::Var> leaves;
    for (const auto& in : inputs) leaves.push_back(tape.leaf(in));
    nn::Var loss = build(tape, leaves);
    tape.backward(loss);
    for (nn::Var v : leaves) analytic.push_back(tape.grad(v));
  }
  auto eval = [&](const std::vector<nn::Tensor>& ins) {
    nn::Tape tape;
    std::vector<nn::Var> leaves;
    for (const auto& in : ins) leaves.push_back(tape.constant(in));
    return tape.value(build(tape, leaves))[0];
  };
  double max_err = 0.0;
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    for (std::size_t i = 0; i < inputs[t].size(); ++i) {
      const double saved = inputs[t][i];
      inputs[t][i] = saved + eps;
      const double up = eval(inputs);
      inputs[t][i] = saved - eps;
      const double down = eval(inputs);
      inputs[t][i] = saved;
      const double numeric = (up - down) / (2.0 * eps);
      max_err = std::max(max_err, std::abs(numeric - analytic[t][i]));
    }
  }
  return max_err;
}

}  // namespace tsc::test
