// Worker-count-invariant seeding (PairUpConfig::invariant_seeding): the
// env seed of every collected episode is a pure function of its GLOBAL
// episode index, so training runs with different num_envs walk through the
// identical seed sequence and their curves stay comparable. The legacy
// (default) mode derives seeds from the round's seeder stream per worker
// slot, which this file also pins.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/core/trainer.hpp"
#include "src/env/env.hpp"
#include "src/scenarios/grid.hpp"
#include "src/util/rng.hpp"

namespace tsc {
namespace {

struct SeedFixture {
  scenario::GridScenario grid;
  env::TscEnv environment;

  SeedFixture()
      : grid(make_grid()),
        environment(&grid.net(), make_flows(grid), make_env_config(), 1) {}

  static scenario::GridScenario make_grid() {
    scenario::GridConfig config;
    config.rows = 2;
    config.cols = 2;
    return scenario::GridScenario(config);
  }
  static std::vector<sim::FlowSpec> make_flows(const scenario::GridScenario& g) {
    std::vector<sim::FlowSpec> flows;
    for (std::size_t c = 0; c < 2; ++c) {
      sim::FlowSpec f;
      f.route = g.route(g.north_terminal(c), g.south_terminal(c));
      f.profile = {{0.0, 400.0}, {200.0, 400.0}};
      flows.push_back(f);
    }
    return flows;
  }
  static env::EnvConfig make_env_config() {
    env::EnvConfig config;
    config.episode_seconds = 60.0;
    return config;
  }

  core::PairUpConfig fast_config() {
    core::PairUpConfig config;
    config.hidden = 16;
    config.ppo.epochs = 1;
    config.ppo.minibatch = 32;
    config.seed = 7;
    return config;
  }
};

TEST(InvariantSeeding, EnvSeedsMatchAcrossWorkerCounts) {
  // Golden: 4 serial rounds and 1 four-worker round must consume the same
  // four per-episode env seeds, in the same order.
  SeedFixture f1, f4;
  auto c1 = f1.fast_config();
  c1.num_envs = 1;
  c1.invariant_seeding = true;
  auto c4 = f4.fast_config();
  c4.num_envs = 4;
  c4.invariant_seeding = true;
  core::PairUpLightTrainer serial(&f1.environment, c1);
  core::PairUpLightTrainer parallel(&f4.environment, c4);

  std::vector<std::uint64_t> serial_seeds;
  for (int e = 0; e < 4; ++e) {
    serial.train_episode();
    ASSERT_EQ(serial.last_episode_seeds().size(), 1u);
    serial_seeds.push_back(serial.last_episode_seeds()[0]);
  }
  parallel.train_episode();
  EXPECT_EQ(parallel.last_episode_seeds(), serial_seeds);

  // The sequence is seed*7919 + global episode index, and a second round
  // continues it where the first left off.
  const std::uint64_t base = 7u * 7919u;
  for (std::size_t e = 0; e < 4; ++e) EXPECT_EQ(serial_seeds[e], base + e);
  parallel.train_episode();
  ASSERT_EQ(parallel.last_episode_seeds().size(), 4u);
  for (std::size_t w = 0; w < 4; ++w)
    EXPECT_EQ(parallel.last_episode_seeds()[w], base + 4 + w);
}

TEST(InvariantSeeding, LegacyDefaultKeepsSlotDependentSeeder) {
  // The flag defaults to off, and the legacy parallel path must keep the
  // historical seeder-stream derivation (bit-identical training runs).
  SeedFixture f;
  auto config = f.fast_config();
  config.num_envs = 3;
  ASSERT_FALSE(config.invariant_seeding);
  core::PairUpLightTrainer trainer(&f.environment, config);
  trainer.train_episode();

  Rng seeder(7u * 7919u + 0u);  // round 0 base seed
  std::vector<std::uint64_t> expected;
  for (std::size_t w = 0; w < 3; ++w) {
    expected.push_back(seeder());
    seeder.split();  // the worker's exploration stream, drawn per slot
  }
  EXPECT_EQ(trainer.last_episode_seeds(), expected);
}

}  // namespace
}  // namespace tsc
