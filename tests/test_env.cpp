#include "src/env/env.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/baselines/fixed_time.hpp"
#include "src/env/controller.hpp"
#include "src/scenarios/flow_patterns.hpp"
#include "src/scenarios/grid.hpp"

namespace tsc::env {
namespace {

scenario::GridScenario make_grid(std::size_t rows = 4, std::size_t cols = 4) {
  scenario::GridConfig config;
  config.rows = rows;
  config.cols = cols;
  return scenario::GridScenario(config);
}

std::vector<sim::FlowSpec> light_flows(const scenario::GridScenario& grid) {
  scenario::FlowPatternConfig config;
  config.time_scale = 0.1;
  return scenario::make_flow_pattern(grid, scenario::FlowPattern::kPattern5, config);
}

TEST(TscEnv, AgentRosterMatchesSignalizedNodes) {
  auto grid = make_grid();
  TscEnv env(&grid.net(), light_flows(grid), EnvConfig{}, 1);
  EXPECT_EQ(env.num_agents(), 16u);
  for (std::size_t i = 0; i < env.num_agents(); ++i) {
    EXPECT_EQ(env.agent(i).num_phases, 4u);
    EXPECT_EQ(grid.net().node(env.agent(i).node).type, sim::NodeType::kSignalized);
  }
}

TEST(TscEnv, ObsDimAndContent) {
  auto grid = make_grid();
  EnvConfig config;
  TscEnv env(&grid.net(), light_flows(grid), config, 1);
  // 2 per in-link slot + phase one-hot + green elapsed.
  EXPECT_EQ(env.obs_dim(), 2 * config.max_in_links + config.max_phases + 1);
  const auto obs = env.local_obs(0);
  ASSERT_EQ(obs.size(), env.obs_dim());
  // Initially: zero pressure/wait, phase 0 one-hot set.
  for (std::size_t i = 0; i < 2 * config.max_in_links; ++i)
    EXPECT_DOUBLE_EQ(obs[i], 0.0);
  EXPECT_DOUBLE_EQ(obs[2 * config.max_in_links], 1.0);
  for (std::size_t p = 1; p < config.max_phases; ++p)
    EXPECT_DOUBLE_EQ(obs[2 * config.max_in_links + p], 0.0);
}

TEST(TscEnv, NeighborGraphHop1Hop2) {
  auto grid = make_grid();  // 4x4 interior lattice
  TscEnv env(&grid.net(), light_flows(grid), EnvConfig{}, 1);
  // Find the agent at interior position (1,1): neighbors (0,1),(2,1),(1,0),(1,2).
  std::size_t center = 0;
  for (std::size_t i = 0; i < env.num_agents(); ++i)
    if (env.agent(i).node == grid.intersection(1, 1)) center = i;
  const auto& spec = env.agent(center);
  EXPECT_EQ(spec.hop1.size(), 4u);
  EXPECT_EQ(spec.upstream.size(), 4u);
  // hop2 of (1,1): manhattan-distance-2 lattice nodes within the 4x4 grid:
  // (0,0),(0,2),(2,0),(2,2),(3,1),(1,3) = 6.
  EXPECT_EQ(spec.hop2.size(), 6u);
  // hop1 and hop2 are disjoint and exclude self.
  for (auto nb : spec.hop2) {
    EXPECT_NE(nb, center);
    EXPECT_EQ(std::count(spec.hop1.begin(), spec.hop1.end(), nb), 0);
  }
  // Corner agent has 2 hop1 neighbors.
  std::size_t corner = 0;
  for (std::size_t i = 0; i < env.num_agents(); ++i)
    if (env.agent(i).node == grid.intersection(0, 0)) corner = i;
  EXPECT_EQ(env.agent(corner).hop1.size(), 2u);
  EXPECT_EQ(env.agent(corner).hop2.size(), 3u);  // (0,2),(2,0),(1,1)
}

TEST(TscEnv, StepAppliesActionsAndAdvancesTime) {
  auto grid = make_grid();
  EnvConfig config;
  config.action_duration = 5.0;
  config.episode_seconds = 50.0;
  TscEnv env(&grid.net(), light_flows(grid), config, 1);
  env.reset(7);
  std::vector<std::size_t> actions(env.num_agents(), 2);
  const auto rewards = env.step(actions);
  EXPECT_EQ(rewards.size(), env.num_agents());
  EXPECT_DOUBLE_EQ(env.now(), 5.0);
  // Yellow (2 s) has elapsed within the 5 s action, so phase 2 is active.
  EXPECT_EQ(env.simulator().signal(env.agent(0).node).phase(), 2u);
  for (int i = 0; i < 9; ++i) env.step(actions);
  EXPECT_TRUE(env.done());
  EXPECT_EQ(env.steps_taken(), 10u);
}

TEST(TscEnv, StepValidatesActions) {
  auto grid = make_grid();
  TscEnv env(&grid.net(), light_flows(grid), EnvConfig{}, 1);
  env.reset(1);
  std::vector<std::size_t> too_few(3, 0);
  EXPECT_THROW(env.step(too_few), std::invalid_argument);
  std::vector<std::size_t> bad_phase(env.num_agents(), 9);
  EXPECT_THROW(env.step(bad_phase), std::out_of_range);
}

TEST(TscEnv, RewardIsEquationSix) {
  auto grid = make_grid();
  // Heavy flows so queues certainly form.
  scenario::FlowPatternConfig flow_config;
  flow_config.time_scale = 0.05;
  auto flows = scenario::make_flow_pattern(grid, scenario::FlowPattern::kPattern1,
                                           flow_config);
  EnvConfig config;
  config.reward_scale = 1.0;  // raw Eq. 6 for the check
  TscEnv env(&grid.net(), flows, config, 1);
  env.reset(3);
  std::vector<std::size_t> actions(env.num_agents(), 0);
  std::vector<double> rewards;
  for (int i = 0; i < 20; ++i) rewards = env.step(actions);
  for (std::size_t a = 0; a < env.num_agents(); ++a) {
    const auto node = env.agent(a).node;
    const double expected =
        -(static_cast<double>(env.simulator().intersection_halting(node)) +
          env.simulator().intersection_max_head_wait(node));
    EXPECT_DOUBLE_EQ(rewards[a], expected);
  }
  // Congestion formed somewhere, so some reward is negative.
  EXPECT_LT(*std::min_element(rewards.begin(), rewards.end()), 0.0);
}

TEST(TscEnv, MostCongestedUpstreamPrefersCongestedNeighbor) {
  auto grid = make_grid();
  // Southbound-only column flow: congestion builds north of each node.
  scenario::FlowPatternConfig flow_config;
  flow_config.time_scale = 0.02;  // peak almost immediately
  auto flows = scenario::make_flow_pattern(grid, scenario::FlowPattern::kPattern1,
                                           flow_config);
  TscEnv env(&grid.net(), flows, EnvConfig{}, 1);
  env.reset(5);
  std::vector<std::size_t> actions(env.num_agents(), 0);
  for (int i = 0; i < 30; ++i) env.step(actions);
  // Property: the partner is always self or an upstream neighbor, and its
  // congestion is >= the agent's own.
  for (std::size_t i = 0; i < env.num_agents(); ++i) {
    const std::size_t partner = env.most_congested_upstream(i);
    const auto& ups = env.agent(i).upstream;
    EXPECT_TRUE(partner == i ||
                std::count(ups.begin(), ups.end(), partner) > 0);
    EXPECT_GE(env.congestion_score(partner), env.congestion_score(i));
  }
  // At least one congested agent must have picked a non-self partner.
  std::size_t non_self = 0;
  for (std::size_t i = 0; i < env.num_agents(); ++i)
    if (env.most_congested_upstream(i) != i) ++non_self;
  EXPECT_GT(non_self, 0u);
}

TEST(TscEnv, EpisodeMetricsAccumulate) {
  auto grid = make_grid();
  EnvConfig config;
  config.episode_seconds = 100.0;
  TscEnv env(&grid.net(), light_flows(grid), config, 1);
  env.reset(9);
  std::vector<std::size_t> actions(env.num_agents(), 0);
  while (!env.done()) env.step(actions);
  EXPECT_EQ(env.wait_history().size(), 20u);
  EXPECT_GE(env.episode_avg_wait(), 0.0);
  EXPECT_GT(env.average_travel_time(), 0.0);
}

TEST(TscEnv, ResetRestartsCleanly) {
  auto grid = make_grid();
  EnvConfig config;
  config.episode_seconds = 50.0;
  TscEnv env(&grid.net(), light_flows(grid), config, 1);
  env.reset(11);
  std::vector<std::size_t> actions(env.num_agents(), 1);
  while (!env.done()) env.step(actions);
  const double tt1 = env.average_travel_time();
  env.reset(11);
  EXPECT_FALSE(env.done());
  EXPECT_EQ(env.steps_taken(), 0u);
  EXPECT_TRUE(env.wait_history().empty());
  while (!env.done()) env.step(actions);
  EXPECT_DOUBLE_EQ(env.average_travel_time(), tt1);  // same seed, same run
}

TEST(TscEnv, RejectsOversizedNodes) {
  auto grid = make_grid();
  EnvConfig config;
  config.max_phases = 2;  // grid nodes have 4 phases
  EXPECT_THROW(TscEnv(&grid.net(), light_flows(grid), config, 1),
               std::invalid_argument);
}

TEST(RunEpisode, CollectsStats) {
  auto grid = make_grid();
  EnvConfig config;
  config.episode_seconds = 100.0;
  TscEnv env(&grid.net(), light_flows(grid), config, 1);
  baselines::FixedTimeController controller;
  const auto stats = run_episode(env, controller, 21);
  EXPECT_GT(stats.travel_time, 0.0);
  EXPECT_GT(stats.vehicles_spawned, 0u);
  EXPECT_LE(stats.vehicles_finished, stats.vehicles_spawned);
  // Same controller, same seed -> identical stats.
  const auto stats2 = run_episode(env, controller, 21);
  EXPECT_DOUBLE_EQ(stats.travel_time, stats2.travel_time);
}

}  // namespace
}  // namespace tsc::env
