#include "src/nn/tape.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "grad_check.hpp"
#include "src/util/rng.hpp"

namespace tsc::nn {
namespace {

using tsc::test::max_grad_error;

Tensor random_tensor(std::size_t rows, std::size_t cols, Rng& rng, double scale = 1.0) {
  Tensor t = Tensor::zeros(rows, cols);
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = scale * rng.normal();
  return t;
}

TEST(Tape, ForwardValuesAddSubMul) {
  Tape tape;
  Var a = tape.constant(Tensor::vector({1, 2, 3}));
  Var b = tape.constant(Tensor::vector({10, 20, 30}));
  EXPECT_DOUBLE_EQ(tape.value(tape.add(a, b))[1], 22.0);
  EXPECT_DOUBLE_EQ(tape.value(tape.sub(b, a))[2], 27.0);
  EXPECT_DOUBLE_EQ(tape.value(tape.mul(a, b))[0], 10.0);
  EXPECT_DOUBLE_EQ(tape.value(tape.scale(a, -2.0))[2], -6.0);
  EXPECT_DOUBLE_EQ(tape.value(tape.add_scalar(a, 0.5))[0], 1.5);
}

TEST(Tape, BiasBroadcastAdd) {
  Tape tape;
  Var m = tape.constant(Tensor::matrix(2, 3, {1, 2, 3, 4, 5, 6}));
  Var bias = tape.constant(Tensor::vector({10, 20, 30}));
  const Tensor& out = tape.value(tape.add(m, bias));
  EXPECT_DOUBLE_EQ(out.at(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(out.at(1, 2), 36.0);
}

TEST(Tape, SoftmaxRowsSumToOne) {
  Tape tape;
  Var x = tape.constant(Tensor::matrix(2, 3, {1, 2, 3, -5, 0, 5}));
  const Tensor& p = tape.value(tape.softmax_rows(x));
  for (std::size_t r = 0; r < 2; ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_GT(p.at(r, c), 0.0);
      row_sum += p.at(r, c);
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-12);
  }
}

TEST(Tape, SoftmaxNumericallyStableForLargeLogits) {
  Tape tape;
  Var x = tape.constant(Tensor::matrix(1, 3, {1000.0, 1001.0, 999.0}));
  const Tensor& p = tape.value(tape.softmax_rows(x));
  EXPECT_FALSE(std::isnan(p[0]));
  EXPECT_GT(p.at(0, 1), p.at(0, 0));
  const Tensor& lp = tape.value(tape.log_softmax_rows(x));
  EXPECT_FALSE(std::isnan(lp[0]));
  EXPECT_LT(lp.at(0, 0), 0.0);
}

TEST(Tape, LogSoftmaxMatchesLogOfSoftmax) {
  Tape tape;
  Var x = tape.constant(Tensor::matrix(2, 4, {0.3, -1, 2, 0.5, 1, 1, 1, 1}));
  const Tensor& p = tape.value(tape.softmax_rows(x));
  const Tensor& lp = tape.value(tape.log_softmax_rows(x));
  for (std::size_t i = 0; i < p.size(); ++i)
    EXPECT_NEAR(std::log(p[i]), lp[i], 1e-10);
}

TEST(Tape, GatherColsPicksPerRow) {
  Tape tape;
  Var x = tape.constant(Tensor::matrix(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9}));
  const Tensor& g = tape.value(tape.gather_cols(x, {2, 0, 1}));
  EXPECT_DOUBLE_EQ(g.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(g.at(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(g.at(2, 0), 8.0);
}

TEST(Tape, ConcatAndSlice) {
  Tape tape;
  Var a = tape.constant(Tensor::matrix(2, 2, {1, 2, 3, 4}));
  Var b = tape.constant(Tensor::matrix(2, 1, {9, 10}));
  Var cat = tape.concat_cols({a, b});
  EXPECT_EQ(tape.value(cat).cols(), 3u);
  EXPECT_DOUBLE_EQ(tape.value(cat).at(1, 2), 10.0);
  Var sl = tape.slice_cols(cat, 1, 2);
  EXPECT_DOUBLE_EQ(tape.value(sl).at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(tape.value(sl).at(0, 1), 9.0);

  Var rows = tape.concat_rows({a, a});
  EXPECT_EQ(tape.value(rows).rows(), 4u);
  Var row = tape.select_row(rows, 3);
  EXPECT_DOUBLE_EQ(tape.value(row).at(0, 1), 4.0);
}

TEST(Tape, ClampMinMaxValues) {
  Tape tape;
  Var x = tape.constant(Tensor::vector({-2, 0.5, 3}));
  const Tensor& c = tape.value(tape.clamp(x, -1, 1));
  EXPECT_DOUBLE_EQ(c[0], -1.0);
  EXPECT_DOUBLE_EQ(c[1], 0.5);
  EXPECT_DOUBLE_EQ(c[2], 1.0);

  Var y = tape.constant(Tensor::vector({0, 1, 0}));
  Var x2 = tape.constant(Tensor::vector({-2, 0.5, 3}));
  EXPECT_DOUBLE_EQ(tape.value(tape.min_elem(x2, y))[2], 0.0);
  EXPECT_DOUBLE_EQ(tape.value(tape.max_elem(x2, y))[0], 0.0);
}

TEST(Tape, ParamGradientAccumulatesIntoParameter) {
  Parameter w(Tensor::vector({2.0, 3.0}), "w");
  Tape tape;
  Var wv = tape.param(w);
  Var loss = tape.sum(tape.square(wv));  // d/dw = 2w
  tape.backward(loss);
  EXPECT_DOUBLE_EQ(w.grad[0], 4.0);
  EXPECT_DOUBLE_EQ(w.grad[1], 6.0);
  // Second pass accumulates.
  Tape tape2;
  Var wv2 = tape2.param(w);
  tape2.backward(tape2.sum(wv2));
  EXPECT_DOUBLE_EQ(w.grad[0], 5.0);
}

TEST(Tape, ResetClearsNodes) {
  Tape tape;
  tape.constant(Tensor::vector({1}));
  EXPECT_EQ(tape.num_nodes(), 1u);
  tape.reset();
  EXPECT_EQ(tape.num_nodes(), 0u);
}

// ---------------------------------------------------------------------------
// Numerical gradient checks for every differentiable op.

struct OpCase {
  const char* name;
  std::size_t num_inputs;
  double scale;  // input magnitude (keep away from kinks for relu/clamp)
  std::function<Var(Tape&, const std::vector<Var>&)> build;
};

class TapeGradient : public ::testing::TestWithParam<OpCase> {};

TEST_P(TapeGradient, MatchesFiniteDifferences) {
  const OpCase& op = GetParam();
  Rng rng(1234 + op.num_inputs);
  std::vector<Tensor> inputs;
  for (std::size_t i = 0; i < op.num_inputs; ++i)
    inputs.push_back(random_tensor(3, 4, rng, op.scale));
  const double err = max_grad_error(inputs, op.build);
  EXPECT_LT(err, 2e-6) << "op: " << op.name;
}

// Each case reduces to a scalar via weighted sum so gradients vary per
// element (plain sum would hide transposition bugs in some ops).
Var weighted(Tape& t, Var x) {
  const Tensor& v = t.value(x);
  Tensor w = Tensor::zeros(v.rows(), v.cols());
  for (std::size_t i = 0; i < w.size(); ++i)
    w[i] = 0.1 * static_cast<double>(i + 1);
  return t.sum(t.mul(x, t.constant(std::move(w))));
}

const OpCase kOpCases[] = {
    {"add", 2, 1.0, [](Tape& t, const std::vector<Var>& in) {
       return weighted(t, t.add(in[0], in[1]));
     }},
    {"sub", 2, 1.0, [](Tape& t, const std::vector<Var>& in) {
       return weighted(t, t.sub(in[0], in[1]));
     }},
    {"mul", 2, 1.0, [](Tape& t, const std::vector<Var>& in) {
       return weighted(t, t.mul(in[0], in[1]));
     }},
    {"scale", 1, 1.0, [](Tape& t, const std::vector<Var>& in) {
       return weighted(t, t.scale(in[0], -2.5));
     }},
    {"add_scalar", 1, 1.0, [](Tape& t, const std::vector<Var>& in) {
       return weighted(t, t.add_scalar(in[0], 3.0));
     }},
    {"matmul", 2, 0.7, [](Tape& t, const std::vector<Var>& in) {
       // in[0]: [3,4]; build [4,3] from in[1] by slicing+concat is overkill;
       // multiply in[0] by in[1]^T via matmul(in0, transpose-free trick):
       // use matmul(in0_slice..) - simpler: matmul([3,4],[4,?]) needs a
       // second input of shape [4,x]; reuse rows of in[1] by concatenating
       // its first column repeatedly is messy. Instead multiply in[0]^T
       // implicitly: loss = sum(matmul(in0, W)) with W from in[1] columns.
       // We just take in[1] as [3,4] and use its transpose through two
       // slices: matmul(in0 [3x4], concat_rows(select..)) -> keep simple:
       Var b = t.concat_rows({t.select_row(in[1], 0), t.select_row(in[1], 1),
                              t.select_row(in[1], 2),
                              t.select_row(in[1], 0)});  // [4,4]
       return weighted(t, t.matmul(in[0], b));
     }},
    {"relu", 1, 1.0, [](Tape& t, const std::vector<Var>& in) {
       return weighted(t, t.relu(in[0]));
     }},
    {"leaky_relu", 1, 1.0, [](Tape& t, const std::vector<Var>& in) {
       return weighted(t, t.leaky_relu(in[0], 0.1));
     }},
    {"tanh", 1, 1.0, [](Tape& t, const std::vector<Var>& in) {
       return weighted(t, t.tanh(in[0]));
     }},
    {"sigmoid", 1, 1.0, [](Tape& t, const std::vector<Var>& in) {
       return weighted(t, t.sigmoid(in[0]));
     }},
    {"exp", 1, 0.5, [](Tape& t, const std::vector<Var>& in) {
       return weighted(t, t.exp(in[0]));
     }},
    {"log_of_positive", 1, 0.3, [](Tape& t, const std::vector<Var>& in) {
       return weighted(t, t.log(t.add_scalar(t.square(in[0]), 1.0)));
     }},
    {"square", 1, 1.0, [](Tape& t, const std::vector<Var>& in) {
       return weighted(t, t.square(in[0]));
     }},
    {"softmax", 1, 1.0, [](Tape& t, const std::vector<Var>& in) {
       return weighted(t, t.softmax_rows(in[0]));
     }},
    {"log_softmax", 1, 1.0, [](Tape& t, const std::vector<Var>& in) {
       return weighted(t, t.log_softmax_rows(in[0]));
     }},
    {"mean", 1, 1.0, [](Tape& t, const std::vector<Var>& in) {
       return t.mean(t.square(in[0]));
     }},
    {"concat_cols", 2, 1.0, [](Tape& t, const std::vector<Var>& in) {
       return weighted(t, t.concat_cols({in[0], in[1]}));
     }},
    {"concat_rows", 2, 1.0, [](Tape& t, const std::vector<Var>& in) {
       return weighted(t, t.concat_rows({in[0], in[1]}));
     }},
    {"slice_cols", 1, 1.0, [](Tape& t, const std::vector<Var>& in) {
       return weighted(t, t.slice_cols(in[0], 1, 2));
     }},
    {"select_row", 1, 1.0, [](Tape& t, const std::vector<Var>& in) {
       return weighted(t, t.select_row(in[0], 2));
     }},
    {"gather_cols", 1, 1.0, [](Tape& t, const std::vector<Var>& in) {
       return weighted(t, t.gather_cols(in[0], {3, 0, 2}));
     }},
    {"clamp", 1, 0.4, [](Tape& t, const std::vector<Var>& in) {
       return weighted(t, t.clamp(in[0], -1.0, 1.0));
     }},
    {"min_elem", 2, 1.0, [](Tape& t, const std::vector<Var>& in) {
       return weighted(t, t.min_elem(in[0], in[1]));
     }},
    {"max_elem", 2, 1.0, [](Tape& t, const std::vector<Var>& in) {
       return weighted(t, t.max_elem(in[0], in[1]));
     }},
    {"composite_mlp_like", 2, 0.7, [](Tape& t, const std::vector<Var>& in) {
       Var h = t.tanh(t.mul(in[0], in[1]));
       Var p = t.softmax_rows(h);
       return t.mean(t.mul(p, t.log(t.add_scalar(t.square(in[0]), 0.5))));
     }},
};

INSTANTIATE_TEST_SUITE_P(AllOps, TapeGradient, ::testing::ValuesIn(kOpCases),
                         [](const ::testing::TestParamInfo<OpCase>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace tsc::nn
