#include <gtest/gtest.h>

#include <cmath>

#include "src/core/actor.hpp"
#include "src/core/critic.hpp"
#include "src/core/trainer.hpp"
#include "src/scenarios/flow_patterns.hpp"
#include "src/scenarios/grid.hpp"
#include "src/scenarios/monaco.hpp"

namespace tsc::core {
namespace {

using nn::Tape;
using nn::Tensor;
using nn::Var;

TEST(CoordinatedActor, OutputShapesAndMasking) {
  Rng rng(1);
  CoordinatedActor actor(10, 1, 16, 6, rng);
  EXPECT_EQ(actor.input_dim(), 11u);
  Tape tape;
  Var input = tape.constant(Tensor::zeros(3, 11));
  Var h = tape.constant(Tensor::zeros(3, 16));
  Var c = tape.constant(Tensor::zeros(3, 16));
  auto out = actor.forward(tape, input, h, c, {6, 4, 2});
  EXPECT_EQ(tape.value(out.logits).rows(), 3u);
  EXPECT_EQ(tape.value(out.logits).cols(), 6u);
  EXPECT_EQ(tape.value(out.message).cols(), 1u);
  EXPECT_EQ(tape.value(out.state.h).cols(), 16u);
  // Masked rows: probabilities of invalid phases must vanish.
  Var probs = tape.softmax_rows(out.logits);
  EXPECT_NEAR(tape.value(probs).at(1, 4), 0.0, 1e-12);
  EXPECT_NEAR(tape.value(probs).at(1, 5), 0.0, 1e-12);
  EXPECT_NEAR(tape.value(probs).at(2, 2), 0.0, 1e-12);
  double row2 = 0.0;
  for (std::size_t p = 0; p < 2; ++p) row2 += tape.value(probs).at(2, p);
  EXPECT_NEAR(row2, 1.0, 1e-9);
}

TEST(CoordinatedActor, MessageInputChangesBehavior) {
  Rng rng(2);
  CoordinatedActor actor(4, 1, 16, 4, rng);
  Tensor base = Tensor::zeros(1, 5);
  Tensor with_msg = base;
  with_msg.at(0, 4) = 1.0;  // incoming message slot
  Tape t1, t2;
  auto o1 = actor.forward(t1, t1.constant(base), t1.constant(Tensor::zeros(1, 16)),
                          t1.constant(Tensor::zeros(1, 16)), {4});
  auto o2 = actor.forward(t2, t2.constant(with_msg),
                          t2.constant(Tensor::zeros(1, 16)),
                          t2.constant(Tensor::zeros(1, 16)), {4});
  double diff = 0.0;
  for (std::size_t i = 0; i < 4; ++i)
    diff += std::abs(t1.value(o1.logits).at(0, i) - t2.value(o2.logits).at(0, i));
  EXPECT_GT(diff, 1e-9);
}

TEST(CentralizedCritic, ValueShapeAndStateEvolution) {
  Rng rng(3);
  CentralizedCritic critic(20, 16, rng);
  Tape tape;
  Var input = tape.constant(Tensor::full(2, 20, 0.5));
  Var h = tape.constant(Tensor::zeros(2, 16));
  Var c = tape.constant(Tensor::zeros(2, 16));
  auto out = critic.forward(tape, input, h, c);
  EXPECT_EQ(tape.value(out.value).rows(), 2u);
  EXPECT_EQ(tape.value(out.value).cols(), 1u);
  EXPECT_GT(tape.value(out.state.h).norm(), 0.0);
}

// ---------------------------------------------------------------------------

struct TrainerFixture {
  scenario::GridScenario grid;
  env::TscEnv environment;

  TrainerFixture()
      : grid(make_grid()),
        environment(&grid.net(), make_flows(grid), make_env_config(), 1) {}

  static scenario::GridScenario make_grid() {
    scenario::GridConfig config;
    config.rows = 2;
    config.cols = 2;
    return scenario::GridScenario(config);
  }
  static std::vector<sim::FlowSpec> make_flows(const scenario::GridScenario& g) {
    // Simple crossing flows that congest quickly on a 2x2 grid.
    std::vector<sim::FlowSpec> flows;
    for (std::size_t r = 0; r < 2; ++r) {
      sim::FlowSpec f;
      f.route = g.route(g.west_terminal(r), g.east_terminal(r));
      f.profile = {{0.0, 500.0}, {200.0, 500.0}};
      flows.push_back(f);
    }
    for (std::size_t c = 0; c < 2; ++c) {
      sim::FlowSpec f;
      f.route = g.route(g.north_terminal(c), g.south_terminal(c));
      f.profile = {{0.0, 400.0}, {200.0, 400.0}};
      flows.push_back(f);
    }
    return flows;
  }
  static env::EnvConfig make_env_config() {
    env::EnvConfig config;
    config.episode_seconds = 100.0;
    return config;
  }

  PairUpConfig fast_config() {
    PairUpConfig config;
    config.hidden = 16;
    config.ppo.epochs = 1;
    config.ppo.minibatch = 32;
    return config;
  }
};

TEST(PairUpLightTrainer, CriticInputDimIncludesPaddedNeighbors) {
  TrainerFixture f;
  PairUpLightTrainer trainer(&f.environment, f.fast_config());
  // 2x2 grid: hop1 max 2, hop2 max 1 -> obs + (2+1)*2 features.
  EXPECT_EQ(trainer.critic_input_dim(), f.environment.obs_dim() + 3 * 2);
  EXPECT_EQ(trainer.num_models(), 1u);  // parameter sharing
}

TEST(PairUpLightTrainer, TrainEpisodeRunsAndCountsUp) {
  TrainerFixture f;
  PairUpLightTrainer trainer(&f.environment, f.fast_config());
  const auto stats = trainer.train_episode();
  EXPECT_EQ(trainer.episodes_trained(), 1u);
  EXPECT_GT(stats.travel_time, 0.0);
  EXPECT_GT(stats.vehicles_spawned, 0u);
  trainer.train_episode();
  EXPECT_EQ(trainer.episodes_trained(), 2u);
}

TEST(PairUpLightTrainer, DeterministicGivenSeeds) {
  TrainerFixture f1, f2;
  PairUpConfig config;
  config.hidden = 16;
  config.ppo.epochs = 1;
  PairUpLightTrainer t1(&f1.environment, config);
  PairUpLightTrainer t2(&f2.environment, config);
  const auto s1 = t1.train_episode();
  const auto s2 = t2.train_episode();
  EXPECT_DOUBLE_EQ(s1.travel_time, s2.travel_time);
  EXPECT_DOUBLE_EQ(s1.mean_reward, s2.mean_reward);
  const auto e1 = t1.eval_episode(77);
  const auto e2 = t2.eval_episode(77);
  EXPECT_DOUBLE_EQ(e1.travel_time, e2.travel_time);
}

TEST(PairUpLightTrainer, EvalDoesNotLearn) {
  TrainerFixture f;
  PairUpLightTrainer trainer(&f.environment, f.fast_config());
  trainer.train_episode();
  const auto e1 = trainer.eval_episode(5);
  EXPECT_EQ(trainer.episodes_trained(), 1u);
  const auto e2 = trainer.eval_episode(5);
  EXPECT_DOUBLE_EQ(e1.travel_time, e2.travel_time);  // greedy + same seed
}

TEST(PairUpLightTrainer, LearningImprovesOverEpisodes) {
  TrainerFixture f;
  PairUpConfig config = f.fast_config();
  config.ppo.epochs = 2;
  PairUpLightTrainer trainer(&f.environment, config);
  double first = 0.0, last = 0.0;
  const int episodes = 12;
  for (int e = 0; e < episodes; ++e) {
    const auto stats = trainer.train_episode();
    if (e < 3) first += stats.mean_reward;
    if (e >= episodes - 3) last += stats.mean_reward;
  }
  // Mean reward (negative congestion) should move up as training proceeds.
  EXPECT_GT(last / 3.0, first / 3.0 - 0.05);
}

TEST(PairUpLightTrainer, ControllerMatchesEvalEpisode) {
  TrainerFixture f;
  PairUpLightTrainer trainer(&f.environment, f.fast_config());
  trainer.train_episode();
  auto controller = trainer.make_controller();
  EXPECT_EQ(controller->name(), "PairUpLight");
  const auto via_controller = env::run_episode(f.environment, *controller, 123);
  const auto via_eval = trainer.eval_episode(123);
  EXPECT_DOUBLE_EQ(via_controller.travel_time, via_eval.travel_time);
}

TEST(PairUpLightTrainer, NoCommAblationRunsAndIsNamed) {
  TrainerFixture f;
  PairUpConfig config = f.fast_config();
  config.comm_enabled = false;
  PairUpLightTrainer trainer(&f.environment, config);
  trainer.train_episode();
  auto controller = trainer.make_controller();
  EXPECT_EQ(controller->name(), "PairUpLight-NoComm");
  const auto stats = env::run_episode(f.environment, *controller, 9);
  EXPECT_GT(stats.travel_time, 0.0);
}

TEST(PairUpLightTrainer, MessageBandwidthConfigurable) {
  TrainerFixture f;
  PairUpConfig config = f.fast_config();
  config.msg_dim = 2;
  PairUpLightTrainer trainer(&f.environment, config);
  EXPECT_EQ(trainer.comm_bits_per_step(), 64u);
  trainer.train_episode();  // runs with the wider message
  PairUpConfig one = f.fast_config();
  PairUpLightTrainer trainer1(&f.environment, one);
  EXPECT_EQ(trainer1.comm_bits_per_step(), 32u);
}

TEST(PairUpLightTrainer, PaperEpsilonGreedyModeRuns) {
  TrainerFixture f;
  PairUpConfig config = f.fast_config();
  config.ppo.sample_actions = false;  // Algorithm 1's epsilon-greedy argmax
  PairUpLightTrainer trainer(&f.environment, config);
  const auto stats = trainer.train_episode();
  EXPECT_GT(stats.travel_time, 0.0);
}

TEST(PairUpLightTrainer, HeterogeneousNoSharing) {
  scenario::MonacoConfig monaco_config;
  monaco_config.grid_rows = 3;
  monaco_config.grid_cols = 3;  // small heterogeneous net for speed
  scenario::MonacoScenario monaco(monaco_config);
  env::EnvConfig env_config;
  env_config.episode_seconds = 60.0;
  env::TscEnv environment(&monaco.net(), monaco.make_flows(600.0, 0.05, 3, 13),
                          env_config, 1);
  PairUpConfig config;
  config.hidden = 12;
  config.parameter_sharing = false;
  config.ppo.epochs = 1;
  PairUpLightTrainer trainer(&environment, config);
  EXPECT_EQ(trainer.num_models(), environment.num_agents());
  const auto stats = trainer.train_episode();
  EXPECT_GT(stats.travel_time, 0.0);
  const auto eval = trainer.eval_episode(3);
  EXPECT_GT(eval.travel_time, 0.0);
}

}  // namespace
}  // namespace tsc::core
