#include <gtest/gtest.h>

#include "src/sim/flow.hpp"
#include "src/sim/signal.hpp"
#include "src/util/rng.hpp"

namespace tsc::sim {
namespace {

TEST(SignalController, StartsGreenOnPhaseZero) {
  SignalController sig(0, 4, 2.0);
  EXPECT_EQ(sig.phase(), 0u);
  EXPECT_FALSE(sig.in_yellow());
}

TEST(SignalController, SamePhaseRequestExtendsGreen) {
  SignalController sig(0, 4, 2.0);
  sig.tick(5.0);
  EXPECT_DOUBLE_EQ(sig.green_elapsed(), 5.0);
  sig.request_phase(0);
  EXPECT_FALSE(sig.in_yellow());
  sig.tick(5.0);
  EXPECT_DOUBLE_EQ(sig.green_elapsed(), 10.0);
}

TEST(SignalController, SwitchRunsYellowInterlock) {
  SignalController sig(0, 4, 2.0);
  sig.request_phase(2);
  EXPECT_TRUE(sig.in_yellow());
  EXPECT_EQ(sig.phase(), 0u);  // still the outgoing phase
  sig.tick(1.0);
  EXPECT_TRUE(sig.in_yellow());
  sig.tick(1.0);
  EXPECT_FALSE(sig.in_yellow());
  EXPECT_EQ(sig.phase(), 2u);
  EXPECT_DOUBLE_EQ(sig.green_elapsed(), 0.0);
}

TEST(SignalController, RetargetDuringYellow) {
  SignalController sig(0, 4, 2.0);
  sig.request_phase(1);
  sig.tick(1.0);
  sig.request_phase(3);  // change of mind mid-yellow
  sig.tick(1.0);
  // Only 1 s of clearance has elapsed toward the NEW target: the retarget
  // restarted the yellow, so the controller must still be clearing.
  EXPECT_TRUE(sig.in_yellow());
  EXPECT_EQ(sig.phase(), 0u);
  sig.tick(1.0);
  EXPECT_FALSE(sig.in_yellow());
  EXPECT_EQ(sig.phase(), 3u);
}

// Regression: retargeting mid-yellow used to keep the original clearance
// countdown, so the new target phase could go green after less than
// yellow_time of clearance (here: 1.9 s into a 2.0 s yellow, a retarget
// followed by a 0.2 s tick flipped straight to the new phase).
TEST(SignalController, MidYellowRetargetRestartsClearance) {
  SignalController sig(0, 4, 2.0);
  sig.request_phase(1);
  sig.tick(1.9);  // 0.1 s of the original clearance left
  sig.request_phase(3);
  sig.tick(0.2);  // would have finished the ORIGINAL countdown
  EXPECT_TRUE(sig.in_yellow());
  EXPECT_EQ(sig.phase(), 0u);
  sig.tick(1.7);  // 1.9 s since the retarget: still clearing
  EXPECT_TRUE(sig.in_yellow());
  sig.tick(0.1);  // full 2.0 s since the retarget
  EXPECT_FALSE(sig.in_yellow());
  EXPECT_EQ(sig.phase(), 3u);
}

// Repeating the pending target mid-yellow is not a retarget: the running
// clearance keeps counting down instead of restarting.
TEST(SignalController, RepeatedPendingRequestDoesNotRestartClearance) {
  SignalController sig(0, 4, 2.0);
  sig.request_phase(1);
  sig.tick(1.5);
  sig.request_phase(1);  // same pending target, no-op
  sig.tick(0.5);
  EXPECT_FALSE(sig.in_yellow());
  EXPECT_EQ(sig.phase(), 1u);
}

// Regression: requesting the CURRENT phase mid-yellow used to be treated
// like any other retarget, so the intersection sat through a pointless
// clearance just to "switch" to the phase it was already serving. Now it
// cancels the switch and resumes green with the elapsed time intact.
TEST(SignalController, RetargetBackToCurrentPhaseCancelsSwitch) {
  SignalController sig(0, 4, 2.0);
  sig.tick(7.0);  // accumulate some green time on phase 0
  sig.request_phase(2);
  sig.tick(1.0);
  EXPECT_TRUE(sig.in_yellow());
  sig.request_phase(0);  // change of mind: stay on the current phase
  EXPECT_FALSE(sig.in_yellow());
  EXPECT_EQ(sig.phase(), 0u);
  EXPECT_DOUBLE_EQ(sig.green_elapsed(), 7.0);  // green time survives
  sig.tick(1.0);
  EXPECT_FALSE(sig.in_yellow());
  EXPECT_EQ(sig.phase(), 0u);
  EXPECT_DOUBLE_EQ(sig.green_elapsed(), 8.0);
}

TEST(SignalController, ZeroYellowSwitchesImmediately) {
  SignalController sig(0, 2, 0.0);
  sig.request_phase(1);
  EXPECT_FALSE(sig.in_yellow());
  EXPECT_EQ(sig.phase(), 1u);
}

TEST(SignalController, RejectsBadInputs) {
  EXPECT_THROW(SignalController(0, 0, 2.0), std::invalid_argument);
  EXPECT_THROW(SignalController(0, 2, -1.0), std::invalid_argument);
  SignalController sig(0, 2, 2.0);
  EXPECT_THROW(sig.request_phase(2), std::out_of_range);
  EXPECT_THROW(sig.reset(5), std::out_of_range);
}

TEST(SignalController, ResetRestoresInitialState) {
  SignalController sig(0, 4, 2.0);
  sig.request_phase(3);
  sig.tick(1.0);
  sig.reset(1);
  EXPECT_EQ(sig.phase(), 1u);
  EXPECT_FALSE(sig.in_yellow());
  EXPECT_DOUBLE_EQ(sig.green_elapsed(), 0.0);
}

// ---------------------------------------------------------------------------

TEST(FlowSpec, PiecewiseLinearInterpolation) {
  FlowSpec f;
  f.profile = {{0.0, 0.0}, {100.0, 600.0}, {200.0, 600.0}};
  EXPECT_DOUBLE_EQ(f.rate_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.rate_at(50.0), 300.0);
  EXPECT_DOUBLE_EQ(f.rate_at(100.0), 600.0);
  EXPECT_DOUBLE_EQ(f.rate_at(150.0), 600.0);
  EXPECT_DOUBLE_EQ(f.rate_at(250.0), 0.0);  // past the last knot: flow ended
  EXPECT_DOUBLE_EQ(f.rate_at(-1.0), 0.0);
}

TEST(FlowSpec, EmptyProfileIsZero) {
  FlowSpec f;
  EXPECT_DOUBLE_EQ(f.rate_at(10.0), 0.0);
  EXPECT_DOUBLE_EQ(f.expected_vehicles(100.0), 0.0);
}

TEST(FlowSpec, ExpectedVehiclesIntegratesProfile) {
  FlowSpec f;
  f.profile = {{0.0, 3600.0}, {100.0, 3600.0}};  // 1 veh/s for 100 s
  EXPECT_NEAR(f.expected_vehicles(100.0), 100.0, 1.0);
  EXPECT_NEAR(f.expected_vehicles(50.0), 50.0, 1.0);
}

TEST(FlowProfiles, RampHoldShape) {
  const auto knots = profiles::ramp_hold(10.0, 90.0, 300.0, 500.0);
  FlowSpec f;
  f.profile = knots;
  EXPECT_DOUBLE_EQ(f.rate_at(10.0), 0.0);
  EXPECT_DOUBLE_EQ(f.rate_at(55.0), 250.0);
  EXPECT_DOUBLE_EQ(f.rate_at(100.0), 500.0);
  EXPECT_DOUBLE_EQ(f.rate_at(300.0), 500.0);
  EXPECT_DOUBLE_EQ(f.rate_at(301.0), 0.0);
}

TEST(FlowProfiles, ConstantShape) {
  const auto knots = profiles::constant(0.0, 50.0, 120.0);
  FlowSpec f;
  f.profile = knots;
  EXPECT_DOUBLE_EQ(f.rate_at(0.0), 120.0);
  EXPECT_DOUBLE_EQ(f.rate_at(25.0), 120.0);
  EXPECT_DOUBLE_EQ(f.rate_at(50.0), 120.0);
}

TEST(FlowSampler, ArrivalFrequencyMatchesRate) {
  FlowSpec f;
  f.route = {0};
  f.profile = {{0.0, 1800.0}, {10000.0, 1800.0}};  // 0.5 veh/s
  FlowSampler sampler({f});
  Rng rng(77);
  std::size_t arrivals = 0;
  for (double t = 0.0; t < 10000.0; t += 1.0)
    arrivals += sampler.sample_arrivals(t, 1.0, rng).size();
  EXPECT_NEAR(static_cast<double>(arrivals), 5000.0, 150.0);
}

TEST(FlowSampler, NoArrivalsOutsideProfile) {
  FlowSpec f;
  f.route = {0};
  f.profile = {{100.0, 3600.0}, {200.0, 3600.0}};
  FlowSampler sampler({f});
  Rng rng(78);
  for (double t = 0.0; t < 99.0; t += 1.0)
    EXPECT_TRUE(sampler.sample_arrivals(t, 1.0, rng).empty());
  for (double t = 300.0; t < 400.0; t += 1.0)
    EXPECT_TRUE(sampler.sample_arrivals(t, 1.0, rng).empty());
}

TEST(FlowSampler, MultipleFlowsReportIndices) {
  FlowSpec a, b;
  a.route = {0};
  a.profile = {{0.0, 3600.0 * 0.9}, {1000.0, 3600.0 * 0.9}};
  b.route = {1};
  b.profile = {};  // never emits
  FlowSampler sampler({a, b});
  Rng rng(79);
  bool saw_a = false;
  for (double t = 0.0; t < 100.0; t += 1.0) {
    for (std::size_t idx : sampler.sample_arrivals(t, 1.0, rng)) {
      EXPECT_EQ(idx, 0u);
      saw_a = true;
    }
  }
  EXPECT_TRUE(saw_a);
}

}  // namespace
}  // namespace tsc::sim
