#include "src/scenarios/turn_ratio.hpp"

#include <gtest/gtest.h>

#include <map>

#include "src/scenarios/grid.hpp"
#include "src/sim/simulator.hpp"

namespace tsc::scenario {
namespace {

GridScenario small_grid() {
  GridConfig config;
  config.rows = 4;
  config.cols = 4;
  return GridScenario(config);
}

sim::LinkId west_entry(const GridScenario& grid, std::size_t row) {
  return grid.link_between(grid.west_terminal(row), grid.intersection(row, 0));
}

TEST(TurnRatio, SampledRoutesAreMovementConsistent) {
  auto grid = small_grid();
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const auto route = sample_turn_route(grid.net(), west_entry(grid, 1),
                                         TurnRatios{}, rng);
    ASSERT_FALSE(route.empty());
    for (std::size_t i = 0; i + 1 < route.size(); ++i)
      EXPECT_NE(grid.net().find_movement(route[i], route[i + 1]), sim::kInvalidId);
    // Ends at a boundary node.
    EXPECT_EQ(grid.net().node(grid.net().link(route.back()).to).type,
              sim::NodeType::kBoundary);
  }
}

TEST(TurnRatio, ThroughHeavyRatiosGoMostlyStraight) {
  auto grid = small_grid();
  Rng rng(5);
  TurnRatios ratios;
  ratios.left = 0.0;
  ratios.through = 1.0;
  ratios.right = 0.0;
  // Pure through: route crosses the grid in a straight line (4 interior
  // links + exit).
  const auto route =
      sample_turn_route(grid.net(), west_entry(grid, 2), ratios, rng);
  ASSERT_EQ(route.size(), 5u);
  // Straight exit: the east terminal of the same row.
  EXPECT_EQ(grid.net().link(route.back()).to, grid.east_terminal(2));
}

TEST(TurnRatio, TurnFrequenciesTrackRatios) {
  auto grid = small_grid();
  Rng rng(7);
  TurnRatios ratios;
  ratios.left = 0.3;
  ratios.through = 0.4;
  ratios.right = 0.3;
  std::map<sim::Turn, int> counts;
  int total = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const auto route =
        sample_turn_route(grid.net(), west_entry(grid, 1), ratios, rng);
    for (std::size_t i = 0; i + 1 < route.size(); ++i) {
      const auto mid = grid.net().find_movement(route[i], route[i + 1]);
      ++counts[grid.net().movement(mid).turn];
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(counts[sim::Turn::kThrough]) / total, 0.4, 0.06);
  EXPECT_NEAR(static_cast<double>(counts[sim::Turn::kLeft]) / total, 0.3, 0.06);
  EXPECT_NEAR(static_cast<double>(counts[sim::Turn::kRight]) / total, 0.3, 0.06);
}

TEST(TurnRatio, FlowEnsembleSplitsRate) {
  auto grid = small_grid();
  const std::vector<sim::RateKnot> profile = {{0.0, 600.0}, {300.0, 600.0}};
  const auto flows = make_turn_ratio_flows(
      grid.net(), {west_entry(grid, 0), west_entry(grid, 3)}, profile,
      TurnRatios{}, /*samples_per_entry=*/4, /*seed=*/9);
  EXPECT_EQ(flows.size(), 8u);
  // Each sample carries rate/4; total per entry = 600.
  for (const auto& f : flows) EXPECT_DOUBLE_EQ(f.rate_at(100.0), 150.0);
}

TEST(TurnRatio, EnsembleIsSimulable) {
  auto grid = small_grid();
  const std::vector<sim::RateKnot> profile = {{0.0, 600.0}, {200.0, 600.0}};
  std::vector<sim::LinkId> entries;
  for (std::size_t r = 0; r < 4; ++r) entries.push_back(west_entry(grid, r));
  const auto flows =
      make_turn_ratio_flows(grid.net(), entries, profile, TurnRatios{}, 3, 11);
  sim::Simulator sim(&grid.net(), flows, sim::SimConfig{}, 13);
  sim.step_seconds(120.0);
  EXPECT_GT(sim.vehicles_spawned(), 10u);
}

TEST(TurnRatio, ZeroSamplesRejected) {
  auto grid = small_grid();
  EXPECT_THROW(make_turn_ratio_flows(grid.net(), {west_entry(grid, 0)},
                                     {{0.0, 100.0}, {10.0, 100.0}}, TurnRatios{},
                                     0, 1),
               std::invalid_argument);
}

TEST(TurnRatio, DeterministicForSeed) {
  auto grid = small_grid();
  const std::vector<sim::RateKnot> profile = {{0.0, 300.0}, {100.0, 300.0}};
  const auto a = make_turn_ratio_flows(grid.net(), {west_entry(grid, 1)}, profile,
                                       TurnRatios{}, 5, 42);
  const auto b = make_turn_ratio_flows(grid.net(), {west_entry(grid, 1)}, profile,
                                       TurnRatios{}, 5, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].route, b[i].route);
}

}  // namespace
}  // namespace tsc::scenario
