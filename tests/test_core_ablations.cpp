// Tests for PairUpLight's ablation knobs, checkpointing, protocol
// inspection, and the sensor-failure injection used by the robustness bench.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "src/core/trainer.hpp"
#include "src/scenarios/grid.hpp"

namespace tsc::core {
namespace {

struct Fixture {
  scenario::GridScenario grid;
  env::TscEnv environment;

  explicit Fixture(env::EnvConfig env_config = make_env_config())
      : grid(make_grid()),
        environment(&grid.net(), make_flows(grid), env_config, 1) {}

  static scenario::GridScenario make_grid() {
    scenario::GridConfig config;
    config.rows = 2;
    config.cols = 2;
    return scenario::GridScenario(config);
  }
  static std::vector<sim::FlowSpec> make_flows(const scenario::GridScenario& g) {
    std::vector<sim::FlowSpec> flows;
    for (std::size_t r = 0; r < 2; ++r) {
      sim::FlowSpec f;
      f.route = g.route(g.west_terminal(r), g.east_terminal(r));
      f.profile = {{0.0, 600.0}, {200.0, 600.0}};
      flows.push_back(f);
    }
    sim::FlowSpec f;
    f.route = g.route(g.north_terminal(1), g.south_terminal(1));
    f.profile = {{0.0, 400.0}, {200.0, 400.0}};
    flows.push_back(f);
    return flows;
  }
  static env::EnvConfig make_env_config() {
    env::EnvConfig config;
    config.episode_seconds = 100.0;
    return config;
  }

  static PairUpConfig fast_config() {
    PairUpConfig config;
    config.hidden = 16;
    config.ppo.epochs = 1;
    return config;
  }
};

class PairingStrategyTest : public ::testing::TestWithParam<PairingStrategy> {};

TEST_P(PairingStrategyTest, TrainsAndPairsWithinUpstreamSet) {
  Fixture f;
  PairUpConfig config = Fixture::fast_config();
  config.pairing = GetParam();
  PairUpLightTrainer trainer(&f.environment, config);
  const auto stats = trainer.train_episode();
  EXPECT_GT(stats.travel_time, 0.0);
  const auto& partners = trainer.last_partners();
  ASSERT_EQ(partners.size(), f.environment.num_agents());
  for (std::size_t i = 0; i < partners.size(); ++i) {
    const auto& ups = f.environment.agent(i).upstream;
    EXPECT_TRUE(partners[i] == i ||
                std::count(ups.begin(), ups.end(), partners[i]) > 0);
    if (GetParam() == PairingStrategy::kSelf) EXPECT_EQ(partners[i], i);
    if (GetParam() == PairingStrategy::kFixedUpstream && !ups.empty())
      EXPECT_EQ(partners[i], ups.front());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, PairingStrategyTest,
    ::testing::Values(PairingStrategy::kMostCongestedUpstream,
                      PairingStrategy::kSelf, PairingStrategy::kRandomNeighbor,
                      PairingStrategy::kFixedUpstream),
    [](const auto& info) {
      switch (info.param) {
        case PairingStrategy::kMostCongestedUpstream: return "MostCongested";
        case PairingStrategy::kSelf: return "Self";
        case PairingStrategy::kRandomNeighbor: return "Random";
        case PairingStrategy::kFixedUpstream: return "Fixed";
      }
      return "?";
    });

TEST(CriticHops, InputDimShrinksWithFewerRings) {
  Fixture f;
  PairUpConfig two = Fixture::fast_config();
  PairUpConfig one = Fixture::fast_config();
  one.critic_hops = 1;
  PairUpConfig zero = Fixture::fast_config();
  zero.critic_hops = 0;
  PairUpLightTrainer t2(&f.environment, two);
  PairUpLightTrainer t1(&f.environment, one);
  PairUpLightTrainer t0(&f.environment, zero);
  EXPECT_GT(t2.critic_input_dim(), t1.critic_input_dim());
  EXPECT_GT(t1.critic_input_dim(), t0.critic_input_dim());
  EXPECT_EQ(t0.critic_input_dim(), f.environment.obs_dim());
  // All variants must train.
  t0.train_episode();
  t1.train_episode();
}

TEST(Checkpoint, RoundTripRestoresPolicy) {
  Fixture f;
  PairUpLightTrainer trainer(&f.environment, Fixture::fast_config());
  trainer.train_episode();
  const auto before = trainer.eval_episode(42);

  const std::string prefix =
      (std::filesystem::temp_directory_path() / "pairup_ckpt_test").string();
  trainer.save_checkpoint(prefix);
  // Keep training: the policy drifts away.
  for (int e = 0; e < 3; ++e) trainer.train_episode();
  trainer.load_checkpoint(prefix);
  const auto after = trainer.eval_episode(42);
  EXPECT_DOUBLE_EQ(before.travel_time, after.travel_time);
  for (const char* suffix : {"_actor0.bin", "_critic0.bin"})
    std::remove((prefix + suffix).c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  Fixture f;
  PairUpLightTrainer trainer(&f.environment, Fixture::fast_config());
  EXPECT_THROW(trainer.load_checkpoint("/nonexistent/prefix"), std::runtime_error);
}

TEST(MessageProtocol, MessagesAreLogisticBounded) {
  Fixture f;
  PairUpLightTrainer trainer(&f.environment, Fixture::fast_config());
  trainer.train_episode();
  const auto& messages = trainer.last_messages();
  ASSERT_EQ(messages.size(), f.environment.num_agents());
  for (const auto& msg : messages) {
    ASSERT_EQ(msg.size(), 1u);
    EXPECT_GT(msg[0], 0.0);
    EXPECT_LT(msg[0], 1.0);  // Logistic(N(m, sigma)) lands strictly in (0,1)
  }
}

TEST(MessageProtocol, EvalMessagesAreDeterministic) {
  Fixture f;
  PairUpLightTrainer trainer(&f.environment, Fixture::fast_config());
  trainer.train_episode();
  trainer.eval_episode(9);
  const auto m1 = trainer.last_messages();
  trainer.eval_episode(9);
  const auto m2 = trainer.last_messages();
  for (std::size_t i = 0; i < m1.size(); ++i)
    EXPECT_DOUBLE_EQ(m1[i][0], m2[i][0]);  // no regularizer noise in eval
}

// ---------------------------------------------------------------------------

TEST(SensorFaults, DropoutOneBlanksTrafficObservations) {
  env::EnvConfig config = Fixture::make_env_config();
  config.sensor_dropout = 1.0;
  Fixture f(config);
  f.environment.reset(5);
  std::vector<std::size_t> actions(f.environment.num_agents(), 0);
  for (int s = 0; s < 10; ++s) f.environment.step(actions);
  // Queues exist in truth but every observed in-link slot reads zero.
  for (std::size_t i = 0; i < f.environment.num_agents(); ++i) {
    const auto obs = f.environment.local_obs(i);
    for (std::size_t k = 0; k < 2 * config.max_in_links; ++k)
      EXPECT_DOUBLE_EQ(obs[k], 0.0);
  }
  EXPECT_GT(f.environment.simulator().network_halting(), 0u);
}

TEST(SensorFaults, NoiseChangesObsButNotDynamics) {
  env::EnvConfig noisy_config = Fixture::make_env_config();
  noisy_config.sensor_noise_std = 0.5;
  Fixture noisy(noisy_config);
  Fixture clean;
  noisy.environment.reset(5);
  clean.environment.reset(5);
  std::vector<std::size_t> actions(clean.environment.num_agents(), 0);
  std::vector<double> r_noisy, r_clean;
  for (int s = 0; s < 10; ++s) {
    r_noisy = noisy.environment.step(actions);
    r_clean = clean.environment.step(actions);
  }
  // Same actions, same seed: identical dynamics and rewards...
  for (std::size_t i = 0; i < r_clean.size(); ++i)
    EXPECT_DOUBLE_EQ(r_noisy[i], r_clean[i]);
  // ...but different observations.
  double diff = 0.0;
  for (std::size_t i = 0; i < clean.environment.num_agents(); ++i) {
    const auto on = noisy.environment.local_obs(i);
    const auto oc = clean.environment.local_obs(i);
    for (std::size_t k = 0; k < on.size(); ++k) diff += std::abs(on[k] - oc[k]);
  }
  EXPECT_GT(diff, 0.1);
}

TEST(SensorFaults, FaultsResampleEachStep) {
  env::EnvConfig config = Fixture::make_env_config();
  config.sensor_dropout = 0.5;
  config.sensor_noise_std = 0.3;
  Fixture f(config);
  f.environment.reset(7);
  std::vector<std::size_t> actions(f.environment.num_agents(), 0);
  for (int s = 0; s < 8; ++s) f.environment.step(actions);
  const auto o1 = f.environment.local_obs(0);
  f.environment.step(actions);
  const auto o2 = f.environment.local_obs(0);
  double diff = 0.0;
  for (std::size_t k = 0; k < o1.size(); ++k) diff += std::abs(o1[k] - o2[k]);
  EXPECT_GT(diff, 0.0);
}

}  // namespace
}  // namespace tsc::core
