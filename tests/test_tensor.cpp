#include "src/nn/tensor.hpp"

#include <gtest/gtest.h>

#include "src/util/rng.hpp"

namespace tsc::nn {
namespace {

TEST(Tensor, ZerosShapes) {
  Tensor v = Tensor::zeros(5);
  EXPECT_EQ(v.rank(), 1u);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v.rows(), 1u);
  EXPECT_EQ(v.cols(), 5u);

  Tensor m = Tensor::zeros(3, 4);
  EXPECT_EQ(m.rank(), 2u);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m[i], 0.0);
}

TEST(Tensor, MatrixRowMajorIndexing) {
  Tensor m = Tensor::matrix(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.at(0, 0), 1.0);
  EXPECT_EQ(m.at(0, 2), 3.0);
  EXPECT_EQ(m.at(1, 0), 4.0);
  EXPECT_EQ(m.at(1, 2), 6.0);
  m.at(1, 1) = 50.0;
  EXPECT_EQ(m[4], 50.0);
}

TEST(Tensor, FullAndFill) {
  Tensor m = Tensor::full(2, 2, 3.5);
  EXPECT_EQ(m.sum(), 14.0);
  m.fill(-1.0);
  EXPECT_EQ(m.sum(), -4.0);
}

TEST(Tensor, ZerosLikeCopiesShape) {
  Tensor m = Tensor::matrix(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor z = Tensor::zeros_like(m);
  EXPECT_TRUE(z.same_shape(m));
  EXPECT_EQ(z.sum(), 0.0);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a = Tensor::vector({1, 2, 3});
  Tensor b = Tensor::vector({10, 20, 30});
  a += b;
  EXPECT_EQ(a[0], 11.0);
  EXPECT_EQ(a[2], 33.0);
  a -= b;
  EXPECT_EQ(a[1], 2.0);
  a *= 2.0;
  EXPECT_EQ(a[0], 2.0);
}

TEST(Tensor, SumAndNorm) {
  Tensor a = Tensor::vector({3, 4});
  EXPECT_DOUBLE_EQ(a.sum(), 7.0);
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
}

TEST(Tensor, ToStringMentionsShape) {
  Tensor m = Tensor::zeros(2, 3);
  EXPECT_NE(m.to_string().find("2x3"), std::string::npos);
}

TEST(Matmul, HandComputed) {
  // [1 2; 3 4] @ [5 6; 7 8] = [19 22; 43 50]
  Tensor a = Tensor::matrix(2, 2, {1, 2, 3, 4});
  Tensor b = Tensor::matrix(2, 2, {5, 6, 7, 8});
  Tensor c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50.0);
}

TEST(Matmul, RectangularShapes) {
  Tensor a = Tensor::matrix(2, 3, {1, 0, 2, 0, 1, 1});
  Tensor b = Tensor::matrix(3, 1, {1, 2, 3});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 1u);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 5.0);
}

TEST(Matmul, TransposedVariantsAgreeWithExplicitTranspose) {
  Rng rng(11);
  const std::size_t m = 4, k = 3, n = 5;
  Tensor a = Tensor::zeros(m, k);
  Tensor b = Tensor::zeros(k, n);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = rng.normal();
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = rng.normal();

  // a @ b via matmul_nt with b^T and matmul_tn with a^T.
  Tensor bt = Tensor::zeros(n, k);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < n; ++j) bt.at(j, i) = b.at(i, j);
  Tensor at = Tensor::zeros(k, m);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < k; ++j) at.at(j, i) = a.at(i, j);

  const Tensor direct = matmul(a, b);
  const Tensor via_nt = matmul_nt(a, bt);
  const Tensor via_tn = matmul_tn(at, b);
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], via_nt[i], 1e-12);
    EXPECT_NEAR(direct[i], via_tn[i], 1e-12);
  }
}

TEST(Matmul, IdentityIsNoop) {
  Tensor a = Tensor::matrix(2, 2, {1, 2, 3, 4});
  Tensor eye = Tensor::matrix(2, 2, {1, 0, 0, 1});
  const Tensor c = matmul(a, eye);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(c[i], a[i]);
}

}  // namespace
}  // namespace tsc::nn
