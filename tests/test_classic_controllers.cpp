#include <gtest/gtest.h>

#include "src/baselines/actuated.hpp"
#include "src/baselines/fixed_time.hpp"
#include "src/baselines/max_pressure.hpp"
#include "src/scenarios/grid.hpp"

namespace tsc::baselines {
namespace {

/// 2x2 grid loaded only west->east: WE phases should win any
/// pressure/demand comparison once queues form.
struct DirectionalFixture {
  scenario::GridScenario grid;
  env::TscEnv environment;

  DirectionalFixture()
      : grid(make_grid()), environment(&grid.net(), make_flows(grid), config(), 1) {}

  static scenario::GridScenario make_grid() {
    scenario::GridConfig grid_config;
    grid_config.rows = 2;
    grid_config.cols = 2;
    return scenario::GridScenario(grid_config);
  }
  static std::vector<sim::FlowSpec> make_flows(const scenario::GridScenario& g) {
    std::vector<sim::FlowSpec> flows;
    for (std::size_t r = 0; r < 2; ++r) {
      sim::FlowSpec f;
      f.route = g.route(g.west_terminal(r), g.east_terminal(r));
      f.profile = {{0.0, 900.0}, {300.0, 900.0}};
      flows.push_back(f);
    }
    return flows;
  }
  static env::EnvConfig config() {
    env::EnvConfig env_config;
    env_config.episode_seconds = 300.0;
    return env_config;
  }

  /// Hold everything at NS green (phase 0) so WE queues build.
  void build_we_queues(std::size_t steps = 15) {
    environment.reset(3);
    std::vector<std::size_t> actions(environment.num_agents(), 0);
    for (std::size_t s = 0; s < steps; ++s) environment.step(actions);
  }
};

TEST(MaxPressure, PhasePressureReflectsQueues) {
  DirectionalFixture f;
  f.build_we_queues();
  for (std::size_t i = 0; i < f.environment.num_agents(); ++i) {
    // Grid phases: 0/1 NS through+right / NS left, 2/3 WE.
    const double we = MaxPressureController::phase_pressure(f.environment, i, 2);
    const double ns = MaxPressureController::phase_pressure(f.environment, i, 0);
    EXPECT_GE(we, ns);
  }
}

TEST(MaxPressure, PicksTheCongestedDirection) {
  DirectionalFixture f;
  f.build_we_queues();
  MaxPressureController controller(0.0);  // no min-green: pure argmax
  controller.begin_episode(f.environment);
  const auto actions = controller.act(f.environment);
  // At least the entry-column intersections must select a WE phase.
  std::size_t we_selected = 0;
  for (std::size_t i = 0; i < actions.size(); ++i)
    if (actions[i] == 2 || actions[i] == 3) ++we_selected;
  EXPECT_GE(we_selected, 2u);
}

TEST(MaxPressure, MinGreenHoldsPhase) {
  DirectionalFixture f;
  f.environment.reset(3);
  MaxPressureController controller(10.0);  // two decision steps
  controller.begin_episode(f.environment);
  const auto a0 = controller.act(f.environment);
  f.build_we_queues(5);  // state now strongly favors WE
  const auto a1 = controller.act(f.environment);
  EXPECT_EQ(a0, a1);  // still inside min green
}

TEST(MaxPressure, OutperformsFixedTimeOnDirectionalLoad) {
  DirectionalFixture f;
  MaxPressureController max_pressure;
  const auto mp = env::run_episode(f.environment, max_pressure, 5);
  FixedTimeController fixed_time;
  const auto ft = env::run_episode(f.environment, fixed_time, 5);
  EXPECT_LT(mp.travel_time, ft.travel_time);
}

TEST(Actuated, PhaseDemandCountsQueuedVehicles) {
  DirectionalFixture f;
  f.build_we_queues();
  // WE queues form at the entry (west-column) intersections first; the
  // starved downstream ones may still read zero. Demand must show up on
  // the WE phase somewhere and match the simulator's queues exactly.
  std::uint32_t total_we = 0, total_ns = 0;
  for (std::size_t i = 0; i < f.environment.num_agents(); ++i) {
    total_we += ActuatedController::phase_demand(f.environment, i, 2);
    total_ns += ActuatedController::phase_demand(f.environment, i, 0);
  }
  EXPECT_GT(total_we, 5u);
  EXPECT_EQ(total_ns, 0u);  // nothing flows north-south in this fixture
}

TEST(Actuated, GapsOutToPhaseWithDemand) {
  DirectionalFixture f;
  f.build_we_queues();
  ActuatedConfig config;
  config.min_green = 5.0;
  config.max_green = 30.0;
  ActuatedController controller(config);
  controller.begin_episode(f.environment);
  // First decision: phase 0, no NS demand but min green holds it once.
  auto actions = controller.act(f.environment);
  EXPECT_EQ(actions[0], 0u);
  f.environment.step(actions);
  // Min green served and phase 0 has no demand: advance toward WE phases.
  actions = controller.act(f.environment);
  EXPECT_NE(actions[0], 0u);
}

TEST(Actuated, MaxGreenForcesRotation) {
  DirectionalFixture f;
  f.environment.reset(3);
  ActuatedConfig config;
  config.min_green = 5.0;
  config.max_green = 10.0;  // two decision steps
  ActuatedController controller(config);
  controller.begin_episode(f.environment);
  std::vector<std::size_t> last;
  std::size_t changes = 0;
  for (int s = 0; s < 12; ++s) {
    const auto actions = controller.act(f.environment);
    if (!last.empty() && actions != last) ++changes;
    last = actions;
    f.environment.step(actions);
  }
  EXPECT_GE(changes, 3u);  // keeps cycling even with continuous WE demand
}

TEST(Actuated, HoldsGreenWhileDemandPersists) {
  DirectionalFixture f;
  f.build_we_queues();
  ActuatedConfig config;
  config.min_green = 5.0;
  config.max_green = 60.0;
  ActuatedController controller(config);
  controller.begin_episode(f.environment);
  // Drive to the WE phase first.
  std::vector<std::size_t> actions;
  for (int s = 0; s < 4; ++s) {
    actions = controller.act(f.environment);
    f.environment.step(actions);
  }
  // With heavy continuous WE demand the controller should now be holding a
  // WE phase across consecutive decisions (no gap-out).
  const auto a1 = controller.act(f.environment);
  f.environment.step(a1);
  const auto a2 = controller.act(f.environment);
  std::size_t held = 0;
  for (std::size_t i = 0; i < a1.size(); ++i)
    if (a1[i] == a2[i] && (a1[i] == 2 || a1[i] == 3)) ++held;
  EXPECT_GE(held, 1u);
}

TEST(Actuated, NamesAndInterfaces) {
  ActuatedController actuated;
  MaxPressureController max_pressure;
  EXPECT_EQ(actuated.name(), "Actuated");
  EXPECT_EQ(max_pressure.name(), "MaxPressure");
}

}  // namespace
}  // namespace tsc::baselines
