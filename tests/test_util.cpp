#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "src/util/csv.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"

namespace tsc {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformIntUnbiasedCoverage) {
  Rng rng(5);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) ++counts[rng.uniform_int(7)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(6);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalWithParams) {
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, LogisticSymmetricZeroMean) {
  Rng rng(8);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.logistic());
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  // Logistic(0,1) stddev = pi/sqrt(3) = 1.8138.
  EXPECT_NEAR(stats.stddev(), 1.8138, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 100000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(10);
  std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.categorical(w)];
  EXPECT_NEAR(counts[0] / 100000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 100000.0, 0.3, 0.01);
  EXPECT_NEAR(counts[2] / 100000.0, 0.6, 0.01);
}

TEST(Rng, CategoricalThrowsOnAllZero) {
  Rng rng(11);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_THROW(rng.categorical(w), std::invalid_argument);
}

TEST(Rng, CategoricalHandlesZeroPrefix) {
  Rng rng(12);
  std::vector<double> w = {0.0, 0.0, 1.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.categorical(w), 2u);
}

TEST(Rng, CategoricalThrowsOnEmpty) {
  Rng rng(11);
  EXPECT_THROW(rng.categorical({}), std::invalid_argument);
}

TEST(Rng, CategoricalThrowsOnNegativeWeight) {
  // Negative weights used to be assert-only, so release builds silently
  // sampled from a corrupted distribution.
  Rng rng(11);
  std::vector<double> w = {0.5, -0.25, 0.75};
  EXPECT_THROW(rng.categorical(w), std::invalid_argument);
}

TEST(Rng, CategoricalThrowsOnNanWeight) {
  Rng rng(11);
  std::vector<double> w = {1.0, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW(rng.categorical(w), std::invalid_argument);
  std::vector<double> inf = {1.0, std::numeric_limits<double>::infinity()};
  EXPECT_THROW(rng.categorical(inf), std::invalid_argument);
}

TEST(Rng, CategoricalDoesNotConsumeStreamOnThrow) {
  // A rejected draw must not advance the generator: checkpointed streams
  // would otherwise desync on recovered errors.
  Rng rng(14);
  Rng reference(14);
  try {
    rng.categorical({0.0, 0.0});
  } catch (const std::invalid_argument&) {
  }
  EXPECT_EQ(rng(), reference());
}

TEST(Rng, StateRoundTripResumesStream) {
  Rng rng(21);
  rng.normal();  // leave a cached Box-Muller value in flight
  const Rng::State snapshot = rng.state();
  std::vector<double> expected = {rng.normal(), rng.uniform(),
                                  static_cast<double>(rng())};
  Rng restored(999);  // different seed: state must fully overwrite it
  restored.set_state(snapshot);
  EXPECT_DOUBLE_EQ(restored.normal(), expected[0]);
  EXPECT_DOUBLE_EQ(restored.uniform(), expected[1]);
  EXPECT_DOUBLE_EQ(static_cast<double>(restored()), expected[2]);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(14);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(RunningStats, MatchesNaiveComputation) {
  RunningStats stats;
  const std::vector<double> xs = {1.5, -2.0, 4.0, 0.0, 3.5};
  for (double x : xs) stats.add(x);
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_NEAR(stats.mean(), 1.4, 1e-12);
  double var = 0.0;
  for (double x : xs) var += (x - 1.4) * (x - 1.4);
  var /= 4.0;  // sample variance (n-1), the convention of every helper here
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), -2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_NEAR(stats.sum(), 7.0, 1e-12);
}

// Regression: RunningStats::variance used the population divisor (n) while
// stddev_of used the sample divisor (n-1), so tools reaching for different
// helpers produced CSVs mixing two variance conventions. Both are sample
// variance now.
TEST(RunningStats, AgreesWithStddevOf) {
  const std::vector<double> xs = {1.5, -2.0, 4.0, 0.0, 3.5, 2.25};
  RunningStats stats;
  for (double x : xs) stats.add(x);
  EXPECT_NEAR(stats.stddev(), stddev_of(xs), 1e-12);
}

TEST(RunningStats, MergeOfHalvesMatchesSinglePass) {
  Rng rng(16);
  std::vector<double> xs;
  for (int i = 0; i < 101; ++i) xs.push_back(rng.normal(2.0, 3.0));
  RunningStats lo, hi;
  for (std::size_t i = 0; i < xs.size(); ++i) (i < xs.size() / 2 ? lo : hi).add(xs[i]);
  lo.merge(hi);
  // Direct single-pass computation over the full data set.
  const double m = mean_of(xs);
  double m2 = 0.0;
  for (double x : xs) m2 += (x - m) * (x - m);
  EXPECT_EQ(lo.count(), xs.size());
  EXPECT_NEAR(lo.mean(), m, 1e-12);
  EXPECT_NEAR(lo.variance(), m2 / static_cast<double>(xs.size() - 1), 1e-10);
  EXPECT_NEAR(lo.stddev(), stddev_of(xs), 1e-10);
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  RunningStats a, b, combined;
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.normal();
    a.add(x);
    combined.add(x);
  }
  for (int i = 0; i < 50; ++i) {
    const double x = rng.normal(3.0, 0.5);
    b.add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-10);
}

TEST(RunningStats, EmptyAndReset) {
  RunningStats stats;
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  stats.add(5.0);
  stats.reset();
  EXPECT_EQ(stats.count(), 0u);
}

TEST(Ema, SeedsFromFirstSample) {
  Ema ema(0.5);
  EXPECT_TRUE(ema.empty());
  ema.add(10.0);
  EXPECT_DOUBLE_EQ(ema.value(), 10.0);
  ema.add(0.0);
  EXPECT_DOUBLE_EQ(ema.value(), 5.0);
}

TEST(VectorStats, MeanStdPercentile) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean_of(xs), 3.0);
  EXPECT_NEAR(stddev_of(xs), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(percentile_of({}, 50), 0.0);
}

TEST(VectorStats, NormalizeInPlace) {
  std::vector<double> xs = {2, 4, 6, 8};
  normalize_in_place(xs);
  EXPECT_NEAR(mean_of(xs), 0.0, 1e-12);
  double var = 0.0;
  for (double x : xs) var += x * x;
  EXPECT_NEAR(var / 4.0, 1.0, 1e-12);
  // Constant input: centered, not divided.
  std::vector<double> c = {5, 5, 5};
  normalize_in_place(c);
  for (double x : c) EXPECT_NEAR(x, 0.0, 1e-12);
}

TEST(Csv, WritesEscapedRows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tsc_csv_test.csv").string();
  {
    CsvWriter csv(path);
    csv.write_header({"name", "value"});
    csv.write_row("plain", 1.5);
    csv.write_row("with,comma", 2);
    csv.write_row("with\"quote", 3);
    csv.flush();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,1.5");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",2");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with\"\"quote\",3");
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace tsc
